package polaris

// Integration tests: end-to-end scenarios through the public API, including a
// model-based randomized test that checks the engine against an in-memory
// reference model across committed operations, time-travel reads, clones,
// restores and maintenance.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"polaris/internal/workload"
)

func TestEndToEndTPCHThroughSQL(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	db := Open(smallConfig())
	defer db.Close()
	if _, err := workload.LoadTPCH(db.Engine(), 0.1, 4); err != nil {
		t.Fatal(err)
	}
	for i, q := range workload.THQueries() {
		rows, err := db.Query(q)
		if err != nil {
			t.Fatalf("Q%d: %v", i+1, err)
		}
		if rows.SimTime() <= 0 {
			t.Fatalf("Q%d reported no simulated time", i+1)
		}
	}
	// Q1 must be stable across repeated runs (determinism).
	a, _ := db.Query(workload.THQueries()[0])
	b, _ := db.Query(workload.THQueries()[0])
	if a.Len() != b.Len() {
		t.Fatalf("Q1 row counts differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if fmt.Sprint(a.Row(i)) != fmt.Sprint(b.Row(i)) {
			t.Fatalf("Q1 row %d differs across runs", i)
		}
	}
}

// refModel is the reference: committed table contents keyed by row id, with
// full version history per commit sequence.
type refModel struct {
	// history[seq] = state of the table after that commit
	history map[int64]map[int64]int64 // seq -> (id -> val)
	current map[int64]int64
	seqs    []int64
}

func newRefModel() *refModel {
	return &refModel{history: map[int64]map[int64]int64{}, current: map[int64]int64{}}
}

func (m *refModel) commit(seq int64) {
	snap := make(map[int64]int64, len(m.current))
	for k, v := range m.current {
		snap[k] = v
	}
	m.history[seq] = snap
	m.seqs = append(m.seqs, seq)
}

// stateAt returns the reference contents as of a commit sequence.
func (m *refModel) stateAt(seq int64) map[int64]int64 {
	var best int64 = -1
	for _, s := range m.seqs {
		if s <= seq && s > best {
			best = s
		}
	}
	if best < 0 {
		return map[int64]int64{}
	}
	return m.history[best]
}

func TestModelBasedRandomOperations(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE m (id INT, val INT) WITH (DISTRIBUTION = id, SORTCOL = id)`)
	model := newRefModel()
	rng := rand.New(rand.NewSource(20260613))
	nextID := int64(0)

	verify := func(tag string, got *Rows, want map[int64]int64) {
		t.Helper()
		if got.Len() != len(want) {
			t.Fatalf("%s: %d rows, want %d", tag, got.Len(), len(want))
		}
		for i := 0; i < got.Len(); i++ {
			id := got.Value(i, 0).(int64)
			val := got.Value(i, 1).(int64)
			if w, ok := want[id]; !ok || w != val {
				t.Fatalf("%s: row (%d,%d) not in reference (want val %d)", tag, id, val, want[id])
			}
		}
	}

	const ops = 60
	for op := 0; op < ops; op++ {
		switch k := rng.Intn(10); {
		case k < 4: // insert a few rows
			n := rng.Intn(5) + 1
			var values []string
			for i := 0; i < n; i++ {
				id := nextID
				nextID++
				val := rng.Int63n(1000)
				values = append(values, fmt.Sprintf("(%d, %d)", id, val))
				model.current[id] = val
			}
			db.MustExec(`INSERT INTO m VALUES ` + strings.Join(values, ", "))
			model.commit(db.Engine().Catalog.CurrentSeq())
		case k < 6: // delete by predicate
			mod := rng.Int63n(7) + 2
			res := rng.Int63n(mod)
			r := db.MustExec(fmt.Sprintf(`DELETE FROM m WHERE id %% %d = %d`, mod, res))
			expected := int64(0)
			for id := range model.current {
				if id%mod == res {
					delete(model.current, id)
					expected++
				}
			}
			if r.RowsAffected() != expected {
				t.Fatalf("op %d: deleted %d, reference %d", op, r.RowsAffected(), expected)
			}
			if expected > 0 {
				model.commit(db.Engine().Catalog.CurrentSeq())
			}
		case k < 8: // update by predicate
			threshold := rng.Int63n(nextID + 1)
			r := db.MustExec(fmt.Sprintf(`UPDATE m SET val = val + 1 WHERE id >= %d`, threshold))
			expected := int64(0)
			for id := range model.current {
				if id >= threshold {
					model.current[id]++
					expected++
				}
			}
			if r.RowsAffected() != expected {
				t.Fatalf("op %d: updated %d, reference %d", op, r.RowsAffected(), expected)
			}
			if expected > 0 {
				model.commit(db.Engine().Catalog.CurrentSeq())
			}
		case k < 9: // maintenance: compaction or checkpoint never change data
			if rng.Intn(2) == 0 {
				db.MustExec(`COMPACT TABLE m`)
			} else {
				db.MustExec(`CHECKPOINT TABLE m`)
			}
		default: // time-travel read against a historical reference snapshot
			if len(model.seqs) == 0 {
				continue
			}
			seq := model.seqs[rng.Intn(len(model.seqs))]
			got := db.MustExec(fmt.Sprintf(`SELECT id, val FROM m AS OF %d`, seq))
			verify(fmt.Sprintf("op %d as-of %d", op, seq), got, model.stateAt(seq))
		}
		// current-state check every few ops
		if op%7 == 0 {
			got := db.MustExec(`SELECT id, val FROM m`)
			verify(fmt.Sprintf("op %d current", op), got, model.current)
		}
	}

	// Final checks: current state, a clone of a historic state, GC safety.
	got := db.MustExec(`SELECT id, val FROM m`)
	verify("final", got, model.current)

	if len(model.seqs) > 2 {
		seq := model.seqs[len(model.seqs)/2]
		db.MustExec(fmt.Sprintf(`CLONE TABLE m TO m_clone AS OF %d`, seq))
		cl := db.MustExec(`SELECT id, val FROM m_clone`)
		verify("clone", cl, model.stateAt(seq))

		if _, err := db.GarbageCollect(); err != nil {
			t.Fatal(err)
		}
		cl2 := db.MustExec(`SELECT id, val FROM m_clone`)
		verify("clone after GC", cl2, model.stateAt(seq))
		got2 := db.MustExec(`SELECT id, val FROM m`)
		verify("current after GC", got2, model.current)
	}
}

func TestConcurrentSessionsStress(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE s (id INT, v INT) WITH (DISTRIBUTION = id)`)

	// Many writers inserting disjoint key ranges concurrently (insert-only:
	// no conflicts possible), plus readers validating counts monotonicity.
	const writers = 6
	const perWriter = 5
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			sess := db.Session()
			defer sess.Close()
			for i := 0; i < perWriter; i++ {
				id := w*1000 + i
				if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO s VALUES (%d, %d)`, id, id)); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	got := db.MustExec(`SELECT COUNT(*) AS n FROM s`)
	if got.Value(0, 0) != int64(writers*perWriter) {
		t.Fatalf("count = %v, want %d", got.Value(0, 0), writers*perWriter)
	}
}

func TestRestoreDatabaseThroughFacade(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE keep (id INT)`)
	db.MustExec(`INSERT INTO keep VALUES (1)`)
	mark := db.Engine().BackupMark()
	db.MustExec(`INSERT INTO keep VALUES (2)`)
	db.MustExec(`CREATE TABLE ephemeral (id INT)`)
	db.MustExec(`INSERT INTO ephemeral VALUES (9)`)
	if err := db.Engine().RestoreDatabase(mark); err != nil {
		t.Fatal(err)
	}
	got := db.MustExec(`SELECT COUNT(*) AS n FROM keep`)
	if got.Value(0, 0) != int64(1) {
		t.Fatalf("keep count = %v", got.Value(0, 0))
	}
	if _, err := db.Query(`SELECT COUNT(*) AS n FROM ephemeral`); err == nil {
		t.Fatal("ephemeral table survived database restore")
	}
}

func TestSerializableModeBlocksWriteSkew(t *testing.T) {
	cfg := smallConfig()
	cfg.Isolation = "serializable"
	db := Open(cfg)
	defer db.Close()
	db.MustExec(`CREATE TABLE w (k VARCHAR, v INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`INSERT INTO w VALUES ('a', 0), ('b', 0)`)

	// classic write skew: T1 reads a writes b; T2 reads b writes a
	t1 := db.Session()
	t2 := db.Session()
	defer t1.Close()
	defer t2.Close()
	t1.MustExec(`BEGIN`)
	t2.MustExec(`BEGIN`)
	t1.MustExec(`SELECT v FROM w WHERE k = 'a'`)
	t2.MustExec(`SELECT v FROM w WHERE k = 'b'`)
	t1.MustExec(`UPDATE w SET v = 1 WHERE k = 'b'`)
	t2.MustExec(`UPDATE w SET v = 1 WHERE k = 'a'`)
	_, e1 := t1.Exec(`COMMIT`)
	_, e2 := t2.Exec(`COMMIT`)
	if e1 == nil && e2 == nil {
		t.Fatal("serializable mode allowed write skew")
	}
}
