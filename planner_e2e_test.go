package polaris

import (
	"strconv"
	"strings"
	"testing"
)

// openPlannerDB builds the cost-based-planning fixture: a misordered join
// shape (tiny narrow table named first, 100x-larger wide table joined in)
// whose probe keys mostly miss the build side, so one statement exercises
// join reordering, scan predicate/projection pushdown, and bloom runtime
// pruning at once.
func openPlannerDB(t *testing.T, parallelism int, budget int64) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	cfg.JoinMemoryBudget = budget
	db := Open(cfg)
	db.MustExec(`CREATE TABLE narrow (k INT, tag VARCHAR) WITH (DISTRIBUTION = k)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO narrow VALUES `)
	for i := 0; i < 20; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(" + strconv.Itoa(i) + ", 'tag-" + strconv.Itoa(i) + "')")
	}
	db.MustExec(sb.String())
	db.MustExec(`CREATE TABLE wide (k INT, v INT, pad VARCHAR) WITH (DISTRIBUTION = k)`)
	sb.Reset()
	sb.WriteString(`INSERT INTO wide VALUES `)
	for i := 0; i < 2000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		// k ∈ [0, 500): only k < 20 ever matches narrow, so the build-side
		// bloom filter can prune ~96% of probe rows.
		sb.WriteString("(" + strconv.Itoa(i%500) + ", " + strconv.Itoa(i) + ", 'p')")
	}
	db.MustExec(sb.String())
	return db
}

// plannerQueries all have a total ORDER BY, so byte-identical renders are
// the correctness bar across every DOP, budget, and plan rewrite.
var plannerQueries = []string{
	// Misordered join: narrow (20 rows) named first, wide (2000) joined in.
	// The planner must flip the base to wide and build from narrow.
	`SELECT n.tag, w.v FROM narrow n JOIN wide w ON n.k = w.k ORDER BY w.v, n.tag`,
	// Pushdown + reorder + residual cross-table filter in one statement.
	`SELECT n.tag, w.v FROM narrow n JOIN wide w ON n.k = w.k WHERE w.v < 1000 AND n.k > 2 ORDER BY w.v, n.tag`,
	// Aggregation over the reordered, bloom-pruned join.
	`SELECT n.tag, COUNT(*) AS c, SUM(w.v) AS sv FROM narrow n JOIN wide w ON n.k = w.k GROUP BY n.tag ORDER BY n.tag`,
}

// TestPlannerByteIdentitySweep is the acceptance gate of the cost-based
// planner: join reordering, scan pushdown, and bloom runtime pruning may
// never change results. Every query must render byte-identically to the
// serial unlimited-memory reference at DOP {1,4,8} × budget {unlimited,
// tiny-forces-spill}, with the misordered shape observably reordered
// (BuildSideSwaps), the bloom observably pruning (RuntimeFilterRows), and
// the tiny budget observably spilling the reordered build.
func TestPlannerByteIdentitySweep(t *testing.T) {
	serial := openPlannerDB(t, 1, 0)
	want := make([]string, len(plannerQueries))
	for i, q := range plannerQueries {
		r := serial.MustExec(q)
		if r.Len() == 0 {
			t.Fatalf("reference query %d returned no rows", i)
		}
		want[i] = renderRows(r)
	}
	serial.Close()

	// Far below the 20-row narrow build side, so even the reordered
	// (smallest) build overflows and takes the grace spill path.
	const tinyBudget = 64

	for _, dop := range []int{1, 4, 8} {
		for _, budget := range []int64{0, tinyBudget} {
			db := openPlannerDB(t, dop, budget)
			w := &db.Engine().Work
			for i, q := range plannerQueries {
				if got := renderRows(db.MustExec(q)); got != want[i] {
					t.Fatalf("dop=%d budget=%d query %d differs from serial unlimited reference:\ngot:\n%s\nwant:\n%s",
						dop, budget, i, got, want[i])
				}
			}
			if swaps := w.BuildSideSwaps.Load(); swaps < int64(len(plannerQueries)) {
				t.Fatalf("dop=%d budget=%d: BuildSideSwaps = %d, want ≥ %d (every query is misordered)",
					dop, budget, swaps, len(plannerQueries))
			}
			if pruned := w.RuntimeFilterRows.Load(); pruned == 0 {
				t.Fatalf("dop=%d budget=%d: RuntimeFilterRows = 0, want bloom pruning on the 96%%-miss probe", dop, budget)
			}
			if pushed := w.PushedFilters.Load(); pushed == 0 {
				t.Fatalf("dop=%d budget=%d: PushedFilters = 0, want the w.v < 1000 conjunct pushed", dop, budget)
			}
			spills := w.JoinSpills.Load()
			if budget == 0 && spills != 0 {
				t.Fatalf("dop=%d: unexpected spills under unlimited budget: %d", dop, spills)
			}
			if budget > 0 && spills == 0 {
				t.Fatalf("dop=%d: no spills under %d-byte budget", dop, tinyBudget)
			}
			db.Close()
		}
	}
}

// TestBloomPruningReducesProbeRows pins the perf claim behind the runtime
// filter: on the 96%-miss join the bloom must prune the vast majority of
// probe rows, in both the in-memory and the spilled regime.
func TestBloomPruningReducesProbeRows(t *testing.T) {
	for _, budget := range []int64{0, 64} {
		db := openPlannerDB(t, 4, budget)
		w := &db.Engine().Work
		r := db.MustExec(plannerQueries[0])
		if r.Len() == 0 {
			t.Fatal("join returned no rows")
		}
		pruned := w.RuntimeFilterRows.Load()
		// 2000 probe rows, 80 carry a matching key: require well over half
		// pruned (the exact count is bloom-false-positive dependent).
		if pruned < 1000 {
			t.Fatalf("budget=%d: RuntimeFilterRows = %d, want ≥ 1000 of 1920 prunable probe rows", budget, pruned)
		}
		db.Close()
	}
}
