// ETL concurrency: the paper's introductory scenario (and Fig. 9 experiment)
// — a long-running ingestion transaction loads data into the warehouse while
// a reporting session queries the same tables. Snapshot Isolation keeps every
// report consistent, reads are never blocked, and workload management places
// the load on write nodes away from the reporting queries.
package main

import (
	"fmt"
	"sync"

	"polaris"
	"polaris/internal/workload"
)

func main() {
	db := polaris.Open(polaris.DefaultConfig())
	defer db.Close()

	// Initial warehouse state: TPC-H at a small scale factor.
	if _, err := workload.LoadTPCH(db.Engine(), 0.1, 4); err != nil {
		panic(err)
	}
	base := db.MustExec(`SELECT COUNT(*) AS n FROM lineitem`)
	fmt.Printf("warehouse loaded: %v lineitem rows\n\n", base.Value(0, 0))

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// ETL: one long transaction trickling batches in, committing at the end.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tx := db.Engine().Begin()
		var loaded int64
		for chunk := int64(0); chunk < 20; chunk++ {
			lo := 50_000_000 + chunk*500
			n, err := tx.Insert("lineitem", workload.LineitemBatch(lo, lo+500))
			if err != nil {
				tx.Rollback()
				panic(err)
			}
			loaded += n
		}
		if err := tx.Commit(); err != nil {
			panic(err)
		}
		fmt.Printf("[etl] committed %d new rows in one transaction\n", loaded)
		close(stop)
	}()

	// Reporting: keeps querying while the load runs. Every result is a
	// consistent snapshot; counts only change when the ETL commit lands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := db.Session()
		defer sess.Close()
		var last int64 = -1
		for i := 0; ; i++ {
			r, err := sess.Exec(`SELECT COUNT(*) AS n, SUM(l_extendedprice) AS rev FROM lineitem`)
			if err != nil {
				panic(err)
			}
			n := r.Value(0, 0).(int64)
			if n != last {
				fmt.Printf("[report] consistent snapshot: rows=%d (sim %v)\n", n, r.SimTime())
				last = n
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	final := db.MustExec(`SELECT COUNT(*) AS n FROM lineitem`)
	fmt.Printf("\nfinal count: %v — reporting never observed a partial load\n", final.Value(0, 0))
}
