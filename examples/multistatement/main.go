// Multi-table, multi-statement transactions with optimistic concurrency
// (paper Section 4): two sessions race to update the same table; the first
// committer wins, the loser gets a snapshot write-write conflict and retries.
// This is the distinguishing feature the paper claims over other lakehouse
// systems — full Snapshot Isolation across statements and tables.
package main

import (
	"fmt"
	"strings"

	"polaris"
)

func main() {
	db := polaris.Open(polaris.DefaultConfig())
	defer db.Close()

	db.MustExec(`CREATE TABLE inventory (sku INT, qty INT) WITH (DISTRIBUTION = sku)`)
	db.MustExec(`CREATE TABLE orders (id INT, sku INT, qty INT) WITH (DISTRIBUTION = id)`)
	db.MustExec(`INSERT INTO inventory VALUES (100, 10), (200, 5)`)

	// A multi-table transaction: place an order and decrement stock
	// atomically. Both tables' manifest rows commit with one sequence.
	place := func(sess *polaris.Session, orderID, sku, qty int) error {
		if _, err := sess.Exec(`BEGIN`); err != nil {
			return err
		}
		if _, err := sess.Exec(fmt.Sprintf(
			`INSERT INTO orders VALUES (%d, %d, %d)`, orderID, sku, qty)); err != nil {
			_, _ = sess.Exec(`ROLLBACK`)
			return err
		}
		if _, err := sess.Exec(fmt.Sprintf(
			`UPDATE inventory SET qty = qty - %d WHERE sku = %d`, qty, sku)); err != nil {
			_, _ = sess.Exec(`ROLLBACK`)
			return err
		}
		_, err := sess.Exec(`COMMIT`)
		return err
	}

	// Two sessions race on the same inventory row set.
	s1 := db.Session()
	s2 := db.Session()
	defer s1.Close()
	defer s2.Close()

	s1.MustExec(`BEGIN`)
	s2.MustExec(`BEGIN`)
	s1.MustExec(`INSERT INTO orders VALUES (1, 100, 3)`)
	s2.MustExec(`INSERT INTO orders VALUES (2, 100, 2)`)
	s1.MustExec(`UPDATE inventory SET qty = qty - 3 WHERE sku = 100`)
	s2.MustExec(`UPDATE inventory SET qty = qty - 2 WHERE sku = 100`)
	s1.MustExec(`COMMIT`)
	_, err := s2.Exec(`COMMIT`)
	fmt.Printf("racer 1: committed\nracer 2: %v\n", err)
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		panic("expected a write-write conflict")
	}

	// The paper's answer: the losing transaction is retried on a fresh
	// snapshot and then succeeds.
	if err := place(s2, 2, 100, 2); err != nil {
		panic(err)
	}
	fmt.Println("racer 2: retry committed")

	inv := db.MustExec(`SELECT qty FROM inventory WHERE sku = 100`)
	ord := db.MustExec(`SELECT COUNT(*) AS n FROM orders`)
	fmt.Printf("\nfinal stock for sku 100: %v (10 - 3 - 2)\n", inv.Value(0, 0))
	fmt.Printf("orders recorded: %v\n", ord.Value(0, 0))

	// Both orders and both inventory decrements are atomic across tables:
	// no interleaving ever exposed an order without its stock decrement.
	check := db.MustExec(`SELECT o.id, o.qty, i.qty FROM orders o JOIN inventory i ON o.sku = i.sku ORDER BY o.id`)
	for i := 0; i < check.Len(); i++ {
		fmt.Printf("order %v: qty=%v stock_now=%v\n",
			check.Value(i, 0), check.Value(i, 1), check.Value(i, 2))
	}
}
