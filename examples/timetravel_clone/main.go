// Time travel, cloning and restore (paper Section 6): log-structured tables
// keep every version of the data, so querying the past, cloning a table as of
// a point in time, and restoring after a bad write are metadata-only
// operations — no data is copied.
package main

import (
	"fmt"

	"polaris"
)

func main() {
	db := polaris.Open(polaris.DefaultConfig())
	defer db.Close()

	db.MustExec(`CREATE TABLE accounts (id INT, owner VARCHAR, balance FLOAT)
		WITH (DISTRIBUTION = id, SORTCOL = id)`)
	db.MustExec(`INSERT INTO accounts VALUES
		(1, 'ada', 100.0), (2, 'bob', 250.0), (3, 'cyd', 75.0)`)

	// Remember where we are: the commit sequence is the time-travel handle.
	seq := db.MustExec(`SHOW STATS accounts`).Value(0, 6).(int64)
	fmt.Printf("checkpoint in history: sequence %d\n\n", seq)

	// A batch job goes wrong and wipes balances.
	db.MustExec(`UPDATE accounts SET balance = 0.0 WHERE balance > 0.0`)
	now := db.MustExec(`SELECT SUM(balance) AS total FROM accounts`)
	fmt.Printf("after the bad batch job: total balance = %v\n", now.Value(0, 0))

	// Query As Of (6.1): the pre-incident data is still there.
	was := db.MustExec(fmt.Sprintf(
		`SELECT SUM(balance) AS total FROM accounts AS OF %d`, seq))
	fmt.Printf("time-traveled total (AS OF %d) = %v\n\n", seq, was.Value(0, 0))

	// Clone As Of (6.2): a zero-copy fork of the pre-incident state for the
	// incident review — no data files are duplicated.
	db.MustExec(fmt.Sprintf(`CLONE TABLE accounts TO accounts_forensics AS OF %d`, seq))
	fc := db.MustExec(`SELECT COUNT(*) AS n, SUM(balance) AS total FROM accounts_forensics`)
	fmt.Printf("forensics clone: rows=%v total=%v\n", fc.Value(0, 0), fc.Value(0, 1))

	// Clones evolve independently.
	db.MustExec(`INSERT INTO accounts_forensics VALUES (99, 'aud', 1.0)`)
	src := db.MustExec(`SELECT COUNT(*) AS n FROM accounts`)
	fmt.Printf("source table rows after clone write: %v (unchanged)\n\n", src.Value(0, 0))

	// Restore (6.3): rewind the production table — metadata-only.
	db.MustExec(fmt.Sprintf(`RESTORE TABLE accounts AS OF %d`, seq))
	restored := db.MustExec(`SELECT SUM(balance) AS total FROM accounts`)
	fmt.Printf("restored total balance = %v\n", restored.Value(0, 0))

	// Garbage collection reclaims the now-unreferenced post-incident files,
	// honoring clone lineage (the forensics clone keeps its shared files).
	gc, err := db.GarbageCollect()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nGC: scanned=%d deleted_data=%d orphans=%d retained=%d\n",
		gc.Scanned, gc.DeletedData, gc.DeletedOrphans, gc.Retained)
	again := db.MustExec(`SELECT COUNT(*) AS n FROM accounts_forensics`)
	fmt.Printf("clone still intact after GC: rows=%v\n", again.Value(0, 0))
}
