// Quickstart: open a database, create a table, load data, query it, and use
// an explicit multi-statement transaction — the five-minute tour of the
// public API.
package main

import (
	"fmt"

	"polaris"
)

func main() {
	db := polaris.Open(polaris.DefaultConfig())
	defer db.Close()

	// DDL: distribution column = the paper's d(r) cell bucketing; SORTCOL =
	// the clustering column p(r) that makes zone maps selective.
	db.MustExec(`CREATE TABLE trips (
		id INT, city VARCHAR, distance_km FLOAT, paid BOOL
	) WITH (DISTRIBUTION = id, SORTCOL = id)`)

	r := db.MustExec(`INSERT INTO trips VALUES
		(1, 'seattle',  3.2, TRUE),
		(2, 'seattle', 12.7, FALSE),
		(3, 'redmond',  5.0, TRUE),
		(4, 'bellevue', 8.8, TRUE),
		(5, 'seattle',  1.1, FALSE)`)
	fmt.Printf("loaded %d rows (simulated %v of cluster time)\n\n", r.RowsAffected(), r.SimTime())

	rows := db.MustExec(`SELECT city, COUNT(*) AS trips, SUM(distance_km) AS km
		FROM trips GROUP BY city ORDER BY km DESC`)
	fmt.Println("per-city summary:")
	for i := 0; i < rows.Len(); i++ {
		row := rows.Row(i)
		fmt.Printf("  %-10v trips=%v km=%.1f\n", row[0], row[1], row[2])
	}

	// Explicit multi-statement transaction: statements see each other's
	// changes; nothing is visible outside until COMMIT.
	sess := db.Session()
	defer sess.Close()
	sess.MustExec(`BEGIN`)
	sess.MustExec(`UPDATE trips SET paid = TRUE WHERE city = 'seattle'`)
	sess.MustExec(`DELETE FROM trips WHERE distance_km < 2.0`)
	inTxn := sess.MustExec(`SELECT COUNT(*) AS n FROM trips WHERE paid = TRUE`)
	outside := db.MustExec(`SELECT COUNT(*) AS n FROM trips WHERE paid = TRUE`)
	fmt.Printf("\ninside txn paid-count=%v, outside (snapshot isolation) paid-count=%v\n",
		inTxn.Value(0, 0), outside.Value(0, 0))
	sess.MustExec(`COMMIT`)
	after := db.MustExec(`SELECT COUNT(*) AS n FROM trips WHERE paid = TRUE`)
	fmt.Printf("after commit paid-count=%v\n", after.Value(0, 0))

	// Storage introspection.
	stats := db.MustExec(`SHOW STATS trips`)
	fmt.Printf("\nstorage: files=%v rows=%v deleted=%v manifests=%v healthy=%v\n",
		stats.Value(0, 1), stats.Value(0, 2), stats.Value(0, 3), stats.Value(0, 5), stats.Value(0, 7))
}
