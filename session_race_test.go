package polaris

// Pins the Session concurrency contract documented on DB.Session: a single
// Session is a serial statement stream, but two Sessions over one DB may run
// interleaved transactions from different goroutines with no shared-state
// races. Runs under the root `make race` target.

import (
	"fmt"
	"sync"
	"testing"
)

// TestTwoSessionsInterleavedTransactions drives two sessions from two
// goroutines, each running many explicit BEGIN/INSERT/SELECT/COMMIT
// transactions against its own table of one shared DB. Under -race this
// proves that distinct Sessions need no external synchronization; the final
// serial count proves every committed transaction landed exactly once.
func TestTwoSessionsInterleavedTransactions(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE left_t (k INT, v INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`CREATE TABLE right_t (k INT, v INT) WITH (DISTRIBUTION = k)`)

	const txnsPerSession = 20
	var wg sync.WaitGroup
	for g, table := range []string{"left_t", "right_t"} {
		wg.Add(1)
		go func(worker int, table string) {
			defer wg.Done()
			s := db.Session()
			defer s.Close()
			for i := 0; i < txnsPerSession; i++ {
				for _, q := range []string{
					"BEGIN",
					fmt.Sprintf("INSERT INTO %s VALUES (%d, %d)", table, worker*1000+i, i),
					fmt.Sprintf("SELECT COUNT(*) FROM %s", table),
					"COMMIT",
				} {
					if _, err := s.Exec(q); err != nil {
						t.Errorf("session %d stmt %q: %v", worker, q, err)
						return
					}
				}
				// within its own open snapshot each session always saw a
				// consistent count; after commit the new row is visible
				r, err := s.Exec(fmt.Sprintf("SELECT COUNT(*) FROM %s", table))
				if err != nil {
					t.Errorf("session %d post-commit count: %v", worker, err)
					return
				}
				if got := r.Value(0, 0); got != int64(i+1) {
					t.Errorf("session %d after txn %d: count = %v, want %d", worker, i, got, i+1)
					return
				}
			}
		}(g, table)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	for _, table := range []string{"left_t", "right_t"} {
		r := db.MustExec(fmt.Sprintf("SELECT COUNT(*) FROM %s", table))
		if got := r.Value(0, 0); got != int64(txnsPerSession) {
			t.Fatalf("%s: count = %v, want %d", table, got, txnsPerSession)
		}
	}
	if n := db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d fabric slots", n)
	}
}
