package polaris

import (
	"strings"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.InitNodes = 2
	cfg.SlotsPerNode = 2
	cfg.Distributions = 4
	cfg.RowsPerFile = 1000
	cfg.RowsPerGroup = 200
	return cfg
}

func TestOpenQuickstartFlow(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE t (k INT, v VARCHAR) WITH (DISTRIBUTION = k, SORTCOL = k)`)
	r := db.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
	if r.RowsAffected() != 3 {
		t.Fatalf("inserted = %d", r.RowsAffected())
	}
	rows, err := db.Query(`SELECT k, v FROM t WHERE k >= 2 ORDER BY k`)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 || rows.Value(0, 1) != "b" {
		t.Fatalf("rows = %d, first = %v", rows.Len(), rows.Row(0))
	}
	if rows.SimTime() <= 0 {
		t.Fatal("no simulated time reported")
	}
	if db.SimTime() <= 0 {
		t.Fatal("no engine sim time")
	}
	if len(rows.Columns()) != 2 || rows.Schema()[0].Name != "k" {
		t.Fatalf("columns = %v", rows.Columns())
	}
}

func TestIndependentSessionsSeeSnapshots(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE t (k INT, v INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`INSERT INTO t VALUES (1, 10)`)

	writer := db.Session()
	reader := db.Session()
	defer writer.Close()
	defer reader.Close()
	writer.MustExec(`BEGIN`)
	reader.MustExec(`BEGIN`)
	writer.MustExec(`INSERT INTO t VALUES (2, 20)`)
	r := reader.MustExec(`SELECT COUNT(*) AS n FROM t`)
	if r.Value(0, 0) != int64(1) {
		t.Fatalf("reader sees uncommitted: %v", r.Row(0))
	}
	writer.MustExec(`COMMIT`)
	// reader's snapshot is stable
	r = reader.MustExec(`SELECT COUNT(*) AS n FROM t`)
	if r.Value(0, 0) != int64(1) {
		t.Fatalf("reader snapshot moved: %v", r.Row(0))
	}
	reader.MustExec(`COMMIT`)
	r = db.MustExec(`SELECT COUNT(*) AS n FROM t`)
	if r.Value(0, 0) != int64(2) {
		t.Fatalf("final count: %v", r.Row(0))
	}
}

func TestConflictErrorSurfaceAndMessage(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE t (k INT, v INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`INSERT INTO t VALUES (1, 10), (2, 20)`)
	a := db.Session()
	b := db.Session()
	defer a.Close()
	defer b.Close()
	a.MustExec(`BEGIN`)
	b.MustExec(`BEGIN`)
	a.MustExec(`DELETE FROM t WHERE k = 1`)
	b.MustExec(`DELETE FROM t WHERE k = 2`)
	a.MustExec(`COMMIT`)
	_, err := b.Exec(`COMMIT`)
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("err = %v", err)
	}
}

func TestMaintenanceAndGC(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE t (k INT, v INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`INSERT INTO t VALUES (1, 1), (2, 2), (3, 3), (4, 4)`)
	db.MustExec(`DELETE FROM t WHERE k <= 3`)
	db.MustExec(`COMPACT TABLE t`)
	db.MustExec(`CHECKPOINT TABLE t`)
	res, err := db.GarbageCollect()
	if err != nil {
		t.Fatal(err)
	}
	if res.Scanned == 0 {
		t.Fatalf("gc = %+v", res)
	}
	r := db.MustExec(`SELECT COUNT(*) AS n FROM t`)
	if r.Value(0, 0) != int64(1) {
		t.Fatalf("count = %v", r.Row(0))
	}
}

func TestDeltaPublishingVisibleThroughFacade(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE t (k INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	if len(db.Orchestrator().Published()) == 0 {
		t.Fatal("no delta logs published")
	}
}

func TestIsolationConfig(t *testing.T) {
	for _, iso := range []string{"snapshot", "serializable", "rcsi"} {
		cfg := smallConfig()
		cfg.Isolation = iso
		db := Open(cfg)
		db.MustExec(`CREATE TABLE t (k INT)`)
		db.MustExec(`INSERT INTO t VALUES (1)`)
		r := db.MustExec(`SELECT COUNT(*) AS n FROM t`)
		if r.Value(0, 0) != int64(1) {
			t.Fatalf("%s: count = %v", iso, r.Row(0))
		}
		db.Close()
	}
}

func TestTimeTravelThroughFacade(t *testing.T) {
	db := Open(smallConfig())
	defer db.Close()
	db.MustExec(`CREATE TABLE t (k INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`INSERT INTO t VALUES (1)`)
	st := db.MustExec(`SHOW STATS t`)
	seq := st.Value(0, 6).(int64)
	db.MustExec(`INSERT INTO t VALUES (2)`)
	r := db.MustExec(`SELECT COUNT(*) AS n FROM t AS OF ` + itoa(seq))
	if r.Value(0, 0) != int64(1) {
		t.Fatalf("as-of = %v", r.Row(0))
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
