package polaris

// One testing.B benchmark per evaluation figure of the paper (Section 7),
// plus one per design-choice ablation from DESIGN.md. Each benchmark executes
// the experiment through internal/bench and reports the figure's headline
// numbers as custom metrics in *simulated* seconds (suffix "sims/..."):
// shapes, not absolute values, are the comparison against the paper.
// cmd/benchrunner prints the full per-row tables.

import (
	"fmt"
	"testing"

	"polaris/internal/bench"
	"polaris/internal/colfile"
	"polaris/internal/exec"
)

// BenchmarkFig7IngestionScaling — Figure 7: lineitem load time at growing
// scale factors under elastic resources. Expected shape: sub-linear time
// growth; super-linear resource factor growth.
func BenchmarkFig7IngestionScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig7(0.2)
		for _, r := range rows {
			b.ReportMetric(r.LoadTime.Seconds(), "sims/load_"+r.Label)
			b.ReportMetric(float64(r.ResourceFactor), "nodes_"+r.Label)
		}
	}
}

// BenchmarkFig8BoundedVsElastic — Figure 8: 1TB and 10TB proxy loads on a
// fixed-capacity vs elastic topology. Expected shape: parity at 1TB, elastic
// winning decisively at 10TB.
func BenchmarkFig8BoundedVsElastic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig8(0.2)
		for _, r := range rows {
			b.ReportMetric(r.BoundedTime.Seconds(), "sims/bounded_"+r.Label)
			b.ReportMetric(r.ElasticTime.Seconds(), "sims/elastic_"+r.Label)
		}
	}
}

// BenchmarkFig9QueryPerformance — Figure 9: TPC-H 22-query power run,
// isolated vs with a concurrent uncommitted load into the same tables.
// Expected shape: near-parity (WLM separation + SI + warm immutable caches).
func BenchmarkFig9QueryPerformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig9(0.1)
		var iso, conc float64
		for _, r := range rows {
			iso += r.Isolated.Seconds()
			conc += r.Concurrent.Seconds()
		}
		b.ReportMetric(iso, "sims/isolated_total")
		b.ReportMetric(conc, "sims/concurrent_total")
		b.ReportMetric(conc/iso, "slowdown_ratio")
	}
}

// BenchmarkFig10CompactionHealth — Figure 10: WP1 SU/DM alternation with
// autonomous compaction. Expected shape: DM flips tables red, compaction
// returns them green by the next SU phase.
func BenchmarkFig10CompactionHealth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Fig10(0.2)
		red := 0
		for _, s := range res.Timeline {
			if !s.Healthy {
				red++
			}
		}
		b.ReportMetric(float64(len(res.Timeline)), "samples")
		b.ReportMetric(float64(red), "red_samples")
		b.ReportMetric(float64(res.Compactions), "compactions")
	}
}

// BenchmarkFig11CheckpointLifetimes — Figure 11: WP1 longevity; each DM phase
// creates exactly 10 manifests per table, minting one checkpoint per table
// per phase.
func BenchmarkFig11CheckpointLifetimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig11(0.2)
		perTable := map[string]int{}
		folded := 0
		for _, r := range rows {
			perTable[r.Table]++
			folded += r.Folded
		}
		b.ReportMetric(float64(len(rows)), "checkpoints")
		b.ReportMetric(float64(len(perTable)), "tables")
		if len(rows) > 0 {
			b.ReportMetric(float64(folded)/float64(len(rows)), "manifests_per_checkpoint")
		}
	}
}

// BenchmarkFig12ReadWriteConcurrency — Figure 12: WP3 phases; SU with
// concurrent DM or Optimize runs longer than isolated SU.
func BenchmarkFig12ReadWriteConcurrency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Fig12(0.2)
		for _, r := range rows {
			b.ReportMetric(r.SUTime.Seconds(), "sims/"+r.Phase)
		}
	}
}

// microFiles returns the shared 1M-row micro-benchmark dataset (built in
// internal/bench so cmd/benchrunner -json measures the same pipelines).
func microFiles(b *testing.B) ([]exec.ScanFile, int64) {
	files, rows, err := bench.MicroFiles()
	if err != nil {
		b.Fatal(err)
	}
	return files, rows
}

// renderBenchRows stringifies a batch for cheap cross-DOP identity checks.
func renderBenchRows(out *colfile.Batch) string {
	rows := make([][]any, out.NumRows())
	for r := range rows {
		rows[r] = out.Row(r)
	}
	return fmt.Sprintf("%v", rows)
}

// BenchmarkParallelScan — morsel-driven parallel scan+aggregate over the 1M
// row bench dataset at growing degrees of parallelism. Expected shape on
// multi-core hardware: near-linear scaling, ≥2x at dop=8 vs dop=1 (compare
// the sub-benchmarks' ns/op). Results are integer aggregates merged in key
// order, so every DOP returns byte-identical output; the dop=1 sub-benchmark
// verifies that against the merged runs.
func BenchmarkParallelScan(b *testing.B) {
	files, rows := microFiles(b)
	var serial string
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := bench.ParallelScanAggregate(files, dop)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					rendered := renderBenchRows(out)
					if serial == "" {
						serial = rendered
					} else if rendered != serial {
						b.Fatalf("dop=%d result differs from dop=1", dop)
					}
				}
			}
			b.SetBytes(int64(len(files)) * int64(len(files[0].Data)))
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkParallelJoin — morsel-parallel hash-join probe over the same 1M
// row dataset: scan → filter → probe against a shared immutable JoinTable
// (built once, outside the measured loop), merged in morsel order. The probe
// is the PR2 hot path: typed zero-box keys, per-worker scratch buffers and
// bulk Take gathers — allocs/op is the headline metric, recorded per DOP in
// BENCH_PR2.json. Results are byte-identical across every DOP (joins carry
// no float-summation caveat); the dop=1 sub-benchmark pins that.
func BenchmarkParallelJoin(b *testing.B) {
	files, rows := microFiles(b)
	table, err := bench.ParallelJoinTable()
	if err != nil {
		b.Fatal(err)
	}
	var serial string
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := bench.ParallelJoinProbe(files, table, dop)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if out.NumRows() == 0 {
						b.Fatal("join produced no rows")
					}
					rendered := renderBenchRows(out)
					if serial == "" {
						serial = rendered
					} else if rendered != serial {
						b.Fatalf("dop=%d join result differs from dop=1", dop)
					}
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "probe_rows/s")
		})
	}
}

// BenchmarkParallelJoinSpill — the same join pipeline forced through the
// grace-join spill path (build side over budget, both sides partitioned to a
// spill store, partition-wise join merged back into probe-row order). The
// ns/op delta against BenchmarkParallelJoin is the measured price of
// spilling; the identity check against the in-memory join's bytes is the
// budget-invariance half of the determinism contract.
func BenchmarkParallelJoinSpill(b *testing.B) {
	files, rows := microFiles(b)
	table, err := bench.ParallelJoinTable()
	if err != nil {
		b.Fatal(err)
	}
	for _, dop := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			var inMem string
			for i := 0; i < b.N; i++ {
				out, err := bench.ParallelJoinSpill(files, dop)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					ref, err := bench.ParallelJoinProbe(files, table, dop)
					if err != nil {
						b.Fatal(err)
					}
					inMem = renderBenchRows(ref)
					if got := renderBenchRows(out); got != inMem {
						b.Fatalf("dop=%d spilled join differs from in-memory join", dop)
					}
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "probe_rows/s")
		})
	}
}

// BenchmarkParallelJoinBloom — the PR7 bloom runtime filter on the probe hot
// path: the same morsel-parallel probe pipeline against a sparse build table
// (16 distinct keys) whose bloom filter rejects ~98% of probe rows before the
// hash-table walk. Compare ns/op against the nobloom sub-benchmark at the
// same DOP: the delta is the measured value of runtime pruning. The first
// iteration pins the determinism half of the contract — bloom on and off
// produce byte-identical output, and the filter observably pruned rows.
func BenchmarkParallelJoinBloom(b *testing.B) {
	files, rows := microFiles(b)
	table, err := bench.ParallelJoinBloomTable()
	if err != nil {
		b.Fatal(err)
	}
	for _, dop := range []int{1, 4, 8} {
		for _, bloom := range []bool{true, false} {
			name := fmt.Sprintf("dop=%d", dop)
			if !bloom {
				name += "/nobloom"
			}
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					out, pruned, err := bench.ParallelJoinBloom(files, table, dop, bloom)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						ref, _, err := bench.ParallelJoinBloom(files, table, dop, false)
						if err != nil {
							b.Fatal(err)
						}
						if renderBenchRows(out) != renderBenchRows(ref) {
							b.Fatalf("dop=%d bloom=%v: pruned join differs from unfiltered join", dop, bloom)
						}
						if bloom && pruned == 0 {
							b.Fatal("bloom filter pruned no probe rows")
						}
					}
				}
				b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "probe_rows/s")
			})
		}
	}
}

// BenchmarkParallelSort — parallel ORDER BY over the 1M row dataset: each
// morsel worker sorts its rows into a run (SortRuns on encoded sort keys),
// merged by a loser-tree k-way merge. val DESC carries heavy ties, so the
// stable-by-morsel-order rule is on the hot path. Results are byte-identical
// across every DOP; the dop=1 sub-benchmark pins that.
func BenchmarkParallelSort(b *testing.B) {
	files, rows := microFiles(b)
	var serial string
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := bench.ParallelSort(files, dop)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if int64(out.NumRows()) != rows {
						b.Fatalf("sort emitted %d of %d rows", out.NumRows(), rows)
					}
					rendered := renderBenchRows(out)
					if serial == "" {
						serial = rendered
					} else if rendered != serial {
						b.Fatalf("dop=%d sorted result differs from dop=1", dop)
					}
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkParallelTopN — the ORDER BY ... LIMIT pushdown over the same
// dataset: per-worker bounded TopN (at most 100 rows shipped per worker)
// plus an early-cutoff merge. Compare ns/op against BenchmarkParallelSort:
// the pushdown's whole point is that this does not pay for a full sort.
func BenchmarkParallelTopN(b *testing.B) {
	files, rows := microFiles(b)
	var serial string
	for _, dop := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := bench.ParallelTopN(files, dop)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					if out.NumRows() != bench.ParallelTopNRows {
						b.Fatalf("top-N emitted %d rows, want %d", out.NumRows(), bench.ParallelTopNRows)
					}
					rendered := renderBenchRows(out)
					if serial == "" {
						serial = rendered
					} else if rendered != serial {
						b.Fatalf("dop=%d top-N result differs from dop=1", dop)
					}
				}
			}
			b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkKeyEncoding — the per-row key manufacturing cost this PR removed
// from the join/aggregation hot path: the legacy fmt-based encoding (boxed
// Value + Fprintf per column) vs the typed Vec.AppendKey encoding with a
// reused scratch buffer. Compare allocs/op: fmt allocates per row, typed
// amortizes to ~zero.
func BenchmarkKeyEncoding(b *testing.B) {
	batch := bench.KeyEncodeBatch(1 << 14)
	keys := []int{0, 1}
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if bench.FmtKeyEncode(batch, keys) == 0 {
				b.Fatal("empty encoding")
			}
		}
	})
	b.Run("typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if bench.TypedKeyEncode(batch, keys) == 0 {
				b.Fatal("empty encoding")
			}
		}
	})
}

// BenchmarkAblationConflictGranularity — DESIGN.md ablation 1: committed
// transactions out of N concurrent disjoint-file updaters, table vs file
// granularity (paper 4.4.1).
func BenchmarkAblationConflictGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationConflictGranularity(6)
		for _, r := range rows {
			b.ReportMetric(r.Value, "committed_"+r.Config)
		}
	}
}

// BenchmarkAblationCheckpointThreshold — DESIGN.md ablation 3: cold snapshot
// reconstruction cost vs checkpoint frequency (paper 5.2).
func BenchmarkAblationCheckpointThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationCheckpointThreshold(29, []int{0, 10, 5})
		for _, r := range rows {
			b.ReportMetric(r.SimTime.Seconds(), "sims/"+r.Config)
		}
	}
}

// BenchmarkAblationCompaction — DESIGN.md ablation 4: read amplification on
// a heavily deleted table, fragmented vs compacted (paper 5.1).
func BenchmarkAblationCompaction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationCompaction()
		for _, r := range rows {
			b.ReportMetric(r.Value, "rows_scanned_"+r.Config)
		}
	}
}

// BenchmarkAblationCoWvsMoR — DESIGN.md ablation 5: write amplification of
// trickle deletes and read amplification of subsequent scans under
// copy-on-write vs merge-on-read (paper 2.1).
func BenchmarkAblationCoWvsMoR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationCoWvsMoR()
		for _, r := range rows {
			b.ReportMetric(r.Value, r.Config+"_"+r.Metric)
		}
	}
}

// BenchmarkAblationWLM — DESIGN.md ablation 6: read-task completion with
// shared vs separated node pools under heavy writes (paper 4.3).
func BenchmarkAblationWLM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.AblationWLM()
		for _, r := range rows {
			b.ReportMetric(r.SimTime.Seconds(), "sims/"+r.Config)
		}
	}
}

// BenchmarkParallelDAGQuery — distributed query execution: the same
// join+aggregate SELECT through the in-process morsel executor
// (DistributedQueries off) and as a DCP task DAG with object-store exchange
// (on), at growing DOP. The DAG path pays the exchange serialization tax for
// fault-tolerant re-runnable stages; this benchmark tracks that overhead and
// pins byte-identity between the two paths on the first iteration of every
// sub-benchmark. (At dop=1 the gate keeps the statement on the serial path,
// so that sub-benchmark is the no-DAG baseline: tasks/op = 0.)
func BenchmarkParallelDAGQuery(b *testing.B) {
	for _, dop := range []int{1, 4, 8} {
		morsel, err := bench.PrepareDAGQuery(false, dop)
		if err != nil {
			b.Fatal(err)
		}
		out, err := morsel.Run()
		if err != nil {
			b.Fatal(err)
		}
		want := renderBenchRows(out)
		h, err := bench.PrepareDAGQuery(true, dop)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("dop=%d", dop), func(b *testing.B) {
			b.ReportAllocs()
			tasksBefore := h.DagTasks()
			for i := 0; i < b.N; i++ {
				out, err := h.Run()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 && renderBenchRows(out) != want {
					b.Fatalf("dop=%d: DAG output differs from morsel executor", dop)
				}
			}
			b.ReportMetric(float64(h.DagTasks()-tasksBefore)/float64(b.N), "tasks/op")
		})
	}
}
