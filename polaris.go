// Package polaris is a from-scratch reproduction of the transactional engine
// described in "Extending Polaris to Support Transactions" (Aguilar-Saborit
// et al., SIGMOD 2024): a cloud-native distributed SQL warehouse that layers
// full Snapshot Isolation transactions — multi-table and multi-statement —
// over immutable log-structured tables in an object store.
//
// The public API is a small facade over the storage engine:
//
//	db := polaris.Open(polaris.DefaultConfig())
//	defer db.Close()
//	db.MustExec(`CREATE TABLE t (k INT, v VARCHAR) WITH (DISTRIBUTION = k)`)
//	db.MustExec(`INSERT INTO t VALUES (1, 'hello')`)
//	rows, _ := db.Query(`SELECT v FROM t WHERE k = 1`)
//
// Explicit transactions, time travel (AS OF), zero-copy clones, restore, and
// the autonomous storage optimizations (compaction, checkpointing, garbage
// collection, Delta-format publishing) are all exposed; see the examples/
// directory for tour programs and bench_test.go plus cmd/benchrunner for the
// reproduction of the paper's evaluation figures.
//
// Query execution is morsel-driven parallel: table scans are split into
// per-file (or per-row-group) morsels fanned out over a worker pool sized by
// the Parallelism config knob (default GOMAXPROCS) and capped by the compute
// fabric's free slots, with filters, projections, join probes, partial
// aggregations and per-morsel ORDER BY runs (top-N-bounded under LIMIT)
// running per worker ahead of a deterministic merge: results are stable run
// to run for a given Parallelism setting (across different settings, float
// SUM/AVG may differ in the last ulp as summation order changes). The full
// cross-DOP determinism contract is documented in docs/ARCHITECTURE.md. Set
// Parallelism to 1 to force serial execution.
package polaris

import (
	"fmt"
	"runtime"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
	"polaris/internal/sql"
	"polaris/internal/sto"
)

// Config configures a database instance.
type Config struct {
	// Elastic lets the compute topology grow on demand (the Fabric DW
	// serverless model); when false, MaxNodes caps the topology (the
	// resource-capped Synapse model of Fig. 8).
	Elastic  bool
	MaxNodes int
	// InitNodes is the starting topology size.
	InitNodes int
	// SlotsPerNode is per-node task parallelism.
	SlotsPerNode int
	// Parallelism is the intra-query degree of parallelism for the
	// morsel-driven executor: the target worker-pool size for parallel
	// scans, filters, projections and partial aggregation, and the build
	// partition count for parallel hash joins. 0 means GOMAXPROCS; 1
	// disables parallel execution. The effective degree is capped by the
	// fabric's free compute slots when the query starts.
	Parallelism int
	// JoinMemoryBudget caps, in bytes, the memory a hash-join build side may
	// occupy. A build that exceeds it takes the grace-join path: both sides
	// are hash-partitioned into spill files in the object store and the
	// partitions are joined as independent tasks fanned out over the same
	// worker pool that runs morsels (nested build parallelism capped so the
	// fan-out stays within Parallelism), with results byte-identical to the
	// in-memory plan at every Parallelism setting (WorkStats.JoinSpills
	// counts the spills, WorkStats.JoinSpillPartitions the partition tasks).
	// 0 (the default) means unlimited: builds never spill.
	JoinMemoryBudget int64
	// Distributions is the number of cell buckets of d(r).
	Distributions int
	// RowsPerFile / RowsPerGroup control data file layout.
	RowsPerFile  int
	RowsPerGroup int
	// FileGranularityConflicts switches WW conflict detection from table to
	// data-file granularity (paper 4.4.1).
	FileGranularityConflicts bool
	// Isolation is the default isolation level: "snapshot" (default),
	// "serializable", or "rcsi".
	Isolation string
	// WLMSeparate separates read and write node pools (paper 4.3).
	WLMSeparate bool
	// CheckpointEvery triggers a manifest checkpoint per N manifests (5.2).
	CheckpointEvery int
	// AutoCompact enables STO-triggered data compaction (5.1).
	AutoCompact bool
	// PublishDelta enables async Delta-log publishing (5.4).
	PublishDelta bool
	// PublishIceberg additionally publishes Iceberg-shaped metadata (the
	// planned multi-format converter path, paper footnote 1).
	PublishIceberg bool
	// StoreLatency attaches a simulated-latency model to the object store.
	StoreLatency bool
	// DistributedQueries executes parallel SELECTs as DCP task DAGs over
	// the compute fabric — per-morsel scan, join-build, and probe tasks
	// with object-store exchange between stages and task-level retry with
	// re-placement on node failure (paper Sections 1, 3.3; see
	// docs/DCP-QUERIES.md). Off by default: output is byte-identical to
	// the in-process morsel executor, so this only changes where the work
	// runs, not what it returns.
	DistributedQueries bool
}

// DefaultConfig returns laptop-scale defaults with every feature enabled.
func DefaultConfig() Config {
	return Config{
		Elastic:         true,
		InitNodes:       4,
		SlotsPerNode:    4,
		Parallelism:     runtime.GOMAXPROCS(0),
		Distributions:   8,
		RowsPerFile:     1 << 14,
		RowsPerGroup:    1 << 11,
		Isolation:       "snapshot",
		WLMSeparate:     true,
		CheckpointEvery: 10,
		AutoCompact:     true,
		PublishDelta:    true,
	}
}

// DB is a Polaris database instance: catalog, object store, compute fabric,
// transaction engine and system task orchestrator.
type DB struct {
	eng  *core.Engine
	sto  *sto.STO
	main *sql.Session
}

// Open creates a database with fresh in-process substrates.
func Open(cfg Config) *DB {
	if cfg.Distributions == 0 {
		cfg = DefaultConfig()
	}
	var storeOpts []objectstore.Option
	if cfg.StoreLatency {
		storeOpts = append(storeOpts, objectstore.WithLatency(objectstore.DefaultLatency()))
	}
	store := objectstore.New(storeOpts...)
	fabric := compute.NewFabric(compute.Config{
		Elastic:   cfg.Elastic,
		MaxNodes:  cfg.MaxNodes,
		InitNodes: cfg.InitNodes,
		SlotsPer:  cfg.SlotsPerNode,
	})
	opts := core.DefaultOptions()
	opts.Distributions = cfg.Distributions
	if cfg.Parallelism > 0 {
		opts.Parallelism = cfg.Parallelism
	}
	opts.JoinMemoryBudget = cfg.JoinMemoryBudget
	if cfg.RowsPerFile > 0 {
		opts.RowsPerFile = cfg.RowsPerFile
	}
	if cfg.RowsPerGroup > 0 {
		opts.RowsPerGroup = cfg.RowsPerGroup
	}
	if cfg.FileGranularityConflicts {
		opts.Granularity = core.FileGranularity
	}
	switch cfg.Isolation {
	case "serializable":
		opts.Isolation = catalog.Serializable
	case "rcsi":
		opts.Isolation = catalog.ReadCommittedSnapshot
	default:
		opts.Isolation = catalog.Snapshot
	}
	opts.WLMSeparate = cfg.WLMSeparate
	opts.CheckpointEvery = cfg.CheckpointEvery
	opts.DistributedQueries = cfg.DistributedQueries
	eng := core.NewEngine(catalog.NewDB(), store, fabric, opts)
	orch := sto.New(eng, sto.Config{
		CheckpointEvery:   cfg.CheckpointEvery,
		AutoCompact:       cfg.AutoCompact,
		PublishDelta:      cfg.PublishDelta,
		PublishIceberg:    cfg.PublishIceberg,
		MaxCompactRetries: 3,
	})
	return &DB{eng: eng, sto: orch, main: sql.NewSession(eng)}
}

// Close releases the database (rolls back any open transaction).
func (db *DB) Close() { db.main.Close() }

// Engine exposes the storage engine for advanced integration (benchmarks,
// custom workloads).
func (db *DB) Engine() *core.Engine { return db.eng }

// Orchestrator exposes the system task orchestrator.
func (db *DB) Orchestrator() *sto.STO { return db.sto }

// Exec runs one SQL statement on the database's main session (autocommit
// unless a BEGIN is open on it).
func (db *DB) Exec(query string) (*Rows, error) {
	res, err := db.main.Exec(query)
	if err != nil {
		return nil, err
	}
	return wrap(res), nil
}

// MustExec is Exec that panics on error — for examples and tests.
func (db *DB) MustExec(query string) *Rows {
	r, err := db.Exec(query)
	if err != nil {
		panic(fmt.Sprintf("polaris: %v\nquery: %s", err, query))
	}
	return r
}

// Query is an alias of Exec for read statements.
func (db *DB) Query(query string) (*Rows, error) { return db.Exec(query) }

// Session opens an independent session with its own transaction scope and
// (optionally) its own memory budget.
//
// Concurrency: a single Session — including the DB's implicit main session
// that Exec/Query/MustExec run on — is a serial statement stream and must
// not be used from multiple goroutines at once (its open-transaction state
// is unsynchronized). Independent Sessions over one DB are fully
// concurrent and safe under the race detector: the engine, catalog MVCC,
// compute fabric and object store are thread-safe, and concurrent sessions
// interact only through the configured transactional isolation level. For
// concurrent work, open one Session per goroutine; see
// TestTwoSessionsInterleavedTransactions for the supported pattern and
// cmd/polaris-server for a front end that multiplexes many such sessions.
func (db *DB) Session() *Session {
	return &Session{s: sql.NewSession(db.eng)}
}

// GarbageCollect runs one storage GC pass (paper 5.3).
func (db *DB) GarbageCollect() (core.GCResult, error) { return db.eng.GarbageCollect() }

// SimTime returns the total simulated time consumed so far — the metric the
// benchmark figures report.
func (db *DB) SimTime() time.Duration { return db.eng.SimTotal() }

// Session is an independent SQL session with its own explicit-transaction
// scope (one BEGIN/COMMIT at a time).
type Session struct{ s *sql.Session }

// Exec runs one SQL statement.
func (s *Session) Exec(query string) (*Rows, error) {
	res, err := s.s.Exec(query)
	if err != nil {
		return nil, err
	}
	return wrap(res), nil
}

// MustExec is Exec that panics on error.
func (s *Session) MustExec(query string) *Rows {
	r, err := s.Exec(query)
	if err != nil {
		panic(fmt.Sprintf("polaris: %v\nquery: %s", err, query))
	}
	return r
}

// SetJoinMemoryBudget gives this session its own hash-join build-side
// memory budget in bytes, overriding Config.JoinMemoryBudget for every
// transaction the session begins from now on (0 or negative = unlimited).
// This is the per-session budget hook a multi-tenant front end uses to
// isolate sessions' spill behavior from each other.
func (s *Session) SetJoinMemoryBudget(b int64) { s.s.SetJoinMemoryBudget(b) }

// InTransaction reports whether BEGIN is open.
func (s *Session) InTransaction() bool { return s.s.InTransaction() }

// Close rolls back any open transaction.
func (s *Session) Close() { s.s.Close() }

// Rows is a materialized statement result.
type Rows struct {
	res *sql.Result
}

func wrap(res *sql.Result) *Rows { return &Rows{res: res} }

// Columns returns output column names (nil for DML/DDL).
func (r *Rows) Columns() []string { return r.res.Columns() }

// Len returns the number of result rows.
func (r *Rows) Len() int {
	if r.res.Batch == nil {
		return 0
	}
	return r.res.Batch.NumRows()
}

// Row materializes row i as Go values (int64, float64, string, bool or nil).
func (r *Rows) Row(i int) []any { return r.res.Batch.Row(i) }

// Value returns column col of row i.
func (r *Rows) Value(i, col int) any { return r.res.Batch.Cols[col].Value(i) }

// RowsAffected reports DML effect.
func (r *Rows) RowsAffected() int64 { return r.res.RowsAffected }

// Message returns the DDL/utility outcome text.
func (r *Rows) Message() string { return r.res.Message }

// SimTime is the simulated time the statement consumed.
func (r *Rows) SimTime() time.Duration { return r.res.SimTime }

// Schema returns the result schema.
func (r *Rows) Schema() colfile.Schema {
	if r.res.Batch == nil {
		return nil
	}
	return r.res.Batch.Schema
}
