package polaris

// Grace hash-join spilling at the SQL surface: a build side that exceeds
// JoinMemoryBudget must spill (observable via WorkStats.JoinSpills), produce
// byte-identical results to the unlimited-budget plan at every DOP, leave no
// spill files behind, and surface clean errors under storage fault injection.
// Run under -race in CI (these tests are not gated behind -short).

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
	"polaris/internal/sql"
	"polaris/internal/workload"
)

func openTPCHBudget(t *testing.T, parallelism int, budget int64) *DB {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	cfg.JoinMemoryBudget = budget
	db := Open(cfg)
	if _, err := workload.LoadTPCH(db.Engine(), 0.05, 2); err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	return db
}

// tinySpillBudget is far below any TPC-H build side here, so every join
// build overflows and takes the grace path.
const tinySpillBudget = 1 << 10

// TestGraceJoinSpillMatchesUnlimited is the acceptance gate of the spill
// work: join-heavy TPC-H-shaped queries must return byte-identical results
// across DOP {1,4,8} × budget {unlimited, tiny-forces-spill}, with the tiny
// budget observably spilling and cleaning its namespace afterwards.
func TestGraceJoinSpillMatchesUnlimited(t *testing.T) {
	serial := openTPCHBudget(t, 1, 0)
	defer serial.Close()
	want := make([]string, len(joinHeavyQueries))
	for i, q := range joinHeavyQueries {
		r, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial unlimited query %d: %v", i, err)
		}
		if r.Len() == 0 {
			t.Fatalf("serial unlimited query %d returned no rows", i)
		}
		want[i] = renderRows(r)
	}

	for _, dop := range []int{1, 4, 8} {
		for _, budget := range []int64{0, tinySpillBudget} {
			db := openTPCHBudget(t, dop, budget)
			for i, q := range joinHeavyQueries {
				before := db.Engine().Work.JoinSpills.Load()
				r, err := db.Query(q)
				if err != nil {
					t.Fatalf("dop=%d budget=%d query %d: %v", dop, budget, i, err)
				}
				if got := renderRows(r); got != want[i] {
					t.Fatalf("dop=%d budget=%d query %d differs from unlimited serial:\ngot:\n%s\nwant:\n%s",
						dop, budget, i, got, want[i])
				}
				spilled := db.Engine().Work.JoinSpills.Load() > before
				if wantSpill := budget > 0; spilled != wantSpill {
					t.Fatalf("dop=%d budget=%d query %d: spilled=%v, want %v", dop, budget, i, spilled, wantSpill)
				}
			}
			if budget > 0 {
				if got := db.Engine().Work.JoinSpillBytes.Load(); got == 0 {
					t.Fatalf("dop=%d: JoinSpillBytes = 0 after spilled joins", dop)
				}
			}
			// Spill files are query-scoped: nothing may remain once the
			// statements finish.
			if leaked := db.Engine().Store.List(objectstore.SpillPrefix); len(leaked) != 0 {
				t.Fatalf("dop=%d budget=%d: %d spill files leaked: %v", dop, budget, len(leaked), leaked[:min(3, len(leaked))])
			}
			db.Close()
		}
	}
}

// randTableDDL generates a pair of joinable tables with integer, string and
// float columns plus NULLs (via partial-column inserts), returning the DDL
// and DML statements. Deterministic for a given seed.
func randTables(rng *rand.Rand) []string {
	stmts := []string{
		`CREATE TABLE ta (k INT, g INT, s VARCHAR, f FLOAT) WITH (DISTRIBUTION = k)`,
		`CREATE TABLE tb (k INT, g INT, tag VARCHAR) WITH (DISTRIBUTION = k)`,
	}
	aRows := 150 + rng.Intn(350)
	bRows := 100 + rng.Intn(300)
	aKeys := 1 + rng.Intn(60)
	bKeys := 1 + rng.Intn(60)
	var sb strings.Builder
	sb.WriteString("INSERT INTO ta VALUES ")
	for i := 0; i < aRows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'a-%d', %d.%d)", rng.Intn(aKeys), rng.Intn(7), rng.Intn(20), rng.Intn(100), rng.Intn(10))
	}
	stmts = append(stmts, sb.String())
	sb.Reset()
	sb.WriteString("INSERT INTO tb VALUES ")
	for i := 0; i < bRows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, 'b-%d')", rng.Intn(bKeys), rng.Intn(7), rng.Intn(15))
	}
	stmts = append(stmts, sb.String())
	// Partial-column inserts leave the unnamed columns NULL, so joins and
	// predicates see NULL keys and NULL values.
	for i := 0; i < 5; i++ {
		stmts = append(stmts,
			fmt.Sprintf("INSERT INTO ta (g, s) VALUES (%d, 'null-k-%d')", rng.Intn(7), i),
			fmt.Sprintf("INSERT INTO tb (k) VALUES (%d)", rng.Intn(bKeys)))
	}
	return stmts
}

// randQuery generates one deterministic query over the random tables: a join
// shape (inner/left, single or composite key), a random predicate, and either
// a projection with ORDER BY, an ORDER BY ... LIMIT, or an integer GROUP BY
// fully pinned by its ORDER BY. Float columns appear only as stored values
// (projection/sort), never re-aggregated, per the determinism contract.
func randQuery(rng *rand.Rand) string {
	join := "JOIN"
	if rng.Intn(2) == 0 {
		join = "LEFT JOIN"
	}
	on := "a.k = b.k"
	if rng.Intn(3) == 0 {
		on += " AND a.g = b.g"
	}
	where := ""
	switch rng.Intn(4) {
	case 0:
		where = fmt.Sprintf(" WHERE a.g < %d", 1+rng.Intn(6))
	case 1:
		where = fmt.Sprintf(" WHERE b.g >= %d", rng.Intn(6))
	case 2:
		where = fmt.Sprintf(" WHERE a.k BETWEEN %d AND %d", rng.Intn(10), 20+rng.Intn(40))
	}
	switch rng.Intn(3) {
	case 0: // projection pinned by a total ORDER BY
		return "SELECT a.k, a.g, a.s, a.f, b.tag FROM ta a " + join + " tb b ON " + on + where +
			" ORDER BY a.k, a.g, a.s, a.f, b.tag"
	case 1: // ORDER BY ... LIMIT (top-N pushdown shape)
		return fmt.Sprintf("SELECT a.k, a.s, b.tag FROM ta a "+join+" tb b ON "+on+where+
			" ORDER BY a.k, a.s, b.tag LIMIT %d", 5+rng.Intn(40))
	default: // integer aggregation pinned by its group keys
		return "SELECT a.k, COUNT(*) AS n, MIN(b.g) AS mn, MAX(b.g) AS mx FROM ta a " + join + " tb b ON " + on + where +
			" GROUP BY a.k ORDER BY a.k"
	}
}

// TestJoinSpillPropertyRandom generalizes the hand-written determinism tests:
// for seeded random tables, predicates and join shapes, results must be
// byte-identical across DOP {1,4,8} × JoinMemoryBudget {unlimited, tiny}.
func TestJoinSpillPropertyRandom(t *testing.T) {
	cases := 4
	if !testing.Short() {
		cases = 8
	}
	for c := 0; c < cases; c++ {
		c := c
		t.Run(fmt.Sprintf("case=%d", c), func(t *testing.T) {
			setup := randTables(rand.New(rand.NewSource(int64(1000 + c))))
			queries := make([]string, 3)
			qrng := rand.New(rand.NewSource(int64(9000 + c)))
			for i := range queries {
				queries[i] = randQuery(qrng)
			}

			var want []string
			for _, dop := range []int{1, 4, 8} {
				for _, budget := range []int64{0, tinySpillBudget} {
					cfg := DefaultConfig()
					cfg.Parallelism = dop
					cfg.JoinMemoryBudget = budget
					db := Open(cfg)
					for _, s := range setup {
						db.MustExec(s)
					}
					spillsBefore := db.Engine().Work.JoinSpills.Load()
					for i, q := range queries {
						r, err := db.Query(q)
						if err != nil {
							t.Fatalf("dop=%d budget=%d query %q: %v", dop, budget, q, err)
						}
						got := renderRows(r)
						if want == nil || i >= len(want) {
							want = append(want, got)
							continue
						}
						if got != want[i] {
							t.Fatalf("dop=%d budget=%d query %q differs:\ngot:\n%s\nwant:\n%s", dop, budget, q, got, want[i])
						}
					}
					if budget > 0 && db.Engine().Work.JoinSpills.Load() == spillsBefore {
						t.Fatalf("dop=%d: tiny budget never spilled", dop)
					}
					if leaked := db.Engine().Store.List(objectstore.SpillPrefix); len(leaked) != 0 {
						t.Fatalf("dop=%d budget=%d: %d spill files leaked", dop, budget, len(leaked))
					}
					db.Close()
				}
			}
		})
	}
}

// TestMultiSpilledJoinStages is a regression test: two joins in one
// statement whose build sides BOTH overflow the budget. Each build must get
// its own spill namespace — with a shared one, the second build's partition
// files overwrite the first's (identical relative paths), and the first
// stage then probes the wrong table's data.
func TestMultiSpilledJoinStages(t *testing.T) {
	mk := func(budget int64) *DB {
		cfg := DefaultConfig()
		cfg.Parallelism = 4
		cfg.JoinMemoryBudget = budget
		db := Open(cfg)
		db.MustExec(`CREATE TABLE l (a INT, b INT) WITH (DISTRIBUTION = a)`)
		db.MustExec(`CREATE TABLE m (a INT, t VARCHAR, c INT) WITH (DISTRIBUTION = a)`)
		db.MustExec(`CREATE TABLE n (c INT, u VARCHAR) WITH (DISTRIBUTION = c)`)
		var sb strings.Builder
		sb.WriteString("INSERT INTO l VALUES ")
		for i := 0; i < 150; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d,%d)", i%25, i)
		}
		db.MustExec(sb.String())
		sb.Reset()
		sb.WriteString("INSERT INTO m VALUES ")
		for i := 0; i < 200; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d,'m%d',%d)", i%25, i, i%12)
		}
		db.MustExec(sb.String())
		sb.Reset()
		sb.WriteString("INSERT INTO n VALUES ")
		for i := 0; i < 180; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d,'n%d')", i%12, i)
		}
		db.MustExec(sb.String())
		return db
	}
	const q = `SELECT l.b, m.t, n.u FROM l JOIN m ON l.a = m.a JOIN n ON m.c = n.c ORDER BY l.b, m.t, n.u`
	ref := mk(0)
	defer ref.Close()
	want := renderRows(ref.MustExec(q))

	sp := mk(512)
	defer sp.Close()
	got := renderRows(sp.MustExec(q))
	if n := sp.Engine().Work.JoinSpills.Load(); n < 2 {
		t.Fatalf("JoinSpills = %d, want 2 (both builds must spill)", n)
	}
	if got != want {
		t.Fatalf("two spilled join stages differ from unlimited:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if leaked := sp.Engine().Store.List(objectstore.SpillPrefix); len(leaked) != 0 {
		t.Fatalf("leaked %d spill files", len(leaked))
	}
}

// TestJoinSpillEdges covers the plan shapes that bypass the parallel path or
// carry no probe rows: an empty probe side against an over-budget build, a
// bare-LIMIT join (serial executor + SpilledProbe), and INSERT ... SELECT
// over a spilled join — all with the spill namespace empty afterwards.
func TestJoinSpillEdges(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	cfg.JoinMemoryBudget = 512
	db := Open(cfg)
	defer db.Close()
	db.MustExec(`CREATE TABLE el (k INT, v INT) WITH (DISTRIBUTION = k)`)
	db.MustExec(`CREATE TABLE eb (k INT, tag VARCHAR) WITH (DISTRIBUTION = k)`)
	var sb strings.Builder
	sb.WriteString("INSERT INTO eb VALUES ")
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'x-%d')", i%30, i)
	}
	db.MustExec(sb.String())

	// Empty probe side joined against an over-budget build.
	r := db.MustExec(`SELECT a.v, b.tag FROM el a JOIN eb b ON a.k = b.k`)
	if r.Len() != 0 {
		t.Fatalf("empty-probe join rows = %d", r.Len())
	}

	sb.Reset()
	sb.WriteString("INSERT INTO el VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i%40, i)
	}
	db.MustExec(sb.String())

	// Bare LIMIT goes through the serial executor's SpilledProbe.
	r = db.MustExec(`SELECT a.v, b.tag FROM el a JOIN eb b ON a.k = b.k LIMIT 7`)
	if r.Len() != 7 {
		t.Fatalf("bare-limit spilled join rows = %d", r.Len())
	}

	// DML over a spilled join.
	db.MustExec(`CREATE TABLE sink (v INT, tag VARCHAR)`)
	res := db.MustExec(`INSERT INTO sink SELECT a.v, b.tag FROM el a JOIN eb b ON a.k = b.k`)
	if res.RowsAffected() == 0 {
		t.Fatal("insert-select over spilled join affected 0 rows")
	}
	if got := db.Engine().Work.JoinSpills.Load(); got < 2 {
		t.Fatalf("JoinSpills = %d, want >= 2", got)
	}
	if leaked := db.Engine().Store.List(objectstore.SpillPrefix); len(leaked) != 0 {
		t.Fatalf("leaked %d spill files", len(leaked))
	}
}

// TestConcurrentPartitionJoins is the acceptance test of the partition-wise
// fan-out (run under -race in CI): the TPC-H Q10 shape — two spilling builds
// in one statement, so two grace joins run their partition tasks on the
// worker pool back to back — must stay byte-identical to the unlimited serial
// plan at DOP {1,4,8} × budget {0, tiny}, join the same number of partition
// pairs at every DOP (fanning out moves work between workers, never between
// partitions), and leave the spill namespace empty after success and after an
// injected mid-partition write failure.
func TestConcurrentPartitionJoins(t *testing.T) {
	const q = `SELECT c.c_custkey, l.l_quantity, l.l_shipdate
		FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
		JOIN customer c ON o.o_custkey = c.c_custkey
		WHERE l.l_shipdate > 8000
		ORDER BY c.c_custkey, l.l_quantity, l.l_shipdate`
	serial := openTPCHBudget(t, 1, 0)
	want := renderRows(serial.MustExec(q))
	serial.Close()
	if want == "" {
		t.Fatal("reference query returned no rows")
	}

	// Below even the 0.05-scale customer build — now just the pruned
	// c_custkey column (~0.1 KiB) after scan projection pushdown — so BOTH
	// builds of the statement overflow, not just orders.
	const twoBuildBudget = 64

	var wantParts int64 = -1
	for _, dop := range []int{1, 4, 8} {
		for _, budget := range []int64{0, twoBuildBudget} {
			db := openTPCHBudget(t, dop, budget)
			if got := renderRows(db.MustExec(q)); got != want {
				t.Fatalf("dop=%d budget=%d: parallel partition-wise join differs from unlimited serial:\ngot:\n%s\nwant:\n%s",
					dop, budget, got, want)
			}
			spills := db.Engine().Work.JoinSpills.Load()
			parts := db.Engine().Work.JoinSpillPartitions.Load()
			if budget == 0 {
				if spills != 0 || parts != 0 {
					t.Fatalf("dop=%d budget=0: unexpected spill activity: spills=%d partitions=%d", dop, spills, parts)
				}
			} else {
				if spills < 2 {
					t.Fatalf("dop=%d: JoinSpills = %d, want 2 (both builds must spill)", dop, spills)
				}
				if parts == 0 {
					t.Fatal("JoinSpillPartitions = 0 after two spilled joins")
				}
				if wantParts < 0 {
					wantParts = parts
				} else if parts != wantParts {
					t.Fatalf("dop=%d: JoinSpillPartitions = %d, want %d (partition decomposition must be DOP-invariant)",
						dop, parts, wantParts)
				}
			}
			if leaked := db.Engine().Store.List(objectstore.SpillPrefix); len(leaked) != 0 {
				t.Fatalf("dop=%d budget=%d: %d spill files leaked", dop, budget, len(leaked))
			}
			db.Close()
		}
	}

	// Injected mid-partition failure: fail a spill write landing deep in the
	// statement's spill traffic — inside the fanned-out partition-wise join
	// phase, where concurrent partition tasks are repartitioning and reading
	// — and require a clean error, an empty spill namespace, and an exact
	// result once the fault clears.
	faults := objectstore.NewFaultInjector(7)
	store := objectstore.New(objectstore.WithFaults(faults))
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 4})
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	opts.JoinMemoryBudget = twoBuildBudget
	eng := core.NewEngine(catalog.NewDB(), store, fabric, opts)
	if _, err := workload.LoadTPCH(eng, 0.05, 2); err != nil {
		t.Fatalf("load tpch: %v", err)
	}
	sess := sql.NewSession(eng)
	defer sess.Close()
	putsBefore := store.Metrics().Puts
	res, err := sess.Exec(q)
	if err != nil {
		t.Fatalf("clean spilled run: %v", err)
	}
	if got := renderRows(wrap(res)); got != want {
		t.Fatalf("fault-engine clean run differs from reference")
	}
	spillPuts := store.Metrics().Puts - putsBefore
	if spillPuts < 4 {
		t.Fatalf("query performed only %d spill puts; cannot aim mid-partition", spillPuts)
	}
	faults.FailNth(objectstore.OpPut, int(spillPuts*3/5))
	_, err = sess.Exec(q)
	faults.FailNth(objectstore.OpPut, 0)
	if err == nil {
		t.Fatal("mid-partition put failure surfaced no error")
	}
	if !strings.Contains(err.Error(), "spill write") {
		t.Fatalf("mid-partition failure does not name the spill write: %v", err)
	}
	if leaked := store.List(objectstore.SpillPrefix); len(leaked) != 0 {
		t.Fatalf("mid-partition failure leaked %d spill files", len(leaked))
	}
	res, err = sess.Exec(q)
	if err != nil {
		t.Fatalf("query after fault cleared: %v", err)
	}
	if got := renderRows(wrap(res)); got != want {
		t.Fatalf("post-fault result differs from reference")
	}
}

// TestJoinSpillUnderStorageFaults drives the spill path into injected object
// store write failures: the query must fail with a clean error naming the
// spill write (no partial results), the spill namespace must be empty
// afterwards, and WorkStats.JoinSpillBytes must account exactly the spill
// bytes that became durable (the store's own BytesWritten metric) — never the
// attempted writes — then the same query must succeed once the faults clear.
func TestJoinSpillUnderStorageFaults(t *testing.T) {
	faults := objectstore.NewFaultInjector(42)
	store := objectstore.New(objectstore.WithFaults(faults))
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 4})
	opts := core.DefaultOptions()
	opts.Parallelism = 4
	opts.JoinMemoryBudget = tinySpillBudget
	eng := core.NewEngine(catalog.NewDB(), store, fabric, opts)
	sess := sql.NewSession(eng)
	defer sess.Close()

	mustExec := func(q string) {
		t.Helper()
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	mustExec(`CREATE TABLE f1 (k INT, v INT) WITH (DISTRIBUTION = k)`)
	mustExec(`CREATE TABLE f2 (k INT, tag VARCHAR) WITH (DISTRIBUTION = k)`)
	for s := 0; s < 4; s++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO f1 VALUES ")
		for i := 0; i < 200; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", (s*200+i)%40, s*200+i)
		}
		mustExec(sb.String())
		sb.Reset()
		sb.WriteString("INSERT INTO f2 VALUES ")
		for i := 0; i < 200; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'tag-%d')", (s*200+i)%60, s*200+i)
		}
		mustExec(sb.String())
	}

	const q = `SELECT a.k, a.v, b.tag FROM f1 a JOIN f2 b ON a.k = b.k ORDER BY a.k, a.v, b.tag`
	baseline, err := sess.Exec(q)
	if err != nil {
		t.Fatalf("baseline spilled query: %v", err)
	}
	if eng.Work.JoinSpills.Load() == 0 {
		t.Fatal("baseline query did not spill; fault test would not exercise the spill path")
	}

	// Deterministically fail the nth spill write for a sweep of n: small n
	// land mid build-side partitioning (files already on disk when the
	// error surfaces), larger n land in probe-side partitioning and in the
	// repartition writes of the partition-wise join fan-out. Every failure
	// must be a clean error naming the spill write, the spill namespace must
	// be empty afterwards — build files of a half-finished spill included —
	// and the spill-bytes accounting must move in lockstep with the bytes
	// the store durably accepted: a put that failed (or was cancelled)
	// contributes nothing to JoinSpillBytes.
	sawFailure := false
	for _, n := range []int{1, 3, 8, 20, 60, 150} {
		spillBytesBefore := eng.Work.JoinSpillBytes.Load()
		durableBefore := store.Metrics().BytesWritten
		faults.FailNth(objectstore.OpPut, n)
		res, err := sess.Exec(q)
		faults.FailNth(objectstore.OpPut, 0)
		if err != nil {
			sawFailure = true
			if !strings.Contains(err.Error(), "spill write") {
				t.Fatalf("failing put %d: error does not name the spill write: %v", n, err)
			}
		} else if res.Batch.NumRows() != baseline.Batch.NumRows() {
			// The nth put never happened (query needs fewer); the query
			// must then have succeeded completely, not partially.
			t.Fatalf("failing put %d: partial result: %d rows, baseline %d", n, res.Batch.NumRows(), baseline.Batch.NumRows())
		}
		if leaked := store.List(objectstore.SpillPrefix); len(leaked) != 0 {
			t.Fatalf("failing put %d: %d spill files leaked: %v", n, len(leaked), leaked[:min(3, len(leaked))])
		}
		// A SELECT writes nothing but spill files, so on success the
		// counter's growth must equal the store's durable-write growth
		// exactly. On failure it must never exceed it: a put that failed
		// (or was cancelled) contributes nothing, and a build that errored
		// mid-spill contributes at most what the store accepted before its
		// namespace was torn down.
		accounted := eng.Work.JoinSpillBytes.Load() - spillBytesBefore
		durable := store.Metrics().BytesWritten - durableBefore
		if err == nil && accounted != durable {
			t.Fatalf("failing put %d: JoinSpillBytes grew %d, but the store durably accepted %d spill bytes", n, accounted, durable)
		}
		if accounted > durable {
			t.Fatalf("failing put %d: JoinSpillBytes grew %d, more than the %d bytes the store durably accepted", n, accounted, durable)
		}
	}
	if !sawFailure {
		t.Fatal("no injected failure landed inside the spill pipeline; widen the sweep")
	}

	// Probabilistic faults on top: whatever happens, no partial results and
	// no leaks.
	faults.SetProbability(objectstore.OpPut, 0.5)
	res, err := sess.Exec(q)
	faults.SetProbability(objectstore.OpPut, 0)
	if err == nil && res.Batch.NumRows() != baseline.Batch.NumRows() {
		t.Fatalf("query under random faults returned partial result: %d rows", res.Batch.NumRows())
	}
	if leaked := store.List(objectstore.SpillPrefix); len(leaked) != 0 {
		t.Fatalf("%d spill files leaked after random-fault query", len(leaked))
	}

	// With faults cleared the same query succeeds and matches the baseline.
	again, err := sess.Exec(q)
	if err != nil {
		t.Fatalf("query after faults cleared: %v", err)
	}
	if again.Batch.NumRows() != baseline.Batch.NumRows() {
		t.Fatalf("post-fault rows = %d, baseline = %d", again.Batch.NumRows(), baseline.Batch.NumRows())
	}
	if leaked := store.List(objectstore.SpillPrefix); len(leaked) != 0 {
		t.Fatalf("%d spill files leaked after successful query", len(leaked))
	}
}
