# Local and CI entry points — .github/workflows/ci.yml invokes exactly these
# targets, so a green `make ci` locally means a green CI run.

GO ?= go

# Output of the machine-readable micro-benchmark run. Parameterized so each
# PR bumps one variable (or CI overrides it) instead of editing the target:
#   make bench-json BENCH_JSON=BENCH_PR5.json
BENCH_JSON ?= BENCH_PR9.json

.PHONY: build lint test race bench-smoke bench-json fuzz-smoke server-smoke docs ci

build:
	$(GO) build ./...

# gofmt + go vet + the repo's own contract analyzers (determinism, kernel
# selection-vector discipline, spill cleanup, context boundaries — see
# docs/LINT.md for the catalog and the //polaris:<key> escape grammar).
lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/polarisvet ./...

# -short skips the slow paper-figure experiments; the full suite
# (`go test ./...`, no -short) is the tier-1 verification run. The grace-join
# spill tests (tiny-budget determinism, fault injection, fuzz seed corpora)
# run in both.
test:
	$(GO) test -short ./...

# Race-check the whole tree. The hot spots: the morsel-driven parallel
# executor and the SQL surface that drives it — including the grace-join
# spill path (root spill_test.go and internal/exec/spill_test.go run
# tiny-budget spilling joins, the parallel partition-wise fan-out, and
# concurrent JoinBatches calls under -race on every push), the
# queued-admission fabric leasing, the multi-session HTTP server (bounded
# concurrent-traffic stress with STO maintenance, the admission unit suite,
# and the two-session interleaved-transaction test), and the DCP task
# scheduler (retry/re-placement and the RunCtx cancellation watcher
# exercised by the distributed-query DAG path). `./...` rather than a
# package list so new packages are race-checked by default.
race:
	$(GO) test -race -short ./...

# One iteration of every parallel-executor benchmark (scan, join, spilled
# join, sort, top-N): catches bit-rot in the benchmark harness (and the
# cross-DOP identity checks inside them) without paying for a full
# measurement run.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkParallel' -benchtime 1x .

# Full micro-benchmark measurement written as machine-readable JSON: the
# per-PR perf trajectory (ns/op + allocs/op for ParallelScan/ParallelJoin/
# ParallelJoinSpill/ParallelSort/ParallelTopN at DOP 1/4/8 plus the
# fmt-vs-typed key-encoding baseline). CI uploads the file as a workflow
# artifact next to the previous PR's snapshot so the trajectory is diffable
# per commit.
bench-json:
	$(GO) run ./cmd/benchrunner -json $(BENCH_JSON)

# Bounded fuzz exploration of the encoded-key machinery the spill path leans
# on (join/group keys, ORDER BY keys, spill batch round-trip). The seed
# corpora already run inside `make test`; this adds a few seconds of
# coverage-guided search per target on every push.
fuzz-smoke:
	$(GO) test -run NONE -fuzz '^FuzzAppendKey$$' -fuzztime 5s ./internal/colfile
	$(GO) test -run NONE -fuzz '^FuzzAppendSortKey$$' -fuzztime 5s ./internal/colfile
	$(GO) test -run NONE -fuzz '^FuzzBatchSpillRoundTrip$$' -fuzztime 5s ./internal/colfile
	$(GO) test -run NONE -fuzz '^FuzzKernelEquivalence$$' -fuzztime 5s ./internal/exec

# End-to-end lifecycle gate for the multi-session HTTP front end: boots
# polaris-server on an ephemeral port, health-checks it, runs DDL + DML + a
# query over HTTP, scrapes /metrics, drains, and verifies nothing leaked
# (zero leased slots, zero sessions). See docs/SERVER.md.
server-smoke:
	$(GO) run ./cmd/polaris-server -smoke

# Documentation gate: every relative markdown link AND #fragment anchor in
# the doc set must resolve, benchmark-snapshot references must not be stale
# relative to $(BENCH_JSON), the docs/LINT.md analyzer catalog must match
# the polarisvet registry both ways (-lint-catalog), docs/PERF.md must match
# the committed BENCH_PR*.json snapshots byte-for-byte (perfdoc -check), and
# the package docs for the public API and the executor must render (catches
# syntax-level doc rot).
docs:
	$(GO) run ./cmd/doccheck -bench-default $(BENCH_JSON) -lint-catalog docs/LINT.md \
		README.md ROADMAP.md PAPER.md \
		docs/ARCHITECTURE.md docs/VECTORIZATION.md docs/PLANNER.md docs/PERF.md \
		docs/SERVER.md docs/DCP-QUERIES.md docs/LINT.md
	$(GO) run ./cmd/doccheck CHANGES.md  # historical log: links only, past defaults allowed
	$(GO) run ./cmd/perfdoc -check
	@$(GO) doc . >/dev/null
	@$(GO) doc ./internal/exec >/dev/null
	@$(GO) doc ./internal/colfile >/dev/null
	@echo "docs OK"

ci: build lint test race fuzz-smoke bench-smoke server-smoke docs
