# Local and CI entry points — .github/workflows/ci.yml invokes exactly these
# targets, so a green `make ci` locally means a green CI run.

GO ?= go

.PHONY: build lint test race bench-smoke ci

build:
	$(GO) build ./...

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# -short skips the slow paper-figure experiments; the full suite
# (`go test ./...`, no -short) is the tier-1 verification run.
test:
	$(GO) test -short ./...

# Race-check the morsel-driven parallel executor and the SQL surface that
# drives it.
race:
	$(GO) test -race -short . ./internal/exec/...

# One iteration of the parallel scan benchmark: catches bit-rot in the
# benchmark harness without paying for a full measurement run.
bench-smoke:
	$(GO) test -run NONE -bench BenchmarkParallelScan -benchtime 1x .

ci: build lint test race bench-smoke
