# Local and CI entry points — .github/workflows/ci.yml invokes exactly these
# targets, so a green `make ci` locally means a green CI run.

GO ?= go

.PHONY: build lint test race bench-smoke bench-json docs ci

build:
	$(GO) build ./...

lint:
	@fmt_out=$$(gofmt -l .); \
	if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; \
	fi
	$(GO) vet ./...

# -short skips the slow paper-figure experiments; the full suite
# (`go test ./...`, no -short) is the tier-1 verification run.
test:
	$(GO) test -short ./...

# Race-check the morsel-driven parallel executor and the SQL surface that
# drives it.
race:
	$(GO) test -race -short . ./internal/exec/...

# One iteration of every parallel-executor benchmark (scan, join, sort,
# top-N): catches bit-rot in the benchmark harness (and the cross-DOP
# identity checks inside them) without paying for a full measurement run.
bench-smoke:
	$(GO) test -run NONE -bench 'BenchmarkParallel' -benchtime 1x .

# Full micro-benchmark measurement written as machine-readable JSON: the
# per-PR perf trajectory (ns/op + allocs/op for ParallelScan/ParallelJoin/
# ParallelSort/ParallelTopN at DOP 1/4/8 plus the fmt-vs-typed key-encoding
# baseline). CI uploads the file as a workflow artifact next to the previous
# PR's snapshot so the trajectory is diffable per commit.
bench-json:
	$(GO) run ./cmd/benchrunner -json BENCH_PR3.json

# Documentation gate: every relative markdown link in the doc set must
# resolve, and the package docs for the public API and the executor must
# render (catches syntax-level doc rot).
docs:
	$(GO) run ./cmd/doccheck README.md ROADMAP.md CHANGES.md PAPER.md docs/ARCHITECTURE.md
	@$(GO) doc . >/dev/null
	@$(GO) doc ./internal/exec >/dev/null
	@$(GO) doc ./internal/colfile >/dev/null
	@echo "docs OK"

ci: build lint test race bench-smoke docs
