// Package deletevector implements the compressed row-deletion bitmaps that
// merge-on-read log-structured tables attach to immutable data files
// (paper Section 2.1). A delete vector marks row ordinals within one data
// file as deleted; readers filter marked rows out at scan time.
//
// The representation is a sorted set of [start,end) runs, which compresses
// both the sparse case (trickle deletes) and the dense case (bulk deletes of
// contiguous ranges) well, and makes Union — needed when a later statement in
// the same transaction deletes more rows from the same file — linear.
package deletevector

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Vector is a set of deleted row ordinals for a single data file.
// The zero value is an empty vector ready for use.
type Vector struct {
	runs []run // sorted, non-overlapping, non-adjacent
}

type run struct{ start, end uint32 } // [start, end)

// New returns an empty delete vector.
func New() *Vector { return &Vector{} }

// FromRows builds a vector from an arbitrary list of row ordinals.
func FromRows(rows []uint32) *Vector {
	v := New()
	if len(rows) == 0 {
		return v
	}
	sorted := append([]uint32(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	start := sorted[0]
	prev := sorted[0]
	for _, r := range sorted[1:] {
		if r == prev || r == prev+1 {
			prev = r
			continue
		}
		v.runs = append(v.runs, run{start, prev + 1})
		start, prev = r, r
	}
	v.runs = append(v.runs, run{start, prev + 1})
	return v
}

// Add marks a single row as deleted.
func (v *Vector) Add(row uint32) { v.AddRange(row, row+1) }

// AddRange marks rows in [start, end) as deleted.
func (v *Vector) AddRange(start, end uint32) {
	if start >= end {
		return
	}
	// Find insertion window of runs overlapping or adjacent to [start,end).
	i := sort.Search(len(v.runs), func(i int) bool { return v.runs[i].end >= start })
	j := i
	ns, ne := start, end
	for j < len(v.runs) && v.runs[j].start <= end {
		if v.runs[j].start < ns {
			ns = v.runs[j].start
		}
		if v.runs[j].end > ne {
			ne = v.runs[j].end
		}
		j++
	}
	merged := make([]run, 0, len(v.runs)-(j-i)+1)
	merged = append(merged, v.runs[:i]...)
	merged = append(merged, run{ns, ne})
	merged = append(merged, v.runs[j:]...)
	v.runs = merged
}

// Contains reports whether the row is marked deleted.
func (v *Vector) Contains(row uint32) bool {
	i := sort.Search(len(v.runs), func(i int) bool { return v.runs[i].end > row })
	return i < len(v.runs) && v.runs[i].start <= row
}

// Cardinality returns the number of deleted rows.
func (v *Vector) Cardinality() int {
	var n int
	for _, r := range v.runs {
		n += int(r.end - r.start)
	}
	return n
}

// IsEmpty reports whether no rows are deleted.
func (v *Vector) IsEmpty() bool { return len(v.runs) == 0 }

// Union merges another vector into this one (in place) and returns v.
// This implements the paper's "merged version" of a delete vector when a
// statement deletes rows from a file that already has a delete vector.
func (v *Vector) Union(o *Vector) *Vector {
	if o == nil {
		return v
	}
	for _, r := range o.runs {
		v.AddRange(r.start, r.end)
	}
	return v
}

// Clone returns a deep copy.
func (v *Vector) Clone() *Vector {
	return &Vector{runs: append([]run(nil), v.runs...)}
}

// Rows returns all deleted row ordinals in ascending order.
func (v *Vector) Rows() []uint32 {
	out := make([]uint32, 0, v.Cardinality())
	for _, r := range v.runs {
		for x := r.start; x < r.end; x++ {
			out = append(out, x)
		}
	}
	return out
}

// ForEachRun calls fn for each maximal deleted run [start,end) in order.
func (v *Vector) ForEachRun(fn func(start, end uint32)) {
	for _, r := range v.runs {
		fn(r.start, r.end)
	}
}

// Equal reports whether two vectors mark exactly the same rows.
func (v *Vector) Equal(o *Vector) bool {
	if len(v.runs) != len(o.runs) {
		return false
	}
	for i, r := range v.runs {
		if o.runs[i] != r {
			return false
		}
	}
	return true
}

// FilterMask returns a boolean slice of length n where true means the row
// survives (is NOT deleted). Rows at or beyond n are ignored.
func (v *Vector) FilterMask(n int) []bool {
	mask := make([]bool, n)
	for i := range mask {
		mask[i] = true
	}
	for _, r := range v.runs {
		for x := r.start; x < r.end && int(x) < n; x++ {
			mask[x] = false
		}
	}
	return mask
}

const magic = uint32(0x44564543) // "DVEC"

// Marshal serializes the vector: magic, run count, then delta-varint runs.
func (v *Vector) Marshal() []byte {
	buf := make([]byte, 0, 8+len(v.runs)*4)
	buf = binary.LittleEndian.AppendUint32(buf, magic)
	buf = binary.AppendUvarint(buf, uint64(len(v.runs)))
	var prevEnd uint32
	for _, r := range v.runs {
		buf = binary.AppendUvarint(buf, uint64(r.start-prevEnd))
		buf = binary.AppendUvarint(buf, uint64(r.end-r.start))
		prevEnd = r.end
	}
	return buf
}

// Unmarshal parses a serialized vector.
func Unmarshal(data []byte) (*Vector, error) {
	if len(data) < 4 || binary.LittleEndian.Uint32(data[:4]) != magic {
		return nil, errors.New("deletevector: bad magic")
	}
	p := data[4:]
	n, k := binary.Uvarint(p)
	if k <= 0 {
		return nil, errors.New("deletevector: truncated run count")
	}
	p = p[k:]
	v := New()
	var prevEnd uint32
	for i := uint64(0); i < n; i++ {
		gap, k1 := binary.Uvarint(p)
		if k1 <= 0 {
			return nil, fmt.Errorf("deletevector: truncated run %d start", i)
		}
		p = p[k1:]
		length, k2 := binary.Uvarint(p)
		if k2 <= 0 || length == 0 {
			return nil, fmt.Errorf("deletevector: truncated or empty run %d", i)
		}
		p = p[k2:]
		start := prevEnd + uint32(gap)
		end := start + uint32(length)
		v.runs = append(v.runs, run{start, end})
		prevEnd = end
	}
	return v, nil
}

// String renders the runs for debugging.
func (v *Vector) String() string {
	s := "dv{"
	for i, r := range v.runs {
		if i > 0 {
			s += ","
		}
		if r.end == r.start+1 {
			s += fmt.Sprintf("%d", r.start)
		} else {
			s += fmt.Sprintf("%d-%d", r.start, r.end-1)
		}
	}
	return s + "}"
}
