package deletevector

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	v := New()
	if !v.IsEmpty() || v.Cardinality() != 0 || v.Contains(0) {
		t.Fatalf("empty vector misbehaves: %v", v)
	}
}

func TestAddAndContains(t *testing.T) {
	v := New()
	v.Add(5)
	v.Add(7)
	v.Add(6)
	if !v.Contains(5) || !v.Contains(6) || !v.Contains(7) {
		t.Fatalf("missing rows: %v", v)
	}
	if v.Contains(4) || v.Contains(8) {
		t.Fatalf("extra rows: %v", v)
	}
	if v.Cardinality() != 3 {
		t.Fatalf("cardinality = %d", v.Cardinality())
	}
	if len(v.runs) != 1 {
		t.Fatalf("adjacent adds should coalesce into one run: %v", v)
	}
}

func TestAddRangeMerging(t *testing.T) {
	v := New()
	v.AddRange(10, 20)
	v.AddRange(30, 40)
	v.AddRange(15, 35) // bridges both
	if len(v.runs) != 1 || v.runs[0] != (run{10, 40}) {
		t.Fatalf("runs = %v", v.runs)
	}
	v.AddRange(40, 45) // adjacent extends
	if len(v.runs) != 1 || v.runs[0] != (run{10, 45}) {
		t.Fatalf("adjacent extend failed: %v", v.runs)
	}
	v.AddRange(0, 0) // empty no-op
	if v.Cardinality() != 35 {
		t.Fatalf("cardinality = %d", v.Cardinality())
	}
}

func TestFromRows(t *testing.T) {
	v := FromRows([]uint32{9, 1, 2, 3, 7, 9, 9})
	if v.Cardinality() != 5 {
		t.Fatalf("cardinality = %d, want 5 (dups collapse)", v.Cardinality())
	}
	want := []uint32{1, 2, 3, 7, 9}
	got := v.Rows()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rows = %v, want %v", got, want)
		}
	}
	if FromRows(nil).Cardinality() != 0 {
		t.Fatal("FromRows(nil) not empty")
	}
}

func TestUnion(t *testing.T) {
	a := FromRows([]uint32{1, 2, 3})
	b := FromRows([]uint32{3, 4, 10})
	a.Union(b)
	if a.Cardinality() != 5 {
		t.Fatalf("cardinality = %d", a.Cardinality())
	}
	for _, r := range []uint32{1, 2, 3, 4, 10} {
		if !a.Contains(r) {
			t.Fatalf("missing %d after union", r)
		}
	}
	a.Union(nil) // nil is a no-op
	if a.Cardinality() != 5 {
		t.Fatal("union with nil changed vector")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromRows([]uint32{1, 5})
	b := a.Clone()
	b.Add(9)
	if a.Contains(9) {
		t.Fatal("clone aliases parent")
	}
	if !a.Equal(FromRows([]uint32{1, 5})) {
		t.Fatal("parent mutated")
	}
}

func TestFilterMask(t *testing.T) {
	v := FromRows([]uint32{0, 2, 9})
	mask := v.FilterMask(5)
	want := []bool{false, true, false, true, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Fatalf("mask = %v, want %v", mask, want)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	v := FromRows([]uint32{0, 1, 2, 100, 5000, 5001})
	data := v.Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: got %v, want %v", got, v)
	}
}

func TestMarshalEmpty(t *testing.T) {
	data := New().Marshal()
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsEmpty() {
		t.Fatalf("got %v", got)
	}
}

func TestUnmarshalCorrupt(t *testing.T) {
	cases := [][]byte{
		nil,
		{1, 2, 3},
		{0x43, 0x45, 0x56, 0x44, 0xFF}, // magic ok, truncated count varint... 0xFF needs continuation
	}
	for i, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %d: corrupt input accepted", i)
		}
	}
}

func TestForEachRun(t *testing.T) {
	v := FromRows([]uint32{1, 2, 3, 10})
	var got [][2]uint32
	v.ForEachRun(func(s, e uint32) { got = append(got, [2]uint32{s, e}) })
	if len(got) != 2 || got[0] != [2]uint32{1, 4} || got[1] != [2]uint32{10, 11} {
		t.Fatalf("runs = %v", got)
	}
}

func TestStringFormat(t *testing.T) {
	v := FromRows([]uint32{1, 3, 4, 5})
	if s := v.String(); s != "dv{1,3-5}" {
		t.Fatalf("String = %q", s)
	}
}

func TestPropertySetSemantics(t *testing.T) {
	// A Vector behaves exactly like a set of uint32s (bounded domain so runs merge).
	f := func(rows []uint16) bool {
		set := map[uint32]bool{}
		v := New()
		for _, r := range rows {
			v.Add(uint32(r))
			set[uint32(r)] = true
		}
		if v.Cardinality() != len(set) {
			return false
		}
		for r := range set {
			if !v.Contains(r) {
				return false
			}
		}
		// round-trip preserves equality
		back, err := Unmarshal(v.Marshal())
		return err == nil && back.Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionIsSetUnion(t *testing.T) {
	f := func(a, b []uint16) bool {
		va, vb := New(), New()
		set := map[uint32]bool{}
		for _, r := range a {
			va.Add(uint32(r))
			set[uint32(r)] = true
		}
		for _, r := range b {
			vb.Add(uint32(r))
			set[uint32(r)] = true
		}
		va.Union(vb)
		if va.Cardinality() != len(set) {
			return false
		}
		for r := range set {
			if !va.Contains(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	v := New()
	ref := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		start := uint32(rng.Intn(1000))
		length := uint32(rng.Intn(20) + 1)
		v.AddRange(start, start+length)
		for x := start; x < start+length; x++ {
			ref[x] = true
		}
	}
	if v.Cardinality() != len(ref) {
		t.Fatalf("cardinality = %d, ref = %d", v.Cardinality(), len(ref))
	}
	for x := uint32(0); x < 1100; x++ {
		if v.Contains(x) != ref[x] {
			t.Fatalf("Contains(%d) = %v, ref %v", x, v.Contains(x), ref[x])
		}
	}
	// runs must be sorted, non-overlapping, non-adjacent
	for i := 1; i < len(v.runs); i++ {
		if v.runs[i].start <= v.runs[i-1].end {
			t.Fatalf("runs not normalized: %v", v.runs)
		}
	}
}
