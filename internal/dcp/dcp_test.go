package dcp

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"polaris/internal/compute"
)

func pools(readNodes, writeNodes int) (Pools, *compute.Fabric) {
	f := compute.NewFabric(compute.Config{Elastic: true, InitNodes: readNodes + writeNodes, SlotsPer: 2})
	nodes := f.Nodes()
	return Pools{
		ReadPool:  nodes[:readNodes],
		WritePool: nodes[readNodes:],
	}, f
}

func simpleTask(id int, deps []int, out any, sim time.Duration) *Task {
	return &Task{
		ID: id, Name: fmt.Sprintf("t%d", id), Deps: deps,
		Exec: func(ctx *Ctx) (any, error) {
			ctx.Charge(sim)
			return out, nil
		},
	}
}

func TestLinearChain(t *testing.T) {
	g := NewGraph()
	must(t, g.Add(simpleTask(1, nil, "a", 10*time.Millisecond)))
	must(t, g.Add(simpleTask(2, []int{1}, "b", 10*time.Millisecond)))
	must(t, g.Add(simpleTask(3, []int{2}, "c", 10*time.Millisecond)))
	p, _ := pools(2, 1)
	res, err := Run(g, p, Options{Overhead: time.Millisecond})
	must(t, err)
	if res.Outputs[3] != "c" || len(res.Outputs) != 3 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
	// serialized: makespan >= 3 * (10ms + 1ms overhead)
	if res.Makespan < 33*time.Millisecond {
		t.Fatalf("makespan = %v, want >= 33ms for a serial chain", res.Makespan)
	}
}

func TestParallelFanOutOverlaps(t *testing.T) {
	g := NewGraph()
	for i := 1; i <= 8; i++ {
		must(t, g.Add(simpleTask(i, nil, i, 10*time.Millisecond)))
	}
	p, _ := pools(2, 1) // 2 nodes x 2 slots = 4 lanes
	res, err := Run(g, p, Options{Overhead: time.Millisecond})
	must(t, err)
	// 8 tasks over 4 lanes: 2 waves => ~22ms, far below serial 88ms
	if res.Makespan > 40*time.Millisecond {
		t.Fatalf("makespan = %v, want parallel overlap", res.Makespan)
	}
	if res.Makespan < 20*time.Millisecond {
		t.Fatalf("makespan = %v, too low for 2 waves", res.Makespan)
	}
}

func TestInputsFlowToChildren(t *testing.T) {
	g := NewGraph()
	must(t, g.Add(simpleTask(1, nil, int64(20), 0)))
	must(t, g.Add(simpleTask(2, nil, int64(22), 0)))
	must(t, g.Add(&Task{
		ID: 3, Deps: []int{1, 2},
		Exec: func(ctx *Ctx) (any, error) {
			return ctx.Inputs[1].(int64) + ctx.Inputs[2].(int64), nil
		},
	}))
	p, _ := pools(1, 1)
	res, err := Run(g, p, Options{})
	must(t, err)
	if res.Outputs[3] != int64(42) {
		t.Fatalf("sum = %v", res.Outputs[3])
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	must(t, g.Add(simpleTask(1, []int{2}, nil, 0)))
	must(t, g.Add(simpleTask(2, []int{1}, nil, 0)))
	p, _ := pools(1, 1)
	if _, err := Run(g, p, Options{}); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestUnknownDependency(t *testing.T) {
	g := NewGraph()
	must(t, g.Add(simpleTask(1, []int{99}, nil, 0)))
	p, _ := pools(1, 1)
	if _, err := Run(g, p, Options{}); err == nil {
		t.Fatal("unknown dep accepted")
	}
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph()
	if err := g.Add(&Task{ID: 1}); err == nil {
		t.Fatal("task without Exec accepted")
	}
	must(t, g.Add(simpleTask(1, nil, nil, 0)))
	if err := g.Add(simpleTask(1, nil, nil, 0)); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
}

func TestRetryOnTransientFailure(t *testing.T) {
	g := NewGraph()
	var calls int32
	must(t, g.Add(&Task{
		ID: 1,
		Exec: func(ctx *Ctx) (any, error) {
			if atomic.AddInt32(&calls, 1) < 3 {
				return nil, errors.New("transient")
			}
			return "ok", nil
		},
	}))
	p, _ := pools(2, 1)
	res, err := Run(g, p, Options{MaxAttempts: 3})
	must(t, err)
	if res.Outputs[1] != "ok" || res.Retries != 2 {
		t.Fatalf("out=%v retries=%d", res.Outputs[1], res.Retries)
	}
	if res.PerTask[1].Attempts != 3 {
		t.Fatalf("attempts = %d", res.PerTask[1].Attempts)
	}
}

func TestPermanentFailure(t *testing.T) {
	g := NewGraph()
	must(t, g.Add(&Task{
		ID:   1,
		Name: "doomed",
		Exec: func(ctx *Ctx) (any, error) { return nil, errors.New("boom") },
	}))
	must(t, g.Add(simpleTask(2, []int{1}, "never", 0)))
	p, _ := pools(1, 1)
	_, err := Run(g, p, Options{MaxAttempts: 2})
	if err == nil {
		t.Fatal("permanent failure not reported")
	}
}

func TestFailureInjectorRePlacement(t *testing.T) {
	// The failed attempt's Exec runs (side effects persist), its output is
	// discarded, and the retry lands on a different node.
	g := NewGraph()
	var nodesSeen []int
	must(t, g.Add(&Task{
		ID: 1,
		Exec: func(ctx *Ctx) (any, error) {
			nodesSeen = append(nodesSeen, ctx.Node.ID)
			return fmt.Sprintf("attempt-%d", ctx.Attempt), nil
		},
	}))
	p, _ := pools(3, 1)
	injected := false
	opts := Options{
		MaxAttempts: 3,
		FailureInjector: func(taskID, attempt int, node *compute.Node) error {
			if attempt == 1 && !injected {
				injected = true
				return errors.New("injected node failure")
			}
			return nil
		},
	}
	res, err := Run(g, p, opts)
	must(t, err)
	if res.Retries != 1 {
		t.Fatalf("retries = %d", res.Retries)
	}
	if len(nodesSeen) != 2 || nodesSeen[0] == nodesSeen[1] {
		t.Fatalf("re-placement failed: nodes = %v", nodesSeen)
	}
	if res.Outputs[1] != "attempt-2" {
		t.Fatalf("failed attempt's output survived: %v", res.Outputs[1])
	}
}

func TestDeadNodesSkipped(t *testing.T) {
	p, f := pools(2, 1)
	f.KillNode(p[ReadPool][0].ID)
	g := NewGraph()
	var node int
	must(t, g.Add(&Task{ID: 1, Exec: func(ctx *Ctx) (any, error) {
		node = ctx.Node.ID
		return nil, nil
	}}))
	res, err := Run(g, p, Options{})
	must(t, err)
	if node != p[ReadPool][1].ID {
		t.Fatalf("task placed on dead node %d", res.PerTask[1].Node)
	}
}

func TestAllNodesDead(t *testing.T) {
	p, f := pools(1, 1)
	f.KillNode(p[ReadPool][0].ID)
	g := NewGraph()
	must(t, g.Add(simpleTask(1, nil, nil, 0)))
	if _, err := Run(g, p, Options{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestWLMSeparation(t *testing.T) {
	p, _ := pools(2, 2)
	readIDs := map[int]bool{p[ReadPool][0].ID: true, p[ReadPool][1].ID: true}
	g := NewGraph()
	for i := 1; i <= 4; i++ {
		pool := ReadPool
		if i%2 == 0 {
			pool = WritePool
		}
		id := i
		must(t, g.Add(&Task{ID: id, Pool: pool, Exec: func(ctx *Ctx) (any, error) {
			return ctx.Node.ID, nil
		}}))
	}
	res, err := Run(g, p, Options{})
	must(t, err)
	for id, out := range res.Outputs {
		onRead := readIDs[out.(int)]
		wantRead := id%2 == 1
		if onRead != wantRead {
			t.Fatalf("task %d ran on wrong pool (node %v)", id, out)
		}
	}
}

func TestWritesDoNotDelayReadsUnderWLM(t *testing.T) {
	// With separated pools, heavy write tasks must not inflate read makespan.
	makespanFor := func(shared bool) time.Duration {
		f := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 2, SlotsPer: 1})
		nodes := f.Nodes()
		var p Pools
		if shared {
			p = Pools{ReadPool: nodes, WritePool: nodes}
		} else {
			p = Pools{ReadPool: nodes[:1], WritePool: nodes[1:]}
		}
		g := NewGraph()
		// 4 heavy writes + 4 light reads
		for i := 1; i <= 4; i++ {
			must(nil, g.Add(simpleTaskPool(i, WritePool, 100*time.Millisecond)))
			must(nil, g.Add(simpleTaskPool(10+i, ReadPool, time.Millisecond)))
		}
		res, err := Run(g, p, Options{Overhead: time.Nanosecond})
		if err != nil {
			panic(err)
		}
		var readEnd time.Duration
		for i := 11; i <= 14; i++ {
			if res.PerTask[i].VirtEnd > readEnd {
				readEnd = res.PerTask[i].VirtEnd
			}
		}
		return readEnd
	}
	separated := makespanFor(false)
	shared := makespanFor(true)
	if separated >= shared {
		t.Fatalf("WLM separation did not help reads: separated=%v shared=%v", separated, shared)
	}
}

func simpleTaskPool(id int, pool PoolKind, sim time.Duration) *Task {
	return &Task{ID: id, Pool: pool, Exec: func(ctx *Ctx) (any, error) {
		ctx.Charge(sim)
		return nil, nil
	}}
}

func TestStartOffsetShiftsMakespan(t *testing.T) {
	g := NewGraph()
	must(t, g.Add(simpleTask(1, nil, nil, 10*time.Millisecond)))
	p, _ := pools(1, 1)
	res, err := Run(g, p, Options{StartOffset: time.Second, Overhead: 0})
	must(t, err)
	if res.Makespan < time.Second+10*time.Millisecond {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}

func TestEmptyGraph(t *testing.T) {
	p, _ := pools(1, 1)
	res, err := Run(NewGraph(), p, Options{})
	must(t, err)
	if res.Makespan != 0 || len(res.Outputs) != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestGather(t *testing.T) {
	res := &Result{Outputs: map[int]any{3: "c", 1: "a", 2: "b"}}
	got := Gather(res, []int{2, 3, 1})
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Fatalf("gather = %v", got)
	}
}

func TestMoreNodesShrinkMakespan(t *testing.T) {
	// The elasticity premise: the same task set on a bigger topology has a
	// smaller simulated makespan (Fig. 8's mechanism).
	build := func() *Graph {
		g := NewGraph()
		for i := 1; i <= 32; i++ {
			_ = g.Add(simpleTask(i, nil, nil, 50*time.Millisecond))
		}
		return g
	}
	run := func(nodes int) time.Duration {
		f := compute.NewFabric(compute.Config{Elastic: true, InitNodes: nodes, SlotsPer: 2})
		res, err := Run(build(), Pools{ReadPool: f.Nodes(), WritePool: f.Nodes()}, Options{Overhead: 0})
		if err != nil {
			panic(err)
		}
		return res.Makespan
	}
	small := run(2)  // 4 lanes: 8 waves
	large := run(16) // 32 lanes: 1 wave
	if large >= small {
		t.Fatalf("scale-out did not help: %v vs %v", large, small)
	}
	ratio := float64(small) / float64(large)
	if ratio < 4 {
		t.Fatalf("speedup ratio = %.1f, want >= 4", ratio)
	}
}

func must(t *testing.T, err error) {
	if t != nil {
		t.Helper()
	}
	if err != nil {
		if t == nil {
			panic(err)
		}
		t.Fatal(err)
	}
}

// TestRunCtxCancelStopsUnstartedTasks pins the first cancellation guarantee:
// once the context is canceled, tasks that have not started never execute
// their payload, and the run reports an error satisfying
// errors.Is(err, context.Canceled). A gate task holds the DAG open until the
// cancel has definitely happened, so the dependents deterministically observe
// it (either the scheduler abandons them outright, or their first attempt
// sees the canceled context before doing work).
func TestRunCtxCancelStopsUnstartedTasks(t *testing.T) {
	g := NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	must(t, g.Add(&Task{ID: 1, Name: "gate", Exec: func(tc *Ctx) (any, error) {
		close(started)
		<-release
		return "gate", nil
	}}))
	var ran atomic.Int32
	for i := 2; i <= 6; i++ {
		must(t, g.Add(&Task{ID: i, Name: fmt.Sprintf("child%d", i), Deps: []int{1},
			Exec: func(tc *Ctx) (any, error) {
				if err := tc.Context().Err(); err != nil {
					return nil, err
				}
				ran.Add(1)
				return nil, nil
			}}))
	}
	p, _ := pools(2, 1)
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		res, err = RunCtx(ctx, g, p, Options{Overhead: time.Millisecond})
	}()
	<-started
	cancel()
	close(release)
	<-done
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil result on canceled run", res)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d dependent tasks ran their payload after cancel", n)
	}
}

// TestRunCtxCancelObservedInFlight pins the second guarantee: a task that is
// already executing sees the cancellation through Ctx.Context at its next
// boundary and can return early; the run surfaces a clean error rather than
// hanging.
func TestRunCtxCancelObservedInFlight(t *testing.T) {
	g := NewGraph()
	ctx, cancel := context.WithCancel(context.Background())
	entered := make(chan struct{})
	must(t, g.Add(&Task{ID: 1, Name: "inflight", Exec: func(tc *Ctx) (any, error) {
		close(entered)
		<-tc.Context().Done() // an operator checking at a batch boundary
		return nil, tc.Context().Err()
	}}))
	go func() {
		<-entered
		cancel()
	}()
	p, _ := pools(1, 1)
	res, err := RunCtx(ctx, g, p, Options{Overhead: time.Millisecond})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if res != nil {
		t.Fatalf("res = %+v, want nil result", res)
	}
}

// TestRunCtxPreCanceled: a context canceled before the run starts executes
// no task payloads at all.
func TestRunCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := NewGraph()
	var ran atomic.Int32
	must(t, g.Add(&Task{ID: 1, Name: "never", Exec: func(tc *Ctx) (any, error) {
		ran.Add(1)
		return nil, nil
	}}))
	p, _ := pools(1, 1)
	if _, err := RunCtx(ctx, g, p, Options{}); err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("task payload executed despite pre-canceled context")
	}
}

// TestRunBackgroundEquivalence: Run is RunCtx with a background context —
// same outputs, no cancellation machinery engaged.
func TestRunBackgroundEquivalence(t *testing.T) {
	build := func() *Graph {
		g := NewGraph()
		must(t, g.Add(simpleTask(1, nil, "a", time.Millisecond)))
		must(t, g.Add(simpleTask(2, []int{1}, "b", time.Millisecond)))
		return g
	}
	p1, _ := pools(2, 1)
	r1, err := Run(build(), p1, Options{})
	must(t, err)
	p2, _ := pools(2, 1)
	r2, err := RunCtx(context.Background(), build(), p2, Options{})
	must(t, err)
	if r1.Outputs[2] != r2.Outputs[2] || r1.Makespan != r2.Makespan {
		t.Fatalf("Run vs RunCtx(Background) diverged: %v/%v vs %v/%v",
			r1.Outputs[2], r1.Makespan, r2.Outputs[2], r2.Makespan)
	}
}
