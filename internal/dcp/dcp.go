// Package dcp implements the Polaris Distributed Computation Platform
// (paper Sections 1, 3.3, 4.3): a task-level workflow-DAG executor over the
// simulated compute fabric. Reads and writes are both modeled as DAGs of
// tasks, which is the paper's key architectural move — the DCP executes
// write transactions "as if they were queries".
//
// Features reproduced:
//   - dependency-ordered execution with per-node slot parallelism;
//   - task-level retry with re-placement on failure (failed attempts' side
//     effects are discarded via the object store's block semantics);
//   - workload management (WLM): read and write tasks are placed on disjoint
//     node pools (Section 4.3, "Workload Separation");
//   - virtual-time accounting: tasks charge simulated durations to the
//     schedule, and the scheduler computes the job's simulated makespan with
//     per-slot lanes, which is what the benchmark figures report.
package dcp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"polaris/internal/compute"
)

// PoolKind selects the WLM pool a task runs on.
type PoolKind int

// WLM pools.
const (
	ReadPool PoolKind = iota
	WritePool
)

func (p PoolKind) String() string {
	if p == WritePool {
		return "write"
	}
	return "read"
}

// Ctx is passed to a task's Exec function.
type Ctx struct {
	// Node is the compute server the attempt is placed on.
	Node *compute.Node
	// Attempt is 1-based; retries increment it.
	Attempt int
	// Inputs holds the outputs of the task's dependencies, keyed by task ID.
	Inputs map[int]any

	mu  sync.Mutex
	sim time.Duration
	ctx context.Context
}

// Context returns the run's cancellation context (never nil). Long-running
// Exec functions should observe it at batch boundaries so an in-flight task
// notices a canceled run without waiting for the task to finish.
func (c *Ctx) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Charge adds simulated time to this task attempt (IO and CPU costs).
func (c *Ctx) Charge(d time.Duration) {
	c.mu.Lock()
	c.sim += d
	c.mu.Unlock()
}

func (c *Ctx) charged() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sim
}

// Task is one unit of distributed work: a packaged template query over a
// disjoint set of data cells.
type Task struct {
	ID   int
	Name string
	Pool PoolKind
	Deps []int
	// Exec performs the work. It should call ctx.Charge for all simulated
	// IO/CPU it performs and return the task's output.
	Exec func(ctx *Ctx) (any, error)
}

// Graph is a workflow DAG of tasks.
type Graph struct {
	tasks map[int]*Task
}

// NewGraph returns an empty DAG.
func NewGraph() *Graph { return &Graph{tasks: make(map[int]*Task)} }

// Add inserts a task. IDs must be unique; dependencies may be added in any
// order but must exist by Run time.
func (g *Graph) Add(t *Task) error {
	if t.Exec == nil {
		return fmt.Errorf("dcp: task %d has no Exec", t.ID)
	}
	if _, ok := g.tasks[t.ID]; ok {
		return fmt.Errorf("dcp: duplicate task id %d", t.ID)
	}
	g.tasks[t.ID] = t
	return nil
}

// Len returns the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Options configures a run.
type Options struct {
	// MaxAttempts bounds per-task attempts (default 3).
	MaxAttempts int
	// RetryPenalty is virtual time added per retry (rescheduling cost);
	// defaults to the cost model's task overhead.
	RetryPenalty time.Duration
	// FailureInjector, when non-nil, is consulted after each attempt's Exec
	// completes; a non-nil error simulates the node dying before reporting
	// success — the attempt's side effects (files written, blocks staged)
	// persist but its output is discarded and the task is retried elsewhere,
	// exactly the failure mode the paper's GC story covers (4.3, 5.3).
	FailureInjector func(taskID, attempt int, node *compute.Node) error
	// Overhead is per-task virtual scheduling overhead; defaults to 15ms.
	Overhead time.Duration
	// StartOffset shifts the virtual clock (e.g. topology provisioning
	// delay from Fabric.AllocateForJob).
	StartOffset time.Duration
}

// TaskStats records one task's scheduling outcome.
type TaskStats struct {
	Node     int
	Attempts int
	VirtEnd  time.Duration
	SimTime  time.Duration
}

// Result is the outcome of executing a DAG.
type Result struct {
	Outputs  map[int]any
	Makespan time.Duration // simulated job duration including StartOffset
	PerTask  map[int]TaskStats
	Retries  int
}

// ErrNoNodes is returned when a required pool has no live nodes.
var ErrNoNodes = errors.New("dcp: no live nodes in pool")

// Pools maps WLM pools to node sets. Using the same slice for both pools
// disables workload separation (the ablation case).
type Pools map[PoolKind][]*compute.Node

// lane tracks one execution slot on a node: a task occupies the lane for its
// real execution, and the lane carries the slot's virtual availability time.
// Exclusive occupancy is what makes the virtual-time accounting race-free and
// keeps real parallelism equal to the simulated topology's.
type lane struct {
	node *compute.Node
	free time.Duration
	busy bool
}

// Run executes the DAG to completion and returns outputs plus the simulated
// makespan. Execution is really parallel (bounded by node slots); virtual
// time is tracked per slot lane.
func Run(g *Graph, pools Pools, opts Options) (*Result, error) {
	return RunCtx(context.Background(), g, pools, opts)
}

// RunCtx is Run with cancellation. When ctx is canceled mid-run, tasks that
// have not started are abandoned, in-flight tasks observe the cancel through
// Ctx.Context at their next boundary, no further retries are scheduled, and
// the returned error wraps ctx.Err() (errors.Is-able as context.Canceled or
// context.DeadlineExceeded).
func RunCtx(ctx context.Context, g *Graph, pools Pools, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.Overhead == 0 {
		opts.Overhead = 15 * time.Millisecond
	}
	if opts.RetryPenalty == 0 {
		opts.RetryPenalty = opts.Overhead
	}

	// Validate deps and topologically sort (Kahn) to detect cycles. Tasks are
	// visited in ID order so children/queue ordering — and therefore dispatch
	// order — is identical run to run.
	taskIDs := make([]int, 0, len(g.tasks))
	for id := range g.tasks {
		taskIDs = append(taskIDs, id)
	}
	sort.Ints(taskIDs)
	indeg := make(map[int]int, len(g.tasks))
	children := make(map[int][]int)
	for _, id := range taskIDs {
		t := g.tasks[id]
		if _, ok := indeg[id]; !ok {
			indeg[id] = 0
		}
		for _, d := range t.Deps {
			if _, ok := g.tasks[d]; !ok {
				return nil, fmt.Errorf("dcp: task %d depends on unknown task %d", id, d)
			}
			indeg[id]++
			children[d] = append(children[d], id)
		}
	}
	processedCheck := 0
	queue := make([]int, 0, len(g.tasks))
	indegCopy := make(map[int]int, len(indeg))
	for _, id := range taskIDs {
		indegCopy[id] = indeg[id]
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for i := 0; i < len(queue); i++ {
		processedCheck++
		for _, c := range children[queue[i]] {
			indegCopy[c]--
			if indegCopy[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if processedCheck != len(g.tasks) {
		return nil, errors.New("dcp: dependency cycle")
	}

	// Build virtual lanes per pool. A node appearing in multiple pools (WLM
	// separation disabled) contributes the SAME lane objects to each, so its
	// slots are genuinely shared and interference shows up in virtual time.
	lanes := make(map[PoolKind][]*lane)
	laneByNodeSlot := make(map[[2]int]*lane)
	poolKinds := make([]int, 0, len(pools))
	for pool := range pools {
		poolKinds = append(poolKinds, int(pool))
	}
	sort.Ints(poolKinds)
	for _, pk := range poolKinds {
		pool := PoolKind(pk)
		for _, n := range pools[pool] {
			if !n.Alive() {
				continue
			}
			for s := 0; s < n.Slots; s++ {
				key := [2]int{n.ID, s}
				l, ok := laneByNodeSlot[key]
				if !ok {
					l = &lane{node: n, free: opts.StartOffset}
					laneByNodeSlot[key] = l
				}
				lanes[pool] = append(lanes[pool], l)
			}
		}
	}
	needPool := make(map[PoolKind]bool)
	for _, t := range g.tasks {
		needPool[t.Pool] = true
	}
	needKinds := make([]int, 0, len(needPool))
	for p := range needPool {
		needKinds = append(needKinds, int(p))
	}
	sort.Ints(needKinds)
	for _, pk := range needKinds {
		if p := PoolKind(pk); len(lanes[p]) == 0 {
			return nil, fmt.Errorf("%w: %s", ErrNoNodes, p)
		}
	}

	res := &Result{
		Outputs: make(map[int]any, len(g.tasks)),
		PerTask: make(map[int]TaskStats, len(g.tasks)),
	}
	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		firstErr  error
		remaining = make(map[int]int, len(indeg)) // indegree countdown
		virtDone  = make(map[int]time.Duration)
	)
	cond := sync.NewCond(&mu)
	for id, d := range indeg {
		remaining[id] = d
	}

	// Cancellation: the watcher records the cancel as the run's first error
	// and wakes every lane waiter, so queued tasks bail out in acquireLane
	// and the dispatch chain stops (children only dispatch after success).
	if ctx.Done() != nil {
		watcherDone := make(chan struct{})
		defer close(watcherDone)
		go func() {
			select {
			case <-ctx.Done():
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("dcp: run canceled: %w", ctx.Err())
				}
				cond.Broadcast()
				mu.Unlock()
			case <-watcherDone:
			}
		}()
	}

	// Tickets impose FIFO lane granting in dispatch order, so the virtual
	// schedule reflects queueing (a read dispatched after heavy writes on a
	// shared pool waits behind them) instead of goroutine races. A younger
	// ticket may take a lane only when no older waiting ticket's pool
	// contains that lane — so disjoint WLM pools never block each other.
	var nextTicket int64
	waiting := make(map[int64]PoolKind)
	laneInPool := make(map[PoolKind]map[*lane]bool)
	for pool, ls := range lanes {
		set := make(map[*lane]bool, len(ls))
		for _, l := range ls {
			set[l] = true
		}
		laneInPool[pool] = set
	}
	// registerTicket is called synchronously at dispatch time, so FIFO order
	// is fixed before any task goroutine races to acquire a lane.
	registerTicket := func(pool PoolKind) int64 {
		mu.Lock()
		defer mu.Unlock()
		nextTicket++
		waiting[nextTicket] = pool
		return nextTicket
	}

	// acquireLane blocks until a free lane with an alive node is available to
	// this ticket, preferring nodes other than notNode (retry re-placement).
	// Returns nil when the pool has no alive nodes at all or the run failed.
	acquireLane := func(pool PoolKind, ticket int64, notNode int) *lane {
		mu.Lock()
		defer mu.Unlock()
		waiting[ticket] = pool // re-register on retries; dispatch registered first
		defer func() {
			delete(waiting, ticket)
			cond.Broadcast()
		}()
		mayTake := func(l *lane) bool {
			for t, p := range waiting {
				if t < ticket && laneInPool[p][l] {
					return false
				}
			}
			return true
		}
		for {
			if firstErr != nil {
				return nil
			}
			var best, bestAny *lane
			anyAlive := false
			for _, l := range lanes[pool] {
				if !l.node.Alive() {
					continue
				}
				anyAlive = true
				if l.busy || !mayTake(l) {
					continue
				}
				if bestAny == nil || l.free < bestAny.free {
					bestAny = l
				}
				if l.node.ID != notNode && (best == nil || l.free < best.free) {
					best = l
				}
			}
			if !anyAlive {
				return nil
			}
			if best == nil {
				best = bestAny // only the excluded node remains
			}
			if best != nil {
				best.busy = true
				return best
			}
			cond.Wait()
		}
	}
	releaseLane := func(l *lane, newFree time.Duration) {
		mu.Lock()
		l.busy = false
		if newFree > l.free {
			l.free = newFree
		}
		cond.Broadcast()
		mu.Unlock()
	}

	var dispatch func(id int)
	runTask := func(id int, ticket int64) {
		defer wg.Done()
		t := g.tasks[id]

		mu.Lock()
		if firstErr != nil {
			mu.Unlock()
			return
		}
		inputs := make(map[int]any, len(t.Deps))
		var depsReady time.Duration
		for _, d := range t.Deps {
			inputs[d] = res.Outputs[d]
			if virtDone[d] > depsReady {
				depsReady = virtDone[d]
			}
		}
		mu.Unlock()

		var (
			out      any
			err      error
			tctx     *Ctx
			attempts int
			lastNode = -1
			penalty  time.Duration
		)
		for attempts = 1; attempts <= opts.MaxAttempts; attempts++ {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr // canceled: don't burn retries, the watcher holds firstErr
				break
			}
			l := acquireLane(t.Pool, ticket, lastNode)
			if l == nil {
				err = fmt.Errorf("%w: %s (all nodes lost)", ErrNoNodes, t.Pool)
				break
			}
			tctx = &Ctx{Node: l.node, Attempt: attempts, Inputs: inputs, ctx: ctx}
			out, err = t.Exec(tctx)
			if err == nil && opts.FailureInjector != nil {
				if ferr := opts.FailureInjector(id, attempts, l.node); ferr != nil {
					// The attempt's side effects stand; its output is lost.
					out, err = nil, ferr
				}
			}
			if err == nil {
				mu.Lock()
				start := l.free
				if depsReady > start {
					start = depsReady
				}
				end := start + opts.Overhead + tctx.charged() + penalty
				virtDone[id] = end
				res.Outputs[id] = out
				res.PerTask[id] = TaskStats{
					Node: l.node.ID, Attempts: attempts,
					VirtEnd: end, SimTime: tctx.charged(),
				}
				res.Retries += attempts - 1
				mu.Unlock()
				releaseLane(l, end)
				break
			}
			lastNode = l.node.ID
			penalty += opts.RetryPenalty
			releaseLane(l, 0)
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = fmt.Errorf("dcp: task %d (%s) failed after %d attempts: %w", id, t.Name, attempts-1, err)
			}
			cond.Broadcast()
			mu.Unlock()
			return
		}

		// Unblock children.
		mu.Lock()
		var ready []int
		for _, c := range children[id] {
			remaining[c]--
			if remaining[c] == 0 {
				ready = append(ready, c)
			}
		}
		mu.Unlock()
		for _, c := range ready {
			dispatch(c)
		}
	}
	dispatch = func(id int) {
		ticket := registerTicket(g.tasks[id].Pool)
		wg.Add(1)
		go runTask(id, ticket)
	}

	var roots []int
	for id, d := range indeg {
		if d == 0 {
			roots = append(roots, id)
		}
	}
	sort.Ints(roots)
	for _, id := range roots {
		dispatch(id)
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	//polaris:nondet max fold: Makespan is the maximum VirtEnd, which is the same whatever order the tasks are visited in
	for _, st := range res.PerTask {
		if st.VirtEnd > res.Makespan {
			res.Makespan = st.VirtEnd
		}
	}
	if res.Makespan < opts.StartOffset {
		res.Makespan = opts.StartOffset
	}
	return res, nil
}

// Gather is a convenience for collecting the outputs of a set of task IDs in
// ID order (e.g. aggregating per-task block lists in the FE).
func Gather(res *Result, ids []int) []any {
	sorted := append([]int(nil), ids...)
	sort.Ints(sorted)
	out := make([]any, 0, len(sorted))
	for _, id := range sorted {
		out = append(out, res.Outputs[id])
	}
	return out
}
