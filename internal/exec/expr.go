// Package exec implements the vectorized query execution operators the SQL
// Server BE contributes in the paper's architecture (Sections 2.3, 3.3):
// columnar scans over immutable data files with deletion-vector filtering and
// zone-map pruning, plus filter, project, hash join, hash aggregation, sort
// and limit operators working batch-at-a-time over colfile vectors.
//
// Expressions evaluate through compiled kernel programs (Compile → Prog,
// immutable and shared across workers, with per-worker EvalCtx scratch);
// filters pass selection vectors (colfile.Batch.Sel) instead of materialized
// copies. The normative kernel contract — catalog, selection and NULL
// semantics, aliasing rules, and the guarantee of observational equivalence
// with the scalar reference evaluator (Expr.Eval) — is docs/VECTORIZATION.md.
package exec

//polaris:kernelfile the scalar reference evaluator reads lanes at already-translated physical positions (Batch.Row semantics)

import (
	"fmt"
	"strings"

	"polaris/internal/colfile"
)

// Expr is a vectorized expression evaluated over a batch.
type Expr interface {
	// Type reports the result type given the input schema.
	Type(schema colfile.Schema) (colfile.DataType, error)
	// Eval computes the expression for every row of the batch.
	Eval(b *colfile.Batch) (*colfile.Vec, error)
	// String renders the expression for plan display.
	String() string
}

// ColRef references an input column by index.
type ColRef struct {
	Idx  int
	Name string // display only
}

// Type implements Expr.
func (c ColRef) Type(schema colfile.Schema) (colfile.DataType, error) {
	if c.Idx < 0 || c.Idx >= len(schema) {
		return 0, fmt.Errorf("exec: column %d out of range", c.Idx)
	}
	return schema[c.Idx].Type, nil
}

// Eval implements Expr.
func (c ColRef) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	if c.Idx < 0 || c.Idx >= len(b.Cols) {
		return nil, fmt.Errorf("exec: column %d out of range", c.Idx)
	}
	return b.Cols[c.Idx], nil
}

// String implements Expr.
func (c ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal value.
type Const struct {
	Val any // int64, float64, string, bool, or nil
}

// Type implements Expr.
func (c Const) Type(colfile.Schema) (colfile.DataType, error) {
	switch c.Val.(type) {
	case int64, int:
		return colfile.Int64, nil
	case float64:
		return colfile.Float64, nil
	case string:
		return colfile.String, nil
	case bool:
		return colfile.Bool, nil
	case nil:
		return colfile.Int64, nil // typed NULL defaults to int
	default:
		return 0, fmt.Errorf("exec: unsupported literal %T", c.Val)
	}
}

// Eval implements Expr.
func (c Const) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	n := b.NumRows()
	t, err := c.Type(nil)
	if err != nil {
		return nil, err
	}
	v := colfile.NewVec(t)
	for i := 0; i < n; i++ {
		if err := v.AppendValue(normalize(c.Val)); err != nil {
			return nil, err
		}
	}
	return v, nil
}

func normalize(x any) any {
	if i, ok := x.(int); ok {
		return int64(i)
	}
	return x
}

// String implements Expr.
func (c Const) String() string {
	if s, ok := c.Val.(string); ok {
		return "'" + s + "'"
	}
	return fmt.Sprintf("%v", c.Val)
}

// BinKind is a binary operator kind.
type BinKind int

// Binary operators.
const (
	OpAdd BinKind = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binNames = map[BinKind]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// Bin is a binary expression.
type Bin struct {
	Kind BinKind
	L, R Expr
}

// IsComparison reports whether the operator yields a boolean.
func (k BinKind) IsComparison() bool { return k >= OpEq && k <= OpGe }

// IsLogical reports whether the operator combines booleans.
func (k BinKind) IsLogical() bool { return k == OpAnd || k == OpOr }

// Type implements Expr.
func (e Bin) Type(schema colfile.Schema) (colfile.DataType, error) {
	lt, err := e.L.Type(schema)
	if err != nil {
		return 0, err
	}
	rt, err := e.R.Type(schema)
	if err != nil {
		return 0, err
	}
	if e.Kind.IsComparison() || e.Kind.IsLogical() {
		return colfile.Bool, nil
	}
	// arithmetic: float wins over int
	if lt == colfile.Float64 || rt == colfile.Float64 {
		return colfile.Float64, nil
	}
	if lt == colfile.Int64 && rt == colfile.Int64 {
		return colfile.Int64, nil
	}
	if lt == colfile.String && rt == colfile.String && e.Kind == OpAdd {
		return colfile.String, nil // concatenation
	}
	return 0, fmt.Errorf("exec: cannot apply %s to %s and %s", binNames[e.Kind], lt, rt)
}

// Eval implements Expr.
func (e Bin) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	lv, err := e.L.Eval(b)
	if err != nil {
		return nil, err
	}
	rv, err := e.R.Eval(b)
	if err != nil {
		return nil, err
	}
	n := b.NumRows()
	outType, err := e.Type(b.Schema)
	if err != nil {
		return nil, err
	}
	out := colfile.NewVec(outType)
	for i := 0; i < n; i++ {
		if lv.IsNull(i) || rv.IsNull(i) {
			out.AppendNull() // SQL three-valued logic collapses to NULL
			continue
		}
		switch {
		case e.Kind.IsLogical():
			out.AppendBool(evalLogical(e.Kind, lv.Bools[i], rv.Bools[i]))
		case e.Kind.IsComparison():
			cmp, err := compareAt(lv, rv, i)
			if err != nil {
				return nil, err
			}
			out.AppendBool(cmpToBool(e.Kind, cmp))
		default:
			if err := evalArith(e.Kind, lv, rv, i, out); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// String implements Expr.
func (e Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, binNames[e.Kind], e.R)
}

func evalLogical(k BinKind, l, r bool) bool {
	if k == OpAnd {
		return l && r
	}
	return l || r
}

// compareAt compares position i of two vectors, coercing int/float.
func compareAt(l, r *colfile.Vec, i int) (int, error) {
	if l.Type == r.Type {
		switch l.Type {
		case colfile.Int64:
			return cmpOrd(l.Ints[i], r.Ints[i]), nil
		case colfile.Float64:
			return cmpOrd(l.Floats[i], r.Floats[i]), nil
		case colfile.String:
			return strings.Compare(l.Strs[i], r.Strs[i]), nil
		case colfile.Bool:
			return cmpOrd(b2i(l.Bools[i]), b2i(r.Bools[i])), nil
		}
	}
	lf, lok := numAt(l, i)
	rf, rok := numAt(r, i)
	if lok && rok {
		return cmpOrd(lf, rf), nil
	}
	return 0, fmt.Errorf("exec: cannot compare %s and %s", l.Type, r.Type)
}

func numAt(v *colfile.Vec, i int) (float64, bool) {
	switch v.Type {
	case colfile.Int64:
		return float64(v.Ints[i]), true
	case colfile.Float64:
		return v.Floats[i], true
	}
	return 0, false
}

func cmpOrd[T int64 | float64](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func cmpToBool(k BinKind, cmp int) bool {
	switch k {
	case OpEq:
		return cmp == 0
	case OpNe:
		return cmp != 0
	case OpLt:
		return cmp < 0
	case OpLe:
		return cmp <= 0
	case OpGt:
		return cmp > 0
	case OpGe:
		return cmp >= 0
	}
	return false
}

func evalArith(k BinKind, l, r *colfile.Vec, i int, out *colfile.Vec) error {
	if out.Type == colfile.String {
		out.AppendStr(l.Strs[i] + r.Strs[i])
		return nil
	}
	if out.Type == colfile.Int64 {
		a, b := l.Ints[i], r.Ints[i]
		switch k {
		case OpAdd:
			out.AppendInt(a + b)
		case OpSub:
			out.AppendInt(a - b)
		case OpMul:
			out.AppendInt(a * b)
		case OpDiv:
			if b == 0 {
				return fmt.Errorf("exec: integer division by zero")
			}
			out.AppendInt(a / b)
		case OpMod:
			if b == 0 {
				return fmt.Errorf("exec: modulo by zero")
			}
			out.AppendInt(a % b)
		default:
			return fmt.Errorf("exec: bad int arith %s", binNames[k])
		}
		return nil
	}
	a, _ := numAt(l, i)
	b, _ := numAt(r, i)
	switch k {
	case OpAdd:
		out.AppendFloat(a + b)
	case OpSub:
		out.AppendFloat(a - b)
	case OpMul:
		out.AppendFloat(a * b)
	case OpDiv:
		if b == 0 {
			return fmt.Errorf("exec: division by zero")
		}
		out.AppendFloat(a / b)
	default:
		return fmt.Errorf("exec: bad float arith %s", binNames[k])
	}
	return nil
}

// Not negates a boolean expression.
type Not struct{ E Expr }

// Type implements Expr.
func (n Not) Type(schema colfile.Schema) (colfile.DataType, error) {
	t, err := n.E.Type(schema)
	if err != nil {
		return 0, err
	}
	if t != colfile.Bool {
		return 0, fmt.Errorf("exec: NOT of %s", t)
	}
	return colfile.Bool, nil
}

// Eval implements Expr.
func (n Not) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	v, err := n.E.Eval(b)
	if err != nil {
		return nil, err
	}
	out := colfile.NewVec(colfile.Bool)
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			out.AppendNull()
		} else {
			out.AppendBool(!v.Bools[i])
		}
	}
	return out, nil
}

// String implements Expr.
func (n Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// IsNull tests for NULL.
type IsNull struct {
	E      Expr
	Negate bool
}

// Type implements Expr.
func (e IsNull) Type(colfile.Schema) (colfile.DataType, error) { return colfile.Bool, nil }

// Eval implements Expr.
func (e IsNull) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	v, err := e.E.Eval(b)
	if err != nil {
		return nil, err
	}
	out := colfile.NewVec(colfile.Bool)
	for i := 0; i < v.Len(); i++ {
		out.AppendBool(v.IsNull(i) != e.Negate)
	}
	return out, nil
}

// String implements Expr.
func (e IsNull) String() string {
	if e.Negate {
		return fmt.Sprintf("%s IS NOT NULL", e.E)
	}
	return fmt.Sprintf("%s IS NULL", e.E)
}

// Like implements a simple SQL LIKE with % wildcards.
type Like struct {
	E       Expr
	Pattern string
}

// Type implements Expr.
func (e Like) Type(colfile.Schema) (colfile.DataType, error) { return colfile.Bool, nil }

// Eval implements Expr.
func (e Like) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	v, err := e.E.Eval(b)
	if err != nil {
		return nil, err
	}
	if v.Type != colfile.String {
		return nil, fmt.Errorf("exec: LIKE over %s", v.Type)
	}
	out := colfile.NewVec(colfile.Bool)
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			out.AppendNull()
			continue
		}
		out.AppendBool(likeMatch(v.Strs[i], e.Pattern))
	}
	return out, nil
}

// String implements Expr.
func (e Like) String() string { return fmt.Sprintf("%s LIKE '%s'", e.E, e.Pattern) }

// likeMatch supports % (any run) and _ (any single char).
func likeMatch(s, pat string) bool {
	// dynamic programming over pattern segments
	var match func(si, pi int) bool
	memo := make(map[[2]int]bool)
	match = func(si, pi int) bool {
		key := [2]int{si, pi}
		if v, ok := memo[key]; ok {
			return v
		}
		var res bool
		switch {
		case pi == len(pat):
			res = si == len(s)
		case pat[pi] == '%':
			res = match(si, pi+1) || (si < len(s) && match(si+1, pi))
		case si < len(s) && (pat[pi] == '_' || pat[pi] == s[si]):
			res = match(si+1, pi+1)
		}
		memo[key] = res
		return res
	}
	return match(0, 0)
}

// InList tests membership in a literal list.
type InList struct {
	E      Expr
	Vals   []any
	Negate bool
}

// Type implements Expr.
func (e InList) Type(colfile.Schema) (colfile.DataType, error) { return colfile.Bool, nil }

// Eval implements Expr.
func (e InList) Eval(b *colfile.Batch) (*colfile.Vec, error) {
	v, err := e.E.Eval(b)
	if err != nil {
		return nil, err
	}
	set := make(map[any]bool, len(e.Vals))
	for _, x := range e.Vals {
		set[normalize(x)] = true
	}
	out := colfile.NewVec(colfile.Bool)
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			out.AppendNull()
			continue
		}
		out.AppendBool(set[v.Value(i)] != e.Negate)
	}
	return out, nil
}

// String implements Expr.
func (e InList) String() string {
	op := "IN"
	if e.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("%s %s (%d values)", e.E, op, len(e.Vals))
}
