// Morsel-driven parallel execution (in the spirit of modern analytic
// engines): a table scan is split into morsels — per-file, or per-row-group
// windows of a large file — which a pool of workers pulls from a shared
// queue. Each worker runs the embarrassingly parallel fragment of the plan
// (scan, filter, project, partial aggregation) over its morsels; a final
// merge stage combines the per-morsel outputs deterministically. Because the
// morsel decomposition is fixed by configuration (not by how many workers
// the fabric grants), results are byte-stable for a given Parallelism
// setting; across different settings, and against the serial executor,
// float SUM/AVG may differ in the last ulp because summation order changes.
//
// Hash-join probes are morsel-parallel too, with a stronger determinism
// contract: the JoinTable built from the build side is immutable and shared
// by every probe worker, each worker probes its morsels in morsel order, and
// within a morsel the output order is fixed by probe-row order then
// build-row order (partitioned parallel builds insert rows in build-row
// order, so match lists are identical to a serial build's). RunMorsels
// returns per-morsel outputs in morsel order and BatchList concatenates them
// in that order, so join results are byte-identical across every degree of
// parallelism — joins carry none of the float-summation caveat because the
// probe never reorders or recombines values.
//
// ORDER BY is morsel-parallel as well (sort.go): workers stable-sort their
// morsels into runs (SortRuns) — or keep only the LIMIT+OFFSET smallest rows
// (TopN) — and a loser-tree k-way merge (MergeRuns) combines the runs,
// breaking ties by lowest morsel index. Stable runs plus that tie-break
// reproduce a serial stable sort byte-for-byte at every DOP: NULLs first
// ascending / last descending, DESC keys, and ties by input order.
//
// Every fan-out above runs on one worker-pool primitive, ForEachIndexed:
// workers claim indexes from a shared queue, and the first failure cancels a
// context the in-flight units observe (CollectCtx checks it between batches),
// so a failed unit stops its siblings at their next batch boundary instead of
// letting them drain doomed scans, probes and spill writes to completion.
// Spilled joins (spill.go) reuse the same primitive to fan the partition-wise
// grace join out over depth-0 partitions, with the nested hash-join build
// parallelism capped so the partition tasks and their inner builds together
// stay within the configured Parallelism.
//
// The full cross-DOP determinism contract — what is byte-identical, what is
// merely deterministic per Parallelism setting, and the float caveats — is
// specified normatively in docs/ARCHITECTURE.md; this comment and that file
// must be kept in sync.
package exec

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"polaris/internal/colfile"
)

// Morsel is the unit of parallel scan work: one or more immutable data files,
// optionally restricted to a row-group window (only meaningful when the
// morsel holds a single file).
type Morsel struct {
	Files []ScanFile
	// GroupLo/GroupHi bound the row groups read; GroupHi == 0 means all.
	GroupLo, GroupHi int
}

// SplitMorsels slices a flat scan-file list into morsels: one per file, with
// large files further split by row group so at least `want` morsels exist
// when the data allows. The concatenation of all morsels in order preserves
// the input's global row order exactly.
func SplitMorsels(files []ScanFile, want int) ([]Morsel, error) {
	if want < 1 {
		want = 1
	}
	if len(files) == 0 {
		return nil, nil
	}
	var morsels []Morsel
	if len(files) >= want {
		for _, f := range files {
			morsels = append(morsels, Morsel{Files: []ScanFile{f}})
		}
		return morsels, nil
	}
	// Fewer files than wanted workers: split each file into up to
	// ceil(want/len(files)) row-group windows.
	per := (want + len(files) - 1) / len(files)
	for _, f := range files {
		r, err := colfile.OpenReader(f.Data)
		if err != nil {
			return nil, err
		}
		groups := r.NumRowGroups()
		parts := per
		if parts > groups {
			parts = groups
		}
		if parts <= 1 {
			morsels = append(morsels, Morsel{Files: []ScanFile{f}})
			continue
		}
		chunk := (groups + parts - 1) / parts
		for lo := 0; lo < groups; lo += chunk {
			hi := lo + chunk
			if hi > groups {
				hi = groups
			}
			morsels = append(morsels, Morsel{Files: []ScanFile{f}, GroupLo: lo, GroupHi: hi})
		}
	}
	return morsels, nil
}

// NewMorselScan builds a scan over one morsel.
func NewMorselScan(m Morsel, cols []string, hint *PruneHint, tel *Telemetry) (*Scan, error) {
	s, err := NewScan(m.Files, cols, hint, tel)
	if err != nil {
		return nil, err
	}
	s.groupLo, s.groupHi = m.GroupLo, m.GroupHi
	return s, nil
}

// DefaultDOP returns the default degree of parallelism: GOMAXPROCS.
func DefaultDOP() int { return runtime.GOMAXPROCS(0) }

// ForEachIndexed is the engine's single worker-pool primitive: it fans the
// indexes [0, n) out over a pool of min(dop, n) workers, each worker claiming
// the next unclaimed index until the range is exhausted. Cancellation is
// context-based and flows both ways: the caller's ctx cancels the pool, and
// the first failing unit cancels a derived context handed to every work
// function — so in-flight units can stop at their next check (CollectCtx does
// this between batches) instead of draining a doomed scan, probe or spill
// write to completion. Workers also re-check the context before claiming the
// next index. Returns the first error (unit failure or ctx cancellation).
func ForEachIndexed(ctx context.Context, n, dop int, work func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if dop < 1 {
		dop = 1
	}
	if dop > n {
		dop = n
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next  atomic.Int64
		mu    sync.Mutex
		first error
		wg    sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if first == nil {
			first = err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < dop; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := work(wctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if first != nil {
		return first
	}
	return ctx.Err()
}

// RunIndexed runs one operator per index over the ForEachIndexed pool and
// collects each operator's output into results[i] — the generic indexed
// fan-out behind RunMorsels and RunBatches. A (nil, nil) return from build
// skips the index (its result stays nil); an index that produces no rows also
// yields nil. Results are indexed by input position, never completion order,
// which is what makes the downstream merges deterministic. Operator execution
// observes ctx (and the pool's first-failure cancellation) between batches
// via CollectCtx.
func RunIndexed(ctx context.Context, n, dop int, build func(i int) (Operator, error)) ([]*colfile.Batch, error) {
	results := make([]*colfile.Batch, n)
	err := ForEachIndexed(ctx, n, dop, func(ctx context.Context, i int) error {
		op, err := build(i)
		if err != nil {
			return err
		}
		if op == nil {
			return nil
		}
		b, err := CollectCtx(ctx, op)
		if err != nil {
			return err
		}
		if b != nil && b.NumRows() > 0 {
			results[i] = b
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunMorsels fans the morsels out over a pool of dop workers. For each morsel
// the builder constructs the per-worker plan fragment (typically
// scan→filter→project or scan→filter→partial-agg); the fragment's output is
// collected into one batch per morsel. Results are returned in morsel order,
// which is what makes the downstream merge deterministic. A nil batch is
// returned for morsels that produced no rows. Thin wrapper over RunIndexed.
func RunMorsels(morsels []Morsel, dop int, build func(m Morsel) (Operator, error)) ([]*colfile.Batch, error) {
	return RunIndexed(context.Background(), len(morsels), dop, func(i int) (Operator, error) {
		return build(morsels[i])
	})
}

// RunBatches fans pre-materialized per-morsel batches out over a pool of dop
// workers, the batch-driven counterpart of RunMorsels: the planner's grace-
// join spill path materializes the join output per morsel and then runs the
// remaining plan fragment (filter, project, partial aggregation, sorted runs)
// over those batches with the same morsel-indexed determinism. Nil input
// batches yield nil outputs at the same index; results are returned in input
// order regardless of completion order. Thin wrapper over RunIndexed.
func RunBatches(batches []*colfile.Batch, dop int, build func(i int, b *colfile.Batch) (Operator, error)) ([]*colfile.Batch, error) {
	return RunIndexed(context.Background(), len(batches), dop, func(i int) (Operator, error) {
		if batches[i] == nil || batches[i].NumRows() == 0 {
			return nil, nil
		}
		return build(i, batches[i])
	})
}

// BatchList replays a sequence of pre-materialized batches in order: the
// gather side of a parallel exchange.
type BatchList struct {
	schema  colfile.Schema
	batches []*colfile.Batch
	idx     int
}

// NewBatchList builds the exchange-gather operator over per-morsel outputs
// (nil entries are skipped). The schema parameter covers the all-empty case.
func NewBatchList(schema colfile.Schema, batches []*colfile.Batch) *BatchList {
	out := &BatchList{schema: schema}
	for _, b := range batches {
		if b != nil && b.NumRows() > 0 {
			out.batches = append(out.batches, b)
		}
	}
	return out
}

// Schema implements Operator.
func (l *BatchList) Schema() colfile.Schema { return l.schema }

// Next implements Operator.
func (l *BatchList) Next() (*colfile.Batch, error) {
	if l.idx >= len(l.batches) {
		return nil, nil
	}
	b := l.batches[l.idx]
	l.idx++
	return b, nil
}

// MergeAgg is the final stage of two-phase parallel aggregation: it consumes
// the partial-state batches emitted by HashAgg{Partial: true} workers and
// folds them into final aggregate values. Output rows are ordered by encoded
// group key, so the result is identical for every degree of parallelism.
type MergeAgg struct {
	In     Operator // stream of partial batches (groups + partial agg states)
	Groups int      // number of leading group-key columns
	Aggs   []AggSpec
	// MergeFree asserts that no group key appears in more than one partial
	// input row: distribution-aware aggregation. When the GROUP BY key set
	// covers the table's distribution column, cells are disjoint by d(r) and
	// cell-aligned morsels make every per-morsel partial already complete
	// for its groups, so the merge degenerates to finalizing each partial
	// row directly — no hash table, no state folding. Output remains ordered
	// by encoded group key, identical to the merging path's order.
	MergeFree bool
	Tel       *Telemetry

	schema colfile.Schema
	done   bool
}

// partialWidth returns how many partial-state columns an aggregate carries.
func partialWidth(k AggKind) int {
	switch k {
	case AggSum, AggAvg:
		return 2 // running sum + non-NULL count
	default:
		return 1
	}
}

// Schema implements Operator: the final schema, derived from the partial
// layout (groups..., then per aggregate its value column first).
func (m *MergeAgg) Schema() colfile.Schema {
	if m.schema != nil {
		return m.schema
	}
	in := m.In.Schema()
	m.schema = append(m.schema, in[:m.Groups]...)
	col := m.Groups
	for _, a := range m.Aggs {
		t := colfile.Int64
		switch a.Kind {
		case AggAvg:
			t = colfile.Float64
		case AggSum, AggMin, AggMax:
			if col < len(in) {
				t = in[col].Type
			}
		}
		m.schema = append(m.schema, colfile.Field{Name: a.Name, Type: t})
		col += partialWidth(a.Kind)
	}
	return m.schema
}

// Next implements Operator.
//
//polaris:kernel partial-state batches are produced dense by HashAgg (no Sel), so row index == physical lane
func (m *MergeAgg) Next() (*colfile.Batch, error) {
	if m.done {
		return nil, nil
	}
	m.done = true
	if m.MergeFree {
		return m.concat()
	}
	groups := make(map[string]*aggState)
	var keyBuf []byte
	for {
		b, err := m.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if m.Tel != nil {
			m.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		for r := 0; r < b.NumRows(); r++ {
			keyBuf = appendGroupKey(keyBuf[:0], b.Cols[:m.Groups], r)
			st, ok := groups[string(keyBuf)]
			if !ok {
				st = newAggState(groupVals(b.Cols[:m.Groups], r), len(m.Aggs))
				groups[string(keyBuf)] = st
			}
			col := m.Groups
			for i, a := range m.Aggs {
				v := b.Cols[col]
				switch a.Kind {
				case AggCount, AggCountStar:
					st.count[i] += v.Ints[r]
				case AggSum:
					cnt := b.Cols[col+1].Ints[r]
					st.count[i] += cnt
					if cnt > 0 {
						switch v.Type {
						case colfile.Int64:
							st.sumI[i] += v.Ints[r]
							st.sumF[i] += float64(v.Ints[r])
						case colfile.Float64:
							st.isFloat[i] = true
							st.sumF[i] += v.Floats[r]
						}
					}
				case AggAvg:
					cnt := b.Cols[col+1].Ints[r]
					st.count[i] += cnt
					if cnt > 0 {
						st.sumF[i] += v.Floats[r]
					}
				case AggMin, AggMax:
					if v.IsNull(r) {
						break // this worker saw no values for the group
					}
					st.observeMinMax(a.Kind, v, r, i)
				}
				col += partialWidth(a.Kind)
			}
		}
	}

	// A global aggregate over zero partial rows still yields one row.
	if m.Groups == 0 && len(groups) == 0 {
		groups[""] = newAggState(nil, len(m.Aggs))
	}

	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := colfile.NewBatch(m.Schema())
	for _, key := range keys {
		st := groups[key]
		row := make([]any, 0, m.Groups+len(m.Aggs))
		row = append(row, st.groupVals...)
		for i, a := range m.Aggs {
			row = append(row, finalAggValue(a.Kind, st, i, m.schema[m.Groups+i].Type))
		}
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

// concat is the merge-free path: every partial input row is a complete group
// (disjoint by d(r)), so each row is finalized directly and the rows are
// ordered by encoded group key — the same output order the merging path
// produces.
func (m *MergeAgg) concat() (*colfile.Batch, error) {
	type keyedRow struct {
		key  string
		vals []any
	}
	var rows []keyedRow
	var keyBuf []byte
	for {
		b, err := m.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if m.Tel != nil {
			m.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		for r := 0; r < b.NumRows(); r++ {
			keyBuf = appendGroupKey(keyBuf[:0], b.Cols[:m.Groups], r)
			vals := make([]any, 0, m.Groups+len(m.Aggs))
			vals = append(vals, groupVals(b.Cols[:m.Groups], r)...)
			col := m.Groups
			for _, a := range m.Aggs {
				vals = append(vals, finalizePartial(a.Kind, b, col, r))
				col += partialWidth(a.Kind)
			}
			rows = append(rows, keyedRow{key: string(keyBuf), vals: vals})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	out := colfile.NewBatch(m.Schema())
	for _, kr := range rows {
		if err := out.AppendRow(kr.vals...); err != nil {
			return nil, err
		}
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

// finalizePartial renders one aggregate's final value directly from its
// partial-state columns at row r (value column at col; SUM/AVG carry a
// non-NULL count at col+1).
//
//polaris:kernel partial-state batches are dense (no Sel), so r is already a physical lane
func finalizePartial(k AggKind, b *colfile.Batch, col, r int) any {
	v := b.Cols[col]
	switch k {
	case AggCount, AggCountStar:
		return v.Ints[r]
	case AggSum:
		if b.Cols[col+1].Ints[r] == 0 {
			return nil
		}
		if v.Type == colfile.Float64 {
			return v.Floats[r]
		}
		return v.Ints[r]
	case AggAvg:
		cnt := b.Cols[col+1].Ints[r]
		if cnt == 0 {
			return nil
		}
		return v.Floats[r] / float64(cnt)
	case AggMin, AggMax:
		return v.Value(r)
	}
	return nil
}

// newAggState builds an empty accumulator for nAggs aggregates.
func newAggState(groupVals []any, nAggs int) *aggState {
	return &aggState{
		groupVals: groupVals,
		count:     make([]int64, nAggs),
		sumF:      make([]float64, nAggs),
		sumI:      make([]int64, nAggs),
		isFloat:   make([]bool, nAggs),
		seen:      make([]bool, nAggs),
		mmT:       make([]colfile.DataType, nAggs),
		mmI:       make([]int64, nAggs),
		mmF:       make([]float64, nAggs),
		mmS:       make([]string, nAggs),
		mmB:       make([]bool, nAggs),
	}
}

// finalAggValue renders one aggregate's final value from its accumulator.
func finalAggValue(k AggKind, st *aggState, i int, outType colfile.DataType) any {
	switch k {
	case AggCount, AggCountStar:
		return st.count[i]
	case AggSum:
		if st.count[i] == 0 {
			return nil
		}
		if st.isFloat[i] || outType == colfile.Float64 {
			return st.sumF[i]
		}
		return st.sumI[i]
	case AggAvg:
		if st.count[i] == 0 {
			return nil
		}
		return st.sumF[i] / float64(st.count[i])
	case AggMin, AggMax:
		return st.minmaxValue(i)
	}
	return nil
}
