// ORDER BY operators: the serial Sort, and the parallel family — per-worker
// SortRuns / TopN producing sorted runs, merged at the FE by MergeRuns over a
// loser tree. All four order rows by the same encoded sort key
// (colfile.Vec.AppendSortKey, one memcmp per comparison regardless of key
// arity or direction), so serial and parallel plans cannot disagree on
// ordering semantics: NULLs sort first ascending and last descending, and
// ties keep input order (stable). See docs/ARCHITECTURE.md for the full
// cross-DOP determinism contract.

package exec

import (
	"bytes"
	"context"
	"sort"

	"polaris/internal/colfile"
)

// SortKey orders by a column index.
type SortKey struct {
	Col  int
	Desc bool
}

// appendRowSortKey encodes row r's full ORDER BY key — every key column in
// order, each direction-adjusted — into dst (see colfile.Vec.AppendSortKey).
func appendRowSortKey(dst []byte, b *colfile.Batch, keys []SortKey, r int) []byte {
	for _, k := range keys {
		dst = b.Cols[k.Col].AppendSortKey(dst, r, k.Desc)
	}
	return dst
}

// encodedKeys holds the encoded sort key of every row of one batch in a
// single buffer with offsets: no per-row slice headers, no boxing.
type encodedKeys struct {
	buf []byte
	off []int // len = rows+1
}

func encodeSortKeys(b *colfile.Batch, keys []SortKey) encodedKeys {
	n := b.NumRows()
	ek := encodedKeys{off: make([]int, n+1)}
	for r := 0; r < n; r++ {
		ek.buf = appendRowSortKey(ek.buf, b, keys, r)
		ek.off[r+1] = len(ek.buf)
	}
	return ek
}

func (ek encodedKeys) key(r int) []byte { return ek.buf[ek.off[r]:ek.off[r+1]] }

// sortBatch stable-sorts all rows of a batch by the encoded keys and gathers
// the result in one bulk Take. Stability is what makes parallel ORDER BY
// deterministic: equal keys keep input order, so per-run sorts plus the
// merge's run-index tie-break reproduce a serial stable sort exactly.
func sortBatch(all *colfile.Batch, keys []SortKey) *colfile.Batch {
	n := all.NumRows()
	ek := encodeSortKeys(all, keys)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return bytes.Compare(ek.key(idx[a]), ek.key(idx[b])) < 0
	})
	return all.Take(idx)
}

// Sort materializes the input and emits it ordered by the given keys — the
// serial ORDER BY operator (Parallelism 1, and post-aggregation ordering,
// where the merged aggregate already lives on the FE). Parallel plans use
// SortRuns/TopN per morsel worker plus MergeRuns instead.
type Sort struct {
	In   Operator
	Keys []SortKey
	Tel  *Telemetry

	done bool
}

// Schema implements Operator.
func (s *Sort) Schema() colfile.Schema { return s.In.Schema() }

// Next implements Operator.
func (s *Sort) Next() (*colfile.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	all, err := Collect(s.In)
	if err != nil {
		return nil, err
	}
	if all.NumRows() == 0 {
		return nil, nil
	}
	if s.Tel != nil {
		s.Tel.RowsProcessed.Add(int64(all.NumRows()))
	}
	return sortBatch(all, s.Keys), nil
}

// SortRuns is the per-worker phase of parallel ORDER BY: it drains one
// morsel's stream and emits it as a single sorted run. Mechanically a Sort,
// but with a narrower contract the merge relies on: the run is tie-stable by
// the morsel's input order, so MergeRuns' lowest-run-index tie-break makes
// the k-way merge of all runs byte-identical to a serial stable sort of the
// morsels' concatenation — at every degree of parallelism.
type SortRuns struct {
	In   Operator
	Keys []SortKey
	Tel  *Telemetry

	done bool
}

// Schema implements Operator.
func (s *SortRuns) Schema() colfile.Schema { return s.In.Schema() }

// Next implements Operator.
func (s *SortRuns) Next() (*colfile.Batch, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	all, err := Collect(s.In)
	if err != nil {
		return nil, err
	}
	if all.NumRows() == 0 {
		return nil, nil
	}
	if s.Tel != nil {
		s.Tel.RowsProcessed.Add(int64(all.NumRows()))
	}
	return sortBatch(all, s.Keys), nil
}

// TopN keeps the N smallest rows of its input under Keys and emits them as a
// sorted run: the per-worker top-N pushdown of ORDER BY ... LIMIT [OFFSET]
// (N = limit+offset), the classic distributed top-N of the paper's task-DAG
// model — each worker ships at most N rows to the FE merge no matter how
// many rows its morsel holds.
//
// Memory is bounded by O(N + batch): a max-heap of the current N best rows
// ordered by (encoded key, arrival), so a late-arriving tie always loses and
// the kept rows are exactly the first N of the worker's stable-sorted
// stream; admitted rows land in an append-only store that is compacted once
// evictions let it grow past ~2N rows.
type TopN struct {
	In   Operator
	Keys []SortKey
	N    int64 // max rows to keep; <= 0 keeps none
	Tel  *Telemetry

	done bool
}

// Schema implements Operator.
func (t *TopN) Schema() colfile.Schema { return t.In.Schema() }

// topEntry is one heap slot: the row's encoded key, its position in the
// store batch, and its global arrival index (the stability tie-break).
type topEntry struct {
	key []byte
	row int
	seq int64
}

// topNHeap is a max-heap over (key, seq): the root is the worst kept row,
// the one a strictly smaller newcomer evicts. Arrival indexes are unique and
// increasing, so an incoming tie compares greater than the root and is
// rejected — earlier rows win ties, preserving stability.
type topNHeap []topEntry

func (h topNHeap) entryLess(a, b topEntry) bool {
	if c := bytes.Compare(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.seq < b.seq
}

func (h topNHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.entryLess(h[p], h[i]) {
			return
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
}

func (h topNHeap) siftDown(i int) {
	for {
		c := 2*i + 1
		if c >= len(h) {
			return
		}
		if c+1 < len(h) && h.entryLess(h[c], h[c+1]) {
			c++
		}
		if !h.entryLess(h[i], h[c]) {
			return
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
}

// Next implements Operator.
func (t *TopN) Next() (*colfile.Batch, error) {
	if t.done {
		return nil, nil
	}
	t.done = true
	if t.N <= 0 {
		return nil, nil
	}
	var (
		store   = colfile.NewBatch(t.In.Schema())
		heap    topNHeap
		keyBuf  []byte
		seq     int64
		compact = int(t.N)
	)
	if compact < DefaultBatchSize {
		compact = DefaultBatchSize
	}
	appendRow := func(b *colfile.Batch, r int) int {
		for c := range store.Cols {
			store.Cols[c].Append(b.Cols[c], r)
		}
		return store.NumRows() - 1
	}
	for {
		b, err := t.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if t.Tel != nil {
			t.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		for r := 0; r < b.NumRows(); r++ {
			phys := b.RowIdx(r) // logical order == ascending physical order
			keyBuf = appendRowSortKey(keyBuf[:0], b, t.Keys, phys)
			seq++
			switch {
			case int64(len(heap)) < t.N:
				e := topEntry{key: append([]byte(nil), keyBuf...), row: appendRow(b, phys), seq: seq}
				heap = append(heap, e)
				heap.siftUp(len(heap) - 1)
			case bytes.Compare(keyBuf, heap[0].key) < 0:
				heap[0] = topEntry{key: append([]byte(nil), keyBuf...), row: appendRow(b, phys), seq: seq}
				heap.siftDown(0)
			}
		}
		// Evictions leave dead rows behind; rebuild the store from the live
		// heap entries before it outgrows ~2N.
		if store.NumRows() >= len(heap)+compact {
			idx := make([]int, len(heap))
			for i := range heap {
				idx[i] = heap[i].row
				heap[i].row = i
			}
			store = store.Take(idx)
		}
	}
	if len(heap) == 0 {
		return nil, nil
	}
	// Emit the kept rows in final order: key, then arrival (stable).
	entries := []topEntry(heap)
	sort.Slice(entries, func(a, b int) bool { return heap.entryLess(entries[a], entries[b]) })
	idx := make([]int, len(entries))
	for i, e := range entries {
		idx[i] = e.row
	}
	return store.Take(idx), nil
}

// MergeRuns k-way merges the sorted runs produced by SortRuns or TopN
// workers into one globally ordered stream — the gather side of parallel
// ORDER BY. A loser tree picks the next row with one comparison per level
// (log k memcmps per row); ties between runs resolve to the lowest run
// index, which — runs being tie-stable and in morsel order — makes the
// output byte-identical to a serial stable sort at every DOP. A non-negative
// limit stops the merge after that many rows (top-N early cutoff): the FE
// never materializes more than limit rows even when the runs hold far more.
type MergeRuns struct {
	schema colfile.Schema
	runs   []*colfile.Batch
	keys   []SortKey
	limit  int64

	lt      *loserTree
	ek      []encodedKeys
	pos     []int
	emitted int64
	started bool
	done    bool
}

// NewMergeRuns builds the merge over per-morsel runs in morsel order (nil
// and empty entries — morsels with no surviving rows — are skipped). The
// schema parameter covers the all-empty case; limit < 0 merges everything.
func NewMergeRuns(schema colfile.Schema, runs []*colfile.Batch, keys []SortKey, limit int64) *MergeRuns {
	m := &MergeRuns{schema: schema, keys: keys, limit: limit}
	for _, r := range runs {
		if r != nil && r.NumRows() > 0 {
			m.runs = append(m.runs, r)
		}
	}
	return m
}

// Schema implements Operator.
func (m *MergeRuns) Schema() colfile.Schema { return m.schema }

// runLess orders two runs by their current head row; an exhausted run is an
// infinite sentinel and ties go to the lower run index (= morsel order).
func (m *MergeRuns) runLess(a, b int) bool {
	ae := m.pos[a] >= m.runs[a].NumRows()
	be := m.pos[b] >= m.runs[b].NumRows()
	if ae || be {
		return !ae && be || (ae == be && a < b)
	}
	if c := bytes.Compare(m.ek[a].key(m.pos[a]), m.ek[b].key(m.pos[b])); c != 0 {
		return c < 0
	}
	return a < b
}

// Next implements Operator.
func (m *MergeRuns) Next() (*colfile.Batch, error) {
	if m.done {
		return nil, nil
	}
	if !m.started {
		m.started = true
		if len(m.runs) == 0 {
			m.done = true
			return nil, nil
		}
		m.pos = make([]int, len(m.runs))
		// RunMorsels ships only batches, so the runs' keys are re-encoded
		// here — fanned over the shared ForEachIndexed pool, one unit per
		// run, as the last parallel stage before the inherently serial
		// merge. Encoding is infallible, so the error is statically nil.
		m.ek = make([]encodedKeys, len(m.runs))
		_ = ForEachIndexed(context.Background(), len(m.runs), len(m.runs), func(_ context.Context, i int) error {
			m.ek[i] = encodeSortKeys(m.runs[i], m.keys)
			return nil
		})
		m.lt = newLoserTree(len(m.runs), m.runLess)
	}
	out := colfile.NewBatch(m.runs[0].Schema)
	for out.NumRows() < DefaultBatchSize {
		if m.limit >= 0 && m.emitted >= m.limit {
			m.done = true
			break
		}
		w := m.lt.winner()
		if m.pos[w] >= m.runs[w].NumRows() {
			m.done = true
			break
		}
		for c := range out.Cols {
			out.Cols[c].Append(m.runs[w].Cols[c], m.pos[w])
		}
		m.pos[w]++
		m.emitted++
		m.lt.replay(w)
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

// loserTree is a tournament tree over k runs: node[1..k-1] hold the losers
// of their sub-tournaments, node[0] the overall winner. Selecting the next
// row after advancing run w replays only w's leaf-to-root path — one
// comparison per level — instead of the k-1 comparisons of a linear scan.
type loserTree struct {
	k    int
	node []int
	less func(a, b int) bool
}

// newLoserTree runs the initial tournament. The first contender to reach an
// empty internal node parks there; the sibling subtree's winner plays it on
// the way up, so initialization is O(k) comparisons total.
func newLoserTree(k int, less func(a, b int) bool) *loserTree {
	lt := &loserTree{k: k, node: make([]int, k), less: less}
	for i := range lt.node {
		lt.node[i] = -1
	}
	for i := k - 1; i >= 0; i-- {
		lt.replay(i)
	}
	return lt
}

// winner returns the run index holding the smallest current head row.
func (lt *loserTree) winner() int { return lt.node[0] }

// replay re-runs the tournament along run i's leaf-to-root path (leaf i sits
// below internal node (k+i)/2): the path's stored losers each play the
// ascending winner, and the last one standing becomes node[0].
func (lt *loserTree) replay(i int) {
	winner := i
	for n := (lt.k + i) / 2; n >= 1; n /= 2 {
		if lt.node[n] == -1 {
			lt.node[n] = winner
			return
		}
		if lt.less(lt.node[n], winner) {
			winner, lt.node[n] = lt.node[n], winner
		}
	}
	lt.node[0] = winner
}
