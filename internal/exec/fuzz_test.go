package exec

// FuzzKernelEquivalence drives the vectorized kernel pipeline against the
// scalar reference (Expr.Eval) with fuzzer-chosen data: random typed columns,
// random NULL masks, a random expression from the kernel catalog, and a
// random selection-vector shape. Any divergence in values, NULL positions,
// result type, or error string is a bug in one of the two evaluators. The
// seed corpus runs in every plain `go test`; CI runs a bounded `-fuzztime`
// exploration via `make fuzz-smoke`.

import (
	"strings"
	"testing"

	"polaris/internal/colfile"
)

// fuzzExprs is the catalog sampled by the fuzzer. Columns: 0=i (Int64),
// 1=j (Int64), 2=f (Float64), 3=s (String), 4=b (Bool). Every kernel family
// appears, including the faulting ones (div/mod by fuzzer-chosen values).
var fuzzExprs = []Expr{
	Bin{Kind: OpEq, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}},
	Bin{Kind: OpLt, L: ColRef{Idx: 0}, R: ColRef{Idx: 2}}, // mixed int/float
	Bin{Kind: OpGe, L: ColRef{Idx: 2}, R: ColRef{Idx: 2}},
	Bin{Kind: OpNe, L: ColRef{Idx: 3}, R: Const{Val: "q"}},
	Bin{Kind: OpLe, L: ColRef{Idx: 4}, R: Const{Val: true}},
	Bin{Kind: OpAdd, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}},
	Bin{Kind: OpMul, L: ColRef{Idx: 2}, R: ColRef{Idx: 2}},
	Bin{Kind: OpSub, L: ColRef{Idx: 0}, R: ColRef{Idx: 2}},
	Bin{Kind: OpDiv, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}}, // may hit /0
	Bin{Kind: OpMod, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}}, // may hit %0
	Bin{Kind: OpDiv, L: ColRef{Idx: 2}, R: ColRef{Idx: 2}}, // float /0
	Bin{Kind: OpAdd, L: ColRef{Idx: 3}, R: ColRef{Idx: 3}}, // concat
	Bin{Kind: OpAnd, L: ColRef{Idx: 4}, R: Bin{Kind: OpGt, L: ColRef{Idx: 0}, R: Const{Val: 0}}},
	Bin{Kind: OpOr, L: ColRef{Idx: 4}, R: IsNull{E: ColRef{Idx: 3}}},
	Not{E: ColRef{Idx: 4}},
	IsNull{E: ColRef{Idx: 2}, Negate: true},
	InList{E: ColRef{Idx: 0}, Vals: []any{int64(0), int64(1), int64(-1)}},
	InList{E: ColRef{Idx: 3}, Vals: []any{"a", ""}, Negate: true},
	Bin{Kind: OpLt, L: ColRef{Idx: 3}, R: ColRef{Idx: 0}}, // lazy type error
}

var fuzzSchema = colfile.Schema{
	{Name: "i", Type: colfile.Int64},
	{Name: "j", Type: colfile.Int64},
	{Name: "f", Type: colfile.Float64},
	{Name: "s", Type: colfile.String},
	{Name: "b", Type: colfile.Bool},
}

func FuzzKernelEquivalence(f *testing.F) {
	f.Add(int64(3), int64(0), 1.5, "al%pha", true, uint8(0b10101), uint8(8), uint8(2), 5)
	f.Add(int64(-7), int64(2), -0.0, "", false, uint8(0), uint8(9), uint8(0), 1)
	f.Add(int64(42), int64(-1), 1e18, "a_b", true, uint8(0xff), uint8(18), uint8(3), 9)
	f.Fuzz(func(t *testing.T, i, j int64, fv float64, s string, bv bool,
		nulls uint8, exprPick uint8, selPick uint8, n int) {
		if n < 1 || n > 64 {
			return
		}
		// Build n rows by permuting the seed values so lanes differ; bit k of
		// nulls NULLs column k on rows where the row index shares its parity.
		b := colfile.NewBatch(fuzzSchema)
		for r := 0; r < n; r++ {
			row := []any{
				any(i + int64(r)*j),
				any(j - int64(r%3)),
				any(fv * float64(r%5)),
				any(s + strings.Repeat("x", r%3)),
				any(bv != (r%2 == 0)),
			}
			for c := 0; c < 5; c++ {
				if nulls&(1<<c) != 0 && r%2 == c%2 {
					row[c] = nil
				}
			}
			if err := b.AppendRow(row...); err != nil {
				t.Fatal(err)
			}
		}
		switch selPick % 4 {
		case 1:
			b.Sel = []int{}
		case 2:
			for r := 0; r < n; r += 2 {
				b.Sel = append(b.Sel, r)
			}
		case 3:
			b.Sel = []int{n - 1}
		}
		e := fuzzExprs[int(exprPick)%len(fuzzExprs)]

		want, wantErr := e.Eval(b.Materialize())
		got, gotErr := evalVector(e, b)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: vectorized %v, scalar reference %v", e, gotErr, wantErr)
		}
		if wantErr != nil {
			if gotErr.Error() != wantErr.Error() {
				t.Fatalf("%s: error string: vectorized %q, scalar reference %q", e, gotErr, wantErr)
			}
			return
		}
		if got.Type != want.Type {
			t.Fatalf("%s: type %s, scalar reference %s", e, got.Type, want.Type)
		}
		for r := 0; r < b.NumRows(); r++ {
			if gv, wv := got.Value(r), want.Value(r); gv != wv {
				t.Fatalf("%s: row %d = %#v, scalar reference %#v", e, r, gv, wv)
			}
		}
	})
}
