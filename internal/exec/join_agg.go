package exec

import (
	"fmt"
	"strings"
	"sync"

	"polaris/internal/colfile"
)

// JoinType selects join semantics.
type JoinType int

// Supported joins.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	SemiJoin // EXISTS-style: emit left rows with >=1 match, left schema only
)

// HashJoin is a build/probe equi-join. The right child is the build side.
// With Parallelism > 1 the build side is hash-partitioned and the partition
// tables are built concurrently; probe results are identical to the serial
// build because each partition preserves build-row order.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys and RightKeys are column indexes into each child's schema.
	LeftKeys, RightKeys []int
	Type                JoinType
	Parallelism         int
	Tel                 *Telemetry

	built  bool
	parts  []map[string][]int // len is the build partition count
	buildB *colfile.Batch
	schema colfile.Schema
}

// Schema implements Operator.
func (j *HashJoin) Schema() colfile.Schema {
	if j.schema == nil {
		l := j.Left.Schema()
		if j.Type == SemiJoin {
			j.schema = l
		} else {
			j.schema = append(append(colfile.Schema{}, l...), j.Right.Schema()...)
		}
	}
	return j.schema
}

// buildParallelMinRows is the build-side size below which a partitioned
// parallel build is not worth the fan-out overhead.
const buildParallelMinRows = 4096

func (j *HashJoin) build() error {
	all, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.buildB = all
	n := all.NumRows()
	p := j.Parallelism
	if p < 1 || n < buildParallelMinRows {
		p = 1
	}

	// Pass 1: key extraction and partition bucketing, parallel over row
	// ranges (NULL keys get no bucket and never match). Each range worker
	// appends its row indices to per-(range, partition) buckets in row
	// order, keeping total work O(n).
	keys := make([]string, n)
	buckets := make([][][]int, p) // [range][partition] -> row indices
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		buckets[w] = make([][]int, p)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				k, ok := hashKeyAt(all, j.RightKeys, i)
				if !ok {
					continue
				}
				keys[i] = k
				part := int(fnv32a(k) % uint32(p))
				buckets[w][part] = append(buckets[w][part], i)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Pass 2: each worker owns one hash partition and inserts its buckets
	// in range order — row order overall — so lookups see matches in the
	// same order a serial build would produce.
	j.parts = make([]map[string][]int, p)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := make(map[string][]int)
			for r := 0; r < p; r++ {
				for _, i := range buckets[r][w] {
					part[keys[i]] = append(part[keys[i]], i)
				}
			}
			j.parts[w] = part
		}(w)
	}
	wg.Wait()

	if j.Tel != nil {
		j.Tel.RowsProcessed.Add(int64(n))
	}
	j.built = true
	return nil
}

// lookup finds the build rows matching a probe key.
func (j *HashJoin) lookup(k string) []int {
	return j.parts[fnv32a(k)%uint32(len(j.parts))][k]
}

// fnv32a is the FNV-1a hash used to assign keys to build partitions.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Next implements Operator.
func (j *HashJoin) Next() (*colfile.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		lb, err := j.Left.Next()
		if err != nil || lb == nil {
			return nil, err
		}
		if j.Tel != nil {
			j.Tel.RowsProcessed.Add(int64(lb.NumRows()))
		}
		out := colfile.NewBatch(j.Schema())
		for i := 0; i < lb.NumRows(); i++ {
			k, ok := hashKeyAt(lb, j.LeftKeys, i)
			var matches []int
			if ok {
				matches = j.lookup(k)
			}
			switch j.Type {
			case SemiJoin:
				if len(matches) > 0 {
					appendJoined(out, lb, i, nil, -1, len(lb.Cols))
				}
			case InnerJoin:
				for _, m := range matches {
					appendJoined(out, lb, i, j.buildB, m, len(lb.Cols))
				}
			case LeftOuterJoin:
				if len(matches) == 0 {
					appendJoined(out, lb, i, nil, -1, len(lb.Cols))
				} else {
					for _, m := range matches {
						appendJoined(out, lb, i, j.buildB, m, len(lb.Cols))
					}
				}
			}
		}
		if out.NumRows() > 0 {
			return out, nil
		}
	}
}

// hashKeyAt builds a string key for the given columns at row i; ok=false when
// any key is NULL.
func hashKeyAt(b *colfile.Batch, keys []int, i int) (string, bool) {
	var sb strings.Builder
	for _, c := range keys {
		v := b.Cols[c]
		if v.IsNull(i) {
			return "", false
		}
		fmt.Fprintf(&sb, "%v\x00", v.Value(i))
	}
	return sb.String(), true
}

// appendJoined emits left row i concatenated with build row m (or NULLs for
// the right side when m < 0 and the schema includes it).
func appendJoined(out *colfile.Batch, lb *colfile.Batch, i int, rb *colfile.Batch, m, leftCols int) {
	for c := 0; c < leftCols; c++ {
		out.Cols[c].Append(lb.Cols[c], i)
	}
	if len(out.Cols) == leftCols {
		return // semi join
	}
	for c := leftCols; c < len(out.Cols); c++ {
		if m < 0 {
			out.Cols[c].AppendNull()
		} else {
			out.Cols[c].Append(rb.Cols[c-leftCols], m)
		}
	}
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregates.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggCountStar: "count(*)", AggSum: "sum",
	AggMin: "min", AggMax: "max", AggAvg: "avg",
}

// AggSpec is one aggregate in a HashAgg.
type AggSpec struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
	Name string
}

// HashAgg groups by key expressions and computes aggregates. In Partial mode
// (the per-worker phase of two-phase parallel aggregation) it emits
// mergeable partial states — per aggregate a value column plus, for SUM/AVG,
// a non-NULL count column — which MergeAgg folds into final values.
type HashAgg struct {
	In      Operator
	GroupBy []Expr
	Aggs    []AggSpec
	Partial bool
	Tel     *Telemetry

	schema colfile.Schema
	done   bool
}

type aggState struct {
	groupVals []any
	count     []int64
	sumF      []float64
	sumI      []int64
	isFloat   []bool
	minmax    []any
	seen      []bool
}

// Schema implements Operator.
func (h *HashAgg) Schema() colfile.Schema {
	if h.schema != nil {
		return h.schema
	}
	in := h.In.Schema()
	for i, g := range h.GroupBy {
		t, err := g.Type(in)
		if err != nil {
			t = colfile.Int64
		}
		name := g.String()
		_ = i
		h.schema = append(h.schema, colfile.Field{Name: name, Type: t})
	}
	for _, a := range h.Aggs {
		t := colfile.Int64
		switch a.Kind {
		case AggAvg:
			t = colfile.Float64
		case AggSum, AggMin, AggMax:
			if a.Arg != nil {
				if at, err := a.Arg.Type(in); err == nil {
					t = at
				}
			}
			if a.Kind == AggSum && t == colfile.Bool {
				t = colfile.Int64
			}
		}
		name := a.Name
		if name == "" {
			if a.Arg != nil {
				name = fmt.Sprintf("%s(%s)", aggNames[a.Kind], a.Arg)
			} else {
				name = aggNames[a.Kind]
			}
		}
		h.schema = append(h.schema, colfile.Field{Name: name, Type: t})
		if h.Partial && partialWidth(a.Kind) == 2 {
			h.schema = append(h.schema, colfile.Field{Name: name + "$cnt", Type: colfile.Int64})
		}
	}
	return h.schema
}

// Next implements Operator.
func (h *HashAgg) Next() (*colfile.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	groups := make(map[string]*aggState)
	var order []string

	for {
		b, err := h.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if h.Tel != nil {
			h.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		keyVecs := make([]*colfile.Vec, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(b)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		argVecs := make([]*colfile.Vec, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Arg != nil {
				v, err := a.Arg.Eval(b)
				if err != nil {
					return nil, err
				}
				argVecs[i] = v
			}
		}
		for r := 0; r < b.NumRows(); r++ {
			key, vals := groupKey(keyVecs, r)
			st, ok := groups[key]
			if !ok {
				st = newAggState(vals, len(h.Aggs))
				groups[key] = st
				order = append(order, key)
			}
			for i, a := range h.Aggs {
				if a.Kind == AggCountStar {
					st.count[i]++
					continue
				}
				v := argVecs[i]
				if v.IsNull(r) {
					continue // aggregates skip NULLs
				}
				st.count[i]++
				switch a.Kind {
				case AggSum, AggAvg:
					switch v.Type {
					case colfile.Int64:
						st.sumI[i] += v.Ints[r]
						st.sumF[i] += float64(v.Ints[r])
					case colfile.Float64:
						st.isFloat[i] = true
						st.sumF[i] += v.Floats[r]
					default:
						return nil, fmt.Errorf("exec: SUM over %s", v.Type)
					}
				case AggMin, AggMax:
					cur := v.Value(r)
					if !st.seen[i] {
						st.minmax[i] = cur
						st.seen[i] = true
						continue
					}
					c := compareAny(cur, st.minmax[i])
					if (a.Kind == AggMin && c < 0) || (a.Kind == AggMax && c > 0) {
						st.minmax[i] = cur
					}
				}
			}
		}
	}

	// Global aggregate with no groups and no input still yields one row
	// (in partial mode MergeAgg synthesizes it, so workers stay silent).
	if len(h.GroupBy) == 0 && len(order) == 0 && !h.Partial {
		groups[""] = newAggState(nil, len(h.Aggs))
		order = append(order, "")
	}

	out := colfile.NewBatch(h.Schema())
	for _, key := range order {
		st := groups[key]
		row := make([]any, 0, len(h.Schema()))
		row = append(row, st.groupVals...)
		for i, a := range h.Aggs {
			if h.Partial {
				row = h.appendPartial(row, a.Kind, st, i)
				continue
			}
			row = append(row, finalAggValue(a.Kind, st, i, h.schema[len(h.GroupBy)+i].Type))
		}
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

// appendPartial emits the mergeable state of one aggregate: its running
// value, plus the non-NULL count for SUM/AVG (needed so the merge can tell
// "all NULL" from zero).
func (h *HashAgg) appendPartial(row []any, k AggKind, st *aggState, i int) []any {
	switch k {
	case AggCount, AggCountStar:
		return append(row, st.count[i])
	case AggSum:
		var v any
		if st.count[i] > 0 {
			if st.isFloat[i] || h.partialSumType(i) == colfile.Float64 {
				v = st.sumF[i]
			} else {
				v = st.sumI[i]
			}
		}
		return append(append(row, v), st.count[i])
	case AggAvg:
		return append(append(row, st.sumF[i]), st.count[i])
	case AggMin, AggMax:
		if !st.seen[i] {
			return append(row, nil)
		}
		return append(row, st.minmax[i])
	}
	return append(row, nil)
}

// partialSumType returns the declared type of aggregate slot i's value column
// in the partial schema.
func (h *HashAgg) partialSumType(i int) colfile.DataType {
	col := len(h.GroupBy)
	for j := 0; j < i; j++ {
		col += partialWidth(h.Aggs[j].Kind)
	}
	return h.Schema()[col].Type
}

// groupKey encodes row r's group-key values into a hash key plus the
// materialized values (nil for NULL). Both aggregation phases — the partial
// HashAgg workers and the final MergeAgg — go through this one encoding:
// groups merge iff their keys are byte-identical.
func groupKey(vecs []*colfile.Vec, r int) (string, []any) {
	var kb strings.Builder
	vals := make([]any, len(vecs))
	for i, v := range vecs {
		if v.IsNull(r) {
			kb.WriteString("\x01NULL\x00")
		} else {
			vals[i] = v.Value(r)
			fmt.Fprintf(&kb, "%v\x00", vals[i])
		}
	}
	return kb.String(), vals
}

func compareAny(a, b any) int {
	switch x := a.(type) {
	case int64:
		return cmpOrd(x, b.(int64))
	case float64:
		return cmpOrd(x, b.(float64))
	case string:
		return strings.Compare(x, b.(string))
	case bool:
		return cmpOrd(b2i(x), b2i(b.(bool)))
	}
	return 0
}
