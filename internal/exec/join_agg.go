package exec

import (
	"fmt"
	"strings"

	"polaris/internal/colfile"
)

// JoinType selects join semantics.
type JoinType int

// Supported joins.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	SemiJoin // EXISTS-style: emit left rows with >=1 match, left schema only
)

// HashJoin is a build/probe equi-join. The right child is the build side.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys and RightKeys are column indexes into each child's schema.
	LeftKeys, RightKeys []int
	Type                JoinType
	Tel                 *Telemetry

	built  bool
	table  map[string][]int
	buildB *colfile.Batch
	schema colfile.Schema
}

// Schema implements Operator.
func (j *HashJoin) Schema() colfile.Schema {
	if j.schema == nil {
		l := j.Left.Schema()
		if j.Type == SemiJoin {
			j.schema = l
		} else {
			j.schema = append(append(colfile.Schema{}, l...), j.Right.Schema()...)
		}
	}
	return j.schema
}

func (j *HashJoin) build() error {
	all, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.buildB = all
	j.table = make(map[string][]int, all.NumRows())
	for i := 0; i < all.NumRows(); i++ {
		k, ok := hashKeyAt(all, j.RightKeys, i)
		if !ok {
			continue // NULL keys never match
		}
		j.table[k] = append(j.table[k], i)
	}
	if j.Tel != nil {
		j.Tel.RowsProcessed.Add(int64(all.NumRows()))
	}
	j.built = true
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() (*colfile.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	for {
		lb, err := j.Left.Next()
		if err != nil || lb == nil {
			return nil, err
		}
		if j.Tel != nil {
			j.Tel.RowsProcessed.Add(int64(lb.NumRows()))
		}
		out := colfile.NewBatch(j.Schema())
		for i := 0; i < lb.NumRows(); i++ {
			k, ok := hashKeyAt(lb, j.LeftKeys, i)
			var matches []int
			if ok {
				matches = j.table[k]
			}
			switch j.Type {
			case SemiJoin:
				if len(matches) > 0 {
					appendJoined(out, lb, i, nil, -1, len(lb.Cols))
				}
			case InnerJoin:
				for _, m := range matches {
					appendJoined(out, lb, i, j.buildB, m, len(lb.Cols))
				}
			case LeftOuterJoin:
				if len(matches) == 0 {
					appendJoined(out, lb, i, nil, -1, len(lb.Cols))
				} else {
					for _, m := range matches {
						appendJoined(out, lb, i, j.buildB, m, len(lb.Cols))
					}
				}
			}
		}
		if out.NumRows() > 0 {
			return out, nil
		}
	}
}

// hashKeyAt builds a string key for the given columns at row i; ok=false when
// any key is NULL.
func hashKeyAt(b *colfile.Batch, keys []int, i int) (string, bool) {
	var sb strings.Builder
	for _, c := range keys {
		v := b.Cols[c]
		if v.IsNull(i) {
			return "", false
		}
		fmt.Fprintf(&sb, "%v\x00", v.Value(i))
	}
	return sb.String(), true
}

// appendJoined emits left row i concatenated with build row m (or NULLs for
// the right side when m < 0 and the schema includes it).
func appendJoined(out *colfile.Batch, lb *colfile.Batch, i int, rb *colfile.Batch, m, leftCols int) {
	for c := 0; c < leftCols; c++ {
		out.Cols[c].Append(lb.Cols[c], i)
	}
	if len(out.Cols) == leftCols {
		return // semi join
	}
	for c := leftCols; c < len(out.Cols); c++ {
		if m < 0 {
			out.Cols[c].AppendNull()
		} else {
			out.Cols[c].Append(rb.Cols[c-leftCols], m)
		}
	}
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregates.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggCountStar: "count(*)", AggSum: "sum",
	AggMin: "min", AggMax: "max", AggAvg: "avg",
}

// AggSpec is one aggregate in a HashAgg.
type AggSpec struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
	Name string
}

// HashAgg groups by key expressions and computes aggregates.
type HashAgg struct {
	In      Operator
	GroupBy []Expr
	Aggs    []AggSpec
	Tel     *Telemetry

	schema colfile.Schema
	done   bool
}

type aggState struct {
	groupVals []any
	count     []int64
	sumF      []float64
	sumI      []int64
	isFloat   []bool
	minmax    []any
	seen      []bool
}

// Schema implements Operator.
func (h *HashAgg) Schema() colfile.Schema {
	if h.schema != nil {
		return h.schema
	}
	in := h.In.Schema()
	for i, g := range h.GroupBy {
		t, err := g.Type(in)
		if err != nil {
			t = colfile.Int64
		}
		name := g.String()
		_ = i
		h.schema = append(h.schema, colfile.Field{Name: name, Type: t})
	}
	for _, a := range h.Aggs {
		t := colfile.Int64
		switch a.Kind {
		case AggAvg:
			t = colfile.Float64
		case AggSum, AggMin, AggMax:
			if a.Arg != nil {
				if at, err := a.Arg.Type(in); err == nil {
					t = at
				}
			}
			if a.Kind == AggSum && t == colfile.Bool {
				t = colfile.Int64
			}
		}
		name := a.Name
		if name == "" {
			if a.Arg != nil {
				name = fmt.Sprintf("%s(%s)", aggNames[a.Kind], a.Arg)
			} else {
				name = aggNames[a.Kind]
			}
		}
		h.schema = append(h.schema, colfile.Field{Name: name, Type: t})
	}
	return h.schema
}

// Next implements Operator.
func (h *HashAgg) Next() (*colfile.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	groups := make(map[string]*aggState)
	var order []string

	for {
		b, err := h.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if h.Tel != nil {
			h.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		keyVecs := make([]*colfile.Vec, len(h.GroupBy))
		for i, g := range h.GroupBy {
			v, err := g.Eval(b)
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		argVecs := make([]*colfile.Vec, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Arg != nil {
				v, err := a.Arg.Eval(b)
				if err != nil {
					return nil, err
				}
				argVecs[i] = v
			}
		}
		for r := 0; r < b.NumRows(); r++ {
			var kb strings.Builder
			vals := make([]any, len(keyVecs))
			for i, kv := range keyVecs {
				if kv.IsNull(r) {
					kb.WriteString("\x01NULL\x00")
					vals[i] = nil
				} else {
					fmt.Fprintf(&kb, "%v\x00", kv.Value(r))
					vals[i] = kv.Value(r)
				}
			}
			key := kb.String()
			st, ok := groups[key]
			if !ok {
				st = &aggState{
					groupVals: vals,
					count:     make([]int64, len(h.Aggs)),
					sumF:      make([]float64, len(h.Aggs)),
					sumI:      make([]int64, len(h.Aggs)),
					isFloat:   make([]bool, len(h.Aggs)),
					minmax:    make([]any, len(h.Aggs)),
					seen:      make([]bool, len(h.Aggs)),
				}
				groups[key] = st
				order = append(order, key)
			}
			for i, a := range h.Aggs {
				if a.Kind == AggCountStar {
					st.count[i]++
					continue
				}
				v := argVecs[i]
				if v.IsNull(r) {
					continue // aggregates skip NULLs
				}
				st.count[i]++
				switch a.Kind {
				case AggSum, AggAvg:
					switch v.Type {
					case colfile.Int64:
						st.sumI[i] += v.Ints[r]
						st.sumF[i] += float64(v.Ints[r])
					case colfile.Float64:
						st.isFloat[i] = true
						st.sumF[i] += v.Floats[r]
					default:
						return nil, fmt.Errorf("exec: SUM over %s", v.Type)
					}
				case AggMin, AggMax:
					cur := v.Value(r)
					if !st.seen[i] {
						st.minmax[i] = cur
						st.seen[i] = true
						continue
					}
					c := compareAny(cur, st.minmax[i])
					if (a.Kind == AggMin && c < 0) || (a.Kind == AggMax && c > 0) {
						st.minmax[i] = cur
					}
				}
			}
		}
	}

	// Global aggregate with no groups and no input still yields one row.
	if len(h.GroupBy) == 0 && len(order) == 0 {
		st := &aggState{
			count:   make([]int64, len(h.Aggs)),
			sumF:    make([]float64, len(h.Aggs)),
			sumI:    make([]int64, len(h.Aggs)),
			isFloat: make([]bool, len(h.Aggs)),
			minmax:  make([]any, len(h.Aggs)),
			seen:    make([]bool, len(h.Aggs)),
		}
		groups[""] = st
		order = append(order, "")
	}

	out := colfile.NewBatch(h.Schema())
	for _, key := range order {
		st := groups[key]
		row := make([]any, 0, len(h.GroupBy)+len(h.Aggs))
		row = append(row, st.groupVals...)
		for i, a := range h.Aggs {
			switch a.Kind {
			case AggCount, AggCountStar:
				row = append(row, st.count[i])
			case AggSum:
				if st.count[i] == 0 {
					row = append(row, nil)
				} else if st.isFloat[i] || h.schema[len(h.GroupBy)+i].Type == colfile.Float64 {
					row = append(row, st.sumF[i])
				} else {
					row = append(row, st.sumI[i])
				}
			case AggAvg:
				if st.count[i] == 0 {
					row = append(row, nil)
				} else {
					row = append(row, st.sumF[i]/float64(st.count[i]))
				}
			case AggMin, AggMax:
				if !st.seen[i] {
					row = append(row, nil)
				} else {
					row = append(row, st.minmax[i])
				}
			}
		}
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

func compareAny(a, b any) int {
	switch x := a.(type) {
	case int64:
		return cmpOrd(x, b.(int64))
	case float64:
		return cmpOrd(x, b.(float64))
	case string:
		return strings.Compare(x, b.(string))
	case bool:
		return cmpOrd(b2i(x), b2i(b.(bool)))
	}
	return 0
}
