package exec

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"polaris/internal/colfile"
)

// JoinType selects join semantics.
type JoinType int

// Supported joins.
const (
	InnerJoin JoinType = iota
	LeftOuterJoin
	SemiJoin // EXISTS-style: emit left rows with >=1 match, left schema only
)

// JoinTable is the immutable product of a hash-join build: the materialized
// build side plus hash-partitioned key tables. Once BuildHashJoin returns,
// a JoinTable is read-only, so any number of Probe workers may share it
// concurrently without synchronization — the foundation of the
// morsel-parallel probe.
type JoinTable struct {
	parts []map[string][]int // len is the build partition count
	build *colfile.Batch
	typ   JoinType
}

// BuildSchema returns the build side's schema.
func (jt *JoinTable) BuildSchema() colfile.Schema { return jt.build.Schema }

// lookup finds the build rows matching an encoded probe key (no allocation:
// the []byte→string map index is allocation-free in Go).
func (jt *JoinTable) lookup(k []byte) []int {
	return jt.parts[fnv32a(k)%uint32(len(jt.parts))][string(k)]
}

// buildParallelMinRows is the build-side size below which a partitioned
// parallel build is not worth the fan-out overhead.
const buildParallelMinRows = 4096

// BuildHashJoin drains the build operator and constructs the shared probe
// table. With parallelism > 1 and a large enough build side, the build is
// hash-partitioned and the partition tables are built concurrently; probe
// results are identical to a serial build because each partition inserts its
// rows in build-row order.
func BuildHashJoin(build Operator, keys []int, typ JoinType, parallelism int, tel *Telemetry) (*JoinTable, error) {
	all, err := Collect(build)
	if err != nil {
		return nil, err
	}
	n := all.NumRows()
	p := parallelism
	if p < 1 || n < buildParallelMinRows {
		p = 1
	}

	// Pass 1: typed key encoding and partition bucketing, parallel over row
	// ranges (NULL keys get no bucket and never match). Each range worker
	// appends its row indices to per-(range, partition) buckets in row
	// order, keeping total work O(n).
	rowKeys := make([]string, n)
	buckets := make([][][]int, p) // [range][partition] -> row indices
	chunk := (n + p - 1) / p
	var wg sync.WaitGroup
	for w := 0; w < p; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		buckets[w] = make([][]int, p)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var scratch []byte
			for i := lo; i < hi; i++ {
				k, ok := appendRowKey(scratch[:0], all, keys, i)
				scratch = k
				if !ok {
					continue
				}
				rowKeys[i] = string(k)
				part := int(fnv32a(k) % uint32(p))
				buckets[w][part] = append(buckets[w][part], i)
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Pass 2: each worker owns one hash partition and inserts its buckets
	// in range order — row order overall — so lookups see matches in the
	// same order a serial build would produce.
	parts := make([]map[string][]int, p)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := make(map[string][]int)
			for r := 0; r < p; r++ {
				for _, i := range buckets[r][w] {
					part[rowKeys[i]] = append(part[rowKeys[i]], i)
				}
			}
			parts[w] = part
		}(w)
	}
	wg.Wait()

	if tel != nil {
		tel.RowsProcessed.Add(int64(n))
	}
	return &JoinTable{parts: parts, build: all, typ: typ}, nil
}

// fnv32a is the FNV-1a hash used to assign encoded keys to build partitions.
func fnv32a(s []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// appendRowKey encodes the key columns of row i into dst (see Vec.AppendKey);
// ok=false when any key column is NULL — a NULL key never matches.
func appendRowKey(dst []byte, b *colfile.Batch, keys []int, i int) ([]byte, bool) {
	for _, c := range keys {
		v := b.Cols[c]
		if v.IsNull(i) {
			return dst, false
		}
		dst = v.AppendKey(dst, i)
	}
	return dst, true
}

// Probe streams probe-side batches against a shared JoinTable. Each Probe
// owns its scratch buffers (key encoding plus the two-sided gather index
// lists), so one JoinTable feeds many concurrent Probe instances — one per
// morsel worker — race-free. Matched rows are emitted as a bulk two-sided
// gather (Vec.Take) instead of row-at-a-time appends.
type Probe struct {
	In       Operator
	Table    *JoinTable
	LeftKeys []int
	Tel      *Telemetry
	// Bloom, when set, short-circuits the hash-table walk for probe keys the
	// runtime filter proves absent. No false negatives, so results are
	// byte-identical with or without it (docs/PLANNER.md).
	Bloom *Bloom
	// Pruned, when set, accumulates the rows Bloom rejected (row-based, so
	// DOP-invariant; the planner points it at WorkStats.RuntimeFilterRows).
	Pruned *atomic.Int64

	schema colfile.Schema
	keyBuf []byte
	lIdx   []int // probe-row gather indexes
	rIdx   []int // build-row gather indexes; -1 pads outer-join misses
}

// Schema implements Operator.
func (p *Probe) Schema() colfile.Schema {
	if p.schema == nil {
		l := p.In.Schema()
		if p.Table.typ == SemiJoin {
			p.schema = l
		} else {
			p.schema = append(append(colfile.Schema{}, l...), p.Table.build.Schema...)
		}
	}
	return p.schema
}

// Next implements Operator.
func (p *Probe) Next() (*colfile.Batch, error) {
	for {
		lb, err := p.In.Next()
		if err != nil || lb == nil {
			return nil, err
		}
		if p.Tel != nil {
			p.Tel.RowsProcessed.Add(int64(lb.NumRows()))
		}
		if out := p.probeBatch(lb); out.NumRows() > 0 {
			return out, nil
		}
	}
}

// probeBatch joins one probe batch against the shared table. Output row
// order is fixed by probe-row order then build-row order, so results are
// deterministic for any decomposition of the probe stream into batches.
// Selected batches are probed through their selection vector (logical order
// equals ascending physical order), so a filtered probe side needs no
// materialization.
func (p *Probe) probeBatch(lb *colfile.Batch) *colfile.Batch {
	jt := p.Table
	p.lIdx, p.rIdx = p.lIdx[:0], p.rIdx[:0]
	var pruned int64
	for i := 0; i < lb.NumRows(); i++ {
		phys := lb.RowIdx(i)
		k, ok := appendRowKey(p.keyBuf[:0], lb, p.LeftKeys, phys)
		p.keyBuf = k[:0]
		var matches []int
		if ok {
			if p.Bloom != nil && !p.Bloom.MayContain(k) {
				pruned++ // provably no match: skip the hash-table walk
			} else {
				matches = jt.lookup(k)
			}
		}
		switch jt.typ {
		case SemiJoin:
			if len(matches) > 0 {
				p.lIdx = append(p.lIdx, phys)
			}
		case InnerJoin:
			for _, m := range matches {
				p.lIdx = append(p.lIdx, phys)
				p.rIdx = append(p.rIdx, m)
			}
		case LeftOuterJoin:
			if len(matches) == 0 {
				p.lIdx = append(p.lIdx, phys)
				p.rIdx = append(p.rIdx, -1)
			} else {
				for _, m := range matches {
					p.lIdx = append(p.lIdx, phys)
					p.rIdx = append(p.rIdx, m)
				}
			}
		}
	}
	countPruned(p.Pruned, pruned)
	schema := p.Schema()
	out := &colfile.Batch{Schema: schema, Cols: make([]*colfile.Vec, len(schema))}
	leftCols := len(lb.Cols)
	for c := 0; c < leftCols; c++ {
		out.Cols[c] = lb.Cols[c].Take(p.lIdx)
	}
	for c := leftCols; c < len(schema); c++ {
		out.Cols[c] = jt.build.Cols[c-leftCols].Take(p.rIdx)
	}
	return out
}

// HashJoin is a build/probe equi-join. The right child is the build side.
// With Parallelism > 1 the build side is hash-partitioned and the partition
// tables are built concurrently. Next runs the probe serially over Left.
//
// The SQL planner does NOT use this operator: it drains every build through
// BuildGraceJoin — which honors the join memory budget and may spill — and
// fans Probe (or SpilledProbe) out itself. HashJoin is the always-in-memory
// reference composition of BuildHashJoin+Probe, kept as the oracle the join
// semantics tests compare against; new callers wanting budget-aware joins
// should go through BuildGraceJoin.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys and RightKeys are column indexes into each child's schema.
	LeftKeys, RightKeys []int
	Type                JoinType
	Parallelism         int
	Tel                 *Telemetry

	probe  *Probe
	schema colfile.Schema
}

// Schema implements Operator.
func (j *HashJoin) Schema() colfile.Schema {
	if j.schema == nil {
		l := j.Left.Schema()
		if j.Type == SemiJoin {
			j.schema = l
		} else {
			j.schema = append(append(colfile.Schema{}, l...), j.Right.Schema()...)
		}
	}
	return j.schema
}

// Next implements Operator.
func (j *HashJoin) Next() (*colfile.Batch, error) {
	if j.probe == nil {
		jt, err := BuildHashJoin(j.Right, j.RightKeys, j.Type, j.Parallelism, j.Tel)
		if err != nil {
			return nil, err
		}
		j.probe = &Probe{In: j.Left, Table: jt, LeftKeys: j.LeftKeys, Tel: j.Tel}
	}
	return j.probe.Next()
}

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregates.
const (
	AggCount AggKind = iota
	AggCountStar
	AggSum
	AggMin
	AggMax
	AggAvg
)

var aggNames = map[AggKind]string{
	AggCount: "count", AggCountStar: "count(*)", AggSum: "sum",
	AggMin: "min", AggMax: "max", AggAvg: "avg",
}

// AggSpec is one aggregate in a HashAgg.
type AggSpec struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
	Name string
}

// HashAgg groups by key expressions and computes aggregates. In Partial mode
// (the per-worker phase of two-phase parallel aggregation) it emits
// mergeable partial states — per aggregate a value column plus, for SUM/AVG,
// a non-NULL count column — which MergeAgg folds into final values.
// Group-by and aggregate-argument expressions run as compiled kernel
// programs (pre-compiled by the planner via GroupProgs/ArgProgs or compiled
// on first use), and the accumulation loop reads typed payload slices
// directly — per input row it boxes nothing.
type HashAgg struct {
	In      Operator
	GroupBy []Expr
	Aggs    []AggSpec
	Partial bool
	Tel     *Telemetry
	// GroupProgs/ArgProgs optionally carry the planner's pre-compiled
	// programs, parallel to GroupBy/Aggs (ArgProgs entries are nil for
	// COUNT(*)). When nil the operator compiles on first use.
	GroupProgs []*Prog
	ArgProgs   []*Prog

	schema colfile.Schema
	done   bool
}

// aggState accumulates one group. MIN/MAX state is typed (mmT selects the
// payload): values are compared and stored unboxed per row and boxed exactly
// once per group when the result row is rendered — the dominant allocation
// in the pre-vectorized profile.
type aggState struct {
	groupVals []any
	count     []int64
	sumF      []float64
	sumI      []int64
	isFloat   []bool
	seen      []bool
	mmT       []colfile.DataType
	mmI       []int64
	mmF       []float64
	mmS       []string
	mmB       []bool
}

// observeMinMax folds physical lane p of v into min/max slot i.
//
//polaris:kernel p is a physical position the caller already translated through the batch's selection
func (st *aggState) observeMinMax(k AggKind, v *colfile.Vec, p, i int) {
	if !st.seen[i] {
		st.seen[i] = true
		st.mmT[i] = v.Type
		switch v.Type {
		case colfile.Int64:
			st.mmI[i] = v.Ints[p]
		case colfile.Float64:
			st.mmF[i] = v.Floats[p]
		case colfile.String:
			st.mmS[i] = v.Strs[p]
		case colfile.Bool:
			st.mmB[i] = v.Bools[p]
		}
		return
	}
	var c int
	switch v.Type {
	case colfile.Int64:
		c = cmpOrd(v.Ints[p], st.mmI[i])
	case colfile.Float64:
		c = cmpOrd(v.Floats[p], st.mmF[i])
	case colfile.String:
		c = strings.Compare(v.Strs[p], st.mmS[i])
	case colfile.Bool:
		c = cmpOrd(b2i(v.Bools[p]), b2i(st.mmB[i]))
	}
	if (k == AggMin && c < 0) || (k == AggMax && c > 0) {
		switch v.Type {
		case colfile.Int64:
			st.mmI[i] = v.Ints[p]
		case colfile.Float64:
			st.mmF[i] = v.Floats[p]
		case colfile.String:
			st.mmS[i] = v.Strs[p]
		case colfile.Bool:
			st.mmB[i] = v.Bools[p]
		}
	}
}

// minmaxValue boxes min/max slot i's value for result rendering (nil when the
// group saw no non-NULL values).
func (st *aggState) minmaxValue(i int) any {
	if !st.seen[i] {
		return nil
	}
	switch st.mmT[i] {
	case colfile.Int64:
		return st.mmI[i]
	case colfile.Float64:
		return st.mmF[i]
	case colfile.String:
		return st.mmS[i]
	case colfile.Bool:
		return st.mmB[i]
	}
	return nil
}

// Schema implements Operator.
func (h *HashAgg) Schema() colfile.Schema {
	if h.schema != nil {
		return h.schema
	}
	in := h.In.Schema()
	for i, g := range h.GroupBy {
		t, err := g.Type(in)
		if err != nil {
			t = colfile.Int64
		}
		name := g.String()
		_ = i
		h.schema = append(h.schema, colfile.Field{Name: name, Type: t})
	}
	for _, a := range h.Aggs {
		t := colfile.Int64
		switch a.Kind {
		case AggAvg:
			t = colfile.Float64
		case AggSum, AggMin, AggMax:
			if a.Arg != nil {
				if at, err := a.Arg.Type(in); err == nil {
					t = at
				}
			}
			if a.Kind == AggSum && t == colfile.Bool {
				t = colfile.Int64
			}
		}
		name := a.Name
		if name == "" {
			if a.Arg != nil {
				name = fmt.Sprintf("%s(%s)", aggNames[a.Kind], a.Arg)
			} else {
				name = aggNames[a.Kind]
			}
		}
		h.schema = append(h.schema, colfile.Field{Name: name, Type: t})
		if h.Partial && partialWidth(a.Kind) == 2 {
			h.schema = append(h.schema, colfile.Field{Name: name + "$cnt", Type: colfile.Int64})
		}
	}
	return h.schema
}

// Next implements Operator.
//
//polaris:kernel the aggregation loop walks phys positions taken from Batch.Sel (or dense [0,n)) before touching lanes
func (h *HashAgg) Next() (*colfile.Batch, error) {
	if h.done {
		return nil, nil
	}
	h.done = true
	groups := make(map[string]*aggState)
	var order []string
	var keyBuf []byte

	// Compile group-by and argument expressions once for the whole drain;
	// exotic expressions fall back to the scalar reference path.
	in := h.In.Schema()
	keyProgs, argProgs := h.GroupProgs, h.ArgProgs
	fallback := false
	if keyProgs == nil {
		keyProgs = make([]*Prog, len(h.GroupBy))
		for i, g := range h.GroupBy {
			p, err := Compile(g, in)
			if err != nil {
				fallback = true
				break
			}
			keyProgs[i] = p
		}
	}
	if !fallback && argProgs == nil {
		argProgs = make([]*Prog, len(h.Aggs))
		for i, a := range h.Aggs {
			if a.Arg == nil {
				continue
			}
			p, err := Compile(a.Arg, in)
			if err != nil {
				fallback = true
				break
			}
			argProgs[i] = p
		}
	}
	var keyCtxs, argCtxs []*EvalCtx
	if !fallback {
		keyCtxs = make([]*EvalCtx, len(keyProgs))
		for i, p := range keyProgs {
			keyCtxs[i] = p.NewCtx()
		}
		argCtxs = make([]*EvalCtx, len(argProgs))
		for i, p := range argProgs {
			if p != nil {
				argCtxs[i] = p.NewCtx()
			}
		}
	}
	keyVecs := make([]*colfile.Vec, len(h.GroupBy))
	argVecs := make([]*colfile.Vec, len(h.Aggs))

	for {
		b, err := h.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if h.Tel != nil {
			h.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		if fallback {
			b = b.Materialize() // the scalar reference is defined over dense batches
		}
		for i := range h.GroupBy {
			var v *colfile.Vec
			if fallback {
				v, err = h.GroupBy[i].Eval(b)
			} else {
				v, err = keyProgs[i].Run(keyCtxs[i], b)
			}
			if err != nil {
				return nil, err
			}
			keyVecs[i] = v
		}
		for i, a := range h.Aggs {
			if a.Arg == nil {
				continue
			}
			var v *colfile.Vec
			if fallback {
				v, err = a.Arg.Eval(b)
			} else {
				v, err = argProgs[i].Run(argCtxs[i], b)
			}
			if err != nil {
				return nil, err
			}
			argVecs[i] = v
		}
		for r := 0; r < b.NumRows(); r++ {
			phys := b.RowIdx(r)
			keyBuf = appendGroupKey(keyBuf[:0], keyVecs, phys)
			st, ok := groups[string(keyBuf)]
			if !ok {
				st = newAggState(groupVals(keyVecs, phys), len(h.Aggs))
				key := string(keyBuf)
				groups[key] = st
				order = append(order, key)
			}
			for i, a := range h.Aggs {
				if a.Kind == AggCountStar {
					st.count[i]++
					continue
				}
				v := argVecs[i]
				if v.IsNull(phys) {
					continue // aggregates skip NULLs
				}
				st.count[i]++
				switch a.Kind {
				case AggSum, AggAvg:
					switch v.Type {
					case colfile.Int64:
						st.sumI[i] += v.Ints[phys]
						st.sumF[i] += float64(v.Ints[phys])
					case colfile.Float64:
						st.isFloat[i] = true
						st.sumF[i] += v.Floats[phys]
					default:
						return nil, fmt.Errorf("exec: SUM over %s", v.Type)
					}
				case AggMin, AggMax:
					st.observeMinMax(a.Kind, v, phys, i)
				}
			}
		}
	}

	// Global aggregate with no groups and no input still yields one row
	// (in partial mode MergeAgg synthesizes it, so workers stay silent).
	if len(h.GroupBy) == 0 && len(order) == 0 && !h.Partial {
		groups[""] = newAggState(nil, len(h.Aggs))
		order = append(order, "")
	}

	out := colfile.NewBatch(h.Schema())
	for _, key := range order {
		st := groups[key]
		row := make([]any, 0, len(h.Schema()))
		row = append(row, st.groupVals...)
		for i, a := range h.Aggs {
			if h.Partial {
				row = h.appendPartial(row, a.Kind, st, i)
				continue
			}
			row = append(row, finalAggValue(a.Kind, st, i, h.schema[len(h.GroupBy)+i].Type))
		}
		if err := out.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	if out.NumRows() == 0 {
		return nil, nil
	}
	return out, nil
}

// appendPartial emits the mergeable state of one aggregate: its running
// value, plus the non-NULL count for SUM/AVG (needed so the merge can tell
// "all NULL" from zero).
func (h *HashAgg) appendPartial(row []any, k AggKind, st *aggState, i int) []any {
	switch k {
	case AggCount, AggCountStar:
		return append(row, st.count[i])
	case AggSum:
		var v any
		if st.count[i] > 0 {
			if st.isFloat[i] || h.partialSumType(i) == colfile.Float64 {
				v = st.sumF[i]
			} else {
				v = st.sumI[i]
			}
		}
		return append(append(row, v), st.count[i])
	case AggAvg:
		return append(append(row, st.sumF[i]), st.count[i])
	case AggMin, AggMax:
		return append(row, st.minmaxValue(i))
	}
	return append(row, nil)
}

// partialSumType returns the declared type of aggregate slot i's value column
// in the partial schema.
func (h *HashAgg) partialSumType(i int) colfile.DataType {
	col := len(h.GroupBy)
	for j := 0; j < i; j++ {
		col += partialWidth(h.Aggs[j].Kind)
	}
	return h.Schema()[col].Type
}

// appendGroupKey encodes row r's group-key columns into dst with the typed,
// self-delimiting Vec.AppendKey encoding (NULL is a distinct one-byte tag,
// so a NULL group can never collide with any value). Both aggregation phases
// — the partial HashAgg workers and the final MergeAgg — go through this one
// encoding: groups merge iff their keys are byte-identical, and a bytewise
// sort of keys orders numeric groups by value.
func appendGroupKey(dst []byte, vecs []*colfile.Vec, r int) []byte {
	for _, v := range vecs {
		dst = v.AppendKey(dst, r)
	}
	return dst
}

// groupVals materializes row r's group-key values (nil for NULL) for result
// rendering — called once per distinct group, not per row.
func groupVals(vecs []*colfile.Vec, r int) []any {
	vals := make([]any, len(vecs))
	for i, v := range vecs {
		vals[i] = v.Value(r)
	}
	return vals
}
