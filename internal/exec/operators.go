package exec

import (
	"context"
	"fmt"
	"sync/atomic"

	"polaris/internal/colfile"
	"polaris/internal/deletevector"
)

// Telemetry counts work done by operators; the transaction layer converts
// these into simulated CPU time via the compute cost model.
type Telemetry struct {
	RowsScanned   atomic.Int64
	RowsProcessed atomic.Int64
	BytesScanned  atomic.Int64
	GroupsPruned  atomic.Int64
}

// Operator is a pull-based batch iterator. Next returns nil at end of stream.
type Operator interface {
	Schema() colfile.Schema
	Next() (*colfile.Batch, error)
}

// DefaultBatchSize is the row-count target per batch.
const DefaultBatchSize = 4096

// ScanFile is one input to a Scan: a sealed colfile plus its deletion vector.
type ScanFile struct {
	Data []byte
	DV   *deletevector.Vector // nil when no rows are deleted
}

// PruneHint lets the scan skip row groups using zone maps: row groups whose
// [min,max] for column Col cannot intersect [Lo,Hi] are skipped.
type PruneHint struct {
	Col    string
	Lo, Hi int64
}

// Scan reads a set of immutable columnar files, filters deleted rows via the
// deletion vector (merge-on-read, paper Section 2.1), prunes row groups via
// zone maps, and projects the requested columns.
type Scan struct {
	files   []ScanFile
	cols    []string // nil = all
	hint    *PruneHint
	tel     *Telemetry
	schema  colfile.Schema
	colIdxs []int

	// groupLo/groupHi bound the row-group window read from each file;
	// groupHi == 0 means all groups. Morsel scans use the window to split a
	// single large file across workers (the window then applies to the
	// morsel's only file).
	groupLo, groupHi int

	// pred is a compiled predicate pushed into the scan by the planner
	// (shared immutable Prog, per-scan EvalCtx). Per row group, the DV-live
	// selection is computed first, then only the predicate's columns are
	// decoded and evaluated; the remaining projected columns are decoded
	// only for groups with at least one qualifying row. See PushPredicate.
	pred     *Prog
	predCols []int // projected-schema positions the predicate reads
	predCtx  *EvalCtx

	fileIdx  int
	reader   *colfile.Reader
	groupIdx int
	rowBase  uint32 // global row ordinal of current group within current file
	prepared bool
}

// NewScan builds a scan operator. The schema is taken from the first file;
// all files must share it. An empty file list yields an empty stream with a
// nil schema unless SetSchema is called.
func NewScan(files []ScanFile, cols []string, hint *PruneHint, tel *Telemetry) (*Scan, error) {
	s := &Scan{files: files, cols: cols, hint: hint, tel: tel}
	if len(files) > 0 {
		r, err := colfile.OpenReader(files[0].Data)
		if err != nil {
			return nil, err
		}
		if err := s.project(r.Schema()); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// SetSchema supplies the schema for an empty scan.
func (s *Scan) SetSchema(schema colfile.Schema) error {
	if s.schema != nil {
		return nil
	}
	return s.project(schema)
}

func (s *Scan) project(full colfile.Schema) error {
	if s.cols == nil {
		s.schema = full
		s.colIdxs = nil
		return nil
	}
	s.colIdxs = make([]int, len(s.cols))
	s.schema = make(colfile.Schema, len(s.cols))
	for i, name := range s.cols {
		idx := full.ColIndex(name)
		if idx < 0 {
			return fmt.Errorf("exec: unknown column %q", name)
		}
		s.colIdxs[i] = idx
		s.schema[i] = full[idx]
	}
	return nil
}

// Schema implements Operator.
func (s *Scan) Schema() colfile.Schema { return s.schema }

// PushPredicate attaches a compiled predicate evaluated inside the scan.
// The Prog must be compiled against the scan's projected schema, return
// Bool, and be unable to error at runtime (the planner only pushes such
// conjuncts): a row the predicate rejects is dropped before downstream
// operators — or the remaining columns — ever see it. Deleted rows are
// excluded before evaluation, so a pushed predicate cannot observe them.
// Reports whether the predicate was attached (a program reading no columns
// is refused — constant predicates stay in the Filter above the scan).
func (s *Scan) PushPredicate(p *Prog) bool {
	cols := p.Cols()
	if len(cols) == 0 || p.OutType() != colfile.Bool {
		return false
	}
	s.pred, s.predCols, s.predCtx = p, cols, p.NewCtx()
	return true
}

// fileCol maps a projected-schema column position to its file column index.
func (s *Scan) fileCol(c int) int {
	if s.colIdxs == nil {
		return c
	}
	return s.colIdxs[c]
}

// Next implements Operator.
func (s *Scan) Next() (*colfile.Batch, error) {
	for {
		if s.reader == nil {
			if s.fileIdx >= len(s.files) {
				return nil, nil
			}
			r, err := colfile.OpenReader(s.files[s.fileIdx].Data)
			if err != nil {
				return nil, err
			}
			if s.schema == nil {
				if err := s.project(r.Schema()); err != nil {
					return nil, err
				}
			} else if !s.fullSchemaMatches(r.Schema()) {
				return nil, fmt.Errorf("exec: file %d schema mismatch", s.fileIdx)
			}
			s.reader = r
			s.groupIdx = s.groupLo
			s.rowBase = 0
			for g := 0; g < s.groupLo && g < r.NumRowGroups(); g++ {
				s.rowBase += uint32(r.RowGroupRows(g))
			}
			// When a file is split into windowed morsels, only the first
			// window accounts the file's bytes, keeping totals stable across
			// degrees of parallelism.
			if s.tel != nil && s.groupLo == 0 {
				s.tel.BytesScanned.Add(int64(len(s.files[s.fileIdx].Data)))
			}
		}
		end := s.reader.NumRowGroups()
		if s.groupHi > 0 && s.groupHi < end {
			end = s.groupHi
		}
		if s.groupIdx >= end {
			s.reader = nil
			s.fileIdx++
			continue
		}
		g := s.groupIdx
		s.groupIdx++
		groupRows := s.reader.RowGroupRows(g)
		base := s.rowBase
		s.rowBase += uint32(groupRows)

		if s.hint != nil {
			c := s.reader.Schema().ColIndex(s.hint.Col)
			if c >= 0 && s.reader.PruneInt(g, c, s.hint.Lo, s.hint.Hi) {
				if s.tel != nil {
					s.tel.GroupsPruned.Add(1)
				}
				continue
			}
		}

		if s.pred != nil {
			batch, err := s.readGroupPushdown(g, groupRows, base)
			if err != nil {
				return nil, err
			}
			if s.tel != nil {
				s.tel.RowsScanned.Add(int64(groupRows))
			}
			if batch == nil {
				continue
			}
			return batch, nil
		}

		batch, err := s.reader.ReadRowGroup(g, s.colIdxs)
		if err != nil {
			return nil, err
		}
		if s.tel != nil {
			s.tel.RowsScanned.Add(int64(groupRows))
		}
		dv := s.files[s.fileIdx].DV
		if dv != nil && !dv.IsEmpty() {
			keep := make([]bool, groupRows)
			kept := 0
			for i := range keep {
				if !dv.Contains(base + uint32(i)) {
					keep[i] = true
					kept++
				}
			}
			if kept == 0 {
				continue
			}
			if kept < groupRows {
				batch = batch.Filter(keep)
			}
		}
		if batch.NumRows() == 0 {
			continue
		}
		return batch, nil
	}
}

// readGroupPushdown reads row group g under the pushed predicate. Order
// matters for correctness: (1) the deletion vector produces the live
// selection, so the predicate never evaluates deleted rows; (2) only the
// predicate's columns are decoded and the program runs over that selection;
// (3) the remaining projected columns are decoded only when at least one row
// qualifies. Returns nil (no batch) when the whole group is filtered out.
//
//polaris:kernel the predicate program is position-aligned with its inputs, so pv lanes are read at the same physical positions the selection enumerates
func (s *Scan) readGroupPushdown(g, groupRows int, base uint32) (*colfile.Batch, error) {
	var sel []int
	dv := s.files[s.fileIdx].DV
	if dv != nil && !dv.IsEmpty() {
		sel = make([]int, 0, groupRows)
		for i := 0; i < groupRows; i++ {
			if !dv.Contains(base + uint32(i)) {
				sel = append(sel, i)
			}
		}
		if len(sel) == 0 {
			return nil, nil
		}
		if len(sel) == groupRows {
			sel = nil // dense
		}
	}

	cols := make([]*colfile.Vec, len(s.schema))
	for _, c := range s.predCols {
		v, err := s.reader.ReadColumn(g, s.fileCol(c))
		if err != nil {
			return nil, err
		}
		cols[c] = v
	}
	pb := &colfile.Batch{Schema: s.schema, Cols: cols, Sel: sel}
	if cols[0] == nil {
		// PhysRows reads Cols[0].Len(); alias a decoded predicate column
		// there purely for its length — the program only dereferences the
		// slots it reads, and the alias is overwritten below.
		pb.Cols[0] = cols[s.predCols[0]]
	}
	pv, err := s.pred.Run(s.predCtx, pb)
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, pb.NumRows())
	if sel == nil {
		for i := 0; i < groupRows; i++ {
			if !pv.IsNull(i) && pv.Bools[i] {
				out = append(out, i)
			}
		}
	} else {
		for _, i := range sel {
			if !pv.IsNull(i) && pv.Bools[i] {
				out = append(out, i)
			}
		}
	}
	if len(out) == 0 {
		return nil, nil
	}

	have := make([]bool, len(s.schema))
	for _, c := range s.predCols {
		have[c] = true
	}
	for c := range s.schema {
		if have[c] {
			continue
		}
		v, err := s.reader.ReadColumn(g, s.fileCol(c))
		if err != nil {
			return nil, err
		}
		cols[c] = v
	}
	return &colfile.Batch{Schema: s.schema, Cols: cols, Sel: out}, nil
}

func (s *Scan) fullSchemaMatches(other colfile.Schema) bool {
	if s.colIdxs == nil {
		return s.schema.Equal(other)
	}
	for i, idx := range s.colIdxs {
		if idx >= len(other) || other[idx] != s.schema[i] {
			return false
		}
	}
	return true
}

// BatchSource exposes a pre-materialized batch as an operator (exchange input
// or VALUES clause).
type BatchSource struct {
	batch *colfile.Batch
	done  bool
}

// NewBatchSource wraps a batch.
func NewBatchSource(b *colfile.Batch) *BatchSource { return &BatchSource{batch: b} }

// Schema implements Operator.
func (s *BatchSource) Schema() colfile.Schema { return s.batch.Schema }

// Next implements Operator.
func (s *BatchSource) Next() (*colfile.Batch, error) {
	if s.done || s.batch.NumRows() == 0 {
		return nil, nil
	}
	s.done = true
	return s.batch, nil
}

// Filter passes through rows where the predicate evaluates to true
// (NULL is not true). The predicate is compiled into a kernel program on the
// first batch (or supplied pre-compiled via Prog by the planner) and rows are
// passed through as a selection vector over the input's physical columns —
// no copies. The emitted batch aliases the filter's internal selection
// buffer: it is valid until the next call to Next (the standard operator
// output contract, docs/VECTORIZATION.md).
type Filter struct {
	In   Operator
	Pred Expr
	Tel  *Telemetry
	// Prog optionally carries the planner's pre-compiled predicate; when nil
	// the filter compiles Pred itself on first use.
	Prog *Prog

	ctx      *EvalCtx
	compiled bool
	fallback bool
	selBuf   []int
	out      colfile.Batch
}

// Schema implements Operator.
func (f *Filter) Schema() colfile.Schema { return f.In.Schema() }

// Next implements Operator.
//
//polaris:kernel pv is position-aligned with the input batch, so its lanes are read at the physical positions Batch.Sel (or dense [0,n)) yields
func (f *Filter) Next() (*colfile.Batch, error) {
	for {
		b, err := f.In.Next()
		if err != nil || b == nil {
			return nil, err
		}
		if !f.compiled {
			f.compiled = true
			if f.Prog == nil {
				prog, err := Compile(f.Pred, f.In.Schema())
				if err != nil {
					// Exotic Expr the compiler does not know: keep the
					// scalar reference path (it reports the same type errors).
					f.fallback = true
				} else {
					f.Prog = prog
				}
			}
			if f.Prog != nil {
				f.ctx = f.Prog.NewCtx()
			}
		}
		if f.fallback {
			return f.nextScalar(b)
		}
		pv, err := f.Prog.Run(f.ctx, b)
		if err != nil {
			return nil, err
		}
		if pv.Type != colfile.Bool {
			return nil, fmt.Errorf("exec: predicate yields %s, not bool", pv.Type)
		}
		if f.Tel != nil {
			f.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		sel := f.selBuf[:0]
		if b.Sel == nil {
			n := b.PhysRows()
			for i := 0; i < n; i++ {
				if !pv.IsNull(i) && pv.Bools[i] {
					sel = append(sel, i)
				}
			}
		} else {
			for _, i := range b.Sel {
				if !pv.IsNull(i) && pv.Bools[i] {
					sel = append(sel, i)
				}
			}
		}
		f.selBuf = sel
		if len(sel) == 0 {
			continue
		}
		if len(sel) == b.NumRows() {
			return b, nil // every logical row passed; keep the input as-is
		}
		f.out = colfile.Batch{Schema: b.Schema, Cols: b.Cols, Sel: sel}
		return &f.out, nil
	}
}

// nextScalar is the pre-vectorization filter body, kept as the fallback for
// predicates the compiler cannot lower.
//
//polaris:kernel the batch is Materialized first, so logical row i is physical lane i
func (f *Filter) nextScalar(b *colfile.Batch) (*colfile.Batch, error) {
	for {
		b = b.Materialize() // the scalar reference is defined over dense batches
		pv, err := f.Pred.Eval(b)
		if err != nil {
			return nil, err
		}
		if pv.Type != colfile.Bool {
			return nil, fmt.Errorf("exec: predicate yields %s, not bool", pv.Type)
		}
		if f.Tel != nil {
			f.Tel.RowsProcessed.Add(int64(b.NumRows()))
		}
		keep := make([]bool, b.NumRows())
		kept := 0
		for i := range keep {
			if !pv.IsNull(i) && pv.Bools[i] {
				keep[i] = true
				kept++
			}
		}
		if kept > 0 {
			if kept == b.NumRows() {
				return b, nil
			}
			return b.Filter(keep), nil
		}
		b, err = f.In.Next()
		if err != nil || b == nil {
			return nil, err
		}
	}
}

// Project computes output expressions batch-at-a-time through compiled
// kernel programs (with the scalar reference as fallback for expressions the
// compiler cannot lower). Output batches are always dense: column references
// over dense input alias the input vector (as the scalar path did), computed
// columns are bulk-copied out of the per-operator scratch.
type Project struct {
	In    Operator
	Exprs []Expr
	Names []string
	Tel   *Telemetry
	// Progs optionally carries the planner's pre-compiled programs, parallel
	// to Exprs; when nil the operator compiles on first use.
	Progs []*Prog

	schema   colfile.Schema
	ctxs     []*EvalCtx
	compiled bool
	fallback bool
}

// Schema implements Operator.
func (p *Project) Schema() colfile.Schema {
	if p.schema == nil {
		in := p.In.Schema()
		p.schema = make(colfile.Schema, len(p.Exprs))
		for i, e := range p.Exprs {
			t, err := e.Type(in)
			if err != nil {
				t = colfile.Int64
			}
			name := ""
			if i < len(p.Names) {
				name = p.Names[i]
			}
			if name == "" {
				name = e.String()
			}
			p.schema[i] = colfile.Field{Name: name, Type: t}
		}
	}
	return p.schema
}

// Next implements Operator.
func (p *Project) Next() (*colfile.Batch, error) {
	b, err := p.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	if p.Tel != nil {
		p.Tel.RowsProcessed.Add(int64(b.NumRows()))
	}
	if !p.compiled {
		p.compiled = true
		if p.Progs == nil {
			progs := make([]*Prog, len(p.Exprs))
			for i, e := range p.Exprs {
				prog, err := Compile(e, p.In.Schema())
				if err != nil {
					p.fallback = true
					break
				}
				progs[i] = prog
			}
			if !p.fallback {
				p.Progs = progs
			}
		}
		if p.Progs != nil {
			p.ctxs = make([]*EvalCtx, len(p.Progs))
			for i, prog := range p.Progs {
				p.ctxs[i] = prog.NewCtx()
			}
		}
	}
	out := &colfile.Batch{Schema: p.Schema(), Cols: make([]*colfile.Vec, len(p.Exprs))}
	if p.fallback {
		b = b.Materialize() // the scalar reference is defined over dense batches
		for i, e := range p.Exprs {
			v, err := e.Eval(b)
			if err != nil {
				return nil, err
			}
			out.Cols[i] = v
		}
		return out, nil
	}
	for i, prog := range p.Progs {
		v, err := prog.Run(p.ctxs[i], b)
		if err != nil {
			return nil, err
		}
		switch {
		case b.Sel != nil:
			out.Cols[i] = v.Take(b.Sel) // gather selected lanes densely
		default:
			if col, ok := prog.ColRef(); ok {
				out.Cols[i] = b.Cols[col] // alias, as the scalar ColRef did
				continue
			}
			// copy out of reusable scratch (broadcast constants may be
			// longer than the batch, hence the explicit bound)
			out.Cols[i] = v.Slice(0, b.PhysRows())
		}
	}
	return out, nil
}

// Limit stops after N rows (with optional offset).
type Limit struct {
	In     Operator
	N      int64
	Offset int64

	skipped, emitted int64
}

// Schema implements Operator.
func (l *Limit) Schema() colfile.Schema { return l.In.Schema() }

// Next implements Operator.
func (l *Limit) Next() (*colfile.Batch, error) {
	for {
		if l.emitted >= l.N {
			return nil, nil
		}
		b, err := l.In.Next()
		if err != nil || b == nil {
			return nil, err
		}
		b = b.Materialize() // sliceBatch addresses physical positions
		n := int64(b.NumRows())
		if l.skipped < l.Offset {
			toSkip := l.Offset - l.skipped
			if n <= toSkip {
				l.skipped += n
				continue
			}
			b = sliceBatch(b, int(toSkip), int(n))
			l.skipped = l.Offset
			n = int64(b.NumRows())
		}
		if l.emitted+n > l.N {
			b = sliceBatch(b, 0, int(l.N-l.emitted))
		}
		l.emitted += int64(b.NumRows())
		return b, nil
	}
}

func sliceBatch(b *colfile.Batch, lo, hi int) *colfile.Batch {
	out := &colfile.Batch{Schema: b.Schema, Cols: make([]*colfile.Vec, len(b.Cols))}
	for i, v := range b.Cols {
		out.Cols[i] = v.Slice(lo, hi)
	}
	return out
}

// UnionAll concatenates child streams (the exchange/gather operator: BE task
// outputs are unioned at the FE or at repartition boundaries).
type UnionAll struct {
	Ins []Operator
	idx int
}

// Schema implements Operator.
func (u *UnionAll) Schema() colfile.Schema {
	if len(u.Ins) == 0 {
		return nil
	}
	return u.Ins[0].Schema()
}

// Next implements Operator.
func (u *UnionAll) Next() (*colfile.Batch, error) {
	for u.idx < len(u.Ins) {
		b, err := u.Ins[u.idx].Next()
		if err != nil {
			return nil, err
		}
		if b != nil {
			return b, nil
		}
		u.idx++
	}
	return nil, nil
}

// Collect drains an operator into a single batch.
func Collect(op Operator) (*colfile.Batch, error) {
	return CollectCtx(context.Background(), op)
}

// CollectCtx drains an operator into a single batch, checking ctx between
// batches: when a sibling unit of a ForEachIndexed pool fails (or the caller
// cancels), the drain stops at the next batch boundary instead of paying the
// remaining scan/probe/spill cost of a doomed plan fragment.
func CollectCtx(ctx context.Context, op Operator) (*colfile.Batch, error) {
	out := colfile.NewBatch(op.Schema())
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		if out.Schema == nil {
			out = colfile.NewBatch(b.Schema)
		}
		out.AppendBatch(b)
	}
}

// Sort, SortRuns, TopN and MergeRuns — the ORDER BY operator family — live
// in sort.go.
