package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"polaris/internal/colfile"
)

// renderBatch stringifies a batch for byte-identical comparisons.
func renderBatch(t *testing.T, b *colfile.Batch) string {
	t.Helper()
	out := fmt.Sprintf("%v\n", b.Schema)
	for i := 0; i < b.NumRows(); i++ {
		out += fmt.Sprintf("%v\n", b.Row(i))
	}
	return out
}

func groupedFiles(t *testing.T, nFiles, rowsPerFile, rowsPerGroup int) []ScanFile {
	t.Helper()
	schema := colfile.Schema{
		{Name: "id", Type: colfile.Int64},
		{Name: "grp", Type: colfile.Int64},
		{Name: "val", Type: colfile.Int64},
		{Name: "price", Type: colfile.Float64},
	}
	var files []ScanFile
	row := 0
	for f := 0; f < nFiles; f++ {
		w := colfile.NewWriter(schema)
		for lo := 0; lo < rowsPerFile; lo += rowsPerGroup {
			b := colfile.NewBatch(schema)
			for i := lo; i < lo+rowsPerGroup && i < rowsPerFile; i++ {
				if err := b.AppendRow(int64(row), int64(row%7), int64(row%100), float64(row%13)*0.5); err != nil {
					t.Fatal(err)
				}
				row++
			}
			if err := w.WriteBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, ScanFile{Data: data})
	}
	return files
}

func TestSplitMorselsCoversAllRowsInOrder(t *testing.T) {
	files := groupedFiles(t, 3, 100, 10)
	for _, want := range []int{1, 4, 8, 100} {
		morsels, err := SplitMorsels(files, want)
		if err != nil {
			t.Fatal(err)
		}
		if want > 3 && len(morsels) <= 3 {
			t.Fatalf("want=%d produced only %d morsels; files not split by row group", want, len(morsels))
		}
		// Concatenating morsel scans in order must reproduce the serial scan
		// exactly: same rows, same order.
		var ids []int64
		for _, m := range morsels {
			s, err := NewMorselScan(m, []string{"id"}, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Collect(s)
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, b.Cols[0].Ints...)
		}
		if len(ids) != 300 {
			t.Fatalf("want=%d: rows = %d", want, len(ids))
		}
		for i, id := range ids {
			if id != int64(i) {
				t.Fatalf("want=%d: row %d has id %d; morsel order broken", want, i, id)
			}
		}
	}
}

func TestRunMorselsProjectionIdenticalAcrossDOP(t *testing.T) {
	files := groupedFiles(t, 4, 200, 32)
	pred := Bin{Kind: OpLt, L: ColRef{Idx: 2}, R: Const{Val: int64(60)}}
	exprs := []Expr{
		ColRef{Idx: 0, Name: "id"},
		Bin{Kind: OpMul, L: ColRef{Idx: 2}, R: Const{Val: int64(3)}},
	}
	run := func(dop int) string {
		morsels, err := SplitMorsels(files, dop*4)
		if err != nil {
			t.Fatal(err)
		}
		batches, err := RunMorsels(morsels, dop, func(m Morsel) (Operator, error) {
			s, err := NewMorselScan(m, nil, nil, nil)
			if err != nil {
				return nil, err
			}
			return &Project{In: &Filter{In: s, Pred: pred}, Exprs: exprs, Names: []string{"id", "v3"}}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		proto := &Project{In: NewBatchSource(colfile.NewBatch(files[0].schema(t))), Exprs: exprs, Names: []string{"id", "v3"}}
		b, err := Collect(NewBatchList(proto.Schema(), batches))
		if err != nil {
			t.Fatal(err)
		}
		return renderBatch(t, b)
	}
	want := run(1)
	for _, dop := range []int{2, 4, 8} {
		if got := run(dop); got != want {
			t.Fatalf("dop=%d output differs from dop=1", dop)
		}
	}
}

// schema reads the file's schema (test helper on ScanFile).
func (f ScanFile) schema(t *testing.T) colfile.Schema {
	t.Helper()
	r, err := colfile.OpenReader(f.Data)
	if err != nil {
		t.Fatal(err)
	}
	return r.Schema()
}

func TestPartialMergeAggMatchesSerial(t *testing.T) {
	files := groupedFiles(t, 4, 250, 25)
	groupBy := []Expr{ColRef{Idx: 1, Name: "grp"}}
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggCount, Arg: ColRef{Idx: 2}, Name: "c"},
		{Kind: AggSum, Arg: ColRef{Idx: 2}, Name: "sv"},
		{Kind: AggSum, Arg: ColRef{Idx: 3}, Name: "sp"},
		{Kind: AggAvg, Arg: ColRef{Idx: 2}, Name: "av"},
		{Kind: AggMin, Arg: ColRef{Idx: 0}, Name: "mn"},
		{Kind: AggMax, Arg: ColRef{Idx: 0}, Name: "mx"},
	}

	serialScan, err := NewScan(files, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Collect(&HashAgg{In: serialScan, GroupBy: groupBy, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	// Order-normalize the serial result (first-seen order) by sorting on the
	// single int group key, matching MergeAgg's key-ordered output.
	serialSorted, err := Collect(&Sort{In: NewBatchSource(serial), Keys: []SortKey{{Col: 0}}})
	if err != nil {
		t.Fatal(err)
	}

	for _, dop := range []int{1, 3, 8} {
		morsels, err := SplitMorsels(files, dop*4)
		if err != nil {
			t.Fatal(err)
		}
		batches, err := RunMorsels(morsels, dop, func(m Morsel) (Operator, error) {
			s, err := NewMorselScan(m, nil, nil, nil)
			if err != nil {
				return nil, err
			}
			return &HashAgg{In: s, GroupBy: groupBy, Aggs: aggs, Partial: true}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		proto := &HashAgg{In: NewBatchSource(colfile.NewBatch(files[0].schema(t))), GroupBy: groupBy, Aggs: aggs, Partial: true}
		merged, err := Collect(&MergeAgg{In: NewBatchList(proto.Schema(), batches), Groups: 1, Aggs: aggs})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderBatch(t, merged), renderBatch(t, serialSorted); got != want {
			t.Fatalf("dop=%d merged aggregate differs from serial:\ngot:\n%s\nwant:\n%s", dop, got, want)
		}
	}
}

func TestMergeAggGlobalEmptyInputYieldsOneRow(t *testing.T) {
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggSum, Arg: ColRef{Idx: 0}, Name: "s"},
		{Kind: AggMin, Arg: ColRef{Idx: 0}, Name: "mn"},
	}
	schema := colfile.Schema{{Name: "v", Type: colfile.Int64}}
	proto := &HashAgg{In: NewBatchSource(colfile.NewBatch(schema)), Aggs: aggs, Partial: true}
	merged, err := Collect(&MergeAgg{In: NewBatchList(proto.Schema(), nil), Groups: 0, Aggs: aggs})
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumRows() != 1 {
		t.Fatalf("rows = %d, want 1", merged.NumRows())
	}
	if merged.Cols[0].Ints[0] != 0 {
		t.Fatalf("count = %d", merged.Cols[0].Ints[0])
	}
	if !merged.Cols[1].IsNull(0) || !merged.Cols[2].IsNull(0) {
		t.Fatal("SUM/MIN of empty set must be NULL")
	}
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	// Build side above buildParallelMinRows so the partitioned path engages.
	build := colfile.NewBatch(intSchema("k", "v"))
	for i := 0; i < buildParallelMinRows+500; i++ {
		_ = build.AppendRow(int64(i%512), int64(i))
	}
	probe := colfile.NewBatch(intSchema("k"))
	for i := 0; i < 300; i++ {
		_ = probe.AppendRow(int64(i))
	}
	run := func(par int) string {
		j := &HashJoin{
			Left: NewBatchSource(probe), Right: NewBatchSource(build),
			LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin, Parallelism: par,
		}
		out, err := Collect(j)
		if err != nil {
			t.Fatal(err)
		}
		return renderBatch(t, out)
	}
	want := run(1)
	for _, par := range []int{2, 4, 8} {
		if got := run(par); got != want {
			t.Fatalf("parallelism=%d join output differs from serial", par)
		}
	}
}

func TestRunMorselsPropagatesErrors(t *testing.T) {
	files := groupedFiles(t, 2, 50, 10)
	morsels, err := SplitMorsels(files, 8)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, err = RunMorsels(morsels, 4, func(m Morsel) (Operator, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// slowInfiniteOp emits tiny batches forever (up to a regression cap): without
// cooperative cancellation, draining it never finishes. nextCalls counts Next
// invocations so tests can prove the drain stopped early.
type slowInfiniteOp struct {
	schema colfile.Schema
	calls  int
}

func (s *slowInfiniteOp) Schema() colfile.Schema { return s.schema }

func (s *slowInfiniteOp) Next() (*colfile.Batch, error) {
	s.calls++
	if s.calls > 1_000_000 {
		return nil, errors.New("slowInfiniteOp drained to the cap: cancellation did not propagate")
	}
	b := colfile.NewBatch(s.schema)
	if err := b.AppendRow(int64(s.calls)); err != nil {
		return nil, err
	}
	return b, nil
}

// TestRunIndexedCancelsInflightUnits pins the cancellation bugfix: when one
// unit fails, a sibling already draining its operator must stop at the next
// batch boundary (CollectCtx observes the pool's cancelled context) instead
// of draining to completion — previously only un-started units were skipped,
// so an in-flight worker paid its full scan/probe/spill cost after the query
// was already doomed.
func TestRunIndexedCancelsInflightUnits(t *testing.T) {
	schema := colfile.Schema{{Name: "x", Type: colfile.Int64}}
	boom := errors.New("boom")
	started := make(chan struct{})
	_, err := RunIndexed(context.Background(), 2, 2, func(i int) (Operator, error) {
		if i == 0 {
			// Fail only once the sibling is provably mid-drain.
			<-started
			return nil, boom
		}
		op := &slowInfiniteOp{schema: schema}
		close(started)
		return op, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom (infinite sibling must be cancelled, not drained)", err)
	}
}

// TestForEachIndexedHonorsCallerContext pins that a cancelled caller context
// stops the pool before (or mid-way through) the work and surfaces the
// cancellation error.
func TestForEachIndexedHonorsCallerContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEachIndexed(ctx, 8, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d units ran under a pre-cancelled context", n)
	}
}

// TestRunBatchesSkipsNilEntries pins the wrapper contract RunIndexed inherits
// from the old RunBatches: nil and empty input batches yield nil outputs at
// the same index without invoking the builder.
func TestRunBatchesSkipsNilEntries(t *testing.T) {
	schema := colfile.Schema{{Name: "x", Type: colfile.Int64}}
	full := colfile.NewBatch(schema)
	if err := full.AppendRow(int64(7)); err != nil {
		t.Fatal(err)
	}
	in := []*colfile.Batch{nil, colfile.NewBatch(schema), full}
	outs, err := RunBatches(in, 4, func(i int, b *colfile.Batch) (Operator, error) {
		if i != 2 {
			return nil, fmt.Errorf("builder invoked for skippable index %d", i)
		}
		return NewBatchSource(b), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if outs[0] != nil || outs[1] != nil {
		t.Fatalf("nil/empty inputs produced non-nil outputs: %v", outs[:2])
	}
	if outs[2] == nil || outs[2].NumRows() != 1 {
		t.Fatalf("live input lost: %v", outs[2])
	}
}
