package exec

import "sync/atomic"

// Bloom is a join runtime filter: a bloom filter over the encoded build-side
// join keys, consulted on the probe side before the hash-table walk (and, on
// the spilled path, before probe rows are even partitioned to the object
// store). A Bloom has no false negatives, so dropping rows it rejects cannot
// change join results — the cross-DOP byte-identity contract
// (docs/ARCHITECTURE.md) is preserved by construction. Its contents are a
// pure set-OR of per-key bit patterns, independent of insertion order, so
// parallel and serial builds produce the same filter.
//
// Add is NOT safe for concurrent use; MayContain on a sealed filter is.
type Bloom struct {
	bits []uint64
	mask uint64 // bit-count - 1; bit count is a power of two
	k    int    // probes per key
}

// bloomProbes is the number of bits set/tested per key. With ~10 bits per
// key, k=4 gives a false-positive rate around 1-2% — runtime filters only
// need to be roughly right, misses cost one hash-map lookup.
const bloomProbes = 4

// bloomMinBits and bloomMaxBits bound filter size: 1 KiB floor so tiny
// builds still filter well, 128 KiB ceiling so a huge build-side key set
// degrades to a denser (less selective) filter instead of unbounded memory.
const (
	bloomMinBits = 8 << 10
	bloomMaxBits = 1 << 20
)

// spillBloomKeyHint sizes the runtime filter a grace join accumulates while
// spilling its build side, where the true key count is unknown until the
// stream is drained. A fixed hint (128 Ki bits after the ×10 sizing rule,
// 16 KiB) keeps the filter deterministic for a fixed build regardless of how
// the drain was batched.
const spillBloomKeyHint = 1 << 13

// NewBloom sizes a filter for approximately n keys (~10 bits per key,
// rounded up to a power of two within [bloomMinBits, bloomMaxBits]). The
// size is a pure function of n, which keeps filters deterministic for a
// fixed build side.
func NewBloom(n int) *Bloom {
	bits := uint64(bloomMinBits)
	for bits < uint64(n)*10 && bits < bloomMaxBits {
		bits <<= 1
	}
	return &Bloom{bits: make([]uint64, bits/64), mask: bits - 1, k: bloomProbes}
}

// bloomHash64 is FNV-1a 64 over the encoded key; split into two halves it
// seeds the double-hashing probe sequence.
func bloomHash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// Add inserts an encoded key.
func (f *Bloom) Add(key []byte) {
	h := bloomHash64(key)
	h1, h2 := h, (h>>33)|1 // h2 odd => full-period probe sequence
	for i := 0; i < f.k; i++ {
		bit := h1 & f.mask
		f.bits[bit/64] |= 1 << (bit % 64)
		h1 += h2
	}
}

// MayContain reports whether key may have been added. False means
// definitely absent.
func (f *Bloom) MayContain(key []byte) bool {
	h := bloomHash64(key)
	h1, h2 := h, (h>>33)|1
	for i := 0; i < f.k; i++ {
		bit := h1 & f.mask
		if f.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
		h1 += h2
	}
	return true
}

// BloomFilter derives the runtime filter from a completed build: one Add per
// distinct build key. Partition map iteration order does not matter — the
// filter is an order-independent OR of bit patterns.
func (jt *JoinTable) BloomFilter() *Bloom {
	n := 0
	for _, part := range jt.parts {
		n += len(part)
	}
	f := NewBloom(n)
	for _, part := range jt.parts {
		//polaris:nondet Bloom.Add ORs bits into the filter; OR is commutative so key order cannot change the result
		for k := range part {
			f.Add([]byte(k))
		}
	}
	return f
}

// countPruned adds n to a shared pruned-row counter if one is attached.
func countPruned(ctr *atomic.Int64, n int64) {
	if ctr != nil && n > 0 {
		ctr.Add(n)
	}
}
