package exec

import (
	"fmt"
	"strings"
	"testing"

	"polaris/internal/colfile"
)

// legacyFmtKey replicates the pre-typed-key encoding ("%v\x00" separators)
// so regression tests can demonstrate the collision it allowed.
func legacyFmtKey(b *colfile.Batch, keys []int, i int) (string, bool) {
	var sb strings.Builder
	for _, c := range keys {
		v := b.Cols[c]
		if v.IsNull(i) {
			return "", false
		}
		fmt.Fprintf(&sb, "%v\x00", v.Value(i))
	}
	return sb.String(), true
}

// TestTypedKeysFixSeparatorCollision is the regression test for the latent
// key-collision bug: with "%v\x00" separators the composite keys of
// ("a\x00", "b") and ("a", "\x00b") render to identical bytes, silently
// merging distinct groups and join keys. The length-prefixed typed encoding
// keeps them distinct. The legacy assertion documents that this test fails
// against the old encoding.
func TestTypedKeysFixSeparatorCollision(t *testing.T) {
	schema := colfile.Schema{
		{Name: "c1", Type: colfile.String},
		{Name: "c2", Type: colfile.String},
	}
	b := colfile.NewBatch(schema)
	if err := b.AppendRow("a\x00", "b"); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendRow("a", "\x00b"); err != nil {
		t.Fatal(err)
	}

	// The old encoding collides — this is the bug.
	k0, _ := legacyFmtKey(b, []int{0, 1}, 0)
	k1, _ := legacyFmtKey(b, []int{0, 1}, 1)
	if k0 != k1 {
		t.Fatal("legacy fmt keys unexpectedly distinct; collision repro is broken")
	}

	// The typed encoding keeps the rows distinct.
	n0, ok0 := appendRowKey(nil, b, []int{0, 1}, 0)
	n1, ok1 := appendRowKey(nil, b, []int{0, 1}, 1)
	if !ok0 || !ok1 {
		t.Fatal("non-NULL keys reported as NULL")
	}
	if string(n0) == string(n1) {
		t.Fatalf("typed keys collide: %q", n0)
	}

	// End to end: GROUP BY (c1, c2) must produce two groups, not one.
	agg := &HashAgg{
		In:      NewBatchSource(b),
		GroupBy: []Expr{ColRef{Idx: 0, Name: "c1"}, ColRef{Idx: 1, Name: "c2"}},
		Aggs:    []AggSpec{{Kind: AggCountStar, Name: "n"}},
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("GROUP BY merged colliding keys: %d groups, want 2", out.NumRows())
	}

	// And a join on both columns must not cross-match the two rows.
	j := &HashJoin{
		Left: NewBatchSource(b), Right: NewBatchSource(b),
		LeftKeys: []int{0, 1}, RightKeys: []int{0, 1}, Type: InnerJoin,
	}
	jout, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if jout.NumRows() != 2 {
		t.Fatalf("join cross-matched colliding keys: %d rows, want 2 (self-matches only)", jout.NumRows())
	}
}

// nullableBatch builds a (k INT, v INT) batch; a nil key means NULL.
func nullableBatch(t *testing.T, rows ...[2]any) *colfile.Batch {
	t.Helper()
	b := colfile.NewBatch(intSchema("k", "v"))
	for _, r := range rows {
		if err := b.AppendRow(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// TestJoinNullKeySemantics locks in "NULL never matches" across the join-type
// × NULL-placement matrix before (and after) the probe is parallelized:
// a NULL join key on either side matches nothing, two NULLs do not match
// each other, and LEFT OUTER still emits the unmatched probe row NULL-padded.
func TestJoinNullKeySemantics(t *testing.T) {
	probeRows := func(withNull bool) *colfile.Batch {
		if withNull {
			return nullableBatch(t, [2]any{int64(1), int64(10)}, [2]any{nil, int64(11)})
		}
		return nullableBatch(t, [2]any{int64(1), int64(10)}, [2]any{int64(2), int64(11)})
	}
	buildRows := func(withNull bool) *colfile.Batch {
		if withNull {
			return nullableBatch(t, [2]any{int64(1), int64(100)}, [2]any{nil, int64(101)})
		}
		return nullableBatch(t, [2]any{int64(1), int64(100)}, [2]any{int64(3), int64(101)})
	}

	cases := []struct {
		name                 string
		typ                  JoinType
		probeNull, buildNull bool
		wantRows             int
		wantNullPad          int // LEFT OUTER rows with NULL right side
	}{
		{"inner/null-probe", InnerJoin, true, false, 1, 0},
		{"inner/null-build", InnerJoin, false, true, 1, 0},
		{"inner/null-both", InnerJoin, true, true, 1, 0},
		{"left/null-probe", LeftOuterJoin, true, false, 2, 1},
		{"left/null-build", LeftOuterJoin, false, true, 2, 1},
		{"left/null-both", LeftOuterJoin, true, true, 2, 1},
		{"semi/null-probe", SemiJoin, true, false, 1, 0},
		{"semi/null-build", SemiJoin, false, true, 1, 0},
		{"semi/null-both", SemiJoin, true, true, 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			j := &HashJoin{
				Left:     NewBatchSource(probeRows(tc.probeNull)),
				Right:    NewBatchSource(buildRows(tc.buildNull)),
				LeftKeys: []int{0}, RightKeys: []int{0}, Type: tc.typ,
			}
			out, err := Collect(j)
			if err != nil {
				t.Fatal(err)
			}
			if out.NumRows() != tc.wantRows {
				t.Fatalf("rows = %d, want %d:\n%s", out.NumRows(), tc.wantRows, renderBatch(t, out))
			}
			// Key 1 always matches: first output row is (1, 10, 1, 100)-ish.
			if out.Cols[0].IsNull(0) || out.Cols[0].Ints[0] != 1 {
				t.Fatalf("first row key = %v, want 1", out.Cols[0].Value(0))
			}
			if tc.typ != SemiJoin && len(out.Cols) != 4 {
				t.Fatalf("output cols = %d, want 4", len(out.Cols))
			}
			if tc.typ == SemiJoin && len(out.Cols) != 2 {
				t.Fatalf("semi output cols = %d, want 2 (left schema only)", len(out.Cols))
			}
			nullPad := 0
			for i := 0; i < out.NumRows(); i++ {
				if tc.typ == LeftOuterJoin && out.Cols[2].IsNull(i) && out.Cols[3].IsNull(i) {
					nullPad++
				}
			}
			if nullPad != tc.wantNullPad {
				t.Fatalf("NULL-padded rows = %d, want %d:\n%s", nullPad, tc.wantNullPad, renderBatch(t, out))
			}
		})
	}
}

// TestParallelProbeIdenticalAcrossDOP fans the probe side of a join out over
// RunMorsels at several degrees of parallelism; a shared JoinTable plus
// morsel-ordered BatchList merge must yield byte-identical results at every
// DOP, including outer-join NULL padding and duplicate build matches.
func TestParallelProbeIdenticalAcrossDOP(t *testing.T) {
	probeFiles := groupedFiles(t, 4, 200, 32) // id, grp, val, price

	// Build side: two matches for half the grp values, none for grp >= 4.
	build := colfile.NewBatch(intSchema("g", "tag"))
	for g := 0; g < 4; g++ {
		_ = build.AppendRow(int64(g), int64(g*100))
		_ = build.AppendRow(int64(g), int64(g*100+1))
	}

	for _, typ := range []JoinType{InnerJoin, LeftOuterJoin, SemiJoin} {
		run := func(dop int) string {
			table, err := BuildHashJoin(NewBatchSource(build), []int{0}, typ, dop, nil)
			if err != nil {
				t.Fatal(err)
			}
			morsels, err := SplitMorsels(probeFiles, dop*4)
			if err != nil {
				t.Fatal(err)
			}
			batches, err := RunMorsels(morsels, dop, func(m Morsel) (Operator, error) {
				s, err := NewMorselScan(m, nil, nil, nil)
				if err != nil {
					return nil, err
				}
				return &Probe{In: s, Table: table, LeftKeys: []int{1}}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			proto := &Probe{In: NewBatchSource(colfile.NewBatch(probeFiles[0].schema(t))), Table: table, LeftKeys: []int{1}}
			out, err := Collect(NewBatchList(proto.Schema(), batches))
			if err != nil {
				t.Fatal(err)
			}
			return renderBatch(t, out)
		}
		want := run(1)
		if want == "" || len(strings.Split(want, "\n")) < 10 {
			t.Fatalf("type %v: probe produced almost nothing; dataset broken", typ)
		}
		for _, dop := range []int{2, 4, 8} {
			if got := run(dop); got != want {
				t.Fatalf("type %v dop=%d probe output differs from dop=1", typ, dop)
			}
		}
	}
}

// TestMergeFreeConcatMatchesMergingPath runs the same partial batches through
// MergeAgg with and without MergeFree. When each group appears in exactly one
// partial input (the distribution-aware case), both paths must agree bytewise.
func TestMergeFreeConcatMatchesMergingPath(t *testing.T) {
	schema := intSchema("g", "v")
	// Two "cells": disjoint group keys, as d(r)-aligned morsels guarantee.
	cellA := colfile.NewBatch(schema)
	cellB := colfile.NewBatch(schema)
	for i := 0; i < 100; i++ {
		_ = cellA.AppendRow(int64(i%3), int64(i))       // groups 0..2
		_ = cellB.AppendRow(int64(3+(i%4)), int64(i*2)) // groups 3..6
	}
	groupBy := []Expr{ColRef{Idx: 0, Name: "g"}}
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggSum, Arg: ColRef{Idx: 1}, Name: "s"},
		{Kind: AggAvg, Arg: ColRef{Idx: 1}, Name: "a"},
		{Kind: AggMin, Arg: ColRef{Idx: 1}, Name: "mn"},
		{Kind: AggMax, Arg: ColRef{Idx: 1}, Name: "mx"},
	}
	partials := func() []*colfile.Batch {
		var out []*colfile.Batch
		for _, cell := range []*colfile.Batch{cellA, cellB} {
			p, err := Collect(&HashAgg{In: NewBatchSource(cell), GroupBy: groupBy, Aggs: aggs, Partial: true})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p)
		}
		return out
	}
	run := func(mergeFree bool) string {
		proto := &HashAgg{In: NewBatchSource(colfile.NewBatch(schema)), GroupBy: groupBy, Aggs: aggs, Partial: true}
		m := &MergeAgg{In: NewBatchList(proto.Schema(), partials()), Groups: 1, Aggs: aggs, MergeFree: mergeFree}
		out, err := Collect(m)
		if err != nil {
			t.Fatal(err)
		}
		return renderBatch(t, out)
	}
	want := run(false)
	if got := run(true); got != want {
		t.Fatalf("merge-free output differs from merging path:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
