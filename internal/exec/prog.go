// Expression compilation: an Expr tree is compiled once per plan into a Prog,
// a flat sequence of typed kernel instructions over value slots, and executed
// batch-at-a-time with per-worker scratch (EvalCtx). The scalar Expr.Eval
// methods remain the normative row-at-a-time reference; Prog.Run must be
// observationally identical to them (same values, same NULLs, same error
// strings) — pinned by the golden equivalence suite and FuzzKernelEquivalence.
// The contract is documented in docs/VECTORIZATION.md.
package exec

//polaris:kernelfile compiled kernel programs copy lanes position-aligned under the kernel contract; sel translation happens at program boundaries

import (
	"errors"
	"fmt"
	"sort"

	"polaris/internal/colfile"
)

// Error sentinels shared by the faulting kernels; the strings match the
// scalar reference's fmt.Errorf messages exactly.
var (
	errDivZero      = errors.New("exec: integer division by zero")
	errModZero      = errors.New("exec: modulo by zero")
	errFloatDivZero = errors.New("exec: division by zero")
)

type slotKind uint8

const (
	slotCol     slotKind = iota // aliases an input column of the batch
	slotConst                   // broadcast literal, lazily filled per ctx
	slotScratch                 // kernel output, ctx-owned and reused
)

// progSlot describes one value slot of a compiled program.
type progSlot struct {
	kind slotKind
	col  int              // slotCol: input column index
	cval any              // slotConst: normalized literal (nil = typed NULL)
	typ  colfile.DataType // static type of the slot
}

// progInstr is one kernel invocation: out[dst] = fn(slot[l], slot[r]).
// r is -1 for unary kernels.
type progInstr struct {
	fn   kernelFn
	l, r int
	dst  int
}

// Prog is a compiled expression: immutable after Compile and safe to share
// across goroutines — all mutable state lives in the per-worker EvalCtx.
type Prog struct {
	slots  []progSlot
	instrs []progInstr
	out    int
}

// OutType reports the static result type of the program.
func (p *Prog) OutType() colfile.DataType { return p.slots[p.out].typ }

// Cols returns the distinct input column indexes the program reads, in
// ascending order. The scan uses it to decode only the predicate's columns
// before deciding whether a row group has any qualifying rows at all.
func (p *Prog) Cols() []int {
	var out []int
	for _, s := range p.slots {
		if s.kind == slotCol {
			out = append(out, s.col)
		}
	}
	sort.Ints(out)
	n := 0
	for i, c := range out {
		if i == 0 || c != out[n-1] {
			out[n] = c
			n++
		}
	}
	return out[:n]
}

// ColRef reports whether the program is a bare column reference, and which
// input column it reads. Callers use it to alias the input vector directly
// instead of copying (exactly what the scalar ColRef.Eval did).
func (p *Prog) ColRef() (int, bool) {
	s := p.slots[p.out]
	if s.kind == slotCol {
		return s.col, true
	}
	return -1, false
}

// EvalCtx holds one worker's mutable evaluation state: resolved slot
// pointers, owned scratch vectors for kernel outputs, and lazily filled
// broadcast constants. An EvalCtx must not be shared across goroutines; the
// vector returned by Run is valid until the next Run on the same ctx.
type EvalCtx struct {
	ptrs     []*colfile.Vec
	own      []colfile.Vec
	constLen []int
}

// NewCtx returns a fresh evaluation context for the program.
func (p *Prog) NewCtx() *EvalCtx { return &EvalCtx{} }

// Run evaluates the program over the batch's physical lanes at the selected
// positions (b.Sel, or all lanes when dense). The result vector is
// position-aligned with the batch's columns (length PhysRows); lanes outside
// the selection are unspecified. The result aliases either an input column or
// ctx-owned scratch — read it before the next Run on the same ctx and never
// mutate it.
func (p *Prog) Run(ctx *EvalCtx, b *colfile.Batch) (*colfile.Vec, error) {
	if ctx.ptrs == nil {
		ctx.ptrs = make([]*colfile.Vec, len(p.slots))
		ctx.own = make([]colfile.Vec, len(p.slots))
		ctx.constLen = make([]int, len(p.slots))
	}
	n := b.PhysRows()
	sel := b.Sel
	for si := range p.slots {
		s := &p.slots[si]
		switch s.kind {
		case slotCol:
			if s.col >= len(b.Cols) {
				return nil, fmt.Errorf("exec: column %d out of range", s.col)
			}
			ctx.ptrs[si] = b.Cols[s.col]
		case slotConst:
			v := &ctx.own[si]
			if ctx.constLen[si] < n {
				fillConst(v, s.typ, s.cval, n)
				ctx.constLen[si] = n
			}
			ctx.ptrs[si] = v
		case slotScratch:
			ctx.ptrs[si] = &ctx.own[si]
		}
	}
	for _, in := range p.instrs {
		dst := ctx.ptrs[in.dst]
		dst.ResetLen(p.slots[in.dst].typ, n)
		var r *colfile.Vec
		if in.r >= 0 {
			r = ctx.ptrs[in.r]
		}
		if err := in.fn(ctx.ptrs[in.l], r, dst, sel); err != nil {
			return nil, err
		}
	}
	return ctx.ptrs[p.out], nil
}

// fillConst (re)fills a broadcast constant vector to n lanes. Growth is rare
// (at most a handful of times per ctx as batch sizes vary), so it refills the
// whole range rather than tracking a prefix.
func fillConst(v *colfile.Vec, t colfile.DataType, val any, n int) {
	v.ResetLen(t, n)
	if val == nil {
		mask := v.NullScratch(n)
		for i := range mask {
			mask[i] = true
		}
		return
	}
	switch t {
	case colfile.Int64:
		x := val.(int64)
		for i := range v.Ints {
			v.Ints[i] = x
		}
	case colfile.Float64:
		x := val.(float64)
		for i := range v.Floats {
			v.Floats[i] = x
		}
	case colfile.String:
		x := val.(string)
		for i := range v.Strs {
			v.Strs[i] = x
		}
	case colfile.Bool:
		x := val.(bool)
		for i := range v.Bools {
			v.Bools[i] = x
		}
	}
}

// Compile lowers an Expr tree into a kernel program over the input schema.
// Compilation fails for type errors the scalar reference also reports (same
// messages) and for Expr implementations outside this package — operators
// fall back to the scalar path in that case.
func Compile(e Expr, schema colfile.Schema) (*Prog, error) {
	p := &Prog{}
	out, err := p.compileNode(e, schema)
	if err != nil {
		return nil, err
	}
	p.out = out
	return p, nil
}

func (p *Prog) addSlot(s progSlot) int {
	p.slots = append(p.slots, s)
	return len(p.slots) - 1
}

func (p *Prog) scratch(t colfile.DataType) int {
	return p.addSlot(progSlot{kind: slotScratch, typ: t})
}

func (p *Prog) emit(fn kernelFn, l, r, dst int) {
	p.instrs = append(p.instrs, progInstr{fn: fn, l: l, r: r, dst: dst})
}

func (p *Prog) compileNode(e Expr, schema colfile.Schema) (int, error) {
	switch t := e.(type) {
	case ColRef:
		if t.Idx < 0 || t.Idx >= len(schema) {
			return 0, fmt.Errorf("exec: column %d out of range", t.Idx)
		}
		return p.addSlot(progSlot{kind: slotCol, col: t.Idx, typ: schema[t.Idx].Type}), nil
	case Const:
		dt, err := t.Type(nil)
		if err != nil {
			return 0, err
		}
		return p.addSlot(progSlot{kind: slotConst, cval: normalize(t.Val), typ: dt}), nil
	case Bin:
		return p.compileBin(t, schema)
	case Not:
		in, err := p.compileNode(t.E, schema)
		if err != nil {
			return 0, err
		}
		if p.slots[in].typ != colfile.Bool {
			return 0, fmt.Errorf("exec: NOT of %s", p.slots[in].typ)
		}
		dst := p.scratch(colfile.Bool)
		p.emit(notKernel, in, -1, dst)
		return dst, nil
	case IsNull:
		in, err := p.compileNode(t.E, schema)
		if err != nil {
			return 0, err
		}
		dst := p.scratch(colfile.Bool)
		p.emit(isNullKernel(t.Negate), in, -1, dst)
		return dst, nil
	case Like:
		in, err := p.compileNode(t.E, schema)
		if err != nil {
			return 0, err
		}
		if p.slots[in].typ != colfile.String {
			return 0, fmt.Errorf("exec: LIKE over %s", p.slots[in].typ)
		}
		dst := p.scratch(colfile.Bool)
		p.emit(likeKernel(t.Pattern), in, -1, dst)
		return dst, nil
	case InList:
		in, err := p.compileNode(t.E, schema)
		if err != nil {
			return 0, err
		}
		dst := p.scratch(colfile.Bool)
		p.emit(inListKernelFor(p.slots[in].typ, t), in, -1, dst)
		return dst, nil
	default:
		return 0, fmt.Errorf("exec: cannot compile %T", e)
	}
}

func (p *Prog) compileBin(e Bin, schema colfile.Schema) (int, error) {
	ls, err := p.compileNode(e.L, schema)
	if err != nil {
		return 0, err
	}
	rs, err := p.compileNode(e.R, schema)
	if err != nil {
		return 0, err
	}
	lt, rt := p.slots[ls].typ, p.slots[rs].typ
	switch {
	case e.Kind.IsLogical():
		if lt != colfile.Bool || rt != colfile.Bool {
			return 0, fmt.Errorf("exec: cannot compile %s over %s and %s", binNames[e.Kind], lt, rt)
		}
		dst := p.scratch(colfile.Bool)
		p.emit(logicalKernel(e.Kind), ls, rs, dst)
		return dst, nil
	case e.Kind.IsComparison():
		dst := p.scratch(colfile.Bool)
		switch {
		case lt == rt:
			p.emit(cmpKernelFor(e.Kind, lt), ls, rs, dst)
		case isNumeric(lt) && isNumeric(rt):
			// mixed int/float: coerce both sides to float64, matching the
			// scalar reference's numAt
			p.emit(cmpKernelFor(e.Kind, colfile.Float64), p.castFloat(ls), p.castFloat(rs), dst)
		default:
			// The scalar reference only errors when it reaches a row with
			// both sides non-NULL, so the compiled form defers the error the
			// same way.
			p.emit(lazyErrKernel(fmt.Errorf("exec: cannot compare %s and %s", lt, rt)), ls, rs, dst)
		}
		return dst, nil
	default: // arithmetic
		switch {
		case lt == colfile.Float64 || rt == colfile.Float64:
			dst := p.scratch(colfile.Float64)
			fn := arithKernelFor(e.Kind, colfile.Float64)
			if fn == nil {
				fn = lazyErrKernel(fmt.Errorf("exec: bad float arith %s", binNames[e.Kind]))
			}
			p.emit(fn, p.castFloat(ls), p.castFloat(rs), dst)
			return dst, nil
		case lt == colfile.Int64 && rt == colfile.Int64:
			dst := p.scratch(colfile.Int64)
			p.emit(arithKernelFor(e.Kind, colfile.Int64), ls, rs, dst)
			return dst, nil
		case lt == colfile.String && rt == colfile.String && e.Kind == OpAdd:
			dst := p.scratch(colfile.String)
			p.emit(arithKernelFor(OpAdd, colfile.String), ls, rs, dst)
			return dst, nil
		default:
			return 0, fmt.Errorf("exec: cannot apply %s to %s and %s", binNames[e.Kind], lt, rt)
		}
	}
}

// castFloat inserts a float64 coercion instruction unless the slot already is
// one.
func (p *Prog) castFloat(slot int) int {
	if p.slots[slot].typ == colfile.Float64 {
		return slot
	}
	dst := p.scratch(colfile.Float64)
	p.emit(castFloatKernel(p.slots[slot].typ), slot, -1, dst)
	return dst
}

func isNumeric(t colfile.DataType) bool {
	return t == colfile.Int64 || t == colfile.Float64
}

// lazyErrKernel reproduces the scalar reference's row-at-a-time errors for
// operand type combinations with no kernel: the error fires only when a
// selected lane has all inputs non-NULL; otherwise the lane is NULL.
func lazyErrKernel(err error) kernelFn {
	return func(l, r, out *colfile.Vec, sel []int) error {
		n := out.Len()
		mask := out.NullScratch(n)
		body := func(i int) error {
			if l.IsNull(i) || (r != nil && r.IsNull(i)) {
				mask[i] = true
				return nil
			}
			return err
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if e := body(i); e != nil {
					return e
				}
			}
			return nil
		}
		for _, i := range sel {
			if e := body(i); e != nil {
				return e
			}
		}
		return nil
	}
}

// inListKernelFor builds the typed IN-list kernel for the operand type.
// Literals of other types are dropped from the set: in the scalar reference
// they sit in a boxed map that a value of the operand type can never equal.
func inListKernelFor(t colfile.DataType, e InList) kernelFn {
	switch t {
	case colfile.Int64:
		set := make(map[int64]struct{}, len(e.Vals))
		for _, x := range e.Vals {
			if v, ok := normalize(x).(int64); ok {
				set[v] = struct{}{}
			}
		}
		return inListKernel(intVals, set, e.Negate)
	case colfile.Float64:
		set := make(map[float64]struct{}, len(e.Vals))
		for _, x := range e.Vals {
			if v, ok := normalize(x).(float64); ok {
				set[v] = struct{}{}
			}
		}
		return inListKernel(floatVals, set, e.Negate)
	case colfile.String:
		set := make(map[string]struct{}, len(e.Vals))
		for _, x := range e.Vals {
			if v, ok := x.(string); ok {
				set[v] = struct{}{}
			}
		}
		return inListKernel(strVals, set, e.Negate)
	default: // Bool
		set := make(map[bool]struct{}, len(e.Vals))
		for _, x := range e.Vals {
			if v, ok := x.(bool); ok {
				set[v] = struct{}{}
			}
		}
		return inListKernel(boolVals, set, e.Negate)
	}
}
