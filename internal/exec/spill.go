package exec

// Grace hash-join spilling: when a join's build side exceeds the configured
// memory budget, both sides are hash-partitioned into spill files written
// through the (simulated) object store and the join runs partition-wise with
// the ordinary in-memory JoinTable+Probe machinery. The depth-0 partitions
// are independent work units, so JoinBatches fans them out over the same
// ForEachIndexed worker pool that runs morsels, with the nested BuildHashJoin
// parallelism capped to parallelism/dop so partition tasks and their inner
// builds together stay within the configured Parallelism. Probe rows carry
// their global row ordinal through the spill files, and the partition outputs
// — concatenated in partition order, then merged by ordinal — restore global
// probe-row order, so a spilled join's output is byte-identical to the
// in-memory join's at every degree of parallelism and every budget setting
// (see docs/ARCHITECTURE.md, "Cross-DOP determinism contract"). Skewed
// partitions that still exceed the budget are recursively repartitioned with
// a depth-seeded hash; a partition a recursion cannot shrink (a single hot
// key) is joined in memory as a last resort.
//
// Probe-side spill files are namespaced per JoinBatches call (l/cNNN/d0),
// so re-probing the same spilled build — or probing it from two goroutines
// concurrently — never lists a previous call's leaf files.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"polaris/internal/colfile"
)

// SpillStore is the namespace a spilled join writes its partition files to.
// Names are relative to the namespace; List returns names with the given
// prefix in lexicographic order. internal/objectstore.SpillDir implements it
// over the simulated object store (latency and fault injection included);
// NewMemSpillStore provides an in-process implementation for tests and
// benchmarks.
type SpillStore interface {
	Put(name string, data []byte) error
	Get(name string) ([]byte, error)
	List(prefix string) []string
}

// PartitionFunc assigns a row to a spill partition given its batch, the key
// column indexes, the row index and the row's encoded join key. Both join
// sides must use the same function so matching rows land in the same
// partition.
type PartitionFunc func(b *colfile.Batch, keyCols []int, row int, key []byte) int

// Spill tuning constants.
const (
	// defaultSpillFanout is the partition count per partitioning level.
	defaultSpillFanout = 8
	// maxSpillDepth bounds recursive repartitioning of skewed partitions.
	maxSpillDepth = 3
	// minSpillFlushBytes floors the per-partition write buffer so tiny
	// budgets still produce sane file counts.
	minSpillFlushBytes = 4 << 10
)

// SpillConfig configures grace-join spilling for one build.
type SpillConfig struct {
	// Budget is the build-side memory budget in bytes; <= 0 disables
	// spilling (the build is always materialized in memory).
	Budget int64
	// Store receives the spill files; required when Budget > 0.
	Store SpillStore
	// Fanout is the partition count at depth 0; defaults to
	// defaultSpillFanout. Recursive levels always use the default.
	Fanout int
	// Partition overrides the depth-0 partitioner; defaults to a seeded
	// hash of the encoded join key. The planner passes a d(r)-based
	// partitioner (core.DistHash over the key value) when the join key
	// covers the build table's distribution column, so spill partitions
	// align with the table's storage cells.
	Partition PartitionFunc
}

// spillHash hashes an encoded key with a depth-seeded FNV-1a basis, so each
// recursion level redistributes the keys its parent level hashed together.
func spillHash(key []byte, depth int) uint32 {
	h := uint32(2166136261) ^ (uint32(depth) * 0x9E3779B9)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return h
}

// hashPartitioner partitions by the depth-seeded hash of the encoded key.
func hashPartitioner(depth, fanout int) PartitionFunc {
	return func(_ *colfile.Batch, _ []int, _ int, key []byte) int {
		return int(spillHash(key, depth) % uint32(fanout))
	}
}

// JoinSource is the product of a budget-aware hash-join build: exactly one of
// Table (the build fit in memory) or Spilled (the build overflowed to the
// spill store) is set.
type JoinSource struct {
	Table   *JoinTable
	Spilled *SpilledJoin
}

// BuildSchema returns the build side's schema.
func (s *JoinSource) BuildSchema() colfile.Schema {
	if s.Table != nil {
		return s.Table.BuildSchema()
	}
	return s.Spilled.buildSchema
}

// SpilledJoin is the spilled counterpart of JoinTable: the build side lives
// in per-partition spill files, and JoinBatches runs the partition-wise join
// against a probe side it partitions the same way.
type SpilledJoin struct {
	store       SpillStore
	typ         JoinType
	buildKeys   []int
	buildSchema colfile.Schema
	fanout      int
	budget      int64
	flushBytes  int64
	parallelism int
	partition   PartitionFunc
	tel         *Telemetry

	// partMem is the in-memory byte estimate of each depth-0 build
	// partition, the quantity compared against the budget to decide
	// recursive repartitioning.
	partMem []int64

	// bloom is the runtime filter over every spilled build key, accumulated
	// while the build side is partitioned (nil for left outer joins, whose
	// unmatched probe rows must still be emitted). JoinBatches consults it to
	// drop provably matchless probe rows before they pay the spill round
	// trip. No false negatives, so output is unchanged; the filter is an
	// order-independent OR over the build keys, so it is deterministic.
	bloom *Bloom
	// bloomPruned counts probe rows the filter dropped (row-based, hence
	// DOP-invariant).
	bloomPruned atomic.Int64

	// probeCalls numbers JoinBatches calls so each call's probe-side spill
	// files live in their own namespace (l/cNNN/...): a second or concurrent
	// call must never list a previous call's leaf files.
	probeCalls atomic.Int64

	// buildReparts memoizes build-side recursive repartitions per directory.
	// The build namespace is shared across JoinBatches calls (unlike the
	// probe side, its contents are call-independent), so an over-budget
	// partition is split exactly once: later and concurrent calls reuse the
	// sub-partition files and their memory estimates instead of re-reading
	// and rewriting them — which also keeps SpillBytes from multi-counting
	// the same build bytes.
	repartMu     sync.Mutex
	buildReparts map[string]*buildRepart

	mu           sync.Mutex
	bytesWritten int64
	filesWritten int64
	partsJoined  int64
	// written records every spill file name already accounted. Spill file
	// content is a deterministic function of its name, so a rewrite (a
	// repartition retried after a failed put) overwrites identical bytes —
	// counting only the first write keeps SpillBytes equal to the bytes
	// actually resident in the store.
	written map[string]struct{}
}

// buildRepart is one memoized build-side repartition: sem (a one-slot
// semaphore, waitable alongside ctx.Done) serializes the spill I/O, mem
// holds the resulting per-sub-partition memory estimates once done. Only
// success is memoized — a failed or cancelled attempt leaves the entry
// retryable, so one doomed call cannot poison a later one (retries rewrite
// the same deterministic bytes to the same names).
type buildRepart struct {
	sem  chan struct{}
	done bool
	mem  []int64
}

// repartitionBuild splits buildDir's leaf files into depth-seeded
// sub-partitions at most once per SpilledJoin, however many (possibly
// concurrent) JoinBatches calls reach the same over-budget partition: later
// callers reuse the sub-partition files and memory estimates instead of
// re-reading and rewriting them. Waiting for a concurrent caller's
// repartition observes ctx, so a cancelled task unwinds instead of blocking
// behind a sibling call's latency-modeled I/O.
func (sj *SpilledJoin) repartitionBuild(ctx context.Context, buildDir string, part PartitionFunc) ([]int64, error) {
	sj.repartMu.Lock()
	r, ok := sj.buildReparts[buildDir]
	if !ok {
		if sj.buildReparts == nil {
			sj.buildReparts = make(map[string]*buildRepart)
		}
		r = &buildRepart{sem: make(chan struct{}, 1)}
		sj.buildReparts[buildDir] = r
	}
	sj.repartMu.Unlock()
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-r.sem }()
	if r.done {
		return r.mem, nil
	}
	bw := newSpillWriter(sj, buildDir, sj.buildSchema, defaultSpillFanout)
	if err := sj.repartition(ctx, buildDir, sj.buildSchema, sj.buildKeys, part, bw); err != nil {
		return nil, err
	}
	r.mem, r.done = bw.mem, true
	return r.mem, nil
}

// SpillBytes returns the total bytes written to the spill store so far
// (build and probe sides, recursion included).
func (sj *SpilledJoin) SpillBytes() int64 {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.bytesWritten
}

// SpillFiles returns the number of spill files written so far.
func (sj *SpilledJoin) SpillFiles() int64 {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.filesWritten
}

// Partitions returns the depth-0 partition count.
func (sj *SpilledJoin) Partitions() int { return sj.fanout }

// BloomPrunedRows returns how many probe rows the build-side runtime bloom
// filter dropped before spilling, across all JoinBatches calls. Row-based, so
// deterministic and DOP-invariant; the planner folds it into
// WorkStats.RuntimeFilterRows.
func (sj *SpilledJoin) BloomPrunedRows() int64 { return sj.bloomPruned.Load() }

// PartitionsJoined returns how many (build, probe) partition pairs have been
// joined so far — the leaf tasks of the partition-wise fan-out, recursion
// included. Deterministic for a fixed build, probe and budget, so tests (and
// WorkStats.JoinSpillPartitions) assert on it.
func (sj *SpilledJoin) PartitionsJoined() int64 {
	sj.mu.Lock()
	defer sj.mu.Unlock()
	return sj.partsJoined
}

func (sj *SpilledJoin) put(name string, data []byte) error {
	if err := sj.store.Put(name, data); err != nil {
		return fmt.Errorf("exec: spill write %s: %w", name, err)
	}
	sj.mu.Lock()
	if _, dup := sj.written[name]; !dup {
		if sj.written == nil {
			sj.written = make(map[string]struct{})
		}
		sj.written[name] = struct{}{}
		sj.bytesWritten += int64(len(data))
		sj.filesWritten++
	}
	sj.mu.Unlock()
	return nil
}

// spillWriter buffers rows per partition and flushes each buffer to a spill
// file when it reaches flushBytes. File names are "<dir>/p%03d/f%09d": the
// "f" segment keeps leaf files of one level disjoint from the "p" directories
// of the next recursion level under prefix listing, and the zero-padded
// sequence makes List order equal write order — which is what preserves row
// order across a partition's files.
type spillWriter struct {
	sj     *SpilledJoin
	dir    string
	schema colfile.Schema
	bufs   []*colfile.Batch
	bufMem []int64 // running in-memory estimate of each unflushed buffer
	seqs   []int
	mem    []int64 // cumulative in-memory bytes routed to each partition
	rows   []int64
}

func newSpillWriter(sj *SpilledJoin, dir string, schema colfile.Schema, fanout int) *spillWriter {
	w := &spillWriter{
		sj: sj, dir: dir, schema: schema,
		bufs:   make([]*colfile.Batch, fanout),
		bufMem: make([]int64, fanout),
		seqs:   make([]int, fanout),
		mem:    make([]int64, fanout),
		rows:   make([]int64, fanout),
	}
	for i := range w.bufs {
		w.bufs[i] = colfile.NewBatch(schema)
	}
	return w
}

func (w *spillWriter) add(p int, src *colfile.Batch, row int) error {
	buf := w.bufs[p]
	for c := range buf.Cols {
		buf.Cols[c].Append(src.Cols[c], row)
	}
	w.rows[p]++
	w.bufMem[p] += src.RowMemSize(row)
	if w.bufMem[p] >= w.sj.flushBytes {
		return w.flush(p)
	}
	return nil
}

func (w *spillWriter) flush(p int) error {
	buf := w.bufs[p]
	if buf.NumRows() == 0 {
		return nil
	}
	data, err := colfile.MarshalBatch(buf)
	if err != nil {
		return err
	}
	name := fmt.Sprintf("%s/p%03d/f%09d", w.dir, p, w.seqs[p])
	w.seqs[p]++
	if err := w.sj.put(name, data); err != nil {
		return err
	}
	// Accounting strictly follows the durable write: a put that fails
	// mid-finish must leave mem[p] — like sj.put's SpillBytes, which feeds
	// WorkStats.JoinSpillBytes — reflecting only bytes actually in the store.
	w.mem[p] += w.bufMem[p]
	w.bufs[p] = colfile.NewBatch(w.schema)
	w.bufMem[p] = 0
	return nil
}

func (w *spillWriter) finish() error {
	for p := range w.bufs {
		if err := w.flush(p); err != nil {
			return err
		}
	}
	return nil
}

// partDir names partition p's directory under dir.
func partDir(dir string, p int) string { return fmt.Sprintf("%s/p%03d", dir, p) }

// BuildGraceJoin drains the build operator under cfg.Budget. While the
// materialized build side fits the budget it returns an ordinary in-memory
// JoinTable (identical to BuildHashJoin). The moment it exceeds the budget,
// the rows drained so far and the remainder of the stream are hash-
// partitioned into spill files and a SpilledJoin is returned instead; the
// caller then joins via JoinBatches (parallel planner) or SpilledProbe
// (serial planner). Build rows with NULL keys are dropped at partition time —
// they can never match, and no join type emits an unmatched build row.
func BuildGraceJoin(build Operator, keys []int, typ JoinType, parallelism int, cfg SpillConfig, tel *Telemetry) (*JoinSource, error) {
	schema := build.Schema()
	var drained []*colfile.Batch
	var total int64
	for {
		b, err := build.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			// Everything fit: the ordinary in-memory build.
			jt, err := BuildHashJoin(NewBatchList(schema, drained), keys, typ, parallelism, tel)
			if err != nil {
				return nil, err
			}
			return &JoinSource{Table: jt}, nil
		}
		drained = append(drained, b)
		total += b.MemSize()
		if cfg.Budget > 0 && total > cfg.Budget {
			break
		}
	}

	if cfg.Store == nil {
		return nil, fmt.Errorf("exec: join build exceeds budget (%d bytes) and no spill store is configured", cfg.Budget)
	}
	fanout := cfg.Fanout
	if fanout <= 0 {
		fanout = defaultSpillFanout
	}
	part := cfg.Partition
	if part == nil {
		part = hashPartitioner(0, fanout)
	}
	flush := cfg.Budget / int64(fanout)
	if flush < minSpillFlushBytes {
		flush = minSpillFlushBytes
	}
	sj := &SpilledJoin{
		store: cfg.Store, typ: typ, buildKeys: keys, buildSchema: schema,
		fanout: fanout, budget: cfg.Budget, flushBytes: flush,
		parallelism: parallelism, partition: part, tel: tel,
	}
	if typ != LeftOuterJoin {
		// The key count is unknown while streaming; size for the spill
		// regime (a build past the budget has many keys). Fixed hint keeps
		// the filter deterministic regardless of how the drain interleaved.
		sj.bloom = NewBloom(spillBloomKeyHint)
	}

	w := newSpillWriter(sj, "b/d0", schema, fanout)
	spillBatch := func(b *colfile.Batch) error {
		if b.Sel != nil {
			// The partition loop below indexes rows physically; densify
			// selection-carrying batches (from pushed-down scan predicates)
			// before keying and spilling them.
			b = b.Materialize()
		}
		var keyBuf []byte
		for r := 0; r < b.NumRows(); r++ {
			k, ok := appendRowKey(keyBuf[:0], b, keys, r)
			keyBuf = k
			if !ok {
				continue // NULL build key: unmatched forever, drop
			}
			if sj.bloom != nil {
				sj.bloom.Add(k)
			}
			if err := w.add(part(b, keys, r, k), b, r); err != nil {
				return err
			}
		}
		return nil
	}
	var buildRows int64
	for _, b := range drained {
		buildRows += int64(b.NumRows())
		if err := spillBatch(b); err != nil {
			return nil, err
		}
	}
	drained = nil // the spill files own the build side now
	for {
		b, err := build.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		buildRows += int64(b.NumRows())
		if err := spillBatch(b); err != nil {
			return nil, err
		}
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	sj.partMem = w.mem
	if tel != nil {
		tel.RowsProcessed.Add(buildRows)
	}
	return &JoinSource{Spilled: sj}, nil
}

// rowNumField is the synthetic column a spilled probe row carries through the
// partition files: its global ordinal in the probe stream, used to merge the
// partition outputs back into probe-row order. The name never reaches a user
// scope — it exists only inside the spill pipeline.
var rowNumField = colfile.Field{Name: "__rownum", Type: colfile.Int64}

// spillFileSource streams spill files back as batches, one file per Next.
type spillFileSource struct {
	store  SpillStore
	names  []string
	schema colfile.Schema
	idx    int
}

func (s *spillFileSource) Schema() colfile.Schema { return s.schema }

func (s *spillFileSource) Next() (*colfile.Batch, error) {
	if s.idx >= len(s.names) {
		return nil, nil
	}
	name := s.names[s.idx]
	s.idx++
	data, err := s.store.Get(name)
	if err != nil {
		return nil, fmt.Errorf("exec: spill read %s: %w", name, err)
	}
	return colfile.UnmarshalBatch(data)
}

// readSpillFiles materializes all leaf files under dir, in name order.
func (sj *SpilledJoin) readSpillFiles(dir string) ([]*colfile.Batch, error) {
	var out []*colfile.Batch
	for _, name := range sj.store.List(dir + "/f") {
		data, err := sj.store.Get(name)
		if err != nil {
			return nil, fmt.Errorf("exec: spill read %s: %w", name, err)
		}
		b, err := colfile.UnmarshalBatch(data)
		if err != nil {
			return nil, err
		}
		if b.NumRows() > 0 {
			out = append(out, b)
		}
	}
	return out, nil
}

// JoinBatches joins per-morsel probe batches (nil entries allowed) against
// the spilled build side and returns per-morsel outputs whose concatenation
// is byte-identical to probing an in-memory JoinTable morsel by morsel:
// probe-row order globally, matches in build-row order within a row. Probe
// rows are partitioned with the build side's partitioner into a namespace
// private to this call (so the build may be re-probed, even concurrently),
// then the depth-0 partitions — independent work units — are joined over a
// ForEachIndexed pool of dop workers (recursively repartitioned while a
// build side still exceeds the budget), each leaf join's inner BuildHashJoin
// capped to parallelism/dop workers so the fan-out as a whole stays within
// the configured Parallelism. The partition outputs — each ascending in the
// carried row ordinal — are merged back into global row order.
func (sj *SpilledJoin) JoinBatches(probe []*colfile.Batch, leftKeys []int, leftSchema colfile.Schema, dop int) ([]*colfile.Batch, error) {
	// Global row ordinals: offsets[i] is the first ordinal of morsel i.
	offsets := make([]int64, len(probe)+1)
	for i, b := range probe {
		n := int64(0)
		if b != nil {
			n = int64(b.NumRows())
		}
		offsets[i+1] = offsets[i] + n
	}

	// Partition the probe side, each row extended with its ordinal, into
	// this call's own namespace.
	probeRoot := fmt.Sprintf("l/c%03d/d0", sj.probeCalls.Add(1)-1)
	spillSchema := append(append(colfile.Schema{}, leftSchema...), rowNumField)
	rowNumIdx := len(leftSchema)
	w := newSpillWriter(sj, probeRoot, spillSchema, sj.fanout)
	var pruned int64
	for i, b := range probe {
		if b == nil {
			continue
		}
		if b.Sel != nil {
			// ext shares b's column vectors and is indexed physically below;
			// densify selection-carrying batches first so the ordinal column
			// and the key encoding line up row for row.
			b = b.Materialize()
		}
		ext := &colfile.Batch{Schema: spillSchema, Cols: make([]*colfile.Vec, len(spillSchema))}
		copy(ext.Cols, b.Cols)
		nums := colfile.NewVec(colfile.Int64)
		for r := 0; r < b.NumRows(); r++ {
			nums.AppendInt(offsets[i] + int64(r))
		}
		ext.Cols[rowNumIdx] = nums
		var keyBuf []byte
		for r := 0; r < b.NumRows(); r++ {
			k, ok := appendRowKey(keyBuf[:0], ext, leftKeys, r)
			keyBuf = k
			p := 0
			if !ok {
				// NULL probe keys never match. Only a left outer join emits
				// them (as a NULL-padded row, via partition 0's leaf probe);
				// inner and semi joins drop them here instead of paying the
				// spill round trip.
				if sj.typ != LeftOuterJoin {
					continue
				}
			} else {
				if sj.bloom != nil && !sj.bloom.MayContain(k) {
					// Runtime filter: provably no build match, so an inner or
					// semi join emits nothing for this row — skip the spill
					// round trip entirely.
					pruned++
					continue
				}
				p = sj.partition(ext, leftKeys, r, k)
			}
			if err := w.add(p, ext, r); err != nil {
				return nil, err
			}
		}
	}
	if err := w.finish(); err != nil {
		return nil, err
	}
	countPruned(&sj.bloomPruned, pruned)

	// Join the depth-0 partitions — independent (build, probe) pairs — over
	// the shared worker pool, recursing while a build side exceeds budget.
	// Each partition collects its leaves privately; concatenating them in
	// partition order afterwards reproduces the serial depth-first leaf
	// order exactly, so the fan-out cannot perturb the merge below. The
	// inner hash-join builds are capped so partition tasks × build workers
	// stays within the configured parallelism.
	// Partitions with no probe rows exit their task immediately, so size the
	// pool (and with it the nested-build share below) by the live partitions
	// only: a fully skewed probe (one hot partition) then gets the whole
	// Parallelism for its inner build instead of idling dop-1 workers.
	live := 0
	for p := 0; p < sj.fanout; p++ {
		if w.rows[p] > 0 {
			live++
		}
	}
	if live < 1 {
		live = 1
	}
	effDop := dop
	if effDop < 1 {
		effDop = 1
	}
	if effDop > live {
		effDop = live
	}
	// Never more partition tasks than the configured parallelism: the cap
	// effDop × buildPar ≤ Parallelism must hold even when the caller's dop
	// exceeds it.
	if sj.parallelism > 0 && effDop > sj.parallelism {
		effDop = sj.parallelism
	}
	buildPar := sj.parallelism / effDop
	if buildPar < 1 {
		buildPar = 1
	}
	partLeaves := make([][]*colfile.Batch, sj.fanout)
	err := ForEachIndexed(context.Background(), sj.fanout, effDop, func(ctx context.Context, p int) error {
		return sj.joinPartition(ctx, partDir("b/d0", p), partDir(probeRoot, p), sj.partMem[p], 0, buildPar, leftKeys, spillSchema, &partLeaves[p])
	})
	if err != nil {
		return nil, err
	}
	var leaves []*colfile.Batch
	for _, pl := range partLeaves {
		leaves = append(leaves, pl...)
	}

	// Merge leaf outputs into global probe-row order. Every probe row lives
	// in exactly one leaf and each leaf is ascending by ordinal, so a stable
	// sort on the ordinal restores global order while keeping a row's
	// matches in build order.
	outSchema := leftSchema
	if sj.typ != SemiJoin {
		outSchema = append(append(colfile.Schema{}, leftSchema...), sj.buildSchema...)
	}
	type ref struct {
		leaf, row int
		num       int64
	}
	var refs []ref
	for li, lb := range leaves {
		nums := lb.Cols[rowNumIdx]
		for r := 0; r < lb.NumRows(); r++ {
			//polaris:kernel leaf batches come back dense from the spill reader, so r is a physical lane
			refs = append(refs, ref{leaf: li, row: r, num: nums.Ints[r]})
		}
	}
	sort.SliceStable(refs, func(i, j int) bool { return refs[i].num < refs[j].num })

	// Split back into per-morsel batches by ordinal range, dropping the
	// ordinal column (leaf columns are left..., __rownum, build...).
	outs := make([]*colfile.Batch, len(probe))
	k := 0
	for i := range probe {
		lo, hi := offsets[i], offsets[i+1]
		if lo == hi {
			continue
		}
		var out *colfile.Batch
		for k < len(refs) && refs[k].num < hi {
			if out == nil {
				out = colfile.NewBatch(outSchema)
			}
			lb := leaves[refs[k].leaf]
			for c := 0; c < rowNumIdx; c++ {
				out.Cols[c].Append(lb.Cols[c], refs[k].row)
			}
			for c := rowNumIdx; c < len(outSchema); c++ {
				out.Cols[c].Append(lb.Cols[c+1], refs[k].row)
			}
			k++
		}
		if out != nil && out.NumRows() > 0 {
			outs[i] = out
		}
	}
	return outs, nil
}

// joinPartition joins one (build, probe) partition pair as a unit of the
// partition-wise fan-out: buildPar caps the inner BuildHashJoin's worker
// count, and ctx (cancelled when a sibling partition fails) is observed
// between spill files and batches so a doomed partition stops paying
// object-store reads and writes early. While the build side's in-memory
// estimate exceeds the budget and depth remains, both sides are repartitioned
// with the next depth's seeded hash and the sub-partitions recurse (serially,
// within this partition's task); otherwise the partition is joined in memory
// (for a single hot key recursion cannot split, this is the documented last
// resort).
func (sj *SpilledJoin) joinPartition(ctx context.Context, buildDir, probeDir string, buildMem int64, depth, buildPar int, leftKeys []int, probeSchema colfile.Schema, leaves *[]*colfile.Batch) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	probeNames := sj.store.List(probeDir + "/f")
	if len(probeNames) == 0 {
		// No probe rows: nothing can match, so skip the build side entirely
		// — including an over-budget build's recursive repartition I/O.
		return nil
	}
	if buildMem > sj.budget && depth+1 < maxSpillDepth {
		next := hashPartitioner(depth+1, defaultSpillFanout)
		subMem, err := sj.repartitionBuild(ctx, buildDir, next)
		if err != nil {
			return err
		}
		lw := newSpillWriter(sj, probeDir, probeSchema, defaultSpillFanout)
		if err := sj.repartition(ctx, probeDir, probeSchema, leftKeys, next, lw); err != nil {
			return err
		}
		for p := 0; p < defaultSpillFanout; p++ {
			if err := sj.joinPartition(ctx, partDir(buildDir, p), partDir(probeDir, p), subMem[p], depth+1, buildPar, leftKeys, probeSchema, leaves); err != nil {
				return err
			}
		}
		return nil
	}

	buildBatches, err := sj.readSpillFiles(buildDir)
	if err != nil {
		return err
	}
	jt, err := BuildHashJoin(NewBatchList(sj.buildSchema, buildBatches), sj.buildKeys, sj.typ, buildPar, nil)
	if err != nil {
		return err
	}
	out, err := CollectCtx(ctx, &Probe{
		In:    &spillFileSource{store: sj.store, names: probeNames, schema: probeSchema},
		Table: jt, LeftKeys: leftKeys, Tel: sj.tel,
	})
	if err != nil {
		return err
	}
	sj.mu.Lock()
	sj.partsJoined++
	sj.mu.Unlock()
	if out.NumRows() > 0 {
		*leaves = append(*leaves, out)
	}
	return nil
}

// repartition redistributes a partition's leaf files into sub-partitions
// under the same directory using the next level's partitioner, preserving
// row order within every sub-partition (files are read in name order — write
// order — and rows split stably). ctx is checked per input file, so a
// cancelled partition task stops its doomed spill reads and writes early.
func (sj *SpilledJoin) repartition(ctx context.Context, dir string, schema colfile.Schema, keys []int, part PartitionFunc, w *spillWriter) error {
	for _, name := range sj.store.List(dir + "/f") {
		if err := ctx.Err(); err != nil {
			return err
		}
		data, err := sj.store.Get(name)
		if err != nil {
			return fmt.Errorf("exec: spill read %s: %w", name, err)
		}
		b, err := colfile.UnmarshalBatch(data)
		if err != nil {
			return err
		}
		var keyBuf []byte
		for r := 0; r < b.NumRows(); r++ {
			k, ok := appendRowKey(keyBuf[:0], b, keys, r)
			keyBuf = k
			p := 0
			if ok {
				p = part(b, keys, r, k)
			}
			if err := w.add(p, b, r); err != nil {
				return err
			}
		}
	}
	return w.finish()
}

// SpilledProbe is the serial executor's probe over a spilled build side: it
// materializes its input, runs the partition-wise join, and emits the single
// merged batch — byte-identical to streaming the input through an in-memory
// Probe.
type SpilledProbe struct {
	In       Operator
	Join     *SpilledJoin
	LeftKeys []int

	schema colfile.Schema
	done   bool
}

// Schema implements Operator.
func (p *SpilledProbe) Schema() colfile.Schema {
	if p.schema == nil {
		l := p.In.Schema()
		if p.Join.typ == SemiJoin {
			p.schema = l
		} else {
			p.schema = append(append(colfile.Schema{}, l...), p.Join.buildSchema...)
		}
	}
	return p.schema
}

// Next implements Operator.
func (p *SpilledProbe) Next() (*colfile.Batch, error) {
	if p.done {
		return nil, nil
	}
	p.done = true
	in, err := Collect(p.In)
	if err != nil {
		return nil, err
	}
	outs, err := p.Join.JoinBatches([]*colfile.Batch{in}, p.LeftKeys, p.In.Schema(), p.Join.parallelism)
	if err != nil {
		return nil, err
	}
	return outs[0], nil
}

// MemSpillStore is an in-process SpillStore for tests and benchmarks.
type MemSpillStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
	// FailPut, when non-zero, makes the Nth Put (1-based) fail, once — the
	// hook spill fault tests use to exercise the clean-error path (same
	// fire-exactly-once semantics as objectstore.FaultInjector.FailNth).
	FailPut int
	puts    int
}

// NewMemSpillStore returns an empty in-memory spill store.
func NewMemSpillStore() *MemSpillStore {
	return &MemSpillStore{blobs: make(map[string][]byte)}
}

// Put implements SpillStore.
func (m *MemSpillStore) Put(name string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.puts++
	if m.FailPut > 0 && m.puts == m.FailPut {
		return fmt.Errorf("memspill: injected put failure")
	}
	m.blobs[name] = append([]byte(nil), data...)
	return nil
}

// Get implements SpillStore.
func (m *MemSpillStore) Get(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[name]
	if !ok {
		return nil, fmt.Errorf("memspill: %s not found", name)
	}
	return append([]byte(nil), b...), nil
}

// List implements SpillStore.
func (m *MemSpillStore) List(prefix string) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for name := range m.blobs {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Count returns the number of stored spill files.
func (m *MemSpillStore) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.blobs)
}

// TotalBytes returns the total size of all stored spill files — the durable
// bytes the fault tests reconcile SpillBytes against after a failed put.
func (m *MemSpillStore) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, b := range m.blobs {
		n += int64(len(b))
	}
	return n
}
