package exec

import (
	"fmt"
	"testing"
	"testing/quick"

	"polaris/internal/colfile"
	"polaris/internal/deletevector"
)

func intSchema(names ...string) colfile.Schema {
	s := make(colfile.Schema, len(names))
	for i, n := range names {
		s[i] = colfile.Field{Name: n, Type: colfile.Int64}
	}
	return s
}

func makeFile(t *testing.T, schema colfile.Schema, rowGroups [][][]any) []byte {
	t.Helper()
	w := colfile.NewWriter(schema)
	for _, rows := range rowGroups {
		b := colfile.NewBatch(schema)
		for _, r := range rows {
			if err := b.AppendRow(r...); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func lineSchema() colfile.Schema {
	return colfile.Schema{
		{Name: "id", Type: colfile.Int64},
		{Name: "qty", Type: colfile.Int64},
		{Name: "price", Type: colfile.Float64},
		{Name: "tag", Type: colfile.String},
	}
}

func lineFile(t *testing.T, n int) []byte {
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i), int64(i % 10), float64(i) * 1.5, fmt.Sprintf("tag%d", i%3)}
	}
	return makeFile(t, lineSchema(), [][][]any{rows})
}

func TestScanAllRows(t *testing.T) {
	f := lineFile(t, 100)
	tel := &Telemetry{}
	s, err := NewScan([]ScanFile{{Data: f}}, nil, nil, tel)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 100 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if tel.RowsScanned.Load() != 100 || tel.BytesScanned.Load() != int64(len(f)) {
		t.Fatalf("telemetry = %+v", tel)
	}
}

func TestScanProjection(t *testing.T) {
	f := lineFile(t, 10)
	s, err := NewScan([]ScanFile{{Data: f}}, []string{"price", "id"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Collect(s)
	if len(out.Schema) != 2 || out.Schema[0].Name != "price" || out.Schema[1].Name != "id" {
		t.Fatalf("schema = %v", out.Schema)
	}
	if out.Cols[1].Ints[3] != 3 {
		t.Fatalf("id[3] = %d", out.Cols[1].Ints[3])
	}
	if _, err := NewScan([]ScanFile{{Data: f}}, []string{"ghost"}, nil, nil); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestScanDeleteVectorFiltering(t *testing.T) {
	f := lineFile(t, 10)
	dv := deletevector.FromRows([]uint32{0, 5, 9})
	s, err := NewScan([]ScanFile{{Data: f, DV: dv}}, []string{"id"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, _ := Collect(s)
	if out.NumRows() != 7 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for _, id := range out.Cols[0].Ints {
		if id == 0 || id == 5 || id == 9 {
			t.Fatalf("deleted row %d visible", id)
		}
	}
}

func TestScanDVSpansRowGroups(t *testing.T) {
	// DV ordinals are file-global; groups of 5 rows each.
	schema := intSchema("k")
	groups := [][][]any{}
	for g := 0; g < 3; g++ {
		rows := [][]any{}
		for i := 0; i < 5; i++ {
			rows = append(rows, []any{int64(g*5 + i)})
		}
		groups = append(groups, rows)
	}
	f := makeFile(t, schema, groups)
	dv := deletevector.FromRows([]uint32{4, 5, 14}) // last of g0, first of g1, last of g2
	s, _ := NewScan([]ScanFile{{Data: f, DV: dv}}, nil, nil, nil)
	out, _ := Collect(s)
	if out.NumRows() != 12 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for _, k := range out.Cols[0].Ints {
		if k == 4 || k == 5 || k == 14 {
			t.Fatalf("deleted row %d visible", k)
		}
	}
}

func TestScanFullyDeletedFile(t *testing.T) {
	f := lineFile(t, 4)
	dv := deletevector.FromRows([]uint32{0, 1, 2, 3})
	s, _ := NewScan([]ScanFile{{Data: f, DV: dv}}, nil, nil, nil)
	out, _ := Collect(s)
	if out.NumRows() != 0 {
		t.Fatalf("rows = %d", out.NumRows())
	}
}

func TestScanZoneMapPruning(t *testing.T) {
	schema := intSchema("k")
	groups := [][][]any{}
	for g := 0; g < 4; g++ {
		rows := [][]any{}
		for i := 0; i < 10; i++ {
			rows = append(rows, []any{int64(g*100 + i)})
		}
		groups = append(groups, rows)
	}
	f := makeFile(t, schema, groups)
	tel := &Telemetry{}
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, &PruneHint{Col: "k", Lo: 200, Hi: 209}, tel)
	out, _ := Collect(s)
	if out.NumRows() != 10 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	if tel.GroupsPruned.Load() != 3 {
		t.Fatalf("pruned = %d", tel.GroupsPruned.Load())
	}
	if tel.RowsScanned.Load() != 10 {
		t.Fatalf("scanned = %d, pruning ineffective", tel.RowsScanned.Load())
	}
}

func TestScanMultipleFiles(t *testing.T) {
	f1 := lineFile(t, 10)
	f2 := lineFile(t, 20)
	s, _ := NewScan([]ScanFile{{Data: f1}, {Data: f2}}, nil, nil, nil)
	out, _ := Collect(s)
	if out.NumRows() != 30 {
		t.Fatalf("rows = %d", out.NumRows())
	}
}

func TestFilterOperator(t *testing.T) {
	f := lineFile(t, 100)
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	// qty = 3
	flt := &Filter{In: s, Pred: Bin{Kind: OpEq, L: ColRef{Idx: 1}, R: Const{Val: int64(3)}}}
	out, err := Collect(flt)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 10 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	for i := 0; i < out.NumRows(); i++ {
		if out.Cols[1].Ints[i] != 3 {
			t.Fatalf("qty = %d", out.Cols[1].Ints[i])
		}
	}
}

func TestFilterComplexPredicate(t *testing.T) {
	f := lineFile(t, 100)
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	// (id < 50 AND qty >= 5) OR tag = 'tag0'
	pred := Bin{Kind: OpOr,
		L: Bin{Kind: OpAnd,
			L: Bin{Kind: OpLt, L: ColRef{Idx: 0}, R: Const{Val: int64(50)}},
			R: Bin{Kind: OpGe, L: ColRef{Idx: 1}, R: Const{Val: int64(5)}},
		},
		R: Bin{Kind: OpEq, L: ColRef{Idx: 3}, R: Const{Val: "tag0"}},
	}
	out, err := Collect(&Filter{In: s, Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 100; i++ {
		if (i < 50 && i%10 >= 5) || i%3 == 0 {
			want++
		}
	}
	if out.NumRows() != want {
		t.Fatalf("rows = %d, want %d", out.NumRows(), want)
	}
}

func TestProjectExpressions(t *testing.T) {
	f := lineFile(t, 5)
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	p := &Project{
		In: s,
		Exprs: []Expr{
			ColRef{Idx: 0, Name: "id"},
			Bin{Kind: OpMul, L: ColRef{Idx: 1}, R: Const{Val: int64(2)}},
			Bin{Kind: OpMul, L: ColRef{Idx: 2}, R: Const{Val: 2.0}},
		},
		Names: []string{"id", "qty2", "price2"},
	}
	out, err := Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema[1].Name != "qty2" || out.Schema[2].Type != colfile.Float64 {
		t.Fatalf("schema = %v", out.Schema)
	}
	if out.Cols[1].Ints[3] != 6 || out.Cols[2].Floats[2] != 6.0 {
		t.Fatalf("values = %v %v", out.Cols[1].Ints, out.Cols[2].Floats)
	}
}

func TestLimitAndOffset(t *testing.T) {
	f := lineFile(t, 100)
	s, _ := NewScan([]ScanFile{{Data: f}}, []string{"id"}, nil, nil)
	out, err := Collect(&Limit{In: s, N: 5, Offset: 10})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 5 || out.Cols[0].Ints[0] != 10 || out.Cols[0].Ints[4] != 14 {
		t.Fatalf("limit = %v", out.Cols[0].Ints)
	}
}

func TestSortAscDesc(t *testing.T) {
	f := lineFile(t, 50)
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	srt := &Sort{In: s, Keys: []SortKey{{Col: 1, Desc: true}, {Col: 0, Desc: false}}}
	out, err := Collect(srt)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 50 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	// qty descending; within equal qty, id ascending
	for i := 1; i < 50; i++ {
		q0, q1 := out.Cols[1].Ints[i-1], out.Cols[1].Ints[i]
		if q0 < q1 {
			t.Fatalf("qty not descending at %d", i)
		}
		if q0 == q1 && out.Cols[0].Ints[i-1] > out.Cols[0].Ints[i] {
			t.Fatalf("id not ascending within group at %d", i)
		}
	}
}

func TestHashJoinInner(t *testing.T) {
	left := makeFile(t, intSchema("a", "b"), [][][]any{{
		{int64(1), int64(10)}, {int64(2), int64(20)}, {int64(3), int64(30)},
	}})
	right := makeFile(t, intSchema("x", "y"), [][][]any{{
		{int64(2), int64(200)}, {int64(3), int64(300)}, {int64(3), int64(301)}, {int64(4), int64(400)},
	}})
	ls, _ := NewScan([]ScanFile{{Data: left}}, nil, nil, nil)
	rs, _ := NewScan([]ScanFile{{Data: right}}, nil, nil, nil)
	j := &HashJoin{Left: ls, Right: rs, LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 { // 2 matches once, 3 matches twice
		t.Fatalf("rows = %d", out.NumRows())
	}
	if len(out.Schema) != 4 {
		t.Fatalf("schema = %v", out.Schema)
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	left := makeFile(t, intSchema("a"), [][][]any{{{int64(1)}, {int64(2)}}})
	right := makeFile(t, intSchema("x"), [][][]any{{{int64(2)}}})
	ls, _ := NewScan([]ScanFile{{Data: left}}, nil, nil, nil)
	rs, _ := NewScan([]ScanFile{{Data: right}}, nil, nil, nil)
	j := &HashJoin{Left: ls, Right: rs, LeftKeys: []int{0}, RightKeys: []int{0}, Type: LeftOuterJoin}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	// row with a=1 has NULL right side
	for i := 0; i < 2; i++ {
		a := out.Cols[0].Ints[i]
		if a == 1 && !out.Cols[1].IsNull(i) {
			t.Fatal("unmatched row has non-NULL right side")
		}
		if a == 2 && out.Cols[1].IsNull(i) {
			t.Fatal("matched row has NULL right side")
		}
	}
}

func TestHashJoinSemi(t *testing.T) {
	left := makeFile(t, intSchema("a"), [][][]any{{{int64(1)}, {int64(2)}, {int64(3)}}})
	right := makeFile(t, intSchema("x"), [][][]any{{{int64(2)}, {int64(2)}, {int64(3)}}})
	ls, _ := NewScan([]ScanFile{{Data: left}}, nil, nil, nil)
	rs, _ := NewScan([]ScanFile{{Data: right}}, nil, nil, nil)
	j := &HashJoin{Left: ls, Right: rs, LeftKeys: []int{0}, RightKeys: []int{0}, Type: SemiJoin}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 || len(out.Schema) != 1 {
		t.Fatalf("semi rows = %d schema = %v", out.NumRows(), out.Schema)
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	schema := intSchema("k")
	lb := colfile.NewBatch(schema)
	_ = lb.AppendRow(nil)
	_ = lb.AppendRow(int64(1))
	rb := colfile.NewBatch(schema)
	_ = rb.AppendRow(nil)
	_ = rb.AppendRow(int64(1))
	j := &HashJoin{
		Left: NewBatchSource(lb), Right: NewBatchSource(rb),
		LeftKeys: []int{0}, RightKeys: []int{0}, Type: InnerJoin,
	}
	out, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 {
		t.Fatalf("rows = %d; NULL = NULL must not match", out.NumRows())
	}
}

func TestHashAggGrouped(t *testing.T) {
	f := lineFile(t, 30) // tags tag0/tag1/tag2, 10 each
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	agg := &HashAgg{
		In:      s,
		GroupBy: []Expr{ColRef{Idx: 3, Name: "tag"}},
		Aggs: []AggSpec{
			{Kind: AggCountStar, Name: "n"},
			{Kind: AggSum, Arg: ColRef{Idx: 1}, Name: "sq"},
			{Kind: AggMin, Arg: ColRef{Idx: 0}, Name: "mn"},
			{Kind: AggMax, Arg: ColRef{Idx: 0}, Name: "mx"},
			{Kind: AggAvg, Arg: ColRef{Idx: 2}, Name: "ap"},
		},
	}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 3 {
		t.Fatalf("groups = %d", out.NumRows())
	}
	for i := 0; i < 3; i++ {
		if out.Cols[1].Ints[i] != 10 {
			t.Fatalf("count = %d", out.Cols[1].Ints[i])
		}
	}
}

func TestHashAggGlobalEmptyInput(t *testing.T) {
	f := lineFile(t, 10)
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	// filter everything out, then COUNT(*) must still return one row with 0
	flt := &Filter{In: s, Pred: Const{Val: false}}
	agg := &HashAgg{In: flt, Aggs: []AggSpec{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggSum, Arg: ColRef{Idx: 1}, Name: "s"},
	}}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || out.Cols[0].Ints[0] != 0 {
		t.Fatalf("global agg = %v", out.Row(0))
	}
	if !out.Cols[1].IsNull(0) {
		t.Fatal("SUM of empty set must be NULL")
	}
}

func TestHashAggSumFloat(t *testing.T) {
	f := lineFile(t, 4) // price = 0, 1.5, 3, 4.5
	s, _ := NewScan([]ScanFile{{Data: f}}, nil, nil, nil)
	agg := &HashAgg{In: s, Aggs: []AggSpec{{Kind: AggSum, Arg: ColRef{Idx: 2}}}}
	out, err := Collect(agg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Cols[0].Floats[0] != 9.0 {
		t.Fatalf("sum = %v", out.Cols[0].Floats[0])
	}
}

func TestUnionAll(t *testing.T) {
	f1 := lineFile(t, 5)
	f2 := lineFile(t, 7)
	s1, _ := NewScan([]ScanFile{{Data: f1}}, nil, nil, nil)
	s2, _ := NewScan([]ScanFile{{Data: f2}}, nil, nil, nil)
	out, err := Collect(&UnionAll{Ins: []Operator{s1, s2}})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 12 {
		t.Fatalf("rows = %d", out.NumRows())
	}
}

func TestExprLike(t *testing.T) {
	schema := colfile.Schema{{Name: "s", Type: colfile.String}}
	b := colfile.NewBatch(schema)
	for _, s := range []string{"hello", "help", "world", "hell"} {
		_ = b.AppendRow(s)
	}
	v, err := (Like{E: ColRef{Idx: 0}, Pattern: "hel%"}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, true}
	for i := range want {
		if v.Bools[i] != want[i] {
			t.Fatalf("like[%d] = %v", i, v.Bools[i])
		}
	}
	v, _ = (Like{E: ColRef{Idx: 0}, Pattern: "h_ll_"}).Eval(b)
	want = []bool{true, false, false, false}
	for i := range want {
		if v.Bools[i] != want[i] {
			t.Fatalf("underscore like[%d] = %v", i, v.Bools[i])
		}
	}
}

func TestExprInList(t *testing.T) {
	schema := intSchema("k")
	b := colfile.NewBatch(schema)
	for i := 0; i < 5; i++ {
		_ = b.AppendRow(int64(i))
	}
	v, err := (InList{E: ColRef{Idx: 0}, Vals: []any{int64(1), int64(3)}}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, false, true, false}
	for i := range want {
		if v.Bools[i] != want[i] {
			t.Fatalf("in[%d] = %v", i, v.Bools[i])
		}
	}
	nv, _ := (InList{E: ColRef{Idx: 0}, Vals: []any{int64(1)}, Negate: true}).Eval(b)
	if nv.Bools[1] || !nv.Bools[0] {
		t.Fatal("NOT IN wrong")
	}
}

func TestExprNullPropagation(t *testing.T) {
	schema := intSchema("a", "b")
	b := colfile.NewBatch(schema)
	_ = b.AppendRow(int64(1), nil)
	_ = b.AppendRow(int64(2), int64(3))
	v, err := (Bin{Kind: OpAdd, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsNull(0) || v.IsNull(1) || v.Ints[1] != 5 {
		t.Fatalf("null propagation: %v", v)
	}
	nn, _ := (IsNull{E: ColRef{Idx: 1}}).Eval(b)
	if !nn.Bools[0] || nn.Bools[1] {
		t.Fatal("IS NULL wrong")
	}
	inn, _ := (IsNull{E: ColRef{Idx: 1}, Negate: true}).Eval(b)
	if inn.Bools[0] || !inn.Bools[1] {
		t.Fatal("IS NOT NULL wrong")
	}
}

func TestExprDivByZero(t *testing.T) {
	schema := intSchema("a")
	b := colfile.NewBatch(schema)
	_ = b.AppendRow(int64(1))
	if _, err := (Bin{Kind: OpDiv, L: ColRef{Idx: 0}, R: Const{Val: int64(0)}}).Eval(b); err == nil {
		t.Fatal("div by zero accepted")
	}
	if _, err := (Bin{Kind: OpMod, L: ColRef{Idx: 0}, R: Const{Val: int64(0)}}).Eval(b); err == nil {
		t.Fatal("mod by zero accepted")
	}
}

func TestExprNot(t *testing.T) {
	schema := colfile.Schema{{Name: "b", Type: colfile.Bool}}
	b := colfile.NewBatch(schema)
	_ = b.AppendRow(true)
	_ = b.AppendRow(false)
	_ = b.AppendRow(nil)
	v, err := (Not{E: ColRef{Idx: 0}}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Bools[0] || !v.Bools[1] || !v.IsNull(2) {
		t.Fatalf("NOT = %v", v)
	}
}

func TestExprStringConcat(t *testing.T) {
	schema := colfile.Schema{{Name: "s", Type: colfile.String}}
	b := colfile.NewBatch(schema)
	_ = b.AppendRow("ab")
	v, err := (Bin{Kind: OpAdd, L: ColRef{Idx: 0}, R: Const{Val: "cd"}}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Strs[0] != "abcd" {
		t.Fatalf("concat = %q", v.Strs[0])
	}
}

func TestExprIntFloatCoercion(t *testing.T) {
	schema := colfile.Schema{{Name: "i", Type: colfile.Int64}, {Name: "f", Type: colfile.Float64}}
	b := colfile.NewBatch(schema)
	_ = b.AppendRow(int64(3), 2.5)
	v, err := (Bin{Kind: OpMul, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}}).Eval(b)
	if err != nil {
		t.Fatal(err)
	}
	if v.Type != colfile.Float64 || v.Floats[0] != 7.5 {
		t.Fatalf("coerced mul = %v", v)
	}
	cmp, _ := (Bin{Kind: OpGt, L: ColRef{Idx: 0}, R: ColRef{Idx: 1}}).Eval(b)
	if !cmp.Bools[0] {
		t.Fatal("3 > 2.5 false")
	}
}

func TestPropertyLikeSelfMatch(t *testing.T) {
	// Any string without wildcard chars matches itself and matches "%".
	f := func(s string) bool {
		return likeMatch(s, "%") && (containsWild(s) || likeMatch(s, s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func containsWild(s string) bool {
	for _, c := range s {
		if c == '%' || c == '_' {
			return true
		}
	}
	return false
}

func TestPropertyFilterPartition(t *testing.T) {
	// filter(p) + filter(NOT p) partitions the input rows exactly.
	f := func(vals []int16) bool {
		schema := intSchema("k")
		b := colfile.NewBatch(schema)
		for _, v := range vals {
			_ = b.AppendRow(int64(v))
		}
		pred := Bin{Kind: OpGe, L: ColRef{Idx: 0}, R: Const{Val: int64(0)}}
		pos, err := Collect(&Filter{In: NewBatchSource(b), Pred: pred})
		if err != nil {
			return false
		}
		neg, err := Collect(&Filter{In: NewBatchSource(b), Pred: Not{E: pred}})
		if err != nil {
			return false
		}
		return pos.NumRows()+neg.NumRows() == len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySortIsPermutationAndOrdered(t *testing.T) {
	f := func(vals []int32) bool {
		schema := intSchema("k")
		b := colfile.NewBatch(schema)
		sum := int64(0)
		for _, v := range vals {
			_ = b.AppendRow(int64(v))
			sum += int64(v)
		}
		out, err := Collect(&Sort{In: NewBatchSource(b), Keys: []SortKey{{Col: 0}}})
		if err != nil {
			return false
		}
		if out.NumRows() != len(vals) {
			return false
		}
		var osum int64
		for i := 0; i < out.NumRows(); i++ {
			osum += out.Cols[0].Ints[i]
			if i > 0 && out.Cols[0].Ints[i-1] > out.Cols[0].Ints[i] {
				return false
			}
		}
		return osum == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
