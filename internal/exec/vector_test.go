package exec

// Golden equivalence suite for the vectorized expression pipeline: every
// compiled kernel program must be observationally identical to the scalar
// reference (Expr.Eval) — same values, same NULLs, same error strings —
// across the NULL/type matrix and across selection-vector shapes (dense,
// empty, all-selected, single row, sparse). docs/VECTORIZATION.md makes this
// contract normative; this file pins it.

import (
	"fmt"
	"strings"
	"testing"

	"polaris/internal/colfile"
)

// goldenSchema is the type matrix the suite evaluates over.
var goldenSchema = colfile.Schema{
	{Name: "i1", Type: colfile.Int64},   // no NULLs
	{Name: "i2", Type: colfile.Int64},   // NULLs + zeros (divisor torture)
	{Name: "f1", Type: colfile.Float64}, // NULLs
	{Name: "f2", Type: colfile.Float64}, // no NULLs, never zero
	{Name: "s1", Type: colfile.String},  // NULLs
	{Name: "s2", Type: colfile.String},  // no NULLs
	{Name: "b1", Type: colfile.Bool},    // NULLs
	{Name: "i3", Type: colfile.Int64},   // no NULLs, never zero
}

// goldenBatch builds n rows of deterministic, NULL-seeded data.
func goldenBatch(n int) *colfile.Batch {
	b := colfile.NewBatch(goldenSchema)
	words := []string{"alpha", "beta", "a%b_c", "", "Alpha", "beta beta", "zz"}
	for i := 0; i < n; i++ {
		row := []any{
			any(int64(i%17 - 8)),
			any(int64(i % 5)),
			any(float64(i%13) - 6.5),
			any(float64(i%7) + 0.5),
			any(words[i%len(words)]),
			any(words[(i*3+1)%len(words)]),
			any(i%3 == 0),
			any(int64(i%9 + 1)),
		}
		if i%4 == 1 {
			row[1] = nil
		}
		if i%5 == 2 {
			row[2] = nil
		}
		if i%6 == 3 {
			row[4] = nil
		}
		if i%7 == 4 {
			row[6] = nil
		}
		if err := b.AppendRow(row...); err != nil {
			panic(err)
		}
	}
	return b
}

func col(name string) ColRef {
	return ColRef{Idx: goldenSchema.ColIndex(name), Name: name}
}

// goldenExprs is the kernel catalog coverage: one entry per (operator, type)
// shape, including NULL propagation, mixed int/float coercion, faulting
// kernels with NULL divisor lanes, string kernels, and deferred type errors.
func goldenExprs() map[string]Expr {
	m := map[string]Expr{}
	for k, name := range map[BinKind]string{
		OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	} {
		m["int_"+name] = Bin{Kind: k, L: col("i1"), R: col("i2")}
		m["float_"+name] = Bin{Kind: k, L: col("f1"), R: col("f2")}
		m["str_"+name] = Bin{Kind: k, L: col("s1"), R: col("s2")}
		m["bool_"+name] = Bin{Kind: k, L: col("b1"), R: Const{Val: true}}
		m["mixed_"+name] = Bin{Kind: k, L: col("i1"), R: col("f1")}
	}
	m["int_add"] = Bin{Kind: OpAdd, L: col("i1"), R: col("i2")}
	m["int_sub"] = Bin{Kind: OpSub, L: col("i1"), R: col("i2")}
	m["int_mul"] = Bin{Kind: OpMul, L: col("i1"), R: col("i2")}
	m["int_div"] = Bin{Kind: OpDiv, L: col("i1"), R: col("i3")}
	m["int_mod"] = Bin{Kind: OpMod, L: col("i1"), R: col("i3")}
	m["int_div_null_divisor"] = Bin{Kind: OpDiv, L: col("i1"), R: Bin{Kind: OpAdd, L: col("i2"), R: Const{Val: nil}}}
	m["float_add"] = Bin{Kind: OpAdd, L: col("f1"), R: col("f2")}
	m["float_sub"] = Bin{Kind: OpSub, L: col("f1"), R: col("f2")}
	m["float_mul"] = Bin{Kind: OpMul, L: col("f1"), R: col("f2")}
	m["float_div"] = Bin{Kind: OpDiv, L: col("f1"), R: col("f2")}
	m["mixed_add"] = Bin{Kind: OpAdd, L: col("i1"), R: col("f2")}
	m["mixed_div"] = Bin{Kind: OpDiv, L: col("i1"), R: col("f2")}
	m["str_concat"] = Bin{Kind: OpAdd, L: col("s1"), R: col("s2")}
	m["and"] = Bin{Kind: OpAnd, L: Bin{Kind: OpLt, L: col("i1"), R: col("i2")}, R: col("b1")}
	m["or"] = Bin{Kind: OpOr, L: col("b1"), R: Bin{Kind: OpGt, L: col("f1"), R: Const{Val: 0.0}}}
	m["not"] = Not{E: Bin{Kind: OpLe, L: col("i1"), R: Const{Val: 3}}}
	m["is_null"] = IsNull{E: col("i2")}
	m["is_not_null"] = IsNull{E: col("s1"), Negate: true}
	m["is_null_of_expr"] = IsNull{E: Bin{Kind: OpAdd, L: col("i1"), R: col("i2")}}
	m["like_prefix"] = Like{E: col("s1"), Pattern: "al%"}
	m["like_underscore"] = Like{E: col("s1"), Pattern: "_eta"}
	m["like_multi"] = Like{E: col("s1"), Pattern: "%a%b%"}
	m["like_empty_pat"] = Like{E: col("s1"), Pattern: ""}
	m["in_int"] = InList{E: col("i1"), Vals: []any{int64(0), int64(3), int64(-4), "nope"}}
	m["not_in_int"] = InList{E: col("i2"), Vals: []any{int64(1), int64(2)}, Negate: true}
	m["in_str"] = InList{E: col("s1"), Vals: []any{"alpha", "", int64(7)}}
	m["in_float"] = InList{E: col("f2"), Vals: []any{0.5, 3.5}}
	m["in_bool"] = InList{E: col("b1"), Vals: []any{true}}
	m["const_int"] = Const{Val: 42}
	m["const_null"] = Const{Val: nil}
	m["const_cmp"] = Bin{Kind: OpGe, L: col("i1"), R: Const{Val: 0}}
	m["null_cmp"] = Bin{Kind: OpEq, L: col("i1"), R: Const{Val: nil}}
	// faulting / deferred-error parity
	m["err_int_div_zero"] = Bin{Kind: OpDiv, L: col("i1"), R: col("i2")} // i2 hits 0
	m["err_int_mod_zero"] = Bin{Kind: OpMod, L: col("i1"), R: col("i2")}
	m["err_float_div_zero"] = Bin{Kind: OpDiv, L: col("f1"), R: Const{Val: 0.0}}
	m["err_cmp_mismatch"] = Bin{Kind: OpLt, L: col("s1"), R: col("i1")}
	m["err_float_mod"] = Bin{Kind: OpMod, L: col("f1"), R: col("f2")}
	return m
}

// selections returns the selection-vector edge cases over n physical rows.
func selections(n int) map[string][]int {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var sparse []int
	for i := 0; i < n; i += 3 {
		sparse = append(sparse, i)
	}
	m := map[string][]int{
		"dense":        nil,
		"empty":        {},
		"all_selected": all,
		"sparse":       sparse,
	}
	if n > 1 {
		m["single_row"] = []int{n / 2}
	}
	return m
}

// evalScalar runs the scalar reference over the batch's logical rows.
func evalScalar(e Expr, b *colfile.Batch) (*colfile.Vec, error) {
	return e.Eval(b.Materialize())
}

// evalVector compiles and runs the kernel program, then gathers the selected
// lanes densely so both paths are compared in logical-row space.
func evalVector(e Expr, b *colfile.Batch) (*colfile.Vec, error) {
	prog, err := Compile(e, b.Schema)
	if err != nil {
		return nil, err
	}
	v, err := prog.Run(prog.NewCtx(), b)
	if err != nil {
		return nil, err
	}
	if b.Sel != nil {
		return v.Take(b.Sel), nil
	}
	if v.Len() > b.PhysRows() { // broadcast constants may overshoot
		return v.Slice(0, b.PhysRows()), nil
	}
	return v, nil
}

func assertVecsEqual(t *testing.T, name string, got, want *colfile.Vec, n int) {
	t.Helper()
	if got.Type != want.Type {
		t.Fatalf("%s: type %s, scalar reference %s", name, got.Type, want.Type)
	}
	for i := 0; i < n; i++ {
		gv, wv := got.Value(i), want.Value(i)
		if gv != wv {
			t.Fatalf("%s: row %d = %#v, scalar reference %#v", name, i, gv, wv)
		}
	}
}

func TestVectorizedEquivalenceGolden(t *testing.T) {
	const rows = 257 // not a multiple of anything interesting
	base := goldenBatch(rows)
	for selName, sel := range selections(rows) {
		b := &colfile.Batch{Schema: base.Schema, Cols: base.Cols, Sel: sel}
		if selName == "dense" {
			b = base
		}
		for exprName, e := range goldenExprs() {
			t.Run(selName+"/"+exprName, func(t *testing.T) {
				want, wantErr := evalScalar(e, b)
				got, gotErr := evalVector(e, b)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("error mismatch: vectorized %v, scalar reference %v", gotErr, wantErr)
				}
				if wantErr != nil {
					if gotErr.Error() != wantErr.Error() {
						t.Fatalf("error string: vectorized %q, scalar reference %q", gotErr, wantErr)
					}
					return
				}
				assertVecsEqual(t, exprName, got, want, b.NumRows())
			})
		}
	}
}

// TestVectorizedFilterSelectionComposition pins Filter's selection-vector
// output against the pre-refactor materializing semantics, including a
// second Filter stacked on a selected batch (sel∘sel composition).
func TestVectorizedFilterSelectionComposition(t *testing.T) {
	base := goldenBatch(300)
	pred1 := Bin{Kind: OpGt, L: col("i1"), R: Const{Val: -2}}
	pred2 := Bin{Kind: OpLt, L: col("f2"), R: Const{Val: 5.0}}

	f := &Filter{In: NewBatchSource(base), Pred: pred1}
	f2 := &Filter{In: f, Pred: pred2}
	got, err := Collect(f2)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: row-at-a-time over the same predicates.
	want := colfile.NewBatch(goldenSchema)
	for i := 0; i < base.NumRows(); i++ {
		keep := true
		for _, pred := range []Expr{Expr(pred1), Expr(pred2)} {
			pv, err := pred.Eval(base)
			if err != nil {
				t.Fatal(err)
			}
			if pv.IsNull(i) || !pv.Bools[i] {
				keep = false
			}
		}
		if keep {
			want.AppendBatch(&colfile.Batch{Schema: base.Schema, Cols: base.Cols, Sel: []int{i}})
		}
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		if fmt.Sprint(got.Row(i)) != fmt.Sprint(want.Row(i)) {
			t.Fatalf("row %d = %v, want %v", i, got.Row(i), want.Row(i))
		}
	}
}

// TestVectorizedAggOverSelection pins HashAgg (typed min/max state, compiled
// args) over a selected batch against the scalar reference path over the
// materialized equivalent.
func TestVectorizedAggOverSelection(t *testing.T) {
	base := goldenBatch(400)
	pred := Bin{Kind: OpNe, L: col("i2"), R: Const{Val: 0}}
	groupBy := []Expr{col("i2")}
	aggs := []AggSpec{
		{Kind: AggCountStar, Name: "n"},
		{Kind: AggSum, Arg: col("i1"), Name: "s"},
		{Kind: AggMin, Arg: col("f1"), Name: "mnf"},
		{Kind: AggMax, Arg: col("s1"), Name: "mxs"},
		{Kind: AggMin, Arg: col("b1"), Name: "mnb"},
		{Kind: AggAvg, Arg: col("i3"), Name: "av"},
	}
	run := func(in Operator) *colfile.Batch {
		h := &HashAgg{In: in, GroupBy: groupBy, Aggs: aggs}
		out, err := Collect(h)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	got := run(&Filter{In: NewBatchSource(base), Pred: pred})
	// Reference input: materialized dense filter of the same rows.
	pv, err := pred.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	keep := make([]bool, base.NumRows())
	for i := range keep {
		keep[i] = !pv.IsNull(i) && pv.Bools[i]
	}
	want := run(NewBatchSource(base.Filter(keep)))
	if got.NumRows() != want.NumRows() {
		t.Fatalf("groups = %d, want %d", got.NumRows(), want.NumRows())
	}
	for i := 0; i < want.NumRows(); i++ {
		if fmt.Sprint(got.Row(i)) != fmt.Sprint(want.Row(i)) {
			t.Fatalf("group row %d = %v, want %v", i, got.Row(i), want.Row(i))
		}
	}
}

// TestLikeMatchersAgree pins the kernel-side greedy LIKE matcher against the
// scalar reference's memoized matcher on targeted wildcard torture cases
// (FuzzKernelEquivalence covers the random space).
func TestLikeMatchersAgree(t *testing.T) {
	cases := []struct{ s, pat string }{
		{"", ""}, {"", "%"}, {"", "_"}, {"a", ""}, {"abc", "abc"},
		{"abc", "a%"}, {"abc", "%c"}, {"abc", "%b%"}, {"abc", "a_c"},
		{"abc", "____"}, {"abc", "___"}, {"aaa", "%aa"}, {"aaab", "%ab%"},
		{"mississippi", "%iss%ppi"}, {"mississippi", "m%i%s%p_"},
		{"ab", "%%%b"}, {"ab", "a%%"}, {"x", "%%_%%"}, {"", "%%"},
		{"a%b", "a%b"}, {"a_b", "a_b"}, {"aXb", "a%b%"}, {"ba", "%a%b"},
	}
	for _, c := range cases {
		if got, want := likeMatchIter(c.s, c.pat), likeMatch(c.s, c.pat); got != want {
			t.Errorf("likeMatchIter(%q, %q) = %v, reference %v", c.s, c.pat, got, want)
		}
	}
}

// TestProgSharedAcrossWorkers exercises the Prog-shared / EvalCtx-per-worker
// contract under the race detector: one compiled program, many goroutines.
func TestProgSharedAcrossWorkers(t *testing.T) {
	base := goldenBatch(128)
	e := Bin{Kind: OpAnd,
		L: Bin{Kind: OpLt, L: col("i1"), R: col("f2")},
		R: Not{E: IsNull{E: col("s1")}}}
	prog, err := Compile(e, goldenSchema)
	if err != nil {
		t.Fatal(err)
	}
	want, err := evalScalar(e, base)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			ctx := prog.NewCtx()
			for iter := 0; iter < 50; iter++ {
				v, err := prog.Run(ctx, base)
				if err != nil {
					done <- err
					return
				}
				for i := 0; i < base.NumRows(); i++ {
					if v.Value(i) != want.Value(i) {
						done <- fmt.Errorf("worker saw %#v at row %d, want %#v", v.Value(i), i, want.Value(i))
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompileErrorsMatchScalarTypeErrors pins compile-time error strings to
// the messages the scalar reference produces for the same trees.
func TestCompileErrorsMatchScalarTypeErrors(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Bin{Kind: OpSub, L: col("s1"), R: col("s2")}, "exec: cannot apply - to string and string"},
		{Not{E: col("i1")}, "exec: NOT of int64"},
		{Like{E: col("i1"), Pattern: "%"}, "exec: LIKE over int64"},
		{ColRef{Idx: 99}, "exec: column 99 out of range"},
	}
	for _, c := range cases {
		_, err := Compile(c.e, goldenSchema)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%s) error = %v, want %q", c.e, err, c.want)
		}
	}
}
