package exec

// Grace hash-join spilling: the spilled partition-wise join must be
// byte-identical to the in-memory JoinTable+Probe path for every join type,
// key shape (duplicates, NULLs, skew) and morsel decomposition, and a failed
// spill write must surface a clean error.

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"polaris/internal/colfile"
)

// buildSideBatch returns a build side over (k INT, tag VARCHAR) with
// duplicate keys, NULL keys, and rows enough to overflow small budgets.
func buildSideBatch(rows int) *colfile.Batch {
	schema := colfile.Schema{
		{Name: "k", Type: colfile.Int64},
		{Name: "tag", Type: colfile.String},
	}
	b := colfile.NewBatch(schema)
	for i := 0; i < rows; i++ {
		if i%13 == 7 {
			b.Cols[0].AppendNull() // NULL build keys never match
		} else {
			b.Cols[0].AppendInt(int64(i % 50)) // heavy duplication
		}
		b.Cols[1].AppendStr(fmt.Sprintf("tag-%03d", i))
	}
	return b
}

// probeSideBatches returns the probe side over (k INT, v INT) split into
// morsel-shaped batches, including a nil morsel and NULL probe keys.
func probeSideBatches(rows, morsels int) []*colfile.Batch {
	schema := colfile.Schema{
		{Name: "k", Type: colfile.Int64},
		{Name: "v", Type: colfile.Int64},
	}
	out := make([]*colfile.Batch, 0, morsels+1)
	per := (rows + morsels - 1) / morsels
	r := 0
	for m := 0; m < morsels; m++ {
		b := colfile.NewBatch(schema)
		for i := 0; i < per && r < rows; i++ {
			if r%17 == 3 {
				b.Cols[0].AppendNull()
			} else {
				b.Cols[0].AppendInt(int64(r % 61)) // some keys miss the build
			}
			b.Cols[1].AppendInt(int64(r))
			r++
		}
		out = append(out, b)
		if m == 1 {
			out = append(out, nil) // empty morsel mid-stream
		}
	}
	return out
}

func renderSpillBatch(b *colfile.Batch) string {
	if b == nil {
		return "<nil>"
	}
	var sb strings.Builder
	for r := 0; r < b.NumRows(); r++ {
		fmt.Fprintf(&sb, "%v\n", b.Row(r))
	}
	return sb.String()
}

// inMemoryReference probes every batch against an in-memory JoinTable,
// returning per-batch renders — the bytes a spilled join must reproduce.
func inMemoryReference(t *testing.T, build *colfile.Batch, probe []*colfile.Batch, typ JoinType, leftKeys, rightKeys []int) []string {
	t.Helper()
	jt, err := BuildHashJoin(NewBatchSource(build), rightKeys, typ, 4, nil)
	if err != nil {
		t.Fatalf("in-memory build: %v", err)
	}
	out := make([]string, len(probe))
	for i, b := range probe {
		if b == nil {
			out[i] = "<nil>"
			continue
		}
		got, err := Collect(&Probe{In: NewBatchSource(b), Table: jt, LeftKeys: leftKeys})
		if err != nil {
			t.Fatalf("in-memory probe: %v", err)
		}
		out[i] = renderSpillBatch(got)
	}
	return out
}

func spilledResult(t *testing.T, build *colfile.Batch, probe []*colfile.Batch, typ JoinType, leftKeys, rightKeys []int, cfg SpillConfig) (*SpilledJoin, []string) {
	t.Helper()
	src, err := BuildGraceJoin(NewBatchSource(build), rightKeys, typ, 4, cfg, nil)
	if err != nil {
		t.Fatalf("grace build: %v", err)
	}
	if src.Spilled == nil {
		t.Fatalf("build of %d bytes did not spill under budget %d", build.MemSize(), cfg.Budget)
	}
	outs, err := src.Spilled.JoinBatches(probe, leftKeys, probe[0].Schema, 4)
	if err != nil {
		t.Fatalf("spilled join: %v", err)
	}
	rendered := make([]string, len(outs))
	for i, b := range outs {
		if b == nil {
			rendered[i] = emptyRender(probe[i])
		} else {
			rendered[i] = renderSpillBatch(b)
		}
	}
	return src.Spilled, rendered
}

// emptyRender maps a nil spilled output back to what the in-memory reference
// renders for that morsel: "<nil>" for a nil input morsel, "" for a morsel
// that produced no rows.
func emptyRender(probe *colfile.Batch) string {
	if probe == nil {
		return "<nil>"
	}
	return ""
}

func TestGraceJoinSpilledMatchesInMemory(t *testing.T) {
	build := buildSideBatch(600)
	probe := probeSideBatches(400, 5)
	for _, typ := range []JoinType{InnerJoin, LeftOuterJoin, SemiJoin} {
		want := inMemoryReference(t, build, probe, typ, []int{0}, []int{0})
		store := NewMemSpillStore()
		sj, got := spilledResult(t, build, probe, typ, []int{0}, []int{0},
			SpillConfig{Budget: 2048, Store: store})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("type %d morsel %d: spilled join differs from in-memory:\ngot:\n%s\nwant:\n%s", typ, i, got[i], want[i])
			}
		}
		if sj.SpillBytes() == 0 || sj.SpillFiles() == 0 {
			t.Fatalf("type %d: spill accounting empty: bytes=%d files=%d", typ, sj.SpillBytes(), sj.SpillFiles())
		}
		if store.Count() == 0 {
			t.Fatalf("type %d: no spill files written", typ)
		}
	}
}

// TestGraceJoinSkewRecursion forces the recursive-repartition path: one hot
// key holds most of the build side, so its depth-0 partition exceeds the
// budget and is repartitioned; the hot key itself can never split, bottoming
// out in the documented in-memory fallback — with output still byte-identical.
func TestGraceJoinSkewRecursion(t *testing.T) {
	schema := colfile.Schema{
		{Name: "k", Type: colfile.Int64},
		{Name: "tag", Type: colfile.String},
	}
	build := colfile.NewBatch(schema)
	for i := 0; i < 800; i++ {
		k := int64(7) // hot key
		if i%10 == 0 {
			k = int64(i)
		}
		build.Cols[0].AppendInt(k)
		build.Cols[1].AppendStr(fmt.Sprintf("t%04d", i))
	}
	probe := probeSideBatches(120, 3)
	want := inMemoryReference(t, build, probe, InnerJoin, []int{0}, []int{0})
	_, got := spilledResult(t, build, probe, InnerJoin, []int{0}, []int{0},
		SpillConfig{Budget: 1024, Store: NewMemSpillStore()})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("morsel %d under skew differs:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
		}
	}
}

// TestGraceJoinCustomPartitioner pins the pluggable depth-0 partitioner (the
// hook the planner uses to cell-align partitions with d(r)): any partitioner
// applied to both sides keeps results byte-identical.
func TestGraceJoinCustomPartitioner(t *testing.T) {
	build := buildSideBatch(500)
	probe := probeSideBatches(300, 4)
	// A value-based partitioner in the shape of core's d(r): buckets by the
	// first key column's value, NULLs to partition 0.
	byValue := func(b *colfile.Batch, keyCols []int, row int, _ []byte) int {
		v := b.Cols[keyCols[0]]
		if v.IsNull(row) {
			return 0
		}
		return int(uint64(v.Ints[row]) % 8)
	}
	want := inMemoryReference(t, build, probe, InnerJoin, []int{0}, []int{0})
	_, got := spilledResult(t, build, probe, InnerJoin, []int{0}, []int{0},
		SpillConfig{Budget: 2048, Store: NewMemSpillStore(), Fanout: 8, Partition: byValue})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("morsel %d under custom partitioning differs:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
		}
	}
}

// TestGraceJoinMultiColumnStringKeys exercises multi-column keys with strings
// (the self-delimiting AppendKey encoding) through the spill path.
func TestGraceJoinMultiColumnStringKeys(t *testing.T) {
	schema := colfile.Schema{
		{Name: "a", Type: colfile.String},
		{Name: "b", Type: colfile.Int64},
	}
	build := colfile.NewBatch(schema)
	for i := 0; i < 400; i++ {
		build.Cols[0].AppendStr(fmt.Sprintf("s%c", 'a'+i%4))
		build.Cols[1].AppendInt(int64(i % 9))
	}
	probe := []*colfile.Batch{colfile.NewBatch(schema), colfile.NewBatch(schema)}
	for i := 0; i < 120; i++ {
		p := probe[i%2]
		p.Cols[0].AppendStr(fmt.Sprintf("s%c", 'a'+i%5))
		p.Cols[1].AppendInt(int64(i % 11))
	}
	want := inMemoryReference(t, build, probe, InnerJoin, []int{0, 1}, []int{0, 1})
	_, got := spilledResult(t, build, probe, InnerJoin, []int{0, 1}, []int{0, 1},
		SpillConfig{Budget: 1024, Store: NewMemSpillStore()})
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("morsel %d with composite keys differs:\ngot:\n%s\nwant:\n%s", i, got[i], want[i])
		}
	}
}

// TestSpilledJoinReuse is the regression test for the fixed-prefix bug: a
// second JoinBatches call on the same SpilledJoin used to list the first
// call's probe-side leaf files (both wrote under l/d0) and silently emit
// duplicated rows. Probe spills are now namespaced per call, so every call
// must reproduce the in-memory reference exactly.
func TestSpilledJoinReuse(t *testing.T) {
	build := buildSideBatch(600)
	probe := probeSideBatches(400, 5)
	want := inMemoryReference(t, build, probe, InnerJoin, []int{0}, []int{0})
	store := NewMemSpillStore()
	src, err := BuildGraceJoin(NewBatchSource(build), []int{0}, InnerJoin, 4,
		SpillConfig{Budget: 2048, Store: store}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Spilled == nil {
		t.Fatal("expected a spilled build")
	}
	for call := 0; call < 3; call++ {
		outs, err := src.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, 4)
		if err != nil {
			t.Fatalf("call %d: %v", call, err)
		}
		for i, b := range outs {
			got := emptyRender(probe[i])
			if b != nil {
				got = renderSpillBatch(b)
			}
			if got != want[i] {
				t.Fatalf("call %d morsel %d differs from in-memory (stale leaf files reused?):\ngot:\n%s\nwant:\n%s",
					call, i, got, want[i])
			}
		}
	}
}

// TestSpilledJoinConcurrentCalls drives two JoinBatches calls against the
// same spilled build from concurrent goroutines (run under -race in CI):
// per-call probe namespaces must keep the calls from reading each other's
// leaf files, and both must match the in-memory reference.
func TestSpilledJoinConcurrentCalls(t *testing.T) {
	build := buildSideBatch(600)
	probe := probeSideBatches(400, 5)
	want := inMemoryReference(t, build, probe, InnerJoin, []int{0}, []int{0})
	src, err := BuildGraceJoin(NewBatchSource(build), []int{0}, InnerJoin, 4,
		SpillConfig{Budget: 2048, Store: NewMemSpillStore()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Spilled == nil {
		t.Fatal("expected a spilled build")
	}
	const callers = 4
	errs := make([]error, callers)
	got := make([][]string, callers)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			outs, err := src.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, 2)
			if err != nil {
				errs[c] = err
				return
			}
			got[c] = make([]string, len(outs))
			for i, b := range outs {
				if b == nil {
					got[c][i] = emptyRender(probe[i])
				} else {
					got[c][i] = renderSpillBatch(b)
				}
			}
		}(c)
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		for i := range want {
			if got[c][i] != want[i] {
				t.Fatalf("caller %d morsel %d differs from in-memory:\ngot:\n%s\nwant:\n%s", c, i, got[c][i], want[i])
			}
		}
	}
}

// TestSpilledJoinDopInvariant pins the partition-wise fan-out's determinism
// contract directly at the exec layer: for the same build and probe, every
// (dop, nested-cap) combination must produce byte-identical outputs and join
// the same number of partition pairs — fanning the partitions out moves work
// between workers, never between partitions.
func TestSpilledJoinDopInvariant(t *testing.T) {
	build := buildSideBatch(600)
	probe := probeSideBatches(400, 5)
	var wantRender []string
	var wantParts int64
	for _, dop := range []int{1, 2, 4, 16} { // 16 > fanout: dop must clamp
		src, err := BuildGraceJoin(NewBatchSource(build), []int{0}, LeftOuterJoin, 4,
			SpillConfig{Budget: 2048, Store: NewMemSpillStore()}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if src.Spilled == nil {
			t.Fatal("expected a spilled build")
		}
		outs, err := src.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, dop)
		if err != nil {
			t.Fatalf("dop=%d: %v", dop, err)
		}
		render := make([]string, len(outs))
		for i, b := range outs {
			if b == nil {
				render[i] = emptyRender(probe[i])
			} else {
				render[i] = renderSpillBatch(b)
			}
		}
		parts := src.Spilled.PartitionsJoined()
		if parts == 0 {
			t.Fatalf("dop=%d: no partitions joined", dop)
		}
		if wantRender == nil {
			wantRender, wantParts = render, parts
			continue
		}
		for i := range wantRender {
			if render[i] != wantRender[i] {
				t.Fatalf("dop=%d morsel %d differs from dop=1:\ngot:\n%s\nwant:\n%s", dop, i, render[i], wantRender[i])
			}
		}
		if parts != wantParts {
			t.Fatalf("dop=%d: PartitionsJoined = %d, want %d", dop, parts, wantParts)
		}
	}
}

// TestGraceJoinUnderBudgetStaysInMemory pins that a build within budget
// returns an ordinary JoinTable and writes nothing to the store.
func TestGraceJoinUnderBudgetStaysInMemory(t *testing.T) {
	build := buildSideBatch(50)
	store := NewMemSpillStore()
	src, err := BuildGraceJoin(NewBatchSource(build), []int{0}, InnerJoin, 2,
		SpillConfig{Budget: 1 << 20, Store: store}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Table == nil || src.Spilled != nil {
		t.Fatalf("under-budget build spilled")
	}
	if store.Count() != 0 {
		t.Fatalf("under-budget build wrote %d spill files", store.Count())
	}
}

// TestGraceJoinSpillWriteFailure injects a failing spill write at several
// points of the pipeline (build partitioning, probe partitioning, partition
// repartitioning) and requires a clean error — no panic, no partial result —
// with the spill accounting reflecting only the writes that actually became
// durable: SpillBytes must equal the bytes sitting in the store after the
// failure, never the bytes attempted.
func TestGraceJoinSpillWriteFailure(t *testing.T) {
	build := buildSideBatch(600)
	probe := probeSideBatches(400, 4)
	for _, failAt := range []int{1, 2, 5, 9, 14} {
		store := NewMemSpillStore()
		store.FailPut = failAt
		src, err := BuildGraceJoin(NewBatchSource(build), []int{0}, InnerJoin, 2,
			SpillConfig{Budget: 2048, Store: store}, nil)
		if err == nil {
			// The build survived (failure lands on the probe side).
			if src.Spilled == nil {
				t.Fatalf("failAt=%d: expected a spilled build", failAt)
			}
			_, err = src.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, 4)
		}
		if err == nil {
			t.Fatalf("failAt=%d: injected put failure surfaced no error", failAt)
		}
		if !strings.Contains(err.Error(), "spill write") {
			t.Fatalf("failAt=%d: error does not name the spill write: %v", failAt, err)
		}
		if src != nil && src.Spilled != nil {
			if got, durable := src.Spilled.SpillBytes(), store.TotalBytes(); got != durable {
				t.Fatalf("failAt=%d: SpillBytes = %d, but only %d bytes are durable in the store", failAt, got, durable)
			}
		}
	}
}

// TestSpilledJoinRetryAfterWriteFailure pins the retry path of the shared
// build namespace: a JoinBatches call that dies on a failed spill write
// (possibly mid build-side repartition, leaving sub-partition files behind)
// must be retryable on the same SpilledJoin — the retry rewrites identical
// bytes to identical names, produces the in-memory reference output, and
// SpillBytes still equals the bytes resident in the store (rewrites are
// accounted once, not per attempt).
func TestSpilledJoinRetryAfterWriteFailure(t *testing.T) {
	// A skewed build forces recursive repartitioning inside JoinBatches.
	schema := colfile.Schema{
		{Name: "k", Type: colfile.Int64},
		{Name: "tag", Type: colfile.String},
	}
	mkBuild := func() *colfile.Batch {
		b := colfile.NewBatch(schema)
		for i := 0; i < 800; i++ {
			k := int64(7)
			if i%10 == 0 {
				k = int64(i)
			}
			b.Cols[0].AppendInt(k)
			b.Cols[1].AppendStr(fmt.Sprintf("t%04d", i))
		}
		return b
	}
	probe := probeSideBatches(120, 3)
	want := inMemoryReference(t, mkBuild(), probe, InnerJoin, []int{0}, []int{0})
	cfg := func(store *MemSpillStore) SpillConfig { return SpillConfig{Budget: 1024, Store: store} }

	// Learn the put schedule from a clean run so the sweep can aim failures
	// after the build spill, inside JoinBatches (probe partitioning and the
	// recursive build repartition).
	clean := NewMemSpillStore()
	srcClean, err := BuildGraceJoin(NewBatchSource(mkBuild()), []int{0}, InnerJoin, 1, cfg(clean), nil)
	if err != nil {
		t.Fatal(err)
	}
	buildPuts := clean.puts
	if _, err := srcClean.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, 1); err != nil {
		t.Fatal(err)
	}
	joinPuts := clean.puts - buildPuts
	if joinPuts < 4 {
		t.Fatalf("only %d puts inside JoinBatches; cannot aim the sweep", joinPuts)
	}

	for _, frac := range []int{4, 2, 3} { // early, middle, late within JoinBatches
		store := NewMemSpillStore()
		src, err := BuildGraceJoin(NewBatchSource(mkBuild()), []int{0}, InnerJoin, 1, cfg(store), nil)
		if err != nil {
			t.Fatal(err)
		}
		store.FailPut = buildPuts + joinPuts*(frac-1)/frac + 1
		if _, err := src.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, 1); err == nil {
			t.Fatalf("frac=%d: injected put failure surfaced no error", frac)
		}
		outs, err := src.Spilled.JoinBatches(probe, []int{0}, probe[0].Schema, 1)
		if err != nil {
			t.Fatalf("frac=%d: retry after failure: %v", frac, err)
		}
		for i, b := range outs {
			got := emptyRender(probe[i])
			if b != nil {
				got = renderSpillBatch(b)
			}
			if got != want[i] {
				t.Fatalf("frac=%d morsel %d: retry differs from in-memory:\ngot:\n%s\nwant:\n%s", frac, i, got, want[i])
			}
		}
		if got, durable := src.Spilled.SpillBytes(), store.TotalBytes(); got != durable {
			t.Fatalf("frac=%d: after retry SpillBytes = %d, store holds %d bytes (rewrites double-counted?)", frac, got, durable)
		}
	}
}

// TestSpilledProbeOperator runs the serial executor's SpilledProbe and
// compares against streaming the same input through an in-memory Probe.
func TestSpilledProbeOperator(t *testing.T) {
	build := buildSideBatch(500)
	probe := probeSideBatches(300, 1)
	want := inMemoryReference(t, build, probe, LeftOuterJoin, []int{0}, []int{0})
	src, err := BuildGraceJoin(NewBatchSource(build), []int{0}, LeftOuterJoin, 2,
		SpillConfig{Budget: 2048, Store: NewMemSpillStore()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if src.Spilled == nil {
		t.Fatal("expected a spilled build")
	}
	got, err := Collect(&SpilledProbe{In: NewBatchSource(probe[0]), Join: src.Spilled, LeftKeys: []int{0}})
	if err != nil {
		t.Fatal(err)
	}
	if renderSpillBatch(got) != want[0] {
		t.Fatalf("SpilledProbe differs from in-memory probe:\ngot:\n%s\nwant:\n%s", renderSpillBatch(got), want[0])
	}
}
