// Typed vectorized kernels: the batch-at-a-time execution layer compiled
// expression programs (prog.go) are assembled from. One kernel per
// (operator, type) pair, each operating directly on colfile.Vec payload
// slices with no per-value boxing or appends.
//
// The kernel contract is normative in docs/VECTORIZATION.md; the short form:
//
//   - A kernel computes out[i] for every lane i in the selection (sel, a
//     strictly ascending list of physical positions; nil means all lanes
//     [0, n)). Lanes outside the selection are unspecified and must never be
//     read downstream.
//   - Inputs and output are position-aligned: out has the same physical
//     length n as the inputs (the runner pre-sizes it with Vec.ResetLen, so
//     kernels never append or allocate in steady state).
//   - NULLs: unless documented otherwise a kernel is NULL-propagating — an
//     output lane is NULL iff any input lane it read is NULL (the engine's
//     collapsed three-valued logic, identical to the scalar reference
//     Expr.Eval). Value slots of NULL lanes hold unspecified values that
//     faulting kernels (division) must not trap on.
//   - Faulting kernels (integer/float division, modulo) check selected,
//     non-NULL lanes only, and return the same error strings the scalar
//     reference produces.
//   - out never aliases an input vector; l and r may alias each other.
package exec

//polaris:kernelfile the kernel layer itself: every loop here runs behind the sel-translation boundary the contract above defines

import (
	"cmp"

	"polaris/internal/colfile"
)

// kernelFn is one compiled kernel: evaluate l (and r, nil for unary kernels)
// into out at the selected lanes.
type kernelFn func(l, r, out *colfile.Vec, sel []int) error

// binOp is the zero-size operator plugged into generic kernels; generics
// monomorphize over the concrete struct so apply inlines into the lane loop.
type binOp[T, R any] interface{ apply(a, b T) R }

type (
	opEq[T comparable]  struct{}
	opNe[T comparable]  struct{}
	opLt[T cmp.Ordered] struct{}
	opLe[T cmp.Ordered] struct{}
	opGt[T cmp.Ordered] struct{}
	opGe[T cmp.Ordered] struct{}
)

func (opEq[T]) apply(a, b T) bool { return a == b }
func (opNe[T]) apply(a, b T) bool { return a != b }
func (opLt[T]) apply(a, b T) bool { return a < b }
func (opLe[T]) apply(a, b T) bool { return a <= b }
func (opGt[T]) apply(a, b T) bool { return a > b }
func (opGe[T]) apply(a, b T) bool { return a >= b }

type (
	opAdd[T int64 | float64 | string] struct{}
	opSub[T int64 | float64]          struct{}
	opMul[T int64 | float64]          struct{}
)

func (opAdd[T]) apply(a, b T) T { return a + b }
func (opSub[T]) apply(a, b T) T { return a - b }
func (opMul[T]) apply(a, b T) T { return a * b }

// unionNulls installs out's NULL bitmap as the lane-wise union of l's and
// r's (r may be nil). When neither input carries a bitmap, out keeps none —
// the fast path.
func unionNulls(l, r, out *colfile.Vec, sel []int, n int) {
	rHas := r != nil && r.HasNulls()
	if !l.HasNulls() && !rHas {
		return // ResetLen already cleared out.Nulls
	}
	mask := out.NullScratch(n)
	if sel == nil {
		for i := 0; i < n; i++ {
			mask[i] = l.IsNull(i) || (rHas && r.Nulls[i])
		}
		return
	}
	for _, i := range sel {
		mask[i] = l.IsNull(i) || (rHas && r.Nulls[i])
	}
}

// cmpKernel builds a comparison kernel over payload accessor vals and
// operator O: Bool output, NULL-propagating.
func cmpKernel[T any, O binOp[T, bool]](vals func(*colfile.Vec) []T) kernelFn {
	var op O
	return func(l, r, out *colfile.Vec, sel []int) error {
		n := len(out.Bools)
		ls, rs, ob := vals(l), vals(r), out.Bools
		if sel == nil {
			for i := 0; i < n; i++ {
				ob[i] = op.apply(ls[i], rs[i])
			}
		} else {
			for _, i := range sel {
				ob[i] = op.apply(ls[i], rs[i])
			}
		}
		unionNulls(l, r, out, sel, n)
		return nil
	}
}

// arithKernel builds a non-faulting arithmetic kernel (add/sub/mul, string
// concatenation): same-type output, NULL-propagating. NULL lanes hold the
// zero value on both sides, so computing them is safe and branch-free.
func arithKernel[T any, O binOp[T, T]](vals func(*colfile.Vec) []T) kernelFn {
	var op O
	return func(l, r, out *colfile.Vec, sel []int) error {
		os := vals(out)
		n := len(os)
		ls, rs := vals(l), vals(r)
		if sel == nil {
			for i := 0; i < n; i++ {
				os[i] = op.apply(ls[i], rs[i])
			}
		} else {
			for _, i := range sel {
				os[i] = op.apply(ls[i], rs[i])
			}
		}
		unionNulls(l, r, out, sel, n)
		return nil
	}
}

func intVals(v *colfile.Vec) []int64     { return v.Ints }
func floatVals(v *colfile.Vec) []float64 { return v.Floats }
func strVals(v *colfile.Vec) []string    { return v.Strs }
func boolVals(v *colfile.Vec) []bool     { return v.Bools }

// boolCmpKernel compares Bool lanes with the scalar reference's ordering
// (false < true, via b2i).
func boolCmpKernel(kind BinKind) kernelFn {
	return func(l, r, out *colfile.Vec, sel []int) error {
		n := len(out.Bools)
		ls, rs, ob := l.Bools, r.Bools, out.Bools
		body := func(i int) {
			ob[i] = cmpToBool(kind, cmpOrd(b2i(ls[i]), b2i(rs[i])))
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				body(i)
			}
		} else {
			for _, i := range sel {
				body(i)
			}
		}
		unionNulls(l, r, out, sel, n)
		return nil
	}
}

// divModKernel is the faulting integer division/modulo kernel: it skips NULL
// lanes (a NULL divisor must not trap) and errors on a zero divisor with the
// scalar reference's message.
func divModKernel(mod bool) kernelFn {
	return func(l, r, out *colfile.Vec, sel []int) error {
		os := out.Ints
		n := len(os)
		ls, rs := l.Ints, r.Ints
		unionNulls(l, r, out, sel, n)
		body := func(i int) error {
			if out.IsNull(i) {
				return nil
			}
			if rs[i] == 0 {
				if mod {
					return errModZero
				}
				return errDivZero
			}
			if mod {
				os[i] = ls[i] % rs[i]
			} else {
				os[i] = ls[i] / rs[i]
			}
			return nil
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if err := body(i); err != nil {
					return err
				}
			}
			return nil
		}
		for _, i := range sel {
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	}
}

// floatDivKernel is the faulting float division kernel — the scalar
// reference errors on a zero divisor rather than producing ±Inf, and the
// kernel preserves that.
func floatDivKernel() kernelFn {
	return func(l, r, out *colfile.Vec, sel []int) error {
		os := out.Floats
		n := len(os)
		ls, rs := l.Floats, r.Floats
		unionNulls(l, r, out, sel, n)
		body := func(i int) error {
			if out.IsNull(i) {
				return nil
			}
			if rs[i] == 0 {
				return errFloatDivZero
			}
			os[i] = ls[i] / rs[i]
			return nil
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				if err := body(i); err != nil {
					return err
				}
			}
			return nil
		}
		for _, i := range sel {
			if err := body(i); err != nil {
				return err
			}
		}
		return nil
	}
}

// logicalKernel is AND/OR under the engine's collapsed NULL rule: any NULL
// input lane yields NULL (identical to the scalar reference — no
// three-valued short-circuit).
func logicalKernel(kind BinKind) kernelFn {
	and := kind == OpAnd
	return func(l, r, out *colfile.Vec, sel []int) error {
		n := len(out.Bools)
		ls, rs, ob := l.Bools, r.Bools, out.Bools
		if sel == nil {
			for i := 0; i < n; i++ {
				if and {
					ob[i] = ls[i] && rs[i]
				} else {
					ob[i] = ls[i] || rs[i]
				}
			}
		} else {
			for _, i := range sel {
				if and {
					ob[i] = ls[i] && rs[i]
				} else {
					ob[i] = ls[i] || rs[i]
				}
			}
		}
		unionNulls(l, r, out, sel, n)
		return nil
	}
}

// notKernel negates Bool lanes, NULL-propagating.
func notKernel(l, _, out *colfile.Vec, sel []int) error {
	n := len(out.Bools)
	ls, ob := l.Bools, out.Bools
	if sel == nil {
		for i := 0; i < n; i++ {
			ob[i] = !ls[i]
		}
	} else {
		for _, i := range sel {
			ob[i] = !ls[i]
		}
	}
	unionNulls(l, nil, out, sel, n)
	return nil
}

// isNullKernel tests lanes for NULL; its output is never NULL itself.
func isNullKernel(negate bool) kernelFn {
	return func(l, _, out *colfile.Vec, sel []int) error {
		n := len(out.Bools)
		ob := out.Bools
		if sel == nil {
			for i := 0; i < n; i++ {
				ob[i] = l.IsNull(i) != negate
			}
		} else {
			for _, i := range sel {
				ob[i] = l.IsNull(i) != negate
			}
		}
		return nil
	}
}

// castFloatKernel coerces a lane to float64 with the scalar reference's numAt
// semantics: Int64 converts by value, Float64 passes through, any other type
// coerces to 0 (numAt's ok flag is ignored by the scalar arithmetic path, so
// the kernel reproduces that too). NULL-propagating.
func castFloatKernel(from colfile.DataType) kernelFn {
	return func(l, _, out *colfile.Vec, sel []int) error {
		os := out.Floats
		n := len(os)
		body := func(i int) {
			switch from {
			case colfile.Int64:
				os[i] = float64(l.Ints[i])
			case colfile.Float64:
				os[i] = l.Floats[i]
			default:
				os[i] = 0
			}
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				body(i)
			}
		} else {
			for _, i := range sel {
				body(i)
			}
		}
		unionNulls(l, nil, out, sel, n)
		return nil
	}
}

// likeKernel matches String lanes against a % / _ pattern with the
// allocation-free greedy matcher (equivalent to the scalar reference's
// memoized matcher — pinned by tests and FuzzKernelEquivalence).
// NULL-propagating.
func likeKernel(pattern string) kernelFn {
	return func(l, _, out *colfile.Vec, sel []int) error {
		n := len(out.Bools)
		ls, ob := l.Strs, out.Bools
		if sel == nil {
			for i := 0; i < n; i++ {
				ob[i] = likeMatchIter(ls[i], pattern)
			}
		} else {
			for _, i := range sel {
				ob[i] = likeMatchIter(ls[i], pattern)
			}
		}
		unionNulls(l, nil, out, sel, n)
		return nil
	}
}

// likeMatchIter is the kernel-side LIKE matcher: the classic two-pointer
// greedy wildcard walk — % backtracks by advancing the last star's match
// start — with no memo map, so matching allocates nothing per lane.
func likeMatchIter(s, pat string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si, pi = ss, star+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// inListKernel builds the typed membership kernel: the literal list is
// hashed into a typed set at compile time (values whose type cannot occur in
// the column are dropped — they could never compare equal, matching the
// scalar reference's boxed-map miss). NULL-propagating; negate flips the
// result for non-NULL lanes.
func inListKernel[T comparable](vals func(*colfile.Vec) []T, set map[T]struct{}, negate bool) kernelFn {
	return func(l, _, out *colfile.Vec, sel []int) error {
		n := len(out.Bools)
		ls, ob := vals(l), out.Bools
		body := func(i int) {
			_, ok := set[ls[i]]
			ob[i] = ok != negate
		}
		if sel == nil {
			for i := 0; i < n; i++ {
				body(i)
			}
		} else {
			for _, i := range sel {
				body(i)
			}
		}
		unionNulls(l, nil, out, sel, n)
		return nil
	}
}

// cmpKernelFor returns the comparison kernel for one (operator, type) pair;
// both operands must already share the type (the compiler inserts float casts
// for mixed numeric comparisons).
func cmpKernelFor(kind BinKind, t colfile.DataType) kernelFn {
	switch t {
	case colfile.Int64:
		return orderedCmp[int64](kind, intVals)
	case colfile.Float64:
		return orderedCmp[float64](kind, floatVals)
	case colfile.String:
		return orderedCmp[string](kind, strVals)
	case colfile.Bool:
		return boolCmpKernel(kind)
	}
	return nil
}

func orderedCmp[T cmp.Ordered](kind BinKind, vals func(*colfile.Vec) []T) kernelFn {
	switch kind {
	case OpEq:
		return cmpKernel[T, opEq[T]](vals)
	case OpNe:
		return cmpKernel[T, opNe[T]](vals)
	case OpLt:
		return cmpKernel[T, opLt[T]](vals)
	case OpLe:
		return cmpKernel[T, opLe[T]](vals)
	case OpGt:
		return cmpKernel[T, opGt[T]](vals)
	case OpGe:
		return cmpKernel[T, opGe[T]](vals)
	}
	return nil
}

// arithKernelFor returns the arithmetic kernel for one (operator, output
// type) pair, or nil when the pair has no kernel (the compiler turns that
// into the scalar reference's error).
func arithKernelFor(kind BinKind, t colfile.DataType) kernelFn {
	switch t {
	case colfile.Int64:
		switch kind {
		case OpAdd:
			return arithKernel[int64, opAdd[int64]](intVals)
		case OpSub:
			return arithKernel[int64, opSub[int64]](intVals)
		case OpMul:
			return arithKernel[int64, opMul[int64]](intVals)
		case OpDiv:
			return divModKernel(false)
		case OpMod:
			return divModKernel(true)
		}
	case colfile.Float64:
		switch kind {
		case OpAdd:
			return arithKernel[float64, opAdd[float64]](floatVals)
		case OpSub:
			return arithKernel[float64, opSub[float64]](floatVals)
		case OpMul:
			return arithKernel[float64, opMul[float64]](floatVals)
		case OpDiv:
			return floatDivKernel()
		}
	case colfile.String:
		if kind == OpAdd {
			return arithKernel[string, opAdd[string]](strVals)
		}
	}
	return nil
}
