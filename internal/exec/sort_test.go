package exec

import (
	"fmt"
	"testing"

	"polaris/internal/colfile"
)

// refCompare is an independent reference for the ORDER BY comparison: NULLs
// first ascending (last descending), values by type order. The encoded
// sort-key path must agree with it on every pair.
func refCompare(b *colfile.Batch, keys []SortKey, i, j int) int {
	for _, k := range keys {
		v := b.Cols[k.Col]
		var c int
		in, jn := v.IsNull(i), v.IsNull(j)
		switch {
		case in && jn:
			c = 0
		case in:
			c = -1
		case jn:
			c = 1
		default:
			switch v.Type {
			case colfile.Int64:
				c = cmpOrd(v.Ints[i], v.Ints[j])
			case colfile.Float64:
				c = cmpOrd(v.Floats[i], v.Floats[j])
			case colfile.String:
				switch {
				case v.Strs[i] < v.Strs[j]:
					c = -1
				case v.Strs[i] > v.Strs[j]:
					c = 1
				}
			case colfile.Bool:
				c = cmpOrd(b2i(v.Bools[i]), b2i(v.Bools[j]))
			}
		}
		if c != 0 {
			if k.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}

// mixedBatch builds a batch exercising every sort hazard: NULLs in every
// column, duplicate keys, negative ints and floats, strings with embedded
// NUL bytes and prefix relationships.
func mixedBatch(t *testing.T) *colfile.Batch {
	t.Helper()
	schema := colfile.Schema{
		{Name: "id", Type: colfile.Int64},
		{Name: "i", Type: colfile.Int64},
		{Name: "f", Type: colfile.Float64},
		{Name: "s", Type: colfile.String},
		{Name: "b", Type: colfile.Bool},
	}
	b := colfile.NewBatch(schema)
	ints := []any{int64(3), nil, int64(-7), int64(3), int64(0), nil, int64(42), int64(-7), int64(3), int64(1 << 40)}
	floats := []any{1.5, -2.25, nil, 1.5, 0.0, 0.0, nil, 3.75, -1e300, 2.5}
	strs := []any{"b", "ab", "a\x00b", nil, "a", "", "a\x00", "ab", nil, "b"}
	bools := []any{true, false, nil, true, false, true, nil, false, true, false}
	for r := 0; r < len(ints); r++ {
		if err := b.AppendRow(int64(r), ints[r], floats[r], strs[r], bools[r]); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func sortKeyVariants() [][]SortKey {
	return [][]SortKey{
		{{Col: 1}},
		{{Col: 1, Desc: true}},
		{{Col: 3}},
		{{Col: 3, Desc: true}},
		{{Col: 2}, {Col: 4, Desc: true}},
		{{Col: 1, Desc: true}, {Col: 3}, {Col: 2, Desc: true}},
		{{Col: 4}, {Col: 1}},
	}
}

func TestSortAgreesWithReferenceComparator(t *testing.T) {
	b := mixedBatch(t)
	for ki, keys := range sortKeyVariants() {
		// Every pair must order identically under encoded keys and reference.
		ek := encodeSortKeys(b, keys)
		for i := 0; i < b.NumRows(); i++ {
			for j := 0; j < b.NumRows(); j++ {
				want := refCompare(b, keys, i, j)
				got := bytesCompareSign(ek.key(i), ek.key(j))
				if got != want {
					t.Fatalf("keys %d: rows %d,%d: encoded cmp %d, reference %d (%v vs %v)",
						ki, i, j, got, want, b.Row(i), b.Row(j))
				}
			}
		}
		// And the sorted batch must be the stable reference order.
		out, err := Collect(&Sort{In: NewBatchSource(b), Keys: keys})
		if err != nil {
			t.Fatal(err)
		}
		for r := 1; r < out.NumRows(); r++ {
			c := refCompare(out, keys, r-1, r)
			if c > 0 {
				t.Fatalf("keys %d: row %d out of order: %v after %v", ki, r, out.Row(r), out.Row(r-1))
			}
			if c == 0 && out.Cols[0].Ints[r-1] > out.Cols[0].Ints[r] {
				t.Fatalf("keys %d: tie not stable at row %d: id %d after %d",
					ki, r, out.Cols[0].Ints[r], out.Cols[0].Ints[r-1])
			}
		}
	}
}

func bytesCompareSign(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	default:
		return 0
	}
}

// runSplits partitions the batch's rows into consecutive runs, standing in
// for morsel decompositions of varying granularity.
func runSplits(b *colfile.Batch, parts int) []*colfile.Batch {
	n := b.NumRows()
	per := (n + parts - 1) / parts
	var runs []*colfile.Batch
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		runs = append(runs, sliceBatch(b, lo, hi))
	}
	return runs
}

func TestMergeRunsIdenticalToSerialSortAcrossSplits(t *testing.T) {
	b := mixedBatch(t)
	for ki, keys := range sortKeyVariants() {
		serial, err := Collect(&Sort{In: NewBatchSource(b), Keys: keys})
		if err != nil {
			t.Fatal(err)
		}
		want := renderBatch(t, serial)
		for _, parts := range []int{1, 2, 3, 5, 10, 25} {
			var runs []*colfile.Batch
			for _, piece := range runSplits(b, parts) {
				run, err := Collect(&SortRuns{In: NewBatchSource(piece), Keys: keys})
				if err != nil {
					t.Fatal(err)
				}
				runs = append(runs, run)
			}
			merged, err := Collect(NewMergeRuns(b.Schema, runs, keys, -1))
			if err != nil {
				t.Fatal(err)
			}
			if got := renderBatch(t, merged); got != want {
				t.Fatalf("keys %d, %d runs: merged differs from serial sort:\ngot:\n%s\nwant:\n%s",
					ki, parts, got, want)
			}
		}
	}
}

// TestMergeRunsAllEqualKeysKeepsMorselOrder pins the tie rule: with every
// sort key equal, the merged output must be the runs' concatenation in run
// (= morsel) order — the same order a serial stable sort would keep.
func TestMergeRunsAllEqualKeysKeepsMorselOrder(t *testing.T) {
	schema := colfile.Schema{
		{Name: "id", Type: colfile.Int64},
		{Name: "k", Type: colfile.Int64},
	}
	b := colfile.NewBatch(schema)
	for r := 0; r < 97; r++ {
		_ = b.AppendRow(int64(r), int64(7))
	}
	keys := []SortKey{{Col: 1}, {Col: 1, Desc: true}}
	for _, parts := range []int{1, 4, 13} {
		var runs []*colfile.Batch
		for _, piece := range runSplits(b, parts) {
			run, err := Collect(&SortRuns{In: NewBatchSource(piece), Keys: keys})
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, run)
		}
		merged, err := Collect(NewMergeRuns(schema, runs, keys, -1))
		if err != nil {
			t.Fatal(err)
		}
		if merged.NumRows() != 97 {
			t.Fatalf("parts=%d: rows = %d", parts, merged.NumRows())
		}
		for r := 0; r < merged.NumRows(); r++ {
			if merged.Cols[0].Ints[r] != int64(r) {
				t.Fatalf("parts=%d: row %d has id %d; tie order broken", parts, r, merged.Cols[0].Ints[r])
			}
		}
	}
}

func TestTopNMatchesSortPrefix(t *testing.T) {
	b := mixedBatch(t)
	rows := int64(b.NumRows())
	for ki, keys := range sortKeyVariants() {
		serial, err := Collect(&Sort{In: NewBatchSource(b), Keys: keys})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int64{0, 1, 3, rows - 1, rows, rows + 10} {
			top, err := Collect(&TopN{In: NewBatchSource(b), Keys: keys, N: n})
			if err != nil {
				t.Fatal(err)
			}
			wantRows := n
			if wantRows > rows {
				wantRows = rows
			}
			if int64(top.NumRows()) != wantRows {
				t.Fatalf("keys %d, N=%d: rows = %d, want %d", ki, n, top.NumRows(), wantRows)
			}
			want := renderBatch(t, sliceBatch(serial, 0, int(wantRows)))
			if got := renderBatch(t, top); got != want {
				t.Fatalf("keys %d, N=%d: top-N differs from sort prefix:\ngot:\n%s\nwant:\n%s",
					ki, n, got, want)
			}
		}
	}
}

// TestTopNBoundedStoreCompaction pushes far more rows than the compaction
// threshold through a tiny TopN in adversarial (descending) order, so nearly
// every row is admitted then evicted — exercising the store rebuild.
func TestTopNBoundedStoreCompaction(t *testing.T) {
	schema := colfile.Schema{{Name: "v", Type: colfile.Int64}, {Name: "id", Type: colfile.Int64}}
	const rows = 3*DefaultBatchSize + 100
	src := colfile.NewBatch(schema)
	for r := 0; r < rows; r++ {
		_ = src.AppendRow(int64(rows-r), int64(r))
	}
	top, err := Collect(&TopN{In: NewBatchSource(src), Keys: []SortKey{{Col: 0}}, N: 5})
	if err != nil {
		t.Fatal(err)
	}
	if top.NumRows() != 5 {
		t.Fatalf("rows = %d", top.NumRows())
	}
	for r := 0; r < 5; r++ {
		if top.Cols[0].Ints[r] != int64(r+1) {
			t.Fatalf("row %d: v = %d, want %d", r, top.Cols[0].Ints[r], r+1)
		}
	}
}

func TestMergeRunsEarlyCutoff(t *testing.T) {
	b := mixedBatch(t)
	keys := []SortKey{{Col: 1}, {Col: 3, Desc: true}}
	serial, err := Collect(&Sort{In: NewBatchSource(b), Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	var runs []*colfile.Batch
	for _, piece := range runSplits(b, 4) {
		run, err := Collect(&SortRuns{In: NewBatchSource(piece), Keys: keys})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	for _, limit := range []int64{0, 1, 4, int64(b.NumRows()), int64(b.NumRows()) + 5} {
		merged, err := Collect(NewMergeRuns(b.Schema, runs, keys, limit))
		if err != nil {
			t.Fatal(err)
		}
		wantRows := limit
		if wantRows > int64(b.NumRows()) {
			wantRows = int64(b.NumRows())
		}
		if int64(merged.NumRows()) != wantRows {
			t.Fatalf("limit=%d: rows = %d, want %d", limit, merged.NumRows(), wantRows)
		}
		want := renderBatch(t, sliceBatch(serial, 0, int(wantRows)))
		if got := renderBatch(t, merged); got != want {
			t.Fatalf("limit=%d: cutoff prefix differs:\ngot:\n%s\nwant:\n%s", limit, got, want)
		}
	}
}

func TestSortFamilyEmptyInput(t *testing.T) {
	schema := colfile.Schema{{Name: "v", Type: colfile.Int64}}
	keys := []SortKey{{Col: 0}}
	empty := colfile.NewBatch(schema)

	for name, op := range map[string]Operator{
		"Sort":     &Sort{In: NewBatchSource(empty), Keys: keys},
		"SortRuns": &SortRuns{In: NewBatchSource(empty), Keys: keys},
		"TopN":     &TopN{In: NewBatchSource(empty), Keys: keys, N: 10},
	} {
		out, err := Collect(op)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.NumRows() != 0 {
			t.Fatalf("%s: rows = %d", name, out.NumRows())
		}
	}
	// MergeRuns over no runs (all morsels empty), nil entries included.
	out, err := Collect(NewMergeRuns(schema, []*colfile.Batch{nil, empty, nil}, keys, -1))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 0 {
		t.Fatalf("MergeRuns: rows = %d", out.NumRows())
	}
	if !out.Schema.Equal(schema) {
		t.Fatalf("MergeRuns empty schema = %v", out.Schema)
	}
}

// TestMergeRunsSingleAndManyRuns covers the loser-tree degenerate shapes:
// one run (k=1), two runs, and more runs than distinct keys.
func TestMergeRunsSingleAndManyRuns(t *testing.T) {
	schema := colfile.Schema{{Name: "v", Type: colfile.Int64}}
	keys := []SortKey{{Col: 0}}
	mk := func(vals ...int64) *colfile.Batch {
		b := colfile.NewBatch(schema)
		for _, v := range vals {
			_ = b.AppendRow(v)
		}
		return b
	}
	cases := []struct {
		runs []*colfile.Batch
		want []int64
	}{
		{[]*colfile.Batch{mk(1, 2, 3)}, []int64{1, 2, 3}},
		{[]*colfile.Batch{mk(2, 4), mk(1, 3, 5)}, []int64{1, 2, 3, 4, 5}},
		{[]*colfile.Batch{mk(1), mk(1), mk(1), mk(0), mk(2), mk(1), mk(1)}, []int64{0, 1, 1, 1, 1, 1, 2}},
	}
	for ci, c := range cases {
		out, err := Collect(NewMergeRuns(schema, c.runs, keys, -1))
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%v", out.Cols[0].Ints)
		if want := fmt.Sprintf("%v", c.want); got != want {
			t.Fatalf("case %d: merged %s, want %s", ci, got, want)
		}
	}
}

// TestParallelSortViaMorselsMatchesSerial runs the full parallel ORDER BY
// pipeline — morsel scan → sorted runs → k-way merge — against the serial
// Sort at several DOPs, full-sort and top-N, including a LIMIT exactly on a
// morsel boundary.
func TestParallelSortViaMorselsMatchesSerial(t *testing.T) {
	files := groupedFiles(t, 4, 200, 32)
	keys := []SortKey{{Col: 2, Desc: true}, {Col: 0}} // val DESC (ties), id ASC

	serialScan, err := NewScan(files, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Collect(&Sort{In: serialScan, Keys: keys})
	if err != nil {
		t.Fatal(err)
	}

	// 200-row files with 32-row groups: morsel boundaries fall at multiples
	// of 32 and at 200; limits probe below, on, and beyond boundaries.
	for _, limit := range []int64{-1, 0, 31, 32, 200, 799, 800, 900} {
		want := serial
		if limit >= 0 {
			n := limit
			if n > int64(serial.NumRows()) {
				n = int64(serial.NumRows())
			}
			want = sliceBatch(serial, 0, int(n))
		}
		wantStr := renderBatch(t, want)
		for _, dop := range []int{1, 2, 4, 8} {
			morsels, err := SplitMorsels(files, dop*4)
			if err != nil {
				t.Fatal(err)
			}
			batches, err := RunMorsels(morsels, dop, func(m Morsel) (Operator, error) {
				s, err := NewMorselScan(m, nil, nil, nil)
				if err != nil {
					return nil, err
				}
				if limit >= 0 {
					return &TopN{In: s, Keys: keys, N: limit}, nil
				}
				return &SortRuns{In: s, Keys: keys}, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			merged, err := Collect(NewMergeRuns(files[0].schema(t), batches, keys, limit))
			if err != nil {
				t.Fatal(err)
			}
			if got := renderBatch(t, merged); got != wantStr {
				t.Fatalf("dop=%d limit=%d: parallel sort differs from serial:\ngot:\n%s\nwant:\n%s",
					dop, limit, got, wantStr)
			}
		}
	}
}
