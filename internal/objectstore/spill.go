package objectstore

import (
	"errors"
	"strings"
)

// SpillPrefix is the root namespace for query-scoped spill files. It is
// disjoint from the durable "tables/" and "published/" namespaces, so storage
// garbage collection and format publishing never see spill traffic.
const SpillPrefix = "spill/"

// SpillDir is a query-scoped spill namespace over the store: the executor's
// grace hash-join writes overflow partitions through it, and the query owner
// calls Cleanup when the query finishes (success or failure). Because spill
// writes go through the same Put path as durable writes, they pay the same
// simulated latency and are subject to the same fault injection — a spilling
// join exercises the storage layer's failure model, not a side channel.
type SpillDir struct {
	store  *Store
	prefix string
}

// NewSpillDir creates a spill namespace rooted at SpillPrefix + id + "/".
// The id must be unique per query; the engine derives it from the owning
// transaction and a per-engine sequence.
func NewSpillDir(s *Store, id string) *SpillDir {
	return &SpillDir{store: s, prefix: SpillPrefix + id + "/"}
}

// Prefix returns the namespace's absolute blob prefix.
func (d *SpillDir) Prefix() string { return d.prefix }

// Put writes one spill file (name is relative to the namespace).
func (d *SpillDir) Put(name string, data []byte) error {
	return d.store.Put(d.prefix+name, data, 0)
}

// Get reads one spill file back.
func (d *SpillDir) Get(name string) ([]byte, error) {
	return d.store.Get(d.prefix + name)
}

// List returns the namespace-relative names of spill files with the given
// relative prefix, sorted.
func (d *SpillDir) List(prefix string) []string {
	names := d.store.List(d.prefix + prefix)
	for i, n := range names {
		names[i] = strings.TrimPrefix(n, d.prefix)
	}
	return names
}

// Count returns the number of files currently in the namespace.
func (d *SpillDir) Count() int { return len(d.store.List(d.prefix)) }

// Cleanup deletes every file in the namespace. It keeps deleting past
// individual failures and returns the errors joined, so a transient delete
// fault cannot strand the rest of the namespace.
func (d *SpillDir) Cleanup() error {
	var errs []error
	for _, name := range d.store.List(d.prefix) {
		if err := d.store.Delete(name); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
