// Package objectstore simulates the cloud object store (ADLS / OneLake) that
// Polaris disaggregates all state into. It implements the subset of the Azure
// Block Blob API the paper's transaction manager depends on:
//
//   - StageBlock uploads an identified block without making it visible.
//   - CommitBlockList atomically publishes a blob consisting of exactly the
//     listed blocks, in order; staged blocks not named in the list are
//     discarded (this is how Polaris drops the work of failed task attempts).
//   - Whole-blob Put/Get/Delete/List for data files and checkpoints.
//
// The store is in-process and thread-safe. A LatencyModel approximates cloud
// storage behaviour (per-operation base latency plus throughput-proportional
// transfer time) and a FaultInjector can return transient errors so the DCP's
// retry machinery is exercised the way real ADLS exercises it.
package objectstore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Common errors returned by the store.
var (
	ErrNotFound      = errors.New("objectstore: blob not found")
	ErrBlockNotFound = errors.New("objectstore: staged block not found")
	ErrAlreadyExists = errors.New("objectstore: blob already exists")
	ErrTransient     = errors.New("objectstore: transient storage error")
)

// BlobInfo describes a committed blob.
type BlobInfo struct {
	Name    string
	Size    int64
	Created time.Time
	// CreatorStamp is an opaque transaction timestamp recorded at creation;
	// garbage collection uses it to fence files of in-flight transactions
	// (paper Section 5.3).
	CreatorStamp int64
}

// Metrics counts operations against the store. All fields are monotonic.
type Metrics struct {
	Puts, Gets, Deletes, Lists  int64
	StagedBlocks, CommitsBlocks int64
	BytesWritten, BytesRead     int64
	TransientErrors             int64
}

type blob struct {
	data    []byte
	info    BlobInfo
	blocks  []string // committed block list, in order
	blkData map[string][]byte
}

// Store is an in-process object store with Block Blob semantics.
type Store struct {
	mu      sync.RWMutex
	blobs   map[string]*blob
	staged  map[string]map[string]stagedBlock // blobName -> blockID -> data
	latency *LatencyModel
	faults  *FaultInjector
	clock   func() time.Time
	metrics Metrics
}

type stagedBlock struct {
	data   []byte
	staged time.Time
}

// Option configures a Store.
type Option func(*Store)

// WithLatency attaches a latency model; nil disables simulated latency.
func WithLatency(m *LatencyModel) Option { return func(s *Store) { s.latency = m } }

// WithFaults attaches a fault injector; nil disables fault injection.
func WithFaults(f *FaultInjector) Option { return func(s *Store) { s.faults = f } }

// WithClock overrides the time source (tests).
func WithClock(now func() time.Time) Option { return func(s *Store) { s.clock = now } }

// New creates an empty store.
func New(opts ...Option) *Store {
	s := &Store{
		blobs:  make(map[string]*blob),
		staged: make(map[string]map[string]stagedBlock),
		clock:  time.Now,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

func (s *Store) now() time.Time { return s.clock() }

func (s *Store) simulate(op OpKind, bytes int) error {
	if s.faults != nil {
		if err := s.faults.maybeFail(op); err != nil {
			s.mu.Lock()
			s.metrics.TransientErrors++
			s.mu.Unlock()
			return err
		}
	}
	if s.latency != nil {
		s.latency.apply(op, bytes)
	}
	return nil
}

// Put atomically creates or replaces a whole blob.
func (s *Store) Put(name string, data []byte, creatorStamp int64) error {
	if err := s.simulate(OpPut, len(data)); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs[name] = &blob{
		data: cp,
		info: BlobInfo{Name: name, Size: int64(len(cp)), Created: s.now(), CreatorStamp: creatorStamp},
	}
	s.metrics.Puts++
	s.metrics.BytesWritten += int64(len(cp))
	return nil
}

// PutIfAbsent creates a blob only if it does not already exist.
func (s *Store) PutIfAbsent(name string, data []byte, creatorStamp int64) error {
	if err := s.simulate(OpPut, len(data)); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; ok {
		return fmt.Errorf("%w: %s", ErrAlreadyExists, name)
	}
	cp := append([]byte(nil), data...)
	s.blobs[name] = &blob{
		data: cp,
		info: BlobInfo{Name: name, Size: int64(len(cp)), Created: s.now(), CreatorStamp: creatorStamp},
	}
	s.metrics.Puts++
	s.metrics.BytesWritten += int64(len(cp))
	return nil
}

// Get returns a copy of the blob contents.
func (s *Store) Get(name string) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.blobs[name]
	var n int
	if ok {
		n = len(b.data)
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if err := s.simulate(OpGet, n); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.Gets++
	s.metrics.BytesRead += int64(n)
	s.mu.Unlock()
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok = s.blobs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return append([]byte(nil), b.data...), nil
}

// GetRange returns length bytes starting at offset. A negative length reads to
// the end. Reading past the end returns what is available.
func (s *Store) GetRange(name string, offset, length int64) ([]byte, error) {
	s.mu.RLock()
	b, ok := s.blobs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	s.mu.RLock()
	data := b.data
	if offset < 0 {
		offset = 0
	}
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	end := int64(len(data))
	if length >= 0 && offset+length < end {
		end = offset + length
	}
	out := append([]byte(nil), data[offset:end]...)
	s.mu.RUnlock()
	if err := s.simulate(OpGet, len(out)); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.metrics.Gets++
	s.metrics.BytesRead += int64(len(out))
	s.mu.Unlock()
	return out, nil
}

// Head returns blob metadata without reading its contents.
func (s *Store) Head(name string) (BlobInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[name]
	if !ok {
		return BlobInfo{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return b.info, nil
}

// Exists reports whether a committed blob exists.
func (s *Store) Exists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[name]
	return ok
}

// Delete removes a blob. Deleting a missing blob is an error so callers
// (garbage collection) can detect double-frees.
func (s *Store) Delete(name string) error {
	if err := s.simulate(OpDelete, 0); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	delete(s.blobs, name)
	s.metrics.Deletes++
	return nil
}

// List returns the names of committed blobs with the given prefix, sorted.
func (s *Store) List(prefix string) []string {
	s.mu.RLock()
	names := make([]string, 0, 16)
	for name := range s.blobs {
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
	}
	s.mu.RUnlock()
	_ = s.simulate(OpList, 0)
	s.mu.Lock()
	s.metrics.Lists++
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// ListInfo returns metadata for committed blobs with the given prefix, sorted
// by name.
func (s *Store) ListInfo(prefix string) []BlobInfo {
	s.mu.RLock()
	infos := make([]BlobInfo, 0, 16)
	for name, b := range s.blobs {
		if strings.HasPrefix(name, prefix) {
			infos = append(infos, b.info)
		}
	}
	s.mu.RUnlock()
	_ = s.simulate(OpList, 0)
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// StageBlock uploads a block for the named blob without making it visible.
// Block IDs must be unique per writer attempt; re-staging the same ID
// overwrites the staged payload, matching Azure semantics.
func (s *Store) StageBlock(blobName, blockID string, data []byte) error {
	if err := s.simulate(OpStage, len(data)); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.staged[blobName]
	if !ok {
		m = make(map[string]stagedBlock)
		s.staged[blobName] = m
	}
	m[blockID] = stagedBlock{data: cp, staged: s.now()}
	s.metrics.StagedBlocks++
	s.metrics.BytesWritten += int64(len(cp))
	return nil
}

// CommitBlockList atomically publishes the blob as the concatenation of the
// listed blocks, in order. Each listed ID may name either a staged block or a
// block already committed to this blob (Azure's "latest" semantics); this is
// what lets the SQL FE append a statement's new blocks to the previously
// committed list for multi-statement transactions (paper Section 3.2.3).
// All staged blocks for the blob that are not in the list are discarded.
func (s *Store) CommitBlockList(blobName string, blockIDs []string, creatorStamp int64) error {
	if err := s.simulate(OpCommit, 0); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	staged := s.staged[blobName]
	var committed map[string][]byte
	if b, ok := s.blobs[blobName]; ok {
		committed = b.blkData
	}
	newData := make([]byte, 0, 1024)
	newBlkData := make(map[string][]byte, len(blockIDs))
	for _, id := range blockIDs {
		if sb, ok := staged[id]; ok {
			newData = append(newData, sb.data...)
			newBlkData[id] = sb.data
			continue
		}
		if cb, ok := committed[id]; ok {
			newData = append(newData, cb...)
			newBlkData[id] = cb
			continue
		}
		return fmt.Errorf("%w: blob %s block %s", ErrBlockNotFound, blobName, id)
	}
	created := s.now()
	if prev, ok := s.blobs[blobName]; ok {
		created = prev.info.Created // keep original creation stamp for GC fencing
		if creatorStamp == 0 {
			creatorStamp = prev.info.CreatorStamp
		}
	}
	s.blobs[blobName] = &blob{
		data:    newData,
		info:    BlobInfo{Name: blobName, Size: int64(len(newData)), Created: created, CreatorStamp: creatorStamp},
		blocks:  append([]string(nil), blockIDs...),
		blkData: newBlkData,
	}
	delete(s.staged, blobName) // uncommitted blocks are discarded
	s.metrics.CommitsBlocks++
	return nil
}

// CommittedBlockList returns the IDs of the blocks that make up a committed
// blob, in order. Blobs written with Put report an empty list.
func (s *Store) CommittedBlockList(blobName string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.blobs[blobName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, blobName)
	}
	return append([]string(nil), b.blocks...), nil
}

// StagedBlockIDs returns the IDs of blocks staged but not yet committed for a
// blob, sorted. Used by tests and by garbage collection of abandoned writes.
func (s *Store) StagedBlockIDs(blobName string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.staged[blobName]))
	for id := range s.staged[blobName] {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DiscardStaged drops all uncommitted blocks for a blob (abort path).
func (s *Store) DiscardStaged(blobName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.staged, blobName)
}

// Snapshot of current metrics.
func (s *Store) Metrics() Metrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.metrics
}

// TotalSize returns the sum of committed blob sizes (storage footprint).
func (s *Store) TotalSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, b := range s.blobs {
		n += b.info.Size
	}
	return n
}

// Count returns the number of committed blobs.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}
