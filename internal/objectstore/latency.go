package objectstore

import (
	"math/rand"
	"sync"
	"time"
)

// OpKind identifies a storage operation class for latency and fault modeling.
type OpKind int

// Operation kinds.
const (
	OpPut OpKind = iota
	OpGet
	OpDelete
	OpList
	OpStage
	OpCommit
	opKinds
)

func (k OpKind) String() string {
	switch k {
	case OpPut:
		return "put"
	case OpGet:
		return "get"
	case OpDelete:
		return "delete"
	case OpList:
		return "list"
	case OpStage:
		return "stage"
	case OpCommit:
		return "commit"
	default:
		return "unknown"
	}
}

// LatencyModel approximates remote-storage timing: each operation pays a base
// latency plus a transfer time proportional to payload size. A Scale of 0
// disables sleeping entirely (pure accounting), which benches use to measure
// simulated rather than wall-clock time.
type LatencyModel struct {
	Base       [opKinds]time.Duration
	BytesPerNS float64 // throughput: bytes transferred per nanosecond
	Scale      float64 // multiplier on real sleeps; 0 = account only

	mu        sync.Mutex
	simulated time.Duration // accumulated simulated time
}

// DefaultLatency returns a model with cloud-object-store-shaped constants:
// ~2ms metadata ops, ~8ms first-byte for data ops, ~1 GiB/s transfer.
// Scale 0 means the model only accounts time; callers that want wall-clock
// realism can set Scale to 1.
func DefaultLatency() *LatencyModel {
	m := &LatencyModel{BytesPerNS: 1.0, Scale: 0}
	m.Base[OpPut] = 8 * time.Millisecond
	m.Base[OpGet] = 8 * time.Millisecond
	m.Base[OpDelete] = 2 * time.Millisecond
	m.Base[OpList] = 4 * time.Millisecond
	m.Base[OpStage] = 6 * time.Millisecond
	m.Base[OpCommit] = 10 * time.Millisecond
	return m
}

func (m *LatencyModel) apply(op OpKind, bytes int) {
	d := m.Base[op]
	if m.BytesPerNS > 0 && bytes > 0 {
		d += time.Duration(float64(bytes) / m.BytesPerNS)
	}
	m.mu.Lock()
	m.simulated += d
	m.mu.Unlock()
	if m.Scale > 0 {
		time.Sleep(time.Duration(float64(d) * m.Scale))
	}
}

// Simulated returns the total simulated time accumulated across operations.
func (m *LatencyModel) Simulated() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.simulated
}

// FaultInjector returns transient errors with a configured probability per
// operation kind. It is deterministic given its seed.
type FaultInjector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	prob   [opKinds]float64
	failIn [opKinds]int
}

// NewFaultInjector creates an injector with no failures configured.
func NewFaultInjector(seed int64) *FaultInjector {
	return &FaultInjector{rng: rand.New(rand.NewSource(seed))}
}

// FailNth arranges for the nth (1-based) subsequent operation of the given
// kind to fail with ErrTransient, once. The deterministic counterpart of
// SetProbability, for tests that need the failure to land mid-sequence —
// e.g. after some spill-partition writes have already succeeded.
func (f *FaultInjector) FailNth(op OpKind, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failIn[op] = n
}

// SetProbability sets the transient-failure probability for an operation kind.
func (f *FaultInjector) SetProbability(op OpKind, p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prob[op] = p
}

// SetAll sets the same probability for every operation kind.
func (f *FaultInjector) SetAll(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.prob {
		f.prob[i] = p
	}
}

func (f *FaultInjector) maybeFail(op OpKind) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failIn[op] > 0 {
		f.failIn[op]--
		if f.failIn[op] == 0 {
			return ErrTransient
		}
	}
	if p := f.prob[op]; p > 0 && f.rng.Float64() < p {
		return ErrTransient
	}
	return nil
}
