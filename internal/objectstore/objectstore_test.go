package objectstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := New()
	if err := s.Put("a/b.parquet", []byte("hello"), 7); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get("a/b.parquet")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q, want hello", got)
	}
	info, err := s.Head("a/b.parquet")
	if err != nil {
		t.Fatalf("Head: %v", err)
	}
	if info.Size != 5 || info.CreatorStamp != 7 {
		t.Fatalf("info = %+v", info)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Head("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Head err = %v, want ErrNotFound", err)
	}
}

func TestPutIfAbsent(t *testing.T) {
	s := New()
	if err := s.PutIfAbsent("x", []byte("1"), 0); err != nil {
		t.Fatalf("first PutIfAbsent: %v", err)
	}
	if err := s.PutIfAbsent("x", []byte("2"), 0); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("second PutIfAbsent err = %v, want ErrAlreadyExists", err)
	}
	got, _ := s.Get("x")
	if string(got) != "1" {
		t.Fatalf("blob overwritten: %q", got)
	}
}

func TestPutCopiesInput(t *testing.T) {
	s := New()
	buf := []byte("abc")
	if err := s.Put("k", buf, 0); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'z'
	got, _ := s.Get("k")
	if string(got) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	_ = s.Put("k", []byte("v"), 0)
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if s.Exists("k") {
		t.Fatal("blob still exists after delete")
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestListPrefix(t *testing.T) {
	s := New()
	for _, n := range []string{"t1/a", "t1/b", "t2/c", "t1x/d"} {
		_ = s.Put(n, []byte("x"), 0)
	}
	got := s.List("t1/")
	want := []string{"t1/a", "t1/b"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("List = %v, want %v", got, want)
	}
	infos := s.ListInfo("t1/")
	if len(infos) != 2 || infos[0].Name != "t1/a" {
		t.Fatalf("ListInfo = %v", infos)
	}
}

func TestGetRange(t *testing.T) {
	s := New()
	_ = s.Put("k", []byte("0123456789"), 0)
	cases := []struct {
		off, n int64
		want   string
	}{
		{0, 4, "0123"},
		{5, -1, "56789"},
		{8, 10, "89"},
		{100, 5, ""},
		{-3, 2, "01"},
	}
	for _, c := range cases {
		got, err := s.GetRange("k", c.off, c.n)
		if err != nil {
			t.Fatalf("GetRange(%d,%d): %v", c.off, c.n, err)
		}
		if string(got) != c.want {
			t.Fatalf("GetRange(%d,%d) = %q, want %q", c.off, c.n, got, c.want)
		}
	}
}

func TestBlockCommitPublishesOnlyListedBlocks(t *testing.T) {
	s := New()
	must(t, s.StageBlock("m.json", "b1", []byte("one,")))
	must(t, s.StageBlock("m.json", "b2", []byte("two,")))
	must(t, s.StageBlock("m.json", "orphan", []byte("LOST")))
	if s.Exists("m.json") {
		t.Fatal("blob visible before commit")
	}
	must(t, s.CommitBlockList("m.json", []string{"b1", "b2"}, 42))
	got, err := s.Get("m.json")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one,two," {
		t.Fatalf("content = %q", got)
	}
	if ids := s.StagedBlockIDs("m.json"); len(ids) != 0 {
		t.Fatalf("staged blocks survive commit: %v", ids)
	}
	if bytes.Contains(got, []byte("LOST")) {
		t.Fatal("orphan block leaked into committed blob")
	}
}

func TestBlockCommitOrderMatters(t *testing.T) {
	s := New()
	must(t, s.StageBlock("m", "a", []byte("A")))
	must(t, s.StageBlock("m", "b", []byte("B")))
	must(t, s.CommitBlockList("m", []string{"b", "a"}, 0))
	got, _ := s.Get("m")
	if string(got) != "BA" {
		t.Fatalf("content = %q, want BA", got)
	}
}

func TestBlockCommitAppendsCommittedBlocks(t *testing.T) {
	// Multi-statement transactions: the FE appends the new statement's blocks
	// to the previously committed list (paper 3.2.3).
	s := New()
	must(t, s.StageBlock("m", "s1b1", []byte("stmt1;")))
	must(t, s.CommitBlockList("m", []string{"s1b1"}, 0))
	must(t, s.StageBlock("m", "s2b1", []byte("stmt2;")))
	prev, err := s.CommittedBlockList("m")
	if err != nil {
		t.Fatal(err)
	}
	must(t, s.CommitBlockList("m", append(prev, "s2b1"), 0))
	got, _ := s.Get("m")
	if string(got) != "stmt1;stmt2;" {
		t.Fatalf("content = %q", got)
	}
	list, _ := s.CommittedBlockList("m")
	if len(list) != 2 || list[0] != "s1b1" || list[1] != "s2b1" {
		t.Fatalf("block list = %v", list)
	}
}

func TestCommitUnknownBlockFails(t *testing.T) {
	s := New()
	must(t, s.StageBlock("m", "a", []byte("A")))
	err := s.CommitBlockList("m", []string{"a", "ghost"}, 0)
	if !errors.Is(err, ErrBlockNotFound) {
		t.Fatalf("err = %v, want ErrBlockNotFound", err)
	}
	if s.Exists("m") {
		t.Fatal("failed commit must not publish the blob")
	}
}

func TestRestageOverwrites(t *testing.T) {
	s := New()
	must(t, s.StageBlock("m", "a", []byte("old")))
	must(t, s.StageBlock("m", "a", []byte("new")))
	must(t, s.CommitBlockList("m", []string{"a"}, 0))
	got, _ := s.Get("m")
	if string(got) != "new" {
		t.Fatalf("content = %q, want new", got)
	}
}

func TestDiscardStaged(t *testing.T) {
	s := New()
	must(t, s.StageBlock("m", "a", []byte("A")))
	s.DiscardStaged("m")
	if err := s.CommitBlockList("m", []string{"a"}, 0); !errors.Is(err, ErrBlockNotFound) {
		t.Fatalf("err = %v, want ErrBlockNotFound after discard", err)
	}
}

func TestTaskRetryScenario(t *testing.T) {
	// Paper 3.2.2: a failed task attempt's blocks are simply not included in
	// the final commit and are discarded by storage.
	s := New()
	// attempt 1 stages two blocks, then "fails"
	must(t, s.StageBlock("txn.manifest", "attempt1-b1", []byte("partial")))
	must(t, s.StageBlock("txn.manifest", "attempt1-b2", []byte("garbage")))
	// attempt 2 (retry on another node) stages fresh blocks
	must(t, s.StageBlock("txn.manifest", "attempt2-b1", []byte("add:file1;")))
	must(t, s.StageBlock("txn.manifest", "attempt2-b2", []byte("add:file2;")))
	must(t, s.CommitBlockList("txn.manifest", []string{"attempt2-b1", "attempt2-b2"}, 0))
	got, _ := s.Get("txn.manifest")
	if string(got) != "add:file1;add:file2;" {
		t.Fatalf("content = %q", got)
	}
}

func TestCreatorStampPreservedAcrossRecommit(t *testing.T) {
	s := New()
	must(t, s.StageBlock("m", "a", []byte("A")))
	must(t, s.CommitBlockList("m", []string{"a"}, 99))
	must(t, s.StageBlock("m", "b", []byte("B")))
	must(t, s.CommitBlockList("m", []string{"a", "b"}, 0)) // 0 = keep original
	info, _ := s.Head("m")
	if info.CreatorStamp != 99 {
		t.Fatalf("CreatorStamp = %d, want 99", info.CreatorStamp)
	}
}

func TestMetricsAccounting(t *testing.T) {
	s := New()
	_ = s.Put("a", make([]byte, 100), 0)
	_, _ = s.Get("a")
	_ = s.List("")
	m := s.Metrics()
	if m.Puts != 1 || m.Gets != 1 || m.Lists != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.BytesWritten != 100 || m.BytesRead != 100 {
		t.Fatalf("bytes = %+v", m)
	}
	if s.TotalSize() != 100 || s.Count() != 1 {
		t.Fatalf("TotalSize=%d Count=%d", s.TotalSize(), s.Count())
	}
}

func TestFaultInjection(t *testing.T) {
	f := NewFaultInjector(1)
	f.SetProbability(OpPut, 1.0)
	s := New(WithFaults(f))
	if err := s.Put("k", []byte("v"), 0); !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want ErrTransient", err)
	}
	if s.Exists("k") {
		t.Fatal("failed put must not create blob")
	}
	f.SetProbability(OpPut, 0)
	if err := s.Put("k", []byte("v"), 0); err != nil {
		t.Fatalf("put after clearing faults: %v", err)
	}
	if s.Metrics().TransientErrors != 1 {
		t.Fatalf("TransientErrors = %d", s.Metrics().TransientErrors)
	}
}

func TestFaultInjectorSetAll(t *testing.T) {
	f := NewFaultInjector(2)
	f.SetAll(1.0)
	s := New(WithFaults(f))
	if err := s.StageBlock("b", "x", nil); !errors.Is(err, ErrTransient) {
		t.Fatalf("stage err = %v", err)
	}
	if _, err := s.Get("b"); !errors.Is(err, ErrNotFound) {
		// Get checks existence before simulating; missing blob wins.
		t.Fatalf("get err = %v", err)
	}
}

func TestLatencyAccounting(t *testing.T) {
	m := DefaultLatency()
	s := New(WithLatency(m))
	_ = s.Put("k", make([]byte, 1000), 0)
	if m.Simulated() < 8*time.Millisecond {
		t.Fatalf("simulated latency = %v, want >= base", m.Simulated())
	}
}

func TestClockInjection(t *testing.T) {
	now := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	s := New(WithClock(func() time.Time { return now }))
	_ = s.Put("k", []byte("v"), 0)
	info, _ := s.Head("k")
	if !info.Created.Equal(now) {
		t.Fatalf("Created = %v, want %v", info.Created, now)
	}
}

func TestConcurrentStageAndCommit(t *testing.T) {
	// Many writers staging blocks to the same manifest blob in parallel, like
	// BE nodes writing a shared transaction manifest.
	s := New()
	const writers = 16
	var wg sync.WaitGroup
	ids := make([]string, writers)
	for i := 0; i < writers; i++ {
		ids[i] = fmt.Sprintf("w%02d", i)
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if err := s.StageBlock("shared", id, []byte(id+";")); err != nil {
				t.Errorf("stage %s: %v", id, err)
			}
		}(ids[i])
	}
	wg.Wait()
	must(t, s.CommitBlockList("shared", ids, 0))
	got, _ := s.Get("shared")
	want := ""
	for _, id := range ids {
		want += id + ";"
	}
	if string(got) != want {
		t.Fatalf("content = %q", got)
	}
}

func TestPropertyPutGetIdentity(t *testing.T) {
	s := New()
	i := 0
	f := func(data []byte) bool {
		i++
		name := fmt.Sprintf("blob-%d", i)
		if err := s.Put(name, data, 0); err != nil {
			return false
		}
		got, err := s.Get(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCommitConcatenation(t *testing.T) {
	// Committing blocks [b0..bn] always yields the concatenation of payloads.
	s := New()
	n := 0
	f := func(parts [][]byte) bool {
		n++
		blob := fmt.Sprintf("m-%d", n)
		ids := make([]string, len(parts))
		var want []byte
		for i, p := range parts {
			ids[i] = fmt.Sprintf("b%d", i)
			if err := s.StageBlock(blob, ids[i], p); err != nil {
				return false
			}
			want = append(want, p...)
		}
		if err := s.CommitBlockList(blob, ids, 0); err != nil {
			return false
		}
		got, err := s.Get(blob)
		if err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
