package objectstore

import (
	"errors"
	"testing"
)

func TestSpillDirNamespace(t *testing.T) {
	s := New()
	d1 := NewSpillDir(s, "t1-q1")
	d2 := NewSpillDir(s, "t1-q2")

	if err := d1.Put("b/d0/p000/f000000000", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := d1.Put("b/d0/p001/f000000000", []byte("two")); err != nil {
		t.Fatal(err)
	}
	if err := d2.Put("b/d0/p000/f000000000", []byte("other")); err != nil {
		t.Fatal(err)
	}

	got, err := d1.Get("b/d0/p000/f000000000")
	if err != nil || string(got) != "one" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// List returns namespace-relative names and never crosses namespaces.
	names := d1.List("b/d0/")
	if len(names) != 2 || names[0] != "b/d0/p000/f000000000" || names[1] != "b/d0/p001/f000000000" {
		t.Fatalf("List = %v", names)
	}
	if n := d1.Count(); n != 2 {
		t.Fatalf("Count = %d", n)
	}

	// Spill blobs live under the spill/ prefix, disjoint from table data.
	if err := s.Put("tables/1/data/x.pcf", []byte("data"), 1); err != nil {
		t.Fatal(err)
	}
	if got := len(s.List(SpillPrefix)); got != 3 {
		t.Fatalf("store-wide spill blobs = %d, want 3", got)
	}

	if err := d1.Cleanup(); err != nil {
		t.Fatalf("cleanup: %v", err)
	}
	if n := d1.Count(); n != 0 {
		t.Fatalf("post-cleanup Count = %d", n)
	}
	// Cleanup is namespace-scoped: the sibling namespace and table data stay.
	if n := d2.Count(); n != 1 {
		t.Fatalf("sibling namespace lost files: Count = %d", n)
	}
	if !s.Exists("tables/1/data/x.pcf") {
		t.Fatal("cleanup deleted a table data file")
	}
}

// TestSpillDirCleanupKeepsDeleting pins that a transient delete fault does
// not strand the rest of the namespace: Cleanup reports the error but still
// removes every blob a later delete can reach.
func TestSpillDirCleanupKeepsDeleting(t *testing.T) {
	faults := NewFaultInjector(7)
	s := New(WithFaults(faults))
	d := NewSpillDir(s, "t9-q9")
	for i := 0; i < 20; i++ {
		if err := d.Put(string(rune('a'+i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	faults.SetProbability(OpDelete, 0.5)
	err := d.Cleanup()
	faults.SetProbability(OpDelete, 0)
	if err == nil {
		t.Skip("injector happened to pass every delete; nothing to assert")
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("cleanup error is not the transient fault: %v", err)
	}
	// The files whose deletes failed are still there; a retry drains them.
	if err := d.Cleanup(); err != nil {
		t.Fatalf("retry cleanup: %v", err)
	}
	if n := d.Count(); n != 0 {
		t.Fatalf("blobs remain after retry: %d", n)
	}
}
