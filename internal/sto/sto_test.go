package sto

import (
	"fmt"
	"strings"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/exec"
	"polaris/internal/manifest"
	"polaris/internal/objectstore"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Distributions = 2
	opts.RowsPerFile = 100
	opts.RowsPerGroup = 50
	opts.CompactSmallRows = 10
	opts.CompactDeletedFrac = 0.3
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 2, SlotsPer: 2})
	return core.NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
}

func schema() colfile.Schema {
	return colfile.Schema{{Name: "k", Type: colfile.String}, {Name: "v", Type: colfile.Int64}}
}

func createTable(t *testing.T, e *core.Engine, name string) {
	t.Helper()
	if err := e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.CreateTable(name, schema(), "k", "v")
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func insertRows(t *testing.T, e *core.Engine, table string, lo, hi int) {
	t.Helper()
	b := colfile.NewBatch(schema())
	for i := lo; i < hi; i++ {
		_ = b.AppendRow(fmt.Sprintf("k%05d", i), int64(i))
	}
	if err := e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Insert(table, b)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func countRows(t *testing.T, e *core.Engine, table string) int {
	t.Helper()
	tx := e.Begin()
	defer tx.Rollback()
	rs, err := tx.ReadAll(table)
	if err != nil {
		t.Fatal(err)
	}
	return rs.NumRows()
}

func TestCheckpointTriggeredByThreshold(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 5
	cfg.AutoCompact = false
	s := New(e, cfg)
	createTable(t, e, "t")
	for i := 0; i < 5; i++ {
		insertRows(t, e, "t", i*10, i*10+10)
	}
	cps := s.Checkpoints()
	if len(cps) != 1 {
		t.Fatalf("checkpoints = %+v", cps)
	}
	if cps[0].Manifest != 5 {
		t.Fatalf("folded %d manifests", cps[0].Manifest)
	}
	// 5 more commits: second checkpoint; first gets its EndSeq closed.
	for i := 5; i < 10; i++ {
		insertRows(t, e, "t", i*10, i*10+10)
	}
	cps = s.Checkpoints()
	if len(cps) != 2 {
		t.Fatalf("checkpoints = %d", len(cps))
	}
	if cps[0].EndSeq == 0 || cps[1].EndSeq != 0 {
		t.Fatalf("lifetimes = %+v", cps)
	}
	if countRows(t, e, "t") != 100 {
		t.Fatal("data corrupted by checkpointing")
	}
}

func TestCheckpointSpeedsReplayAndMatchesFullReplay(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.CheckpointEvery = 4
	cfg.AutoCompact = false
	cfg.PublishDelta = false
	_ = New(e, cfg)
	createTable(t, e, "t")
	for i := 0; i < 9; i++ {
		insertRows(t, e, "t", i*5, i*5+5)
	}
	// Fresh engine cache: reconstruct must use checkpoint + tail.
	e.Cache.Invalidate(1)
	if got := countRows(t, e, "t"); got != 45 {
		t.Fatalf("rows = %d", got)
	}
}

func TestAutoCompactRestoresHealth(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.PublishDelta = false
	cfg.CheckpointEvery = 0
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 200)
	// delete 60% of rows -> fragmentation beyond threshold
	if err := e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Delete("t", exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(120)}})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	samples := s.SampleHealth()
	if len(samples) != 1 || samples[0].Healthy {
		t.Fatalf("samples = %+v, want unhealthy", samples)
	}
	if len(s.Compactions()) == 0 {
		t.Fatalf("no compaction ran; errors: %v", s.Errors())
	}
	// after compaction the table is healthy again and data is intact
	samples = s.SampleHealth()
	if !samples[0].Healthy {
		t.Fatalf("still unhealthy after compaction: %+v (errs %v)", samples, s.Errors())
	}
	if got := countRows(t, e, "t"); got != 80 {
		t.Fatalf("rows after compaction = %d", got)
	}
	log := s.HealthLog()
	if len(log) != 2 || log[0].Healthy || !log[1].Healthy {
		t.Fatalf("health log = %+v", log)
	}
}

func TestCompactionPhysicallyDropsDeletedRows(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.PublishDelta = false
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 100)
	_ = e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Delete("t", exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(50)}})
		return err
	})
	s.Compact("t")
	if len(s.Compactions()) != 1 {
		t.Fatalf("compactions = %+v errs=%v", s.Compactions(), s.Errors())
	}
	c := s.Compactions()[0]
	if c.RowsDropped != 50 || c.RowsKept != 50 {
		t.Fatalf("compaction = %+v", c)
	}
	tx := e.Begin()
	defer tx.Rollback()
	st, err := tx.Stats("t")
	if err != nil {
		t.Fatal(err)
	}
	if st.Deleted != 0 {
		t.Fatalf("deleted rows survived compaction: %+v", st)
	}
}

func TestCompactionConflictsWithConcurrentUserTxnAndRetries(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.PublishDelta = false
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 100)
	_ = e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Delete("t", exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(60)}})
		return err
	})
	// A user transaction commits an update between compaction's snapshot and
	// its commit — forcing the SI conflict the paper describes. We simulate
	// by interleaving manually: start compaction txn, commit a user delete,
	// then try to commit compaction.
	compactTx := e.Begin()
	if _, err := compactTx.CompactTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Delete("t", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(70)}})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := compactTx.Commit(); !catalog.IsWriteConflict(err) {
		t.Fatalf("compaction commit: %v, want conflict", err)
	}
	// The orchestrator's retry path succeeds afterwards.
	s.Compact("t")
	if len(s.Compactions()) != 1 {
		t.Fatalf("retry failed: %v", s.Errors())
	}
	if got := countRows(t, e, "t"); got != 39 {
		t.Fatalf("rows = %d", got)
	}
}

func TestGarbageCollectionAbortedTxnFiles(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.PublishDelta = false
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 10)
	before := e.Store.Count()
	// aborted transaction leaves dangling data files + manifest blob
	tx := e.Begin()
	b := colfile.NewBatch(schema())
	_ = b.AppendRow("zz", int64(999))
	if _, err := tx.Insert("t", b); err != nil {
		t.Fatal(err)
	}
	tx.Rollback()
	if e.Store.Count() <= before {
		t.Fatal("no dangling files to collect")
	}
	res, err := s.GarbageCollect()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeletedOrphans == 0 {
		t.Fatalf("gc = %+v", res)
	}
	if got := countRows(t, e, "t"); got != 10 {
		t.Fatal("gc deleted live data")
	}
}

func TestGarbageCollectionRetention(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.PublishDelta = false
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 100)
	// retention 0: removed files are collectible immediately after the
	// removing commit.
	setRetention(t, e, "t", 0)
	_ = e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Delete("t", exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(60)}})
		return err
	})
	s.Compact("t") // logically removes the fragmented originals
	// one more commit so currentSeq - removedSeq > 0
	insertRows(t, e, "t", 1000, 1001)
	res, err := s.GarbageCollect()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeletedData == 0 {
		t.Fatalf("gc did not reclaim removed files: %+v", res)
	}
	if got := countRows(t, e, "t"); got != 41 {
		t.Fatalf("rows = %d", got)
	}
	// with huge retention nothing else is collected
	setRetention(t, e, "t", 1<<40)
	res2, _ := s.GarbageCollect()
	if res2.DeletedData != 0 {
		t.Fatalf("gc ignored retention: %+v", res2)
	}
}

func setRetention(t *testing.T, e *core.Engine, table string, seqs int64) {
	t.Helper()
	if err := e.AutoCommit(func(tx *core.Txn) error {
		return tx.SetRetention(table, seqs)
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGCCloneSharedLineage(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.PublishDelta = false
	s := New(e, cfg)
	createTable(t, e, "src")
	insertRows(t, e, "src", 0, 50)
	setRetention(t, e, "src", 0)
	if err := e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.CloneTable("src", "clone", -1)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// src compacts away its original files; the clone still references them.
	_ = e.AutoCommit(func(tx *core.Txn) error {
		_, err := tx.Delete("src", exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(40)}})
		return err
	})
	s.Compact("src")
	insertRows(t, e, "src", 1000, 1001)
	res, err := s.GarbageCollect()
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// the clone must still read all 50 original rows
	if got := countRows(t, e, "clone"); got != 50 {
		t.Fatalf("clone rows = %d after GC; shared-lineage file deleted", got)
	}
	if got := countRows(t, e, "src"); got != 11 {
		t.Fatalf("src rows = %d", got)
	}
}

func TestDeltaPublishing(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.AutoCompact = false
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 10)
	insertRows(t, e, "t", 10, 20)
	pubs := s.Published()
	if len(pubs) != 2 {
		t.Fatalf("published = %v", pubs)
	}
	if !strings.Contains(pubs[0], "_delta_log/00000000000000000000.json") {
		t.Fatalf("first version path = %s", pubs[0])
	}
	data, err := e.Store.Get(pubs[1])
	if err != nil {
		t.Fatal(err)
	}
	adds, _, info, err := manifest.ParseDeltaLog(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(adds) == 0 || info == nil {
		t.Fatalf("delta log empty: adds=%d", len(adds))
	}
	var rows int64
	for _, a := range adds {
		rows += a.NumRecords
	}
	if rows != 10 {
		t.Fatalf("published rows = %d", rows)
	}
}

func TestIcebergPublishingThroughSTO(t *testing.T) {
	e := testEngine(t)
	cfg := DefaultConfig()
	cfg.AutoCompact = false
	cfg.PublishDelta = false
	cfg.PublishIceberg = true
	s := New(e, cfg)
	createTable(t, e, "t")
	insertRows(t, e, "t", 0, 10)
	insertRows(t, e, "t", 10, 20)
	pubs := s.Published()
	if len(pubs) != 2 {
		t.Fatalf("published = %v (errs %v)", pubs, s.Errors())
	}
	data, err := e.Store.Get(pubs[1])
	if err != nil {
		t.Fatal(err)
	}
	md, err := manifest.ParseIcebergMetadata(data)
	if err != nil {
		t.Fatal(err)
	}
	if md.FormatVersion != 2 || len(md.Snapshots) != 2 {
		t.Fatalf("metadata = %+v", md)
	}
	// snapshot chain sequence numbers are strictly increasing
	if md.Snapshots[0].SequenceNumber >= md.Snapshots[1].SequenceNumber {
		t.Fatalf("snapshots out of order: %+v", md.Snapshots)
	}
	// manifest list of the latest snapshot covers all 20 rows
	listData, err := e.Store.Get(md.Snapshots[1].ManifestListPath)
	if err != nil {
		t.Fatal(err)
	}
	files, err := manifest.ParseIcebergManifestList(listData)
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, f := range files {
		if f.Content == 0 {
			rows += f.RecordCount
		}
	}
	if rows != 20 {
		t.Fatalf("published rows = %d", rows)
	}
}

func TestSTOErrorsSurface(t *testing.T) {
	e := testEngine(t)
	s := New(e, DefaultConfig())
	s.Compact("missing-table")
	if len(s.Errors()) == 0 {
		t.Fatal("missing table error swallowed")
	}
}
