// Package sto implements the System Task Orchestrator (paper Section 5): the
// dedicated micro-service that watches commit notifications and storage
// statistics, then triggers data compaction, manifest checkpointing, garbage
// collection and async lake-snapshot publishing — all without user
// intervention. The mechanisms live in internal/core (they are ordinary
// transactions); this package provides the triggers, bookkeeping and the
// timelines the Section 7.3 figures are drawn from.
package sto

import (
	"sync"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/core"
	"polaris/internal/manifest"
)

// Config tunes the orchestrator's triggers.
type Config struct {
	// CheckpointEvery creates a manifest checkpoint once a table accumulates
	// this many manifests since the last checkpoint (5.2). Zero disables.
	CheckpointEvery int
	// AutoCompact triggers compaction when a health sample reports a table
	// unhealthy (5.1).
	AutoCompact bool
	// PublishDelta publishes every committed manifest as a Delta log (5.4).
	PublishDelta bool
	// PublishIceberg additionally publishes Iceberg-shaped metadata (the
	// multi-format converter path of footnote 1).
	PublishIceberg bool
	// MaxCompactRetries bounds conflict retries of the compaction txn.
	MaxCompactRetries int
}

// DefaultConfig matches the engine's defaults.
func DefaultConfig() Config {
	return Config{CheckpointEvery: 10, AutoCompact: true, PublishDelta: true, MaxCompactRetries: 3}
}

// HealthSample is one point of a table's storage-health timeline (Fig. 10).
type HealthSample struct {
	Table   string
	TableID int64
	When    time.Time
	Seq     int64
	Healthy bool
	Small   int
	Frag    int
}

// CheckpointRecord is one checkpoint's lifetime entry (Fig. 11): it is
// superseded (EndSeq set) when the next checkpoint for the table is created.
type CheckpointRecord struct {
	TableID  int64
	Path     string
	Seq      int64
	EndSeq   int64 // 0 while the checkpoint is the newest
	Created  time.Time
	Manifest int // manifests folded into this checkpoint
}

// STO is the orchestrator. Create with New and attach to an engine.
type STO struct {
	eng *core.Engine
	cfg Config

	mu sync.Mutex
	// manifestsSince counts manifests per table since the last checkpoint.
	manifestsSince map[int64]int
	deltaVersions  map[int64]int64
	icebergChains  map[int64][]manifest.IcebergSnapshot
	healthLog      []HealthSample
	checkpoints    []CheckpointRecord
	compactions    []core.CompactionResult
	published      []string
	errs           []error
}

// New attaches an orchestrator to the engine's commit notifications.
func New(eng *core.Engine, cfg Config) *STO {
	s := &STO{
		eng: eng, cfg: cfg,
		manifestsSince: make(map[int64]int),
		deltaVersions:  make(map[int64]int64),
		icebergChains:  make(map[int64][]manifest.IcebergSnapshot),
	}
	eng.Subscribe(s.onCommit)
	return s
}

// onCommit is the SQL FE's "notify STO on every transaction commit" (5.2,
// 5.4). It publishes the manifest and, past the threshold, checkpoints.
func (s *STO) onCommit(ev core.CommitEvent) {
	s.mu.Lock()
	s.manifestsSince[ev.TableID]++
	due := s.cfg.CheckpointEvery > 0 && s.manifestsSince[ev.TableID] >= s.cfg.CheckpointEvery
	var version int64
	if s.cfg.PublishDelta || s.cfg.PublishIceberg {
		version = s.deltaVersions[ev.TableID]
		s.deltaVersions[ev.TableID]++
	}
	chain := s.icebergChains[ev.TableID]
	s.mu.Unlock()

	if s.cfg.PublishDelta {
		path, err := s.eng.PublishDelta(ev, version, s.stateFor(ev))
		s.mu.Lock()
		if err != nil {
			s.errs = append(s.errs, err)
		} else {
			s.published = append(s.published, path)
		}
		s.mu.Unlock()
	}
	if s.cfg.PublishIceberg {
		path, newChain, err := s.eng.PublishIceberg(ev, version, s.stateFor(ev), chain)
		s.mu.Lock()
		if err != nil {
			s.errs = append(s.errs, err)
		} else {
			s.published = append(s.published, path)
			s.icebergChains[ev.TableID] = newChain
		}
		s.mu.Unlock()
	}
	if due {
		s.CheckpointTable(ev.TableID)
	}
}

// stateFor returns the post-commit snapshot of the event's table: from the
// snapshot cache when warm, otherwise by reconstructing in a fresh
// transaction (the STO reads the committed manifest like any other reader).
func (s *STO) stateFor(ev core.CommitEvent) *manifest.TableState {
	if st := s.eng.Cache.Get(ev.TableID, ev.Seq); st != nil {
		return st
	}
	tx := s.eng.Begin()
	defer tx.Rollback()
	meta, err := lookupByID(tx, ev.TableID)
	if err != nil {
		s.recordErr(err)
		return nil
	}
	st, _, err := tx.Snapshot(meta.Name, ev.Seq)
	if err != nil {
		s.recordErr(err)
		return nil
	}
	return st
}

// CheckpointTable checkpoints one table now and records its lifetime.
func (s *STO) CheckpointTable(tableID int64) {
	tx := s.eng.Begin()
	meta, err := lookupByID(tx, tableID)
	if err != nil {
		tx.Rollback()
		s.recordErr(err)
		return
	}
	path, err := tx.CheckpointTable(meta.Name)
	if err != nil {
		tx.Rollback()
		s.recordErr(err)
		return
	}
	if path == "" {
		tx.Rollback()
		return
	}
	if err := tx.Commit(); err != nil {
		s.recordErr(err)
		return
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	folded := s.manifestsSince[tableID]
	s.manifestsSince[tableID] = 0
	now := time.Now()
	// close the lifetime of the previous newest checkpoint for this table
	for i := len(s.checkpoints) - 1; i >= 0; i-- {
		if s.checkpoints[i].TableID == tableID && s.checkpoints[i].EndSeq == 0 {
			s.checkpoints[i].EndSeq = s.eng.Catalog.CurrentSeq()
			break
		}
	}
	s.checkpoints = append(s.checkpoints, CheckpointRecord{
		TableID: tableID, Path: path, Seq: s.eng.Catalog.CurrentSeq(),
		Created: now, Manifest: folded,
	})
}

func lookupByID(tx *core.Txn, tableID int64) (catalog.TableMeta, error) {
	tables, err := tx.ListTables()
	if err != nil {
		return catalog.TableMeta{}, err
	}
	for _, m := range tables {
		if m.ID == tableID {
			return m, nil
		}
	}
	return catalog.TableMeta{}, catalog.ErrTableNotFound
}

// SampleHealth gathers one storage-health sample per table (the coarse
// statistics SELECTs push to the STO, 5.1) and, with AutoCompact, schedules
// compaction for unhealthy tables. It returns the samples.
func (s *STO) SampleHealth() []HealthSample {
	tx := s.eng.Begin()
	defer tx.Rollback()
	tables, err := tx.ListTables()
	if err != nil {
		s.recordErr(err)
		return nil
	}
	var out []HealthSample
	var toCompact []string
	for _, m := range tables {
		st, err := tx.Stats(m.Name)
		if err != nil {
			s.recordErr(err)
			continue
		}
		sample := HealthSample{
			Table: m.Name, TableID: m.ID, When: time.Now(), Seq: st.LastSeq,
			Healthy: st.Health.Healthy(),
			Small:   st.Health.SmallFiles, Frag: st.Health.FragmentedFiles,
		}
		out = append(out, sample)
		if !sample.Healthy && s.cfg.AutoCompact {
			toCompact = append(toCompact, m.Name)
		}
	}
	s.mu.Lock()
	s.healthLog = append(s.healthLog, out...)
	s.mu.Unlock()
	for _, name := range toCompact {
		s.Compact(name)
	}
	return out
}

// Compact compacts one table now, retrying on SI conflicts with concurrent
// user transactions (the downside called out in 5.1).
func (s *STO) Compact(table string) {
	var result core.CompactionResult
	err := s.eng.RunWithRetries(s.cfg.MaxCompactRetries, func(tx *core.Txn) error {
		res, err := tx.CompactTable(table)
		result = res
		return err
	})
	if err != nil {
		s.recordErr(err)
		return
	}
	if result.InputFiles > 0 {
		s.mu.Lock()
		s.compactions = append(s.compactions, result)
		s.mu.Unlock()
	}
}

// GarbageCollect runs one GC pass (5.3).
func (s *STO) GarbageCollect() (core.GCResult, error) {
	res, err := s.eng.GarbageCollect()
	if err != nil {
		s.recordErr(err)
	}
	return res, err
}

func (s *STO) recordErr(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errs = append(s.errs, err)
}

// HealthLog returns the recorded health timeline (Fig. 10's bars).
func (s *STO) HealthLog() []HealthSample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HealthSample(nil), s.healthLog...)
}

// Checkpoints returns the checkpoint lifetime records (Fig. 11's bars).
func (s *STO) Checkpoints() []CheckpointRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CheckpointRecord(nil), s.checkpoints...)
}

// Compactions returns completed compaction results.
func (s *STO) Compactions() []core.CompactionResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.CompactionResult(nil), s.compactions...)
}

// Published returns the Delta log paths written so far (5.4).
func (s *STO) Published() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.published...)
}

// Errors returns background errors the orchestrator swallowed.
func (s *STO) Errors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]error(nil), s.errs...)
}
