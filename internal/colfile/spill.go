package colfile

// Batch spill serialization: the executor's grace hash-join writes overflow
// partitions to the object store and reads them back partition by partition.
// A spill file is an ordinary sealed colfile holding one row group, so the
// spill path reuses the same encodings, zone maps and footer validation the
// durable storage path uses — a corrupt spill file fails OpenReader exactly
// like a corrupt data file would.

// MarshalBatch serializes a batch as a single-row-group colfile. An empty
// batch yields a valid file with zero row groups (UnmarshalBatch returns an
// empty batch with the same schema).
func MarshalBatch(b *Batch) ([]byte, error) {
	w := NewWriter(b.Schema)
	if err := w.WriteBatch(b); err != nil {
		return nil, err
	}
	return w.Finish()
}

// UnmarshalBatch deserializes a batch written by MarshalBatch (or any sealed
// colfile) into a single in-memory batch.
func UnmarshalBatch(data []byte) (*Batch, error) {
	r, err := OpenReader(data)
	if err != nil {
		return nil, err
	}
	return r.ReadAll()
}

// rowMemSize estimates the bytes position i of the vector occupies in
// memory: the single accounting rule MemSize and RowMemSize both sum, so the
// whole-vector and row-at-a-time meters a spill budget compares cannot
// drift apart. Strings count their header plus byte length; a null bitmap
// entry counts when the bitmap exists.
func (v *Vec) rowMemSize(i int) int64 {
	var n int64
	switch v.Type {
	case String:
		n = 16 + int64(len(v.Strs[i]))
	case Bool:
		n = 1
	default:
		n = 8
	}
	if v.Nulls != nil {
		n++
	}
	return n
}

// MemSize estimates the in-memory footprint of the vector's payload in bytes:
// the quantity a memory budget meters.
func (v *Vec) MemSize() int64 {
	var n int64
	switch v.Type {
	case Int64:
		n = 8 * int64(len(v.Ints))
	case Float64:
		n = 8 * int64(len(v.Floats))
	case String:
		for _, s := range v.Strs {
			n += 16 + int64(len(s))
		}
	case Bool:
		n = int64(len(v.Bools))
	}
	return n + int64(len(v.Nulls))
}

// MemSize estimates the in-memory footprint of the batch in bytes.
func (b *Batch) MemSize() int64 {
	var n int64
	for _, v := range b.Cols {
		n += v.MemSize()
	}
	return n
}

// RowMemSize estimates the bytes row r of the batch contributes to MemSize —
// the incremental meter spill writers use to decide when to flush.
func (b *Batch) RowMemSize(r int) int64 {
	var n int64
	for _, v := range b.Cols {
		n += v.rowMemSize(r)
	}
	return n
}
