package colfile

import (
	"fmt"
	"testing"
)

func intVec(vals ...int64) *Vec {
	v := NewVec(Int64)
	for _, x := range vals {
		v.AppendInt(x)
	}
	return v
}

func TestSketchNDVExact(t *testing.T) {
	// Well below the bitmap's resolution, linear counting is near-exact.
	for _, distinct := range []int64{1, 7, 50, 200} {
		var s ColSketch
		v := NewVec(Int64)
		for i := int64(0); i < distinct*4; i++ {
			v.AppendInt(i % distinct) // each value observed 4 times
		}
		s.Observe(v)
		got := s.NDV()
		lo, hi := distinct-distinct/10-1, distinct+distinct/10+1
		if got < lo || got > hi {
			t.Errorf("distinct=%d: NDV = %d, want within [%d, %d]", distinct, got, lo, hi)
		}
	}
}

func TestSketchNDVClampedToRows(t *testing.T) {
	var s ColSketch
	s.Observe(intVec(1, 2, 3))
	if got := s.NDV(); got < 1 || got > 3 {
		t.Fatalf("NDV = %d, want in [1, 3]", got)
	}
	// A saturated or missing bitmap falls back to the non-NULL row count.
	s.Bitmap = nil
	if got := s.NDV(); got != 3 {
		t.Fatalf("nil-bitmap NDV = %d, want rows (3)", got)
	}
}

func TestSketchMinMaxAndNulls(t *testing.T) {
	var s ColSketch
	v := NewVec(Int64)
	v.AppendInt(42)
	v.AppendNull()
	v.AppendInt(-7)
	v.AppendInt(13)
	s.Observe(v)
	if s.Rows != 4 || s.Stats.NullCount != 1 || s.NonNullRows() != 3 {
		t.Fatalf("rows=%d nulls=%d nonNull=%d", s.Rows, s.Stats.NullCount, s.NonNullRows())
	}
	if s.Stats.MinInt == nil || *s.Stats.MinInt != -7 || s.Stats.MaxInt == nil || *s.Stats.MaxInt != 42 {
		t.Fatalf("min/max = %v/%v, want -7/42", s.Stats.MinInt, s.Stats.MaxInt)
	}
}

func TestSketchMergeUnionsDistincts(t *testing.T) {
	var a, b ColSketch
	a.Observe(intVec(1, 2, 3, 4))
	b.Observe(intVec(3, 4, 5, 6))
	a.Merge(b)
	if a.Rows != 8 {
		t.Fatalf("merged rows = %d, want 8", a.Rows)
	}
	// The union has 6 distinct values; the OR of the bitmaps must not count
	// the overlap twice.
	if got := a.NDV(); got < 5 || got > 7 {
		t.Fatalf("merged NDV = %d, want ≈6", got)
	}
	if *a.Stats.MinInt != 1 || *a.Stats.MaxInt != 6 {
		t.Fatalf("merged min/max = %d/%d", *a.Stats.MinInt, *a.Stats.MaxInt)
	}
}

func TestSketchMergeUnknownNDV(t *testing.T) {
	// Merging with a pre-sketch file (values observed, no bitmap) poisons the
	// NDV to "unknown = row count", never to a fabricated number.
	var a ColSketch
	a.Observe(intVec(1, 2))
	pre := ColSketch{Rows: 10, Stats: ColStats{NullCount: 10}}
	a.Merge(pre) // all-NULL other side: nothing new to count
	if a.Bitmap == nil {
		t.Fatal("merging a value-free sketch must keep the bitmap")
	}
	pre = ColSketch{Rows: 10}
	a.Merge(pre) // 10 non-NULL rows, nil bitmap → unknown
	if a.Bitmap != nil {
		t.Fatal("merging a bitmap-less sketch with non-NULL rows must drop the bitmap")
	}
	if got := a.NDV(); got != a.NonNullRows() {
		t.Fatalf("unknown NDV = %d, want non-NULL rows %d", got, a.NonNullRows())
	}
}

func TestSketchMergeAdoptsBitmapIntoEmpty(t *testing.T) {
	var empty, full ColSketch
	full.Observe(intVec(1, 2, 3))
	empty.Merge(full)
	if empty.Bitmap == nil {
		t.Fatal("zero-value sketch must adopt the other side's bitmap")
	}
	if got := empty.NDV(); got < 2 || got > 4 {
		t.Fatalf("adopted NDV = %d, want ≈3", got)
	}
	// The adoption is a copy: mutating the source must not alias.
	full.Bitmap[0] = 0xFF
	if empty.Bitmap[0] == 0xFF && full.Bitmap[0] == empty.Bitmap[0] && &full.Bitmap[0] == &empty.Bitmap[0] {
		t.Fatal("adopted bitmap aliases the source")
	}
}

func TestSketchSaturation(t *testing.T) {
	// Far past sketchBits distinct values the bitmap saturates and the
	// estimate degrades to the row count — an upper bound, never a panic.
	var s ColSketch
	v := NewVec(Int64)
	for i := int64(0); i < 100_000; i++ {
		v.AppendInt(i)
	}
	s.Observe(v)
	if got := s.NDV(); got != 100_000 {
		t.Fatalf("saturated NDV = %d, want the row-count upper bound", got)
	}
}

func TestSketchRidesFileFooter(t *testing.T) {
	// Writer → Finish → OpenReader round-trips the per-column sketches.
	schema := Schema{{Name: "a", Type: Int64}, {Name: "s", Type: String}}
	w := NewWriter(schema)
	b := NewBatch(schema)
	for i := 0; i < 100; i++ {
		b.Cols[0].AppendInt(int64(i % 10))
		b.Cols[1].AppendStr(fmt.Sprintf("v%d", i%5))
	}
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	sk := w.Sketches()
	if len(sk) != 2 {
		t.Fatalf("writer sketches = %d cols", len(sk))
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(data)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Sketches()
	if len(got) != 2 {
		t.Fatalf("reader sketches = %d cols", len(got))
	}
	if got[0].Rows != 100 || got[1].Rows != 100 {
		t.Fatalf("sketch rows = %d/%d, want 100", got[0].Rows, got[1].Rows)
	}
	if ndv := got[0].NDV(); ndv < 9 || ndv > 11 {
		t.Fatalf("int col NDV = %d, want ≈10", ndv)
	}
	if ndv := got[1].NDV(); ndv < 4 || ndv > 6 {
		t.Fatalf("string col NDV = %d, want ≈5", ndv)
	}
}
