package colfile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Column-chunk encodings. The writer picks automatically: dictionary when a
// string column has few distinct values, run-length when an int column has
// long runs, plain otherwise.
const (
	encPlain byte = iota
	encDict
	encRLE
)

// encodeChunk serializes one column vector to bytes:
//
//	[encoding byte][null section][payload], then flate-compressed.
func encodeChunk(v *Vec) ([]byte, error) {
	raw := &bytes.Buffer{}
	enc := chooseEncoding(v)
	raw.WriteByte(enc)
	writeNulls(raw, v)
	switch enc {
	case encPlain:
		encodePlain(raw, v)
	case encDict:
		encodeDict(raw, v)
	case encRLE:
		encodeRLE(raw, v)
	}
	comp := &bytes.Buffer{}
	fw, err := flate.NewWriter(comp, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(raw.Bytes()); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return comp.Bytes(), nil
}

// decodeChunk reverses encodeChunk. n is the row count recorded in the footer.
func decodeChunk(data []byte, t DataType, n int) (*Vec, error) {
	fr := flate.NewReader(bytes.NewReader(data))
	raw, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("colfile: decompress chunk: %w", err)
	}
	if len(raw) == 0 {
		return nil, errors.New("colfile: empty chunk")
	}
	buf := bytes.NewReader(raw[1:])
	v := NewVec(t)
	nulls, err := readNulls(buf, n)
	if err != nil {
		return nil, err
	}
	switch raw[0] {
	case encPlain:
		err = decodePlain(buf, v, n)
	case encDict:
		err = decodeDict(buf, v, n)
	case encRLE:
		err = decodeRLE(buf, v, n)
	default:
		return nil, fmt.Errorf("colfile: unknown encoding %d", raw[0])
	}
	if err != nil {
		return nil, err
	}
	v.Nulls = nulls
	return v, nil
}

func chooseEncoding(v *Vec) byte {
	switch v.Type {
	case String:
		if v.Len() >= 16 {
			distinct := make(map[string]struct{}, 64)
			for _, s := range v.Strs {
				distinct[s] = struct{}{}
				if len(distinct) > v.Len()/4 {
					return encPlain
				}
			}
			return encDict
		}
	case Int64:
		if v.Len() >= 16 {
			runs := 1
			for i := 1; i < len(v.Ints); i++ {
				if v.Ints[i] != v.Ints[i-1] {
					runs++
				}
			}
			if runs <= v.Len()/4 {
				return encRLE
			}
		}
	}
	return encPlain
}

func writeNulls(w *bytes.Buffer, v *Vec) {
	if v.Nulls == nil {
		w.WriteByte(0)
		return
	}
	any := false
	for _, b := range v.Nulls {
		if b {
			any = true
			break
		}
	}
	if !any {
		w.WriteByte(0)
		return
	}
	w.WriteByte(1)
	// bit-packed null bitmap
	nb := (len(v.Nulls) + 7) / 8
	bits := make([]byte, nb)
	for i, isNull := range v.Nulls {
		if isNull {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	w.Write(bits)
}

func readNulls(r *bytes.Reader, n int) ([]bool, error) {
	flag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("colfile: null flag: %w", err)
	}
	if flag == 0 {
		return nil, nil
	}
	nb := (n + 7) / 8
	bits := make([]byte, nb)
	if _, err := io.ReadFull(r, bits); err != nil {
		return nil, fmt.Errorf("colfile: null bitmap: %w", err)
	}
	nulls := make([]bool, n)
	for i := range nulls {
		nulls[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return nulls, nil
}

func encodePlain(w *bytes.Buffer, v *Vec) {
	switch v.Type {
	case Int64:
		var tmp [binary.MaxVarintLen64]byte
		for _, x := range v.Ints {
			n := binary.PutVarint(tmp[:], x)
			w.Write(tmp[:n])
		}
	case Float64:
		var tmp [8]byte
		for _, x := range v.Floats {
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(x))
			w.Write(tmp[:])
		}
	case String:
		var tmp [binary.MaxVarintLen64]byte
		for _, s := range v.Strs {
			n := binary.PutUvarint(tmp[:], uint64(len(s)))
			w.Write(tmp[:n])
			w.WriteString(s)
		}
	case Bool:
		for _, b := range v.Bools {
			if b {
				w.WriteByte(1)
			} else {
				w.WriteByte(0)
			}
		}
	}
}

func decodePlain(r *bytes.Reader, v *Vec, n int) error {
	switch v.Type {
	case Int64:
		v.Ints = make([]int64, n)
		for i := 0; i < n; i++ {
			x, err := binary.ReadVarint(r)
			if err != nil {
				return fmt.Errorf("colfile: int64 value %d: %w", i, err)
			}
			v.Ints[i] = x
		}
	case Float64:
		v.Floats = make([]float64, n)
		var tmp [8]byte
		for i := 0; i < n; i++ {
			if _, err := io.ReadFull(r, tmp[:]); err != nil {
				return fmt.Errorf("colfile: float64 value %d: %w", i, err)
			}
			v.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
		}
	case String:
		v.Strs = make([]string, n)
		for i := 0; i < n; i++ {
			l, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("colfile: string len %d: %w", i, err)
			}
			b := make([]byte, l)
			if _, err := io.ReadFull(r, b); err != nil {
				return fmt.Errorf("colfile: string value %d: %w", i, err)
			}
			v.Strs[i] = string(b)
		}
	case Bool:
		v.Bools = make([]bool, n)
		for i := 0; i < n; i++ {
			b, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("colfile: bool value %d: %w", i, err)
			}
			v.Bools[i] = b != 0
		}
	}
	return nil
}

func encodeDict(w *bytes.Buffer, v *Vec) {
	dict := make(map[string]uint64, 64)
	var order []string
	for _, s := range v.Strs {
		if _, ok := dict[s]; !ok {
			dict[s] = uint64(len(order))
			order = append(order, s)
		}
	}
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(order)))
	w.Write(tmp[:n])
	for _, s := range order {
		n = binary.PutUvarint(tmp[:], uint64(len(s)))
		w.Write(tmp[:n])
		w.WriteString(s)
	}
	for _, s := range v.Strs {
		n = binary.PutUvarint(tmp[:], dict[s])
		w.Write(tmp[:n])
	}
}

func decodeDict(r *bytes.Reader, v *Vec, n int) error {
	dn, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("colfile: dict size: %w", err)
	}
	dict := make([]string, dn)
	for i := range dict {
		l, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("colfile: dict entry len %d: %w", i, err)
		}
		b := make([]byte, l)
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("colfile: dict entry %d: %w", i, err)
		}
		dict[i] = string(b)
	}
	v.Strs = make([]string, n)
	for i := 0; i < n; i++ {
		idx, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("colfile: dict code %d: %w", i, err)
		}
		if idx >= dn {
			return fmt.Errorf("colfile: dict code %d out of range", idx)
		}
		v.Strs[i] = dict[idx]
	}
	return nil
}

func encodeRLE(w *bytes.Buffer, v *Vec) {
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(v.Ints) {
		j := i
		for j < len(v.Ints) && v.Ints[j] == v.Ints[i] {
			j++
		}
		n := binary.PutVarint(tmp[:], v.Ints[i])
		w.Write(tmp[:n])
		n = binary.PutUvarint(tmp[:], uint64(j-i))
		w.Write(tmp[:n])
		i = j
	}
}

func decodeRLE(r *bytes.Reader, v *Vec, n int) error {
	v.Ints = make([]int64, 0, n)
	for len(v.Ints) < n {
		val, err := binary.ReadVarint(r)
		if err != nil {
			return fmt.Errorf("colfile: rle value: %w", err)
		}
		run, err := binary.ReadUvarint(r)
		if err != nil {
			return fmt.Errorf("colfile: rle run: %w", err)
		}
		if run == 0 || len(v.Ints)+int(run) > n {
			return fmt.Errorf("colfile: rle run %d overflows %d rows", run, n)
		}
		for k := uint64(0); k < run; k++ {
			v.Ints = append(v.Ints, val)
		}
	}
	return nil
}
