package colfile

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// File layout:
//
//	[chunk bytes ...][footer JSON][footer length: 8 bytes LE][magic: 4 bytes]
//
// The footer records the schema, each row group's per-column chunk offsets,
// and zone-map statistics.
var fileMagic = []byte("PCF1")

// ColStats holds the zone map for one column chunk. Min/Max are stored as the
// JSON-friendly representations of the column type; NullCount counts NULLs.
type ColStats struct {
	MinInt    *int64   `json:"min_int,omitempty"`
	MaxInt    *int64   `json:"max_int,omitempty"`
	MinFloat  *float64 `json:"min_float,omitempty"`
	MaxFloat  *float64 `json:"max_float,omitempty"`
	MinStr    *string  `json:"min_str,omitempty"`
	MaxStr    *string  `json:"max_str,omitempty"`
	NullCount int      `json:"null_count"`
}

// chunkMeta locates one column chunk within the file.
type chunkMeta struct {
	Offset int64    `json:"offset"`
	Length int64    `json:"length"`
	Stats  ColStats `json:"stats"`
}

// rowGroupMeta describes one row group.
type rowGroupMeta struct {
	NumRows int         `json:"num_rows"`
	Chunks  []chunkMeta `json:"chunks"`
}

type footer struct {
	Schema    Schema         `json:"schema"`
	RowGroups []rowGroupMeta `json:"row_groups"`
	NumRows   int64          `json:"num_rows"`
	// SortedBy names the column the writer declared rows ordered by within
	// each row group (Z-order / clustering stand-in); empty if unsorted.
	SortedBy string `json:"sorted_by,omitempty"`
	// Sketches holds one per-column statistics sketch (row/NULL counts,
	// min/max, NDV bitmap) for the whole file, schema-aligned. Absent in
	// files sealed before sketches existed — readers must tolerate nil.
	Sketches []ColSketch `json:"sketches,omitempty"`
}

// Writer builds a columnar file in memory.
type Writer struct {
	schema   Schema
	sortedBy string
	buf      bytes.Buffer
	meta     footer
	finished bool
}

// NewWriter creates a writer for the schema.
func NewWriter(schema Schema) *Writer {
	return &Writer{schema: schema, meta: footer{Schema: schema}}
}

// SetSortedBy declares the clustering column recorded in the footer.
func (w *Writer) SetSortedBy(col string) { w.sortedBy = col }

// WriteBatch appends one row group containing the batch's logical rows.
// Selection vectors never reach the file format: a selected batch is
// materialized densely first (docs/VECTORIZATION.md, boundary rule).
func (w *Writer) WriteBatch(b *Batch) error {
	if w.finished {
		return errors.New("colfile: writer already finished")
	}
	b = b.Materialize()
	if !b.Schema.Equal(w.schema) {
		return fmt.Errorf("colfile: batch schema %v does not match file schema %v", b.Schema, w.schema)
	}
	n := b.NumRows()
	if n == 0 {
		return nil
	}
	if w.meta.Sketches == nil {
		w.meta.Sketches = make([]ColSketch, len(w.schema))
	}
	rg := rowGroupMeta{NumRows: n, Chunks: make([]chunkMeta, len(b.Cols))}
	for i, col := range b.Cols {
		if col.Len() != n {
			return fmt.Errorf("colfile: column %d has %d rows, batch has %d", i, col.Len(), n)
		}
		w.meta.Sketches[i].Observe(col)
		data, err := encodeChunk(col)
		if err != nil {
			return err
		}
		rg.Chunks[i] = chunkMeta{
			Offset: int64(w.buf.Len()),
			Length: int64(len(data)),
			Stats:  computeStats(col),
		}
		w.buf.Write(data)
	}
	w.meta.RowGroups = append(w.meta.RowGroups, rg)
	w.meta.NumRows += int64(n)
	return nil
}

// Finish seals the file and returns its bytes. The writer cannot be reused.
func (w *Writer) Finish() ([]byte, error) {
	if w.finished {
		return nil, errors.New("colfile: writer already finished")
	}
	w.finished = true
	w.meta.SortedBy = w.sortedBy
	fj, err := json.Marshal(w.meta)
	if err != nil {
		return nil, err
	}
	w.buf.Write(fj)
	var lenBuf [8]byte
	binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(fj)))
	w.buf.Write(lenBuf[:])
	w.buf.Write(fileMagic)
	return w.buf.Bytes(), nil
}

// NumRows returns the rows written so far.
func (w *Writer) NumRows() int64 { return w.meta.NumRows }

// Sketches returns the per-column statistics sketches accumulated so far
// (schema-aligned; nil before the first batch). Write paths attach these to
// the manifest action after sealing so table stats stay fresh under DML.
func (w *Writer) Sketches() []ColSketch { return w.meta.Sketches }

func computeStats(v *Vec) ColStats {
	var st ColStats
	first := true
	nonFinite := false
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			st.NullCount++
			continue
		}
		switch v.Type {
		case Int64:
			x := v.Ints[i]
			if first || x < *st.MinInt {
				st.MinInt = ptr(x)
			}
			if first || x > *st.MaxInt {
				st.MaxInt = ptr(x)
			}
		case Float64:
			x := v.Floats[i]
			if math.IsNaN(x) || math.IsInf(x, 0) {
				// Non-finite values are not JSON-encodable and would poison
				// the zone map; drop the map for this chunk (no pruning).
				nonFinite = true
				continue
			}
			if first || st.MinFloat == nil || x < *st.MinFloat {
				st.MinFloat = ptr(x)
			}
			if first || st.MaxFloat == nil || x > *st.MaxFloat {
				st.MaxFloat = ptr(x)
			}
		case String:
			x := v.Strs[i]
			if first || x < *st.MinStr {
				st.MinStr = ptr(x)
			}
			if first || x > *st.MaxStr {
				st.MaxStr = ptr(x)
			}
		case Bool:
			// no zone map for bools
		}
		first = false
	}
	if nonFinite {
		st.MinFloat, st.MaxFloat = nil, nil
	}
	return st
}

func ptr[T any](x T) *T { v := x; return &v }

// Reader provides random access to a sealed file's row groups.
type Reader struct {
	data []byte
	meta footer
}

// OpenReader parses the footer of a sealed file.
func OpenReader(data []byte) (*Reader, error) {
	if len(data) < 12 || !bytes.Equal(data[len(data)-4:], fileMagic) {
		return nil, errors.New("colfile: bad magic")
	}
	flen := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])
	fstart := uint64(len(data)) - 12 - flen
	if flen > uint64(len(data))-12 {
		return nil, errors.New("colfile: footer length out of range")
	}
	var meta footer
	if err := json.Unmarshal(data[fstart:fstart+flen], &meta); err != nil {
		return nil, fmt.Errorf("colfile: parse footer: %w", err)
	}
	return &Reader{data: data, meta: meta}, nil
}

// Schema returns the file schema.
func (r *Reader) Schema() Schema { return r.meta.Schema }

// NumRows returns the total number of rows in the file.
func (r *Reader) NumRows() int64 { return r.meta.NumRows }

// NumRowGroups returns the number of row groups.
func (r *Reader) NumRowGroups() int { return len(r.meta.RowGroups) }

// RowGroupRows returns the row count of group g.
func (r *Reader) RowGroupRows(g int) int { return r.meta.RowGroups[g].NumRows }

// SortedBy returns the clustering column declared by the writer.
func (r *Reader) SortedBy() string { return r.meta.SortedBy }

// Sketches returns the file-level per-column statistics sketches, or nil for
// files sealed before sketches existed.
func (r *Reader) Sketches() []ColSketch { return r.meta.Sketches }

// Stats returns the zone map for column c of row group g.
func (r *Reader) Stats(g, c int) ColStats { return r.meta.RowGroups[g].Chunks[c].Stats }

// ReadColumn decodes column c of row group g.
func (r *Reader) ReadColumn(g, c int) (*Vec, error) {
	if g < 0 || g >= len(r.meta.RowGroups) {
		return nil, fmt.Errorf("colfile: row group %d out of range", g)
	}
	rg := r.meta.RowGroups[g]
	if c < 0 || c >= len(rg.Chunks) {
		return nil, fmt.Errorf("colfile: column %d out of range", c)
	}
	ch := rg.Chunks[c]
	if ch.Offset+ch.Length > int64(len(r.data)) {
		return nil, errors.New("colfile: chunk out of file bounds")
	}
	return decodeChunk(r.data[ch.Offset:ch.Offset+ch.Length], r.meta.Schema[c].Type, rg.NumRows)
}

// ReadRowGroup decodes the given columns (all columns when cols is nil) of
// row group g into a batch whose schema is the projection.
func (r *Reader) ReadRowGroup(g int, cols []int) (*Batch, error) {
	if cols == nil {
		cols = make([]int, len(r.meta.Schema))
		for i := range cols {
			cols[i] = i
		}
	}
	schema := make(Schema, len(cols))
	vecs := make([]*Vec, len(cols))
	for i, c := range cols {
		if c < 0 || c >= len(r.meta.Schema) {
			return nil, fmt.Errorf("colfile: column %d out of range", c)
		}
		schema[i] = r.meta.Schema[c]
		v, err := r.ReadColumn(g, c)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	return &Batch{Schema: schema, Cols: vecs}, nil
}

// ReadAll decodes the whole file into one batch (all row groups, all columns).
func (r *Reader) ReadAll() (*Batch, error) {
	out := NewBatch(r.meta.Schema)
	for g := 0; g < r.NumRowGroups(); g++ {
		b, err := r.ReadRowGroup(g, nil)
		if err != nil {
			return nil, err
		}
		out.AppendBatch(b)
	}
	return out, nil
}

// PruneInt reports whether row group g can be skipped for a predicate
// col ∈ [lo, hi] using the zone map; true means provably no matching rows.
func (r *Reader) PruneInt(g, c int, lo, hi int64) bool {
	st := r.Stats(g, c)
	if st.MinInt == nil || st.MaxInt == nil {
		return false
	}
	return *st.MinInt > hi || *st.MaxInt < lo
}

// PruneStr is the string analogue of PruneInt.
func (r *Reader) PruneStr(g, c int, lo, hi string) bool {
	st := r.Stats(g, c)
	if st.MinStr == nil || st.MaxStr == nil {
		return false
	}
	return *st.MinStr > hi || *st.MaxStr < lo
}

// FileStats summarizes a file for compaction decisions (paper Section 5.1).
type FileStats struct {
	NumRows   int64
	NumGroups int
	SizeBytes int64
}

// QuickStats reads only the footer-derived statistics.
func QuickStats(data []byte) (FileStats, error) {
	r, err := OpenReader(data)
	if err != nil {
		return FileStats{}, err
	}
	return FileStats{NumRows: r.NumRows(), NumGroups: r.NumRowGroups(), SizeBytes: int64(len(data))}, nil
}
