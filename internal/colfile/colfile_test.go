package colfile

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func testSchema() Schema {
	return Schema{
		{Name: "id", Type: Int64},
		{Name: "price", Type: Float64},
		{Name: "name", Type: String},
		{Name: "flag", Type: Bool},
	}
}

func buildBatch(t *testing.T, n int, seed int64) *Batch {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBatch(testSchema())
	for i := 0; i < n; i++ {
		if err := b.AppendRow(int64(i), rng.Float64()*100, fmt.Sprintf("name-%d", rng.Intn(10)), i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	b := buildBatch(t, 100, 1)
	w := NewWriter(testSchema())
	if err := w.WriteBatch(b); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := OpenReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRows() != 100 || r.NumRowGroups() != 1 {
		t.Fatalf("rows=%d groups=%d", r.NumRows(), r.NumRowGroups())
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 100 {
		t.Fatalf("read %d rows", got.NumRows())
	}
	for i := 0; i < 100; i++ {
		if !reflect.DeepEqual(got.Row(i), b.Row(i)) {
			t.Fatalf("row %d: got %v, want %v", i, got.Row(i), b.Row(i))
		}
	}
}

func TestMultipleRowGroups(t *testing.T) {
	w := NewWriter(testSchema())
	for g := 0; g < 5; g++ {
		if err := w.WriteBatch(buildBatch(t, 20, int64(g))); err != nil {
			t.Fatal(err)
		}
	}
	data, _ := w.Finish()
	r, err := OpenReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumRowGroups() != 5 || r.NumRows() != 100 {
		t.Fatalf("groups=%d rows=%d", r.NumRowGroups(), r.NumRows())
	}
	for g := 0; g < 5; g++ {
		if r.RowGroupRows(g) != 20 {
			t.Fatalf("group %d rows = %d", g, r.RowGroupRows(g))
		}
	}
}

func TestColumnProjection(t *testing.T) {
	b := buildBatch(t, 50, 2)
	w := NewWriter(testSchema())
	_ = w.WriteBatch(b)
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	got, err := r.ReadRowGroup(0, []int{2, 0}) // name, id
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != 2 || got.Schema[0].Name != "name" || got.Schema[1].Name != "id" {
		t.Fatalf("projection schema = %v", got.Schema)
	}
	if got.Cols[1].Ints[7] != 7 {
		t.Fatalf("id[7] = %d", got.Cols[1].Ints[7])
	}
}

func TestNullsRoundTrip(t *testing.T) {
	schema := Schema{{Name: "a", Type: Int64}, {Name: "s", Type: String}}
	b := NewBatch(schema)
	for i := 0; i < 30; i++ {
		if i%3 == 0 {
			_ = b.AppendRow(nil, nil)
		} else {
			_ = b.AppendRow(int64(i), fmt.Sprintf("v%d", i))
		}
	}
	w := NewWriter(schema)
	_ = w.WriteBatch(b)
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		wantNull := i%3 == 0
		if got.Cols[0].IsNull(i) != wantNull || got.Cols[1].IsNull(i) != wantNull {
			t.Fatalf("row %d null = %v/%v, want %v", i, got.Cols[0].IsNull(i), got.Cols[1].IsNull(i), wantNull)
		}
		if !wantNull && got.Cols[0].Ints[i] != int64(i) {
			t.Fatalf("row %d value = %d", i, got.Cols[0].Ints[i])
		}
	}
	st := r.Stats(0, 0)
	if st.NullCount != 10 {
		t.Fatalf("null count = %d", st.NullCount)
	}
}

func TestZoneMapStats(t *testing.T) {
	schema := Schema{{Name: "k", Type: Int64}, {Name: "s", Type: String}}
	w := NewWriter(schema)
	b := NewBatch(schema)
	for i := 10; i < 20; i++ {
		_ = b.AppendRow(int64(i), fmt.Sprintf("%c", 'a'+i-10))
	}
	_ = w.WriteBatch(b)
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	st := r.Stats(0, 0)
	if *st.MinInt != 10 || *st.MaxInt != 19 {
		t.Fatalf("int stats = [%d,%d]", *st.MinInt, *st.MaxInt)
	}
	ss := r.Stats(0, 1)
	if *ss.MinStr != "a" || *ss.MaxStr != "j" {
		t.Fatalf("str stats = [%s,%s]", *ss.MinStr, *ss.MaxStr)
	}
}

func TestPruning(t *testing.T) {
	schema := Schema{{Name: "k", Type: Int64}}
	w := NewWriter(schema)
	for g := 0; g < 3; g++ {
		b := NewBatch(schema)
		for i := 0; i < 10; i++ {
			_ = b.AppendRow(int64(g*100 + i))
		}
		_ = w.WriteBatch(b)
	}
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	// predicate k in [100, 109] should prune groups 0 and 2
	if !r.PruneInt(0, 0, 100, 109) || r.PruneInt(1, 0, 100, 109) || !r.PruneInt(2, 0, 100, 109) {
		t.Fatal("int pruning wrong")
	}
}

func TestDictionaryEncodingChosen(t *testing.T) {
	v := NewVec(String)
	for i := 0; i < 1000; i++ {
		v.AppendStr(fmt.Sprintf("cat-%d", i%5))
	}
	if chooseEncoding(v) != encDict {
		t.Fatal("expected dictionary encoding for low-cardinality strings")
	}
	data, err := encodeChunk(v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeChunk(data, String, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Strs {
		if got.Strs[i] != v.Strs[i] {
			t.Fatalf("dict round trip failed at %d", i)
		}
	}
}

func TestRLEEncodingChosen(t *testing.T) {
	v := NewVec(Int64)
	for i := 0; i < 1000; i++ {
		v.AppendInt(int64(i / 100))
	}
	if chooseEncoding(v) != encRLE {
		t.Fatal("expected RLE for runny ints")
	}
	data, _ := encodeChunk(v)
	got, err := decodeChunk(data, Int64, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v.Ints {
		if got.Ints[i] != v.Ints[i] {
			t.Fatalf("rle round trip failed at %d", i)
		}
	}
}

func TestHighCardinalityUsesPlain(t *testing.T) {
	v := NewVec(String)
	for i := 0; i < 100; i++ {
		v.AppendStr(fmt.Sprintf("unique-%d", i))
	}
	if chooseEncoding(v) != encPlain {
		t.Fatal("expected plain for high-cardinality strings")
	}
}

func TestCorruptFile(t *testing.T) {
	for i, data := range [][]byte{nil, []byte("tiny"), []byte("this is not a columnar file at all....")} {
		if _, err := OpenReader(data); err == nil {
			t.Fatalf("case %d: corrupt file accepted", i)
		}
	}
	// valid file with clipped chunk region
	w := NewWriter(Schema{{Name: "k", Type: Int64}})
	b := NewBatch(Schema{{Name: "k", Type: Int64}})
	_ = b.AppendRow(int64(1))
	_ = w.WriteBatch(b)
	data, _ := w.Finish()
	// corrupt footer length
	data[len(data)-12] ^= 0xFF
	if _, err := OpenReader(data); err == nil {
		t.Fatal("corrupt footer length accepted")
	}
}

func TestWriterMisuse(t *testing.T) {
	w := NewWriter(testSchema())
	_, err := w.Finish()
	if err != nil {
		t.Fatal(err) // empty file is legal
	}
	if err := w.WriteBatch(buildBatch(t, 1, 0)); err == nil {
		t.Fatal("write after finish accepted")
	}
	if _, err := w.Finish(); err == nil {
		t.Fatal("double finish accepted")
	}
	w2 := NewWriter(testSchema())
	wrong := NewBatch(Schema{{Name: "x", Type: Int64}})
	_ = wrong.AppendRow(int64(1))
	if err := w2.WriteBatch(wrong); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}

func TestEmptyBatchSkipped(t *testing.T) {
	w := NewWriter(testSchema())
	if err := w.WriteBatch(NewBatch(testSchema())); err != nil {
		t.Fatal(err)
	}
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	if r.NumRowGroups() != 0 {
		t.Fatal("empty batch created a row group")
	}
}

func TestSortedByMetadata(t *testing.T) {
	w := NewWriter(testSchema())
	w.SetSortedBy("id")
	_ = w.WriteBatch(buildBatch(t, 10, 3))
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	if r.SortedBy() != "id" {
		t.Fatalf("SortedBy = %q", r.SortedBy())
	}
}

func TestQuickStats(t *testing.T) {
	w := NewWriter(testSchema())
	_ = w.WriteBatch(buildBatch(t, 42, 4))
	data, _ := w.Finish()
	st, err := QuickStats(data)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRows != 42 || st.NumGroups != 1 || st.SizeBytes != int64(len(data)) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVecFilterSlice(t *testing.T) {
	v := NewVec(Int64)
	for i := 0; i < 10; i++ {
		v.AppendInt(int64(i))
	}
	keep := make([]bool, 10)
	keep[2], keep[5] = true, true
	f := v.Filter(keep)
	if f.Len() != 2 || f.Ints[0] != 2 || f.Ints[1] != 5 {
		t.Fatalf("filter = %v", f.Ints)
	}
	s := v.Slice(3, 6)
	if s.Len() != 3 || s.Ints[0] != 3 {
		t.Fatalf("slice = %v", s.Ints)
	}
}

func TestBatchAppendRowArityError(t *testing.T) {
	b := NewBatch(testSchema())
	if err := b.AppendRow(int64(1)); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := b.AppendRow("str", 1.0, "x", true); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestFloatSpecials(t *testing.T) {
	schema := Schema{{Name: "f", Type: Float64}}
	b := NewBatch(schema)
	vals := []float64{0, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64, -0.0}
	for _, f := range vals {
		_ = b.AppendRow(f)
	}
	w := NewWriter(schema)
	_ = w.WriteBatch(b)
	data, _ := w.Finish()
	r, _ := OpenReader(data)
	got, _ := r.ReadAll()
	for i, f := range vals {
		if got.Cols[0].Floats[i] != f {
			t.Fatalf("float %d: got %v want %v", i, got.Cols[0].Floats[i], f)
		}
	}
}

func TestPropertyIntColumnRoundTrip(t *testing.T) {
	f := func(xs []int64) bool {
		v := NewVec(Int64)
		v.Ints = xs
		data, err := encodeChunk(v)
		if err != nil {
			return false
		}
		got, err := decodeChunk(data, Int64, len(xs))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Ints, make0(xs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// make0 normalizes nil vs empty slices for DeepEqual.
func make0(xs []int64) []int64 {
	if xs == nil {
		return []int64{}
	}
	return xs
}

func TestPropertyStringColumnRoundTrip(t *testing.T) {
	f := func(xs []string) bool {
		v := NewVec(String)
		v.Strs = xs
		data, err := encodeChunk(v)
		if err != nil {
			return false
		}
		got, err := decodeChunk(data, String, len(xs))
		if err != nil {
			return false
		}
		for i := range xs {
			if got.Strs[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFileRoundTrip(t *testing.T) {
	type row struct {
		A int64
		B float64
		C string
		D bool
	}
	schema := Schema{{Name: "a", Type: Int64}, {Name: "b", Type: Float64}, {Name: "c", Type: String}, {Name: "d", Type: Bool}}
	f := func(rows []row) bool {
		b := NewBatch(schema)
		for _, r := range rows {
			if math.IsNaN(r.B) {
				r.B = 0 // NaN != NaN breaks comparison, not a format property
			}
			if err := b.AppendRow(r.A, r.B, r.C, r.D); err != nil {
				return false
			}
		}
		w := NewWriter(schema)
		if err := w.WriteBatch(b); err != nil {
			return false
		}
		data, err := w.Finish()
		if err != nil {
			return false
		}
		rd, err := OpenReader(data)
		if err != nil {
			return false
		}
		got, err := rd.ReadAll()
		if err != nil {
			return false
		}
		if got.NumRows() != len(rows) {
			return false
		}
		for i := range rows {
			if !reflect.DeepEqual(got.Row(i), b.Row(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVecTake(t *testing.T) {
	v := NewVec(Int64)
	for i := 0; i < 5; i++ {
		v.AppendInt(int64(i * 10))
	}
	v.AppendNull()
	got := v.Take([]int{4, -1, 0, 5, 2})
	if got.Len() != 5 {
		t.Fatalf("len = %d", got.Len())
	}
	if got.Ints[0] != 40 || got.Ints[2] != 0 || got.Ints[4] != 20 {
		t.Fatalf("take = %v", got.Ints)
	}
	if !got.IsNull(1) || !got.IsNull(3) {
		t.Fatal("-1 and NULL source positions must be NULL")
	}
	if got.IsNull(0) || got.IsNull(2) || got.IsNull(4) {
		t.Fatal("value positions marked NULL")
	}

	// Every type, per-row equivalence with Append.
	b := buildBatch(t, 50, 7)
	b.Cols[2].Strs[9] = "x\x00y"
	idx := []int{49, 0, -1, 9, 9, 25}
	tb := b.Take(idx)
	for k, i := range idx {
		for c := range b.Cols {
			var want any
			if i >= 0 {
				want = b.Cols[c].Value(i)
			}
			if got := tb.Cols[c].Value(k); !reflect.DeepEqual(got, want) {
				t.Fatalf("col %d row %d: got %v want %v", c, k, got, want)
			}
		}
	}
}

func TestVecFilterSliceWithNulls(t *testing.T) {
	v := NewVec(String)
	v.AppendStr("a")
	v.AppendNull()
	v.AppendStr("c")
	v.AppendStr("d")
	f := v.Filter([]bool{true, true, false, true})
	if f.Len() != 3 || f.Strs[0] != "a" || !f.IsNull(1) || f.Strs[2] != "d" {
		t.Fatalf("filter = %v nulls=%v", f.Strs, f.Nulls)
	}
	s := v.Slice(1, 3)
	if s.Len() != 2 || !s.IsNull(0) || s.Strs[1] != "c" {
		t.Fatalf("slice = %v nulls=%v", s.Strs, s.Nulls)
	}
	// Slicing a null-free window of a nullable vector drops the null mask.
	s2 := v.Slice(2, 4)
	if s2.Nulls != nil {
		t.Fatalf("null-free slice kept mask %v", s2.Nulls)
	}
	// Slice must not alias the source.
	s.Strs[1] = "mut"
	if v.Strs[2] != "c" {
		t.Fatal("slice aliases source")
	}
}

func TestAppendKeyDistinguishesTypesAndNulls(t *testing.T) {
	enc := func(v *Vec, i int) string { return string(v.AppendKey(nil, i)) }

	iv := NewVec(Int64)
	iv.AppendInt(0)
	iv.AppendInt(1)
	iv.AppendInt(-1)
	iv.AppendNull()
	keys := map[string]bool{}
	for i := 0; i < 4; i++ {
		keys[enc(iv, i)] = true
	}
	if len(keys) != 4 {
		t.Fatalf("int keys collide: %d distinct of 4", len(keys))
	}
	// Order-preserving: -1 < 0 < 1 bytewise.
	if !(enc(iv, 2) < enc(iv, 0) && enc(iv, 0) < enc(iv, 1)) {
		t.Fatal("int key encoding is not order-preserving")
	}

	fv := NewVec(Float64)
	fv.AppendFloat(-2.5)
	fv.AppendFloat(0)
	fv.AppendFloat(3.25)
	if !(enc(fv, 0) < enc(fv, 1) && enc(fv, 1) < enc(fv, 2)) {
		t.Fatal("float key encoding is not order-preserving")
	}

	// NULL never equals any value, including zero values.
	bv := NewVec(Bool)
	bv.AppendBool(false)
	bv.AppendNull()
	if enc(bv, 0) == enc(bv, 1) {
		t.Fatal("NULL bool collides with false")
	}
}

// TestAppendSortKeyOrderPreserving pins the ORDER BY key encoding: bytewise
// comparison of encoded keys must equal value comparison for every type,
// ascending and descending, with NULLs first ascending / last descending.
// Strings are the case AppendKey cannot serve (its length prefix sorts "ab"
// after "b"); the sort key's escaped terminator encoding must not.
func TestAppendSortKeyOrderPreserving(t *testing.T) {
	enc := func(v *Vec, i int, desc bool) string {
		return string(v.AppendSortKey(nil, i, desc))
	}
	// Ascending-ordered probe values per type, NULL first (the engine's
	// ascending order). Index order == expected encoded order.
	sv := NewVec(String)
	sv.AppendNull()
	sv.AppendStr("")
	sv.AppendStr("a")
	sv.AppendStr("a\x00")
	sv.AppendStr("a\x00b")
	sv.AppendStr("ab")
	sv.AppendStr("b")
	iv := NewVec(Int64)
	iv.AppendNull()
	iv.AppendInt(-1 << 62)
	iv.AppendInt(-1)
	iv.AppendInt(0)
	iv.AppendInt(1)
	iv.AppendInt(1 << 62)
	fv := NewVec(Float64)
	fv.AppendNull()
	fv.AppendFloat(-1e300)
	fv.AppendFloat(-0.5)
	fv.AppendFloat(0)
	fv.AppendFloat(2.25)
	bv := NewVec(Bool)
	bv.AppendNull()
	bv.AppendBool(false)
	bv.AppendBool(true)

	for _, v := range []*Vec{sv, iv, fv, bv} {
		for i := 0; i+1 < v.Len(); i++ {
			if !(enc(v, i, false) < enc(v, i+1, false)) {
				t.Fatalf("%s asc: position %d not below %d (%v vs %v)", v.Type, i, i+1, v.Value(i), v.Value(i+1))
			}
			if !(enc(v, i, true) > enc(v, i+1, true)) {
				t.Fatalf("%s desc: position %d not above %d (%v vs %v)", v.Type, i, i+1, v.Value(i), v.Value(i+1))
			}
		}
		// Equal values must encode equal both directions (stability ties).
		for i := 0; i < v.Len(); i++ {
			if enc(v, i, false) != enc(v, i, false) || enc(v, i, true) != enc(v, i, true) {
				t.Fatalf("%s: self-compare not equal at %d", v.Type, i)
			}
		}
	}

	// Self-delimiting across columns: (a, b) vs (ab, ...) must order by the
	// first column alone, desc included.
	pair := func(a, b string, desc bool) string {
		v := NewVec(String)
		v.AppendStr(a)
		v.AppendStr(b)
		return string(v.AppendSortKey(v.AppendSortKey(nil, 0, desc), 1, desc))
	}
	if !(pair("a", "zzz", false) < pair("ab", "", false)) {
		t.Fatal("asc multi-column string keys not ordered by first column")
	}
	if !(pair("a", "zzz", true) > pair("ab", "", true)) {
		t.Fatal("desc multi-column string keys not ordered by first column")
	}
}
