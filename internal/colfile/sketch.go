package colfile

import "math"

// ColSketch is the per-column statistics sketch a Writer computes while a
// file is sealed: row/NULL counts, file-level min/max, and a fixed-size
// linear-counting bitmap estimating the number of distinct values. Sketches
// ride in the file footer and on the manifest entry of every data file, so
// table-level statistics are a pure fold over the live file entries — DML
// keeps them fresh with no separate ANALYZE pass.
//
// The NDV bitmap is mergeable by bitwise OR (the sketch of a union of files
// is the OR of their bitmaps), which is exactly how table-level NDV is
// derived. Estimates are estimates: deletions are not subtracted (a file's
// sketch describes the rows it was sealed with), and the bitmap saturates
// around sketchBits distinct values — both acceptable for the planner, which
// only needs relative cardinalities.
type ColSketch struct {
	// Rows counts every value observed, NULLs included.
	Rows int64 `json:"rows"`
	// Stats carries file-level min/max and the NULL count, in the same
	// JSON-friendly shape as the per-chunk zone maps.
	Stats ColStats `json:"stats"`
	// Bitmap is the linear-counting bitmap (sketchBits bits). Nil means NDV
	// is unknown for this column (e.g. a merge involving a pre-sketch file).
	Bitmap []byte `json:"ndv,omitempty"`
}

// sketchBits sizes the linear-counting bitmap. 2048 bits (256 bytes per
// column per file) keeps the estimate within a few percent up to roughly a
// thousand distinct values and degrades gracefully into saturation above —
// plenty of resolution for join-order and selectivity decisions.
const sketchBits = 2048

// fnv64a hashes an encoded value for the NDV bitmap.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// Observe folds every value of v into the sketch.
func (s *ColSketch) Observe(v *Vec) {
	if s.Bitmap == nil {
		s.Bitmap = make([]byte, sketchBits/8)
	}
	var scratch []byte
	n := v.Len()
	for i := 0; i < n; i++ {
		if v.IsNull(i) {
			s.Stats.NullCount++
			continue
		}
		scratch = v.AppendKey(scratch[:0], i)
		bit := fnv64a(scratch) % sketchBits
		s.Bitmap[bit/8] |= 1 << (bit % 8)
	}
	s.Rows += int64(n)
	s.Stats = mergeColStats(s.Stats, computeStats(v))
}

// Merge folds another sketch into s (the sketch of the concatenation of the
// two files). A nil bitmap on either side with values observed makes the
// merged NDV unknown.
func (s *ColSketch) Merge(o ColSketch) {
	s.Rows += o.Rows
	nulls := s.Stats.NullCount + o.Stats.NullCount
	s.Stats = mergeColStats(s.Stats, o.Stats)
	s.Stats.NullCount = nulls
	switch {
	case o.Rows-int64(o.Stats.NullCount) == 0:
		// Nothing non-NULL on the other side: bitmap unchanged.
	case s.Rows-o.Rows-int64(nulls-o.Stats.NullCount) == 0 && s.Bitmap == nil:
		// This side had nothing non-NULL yet: adopt the other bitmap.
		s.Bitmap = append([]byte(nil), o.Bitmap...)
	case s.Bitmap == nil || o.Bitmap == nil || len(s.Bitmap) != len(o.Bitmap):
		s.Bitmap = nil // NDV unknown
	default:
		for i := range s.Bitmap {
			s.Bitmap[i] |= o.Bitmap[i]
		}
	}
}

// NonNullRows returns the number of non-NULL values observed.
func (s *ColSketch) NonNullRows() int64 { return s.Rows - int64(s.Stats.NullCount) }

// NDV estimates the number of distinct non-NULL values via linear counting:
// with m bits and z still zero, the estimate is m·ln(m/z). A saturated bitmap
// (z = 0) or a missing one estimates the non-NULL row count — the safe upper
// bound. The estimate is always clamped to [min(1, rows), rows].
func (s *ColSketch) NDV() int64 {
	rows := s.NonNullRows()
	if rows <= 0 {
		return 0
	}
	if s.Bitmap == nil {
		return rows
	}
	ones := int64(0)
	for _, b := range s.Bitmap {
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	zero := int64(len(s.Bitmap))*8 - ones
	if zero == 0 {
		return rows
	}
	m := float64(len(s.Bitmap)) * 8
	est := int64(math.Round(m * math.Log(m/float64(zero))))
	if est > rows {
		est = rows
	}
	if est < 1 {
		est = 1
	}
	return est
}

// mergeColStats folds the min/max of two zone-map summaries. NULL counts are
// the caller's responsibility (Observe counts them row by row; Merge sums
// them) — the result keeps a's count untouched.
func mergeColStats(a, b ColStats) ColStats {
	out := a
	if b.MinInt != nil && (out.MinInt == nil || *b.MinInt < *out.MinInt) {
		out.MinInt = b.MinInt
	}
	if b.MaxInt != nil && (out.MaxInt == nil || *b.MaxInt > *out.MaxInt) {
		out.MaxInt = b.MaxInt
	}
	if b.MinFloat != nil && (out.MinFloat == nil || *b.MinFloat < *out.MinFloat) {
		out.MinFloat = b.MinFloat
	}
	if b.MaxFloat != nil && (out.MaxFloat == nil || *b.MaxFloat > *out.MaxFloat) {
		out.MaxFloat = b.MaxFloat
	}
	if b.MinStr != nil && (out.MinStr == nil || *b.MinStr < *out.MinStr) {
		out.MinStr = b.MinStr
	}
	if b.MaxStr != nil && (out.MaxStr == nil || *b.MaxStr > *out.MaxStr) {
		out.MaxStr = b.MaxStr
	}
	return out
}
