// Package colfile implements an immutable columnar file format standing in
// for Apache Parquet (paper Section 2.3). Real Parquet is unavailable with a
// stdlib-only constraint, so colfile reproduces the structural properties the
// paper's storage engine relies on:
//
//   - row groups of column chunks, readable independently and in parallel;
//   - columnar encodings (plain, dictionary, run-length) plus flate
//     compression;
//   - per-row-group, per-column min/max zone maps for predicate pruning;
//   - a self-describing footer so a file is usable given only its bytes.
//
// Files are write-once: a Writer accumulates row groups and Finish seals the
// file. Readers never mutate file bytes, which is what makes log-structured
// storage's "discard on failure" recovery story work.
//
// In-memory, Vec and Batch are also the executor's vectorized currency:
// batches may carry a transient selection vector (Batch.Sel) between pipeline
// operators, and vectors expose reusable scratch (ResetLen, NullScratch) for
// allocation-free kernel evaluation. The selection-vector rules — logical vs
// physical rows, the materialize-at-boundaries rule — are specified in
// docs/VECTORIZATION.md.
package colfile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DataType enumerates supported column types.
type DataType uint8

// Supported column types.
const (
	Int64 DataType = iota
	Float64
	String
	Bool
)

// String renders the type name for error messages and plan display.
func (t DataType) String() string {
	switch t {
	case Int64:
		return "int64"
	case Float64:
		return "float64"
	case String:
		return "string"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("datatype(%d)", uint8(t))
	}
}

// Field is one column in a schema.
type Field struct {
	Name string   `json:"name"`
	Type DataType `json:"type"`
}

// Schema describes the columns of a file or table.
type Schema []Field

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, f := range s {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// Equal reports whether two schemas have identical fields.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Vec is a typed column vector: the unit of data exchanged between the file
// format and the vectorized execution engine. Exactly one payload slice is
// populated according to Type. Nulls, when non-nil, marks NULL positions.
type Vec struct {
	Type   DataType
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []bool
}

// NewVec returns an empty vector of the given type.
func NewVec(t DataType) *Vec { return &Vec{Type: t} }

// Len returns the number of values in the vector.
func (v *Vec) Len() int {
	switch v.Type {
	case Int64:
		return len(v.Ints)
	case Float64:
		return len(v.Floats)
	case String:
		return len(v.Strs)
	case Bool:
		return len(v.Bools)
	}
	return 0
}

// IsNull reports whether position i is NULL.
func (v *Vec) IsNull(i int) bool { return v.Nulls != nil && v.Nulls[i] }

// HasNulls reports whether the vector carries a NULL bitmap at all. A nil
// bitmap means "provably no NULLs", which is the fast path vectorized kernels
// branch on; a non-nil bitmap may still be all-false.
func (v *Vec) HasNulls() bool { return v.Nulls != nil }

// ResetLen prepares v for reuse as a kernel output: type t, exactly n value
// slots, reusing payload capacity from previous uses and clearing the NULL
// bitmap to nil. Slot values are unspecified until written — callers (the
// exec kernel runner) overwrite every lane they later read. This is the
// scratch-reuse primitive of the vectorized pipeline (docs/VECTORIZATION.md):
// in steady state a scratch vector never allocates.
func (v *Vec) ResetLen(t DataType, n int) {
	v.Type = t
	v.Nulls = nil
	switch t {
	case Int64:
		if cap(v.Ints) < n {
			v.Ints = make([]int64, n)
		} else {
			v.Ints = v.Ints[:n]
		}
	case Float64:
		if cap(v.Floats) < n {
			v.Floats = make([]float64, n)
		} else {
			v.Floats = v.Floats[:n]
		}
	case String:
		if cap(v.Strs) < n {
			v.Strs = make([]string, n)
		} else {
			v.Strs = v.Strs[:n]
		}
	case Bool:
		if cap(v.Bools) < n {
			v.Bools = make([]bool, n)
		} else {
			v.Bools = v.Bools[:n]
		}
	}
}

// NullScratch returns a zeroed NULL bitmap of length n, installed as v.Nulls
// and reusing its previous capacity. Kernels call it when at least one input
// carries NULLs; lanes outside the selection stay false, which is harmless
// because those lanes are never read.
func (v *Vec) NullScratch(n int) []bool {
	if cap(v.Nulls) < n {
		v.Nulls = make([]bool, n)
	} else {
		v.Nulls = v.Nulls[:n]
		for i := range v.Nulls {
			v.Nulls[i] = false
		}
	}
	return v.Nulls
}

// AppendInt appends an int64 value.
func (v *Vec) AppendInt(x int64) { v.Ints = append(v.Ints, x); v.growNull(false) }

// AppendFloat appends a float64 value.
func (v *Vec) AppendFloat(x float64) { v.Floats = append(v.Floats, x); v.growNull(false) }

// AppendStr appends a string value.
func (v *Vec) AppendStr(x string) { v.Strs = append(v.Strs, x); v.growNull(false) }

// AppendBool appends a bool value.
func (v *Vec) AppendBool(x bool) { v.Bools = append(v.Bools, x); v.growNull(false) }

// AppendNull appends a NULL of the vector's type.
func (v *Vec) AppendNull() {
	switch v.Type {
	case Int64:
		v.Ints = append(v.Ints, 0)
	case Float64:
		v.Floats = append(v.Floats, 0)
	case String:
		v.Strs = append(v.Strs, "")
	case Bool:
		v.Bools = append(v.Bools, false)
	}
	v.growNull(true)
}

func (v *Vec) growNull(isNull bool) {
	if v.Nulls == nil {
		if !isNull {
			return
		}
		v.Nulls = make([]bool, v.Len()-1, v.Len())
	}
	v.Nulls = append(v.Nulls, isNull)
}

// Value returns position i as an interface value (nil for NULL). Intended for
// row-at-a-time consumers such as result rendering; the execution engine
// works on the typed slices directly.
func (v *Vec) Value(i int) any {
	if v.IsNull(i) {
		return nil
	}
	switch v.Type {
	case Int64:
		return v.Ints[i]
	case Float64:
		return v.Floats[i]
	case String:
		return v.Strs[i]
	case Bool:
		return v.Bools[i]
	}
	return nil
}

// Key-encoding tag bytes. Every encoded value starts with one of these, so a
// NULL can never collide with a value and adjacent columns stay
// self-delimiting.
const (
	keyNull  = 0x00
	keyValue = 0x01
)

// AppendKey appends a self-delimiting binary encoding of position i to dst
// and returns the extended slice. The encoding is the engine's canonical
// hash/group key: two rows encode to the same bytes iff their values are
// equal column by column. Unlike a separator-based text rendering, it cannot
// collide across column boundaries (strings are length-prefixed, so
// ("a\x00","b") and ("a","\x00b") differ) and it never boxes the value.
// Int64 and Float64 use order-preserving big-endian transforms, so a
// bytewise sort of encoded keys sorts numeric groups in value order.
func (v *Vec) AppendKey(dst []byte, i int) []byte {
	if v.IsNull(i) {
		return append(dst, keyNull)
	}
	switch v.Type {
	case Int64:
		u := uint64(v.Ints[i]) ^ (1 << 63) // flip sign bit: bytewise order = numeric order
		return binary.BigEndian.AppendUint64(append(dst, keyValue), u)
	case Float64:
		u := math.Float64bits(v.Floats[i])
		if u&(1<<63) != 0 {
			u = ^u // negative floats: reverse order
		} else {
			u ^= 1 << 63
		}
		return binary.BigEndian.AppendUint64(append(dst, keyValue), u)
	case String:
		s := v.Strs[i]
		dst = binary.AppendUvarint(append(dst, keyValue), uint64(len(s)))
		return append(dst, s...)
	case Bool:
		if v.Bools[i] {
			return append(dst, keyValue, 1)
		}
		return append(dst, keyValue, 0)
	}
	return append(dst, keyNull)
}

// AppendSortKey appends an order-preserving binary encoding of position i to
// dst and returns the extended slice: bytewise comparison of two encoded keys
// equals the engine's ORDER BY comparison of the underlying values. It is the
// sort-order counterpart of AppendKey and reuses AppendKey's typed transforms
// wherever they already preserve order (Int64 sign-flip, Float64 total-order
// transform, Bool, and the NULL tag, which sorts NULLs first). Strings differ:
// AppendKey's length prefix breaks lexicographic byte order ("b" < "ab" after
// encoding), so the sort key instead escapes embedded 0x00 bytes (0x00 →
// 0x00 0xFF) and closes with a 0x00 0x00 terminator, keeping the encoding
// both order-preserving and self-delimiting across columns.
//
// With desc the bytes are appended complemented, which reverses their
// comparison order: DESC keys sort descending — and NULLs last — under the
// same ascending bytewise compare, so multi-column keys with mixed
// directions still reduce to one memcmp.
func (v *Vec) AppendSortKey(dst []byte, i int, desc bool) []byte {
	start := len(dst)
	switch {
	case v.IsNull(i):
		dst = append(dst, keyNull)
	case v.Type == String:
		s := v.Strs[i]
		dst = append(dst, keyValue)
		for j := 0; j < len(s); j++ {
			if s[j] == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, s[j])
			}
		}
		dst = append(dst, 0x00, 0x00)
	default:
		dst = v.AppendKey(dst, i)
	}
	if desc {
		for j := start; j < len(dst); j++ {
			dst[j] = ^dst[j]
		}
	}
	return dst
}

// Append appends position i of src (which must have the same type).
func (v *Vec) Append(src *Vec, i int) {
	if src.IsNull(i) {
		v.AppendNull()
		return
	}
	switch v.Type {
	case Int64:
		v.AppendInt(src.Ints[i])
	case Float64:
		v.AppendFloat(src.Floats[i])
	case String:
		v.AppendStr(src.Strs[i])
	case Bool:
		v.AppendBool(src.Bools[i])
	}
}

// AppendValue appends a Go value, converting compatible types.
func (v *Vec) AppendValue(x any) error {
	if x == nil {
		v.AppendNull()
		return nil
	}
	switch v.Type {
	case Int64:
		switch t := x.(type) {
		case int64:
			v.AppendInt(t)
		case int:
			v.AppendInt(int64(t))
		case float64:
			v.AppendInt(int64(t))
		default:
			return fmt.Errorf("colfile: cannot append %T to int64 column", x)
		}
	case Float64:
		switch t := x.(type) {
		case float64:
			v.AppendFloat(t)
		case int64:
			v.AppendFloat(float64(t))
		case int:
			v.AppendFloat(float64(t))
		default:
			return fmt.Errorf("colfile: cannot append %T to float64 column", x)
		}
	case String:
		t, ok := x.(string)
		if !ok {
			return fmt.Errorf("colfile: cannot append %T to string column", x)
		}
		v.AppendStr(t)
	case Bool:
		t, ok := x.(bool)
		if !ok {
			return fmt.Errorf("colfile: cannot append %T to bool column", x)
		}
		v.AppendBool(t)
	}
	return nil
}

// Take gathers the given positions into a new vector: out[k] = v[idx[k]].
// An index of -1 yields NULL, which is how join gathers pad the unmatched
// side of an outer join. The gather is a typed bulk copy — no per-row
// interface boxing.
func (v *Vec) Take(idx []int) *Vec {
	n := len(idx)
	out := &Vec{Type: v.Type}
	var nulls []bool
	setNull := func(k int) {
		if nulls == nil {
			nulls = make([]bool, n)
		}
		nulls[k] = true
	}
	switch v.Type {
	case Int64:
		out.Ints = make([]int64, n)
		for k, i := range idx {
			if i < 0 || v.IsNull(i) {
				setNull(k)
				continue
			}
			out.Ints[k] = v.Ints[i]
		}
	case Float64:
		out.Floats = make([]float64, n)
		for k, i := range idx {
			if i < 0 || v.IsNull(i) {
				setNull(k)
				continue
			}
			out.Floats[k] = v.Floats[i]
		}
	case String:
		out.Strs = make([]string, n)
		for k, i := range idx {
			if i < 0 || v.IsNull(i) {
				setNull(k)
				continue
			}
			out.Strs[k] = v.Strs[i]
		}
	case Bool:
		out.Bools = make([]bool, n)
		for k, i := range idx {
			if i < 0 || v.IsNull(i) {
				setNull(k)
				continue
			}
			out.Bools[k] = v.Bools[i]
		}
	}
	out.Nulls = nulls
	return out
}

// Filter returns a new vector containing only positions where keep[i] is
// true. The kept positions are copied with typed bulk loops rather than
// per-row appends.
func (v *Vec) Filter(keep []bool) *Vec {
	kept := 0
	for _, k := range keep {
		if k {
			kept++
		}
	}
	out := &Vec{Type: v.Type}
	var nulls []bool
	hasNull := false
	if v.Nulls != nil {
		nulls = make([]bool, kept)
	}
	o := 0
	fill := func(i int) {
		if nulls != nil && v.Nulls[i] {
			nulls[o] = true
			hasNull = true
		}
	}
	switch v.Type {
	case Int64:
		out.Ints = make([]int64, kept)
		for i, k := range keep {
			if k {
				out.Ints[o] = v.Ints[i]
				fill(i)
				o++
			}
		}
	case Float64:
		out.Floats = make([]float64, kept)
		for i, k := range keep {
			if k {
				out.Floats[o] = v.Floats[i]
				fill(i)
				o++
			}
		}
	case String:
		out.Strs = make([]string, kept)
		for i, k := range keep {
			if k {
				out.Strs[o] = v.Strs[i]
				fill(i)
				o++
			}
		}
	case Bool:
		out.Bools = make([]bool, kept)
		for i, k := range keep {
			if k {
				out.Bools[o] = v.Bools[i]
				fill(i)
				o++
			}
		}
	}
	if hasNull {
		out.Nulls = nulls
	}
	return out
}

// Slice returns a new vector with positions [lo, hi), as a bulk copy (the
// result does not alias the source).
func (v *Vec) Slice(lo, hi int) *Vec {
	n := hi - lo
	out := &Vec{Type: v.Type}
	switch v.Type {
	case Int64:
		out.Ints = make([]int64, n)
		copy(out.Ints, v.Ints[lo:hi])
	case Float64:
		out.Floats = make([]float64, n)
		copy(out.Floats, v.Floats[lo:hi])
	case String:
		out.Strs = make([]string, n)
		copy(out.Strs, v.Strs[lo:hi])
	case Bool:
		out.Bools = make([]bool, n)
		copy(out.Bools, v.Bools[lo:hi])
	}
	if v.Nulls != nil {
		hasNull := false
		nulls := make([]bool, n)
		copy(nulls, v.Nulls[lo:hi])
		for _, b := range nulls {
			if b {
				hasNull = true
				break
			}
		}
		if hasNull {
			out.Nulls = nulls
		}
	}
	return out
}

// Batch is a set of equal-length column vectors: the execution engine's unit
// of work.
//
// Sel, when non-nil, is a selection vector: the batch's logical rows are the
// physical positions Sel[0..len(Sel)) of the column vectors, in that order
// (strictly ascending in every batch the engine produces). A filter that
// keeps 12 of 4096 rows emits the same physical columns with a 12-entry Sel
// instead of copying 12-row columns — downstream operators iterate logical
// rows via RowIdx and read the physical slices directly. The contract
// (normative in docs/VECTORIZATION.md): selection vectors are a transient,
// intra-pipeline annotation; they never cross a persistence or exchange
// boundary (Writer.WriteBatch, MarshalBatch and AppendBatch materialize), and
// a batch carrying Sel must be treated as read-only through it.
type Batch struct {
	Schema Schema
	Cols   []*Vec
	Sel    []int
}

// NewBatch creates an empty batch for a schema.
func NewBatch(schema Schema) *Batch {
	cols := make([]*Vec, len(schema))
	for i, f := range schema {
		cols[i] = NewVec(f.Type)
	}
	return &Batch{Schema: schema, Cols: cols}
}

// NumRows returns the number of logical rows in the batch: the selection
// length when a selection vector is present, the physical column length
// otherwise.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// PhysRows returns the physical length of the column vectors, ignoring any
// selection vector. Kernel outputs are sized to PhysRows so their lanes stay
// position-aligned with the input columns.
func (b *Batch) PhysRows() int {
	if len(b.Cols) == 0 {
		return 0
	}
	return b.Cols[0].Len()
}

// RowIdx maps logical row i to its physical position in the column vectors.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// Materialize returns a dense batch: b itself when no selection vector is
// present, otherwise a new batch whose columns hold exactly the selected rows
// (a typed bulk gather, no per-value boxing).
func (b *Batch) Materialize() *Batch {
	if b.Sel == nil {
		return b
	}
	out := &Batch{Schema: b.Schema, Cols: make([]*Vec, len(b.Cols))}
	for i, v := range b.Cols {
		out.Cols[i] = v.Take(b.Sel)
	}
	return out
}

// AppendRow appends one row given as Go values.
func (b *Batch) AppendRow(vals ...any) error {
	if len(vals) != len(b.Cols) {
		return fmt.Errorf("colfile: row has %d values, batch has %d columns", len(vals), len(b.Cols))
	}
	for i, x := range vals {
		if err := b.Cols[i].AppendValue(x); err != nil {
			return err
		}
	}
	return nil
}

// Row materializes logical row i as Go values.
func (b *Batch) Row(i int) []any {
	out := make([]any, len(b.Cols))
	p := b.RowIdx(i)
	for c, v := range b.Cols {
		out[c] = v.Value(p)
	}
	return out
}

// Filter returns a new dense batch keeping only logical rows where keep[i]
// is true. keep is indexed by logical row (a selected batch is materialized
// first).
func (b *Batch) Filter(keep []bool) *Batch {
	b = b.Materialize()
	out := &Batch{Schema: b.Schema, Cols: make([]*Vec, len(b.Cols))}
	for i, v := range b.Cols {
		out.Cols[i] = v.Filter(keep)
	}
	return out
}

// Take gathers the given physical row positions into a new dense batch (see
// Vec.Take; an index of -1 yields a NULL row on every column). idx addresses
// physical positions: callers holding a selected batch map logical rows
// through RowIdx themselves (the join probe does exactly that).
func (b *Batch) Take(idx []int) *Batch {
	out := &Batch{Schema: b.Schema, Cols: make([]*Vec, len(b.Cols))}
	for i, v := range b.Cols {
		out.Cols[i] = v.Take(idx)
	}
	return out
}

// AppendBatch appends all logical rows of src (same schema). A selection
// vector on src is honored — only the selected rows are appended — so
// collecting a filtered stream materializes it densely.
func (b *Batch) AppendBatch(src *Batch) {
	n := src.NumRows()
	for i := range b.Cols {
		sv := src.Cols[i]
		for r := 0; r < n; r++ {
			b.Cols[i].Append(sv, src.RowIdx(r))
		}
	}
}
