package colfile

// Fuzz coverage for the two key encodings the executor leans on (join/group
// keys via AppendKey, ORDER BY keys via AppendSortKey): for arbitrary ints,
// floats, strings, bools and NULLs, the encoded-key comparison must agree
// with a direct row comparison — equality for AppendKey, full ordering (asc
// and desc, multi-column) for AppendSortKey. The seed corpora run as plain
// unit tests in every `go test`; CI additionally runs a bounded `-fuzztime`
// exploration (`make fuzz-smoke`).

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// fuzzVal is one fuzzed cell: a value of every type plus a NULL flag; typ
// selects which payload is live.
type fuzzVal struct {
	i    int64
	f    float64
	s    string
	b    bool
	null bool
}

// vecOf builds a one-row vector of the selected type holding v.
func vecOf(typ DataType, v fuzzVal) *Vec {
	vec := NewVec(typ)
	if v.null {
		vec.AppendNull()
		return vec
	}
	switch typ {
	case Int64:
		vec.AppendInt(v.i)
	case Float64:
		vec.AppendFloat(v.f)
	case String:
		vec.AppendStr(v.s)
	case Bool:
		vec.AppendBool(v.b)
	}
	return vec
}

// sameCell is the direct row comparison AppendKey must agree with: both
// NULL, or equal values — bit-equal for floats, since the encoding (and the
// engine's grouping) distinguishes -0.0 from +0.0 and unifies identical NaNs.
func sameCell(typ DataType, a, b fuzzVal) bool {
	if a.null || b.null {
		return a.null && b.null
	}
	switch typ {
	case Int64:
		return a.i == b.i
	case Float64:
		return math.Float64bits(a.f) == math.Float64bits(b.f)
	case String:
		return a.s == b.s
	case Bool:
		return a.b == b.b
	}
	return false
}

// cmpCell is the direct ordering AppendSortKey must agree with: NULL sorts
// below every value; floats order by the IEEE-754 total order.
func cmpCell(typ DataType, a, b fuzzVal) int {
	if a.null || b.null {
		switch {
		case a.null && b.null:
			return 0
		case a.null:
			return -1
		default:
			return 1
		}
	}
	switch typ {
	case Int64:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		}
		return 0
	case Float64:
		ta, tb := floatTotalOrder(a.f), floatTotalOrder(b.f)
		switch {
		case ta < tb:
			return -1
		case ta > tb:
			return 1
		}
		return 0
	case String:
		return strings.Compare(a.s, b.s)
	case Bool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
		return 0
	}
	return 0
}

// floatTotalOrder maps a float to a uint64 whose unsigned order is the
// IEEE-754 total order (negative NaN < -Inf < ... < -0 < +0 < ... < +Inf <
// NaN) — the independent reference for the encoder's transform.
func floatTotalOrder(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

func addKeySeeds(f *testing.F) {
	f.Add(int64(0), int64(0), 0.0, 0.0, "", "", false, false, false, false, uint8(0), uint8(0), false, false)
	f.Add(int64(math.MinInt64), int64(math.MaxInt64), math.Inf(-1), math.Inf(1), "a\x00", "a", true, false, false, false, uint8(2), uint8(2), true, false)
	f.Add(int64(-1), int64(1), math.Copysign(0, -1), 0.0, "\x00\x00", "\x00", false, true, true, false, uint8(1), uint8(1), false, true)
	f.Add(int64(42), int64(42), math.NaN(), math.NaN(), "ab", "b", true, true, false, true, uint8(3), uint8(0), true, true)
	f.Add(int64(7), int64(7), 1.5, 1.5, "same", "same", true, true, false, false, uint8(2), uint8(3), false, false)
}

// FuzzAppendKey checks the hash/group-key encoding: two cells encode to the
// same bytes iff they hold the same value, and two-column keys are self-
// delimiting (no collisions across the column boundary, the PR2 separator
// bug this encoding replaced).
func FuzzAppendKey(f *testing.F) {
	addKeySeeds(f)
	f.Fuzz(func(t *testing.T, aInt, bInt int64, aFloat, bFloat float64, aStr, bStr string,
		aBool, bBool, aNull, bNull bool, typSel1, typSel2 uint8, _, _ bool) {
		t1, t2 := DataType(typSel1%4), DataType(typSel2%4)
		a1 := fuzzVal{i: aInt, f: aFloat, s: aStr, b: aBool, null: aNull}
		b1 := fuzzVal{i: bInt, f: bFloat, s: bStr, b: bBool, null: bNull}

		// Single column: key equality ⇔ value equality.
		ka := vecOf(t1, a1).AppendKey(nil, 0)
		kb := vecOf(t1, b1).AppendKey(nil, 0)
		if got, want := bytes.Equal(ka, kb), sameCell(t1, a1, b1); got != want {
			t.Fatalf("type %v: key-equal=%v, value-equal=%v (a=%+v b=%+v)", t1, got, want, a1, b1)
		}

		// Two columns, second column swapped between rows: concatenated keys
		// must compare equal iff both cells agree (self-delimiting encoding).
		a2 := fuzzVal{i: bInt, f: bFloat, s: bStr, b: bBool, null: bNull}
		b2 := fuzzVal{i: aInt, f: aFloat, s: aStr, b: aBool, null: aNull}
		rowA := vecOf(t2, a2).AppendKey(ka, 0)
		rowB := vecOf(t2, b2).AppendKey(kb, 0)
		wantRows := sameCell(t1, a1, b1) && sameCell(t2, a2, b2)
		if got := bytes.Equal(rowA, rowB); got != wantRows {
			t.Fatalf("types %v,%v: row-key-equal=%v, rows-equal=%v", t1, t2, got, wantRows)
		}
	})
}

// FuzzAppendSortKey checks the ORDER BY encoding: bytewise comparison of
// encoded keys equals the direct value comparison — NULLs first ascending,
// DESC complemented, and multi-column keys with mixed directions reducing to
// one memcmp.
func FuzzAppendSortKey(f *testing.F) {
	addKeySeeds(f)
	f.Fuzz(func(t *testing.T, aInt, bInt int64, aFloat, bFloat float64, aStr, bStr string,
		aBool, bBool, aNull, bNull bool, typSel1, typSel2 uint8, desc1, desc2 bool) {
		t1, t2 := DataType(typSel1%4), DataType(typSel2%4)
		a1 := fuzzVal{i: aInt, f: aFloat, s: aStr, b: aBool, null: aNull}
		b1 := fuzzVal{i: bInt, f: bFloat, s: bStr, b: bBool, null: bNull}

		sign := func(x int) int {
			switch {
			case x < 0:
				return -1
			case x > 0:
				return 1
			}
			return 0
		}
		flip := func(c int, desc bool) int {
			if desc {
				return -c
			}
			return c
		}

		// Single column, asc and desc.
		for _, desc := range []bool{false, true} {
			ka := vecOf(t1, a1).AppendSortKey(nil, 0, desc)
			kb := vecOf(t1, b1).AppendSortKey(nil, 0, desc)
			want := flip(cmpCell(t1, a1, b1), desc)
			if got := sign(bytes.Compare(ka, kb)); got != want {
				t.Fatalf("type %v desc=%v: byte-cmp=%d, value-cmp=%d (a=%+v b=%+v)", t1, desc, got, want, a1, b1)
			}
		}

		// Two columns with independent directions: the concatenated keys must
		// order like the lexicographic (col1, col2) comparison.
		a2 := fuzzVal{i: bInt, f: bFloat, s: bStr, b: bBool, null: bNull}
		b2 := fuzzVal{i: aInt, f: aFloat, s: aStr, b: aBool, null: aNull}
		rowA := vecOf(t2, a2).AppendSortKey(vecOf(t1, a1).AppendSortKey(nil, 0, desc1), 0, desc2)
		rowB := vecOf(t2, b2).AppendSortKey(vecOf(t1, b1).AppendSortKey(nil, 0, desc1), 0, desc2)
		want := flip(cmpCell(t1, a1, b1), desc1)
		if want == 0 {
			want = flip(cmpCell(t2, a2, b2), desc2)
		}
		if got := sign(bytes.Compare(rowA, rowB)); got != want {
			t.Fatalf("types %v,%v desc=(%v,%v): byte-cmp=%d, row-cmp=%d", t1, t2, desc1, desc2, got, want)
		}
	})
}

// FuzzBatchSpillRoundTrip checks the spill serialization: any batch written
// by MarshalBatch reads back value-identical through UnmarshalBatch.
func FuzzBatchSpillRoundTrip(f *testing.F) {
	f.Add(int64(1), 2.5, "x", true, false, uint8(3))
	f.Add(int64(-9), math.NaN(), "a\x00b", false, true, uint8(7))
	f.Fuzz(func(t *testing.T, i int64, fl float64, s string, b, null bool, rows uint8) {
		schema := Schema{
			{Name: "i", Type: Int64}, {Name: "f", Type: Float64},
			{Name: "s", Type: String}, {Name: "b", Type: Bool},
		}
		in := NewBatch(schema)
		n := int(rows % 32)
		for r := 0; r < n; r++ {
			if null && r%3 == 0 {
				for _, c := range in.Cols {
					c.AppendNull()
				}
				continue
			}
			in.Cols[0].AppendInt(i + int64(r))
			in.Cols[1].AppendFloat(fl)
			in.Cols[2].AppendStr(s)
			in.Cols[3].AppendBool(b)
		}
		data, err := MarshalBatch(in)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		out, err := UnmarshalBatch(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !out.Schema.Equal(in.Schema) || out.NumRows() != in.NumRows() {
			t.Fatalf("round trip shape: %d rows -> %d rows", in.NumRows(), out.NumRows())
		}
		for r := 0; r < in.NumRows(); r++ {
			for c := range in.Cols {
				va := in.Cols[c].AppendKey(nil, r)
				vb := out.Cols[c].AppendKey(nil, r)
				if !bytes.Equal(va, vb) {
					t.Fatalf("row %d col %d differs after round trip", r, c)
				}
			}
		}
	})
}
