package server

// Sustained concurrent-traffic stress: N client goroutines drive mixed
// read/write/spilling statements over live HTTP sessions against one engine
// while STO maintenance (auto-compaction triggered by commits, plus explicit
// COMPACT/CHECKPOINT/VACUUM statements) runs concurrently — the LST-Bench
// "sessions + data maintenance" scenario the one-shot CLI cannot express.
//
// Asserted: read results stay byte-identical to a pre-stress serial
// reference, every insert lands exactly once, admission saw real queueing
// (queued > 0 under contention), and after graceful drain nothing leaks —
// zero leased slots, zero queued admission seats, zero surviving sessions.
// `go test -short` runs a bounded variant; `make race` runs it under -race
// with ≥ 8 concurrent sessions.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// renderResp renders a query response's rows into a comparable string.
func renderResp(r *QueryResponse) string {
	var b strings.Builder
	for _, row := range r.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('\t')
			}
			fmt.Fprintf(&b, "%v", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestServerConcurrentTrafficStress(t *testing.T) {
	const workers = 8
	iters := 24
	if testing.Short() {
		iters = 8
	}

	pcfg := tinyFabric(4) // 4 fabric slots under 8 sessions: admission must queue
	pcfg.CheckpointEvery = 3
	pcfg.AutoCompact = true
	e := newEnv(t, pcfg, Config{
		QueueDepth:    1024,
		AdmitTimeout:  time.Minute,
		SessionBudget: 2 << 10, // tiny per-session budget: the join mix spills
	})

	// --- seed static read/join tables and the shared write sink ---
	e.query("", "CREATE TABLE base (k INT, v INT) WITH (DISTRIBUTION = k)")
	e.query("", "CREATE TABLE build (k INT, b INT) WITH (DISTRIBUTION = k)")
	e.query("", "CREATE TABLE probe (k INT, p INT) WITH (DISTRIBUTION = k)")
	e.query("", "CREATE TABLE sink (k INT, w INT) WITH (DISTRIBUTION = k)")
	for lo := 0; lo < 600; lo += 200 {
		var ins strings.Builder
		ins.WriteString("INSERT INTO base VALUES ")
		for i := lo; i < lo+200; i++ {
			if i > lo {
				ins.WriteString(", ")
			}
			fmt.Fprintf(&ins, "(%d, %d)", i, i%97)
		}
		e.query("", ins.String())
	}
	var ins strings.Builder
	ins.WriteString("INSERT INTO build VALUES ")
	for i := 0; i < 512; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i*3)
	}
	e.query("", ins.String())
	e.query("", "INSERT INTO probe SELECT k, b FROM build")

	// --- serial reference results on the quiescent database ---
	readQueries := []string{
		"SELECT COUNT(*), SUM(v) FROM base",
		"SELECT COUNT(*) FROM probe JOIN build ON probe.k = build.k",
		"SELECT k, v FROM base WHERE k < 50 ORDER BY k LIMIT 10",
		"SELECT v, COUNT(*) FROM base WHERE k < 300 GROUP BY v ORDER BY v LIMIT 5",
	}
	want := make([]string, len(readQueries))
	for i, q := range readQueries {
		want[i] = renderResp(e.query("", q))
	}
	spillsBefore := e.db.Engine().Work.JoinSpills.Load()

	// --- concurrent mixed traffic over per-worker server sessions ---
	var (
		wg           sync.WaitGroup // query/DML workers
		mwg          sync.WaitGroup // maintenance loop: stopped after workers drain
		insertedMu   sync.Mutex
		inserted     int
		maintenance  = make(chan struct{})
		maintenanceN int
	)
	countInsert := func(n int) {
		insertedMu.Lock()
		inserted += n
		insertedMu.Unlock()
	}
	// Maintenance session: STO auto-compaction already fires on commit
	// events; this loop adds the explicit maintenance statements on top,
	// racing the query/DML traffic. Conflict-induced statement errors are
	// legal (compaction retries are bounded); HTTP-level failures are not.
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		stmts := []string{"COMPACT TABLE sink", "CHECKPOINT TABLE sink", "VACUUM", "COMPACT TABLE base"}
		for i := 0; ; i++ {
			select {
			case <-maintenance:
				return
			default:
			}
			code, body := e.tryQuery("", stmts[i%len(stmts)])
			if code != http.StatusOK && code != http.StatusBadRequest {
				t.Errorf("maintenance %q: HTTP %d: %s", stmts[i%len(stmts)], code, body)
				return
			}
			maintenanceN++
			time.Sleep(2 * time.Millisecond)
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			sid := e.createSession()
			if worker%2 == 1 {
				// odd workers close their session themselves; even workers
				// leave it for drain to close
				defer func() {
					req, _ := http.NewRequest(http.MethodDelete, e.ts.URL+"/v1/session/"+sid, nil)
					resp, err := http.DefaultClient.Do(req)
					if err == nil {
						resp.Body.Close()
					}
				}()
			}
			for i := 0; i < iters; i++ {
				switch i % 5 {
				case 0: // explicit transaction on the session
					for _, q := range []string{
						"BEGIN",
						fmt.Sprintf("INSERT INTO sink VALUES (%d, %d)", worker*1_000_000+i, worker),
						"COMMIT",
					} {
						if code, body := e.tryQuery(sid, q); code != http.StatusOK {
							t.Errorf("worker %d txn %q: HTTP %d: %s", worker, q, code, body)
							return
						}
					}
					countInsert(1)
				case 1: // spilling join under the per-session budget
					code, body := e.tryQuery(sid, readQueries[1])
					if code != http.StatusOK {
						t.Errorf("worker %d join: HTTP %d: %s", worker, code, body)
						return
					}
					var qr QueryResponse
					_ = json.Unmarshal(body, &qr)
					if got := renderResp(&qr); got != want[1] {
						t.Errorf("worker %d join diverged:\ngot:  %swant: %s", worker, got, want[1])
						return
					}
				case 2: // aggregation + top-N reads on the static table
					for _, qi := range []int{0, 2, 3} {
						code, body := e.tryQuery(sid, readQueries[qi])
						if code != http.StatusOK {
							t.Errorf("worker %d read %d: HTTP %d: %s", worker, qi, code, body)
							return
						}
						var qr QueryResponse
						_ = json.Unmarshal(body, &qr)
						if got := renderResp(&qr); got != want[qi] {
							t.Errorf("worker %d read %d diverged under concurrency:\ngot:  %swant: %s",
								worker, qi, got, want[qi])
							return
						}
					}
				case 3: // autocommit write through a one-shot session
					code, body := e.tryQuery("", fmt.Sprintf(
						"INSERT INTO sink VALUES (%d, %d)", worker*1_000_000+500_000+i, worker))
					if code != http.StatusOK {
						t.Errorf("worker %d autocommit insert: HTTP %d: %s", worker, code, body)
						return
					}
					countInsert(1)
				case 4: // point read mixed with everything else
					code, body := e.tryQuery(sid, "SELECT v FROM base WHERE k = 41")
					if code != http.StatusOK {
						t.Errorf("worker %d point read: HTTP %d: %s", worker, code, body)
						return
					}
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Minute):
		t.Fatal("stress traffic did not finish within 3 minutes")
	}
	close(maintenance)
	mwg.Wait()
	if t.Failed() {
		return
	}
	if maintenanceN == 0 {
		t.Fatal("maintenance loop never ran a statement")
	}

	// --- post-stress correctness vs the serial reference ---
	for i, q := range readQueries {
		if got := renderResp(e.query("", q)); got != want[i] {
			t.Fatalf("read %d diverged after stress:\ngot:  %swant: %s", i, got, want[i])
		}
	}
	insertedMu.Lock()
	total := inserted
	insertedMu.Unlock()
	r := e.query("", "SELECT COUNT(*) FROM sink")
	if got := r.Rows[0][0]; got != float64(total) {
		t.Fatalf("sink has %v rows, want %d (every insert exactly once)", got, total)
	}
	if got := e.db.Engine().Work.JoinSpills.Load(); got <= spillsBefore {
		t.Fatalf("JoinSpills = %d (before %d): stress mix never exercised the spill path", got, spillsBefore)
	}

	// --- admission counters: real queueing under contention ---
	adm := &e.db.Engine().Work.Admission
	if adm.Admitted.Load() == 0 {
		t.Fatal("Admitted = 0")
	}
	if adm.Queued.Load() == 0 {
		t.Fatal("Queued = 0: 8 sessions over 4 slots must have contended")
	}
	if adm.Queued.Load() > 0 && adm.QueueWaitNanos.Load() == 0 {
		t.Fatal("QueueWaitNanos = 0 with queued statements")
	}
	if adm.Rejected.Load() != 0 || adm.TimedOut.Load() != 0 || adm.Canceled.Load() != 0 {
		t.Fatalf("unexpected rejections under a deep queue: rejected=%d timedOut=%d canceled=%d",
			adm.Rejected.Load(), adm.TimedOut.Load(), adm.Canceled.Load())
	}

	// --- graceful drain: nothing leaks ---
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := e.srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := e.db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d slot leases after drain", n)
	}
	if n := e.db.Engine().Fabric.QueuedLeases(); n != 0 {
		t.Fatalf("leaked %d queued admission seats after drain", n)
	}
	if n := e.srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived drain", n)
	}
	// the drained engine still answers direct (library) queries correctly
	s := e.db.Session()
	defer s.Close()
	rr, err := s.Exec("SELECT COUNT(*) FROM sink")
	if err != nil {
		t.Fatalf("post-drain library query: %v", err)
	}
	if got := rr.Value(0, 0); got != int64(total) && got != float64(total) {
		t.Fatalf("post-drain library count = %v, want %d", got, total)
	}
}
