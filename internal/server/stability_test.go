package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestMetricsDocumentStableAcrossScrapes pins /metrics as a pure render of
// server state: after a fixed workload, consecutive scrapes with no
// intervening traffic must return byte-identical JSON. Any map-order leak
// in assembling the document — session gauges, pool gauges, the
// recent-query ring — shows up here as a flickering byte diff. This is a
// determinism regression test over a fixed workload, not a fuzz target.
func TestMetricsDocumentStableAcrossScrapes(t *testing.T) {
	e := newEnv(t, tinyFabric(4), Config{})
	// Two live sessions plus anonymous statements, so the document carries
	// session state, cumulative counters, and a multi-entry query ring.
	s1 := e.createSession()
	s2 := e.createSession()
	e.query(s1, "CREATE TABLE stab (k INT, v INT) WITH (DISTRIBUTION = k)")
	e.query(s1, "INSERT INTO stab VALUES (1, 10), (2, 20), (3, 30)")
	e.query(s2, "SELECT SUM(v) FROM stab WHERE k > 0")
	e.query("", "SELECT COUNT(*) FROM stab")

	code, first := e.get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d: %s", code, first)
	}
	if len(first) == 0 {
		t.Fatal("metrics: empty document")
	}
	for i := 0; i < 10; i++ {
		code, again := e.get("/metrics")
		if code != http.StatusOK {
			t.Fatalf("scrape %d: HTTP %d", i, code)
		}
		if !bytes.Equal(first, again) {
			t.Fatalf("scrape %d drifted with no intervening traffic\nfirst: %s\nnow:   %s", i, first, again)
		}
	}
}
