package server

// Lifecycle, admission and drain behavior of the multi-session HTTP front
// end: sessions with explicit transactions, queue-full/timeout admission
// paths with counter assertions, per-session memory budgets feeding the
// grace-join spill path, and graceful drain with in-flight statements.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polaris"
)

type env struct {
	t   *testing.T
	db  *polaris.DB
	srv *Server
	ts  *httptest.Server
}

// tinyFabric is a polaris config whose fabric has exactly `slots` total
// compute slots (bounded, non-elastic), making admission contention
// deterministic, with small files so parallel plans still split morsels.
func tinyFabric(slots int) polaris.Config {
	cfg := polaris.DefaultConfig()
	cfg.Elastic = false
	cfg.MaxNodes = 1
	cfg.InitNodes = 1
	cfg.SlotsPerNode = slots
	cfg.Parallelism = slots
	cfg.RowsPerFile = 256
	cfg.RowsPerGroup = 64
	return cfg
}

func newEnv(t *testing.T, pcfg polaris.Config, scfg Config) *env {
	t.Helper()
	db := polaris.Open(pcfg)
	srv := New(db.Engine(), scfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		db.Close()
	})
	return &env{t: t, db: db, srv: srv, ts: ts}
}

type errBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func (e *env) post(path string, body []byte) (int, []byte) {
	e.t.Helper()
	resp, err := http.Post(e.ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		e.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

func (e *env) get(path string) (int, []byte) {
	e.t.Helper()
	resp, err := http.Get(e.ts.URL + path)
	if err != nil {
		e.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, data
}

// query posts one statement (optionally on a named session) and requires
// HTTP 200, returning the decoded response.
func (e *env) query(session, sqlText string) *QueryResponse {
	e.t.Helper()
	code, body := e.tryQuery(session, sqlText)
	if code != http.StatusOK {
		e.t.Fatalf("query %q on %q: HTTP %d: %s", sqlText, session, code, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		e.t.Fatalf("query %q: decoding %s: %v", sqlText, body, err)
	}
	return &qr
}

func (e *env) tryQuery(session, sqlText string) (int, []byte) {
	e.t.Helper()
	req, _ := json.Marshal(map[string]string{"sql": sqlText, "session": session})
	return e.post("/v1/query", req)
}

func (e *env) createSession() string {
	e.t.Helper()
	code, body := e.post("/v1/session", nil)
	if code != http.StatusOK {
		e.t.Fatalf("create session: HTTP %d: %s", code, body)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.Unmarshal(body, &out); err != nil || out.Session == "" {
		e.t.Fatalf("create session: bad body %s (%v)", body, err)
	}
	return out.Session
}

func (e *env) metrics() *Metrics {
	e.t.Helper()
	code, body := e.get("/metrics")
	if code != http.StatusOK {
		e.t.Fatalf("metrics: HTTP %d: %s", code, body)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		e.t.Fatalf("metrics: decoding: %v", err)
	}
	return &m
}

func decodeErr(t *testing.T, body []byte) errBody {
	t.Helper()
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body %q is not the JSON error shape: %v", body, err)
	}
	if eb.Error == "" || eb.Code == "" {
		t.Fatalf("error body %q missing error/code fields", body)
	}
	return eb
}

func TestServerSessionLifecycle(t *testing.T) {
	e := newEnv(t, tinyFabric(4), Config{})
	e.query("", "CREATE TABLE kv (k INT, v VARCHAR) WITH (DISTRIBUTION = k)")

	// explicit transaction on a named session, interleaved with reads from
	// a one-shot session that must not see uncommitted rows
	sid := e.createSession()
	e.query(sid, "BEGIN")
	e.query(sid, "INSERT INTO kv VALUES (1, 'a'), (2, 'b')")
	if got := e.query("", "SELECT COUNT(*) FROM kv").Rows[0][0]; got != float64(0) {
		t.Fatalf("uncommitted rows visible to other session: count=%v", got)
	}
	e.query(sid, "COMMIT")
	if got := e.query("", "SELECT COUNT(*) FROM kv").Rows[0][0]; got != float64(2) {
		t.Fatalf("count after commit = %v, want 2", got)
	}

	// a session holding an open txn is rolled back by DELETE
	e.query(sid, "BEGIN")
	e.query(sid, "INSERT INTO kv VALUES (3, 'c')")
	code, body := e.post("/v1/session", nil)
	if code != http.StatusOK {
		t.Fatalf("second session: %d %s", code, body)
	}
	req, _ := http.NewRequest(http.MethodDelete, e.ts.URL+"/v1/session/"+sid, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE session: %v code=%d", err, resp.StatusCode)
	}
	resp.Body.Close()
	if got := e.query("", "SELECT COUNT(*) FROM kv").Rows[0][0]; got != float64(2) {
		t.Fatalf("count after rollback-by-delete = %v, want 2 (open txn must roll back)", got)
	}
	if code, body := e.tryQuery(sid, "SELECT 1 FROM kv"); code != http.StatusNotFound {
		t.Fatalf("query on deleted session: HTTP %d %s, want 404", code, body)
	}
	if n := e.db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d slots", n)
	}
}

func TestServerAdmissionQueueFullRejected(t *testing.T) {
	// One fabric slot, one admission queue seat: with the slot held and a
	// statement parked in the queue, the next arrival must be rejected.
	e := newEnv(t, tinyFabric(1), Config{QueueDepth: 1, AdmitTimeout: 10 * time.Second})
	e.query("", "CREATE TABLE t (k INT, v INT) WITH (DISTRIBUTION = k)")
	e.query("", "INSERT INTO t VALUES (1, 1)")

	hold := e.db.Engine().Fabric.LeaseSlots(1)
	parked := make(chan *QueryResponse, 1)
	go func() { parked <- e.query("", "SELECT COUNT(*) FROM t") }()
	deadline := time.Now().Add(5 * time.Second)
	for e.db.Engine().Fabric.QueuedLeases() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first statement never queued")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := e.tryQuery("", "SELECT COUNT(*) FROM t")
	if code != http.StatusTooManyRequests {
		t.Fatalf("queue-full statement: HTTP %d %s, want 429", code, body)
	}
	if eb := decodeErr(t, body); eb.Code != "queue_full" {
		t.Fatalf("code = %q, want queue_full", eb.Code)
	}
	w := &e.db.Engine().Work.Admission
	if w.Rejected.Load() != 1 {
		t.Fatalf("Rejected = %d, want 1", w.Rejected.Load())
	}
	hold.Release()
	if r := <-parked; r.Rows[0][0] != float64(1) {
		t.Fatalf("parked query wrong: %v", r.Rows)
	}
	if w.Queued.Load() == 0 {
		t.Fatalf("Queued = 0, want > 0 (a statement waited)")
	}
	if n := e.db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d slots", n)
	}
}

func TestServerAdmissionTimeout(t *testing.T) {
	e := newEnv(t, tinyFabric(1), Config{QueueDepth: 8, AdmitTimeout: 30 * time.Millisecond})
	e.query("", "CREATE TABLE t (k INT) WITH (DISTRIBUTION = k)")

	hold := e.db.Engine().Fabric.LeaseSlots(1)
	code, body := e.tryQuery("", "SELECT COUNT(*) FROM t")
	hold.Release()
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out statement: HTTP %d %s, want 504", code, body)
	}
	if eb := decodeErr(t, body); eb.Code != "admission_timeout" {
		t.Fatalf("code = %q, want admission_timeout", eb.Code)
	}
	w := &e.db.Engine().Work.Admission
	if w.TimedOut.Load() != 1 || w.Queued.Load() == 0 {
		t.Fatalf("timedOut=%d queued=%d, want 1 and >0", w.TimedOut.Load(), w.Queued.Load())
	}
	if n := e.db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d slots", n)
	}
}

func TestServerPerSessionBudgetFeedsSpill(t *testing.T) {
	// Engine-wide budget unlimited; the server session carries its own tiny
	// budget, so a join running through it must take the grace spill path.
	e := newEnv(t, tinyFabric(4), Config{SessionBudget: 1 << 10})
	var ins strings.Builder
	ins.WriteString("INSERT INTO build VALUES ")
	for i := 0; i < 512; i++ {
		if i > 0 {
			ins.WriteString(", ")
		}
		fmt.Fprintf(&ins, "(%d, %d)", i, i*3)
	}
	e.query("", "CREATE TABLE probe (k INT, p INT) WITH (DISTRIBUTION = k)")
	e.query("", "CREATE TABLE build (k INT, b INT) WITH (DISTRIBUTION = k)")
	e.query("", ins.String())
	e.query("", "INSERT INTO probe SELECT k, b FROM build")

	sid := e.createSession()
	before := e.db.Engine().Work.JoinSpills.Load()
	r := e.query(sid, "SELECT COUNT(*) FROM probe JOIN build ON probe.k = build.k")
	if r.Rows[0][0] != float64(512) {
		t.Fatalf("join count = %v, want 512", r.Rows[0][0])
	}
	if got := e.db.Engine().Work.JoinSpills.Load(); got <= before {
		t.Fatalf("JoinSpills = %d (before %d): per-session budget did not reach the join", got, before)
	}
	// The same join on a session with an explicitly unlimited budget must
	// not spill: the override is per-session, not engine-global.
	code, body := e.post("/v1/session", []byte(`{"budget": -1}`))
	if code != http.StatusOK {
		t.Fatalf("budgeted session: %d %s", code, body)
	}
	var out struct {
		Session string `json:"session"`
	}
	_ = json.Unmarshal(body, &out)
	mid := e.db.Engine().Work.JoinSpills.Load()
	e.query(out.Session, "SELECT COUNT(*) FROM probe JOIN build ON probe.k = build.k")
	if got := e.db.Engine().Work.JoinSpills.Load(); got != mid {
		t.Fatalf("unlimited-budget session spilled (JoinSpills %d -> %d)", mid, got)
	}
}

func TestServerDrainWaitsForInflight(t *testing.T) {
	e := newEnv(t, tinyFabric(1), Config{QueueDepth: 8, AdmitTimeout: 10 * time.Second})
	e.query("", "CREATE TABLE t (k INT) WITH (DISTRIBUTION = k)")
	e.query("", "INSERT INTO t VALUES (7)")

	// Park a statement in the admission queue (slots held), then drain:
	// the drain must wait for it, and must reject everything that arrives
	// after the flag flips.
	hold := e.db.Engine().Fabric.LeaseSlots(1)
	parked := make(chan *QueryResponse, 1)
	go func() { parked <- e.query("", "SELECT COUNT(*) FROM t") }()
	deadline := time.Now().Add(5 * time.Second)
	for e.db.Engine().Fabric.QueuedLeases() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("statement never queued")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- e.srv.Drain(ctx)
	}()
	for !e.srv.Draining() {
		time.Sleep(time.Millisecond)
	}
	if code, body := e.tryQuery("", "SELECT COUNT(*) FROM t"); code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: HTTP %d %s, want 503", code, body)
	} else if eb := decodeErr(t, body); eb.Code != "draining" {
		t.Fatalf("code = %q, want draining", eb.Code)
	}
	if code, _ := e.get("/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: HTTP %d, want 503", code)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain returned %v with a statement still in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	hold.Release() // lets the parked statement run and finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-parked
	if r.Rows[0][0] != float64(1) {
		t.Fatalf("in-flight statement result %v, want [[1]]", r.Rows)
	}
	if n := e.db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d slots after drain", n)
	}
	if n := e.srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived drain", n)
	}
}

func TestServerMetricsDocument(t *testing.T) {
	e := newEnv(t, tinyFabric(4), Config{})
	e.query("", "CREATE TABLE m (k INT, v INT) WITH (DISTRIBUTION = k)")
	e.query("", "INSERT INTO m VALUES (1, 10), (2, 20)")
	e.query("", "SELECT SUM(v) FROM m WHERE k > 0")

	m := e.metrics()
	if m.Admission.Admitted < 3 {
		t.Fatalf("admitted = %d, want >= 3", m.Admission.Admitted)
	}
	if m.Cumulative.RowsScanned == 0 {
		t.Fatalf("cumulative rowsScanned = 0 after a scan")
	}
	if m.Fabric.TotalSlots != 4 || m.Fabric.LeasedSlots != 0 {
		t.Fatalf("fabric gauges total=%d leased=%d, want 4/0", m.Fabric.TotalSlots, m.Fabric.LeasedSlots)
	}
	// Single-node fabric: read and write pools share the one node, 4 slots each.
	if m.DCP.ReadPoolNodes != 1 || m.DCP.ReadPoolSlots != 4 ||
		m.DCP.WritePoolNodes != 1 || m.DCP.WritePoolSlots != 4 {
		t.Fatalf("dcp pool gauges %+v, want 1 node / 4 slots per pool", m.DCP)
	}
	// DistributedQueries defaults off, so the DAG counters must be present
	// and zero.
	if m.Cumulative.DagTasks != 0 || m.Cumulative.DagRetries != 0 || m.Cumulative.DagStages != 0 {
		t.Fatalf("dag counters tasks=%d retries=%d stages=%d with flag off, want 0",
			m.Cumulative.DagTasks, m.Cumulative.DagRetries, m.Cumulative.DagStages)
	}
	if len(m.RecentQueries) < 3 {
		t.Fatalf("recentQueries has %d entries, want >= 3", len(m.RecentQueries))
	}
	last := m.RecentQueries[len(m.RecentQueries)-1]
	if last.Status != http.StatusOK || last.DOP < 1 || !strings.Contains(last.SQL, "SUM(v)") {
		t.Fatalf("last query record %+v not the SELECT", last)
	}
	if m.Server.Queries < 3 || m.Server.Draining {
		t.Fatalf("server gauges %+v", m.Server)
	}
}

// TestServerDagCountersSurface enables DistributedQueries and checks that a
// parallel SELECT served over HTTP moves the dagTasks/dagStages counters in
// GET /metrics.
func TestServerDagCountersSurface(t *testing.T) {
	cfg := tinyFabric(4)
	cfg.DistributedQueries = true
	cfg.RowsPerFile = 32
	cfg.RowsPerGroup = 8
	e := newEnv(t, cfg, Config{})
	e.query("", "CREATE TABLE d (k INT, v INT) WITH (DISTRIBUTION = k)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO d VALUES (0, 0)")
	for i := 1; i < 200; i++ {
		fmt.Fprintf(&sb, ", (%d, %d)", i, i*3)
	}
	e.query("", sb.String())
	e.query("", "SELECT k, SUM(v) FROM d GROUP BY k ORDER BY k")

	m := e.metrics()
	if m.Cumulative.DagTasks == 0 || m.Cumulative.DagStages == 0 {
		t.Fatalf("dag counters tasks=%d stages=%d after a distributed SELECT, want > 0",
			m.Cumulative.DagTasks, m.Cumulative.DagStages)
	}
	if m.Cumulative.DagRetries != 0 {
		t.Fatalf("dagRetries = %d with no failure injection, want 0", m.Cumulative.DagRetries)
	}
}
