// Package server implements the long-running multi-session HTTP front end
// for a Polaris engine (cmd/polaris-server): the piece that turns the
// library + one-shot CLI into the cloud service the paper describes — many
// concurrent sessions multiplexed over one engine and one compute fabric
// (paper Sections 1, 3.3).
//
// Every statement passes through front-door admission control before it
// executes: it must be granted a slot lease from the same fabric pool that
// sizes intra-query worker pools (compute.Admission over
// Fabric.LeaseSlotsCtx). When leases run dry, statements queue FIFO in a
// bounded queue with a wait timeout; the granted lease is adopted by the
// statement's transaction as its worker-pool size, so one statement holds
// exactly one lease. Each session carries its own JoinMemoryBudget, and the
// server exposes health, a JSON metrics endpoint (cumulative WorkStats,
// admission counters, fabric gauges, recent per-query records) and graceful
// drain: in-flight statements finish, new ones get 503.
//
// The HTTP surface, admission model, budget accounting and error matrix are
// documented in docs/SERVER.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/sql"
)

// Config tunes the server front end.
type Config struct {
	// MaxBodyBytes caps a request body; larger requests get 413.
	// Default 1 MiB.
	MaxBodyBytes int64
	// QueueDepth bounds the admission queue: statements arriving when the
	// fabric's leases are dry and QueueDepth statements are already waiting
	// get 429. < 0 means unbounded. Default 64.
	QueueDepth int
	// AdmitTimeout bounds how long a statement may wait in the admission
	// queue before getting 504. 0 means wait as long as the client does.
	// Default 10s.
	AdmitTimeout time.Duration
	// SlotsPerQuery is the worker-slot count requested per admitted
	// statement — the per-statement DOP ceiling. Default: the engine's
	// configured Parallelism.
	SlotsPerQuery int
	// SessionBudget, when non-zero, is the per-session JoinMemoryBudget in
	// bytes applied to every server session (negative = explicitly
	// unlimited). Zero inherits the engine-wide configuration.
	SessionBudget int64
	// RecentQueries is the size of the per-query record ring surfaced by
	// /metrics. Default 32.
	RecentQueries int
}

func (c Config) withDefaults(eng *core.Engine) Config {
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.AdmitTimeout == 0 {
		c.AdmitTimeout = 10 * time.Second
	}
	if c.SlotsPerQuery == 0 {
		c.SlotsPerQuery = eng.Options().Parallelism
	}
	if c.RecentQueries == 0 {
		c.RecentQueries = 32
	}
	return c
}

// session is one server-side SQL session: a serial statement stream guarded
// by its own mutex (sql.Session is not safe for concurrent use; concurrent
// requests naming the same session serialize here).
type session struct {
	id string
	mu sync.Mutex
	s  *sql.Session
	// closed flips under mu when the session is deleted or drained; a
	// request that was waiting on mu must re-check it.
	closed bool
}

// QueryRecord is one statement's entry in the /metrics recent-query ring.
type QueryRecord struct {
	Seq          int64  `json:"seq"`
	Session      string `json:"session,omitempty"`
	SQL          string `json:"sql"`
	Status       int    `json:"status"`
	Code         string `json:"code,omitempty"`
	DOP          int    `json:"dop,omitempty"`
	QueueWaitNs  int64  `json:"queueWaitNs"`
	SimTimeNs    int64  `json:"simTimeNs"`
	Rows         int    `json:"rows"`
	RowsAffected int64  `json:"rowsAffected"`
}

// Server is the multi-session HTTP front end over one engine. It implements
// http.Handler; wire it to an http.Server (or httptest) to serve.
type Server struct {
	eng *core.Engine
	adm *compute.Admission
	cfg Config

	mu       sync.Mutex
	sessions map[string]*session
	nextID   int64
	draining bool
	recent   []QueryRecord

	inflight sync.WaitGroup
	queries  atomic.Int64
}

// New creates a server front end over the engine. Admission outcomes are
// recorded into the engine's WorkStats.Admission counters.
func New(eng *core.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults(eng)
	return &Server{
		eng: eng,
		cfg: cfg,
		adm: compute.NewAdmission(eng.Fabric, compute.AdmissionConfig{
			SlotsPerQuery: cfg.SlotsPerQuery,
			MaxQueue:      cfg.QueueDepth,
			WaitTimeout:   cfg.AdmitTimeout,
		}, &eng.Work.Admission),
		sessions: make(map[string]*session),
	}
}

// SessionCount reports the live server-side sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// Draining reports whether the server has begun graceful drain.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the statement surface down: new queries get 503
// immediately, in-flight statements run to completion (bounded by ctx), and
// every server session is then closed (rolling back open transactions) so
// no slot leases or transactions survive the server. Health and metrics
// stay up so the drained state is observable. Idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("server: drain interrupted with statements in flight: %w", ctx.Err())
	}

	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	open := make([]*session, 0, len(ids))
	for _, id := range ids {
		open = append(open, s.sessions[id])
	}
	s.sessions = make(map[string]*session)
	s.mu.Unlock()
	for _, ss := range open {
		ss.mu.Lock()
		ss.closed = true
		ss.s.Close()
		ss.mu.Unlock()
	}
	return nil
}

// enter registers one in-flight statement request; it fails once draining
// has begun. The draining flag and the WaitGroup increment are linked under
// one lock so Drain never misses a request it should wait for.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// ServeHTTP routes the server's fixed endpoint set. Routing is manual so
// every error path — unknown endpoint included — yields the same JSON error
// shape the error-matrix tests pin.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/healthz":
		s.handleHealthz(w, r)
	case r.URL.Path == "/metrics":
		s.handleMetrics(w, r)
	case r.URL.Path == "/v1/query":
		s.handleQuery(w, r)
	case r.URL.Path == "/v1/session":
		s.handleSessionCreate(w, r)
	case strings.HasPrefix(r.URL.Path, "/v1/session/"):
		s.handleSessionDelete(w, r)
	default:
		writeErr(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown endpoint %s", r.URL.Path))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "healthz is GET-only")
		return
	}
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// workCounters is the JSON rendering of core.WorkStats' cumulative counters.
type workCounters struct {
	RowsScanned         int64 `json:"rowsScanned"`
	FilesRead           int64 `json:"filesRead"`
	BytesRead           int64 `json:"bytesRead"`
	MergeFreeAggs       int64 `json:"mergeFreeAggs"`
	TopNPushdowns       int64 `json:"topNPushdowns"`
	JoinSpills          int64 `json:"joinSpills"`
	JoinSpillBytes      int64 `json:"joinSpillBytes"`
	JoinSpillPartitions int64 `json:"joinSpillPartitions"`
	BuildSideSwaps      int64 `json:"buildSideSwaps"`
	PushedFilters       int64 `json:"pushedFilters"`
	RuntimeFilterRows   int64 `json:"runtimeFilterRows"`
	DagTasks            int64 `json:"dagTasks"`
	DagRetries          int64 `json:"dagRetries"`
	DagStages           int64 `json:"dagStages"`
}

// admissionCounters is the JSON rendering of the admission counter set.
type admissionCounters struct {
	Queued      int64 `json:"queued"`
	Admitted    int64 `json:"admitted"`
	Rejected    int64 `json:"rejected"`
	TimedOut    int64 `json:"timedOut"`
	Canceled    int64 `json:"canceled"`
	QueueWaitNs int64 `json:"queueWaitNs"`
	Waiting     int   `json:"waiting"`
}

// Metrics is the /metrics response document.
type Metrics struct {
	Cumulative workCounters      `json:"cumulative"`
	Admission  admissionCounters `json:"admission"`
	Fabric     struct {
		TotalSlots   int `json:"totalSlots"`
		LeasedSlots  int `json:"leasedSlots"`
		FreeSlots    int `json:"freeSlots"`
		QueuedLeases int `json:"queuedLeases"`
	} `json:"fabric"`
	// DCP reports the WLM pool split of the live topology: the nodes and
	// task slots query/maintenance DAGs place read and write tasks on.
	DCP struct {
		ReadPoolNodes  int `json:"readPoolNodes"`
		ReadPoolSlots  int `json:"readPoolSlots"`
		WritePoolNodes int `json:"writePoolNodes"`
		WritePoolSlots int `json:"writePoolSlots"`
	} `json:"dcp"`
	Server struct {
		Sessions int   `json:"sessions"`
		Queries  int64 `json:"queries"`
		Draining bool  `json:"draining"`
	} `json:"server"`
	RecentQueries []QueryRecord `json:"recentQueries"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "metrics is GET-only")
		return
	}
	var m Metrics
	work := &s.eng.Work
	m.Cumulative = workCounters{
		RowsScanned:         work.RowsScanned.Load(),
		FilesRead:           work.FilesRead.Load(),
		BytesRead:           work.BytesRead.Load(),
		MergeFreeAggs:       work.MergeFreeAggs.Load(),
		TopNPushdowns:       work.TopNPushdowns.Load(),
		JoinSpills:          work.JoinSpills.Load(),
		JoinSpillBytes:      work.JoinSpillBytes.Load(),
		JoinSpillPartitions: work.JoinSpillPartitions.Load(),
		BuildSideSwaps:      work.BuildSideSwaps.Load(),
		PushedFilters:       work.PushedFilters.Load(),
		RuntimeFilterRows:   work.RuntimeFilterRows.Load(),
		DagTasks:            work.DagTasks.Load(),
		DagRetries:          work.DagRetries.Load(),
		DagStages:           work.DagStages.Load(),
	}
	adm := &work.Admission
	m.Admission = admissionCounters{
		Queued:      adm.Queued.Load(),
		Admitted:    adm.Admitted.Load(),
		Rejected:    adm.Rejected.Load(),
		TimedOut:    adm.TimedOut.Load(),
		Canceled:    adm.Canceled.Load(),
		QueueWaitNs: adm.QueueWaitNanos.Load(),
		Waiting:     s.adm.Waiting(),
	}
	m.Fabric.TotalSlots = s.eng.Fabric.TotalSlots()
	m.Fabric.LeasedSlots = s.eng.Fabric.LeasedSlots()
	m.Fabric.FreeSlots = s.eng.Fabric.FreeSlots()
	m.Fabric.QueuedLeases = s.eng.Fabric.QueuedLeases()
	pg := s.eng.PoolGauges()
	m.DCP.ReadPoolNodes = pg.ReadNodes
	m.DCP.ReadPoolSlots = pg.ReadSlots
	m.DCP.WritePoolNodes = pg.WriteNodes
	m.DCP.WritePoolSlots = pg.WriteSlots

	s.mu.Lock()
	m.Server.Sessions = len(s.sessions)
	m.Server.Draining = s.draining
	m.RecentQueries = append([]QueryRecord(nil), s.recent...)
	s.mu.Unlock()
	m.Server.Queries = s.queries.Load()
	writeJSON(w, http.StatusOK, &m)
}

type sessionCreateRequest struct {
	// Budget overrides the server-wide SessionBudget for this session
	// (bytes; negative = unlimited). Zero inherits the server default.
	Budget int64 `json:"budget"`
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "session create is POST-only")
		return
	}
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; no new sessions")
		return
	}
	var req sessionCreateRequest
	body, code, errc, msg := s.readBody(w, r)
	if errc != "" {
		writeErr(w, code, errc, msg)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
			return
		}
	}
	budget := req.Budget
	if budget == 0 {
		budget = s.cfg.SessionBudget
	}
	ss := &session{s: sql.NewSession(s.eng)}
	if budget != 0 {
		ss.s.SetJoinMemoryBudget(budget)
	}
	s.mu.Lock()
	if s.draining { // re-check under the registry lock
		s.mu.Unlock()
		ss.s.Close()
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; no new sessions")
		return
	}
	s.nextID++
	ss.id = fmt.Sprintf("s-%d", s.nextID)
	s.sessions[ss.id] = ss
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"session": ss.id})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "session close is DELETE-only")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	s.mu.Lock()
	ss, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown_session", fmt.Sprintf("no session %q", id))
		return
	}
	// wait for any in-flight statement on the session, then close it
	ss.mu.Lock()
	ss.closed = true
	ss.s.Close()
	ss.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"closed": id})
}

type queryRequest struct {
	SQL string `json:"sql"`
	// Session names a server session created via POST /v1/session; empty
	// runs the statement on a one-shot autocommit session.
	Session string `json:"session"`
}

// QueryResponse is the /v1/query success document.
type QueryResponse struct {
	Columns      []string `json:"columns,omitempty"`
	Rows         [][]any  `json:"rows,omitempty"`
	RowsAffected int64    `json:"rowsAffected"`
	Message      string   `json:"message,omitempty"`
	Statements   int      `json:"statements"`
	// DOP is the worker-slot count admission granted the (last) statement.
	DOP int `json:"dop"`
	// QueueWaitNs totals the request's time in the admission queue.
	QueueWaitNs int64 `json:"queueWaitNs"`
	SimTimeNs   int64 `json:"simTimeNs"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "query is POST-only")
		return
	}
	if !s.enter() {
		writeErr(w, http.StatusServiceUnavailable, "draining", "server is draining; statement rejected")
		return
	}
	defer s.inflight.Done()

	body, code, errc, msg := s.readBody(w, r)
	if errc != "" {
		writeErr(w, code, errc, msg)
		return
	}
	var req queryRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if strings.TrimSpace(req.SQL) == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", `missing "sql"`)
		return
	}
	// Parse before admission: malformed SQL must never consume a queue seat
	// or a slot lease.
	stmts, err := sql.ParseScript(req.SQL)
	if err != nil {
		s.record(req, http.StatusBadRequest, "parse_error", 0, 0, nil)
		writeErr(w, http.StatusBadRequest, "parse_error", err.Error())
		return
	}
	if len(stmts) == 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "empty statement")
		return
	}

	// Resolve the session: named sessions serialize on their own mutex;
	// an empty name gets a one-shot autocommit session.
	var ss *session
	if req.Session != "" {
		s.mu.Lock()
		ss = s.sessions[req.Session]
		s.mu.Unlock()
		if ss == nil {
			writeErr(w, http.StatusNotFound, "unknown_session", fmt.Sprintf("no session %q", req.Session))
			return
		}
		ss.mu.Lock()
		defer ss.mu.Unlock()
		if ss.closed {
			writeErr(w, http.StatusNotFound, "unknown_session", fmt.Sprintf("session %q closed", req.Session))
			return
		}
	} else {
		one := sql.NewSession(s.eng)
		if s.cfg.SessionBudget != 0 {
			one.SetJoinMemoryBudget(s.cfg.SessionBudget)
		}
		defer one.Close()
		ss = &session{s: one}
	}

	var (
		res       *sql.Result
		totalWait time.Duration
		lastDOP   int
	)
	for _, st := range stmts {
		lease, wait, aerr := s.adm.Acquire(r.Context())
		totalWait += wait
		if aerr != nil {
			status, codeStr := admissionError(aerr)
			s.record(req, status, codeStr, lastDOP, totalWait, nil)
			writeErr(w, status, codeStr, aerr.Error())
			return
		}
		lastDOP = lease.Granted()
		res, err = ss.s.ExecParsedWith(st, sql.ExecOpts{DOP: lease.Granted()})
		lease.Release()
		if err != nil {
			s.record(req, http.StatusBadRequest, "exec_error", lastDOP, totalWait, nil)
			writeErr(w, http.StatusBadRequest, "exec_error", err.Error())
			return
		}
	}

	resp := &QueryResponse{
		RowsAffected: res.RowsAffected,
		Message:      res.Message,
		Statements:   len(stmts),
		DOP:          lastDOP,
		QueueWaitNs:  totalWait.Nanoseconds(),
		SimTimeNs:    res.SimTime.Nanoseconds(),
	}
	if res.Batch != nil {
		resp.Columns = res.Columns()
		n := res.Batch.NumRows()
		resp.Rows = make([][]any, n)
		for i := 0; i < n; i++ {
			resp.Rows[i] = res.Batch.Row(i)
		}
	}
	s.record(req, http.StatusOK, "", lastDOP, totalWait, resp)
	writeJSON(w, http.StatusOK, resp)
}

// readBody drains the request body under the configured cap. On failure the
// returned code/errc/msg describe the HTTP error to write.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) (body []byte, status int, errc, msg string) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)
		}
		return nil, http.StatusBadRequest, "bad_request", "reading body: " + err.Error()
	}
	return body, 0, "", ""
}

// admissionError maps an Acquire failure to its HTTP rendering.
func admissionError(err error) (status int, code string) {
	switch {
	case errors.Is(err, compute.ErrQueueFull):
		return http.StatusTooManyRequests, "queue_full"
	case errors.Is(err, compute.ErrAdmissionTimeout):
		return http.StatusGatewayTimeout, "admission_timeout"
	default: // client context canceled/expired
		return http.StatusServiceUnavailable, "canceled"
	}
}

// record appends one statement request to the recent-query ring.
func (s *Server) record(req queryRequest, status int, code string, dop int, wait time.Duration, resp *QueryResponse) {
	seq := s.queries.Add(1)
	rec := QueryRecord{
		Seq:         seq,
		Session:     req.Session,
		SQL:         truncate(req.SQL, 120),
		Status:      status,
		Code:        code,
		DOP:         dop,
		QueueWaitNs: wait.Nanoseconds(),
	}
	if resp != nil {
		rec.SimTimeNs = resp.SimTimeNs
		rec.Rows = len(resp.Rows)
		rec.RowsAffected = resp.RowsAffected
	}
	s.mu.Lock()
	s.recent = append(s.recent, rec)
	if over := len(s.recent) - s.cfg.RecentQueries; over > 0 {
		s.recent = append(s.recent[:0], s.recent[over:]...)
	}
	s.mu.Unlock()
}

func truncate(q string, n int) string {
	q = strings.Join(strings.Fields(q), " ")
	if len(q) > n {
		return q[:n] + "…"
	}
	return q
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeErr renders the uniform error body {"error": ..., "code": ...} the
// error-matrix tests pin.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]string{"error": msg, "code": code})
}
