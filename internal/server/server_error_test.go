package server

// HTTP error matrix in the import_into.test style: every bad input pins its
// status code, its machine-readable error code, and — the part that keeps a
// long-running server trustworthy — that the failure leaked no session, no
// slot lease and no queued admission seat.

import (
	"context"
	"net/http"
	"strings"
	"testing"
)

func TestServerErrorMatrix(t *testing.T) {
	e := newEnv(t, tinyFabric(4), Config{MaxBodyBytes: 512})
	e.query("", "CREATE TABLE ok (k INT, v INT) WITH (DISTRIBUTION = k)")
	e.query("", "INSERT INTO ok VALUES (1, 1)")
	sid := e.createSession()

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
		wantErrSub string // substring the human-readable error must carry
	}{
		{
			name:   "malformed sql",
			method: "POST", path: "/v1/query",
			body:       `{"sql": "SELEC 1 FROMM ok"}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "parse_error",
		},
		{
			name:   "exec error unknown table",
			method: "POST", path: "/v1/query",
			body:       `{"sql": "SELECT * FROM no_such_table"}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "exec_error",
			wantErrSub: "no_such_table",
		},
		{
			name:   "invalid json body",
			method: "POST", path: "/v1/query",
			body:       `{"sql": `,
			wantStatus: http.StatusBadRequest,
			wantCode:   "bad_request",
		},
		{
			name:   "missing sql field",
			method: "POST", path: "/v1/query",
			body:       `{"session": "s-1"}`,
			wantStatus: http.StatusBadRequest,
			wantCode:   "bad_request",
			wantErrSub: `"sql"`,
		},
		{
			name:   "oversized body",
			method: "POST", path: "/v1/query",
			body:       `{"sql": "SELECT '` + strings.Repeat("x", 1024) + `' FROM ok"}`,
			wantStatus: http.StatusRequestEntityTooLarge,
			wantCode:   "body_too_large",
		},
		{
			name:   "unknown endpoint",
			method: "GET", path: "/v1/nope",
			wantStatus: http.StatusNotFound,
			wantCode:   "not_found",
		},
		{
			name:   "unknown session",
			method: "POST", path: "/v1/query",
			body:       `{"sql": "SELECT 1 FROM ok", "session": "s-999"}`,
			wantStatus: http.StatusNotFound,
			wantCode:   "unknown_session",
			wantErrSub: "s-999",
		},
		{
			name:   "delete unknown session",
			method: "DELETE", path: "/v1/session/s-999",
			wantStatus: http.StatusNotFound,
			wantCode:   "unknown_session",
		},
		{
			name:   "wrong method on query",
			method: "GET", path: "/v1/query",
			wantStatus: http.StatusMethodNotAllowed,
			wantCode:   "method_not_allowed",
		},
		{
			name:   "wrong method on session create",
			method: "GET", path: "/v1/session",
			wantStatus: http.StatusMethodNotAllowed,
			wantCode:   "method_not_allowed",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sessionsBefore := e.srv.SessionCount()
			req, err := http.NewRequest(tc.method, e.ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body := make([]byte, 4096)
			n, _ := resp.Body.Read(body)
			resp.Body.Close()
			body = body[:n]

			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d (%s), want %d", resp.StatusCode, body, tc.wantStatus)
			}
			eb := decodeErr(t, body)
			if eb.Code != tc.wantCode {
				t.Fatalf("code = %q (%s), want %q", eb.Code, body, tc.wantCode)
			}
			if tc.wantErrSub != "" && !strings.Contains(eb.Error, tc.wantErrSub) {
				t.Fatalf("error %q does not mention %q", eb.Error, tc.wantErrSub)
			}
			// no failure path may leak execution state
			if got := e.db.Engine().Fabric.LeasedSlots(); got != 0 {
				t.Fatalf("leaked %d slot leases", got)
			}
			if got := e.db.Engine().Fabric.QueuedLeases(); got != 0 {
				t.Fatalf("leaked %d queued admission seats", got)
			}
			if got := e.srv.SessionCount(); got != sessionsBefore {
				t.Fatalf("session count %d -> %d across an error", sessionsBefore, got)
			}
		})
	}

	// the server still works after the whole matrix
	if r := e.query(sid, "SELECT COUNT(*) FROM ok"); r.Rows[0][0] != float64(1) {
		t.Fatalf("post-matrix query: %v", r.Rows)
	}

	// drain flips the remaining statement surface to 503 without touching
	// the error shape
	if err := e.srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	code, body := e.tryQuery("", "SELECT COUNT(*) FROM ok")
	if code != http.StatusServiceUnavailable || decodeErr(t, body).Code != "draining" {
		t.Fatalf("query during drain: %d %s, want 503 draining", code, body)
	}
	code, body = e.post("/v1/session", nil)
	if code != http.StatusServiceUnavailable || decodeErr(t, body).Code != "draining" {
		t.Fatalf("session create during drain: %d %s, want 503 draining", code, body)
	}
	if n := e.db.Engine().Fabric.LeasedSlots(); n != 0 {
		t.Fatalf("leaked %d slots after matrix + drain", n)
	}
	if n := e.srv.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survived drain", n)
	}
}
