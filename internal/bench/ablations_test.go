package bench

import "testing"

func TestAblationConflictGranularity(t *testing.T) {
	rows := AblationConflictGranularity(4)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	table, file := rows[0], rows[1]
	if table.Value != 1 {
		t.Fatalf("table granularity committed %v writers, want exactly 1", table.Value)
	}
	if file.Value <= table.Value {
		t.Fatalf("file granularity (%v) not better than table (%v)", file.Value, table.Value)
	}
}

func TestAblationCheckpointThreshold(t *testing.T) {
	// 29 commits leave different replay tails: none=29, every-10=9, every-5=4.
	rows := AblationCheckpointThreshold(29, []int{0, 10, 5})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, ten, five := rows[0], rows[1], rows[2]
	if none.SimTime <= ten.SimTime {
		t.Fatalf("no-checkpoint (%v) should be costlier than every-10 (%v)", none.SimTime, ten.SimTime)
	}
	if ten.SimTime <= five.SimTime {
		t.Fatalf("every-10 (%v) should be costlier than every-5 (%v) on replay", ten.SimTime, five.SimTime)
	}
}

func TestAblationCompaction(t *testing.T) {
	rows := AblationCompaction()
	frag, comp := rows[0], rows[1]
	// Compaction physically removes deleted rows, cutting read amplification.
	if comp.Value >= frag.Value {
		t.Fatalf("compacted scan reads %v rows, fragmented %v — no improvement", comp.Value, frag.Value)
	}
}

func TestAblationCoWvsMoR(t *testing.T) {
	rows := AblationCoWvsMoR()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Config+"/"+r.Metric] = r
	}
	// The paper's rationale for MoR: trickle deletes write tiny deletion
	// vectors instead of rewriting the file (write amplification).
	mor := byKey["merge-on-read/delete_bytes_written"].Value
	cow := byKey["copy-on-write/delete_bytes_written"].Value
	if mor*4 >= cow {
		t.Fatalf("MoR delete wrote %v bytes, CoW %v — expected CoW >> MoR", mor, cow)
	}
	// CoW's payoff: subsequent scans read only live rows.
	if byKey["copy-on-write/scan_rows_after"].Value >= byKey["merge-on-read/scan_rows_after"].Value {
		t.Fatalf("CoW scan reads %v rows, MoR %v — expected CoW < MoR",
			byKey["copy-on-write/scan_rows_after"].Value, byKey["merge-on-read/scan_rows_after"].Value)
	}
}

func TestAblationWLM(t *testing.T) {
	rows := AblationWLM()
	sep, shared := rows[0], rows[1]
	if sep.SimTime > shared.SimTime {
		t.Fatalf("separated reads (%v) slower than shared (%v) under load", sep.SimTime, shared.SimTime)
	}
}
