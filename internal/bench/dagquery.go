package bench

// Distributed-query micro-benchmark: the same join+aggregate SELECT through
// the in-process morsel executor and as a DCP task DAG with object-store
// exchange stages (core.Options.DistributedQueries, see docs/DCP-QUERIES.md).
// Shared by the root BenchmarkParallelDAGQuery and cmd/benchrunner -json; the
// two paths return byte-identical batches, which the root benchmark asserts
// on its first iteration.

import (
	"fmt"
	"strings"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
	"polaris/internal/sql"
)

// DAGQueryHandle is a prepared engine and session with the benchmark dataset
// loaded; Run executes the measured SELECT once.
type DAGQueryHandle struct {
	eng  *core.Engine
	sess *sql.Session
}

const dagQuerySQL = `SELECT c.region, COUNT(*), SUM(o.qty) FROM orders o JOIN customers c ON o.cust = c.cid WHERE o.qty > 1 GROUP BY c.region ORDER BY c.region`

// PrepareDAGQuery loads 20k orders rows (4 distributions, several files and
// row groups each) plus a 64-row customers dimension into a fresh engine on
// a 4-node/2-slot fabric. distributed toggles the DCP DAG execution path;
// dop is the target intra-query parallelism.
func PrepareDAGQuery(distributed bool, dop int) (*DAGQueryHandle, error) {
	opts := core.DefaultOptions()
	opts.Distributions = 4
	opts.RowsPerFile = 2000
	opts.RowsPerGroup = 500
	opts.Parallelism = dop
	opts.DistributedQueries = distributed
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 2})
	eng := core.NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
	sess := sql.NewSession(eng)
	run := func(q string) error { _, err := sess.Exec(q); return err }
	if err := run(`CREATE TABLE orders (id INT, cust INT, qty INT) WITH (DISTRIBUTION = cust, SORTCOL = id)`); err != nil {
		return nil, err
	}
	for chunk := 0; chunk < 8; chunk++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO orders VALUES ")
		for i := 0; i < 2500; i++ {
			id := chunk*2500 + i
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d)", id, id%64, id%7)
		}
		if err := run(sb.String()); err != nil {
			return nil, err
		}
	}
	if err := run(`CREATE TABLE customers (cid INT, region VARCHAR) WITH (DISTRIBUTION = cid, SORTCOL = cid)`); err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO customers VALUES ")
	for c := 0; c < 64; c++ {
		if c > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'region-%02d')", c, c%8)
	}
	if err := run(sb.String()); err != nil {
		return nil, err
	}
	return &DAGQueryHandle{eng: eng, sess: sess}, nil
}

// Run executes the benchmark SELECT and returns its result batch.
func (h *DAGQueryHandle) Run() (*colfile.Batch, error) {
	res, err := h.sess.Exec(dagQuerySQL)
	if err != nil {
		return nil, err
	}
	return res.Batch, nil
}

// DagTasks reports the engine's cumulative DAG task counter, for tasks/op
// metrics.
func (h *DAGQueryHandle) DagTasks() int64 { return h.eng.Work.DagTasks.Load() }
