// Package bench reproduces every evaluation figure of the paper (Section 7)
// as a programmatic experiment returning structured rows. The root-level
// testing.B benchmarks and cmd/benchrunner both drive these functions; the
// numbers they report are *simulated* durations from the compute cost model,
// so the comparison against the paper is about shape — who wins, by what
// rough factor, where crossovers fall — not absolute values.
package bench

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
	"polaris/internal/sql"
	"polaris/internal/sto"
	"polaris/internal/workload"
)

// Scale multiplies all workload sizes; 1.0 is the quick default used by `go
// test -bench`, larger values sharpen the curves for cmd/benchrunner.
type Scale float64

func newEngine(elastic bool, maxNodes int) *core.Engine {
	return newEngineT(elastic, maxNodes, 400, 0.3)
}

func newEngineT(elastic bool, maxNodes int, smallRows int64, deletedFrac float64) *core.Engine {
	opts := core.DefaultOptions()
	opts.Distributions = 8
	opts.RowsPerFile = 4000
	opts.RowsPerGroup = 1000
	opts.CompactSmallRows = smallRows
	opts.CompactDeletedFrac = deletedFrac
	// Laptop-scale loads finish in simulated hundreds of milliseconds, so the
	// datacenter-scale 2s provisioning delay would dominate every elastic
	// grow; scale it to match the workload like the rest of the cost model.
	model := compute.DefaultCostModel()
	model.ProvisionDelay = 100 * time.Millisecond
	fabric := compute.NewFabric(compute.Config{
		Elastic: elastic, MaxNodes: maxNodes, InitNodes: 2, SlotsPer: 4,
		Model: model,
	})
	return core.NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
}

// Fig7Row is one bar of Figure 7: lineitem load time at a scale factor under
// elastic resources, labeled with the resource factor used.
type Fig7Row struct {
	Label          string  // "1GB", "10GB", ...
	ScaleFactor    float64 // internal SF
	SourceFiles    int
	Rows           int64
	LoadTime       time.Duration // simulated
	ResourceFactor int           // nodes provisioned (the bar label)
}

// Fig7 runs the ingestion-scaling experiment: loading lineitem at
// geometrically growing scale factors on an elastic topology. Paper shape:
// load time grows sub-linearly in data size; the resource factor grows
// super-linearly (1, 3, 26, 240, 2896).
func Fig7(s Scale) []Fig7Row {
	labels := []string{"1GB", "10GB", "100GB", "1TB", "10TB"}
	sfs := []float64{0.01, 0.1, 1, 10, 100}
	var out []Fig7Row
	for i, sf := range sfs {
		sf *= float64(s)
		eng := newEngine(true, 0)
		// TPC-H ships ~40 source files per 100GB and 400 per TB; parallelism
		// is bounded by the source file count (Section 7.1).
		files := int(4 * sfs[i] * float64(s))
		if files < 1 {
			files = 1
		}
		var loadSim time.Duration
		err := eng.AutoCommit(func(tx *core.Txn) error {
			td := workload.THTables()[0]
			if _, err := tx.CreateTable(td.Name, td.Schema, td.DistCol, td.SortCol); err != nil {
				return err
			}
			if _, err := tx.BulkLoad("lineitem", workload.LineitemSources(sf, files)); err != nil {
				return err
			}
			loadSim = tx.SimTime()
			return nil
		})
		if err != nil {
			panic(fmt.Sprintf("bench: fig7 sf=%v: %v", sf, err))
		}
		out = append(out, Fig7Row{
			Label: labels[i], ScaleFactor: sf, SourceFiles: files,
			Rows:     int64(sf * workload.RowsPerSF),
			LoadTime: loadSim, ResourceFactor: eng.Fabric.Provisioned(),
		})
	}
	return out
}

// Fig8Row is one bar pair of Figure 8: load time under a bounded (fixed
// capacity) vs unbounded (elastic) topology.
type Fig8Row struct {
	Label       string
	ScaleFactor float64
	BoundedTime time.Duration
	ElasticTime time.Duration
	BoundedRes  int
	ElasticRes  int
}

// Fig8 compares fixed-capacity and elastic loads at the 1TB and 10TB proxy
// scales. Paper shape: at 1TB the two match; at 10TB the bounded model is far
// slower (2896 vs 304) because capacity is capped.
func Fig8(s Scale) []Fig8Row {
	labels := []string{"1TB", "10TB"}
	sfs := []float64{10, 100}
	const cap1TB = 4 // fixed capacity sized to the 1TB load (previous-gen model)
	var out []Fig8Row
	for i, base := range sfs {
		sf := base * float64(s)
		files := int(4 * base * float64(s))
		if files < 1 {
			files = 1
		}
		row := Fig8Row{Label: labels[i], ScaleFactor: sf}
		for _, elastic := range []bool{false, true} {
			eng := newEngine(elastic, cap1TB)
			var sim time.Duration
			err := eng.AutoCommit(func(tx *core.Txn) error {
				td := workload.THTables()[0]
				if _, err := tx.CreateTable(td.Name, td.Schema, td.DistCol, td.SortCol); err != nil {
					return err
				}
				_, err := tx.BulkLoad("lineitem", workload.LineitemSources(sf, files))
				sim = tx.SimTime()
				return err
			})
			if err != nil {
				panic(fmt.Sprintf("bench: fig8: %v", err))
			}
			if elastic {
				row.ElasticTime, row.ElasticRes = sim, eng.Fabric.Provisioned()
			} else {
				row.BoundedTime, row.BoundedRes = sim, eng.Fabric.Provisioned()
			}
		}
		out = append(out, row)
	}
	return out
}

// Fig9Row is one query of Figure 9: TPC-H query time isolated vs with a
// concurrent (uncommitted) load into the same tables.
type Fig9Row struct {
	Query      int
	Isolated   time.Duration
	Concurrent time.Duration
}

// Fig9 runs the 22-query TPC-H power run twice — isolated, then with a bulk
// insert transaction running concurrently into lineitem, never committing.
// Paper shape: per-query times barely change, because WLM separates the load
// onto write nodes, SI keeps reads consistent, and caches stay warm over
// immutable files.
func Fig9(s Scale) []Fig9Row {
	sf := 0.5 * float64(s)
	eng := newEngine(true, 0)
	if _, err := workload.LoadTPCH(eng, sf, 4); err != nil {
		panic(fmt.Sprintf("bench: fig9 load: %v", err))
	}
	queries := workload.THQueries()

	run := func(concurrent bool) []time.Duration {
		var stopLoad chan struct{}
		var loadDone chan struct{}
		if concurrent {
			stopLoad = make(chan struct{})
			loadDone = make(chan struct{})
			go func() {
				defer close(loadDone)
				// one long uncommitted ingestion transaction (per the paper)
				tx := eng.Begin()
				defer tx.Rollback()
				base := int64(10_000_000)
				for chunk := 0; ; chunk++ {
					select {
					case <-stopLoad:
						return
					default:
					}
					lo := base + int64(chunk)*500
					if _, err := tx.Insert("lineitem", workload.LineitemBatch(lo, lo+500)); err != nil {
						return
					}
				}
			}()
		}
		sess := sql.NewSession(eng)
		defer sess.Close()
		// cold run to warm caches, then measure 3 warm runs (paper 7.2)
		times := make([]time.Duration, len(queries))
		for warm := 0; warm < 4; warm++ {
			for qi, q := range queries {
				res, err := sess.Exec(q)
				if err != nil {
					panic(fmt.Sprintf("bench: fig9 Q%d: %v", qi+1, err))
				}
				if warm > 0 {
					times[qi] += res.SimTime
				}
			}
		}
		for qi := range times {
			times[qi] /= 3
		}
		if concurrent {
			close(stopLoad)
			<-loadDone
		}
		return times
	}

	iso := run(false)
	conc := run(true)
	out := make([]Fig9Row, len(queries))
	for i := range queries {
		out[i] = Fig9Row{Query: i + 1, Isolated: iso[i], Concurrent: conc[i]}
	}
	return out
}

// Fig10Sample is one point of Figure 10's storage-health timeline.
type Fig10Sample struct {
	Phase   string // SU or DM, with ordinal
	Table   string
	Healthy bool
}

// Fig10Result carries the timeline plus compaction activity.
type Fig10Result struct {
	Timeline    []Fig10Sample
	Compactions int
}

// Fig10 runs the WP1-style alternation of Single User and Data Maintenance
// phases with autonomous compaction. Paper shape: DM flips tables to
// unhealthy (red); within the phase the STO compacts; by the next SU phase
// every table is green again.
func Fig10(s Scale) Fig10Result {
	rows := int64(2000 * float64(s))
	// Health here keys on the deleted-row fraction: each DM phase deletes
	// ~28% of rows (6 of 21 residues), crossing the 20% fragmentation
	// threshold exactly as the paper's "files affected by deletes" do; the
	// small-file signal is disabled so the timeline isolates fragmentation.
	eng := newEngineT(true, 0, 0, 0.2)
	if err := workload.LoadDS(eng, rows); err != nil {
		panic(fmt.Sprintf("bench: fig10 load: %v", err))
	}
	orch := sto.New(eng, sto.Config{
		CheckpointEvery: 10, AutoCompact: true, PublishDelta: false, MaxCompactRetries: 3,
	})
	queries := workload.DSQueries(8)
	next := rows * 10
	var res Fig10Result
	sample := func(phase string) {
		for _, h := range orch.SampleHealth() {
			res.Timeline = append(res.Timeline, Fig10Sample{Phase: phase, Table: h.Table, Healthy: h.Healthy})
		}
	}
	const phases = 4
	for p := 0; p < phases; p++ {
		if _, err := workload.RunSU(eng, queries); err != nil {
			panic(err)
		}
		sample(fmt.Sprintf("SU_%d", p+1))
		_, err := workload.RunDM(eng, workload.DMConfig{
			Tables:     workload.DSTableNames()[:3],
			InsertRows: rows / 10, DeleteEvery: 3, NextSK: &next,
			Compact: func(table string) { /* discovery happens via sampling */ },
		})
		if err != nil {
			panic(err)
		}
		sample(fmt.Sprintf("DM_%d", p+1)) // sampling triggers auto-compaction
		sample(fmt.Sprintf("DM_%d+", p+1))
	}
	if _, err := workload.RunSU(eng, queries); err != nil {
		panic(err)
	}
	sample(fmt.Sprintf("SU_%d", phases+1))
	res.Compactions = len(orch.Compactions())
	return res
}

// Fig11Row is one checkpoint lifetime bar of Figure 11.
type Fig11Row struct {
	Table    string
	StartSeq int64
	EndSeq   int64 // 0 = still newest
	Folded   int   // manifests folded into the checkpoint
}

// Fig11 runs the WP1 longevity pattern: each DM phase issues 2 INSERTs and 6
// DELETEs per table with compaction run twice (between each set of 3
// deletes), i.e. 10 manifests per table per phase — exactly the paper's
// checkpoint threshold, so each phase mints one new checkpoint per table.
func Fig11(s Scale) []Fig11Row {
	eng := newEngine(true, 0)
	rows := int64(2000 * float64(s))
	if err := workload.LoadDS(eng, rows); err != nil {
		panic(fmt.Sprintf("bench: fig11 load: %v", err))
	}
	orch := sto.New(eng, sto.Config{
		CheckpointEvery: 10, AutoCompact: false, PublishDelta: false, MaxCompactRetries: 3,
	})
	next := rows * 10
	const phases = 3
	for p := 0; p < phases; p++ {
		_, err := workload.RunDM(eng, workload.DMConfig{
			Tables:     workload.DSTableNames(),
			InsertRows: rows / 10, DeleteEvery: 3, NextSK: &next,
			Compact: func(table string) { orch.Compact(table) },
		})
		if err != nil {
			panic(err)
		}
	}
	tx := eng.Begin()
	defer tx.Rollback()
	tables, _ := tx.ListTables()
	nameOf := make(map[int64]string, len(tables))
	for _, m := range tables {
		nameOf[m.ID] = m.Name
	}
	var out []Fig11Row
	for _, cp := range orch.Checkpoints() {
		out = append(out, Fig11Row{
			Table: nameOf[cp.TableID], StartSeq: cp.Seq, EndSeq: cp.EndSeq, Folded: cp.Manifest,
		})
	}
	return out
}

// Fig12Row is one phase bar of Figure 12: SU duration, with what ran
// concurrently, plus the phase's modeled work and contention counters.
// Durations vary with scheduling; the counters are deterministic functions
// of what each query's snapshot covered, so tests assert on them.
type Fig12Row struct {
	Phase      string
	Concurrent string // "", "DM", "Optimize"
	SUTime     time.Duration
	// WorkRows counts physical rows fetched by scan tasks during the phase
	// (modeled scan work; grows when concurrent writes enlarge snapshots).
	WorkRows int64
	// RemoteBytes counts bytes read from remote storage during the phase —
	// cache misses caused by concurrently committed files.
	RemoteBytes int64
	// Commits counts write transactions committed during the phase (the
	// contention source: 0 in isolated phases).
	Commits int64
}

// Fig12 runs the WP3 concurrency phases: SU alone, SU with interleaved DM,
// SU alone, SU with interleaved storage optimization, SU alone. Paper shape:
// the concurrent phases take longer and do measurably more work because each
// query's fresh snapshot sees newly committed data (cache misses, new
// files), while isolation keeps every query consistent. Write work is woven
// between queries deterministically (workload.RunInterleaved) so the
// counters are reproducible run to run.
func Fig12(s Scale) []Fig12Row {
	eng := newEngine(true, 0)
	rows := int64(3000 * float64(s))
	if err := workload.LoadDS(eng, rows); err != nil {
		panic(fmt.Sprintf("bench: fig12 load: %v", err))
	}
	var commits atomic.Int64
	eng.Subscribe(func(core.CommitEvent) { commits.Add(1) })
	orch := sto.New(eng, sto.Config{
		CheckpointEvery: 10, AutoCompact: false, PublishDelta: false, MaxCompactRetries: 3,
	})
	remoteBytes := func() int64 {
		var total int64
		for _, n := range eng.Fabric.Nodes() {
			total += n.Stats().BytesFromRemote
		}
		return total
	}
	// Three rounds of the query set per phase: one-time cold costs amortize
	// within a phase, so an isolated phase measures steady state while a
	// concurrent phase stays elevated throughout (its snapshot keeps moving).
	base := workload.DSQueries(10)
	var queries []string
	for r := 0; r < 3; r++ {
		queries = append(queries, base...)
	}
	next := rows * 10
	dmCfg := func() workload.DMConfig {
		return workload.DMConfig{
			Tables:     workload.DSTableNames()[:4],
			InsertRows: rows / 5, DeleteEvery: 3, NextSK: &next,
		}
	}
	// Unrecorded warm-up run so SU_1 measures warm-cache steady state, like
	// the paper's cold run before measurement (7.2).
	if _, err := workload.RunSU(eng, queries); err != nil {
		panic(err)
	}
	var out []Fig12Row

	run := func(phase, concurrent string) {
		rows0, _, _ := eng.Work.Snapshot()
		rb0 := remoteBytes()
		c0 := commits.Load()
		var su workload.PhaseResult
		switch concurrent {
		case "DM":
			var err error
			su, _, err = workload.RunInterleaved(eng, queries, dmCfg())
			if err != nil {
				panic(err)
			}
		case "Optimize":
			// Storage optimization woven between queries deterministically:
			// one table compaction lands before each of the first queries.
			var steps []func() error
			for _, tbl := range workload.DSTableNames() {
				tbl := tbl
				steps = append(steps, func() error { orch.Compact(tbl); return nil })
			}
			var err error
			su, err = workload.RunInterleavedSteps(eng, queries, steps)
			if err != nil {
				panic(err)
			}
		default:
			var err error
			su, err = workload.RunSU(eng, queries)
			if err != nil {
				panic(err)
			}
		}
		rows1, _, _ := eng.Work.Snapshot()
		out = append(out, Fig12Row{
			Phase: phase, Concurrent: concurrent, SUTime: su.SimTime,
			WorkRows:    rows1 - rows0,
			RemoteBytes: remoteBytes() - rb0,
			Commits:     commits.Load() - c0,
		})
	}
	run("SU_1", "")
	run("SU_2", "DM")
	run("SU_3", "")
	run("SU_4", "Optimize")
	run("SU_5", "")
	return out
}

// RenderTable renders rows of "column: value" maps as an aligned text table.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&sb, "%-*s", widths[i]+2, c)
		}
		sb.WriteString("\n")
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}

// Ms formats a duration as fractional milliseconds.
func Ms(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond)) }

// Secs formats a duration as fractional seconds.
func Secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
