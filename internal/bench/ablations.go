package bench

import (
	"fmt"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/dcp"
	"polaris/internal/exec"
	"polaris/internal/workload"
)

// Ablations for the design choices DESIGN.md calls out. Each returns rows
// comparing the design point used by the paper against the alternative.

// AblationRow is one configuration's outcome in an ablation.
type AblationRow struct {
	Config  string
	Metric  string
	Value   float64
	SimTime time.Duration
}

func dsSchema() colfile.Schema { return workload.DSTables()[0].Schema }

// AblationConflictGranularity measures commit success under concurrent
// updaters that touch disjoint data files: table granularity aborts all but
// one; file granularity (paper 4.4.1) lets disjoint updates through.
func AblationConflictGranularity(writers int) []AblationRow {
	var out []AblationRow
	for _, gran := range []core.ConflictGranularity{core.TableGranularity, core.FileGranularity} {
		opts := core.DefaultOptions()
		opts.Distributions = writers // one bucket per writer -> disjoint files
		opts.RowsPerFile = 1000
		opts.Granularity = gran
		eng := core.NewDefaultEngine(opts)
		err := eng.AutoCommit(func(tx *core.Txn) error {
			if _, err := tx.CreateTable("t", dsSchema(), "sk", "sk"); err != nil {
				return err
			}
			_, err := tx.Insert("t", workload.DSBatch("t", 0, int64(writers*50)))
			return err
		})
		if err != nil {
			panic(err)
		}
		// All writers share a snapshot, each deletes one distinct sk.
		txs := make([]*core.Txn, writers)
		for i := range txs {
			txs[i] = eng.Begin()
		}
		for i, tx := range txs {
			if _, err := tx.Delete("t", exec.Bin{
				Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: int64(i)},
			}); err != nil {
				panic(err)
			}
		}
		committed := 0
		for _, tx := range txs {
			if err := tx.Commit(); err == nil {
				committed++
			} else if !catalog.IsWriteConflict(err) {
				panic(err)
			}
		}
		name := "table-granularity"
		if gran == core.FileGranularity {
			name = "file-granularity"
		}
		out = append(out, AblationRow{
			Config: name, Metric: "committed_of_" + itoa(writers), Value: float64(committed),
		})
	}
	return out
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

// AblationCheckpointThreshold measures cold snapshot-reconstruction cost as a
// function of the checkpoint threshold (paper 5.2): fewer manifests to replay
// means cheaper reconstruction.
func AblationCheckpointThreshold(commits int, thresholds []int) []AblationRow {
	var out []AblationRow
	for _, every := range thresholds {
		opts := core.DefaultOptions()
		opts.Distributions = 4
		eng := core.NewDefaultEngine(opts)
		err := eng.AutoCommit(func(tx *core.Txn) error {
			_, err := tx.CreateTable("t", dsSchema(), "sk", "sk")
			return err
		})
		if err != nil {
			panic(err)
		}
		since := 0
		for c := 0; c < commits; c++ {
			lo := int64(c * 100)
			err := eng.AutoCommit(func(tx *core.Txn) error {
				_, err := tx.Insert("t", workload.DSBatch("t", lo, lo+100))
				return err
			})
			if err != nil {
				panic(err)
			}
			since++
			if every > 0 && since >= every {
				err := eng.AutoCommit(func(tx *core.Txn) error {
					_, err := tx.CheckpointTable("t")
					return err
				})
				if err != nil {
					panic(err)
				}
				since = 0
			}
		}
		// Cold reconstruction: drop the snapshot cache, then snapshot once.
		eng.Cache.Invalidate(1)
		tx := eng.Begin()
		before := tx.SimTime()
		if _, _, err := tx.Snapshot("t", -1); err != nil {
			panic(err)
		}
		cost := tx.SimTime() - before
		tx.Rollback()
		label := "no-checkpoint"
		if every > 0 {
			label = fmt.Sprintf("every-%d", every)
		}
		out = append(out, AblationRow{
			Config: label, Metric: "cold_snapshot", SimTime: cost,
		})
	}
	return out
}

// AblationCompaction compares steady-state scan cost on a heavily deleted
// table with and without compaction (paper 5.1).
func AblationCompaction() []AblationRow {
	var out []AblationRow
	for _, compact := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.Distributions = 4
		opts.RowsPerFile = 2000
		opts.CompactSmallRows = 16
		opts.CompactDeletedFrac = 0.25
		eng := core.NewDefaultEngine(opts)
		err := eng.AutoCommit(func(tx *core.Txn) error {
			if _, err := tx.CreateTable("t", dsSchema(), "sk", "sk"); err != nil {
				return err
			}
			_, err := tx.Insert("t", workload.DSBatch("t", 0, 4000))
			return err
		})
		if err != nil {
			panic(err)
		}
		// delete 60% of rows in several statements -> fragmentation
		for k := int64(0); k < 3; k++ {
			err := eng.AutoCommit(func(tx *core.Txn) error {
				_, err := tx.Delete("t", exec.Bin{
					Kind: exec.OpEq,
					L:    exec.Bin{Kind: exec.OpMod, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: int64(5)}},
					R:    exec.Const{Val: k},
				})
				return err
			})
			if err != nil {
				panic(err)
			}
		}
		if compact {
			err := eng.AutoCommit(func(tx *core.Txn) error {
				_, err := tx.CompactTable("t")
				return err
			})
			if err != nil {
				panic(err)
			}
		}
		// Read amplification: merge-on-read scans must read deleted rows and
		// filter them; compaction removes them physically. Measure rows
		// scanned (physical) for one full read plus the warm scan sim time.
		tx := eng.Begin()
		before := tx.SimTime()
		op, tel, err := tx.Scan("t", core.ScanOptions{})
		if err != nil {
			panic(err)
		}
		if _, err := exec.Collect(op); err != nil {
			panic(err)
		}
		scan := tx.SimTime() - before
		scanned := tel.RowsScanned.Load()
		tx.Rollback()
		label := "fragmented"
		if compact {
			label = "compacted"
		}
		out = append(out, AblationRow{
			Config: label, Metric: "rows_scanned", Value: float64(scanned), SimTime: scan,
		})
	}
	return out
}

// AblationCoWvsMoR compares delete cost and subsequent scan cost between
// copy-on-write and merge-on-read deletes (paper 2.1).
func AblationCoWvsMoR() []AblationRow {
	var out []AblationRow
	for _, mode := range []core.DeleteMode{core.MergeOnRead, core.CopyOnWrite} {
		opts := core.DefaultOptions()
		opts.Distributions = 4
		opts.RowsPerFile = 4000
		opts.Deletes = mode
		eng := core.NewDefaultEngine(opts)
		err := eng.AutoCommit(func(tx *core.Txn) error {
			if _, err := tx.CreateTable("t", dsSchema(), "sk", "sk"); err != nil {
				return err
			}
			_, err := tx.Insert("t", workload.DSBatch("t", 0, 8000))
			return err
		})
		if err != nil {
			panic(err)
		}
		// Write amplification of a trickle delete (1% of rows): MoR writes
		// tiny deletion vectors, CoW rewrites whole files.
		bytesBefore := eng.Store.Metrics().BytesWritten
		var delCost time.Duration
		err = eng.AutoCommit(func(tx *core.Txn) error {
			before := tx.SimTime()
			_, err := tx.Delete("t", exec.Bin{
				Kind: exec.OpEq,
				L:    exec.Bin{Kind: exec.OpMod, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: int64(100)}},
				R:    exec.Const{Val: int64(7)},
			})
			delCost = tx.SimTime() - before
			return err
		})
		if err != nil {
			panic(err)
		}
		delBytes := eng.Store.Metrics().BytesWritten - bytesBefore
		// Read amplification afterwards: CoW scans only live rows.
		tx := eng.Begin()
		op, tel, err := tx.Scan("t", core.ScanOptions{})
		if err != nil {
			panic(err)
		}
		if _, err := exec.Collect(op); err != nil {
			panic(err)
		}
		scanned := tel.RowsScanned.Load()
		tx.Rollback()
		label := "merge-on-read"
		if mode == core.CopyOnWrite {
			label = "copy-on-write"
		}
		out = append(out,
			AblationRow{Config: label, Metric: "delete_bytes_written", Value: float64(delBytes), SimTime: delCost},
			AblationRow{Config: label, Metric: "scan_rows_after", Value: float64(scanned)},
		)
	}
	return out
}

// AblationWLM measures read-task completion with and without workload
// separation when heavy write tasks are queued in the same job mix
// (paper 4.3). It runs at the DCP level, where lane contention is modeled:
// with shared pools read tasks queue behind write tasks; with separated
// pools they complete independently.
func AblationWLM() []AblationRow {
	var out []AblationRow
	for _, separate := range []bool{true, false} {
		fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 2})
		nodes := fabric.Nodes()
		var pools dcp.Pools
		if separate {
			pools = dcp.Pools{dcp.ReadPool: nodes[:2], dcp.WritePool: nodes[2:]}
		} else {
			pools = dcp.Pools{dcp.ReadPool: nodes, dcp.WritePool: nodes}
		}
		g := dcp.NewGraph()
		// 16 heavy writes (a load job) dispatched before 8 light reads
		// (reporting queries).
		for i := 1; i <= 16; i++ {
			id := i
			if err := g.Add(&dcp.Task{ID: id, Pool: dcp.WritePool, Exec: func(ctx *dcp.Ctx) (any, error) {
				ctx.Charge(80 * time.Millisecond)
				return nil, nil
			}}); err != nil {
				panic(err)
			}
		}
		for i := 1; i <= 8; i++ {
			id := 100 + i
			if err := g.Add(&dcp.Task{ID: id, Pool: dcp.ReadPool, Exec: func(ctx *dcp.Ctx) (any, error) {
				ctx.Charge(5 * time.Millisecond)
				return nil, nil
			}}); err != nil {
				panic(err)
			}
		}
		res, err := dcp.Run(g, pools, dcp.Options{Overhead: time.Millisecond})
		if err != nil {
			panic(err)
		}
		var readEnd time.Duration
		for i := 101; i <= 108; i++ {
			if res.PerTask[i].VirtEnd > readEnd {
				readEnd = res.PerTask[i].VirtEnd
			}
		}
		label := "wlm-separated"
		if !separate {
			label = "wlm-shared"
		}
		out = append(out, AblationRow{Config: label, Metric: "read_completion", SimTime: readEnd})
	}
	return out
}
