package bench

import (
	"testing"
	"time"
)

// These tests assert the *shapes* the paper reports for each figure at a tiny
// scale; the root benchmarks re-run them at measurement scale.

func TestFig7SubLinearScaling(t *testing.T) {
	rows := Fig7(0.2)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Load time grows sub-linearly: time(next)/time(prev) << 10 for the
	// larger scales where parallelism is available.
	for i := 1; i < len(rows); i++ {
		ratio := float64(rows[i].LoadTime) / float64(rows[i-1].LoadTime)
		if ratio >= 10 {
			t.Fatalf("scale %s: time ratio %.1f not sub-linear (times: %v -> %v)",
				rows[i].Label, ratio, rows[i-1].LoadTime, rows[i].LoadTime)
		}
	}
	// Resource factor grows with scale.
	if rows[4].ResourceFactor <= rows[1].ResourceFactor {
		t.Fatalf("resources did not grow: %+v", rows)
	}
}

func TestFig8ElasticBeatsBoundedAtScale(t *testing.T) {
	rows := Fig8(0.2)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, big := rows[0], rows[1]
	// At the 1TB proxy scale the bounded topology is adequate: roughly equal.
	r := float64(small.BoundedTime) / float64(small.ElasticTime)
	if r > 2.0 || r < 0.5 {
		t.Fatalf("1TB bounded/elastic = %.2f, want ~1", r)
	}
	// At 10TB the bounded topology is capped: elastic clearly wins.
	if big.BoundedTime <= big.ElasticTime {
		t.Fatalf("10TB bounded (%v) not slower than elastic (%v)", big.BoundedTime, big.ElasticTime)
	}
	gain := float64(big.BoundedTime) / float64(big.ElasticTime)
	if gain < 1.5 {
		t.Fatalf("10TB elastic gain = %.2f, want >= 1.5", gain)
	}
	if big.ElasticRes <= big.BoundedRes {
		t.Fatalf("elastic did not use more resources: %+v", big)
	}
}

func TestFig9ConcurrentLoadBarelyAffectsQueries(t *testing.T) {
	rows := Fig9(0.1)
	if len(rows) != 22 {
		t.Fatalf("rows = %d", len(rows))
	}
	var iso, conc time.Duration
	for _, r := range rows {
		if r.Isolated <= 0 {
			t.Fatalf("Q%d isolated time zero", r.Query)
		}
		iso += r.Isolated
		conc += r.Concurrent
	}
	// Paper: results hold even with concurrent load; allow modest overhead.
	ratio := float64(conc) / float64(iso)
	if ratio > 1.6 {
		t.Fatalf("concurrent/isolated = %.2f, want near 1", ratio)
	}
}

func TestFig10CompactionRestoresGreen(t *testing.T) {
	res := Fig10(0.2)
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	sawRed := false
	for _, s := range res.Timeline {
		if !s.Healthy {
			sawRed = true
		}
	}
	if !sawRed {
		t.Fatal("DM never degraded storage health; thresholds miscalibrated")
	}
	if res.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	// final SU sample: all tables green again
	last := res.Timeline[len(res.Timeline)-1].Phase
	for _, s := range res.Timeline {
		if s.Phase == last && !s.Healthy {
			t.Fatalf("table %s still unhealthy at %s", s.Table, s.Phase)
		}
	}
}

func TestFig11OneCheckpointPerTablePerPhase(t *testing.T) {
	rows := Fig11(0.2)
	perTable := map[string]int{}
	for _, r := range rows {
		perTable[r.Table]++
		if r.Folded != 10 {
			t.Fatalf("checkpoint folded %d manifests, want 10 (paper: each DM phase creates 10 new manifest files)", r.Folded)
		}
	}
	if len(perTable) != 7 {
		t.Fatalf("tables checkpointed = %d, want 7", len(perTable))
	}
	for tbl, n := range perTable {
		if n != 3 { // 3 phases
			t.Fatalf("%s has %d checkpoints, want 3", tbl, n)
		}
	}
	// all but the newest checkpoint per table must have closed lifetimes
	open := map[string]int{}
	for _, r := range rows {
		if r.EndSeq == 0 {
			open[r.Table]++
		}
	}
	for tbl, n := range open {
		if n != 1 {
			t.Fatalf("%s has %d open checkpoints", tbl, n)
		}
	}
}

func TestFig12ConcurrencySlowsSU(t *testing.T) {
	rows := Fig12(0.2)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPhase := map[string]Fig12Row{}
	for _, r := range rows {
		byPhase[r.Phase] = r
	}
	// Each concurrent phase must be slower than its isolated neighbor — the
	// neighbor comparison controls for table growth across phases.
	if byPhase["SU_2"].SUTime <= byPhase["SU_1"].SUTime {
		t.Fatalf("SU with concurrent DM (%v) not slower than isolated SU_1 (%v)",
			byPhase["SU_2"].SUTime, byPhase["SU_1"].SUTime)
	}
	if byPhase["SU_4"].SUTime <= byPhase["SU_5"].SUTime {
		t.Fatalf("SU with concurrent Optimize (%v) not slower than isolated SU_5 (%v)",
			byPhase["SU_4"].SUTime, byPhase["SU_5"].SUTime)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"a", "long_header"}, [][]string{{"1", "2"}, {"333", "4"}})
	if out == "" || len(out) < 20 {
		t.Fatalf("render = %q", out)
	}
}
