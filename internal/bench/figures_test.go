package bench

import (
	"testing"
	"time"
)

// These tests assert the *shapes* the paper reports for each figure at a tiny
// scale; the root benchmarks re-run them at measurement scale.

func TestFig7SubLinearScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure experiment; run without -short")
	}
	rows := Fig7(0.2)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Load time grows sub-linearly: time(next)/time(prev) << 10 for the
	// larger scales where parallelism is available.
	for i := 1; i < len(rows); i++ {
		ratio := float64(rows[i].LoadTime) / float64(rows[i-1].LoadTime)
		if ratio >= 10 {
			t.Fatalf("scale %s: time ratio %.1f not sub-linear (times: %v -> %v)",
				rows[i].Label, ratio, rows[i-1].LoadTime, rows[i].LoadTime)
		}
	}
	// Resource factor grows with scale.
	if rows[4].ResourceFactor <= rows[1].ResourceFactor {
		t.Fatalf("resources did not grow: %+v", rows)
	}
}

func TestFig8ElasticBeatsBoundedAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure experiment; run without -short")
	}
	rows := Fig8(0.2)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, big := rows[0], rows[1]
	// At the 1TB proxy scale the bounded topology is adequate: roughly equal.
	r := float64(small.BoundedTime) / float64(small.ElasticTime)
	if r > 2.0 || r < 0.5 {
		t.Fatalf("1TB bounded/elastic = %.2f, want ~1", r)
	}
	// At 10TB the bounded topology is capped: elastic clearly wins.
	if big.BoundedTime <= big.ElasticTime {
		t.Fatalf("10TB bounded (%v) not slower than elastic (%v)", big.BoundedTime, big.ElasticTime)
	}
	gain := float64(big.BoundedTime) / float64(big.ElasticTime)
	if gain < 1.5 {
		t.Fatalf("10TB elastic gain = %.2f, want >= 1.5", gain)
	}
	if big.ElasticRes <= big.BoundedRes {
		t.Fatalf("elastic did not use more resources: %+v", big)
	}
}

func TestFig9ConcurrentLoadBarelyAffectsQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure experiment; run without -short")
	}
	rows := Fig9(0.1)
	if len(rows) != 22 {
		t.Fatalf("rows = %d", len(rows))
	}
	var iso, conc time.Duration
	for _, r := range rows {
		if r.Isolated <= 0 {
			t.Fatalf("Q%d isolated time zero", r.Query)
		}
		iso += r.Isolated
		conc += r.Concurrent
	}
	// Paper: results hold even with concurrent load; allow modest overhead.
	ratio := float64(conc) / float64(iso)
	if ratio > 1.6 {
		t.Fatalf("concurrent/isolated = %.2f, want near 1", ratio)
	}
}

func TestFig10CompactionRestoresGreen(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure experiment; run without -short")
	}
	res := Fig10(0.2)
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline")
	}
	sawRed := false
	for _, s := range res.Timeline {
		if !s.Healthy {
			sawRed = true
		}
	}
	if !sawRed {
		t.Fatal("DM never degraded storage health; thresholds miscalibrated")
	}
	if res.Compactions == 0 {
		t.Fatal("no compactions ran")
	}
	// final SU sample: all tables green again
	last := res.Timeline[len(res.Timeline)-1].Phase
	for _, s := range res.Timeline {
		if s.Phase == last && !s.Healthy {
			t.Fatalf("table %s still unhealthy at %s", s.Table, s.Phase)
		}
	}
}

func TestFig11OneCheckpointPerTablePerPhase(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure experiment; run without -short")
	}
	rows := Fig11(0.2)
	perTable := map[string]int{}
	for _, r := range rows {
		perTable[r.Table]++
		if r.Folded != 10 {
			t.Fatalf("checkpoint folded %d manifests, want 10 (paper: each DM phase creates 10 new manifest files)", r.Folded)
		}
	}
	if len(perTable) != 7 {
		t.Fatalf("tables checkpointed = %d, want 7", len(perTable))
	}
	for tbl, n := range perTable {
		if n != 3 { // 3 phases
			t.Fatalf("%s has %d checkpoints, want 3", tbl, n)
		}
	}
	// all but the newest checkpoint per table must have closed lifetimes
	open := map[string]int{}
	for _, r := range rows {
		if r.EndSeq == 0 {
			open[r.Table]++
		}
	}
	for tbl, n := range open {
		if n != 1 {
			t.Fatalf("%s has %d open checkpoints", tbl, n)
		}
	}
}

func TestFig12ConcurrencySlowsSU(t *testing.T) {
	if testing.Short() {
		t.Skip("slow figure experiment; run without -short")
	}
	rows := Fig12(0.2)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byPhase := map[string]Fig12Row{}
	for _, r := range rows {
		byPhase[r.Phase] = r
	}
	// Assertions are on modeled work/contention counters, which are
	// deterministic functions of what each query's snapshot covered —
	// durations (wall-clock or simulated makespans) vary with scheduling.
	for _, iso := range []string{"SU_1", "SU_3", "SU_5"} {
		if c := byPhase[iso].Commits; c != 0 {
			t.Fatalf("isolated phase %s saw %d write commits", iso, c)
		}
	}
	// SU_2 runs with interleaved DM: writes must actually land mid-phase,
	// and the growing snapshots mean strictly more scan work than the
	// isolated SU_1 over the identical query set (merge-on-read deletes
	// never shrink physical rows within the phase).
	if byPhase["SU_2"].Commits == 0 {
		t.Fatal("SU_2 saw no concurrent DM commits; interleaving broken")
	}
	if w1, w2 := byPhase["SU_1"].WorkRows, byPhase["SU_2"].WorkRows; w2 <= w1 {
		t.Fatalf("SU with concurrent DM scanned %d rows, not more than isolated SU_1's %d", w2, w1)
	}
	// SU_4 runs with interleaved compaction: the optimizer's commits force
	// fresh snapshots onto newly written files, so the phase pays remote
	// reads (cache misses) that the isolated, fully warm SU_5 does not.
	if byPhase["SU_4"].Commits == 0 {
		t.Fatal("SU_4 saw no Optimize commits; compaction did not run")
	}
	if b4, b5 := byPhase["SU_4"].RemoteBytes, byPhase["SU_5"].RemoteBytes; b4 <= b5 {
		t.Fatalf("SU with concurrent Optimize read %d remote bytes, not more than isolated SU_5's %d", b4, b5)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable([]string{"a", "long_header"}, [][]string{{"1", "2"}, {"333", "4"}})
	if out == "" || len(out) < 20 {
		t.Fatalf("render = %q", out)
	}
}
