package bench

// Wall-clock micro-benchmarks of the morsel-driven parallel executor, shared
// by the root-level testing.B benchmarks (bench_test.go) and cmd/benchrunner
// -json. Unlike the figure experiments these measure real time and real
// allocations, so their results feed the per-PR perf trajectory
// (BENCH_PR2.json) rather than paper-shape comparisons.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"polaris/internal/colfile"
	"polaris/internal/exec"
)

// microDataset lazily builds the micro-bench scan dataset: 16 immutable
// colfiles of 64Ki rows each (1M rows), 4Ki-row groups.
var microDataset struct {
	once  sync.Once
	files []exec.ScanFile
	rows  int64
	err   error
}

// MicroFiles returns the shared 1M-row columnar dataset (grp, val int64
// columns) used by the parallel scan and join micro-benchmarks, plus its row
// count.
func MicroFiles() ([]exec.ScanFile, int64, error) {
	d := &microDataset
	d.once.Do(func() {
		schema := colfile.Schema{
			{Name: "grp", Type: colfile.Int64},
			{Name: "val", Type: colfile.Int64},
		}
		const nFiles, rowsPerFile, rowsPerGroup = 16, 1 << 16, 1 << 12
		row := int64(0)
		for f := 0; f < nFiles; f++ {
			w := colfile.NewWriter(schema)
			for lo := 0; lo < rowsPerFile; lo += rowsPerGroup {
				batch := colfile.NewBatch(schema)
				for i := 0; i < rowsPerGroup; i++ {
					batch.Cols[0].AppendInt(row % 31)
					batch.Cols[1].AppendInt(row % 997)
					row++
				}
				if err := w.WriteBatch(batch); err != nil {
					d.err = err
					return
				}
			}
			data, err := w.Finish()
			if err != nil {
				d.err = err
				return
			}
			d.files = append(d.files, exec.ScanFile{Data: data})
		}
		d.rows = row
	})
	return d.files, d.rows, d.err
}

// ParallelScanAggregate runs the scan micro-benchmark pipeline — scan →
// filter → grouped integer aggregation — at the given DOP through the
// morsel-driven executor, returning the merged result.
func ParallelScanAggregate(files []exec.ScanFile, dop int) (*colfile.Batch, error) {
	pred := exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(900)}}
	groupBy := []exec.Expr{exec.ColRef{Idx: 0, Name: "grp"}}
	aggs := []exec.AggSpec{
		{Kind: exec.AggCountStar, Name: "n"},
		{Kind: exec.AggSum, Arg: exec.ColRef{Idx: 1}, Name: "sv"},
		{Kind: exec.AggMin, Arg: exec.ColRef{Idx: 1}, Name: "mn"},
		{Kind: exec.AggMax, Arg: exec.ColRef{Idx: 1}, Name: "mx"},
	}
	morsels, err := exec.SplitMorsels(files, dop*4)
	if err != nil {
		return nil, err
	}
	batches, err := exec.RunMorsels(morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		s, err := exec.NewMorselScan(m, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return &exec.HashAgg{In: &exec.Filter{In: s, Pred: pred}, GroupBy: groupBy, Aggs: aggs, Partial: true}, nil
	})
	if err != nil {
		return nil, err
	}
	r, err := colfile.OpenReader(files[0].Data)
	if err != nil {
		return nil, err
	}
	proto := &exec.HashAgg{In: exec.NewBatchSource(colfile.NewBatch(r.Schema())), GroupBy: groupBy, Aggs: aggs, Partial: true}
	merge := &exec.MergeAgg{In: exec.NewBatchList(proto.Schema(), batches), Groups: 1, Aggs: aggs}
	return exec.Collect(merge)
}

// sortKeys is the ORDER BY of the sort micro-benchmarks: val DESC (only 997
// distinct values over 1M rows, so ties are plentiful and the stable-by-
// morsel-order rule is on the hot path), then grp ascending.
func sortKeys() []exec.SortKey {
	return []exec.SortKey{{Col: 1, Desc: true}, {Col: 0}}
}

// ParallelSort runs the full-sort micro-benchmark at the given DOP: each
// morsel worker sorts its share of the 1M-row dataset into a run (SortRuns),
// and a loser-tree k-way merge (MergeRuns) combines the runs. Output is
// byte-identical at every DOP.
func ParallelSort(files []exec.ScanFile, dop int) (*colfile.Batch, error) {
	keys := sortKeys()
	morsels, err := exec.SplitMorsels(files, dop*4)
	if err != nil {
		return nil, err
	}
	batches, err := exec.RunMorsels(morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		s, err := exec.NewMorselScan(m, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return &exec.SortRuns{In: s, Keys: keys}, nil
	})
	if err != nil {
		return nil, err
	}
	r, err := colfile.OpenReader(files[0].Data)
	if err != nil {
		return nil, err
	}
	return exec.Collect(exec.NewMergeRuns(r.Schema(), batches, keys, -1))
}

// ParallelTopNRows is the bound of the top-N micro-benchmark: the ORDER BY
// ... LIMIT shape where each worker ships at most this many rows.
const ParallelTopNRows = 100

// ParallelTopN runs the top-N pushdown micro-benchmark at the given DOP:
// per-morsel bounded TopN operators (each shipping at most ParallelTopNRows
// rows) merged with early cutoff — the distributed ORDER BY ... LIMIT plan.
func ParallelTopN(files []exec.ScanFile, dop int) (*colfile.Batch, error) {
	keys := sortKeys()
	morsels, err := exec.SplitMorsels(files, dop*4)
	if err != nil {
		return nil, err
	}
	batches, err := exec.RunMorsels(morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		s, err := exec.NewMorselScan(m, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return &exec.TopN{In: s, Keys: keys, N: ParallelTopNRows}, nil
	})
	if err != nil {
		return nil, err
	}
	r, err := colfile.OpenReader(files[0].Data)
	if err != nil {
		return nil, err
	}
	return exec.Collect(exec.NewMergeRuns(r.Schema(), batches, keys, ParallelTopNRows))
}

// joinBuild lazily builds the join micro-benchmark's shared build side:
// 64Ki rows keyed 0..2^14, i.e. 4 matches per key.
var joinBuild struct {
	once  sync.Once
	table *exec.JoinTable
	err   error
}

// ParallelJoinTable returns the immutable build side of the join
// micro-benchmark, built once: probing grp∈[0,31) against keys hashed over
// [0, 16Ki) with duplicate matches.
func ParallelJoinTable() (*exec.JoinTable, error) {
	d := &joinBuild
	d.once.Do(func() {
		schema := colfile.Schema{
			{Name: "k", Type: colfile.Int64},
			{Name: "tag", Type: colfile.Int64},
		}
		b := colfile.NewBatch(schema)
		for i := int64(0); i < 1<<16; i++ {
			b.Cols[0].AppendInt(i % (1 << 14))
			b.Cols[1].AppendInt(i)
		}
		d.table, d.err = exec.BuildHashJoin(exec.NewBatchSource(b), []int{0}, exec.InnerJoin, 4, nil)
	})
	return d.table, d.err
}

// ParallelJoinProbe fans the probe side of the join micro-benchmark out over
// the morsel executor at the given DOP: scan → filter → probe against the
// shared JoinTable, merged in morsel order. Every surviving probe row
// (val < 64, ~6% of the dataset) finds 4 matches (grp < 31 < 2^14).
func ParallelJoinProbe(files []exec.ScanFile, table *exec.JoinTable, dop int) (*colfile.Batch, error) {
	pred := exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(64)}}
	morsels, err := exec.SplitMorsels(files, dop*4)
	if err != nil {
		return nil, err
	}
	batches, err := exec.RunMorsels(morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		s, err := exec.NewMorselScan(m, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return &exec.Probe{In: &exec.Filter{In: s, Pred: pred}, Table: table, LeftKeys: []int{0}}, nil
	})
	if err != nil {
		return nil, err
	}
	r, err := colfile.OpenReader(files[0].Data)
	if err != nil {
		return nil, err
	}
	proto := &exec.Probe{In: exec.NewBatchSource(colfile.NewBatch(r.Schema())), Table: table, LeftKeys: []int{0}}
	return exec.Collect(exec.NewBatchList(proto.Schema(), batches))
}

// bloomBuild lazily builds the build side of the bloom-filter join
// micro-benchmark: 64Ki rows over 16Ki distinct keys, of which only 16 fall
// inside the probe key domain (val ∈ [0, 997)). The hash table is far too
// large to stay cache-resident, which is exactly the case the build-side
// bloom filter pays for: ~98% of probe rows are rejected by a couple of
// bitmap probes instead of a cold map lookup.
var bloomBuild struct {
	once  sync.Once
	table *exec.JoinTable
	err   error
}

// ParallelJoinBloomTable returns the immutable build side of the
// bloom-pruning join micro-benchmark, built once.
func ParallelJoinBloomTable() (*exec.JoinTable, error) {
	d := &bloomBuild
	d.once.Do(func() {
		schema := colfile.Schema{
			{Name: "k", Type: colfile.Int64},
			{Name: "tag", Type: colfile.Int64},
		}
		b := colfile.NewBatch(schema)
		for i := int64(0); i < 1<<16; i++ {
			k := 997 + i%(1<<14) // outside val's [0, 997): never matches
			if i < 16 {
				k = i * 61 // the 16 matchable keys, one build row each
			}
			b.Cols[0].AppendInt(k)
			b.Cols[1].AppendInt(i)
		}
		d.table, d.err = exec.BuildHashJoin(exec.NewBatchSource(b), []int{0}, exec.InnerJoin, 4, nil)
	})
	return d.table, d.err
}

// ParallelJoinBloom probes the 1M-row dataset's val column against the
// sparse build table at the given DOP, with the build-side bloom runtime
// filter attached when bloom is true. Only ~1.6% of probe rows carry one of
// the 16 build keys, so the filter rejects the rest before the hash-table
// walk; the returned count is the number of probe rows it pruned. Output is
// byte-identical with and without the filter at every DOP — the bloom is
// pure pruning, never semantics.
func ParallelJoinBloom(files []exec.ScanFile, table *exec.JoinTable, dop int, bloom bool) (*colfile.Batch, int64, error) {
	var pruned atomic.Int64
	var filter *exec.Bloom
	if bloom {
		filter = table.BloomFilter()
	}
	morsels, err := exec.SplitMorsels(files, dop*4)
	if err != nil {
		return nil, 0, err
	}
	batches, err := exec.RunMorsels(morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		s, err := exec.NewMorselScan(m, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return &exec.Probe{In: s, Table: table, LeftKeys: []int{1}, Bloom: filter, Pruned: &pruned}, nil
	})
	if err != nil {
		return nil, 0, err
	}
	r, err := colfile.OpenReader(files[0].Data)
	if err != nil {
		return nil, 0, err
	}
	proto := &exec.Probe{In: exec.NewBatchSource(colfile.NewBatch(r.Schema())), Table: table, LeftKeys: []int{1}}
	out, err := exec.Collect(exec.NewBatchList(proto.Schema(), batches))
	if err != nil {
		return nil, 0, err
	}
	return out, pruned.Load(), nil
}

// joinBuildBatch lazily materializes the raw build-side batch of the join
// micro-benchmarks (the spill variant re-drains it per iteration, since a
// grace build consumes its input).
var joinBuildBatch struct {
	once  sync.Once
	batch *colfile.Batch
}

func buildSide() *colfile.Batch {
	d := &joinBuildBatch
	d.once.Do(func() {
		schema := colfile.Schema{
			{Name: "k", Type: colfile.Int64},
			{Name: "tag", Type: colfile.Int64},
		}
		b := colfile.NewBatch(schema)
		for i := int64(0); i < 1<<16; i++ {
			b.Cols[0].AppendInt(i % (1 << 14))
			b.Cols[1].AppendInt(i)
		}
		d.batch = b
	})
	return d.batch
}

// ParallelJoinSpillBudget forces the 1 MiB build side of the join
// micro-benchmark through the grace spill path (~8 partitions).
const ParallelJoinSpillBudget = 128 << 10

// ParallelJoinSpill runs the join micro-benchmark through the grace-join
// spill path: the build side overflows ParallelJoinSpillBudget, both sides
// are partitioned into an in-memory spill store, and the partition-wise join
// — fanned out over dop workers, one depth-0 partition per task — is merged
// back into probe-row order. Output is byte-identical to ParallelJoinProbe
// at every DOP; the ns/op delta against it is the measured cost of spilling
// (partition, serialize, restore order), which now shrinks with DOP on
// multi-core hardware instead of staying single-threaded.
func ParallelJoinSpill(files []exec.ScanFile, dop int) (*colfile.Batch, error) {
	src, err := exec.BuildGraceJoin(exec.NewBatchSource(buildSide()), []int{0}, exec.InnerJoin, dop,
		exec.SpillConfig{Budget: ParallelJoinSpillBudget, Store: exec.NewMemSpillStore()}, nil)
	if err != nil {
		return nil, err
	}
	if src.Spilled == nil {
		return nil, fmt.Errorf("bench: build side did not spill under %d-byte budget", ParallelJoinSpillBudget)
	}
	pred := exec.Bin{Kind: exec.OpLt, L: exec.ColRef{Idx: 1}, R: exec.Const{Val: int64(64)}}
	morsels, err := exec.SplitMorsels(files, dop*4)
	if err != nil {
		return nil, err
	}
	probes, err := exec.RunMorsels(morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		s, err := exec.NewMorselScan(m, nil, nil, nil)
		if err != nil {
			return nil, err
		}
		return &exec.Filter{In: s, Pred: pred}, nil
	})
	if err != nil {
		return nil, err
	}
	r, err := colfile.OpenReader(files[0].Data)
	if err != nil {
		return nil, err
	}
	joined, err := src.Spilled.JoinBatches(probes, []int{0}, r.Schema(), dop)
	if err != nil {
		return nil, err
	}
	outSchema := append(append(colfile.Schema{}, r.Schema()...), buildSide().Schema...)
	return exec.Collect(exec.NewBatchList(outSchema, joined))
}

// FmtKeyEncode is the pre-PR2 fmt-based key encoding ("%v\x00" separators,
// one boxed Value call and one Fprintf per column per row), kept as the
// measured baseline the typed encoding is compared against in BENCH_PR2.json.
// Returns a checksum so the compiler cannot elide the work.
func FmtKeyEncode(b *colfile.Batch, keys []int) int {
	total := 0
	for i := 0; i < b.NumRows(); i++ {
		var sb []byte
		for _, c := range keys {
			v := b.Cols[c]
			if v.IsNull(i) {
				continue
			}
			sb = fmt.Appendf(sb, "%v\x00", v.Value(i))
		}
		total += len(sb)
	}
	return total
}

// TypedKeyEncode encodes the same keys with the zero-box Vec.AppendKey path
// and a reused scratch buffer — the encoding the executor now uses for join
// probes and group keys.
func TypedKeyEncode(b *colfile.Batch, keys []int) int {
	total := 0
	var scratch []byte
	for i := 0; i < b.NumRows(); i++ {
		scratch = scratch[:0]
		for _, c := range keys {
			v := b.Cols[c]
			if v.IsNull(i) {
				continue
			}
			scratch = v.AppendKey(scratch, i)
		}
		total += len(scratch)
	}
	return total
}

// KeyEncodeBatch builds the mixed-type batch (int64 + string columns) both
// key-encoding benchmarks run over.
func KeyEncodeBatch(rows int) *colfile.Batch {
	schema := colfile.Schema{
		{Name: "k", Type: colfile.Int64},
		{Name: "s", Type: colfile.String},
	}
	b := colfile.NewBatch(schema)
	for i := 0; i < rows; i++ {
		b.Cols[0].AppendInt(int64(i % 4096))
		b.Cols[1].AppendStr(fmt.Sprintf("key-%d", i%512))
	}
	return b
}
