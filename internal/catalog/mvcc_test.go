package catalog

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestBasicCommitVisibility(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	must(t, tx.Put("k", "v1"))
	// own write visible
	v, err := tx.Get("k")
	if err != nil || v != "v1" {
		t.Fatalf("own write: %v %v", v, err)
	}
	// invisible to concurrent snapshot
	other := db.Begin(Snapshot)
	if _, err := other.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("uncommitted write visible: %v", err)
	}
	must(t, tx.Commit())
	// still invisible to the old snapshot
	if _, err := other.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("committed write visible to older snapshot")
	}
	// visible to new snapshot
	late := db.Begin(Snapshot)
	if v, err := late.Get("k"); err != nil || v != "v1" {
		t.Fatalf("new snapshot: %v %v", v, err)
	}
}

func TestSnapshotStability(t *testing.T) {
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("k", "old"))
	must(t, seed.Commit())

	reader := db.Begin(Snapshot)
	writer := db.Begin(Snapshot)
	must(t, writer.Put("k", "new"))
	must(t, writer.Commit())

	// non-repeatable read prevented: reader still sees old
	v, err := reader.Get("k")
	if err != nil || v != "old" {
		t.Fatalf("snapshot unstable: %v %v", v, err)
	}
}

func TestFirstCommitterWins(t *testing.T) {
	db := NewDB()
	t1 := db.Begin(Snapshot)
	t2 := db.Begin(Snapshot)
	must(t, t1.Put("k", 1))
	must(t, t2.Put("k", 2))
	must(t, t1.Commit())
	if err := t2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("second committer: %v, want ErrWriteConflict", err)
	}
	st := db.Stats()
	if st.WriteConflicts != 1 || st.Aborted != 1 || st.Committed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoConflictOnDisjointKeys(t *testing.T) {
	db := NewDB()
	t1 := db.Begin(Snapshot)
	t2 := db.Begin(Snapshot)
	must(t, t1.Put("a", 1))
	must(t, t2.Put("b", 2))
	must(t, t1.Commit())
	must(t, t2.Commit())
}

func TestDeleteSemantics(t *testing.T) {
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("k", "v"))
	must(t, seed.Commit())

	tx := db.Begin(Snapshot)
	must(t, tx.Delete("k"))
	if _, err := tx.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("own delete not visible")
	}
	must(t, tx.Commit())
	late := db.Begin(Snapshot)
	if _, err := late.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("delete not committed")
	}
}

func TestDeleteConflictsWithWrite(t *testing.T) {
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("k", "v"))
	must(t, seed.Commit())

	t1 := db.Begin(Snapshot)
	t2 := db.Begin(Snapshot)
	must(t, t1.Delete("k"))
	must(t, t2.Put("k", "v2"))
	must(t, t1.Commit())
	if err := t2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("delete/write conflict: %v", err)
	}
}

func TestScanWithOverlay(t *testing.T) {
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("p/a", 1))
	must(t, seed.Put("p/b", 2))
	must(t, seed.Put("q/c", 3))
	must(t, seed.Commit())

	tx := db.Begin(Snapshot)
	must(t, tx.Put("p/d", 4))
	must(t, tx.Delete("p/a"))
	kvs, err := tx.Scan("p/")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 || kvs[0].Key != "p/b" || kvs[1].Key != "p/d" {
		t.Fatalf("scan = %+v", kvs)
	}
}

func TestRollback(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	must(t, tx.Put("k", "v"))
	tx.Rollback()
	if err := tx.Put("k2", "v"); !errors.Is(err, ErrTxDone) {
		t.Fatalf("put after rollback: %v", err)
	}
	late := db.Begin(Snapshot)
	if _, err := late.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("rolled-back write visible")
	}
	if db.Stats().Aborted != 1 {
		t.Fatalf("stats = %+v", db.Stats())
	}
}

func TestTxDoneGuards(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	must(t, tx.Commit())
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatal("double commit allowed")
	}
	if _, err := tx.Get("k"); !errors.Is(err, ErrTxDone) {
		t.Fatal("get after commit allowed")
	}
	if _, err := tx.Scan(""); !errors.Is(err, ErrTxDone) {
		t.Fatal("scan after commit allowed")
	}
	tx.Rollback() // no-op after commit
}

func TestReadCommittedSnapshotSeesNewCommits(t *testing.T) {
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("k", "old"))
	must(t, seed.Commit())

	rcsi := db.Begin(ReadCommittedSnapshot)
	if v, _ := rcsi.Get("k"); v != "old" {
		t.Fatalf("rcsi first read = %v", v)
	}
	writer := db.Begin(Snapshot)
	must(t, writer.Put("k", "new"))
	must(t, writer.Commit())
	// RCSI sees the newer committed value; SI would not.
	if v, _ := rcsi.Get("k"); v != "new" {
		t.Fatalf("rcsi second read = %v", v)
	}
}

func TestSerializableDetectsReadWriteConflict(t *testing.T) {
	// The paper's non-serializable SI interleaving (4.4.2):
	// T1 reads A writes B; T2 reads B writes A. Under SI both commit (write
	// skew); under serializable one must abort.
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("A", 0))
	must(t, seed.Put("B", 0))
	must(t, seed.Commit())

	run := func(level IsolationLevel) (error, error) {
		t1 := db.Begin(level)
		t2 := db.Begin(level)
		_, _ = t1.Get("A")
		must(t, t1.Put("B", 1))
		_, _ = t2.Get("B")
		must(t, t2.Put("A", 1))
		return t1.Commit(), t2.Commit()
	}
	e1, e2 := run(Snapshot)
	if e1 != nil || e2 != nil {
		t.Fatalf("SI write skew should commit: %v %v", e1, e2)
	}
	e1, e2 = run(Serializable)
	if e1 == nil && e2 == nil {
		t.Fatal("serializable allowed write skew")
	}
}

func TestSerializablePhantomViaScan(t *testing.T) {
	db := NewDB()
	t1 := db.Begin(Serializable)
	if _, err := t1.Scan("acct/"); err != nil {
		t.Fatal(err)
	}
	t2 := db.Begin(Snapshot)
	must(t, t2.Put("acct/new", 100))
	must(t, t2.Commit())
	must(t, t1.Put("other", 1))
	if err := t1.Commit(); !errors.Is(err, ErrReadConflict) {
		t.Fatalf("phantom not detected: %v", err)
	}
}

func TestDeferWithSeq(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	var sawSeq int64
	tx.DeferWithSeq(func(seq int64) []KV {
		sawSeq = seq
		return []KV{{Key: fmt.Sprintf("m/%d", seq), Value: seq}}
	})
	must(t, tx.Commit())
	if sawSeq == 0 || tx.CommitSeq() != sawSeq {
		t.Fatalf("seq = %d, CommitSeq = %d", sawSeq, tx.CommitSeq())
	}
	late := db.Begin(Snapshot)
	if v, err := late.Get(fmt.Sprintf("m/%d", sawSeq)); err != nil || v != sawSeq {
		t.Fatalf("deferred write missing: %v %v", v, err)
	}
}

func TestCommitSeqMonotonicUnderConcurrency(t *testing.T) {
	db := NewDB()
	const n = 50
	var wg sync.WaitGroup
	seqs := make([]int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := db.Begin(Snapshot)
			_ = tx.Put(fmt.Sprintf("k%d", i), i)
			if err := tx.Commit(); err != nil {
				t.Errorf("commit %d: %v", i, err)
				return
			}
			seqs[i] = tx.CommitSeq()
		}(i)
	}
	wg.Wait()
	seen := make(map[int64]bool)
	for _, s := range seqs {
		if s == 0 || seen[s] {
			t.Fatalf("sequence %d duplicated or zero", s)
		}
		seen[s] = true
	}
	if db.CurrentSeq() != n {
		t.Fatalf("CurrentSeq = %d", db.CurrentSeq())
	}
}

func TestConcurrentWritersSingleWinner(t *testing.T) {
	db := NewDB()
	const n = 20
	// All transactions share the same snapshot, so first-committer-wins must
	// let exactly one through.
	txs := make([]*Tx, n)
	for i := range txs {
		txs[i] = db.Begin(Snapshot)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	committed := 0
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = txs[i].Put("contended", i)
			if err := txs[i].Commit(); err == nil {
				mu.Lock()
				committed++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if committed != 1 {
		t.Fatalf("committed = %d, want exactly 1 (first committer wins)", committed)
	}
}

func TestCompactVersions(t *testing.T) {
	db := NewDB()
	for i := 0; i < 5; i++ {
		tx := db.Begin(Snapshot)
		must(t, tx.Put("k", i))
		must(t, tx.Commit())
	}
	dropped := db.CompactVersions(db.CurrentTS())
	if dropped != 4 {
		t.Fatalf("dropped = %d", dropped)
	}
	tx := db.Begin(Snapshot)
	if v, _ := tx.Get("k"); v != 4 {
		t.Fatalf("latest lost: %v", v)
	}
	// deleted key fully collected
	del := db.Begin(Snapshot)
	must(t, del.Delete("k"))
	must(t, del.Commit())
	db.CompactVersions(db.CurrentTS())
	late := db.Begin(Snapshot)
	if _, err := late.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key resurrected")
	}
}

func TestPropertySINeverReadsUncommitted(t *testing.T) {
	// With writers racing, a snapshot reader must only ever observe values
	// that were committed at or before its snapshot.
	db := NewDB()
	seed := db.Begin(Snapshot)
	must(t, seed.Put("x", int64(0)))
	must(t, seed.Commit())

	f := func(writes uint8) bool {
		reader := db.Begin(Snapshot)
		before, err := reader.Get("x")
		if err != nil {
			return false
		}
		for i := 0; i < int(writes%5)+1; i++ {
			w := db.Begin(Snapshot)
			_ = w.Put("x", int64(i+1000))
			_ = w.Commit()
		}
		after, err := reader.Get("x")
		return err == nil && before == after // repeatable read
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
