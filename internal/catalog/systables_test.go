package catalog

import (
	"errors"
	"testing"

	"polaris/internal/colfile"
)

func testSchema() colfile.Schema {
	return colfile.Schema{{Name: "id", Type: colfile.Int64}, {Name: "v", Type: colfile.String}}
}

func TestCreateLookupTable(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	meta, err := CreateTable(tx, "t1", testSchema(), "id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if meta.ID != 1 || meta.Name != "t1" {
		t.Fatalf("meta = %+v", meta)
	}
	must(t, tx.Commit())

	tx2 := db.Begin(Snapshot)
	got, err := LookupTable(tx2, "t1")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 1 || !got.Schema.Equal(testSchema()) {
		t.Fatalf("lookup = %+v", got)
	}
	byID, err := GetTable(tx2, 1)
	if err != nil || byID.Name != "t1" {
		t.Fatalf("GetTable = %+v, %v", byID, err)
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	_, err := CreateTable(tx, "t", testSchema(), "id", "")
	must(t, err)
	if _, err := CreateTable(tx, "t", testSchema(), "id", ""); !errors.Is(err, ErrTableExists) {
		t.Fatalf("duplicate: %v", err)
	}
}

func TestTableIDsMonotonic(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	a, _ := CreateTable(tx, "a", testSchema(), "id", "")
	b, _ := CreateTable(tx, "b", testSchema(), "id", "")
	must(t, tx.Commit())
	if a.ID != 1 || b.ID != 2 {
		t.Fatalf("ids = %d, %d", a.ID, b.ID)
	}
	tx2 := db.Begin(Snapshot)
	c, _ := CreateTable(tx2, "c", testSchema(), "id", "")
	if c.ID != 3 {
		t.Fatalf("id after commit = %d", c.ID)
	}
}

func TestDropTable(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	_, _ = CreateTable(tx, "t", testSchema(), "id", "")
	must(t, tx.Commit())
	tx2 := db.Begin(Snapshot)
	must(t, DropTable(tx2, "t"))
	must(t, tx2.Commit())
	tx3 := db.Begin(Snapshot)
	if _, err := LookupTable(tx3, "t"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("lookup after drop: %v", err)
	}
	if err := DropTable(tx3, "ghost"); !errors.Is(err, ErrTableNotFound) {
		t.Fatalf("drop ghost: %v", err)
	}
}

func TestListTables(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	_, _ = CreateTable(tx, "zeta", testSchema(), "id", "")
	_, _ = CreateTable(tx, "alpha", testSchema(), "id", "")
	must(t, tx.Commit())
	tx2 := db.Begin(Snapshot)
	got, err := ListTables(tx2)
	must(t, err)
	if len(got) != 2 || got[0].Name != "alpha" || got[1].Name != "zeta" {
		t.Fatalf("list = %+v", got)
	}
}

func TestManifestInsertAtCommitAndScan(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	InsertManifestAtCommit(tx, 1, "x1.json", 100)
	must(t, tx.Commit())
	seq1 := tx.CommitSeq()

	tx2 := db.Begin(Snapshot)
	InsertManifestAtCommit(tx2, 1, "x2.json", 101)
	InsertManifestAtCommit(tx2, 2, "x2.json", 101) // multi-table txn: one row per table
	must(t, tx2.Commit())
	seq2 := tx2.CommitSeq()
	if seq2 != seq1+1 {
		t.Fatalf("seqs = %d, %d", seq1, seq2)
	}

	tx3 := db.Begin(Snapshot)
	rows, err := ScanManifests(tx3, 1, -1)
	must(t, err)
	if len(rows) != 2 || rows[0].ManifestFile != "x1.json" || rows[1].ManifestFile != "x2.json" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Seq != seq1 || rows[1].Seq != seq2 {
		t.Fatalf("seqs = %+v", rows)
	}
	// as-of filtering
	old, err := ScanManifests(tx3, 1, seq1)
	must(t, err)
	if len(old) != 1 {
		t.Fatalf("as-of rows = %+v", old)
	}
	// other table sees only its row
	t2rows, _ := ScanManifests(tx3, 2, -1)
	if len(t2rows) != 1 || t2rows[0].TableID != 2 {
		t.Fatalf("t2 rows = %+v", t2rows)
	}
}

func TestWriteSetTableConflict(t *testing.T) {
	// Two concurrent transactions updating the same table: the WriteSets
	// upsert makes the second committer fail (paper 4.1.2).
	db := NewDB()
	t1 := db.Begin(Snapshot)
	t2 := db.Begin(Snapshot)
	must(t, UpsertWriteSetTable(t1, 7))
	must(t, UpsertWriteSetTable(t2, 7))
	must(t, t1.Commit())
	if err := t2.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("conflict: %v", err)
	}
}

func TestWriteSetDifferentTablesNoConflict(t *testing.T) {
	db := NewDB()
	t1 := db.Begin(Snapshot)
	t2 := db.Begin(Snapshot)
	must(t, UpsertWriteSetTable(t1, 1))
	must(t, UpsertWriteSetTable(t2, 2))
	must(t, t1.Commit())
	must(t, t2.Commit())
}

func TestWriteSetFileGranularity(t *testing.T) {
	// Paper 4.4.1: same table, different data files -> no conflict;
	// same data file -> conflict.
	db := NewDB()
	t1 := db.Begin(Snapshot)
	t2 := db.Begin(Snapshot)
	must(t, UpsertWriteSetFile(t1, 7, "a.parquet"))
	must(t, UpsertWriteSetFile(t2, 7, "b.parquet"))
	must(t, t1.Commit())
	must(t, t2.Commit())

	t3 := db.Begin(Snapshot)
	t4 := db.Begin(Snapshot)
	must(t, UpsertWriteSetFile(t3, 7, "c.parquet"))
	must(t, UpsertWriteSetFile(t4, 7, "c.parquet"))
	must(t, t3.Commit())
	if err := t4.Commit(); !errors.Is(err, ErrWriteConflict) {
		t.Fatalf("file conflict: %v", err)
	}
}

func TestWriteSetUpdatedCounter(t *testing.T) {
	db := NewDB()
	for i := 0; i < 3; i++ {
		tx := db.Begin(Snapshot)
		must(t, UpsertWriteSetTable(tx, 5))
		must(t, tx.Commit())
	}
	tx := db.Begin(Snapshot)
	v, err := tx.Get(keyWriteSetTable(5))
	must(t, err)
	if v.(WriteSetRow).Updated != 3 {
		t.Fatalf("Updated = %d", v.(WriteSetRow).Updated)
	}
}

func TestCheckpointRows(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	must(t, InsertCheckpointRow(tx, CheckpointRow{TableID: 1, Seq: 5, Path: "cp5"}))
	must(t, InsertCheckpointRow(tx, CheckpointRow{TableID: 1, Seq: 9, Path: "cp9"}))
	must(t, InsertCheckpointRow(tx, CheckpointRow{TableID: 2, Seq: 7, Path: "other"}))
	must(t, tx.Commit())

	tx2 := db.Begin(Snapshot)
	cp, ok, err := LatestCheckpoint(tx2, 1, -1)
	must(t, err)
	if !ok || cp.Path != "cp9" {
		t.Fatalf("latest = %+v ok=%v", cp, ok)
	}
	cp, ok, _ = LatestCheckpoint(tx2, 1, 6)
	if !ok || cp.Path != "cp5" {
		t.Fatalf("as-of-6 = %+v ok=%v", cp, ok)
	}
	_, ok, _ = LatestCheckpoint(tx2, 1, 2)
	if ok {
		t.Fatal("checkpoint before any seq")
	}
	_, ok, _ = LatestCheckpoint(tx2, 99, -1)
	if ok {
		t.Fatal("checkpoint for unknown table")
	}
	all, _ := ListCheckpoints(tx2, 1)
	if len(all) != 2 || all[0].Seq != 5 {
		t.Fatalf("list = %+v", all)
	}
}

func TestManifestRowExplicitInsertForClone(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	// simulate clone: copy source rows under new table id
	must(t, InsertManifestRow(tx, ManifestRow{TableID: 10, ManifestFile: "m1", Seq: 3, TxnID: 1}))
	must(t, InsertManifestRow(tx, ManifestRow{TableID: 10, ManifestFile: "m2", Seq: 4, TxnID: 2}))
	must(t, tx.Commit())
	tx2 := db.Begin(Snapshot)
	rows, _ := ScanManifests(tx2, 10, -1)
	if len(rows) != 2 || rows[0].Seq != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	must(t, DeleteManifestRow(tx2, 10, 4))
	must(t, tx2.Commit())
	tx3 := db.Begin(Snapshot)
	rows, _ = ScanManifests(tx3, 10, -1)
	if len(rows) != 1 {
		t.Fatalf("after delete = %+v", rows)
	}
}

func TestPutTableMeta(t *testing.T) {
	db := NewDB()
	tx := db.Begin(Snapshot)
	meta, _ := CreateTable(tx, "t", testSchema(), "id", "")
	meta.RetentionSeqs = 5
	must(t, PutTableMeta(tx, meta))
	must(t, tx.Commit())
	tx2 := db.Begin(Snapshot)
	got, _ := LookupTable(tx2, "t")
	if got.RetentionSeqs != 5 {
		t.Fatalf("retention = %d", got.RetentionSeqs)
	}
}
