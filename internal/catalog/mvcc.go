// Package catalog implements the SQL-DB substitute that Polaris's SQL FE
// runs transactions against (paper Sections 3.1, 4.1). It is a multi-version
// key-value store with Snapshot Isolation: every user transaction's changes
// to the Manifests and WriteSets system tables run inside one catalog
// transaction, and the catalog's first-committer-wins write-write conflict
// detection is exactly the mechanism the paper's validation phase relies on.
//
// Three isolation modes mirror SQL Server's (paper 4.4.2): Snapshot (the
// default), ReadCommittedSnapshot (each read sees the latest committed
// version), and Serializable (read-set validation on commit).
package catalog

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by transaction operations.
var (
	// ErrWriteConflict is the SI first-committer-wins abort: another
	// transaction committed a version of a written key after this
	// transaction's snapshot was taken.
	ErrWriteConflict = errors.New("catalog: snapshot write-write conflict")
	// ErrReadConflict is the serializable-mode abort: a key (or key range)
	// this transaction read was changed by a concurrent committer.
	ErrReadConflict = errors.New("catalog: serializable read conflict")
	// ErrTxDone is returned when using a committed or aborted transaction.
	ErrTxDone = errors.New("catalog: transaction already finished")
	// ErrNotFound is returned by Get for missing keys.
	ErrNotFound = errors.New("catalog: key not found")
)

// IsWriteConflict reports whether err is an SI write-write conflict abort —
// the retryable failure mode of optimistic transactions.
func IsWriteConflict(err error) bool { return errors.Is(err, ErrWriteConflict) }

// IsolationLevel selects the transaction's isolation mode.
type IsolationLevel int

// Isolation levels.
const (
	Snapshot IsolationLevel = iota
	ReadCommittedSnapshot
	Serializable
)

func (l IsolationLevel) String() string {
	switch l {
	case Snapshot:
		return "snapshot"
	case ReadCommittedSnapshot:
		return "read-committed-snapshot"
	case Serializable:
		return "serializable"
	default:
		return fmt.Sprintf("isolation(%d)", int(l))
	}
}

type version struct {
	commitTS int64
	value    any
	deleted  bool
}

type record struct {
	versions []version // ascending commitTS
}

func (r *record) visible(ts int64) (any, bool) {
	for i := len(r.versions) - 1; i >= 0; i-- {
		v := r.versions[i]
		if v.commitTS <= ts {
			if v.deleted {
				return nil, false
			}
			return v.value, true
		}
	}
	return nil, false
}

func (r *record) latestTS() int64 {
	if len(r.versions) == 0 {
		return 0
	}
	return r.versions[len(r.versions)-1].commitTS
}

// DB is the multi-version catalog store. The zero value is not usable; call
// NewDB.
type DB struct {
	mu      sync.RWMutex
	records map[string]*record
	ts      int64 // last assigned commit timestamp

	// commitMu is the paper's "commit lock ... to ensure a serializable
	// order for the transaction to be committed" (4.1.2 step 2). It also
	// serializes sequence-number allocation with commit ordering.
	commitMu sync.Mutex
	seq      int64 // last assigned logical commit sequence (Manifests.SequenceID)

	stats Stats
}

// Stats counts catalog activity.
type Stats struct {
	Begun, Committed, Aborted int64
	WriteConflicts            int64
	ReadConflicts             int64
}

// NewDB creates an empty catalog database.
func NewDB() *DB {
	return &DB{records: make(map[string]*record)}
}

// Begin starts a transaction at the current snapshot.
func (db *DB) Begin(level IsolationLevel) *Tx {
	db.mu.Lock()
	start := db.ts
	db.stats.Begun++
	db.mu.Unlock()
	return &Tx{
		db:      db,
		level:   level,
		startTS: start,
		writes:  make(map[string]writeOp),
		reads:   make(map[string]struct{}),
	}
}

// CurrentTS returns the latest commit timestamp (the current snapshot edge).
func (db *DB) CurrentTS() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ts
}

// CurrentSeq returns the last allocated logical commit sequence.
func (db *DB) CurrentSeq() int64 {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	return db.seq
}

// Stats returns a copy of cumulative statistics.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

type writeOp struct {
	value   any
	deleted bool
}

// Tx is a catalog transaction. It is not safe for concurrent use by multiple
// goroutines; Polaris runs the root transaction single-threaded in the FE.
type Tx struct {
	db      *DB
	level   IsolationLevel
	startTS int64
	writes  map[string]writeOp
	reads   map[string]struct{} // serializable read-set
	scans   []string            // serializable scanned prefixes
	// deferred writes are materialized under the commit lock once the commit
	// sequence is known — the paper's "insert transaction manifest into the
	// Manifests table" happens here (4.1.2 step 3), because the Manifests row
	// is keyed by the sequence assigned at commit.
	deferred []func(seq int64) []KV
	done     bool

	// commitSeq is populated on successful commit: the logical sequence
	// assigned under the commit lock.
	commitSeq int64
}

func (tx *Tx) readTS() int64 {
	if tx.level == ReadCommittedSnapshot {
		return tx.db.CurrentTS() // each read sees latest committed
	}
	return tx.startTS
}

// StartTS returns the transaction's snapshot timestamp.
func (tx *Tx) StartTS() int64 { return tx.startTS }

// CommitSeq returns the sequence assigned at commit (0 before commit).
func (tx *Tx) CommitSeq() int64 { return tx.commitSeq }

// Get returns the value of key visible to this transaction, honoring its own
// uncommitted writes first.
func (tx *Tx) Get(key string) (any, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	if w, ok := tx.writes[key]; ok {
		if w.deleted {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
		}
		return w.value, nil
	}
	tx.reads[key] = struct{}{}
	tx.db.mu.RLock()
	defer tx.db.mu.RUnlock()
	r, ok := tx.db.records[key]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	v, ok := r.visible(tx.readTS())
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return v, nil
}

// Exists reports whether key is visible to this transaction.
func (tx *Tx) Exists(key string) bool {
	_, err := tx.Get(key)
	return err == nil
}

// Put buffers a write. Values must be treated as immutable once passed in.
func (tx *Tx) Put(key string, value any) error {
	if tx.done {
		return ErrTxDone
	}
	tx.writes[key] = writeOp{value: value}
	return nil
}

// Delete buffers a deletion.
func (tx *Tx) Delete(key string) error {
	if tx.done {
		return ErrTxDone
	}
	tx.writes[key] = writeOp{deleted: true}
	return nil
}

// KV is one key-value pair returned by Scan.
type KV struct {
	Key   string
	Value any
}

// Scan returns all visible pairs with the given prefix, sorted by key,
// overlaid with the transaction's own writes.
func (tx *Tx) Scan(prefix string) ([]KV, error) {
	if tx.done {
		return nil, ErrTxDone
	}
	tx.scans = append(tx.scans, prefix)
	readTS := tx.readTS()
	merged := make(map[string]any)
	tx.db.mu.RLock()
	for key, r := range tx.db.records {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if v, ok := r.visible(readTS); ok {
			merged[key] = v
		}
	}
	tx.db.mu.RUnlock()
	for key, w := range tx.writes {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if w.deleted {
			delete(merged, key)
		} else {
			merged[key] = w.value
		}
	}
	out := make([]KV, 0, len(merged))
	for k, v := range merged {
		out = append(out, KV{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// DeferWithSeq registers a function producing writes that are installed
// atomically with the commit, after the commit sequence is assigned. The
// produced keys must be fresh (commonly keyed by the sequence itself), as
// they bypass conflict validation.
func (tx *Tx) DeferWithSeq(f func(seq int64) []KV) {
	tx.deferred = append(tx.deferred, f)
}

// Commit runs the validation phase and installs the transaction's writes.
// On success the transaction's CommitSeq is set; the commit timestamp order
// equals the sequence order because both are assigned under the commit lock.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	db := tx.db
	if len(tx.writes) == 0 && len(tx.deferred) == 0 && tx.level != Serializable {
		db.mu.Lock()
		db.stats.Committed++
		db.mu.Unlock()
		return nil
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.mu.Lock()
	defer db.mu.Unlock()

	// First-committer-wins: any committed version of a written key newer
	// than our snapshot aborts the transaction (paper 4.1.2 step 4).
	for key := range tx.writes {
		if r, ok := db.records[key]; ok && r.latestTS() > tx.startTS {
			db.stats.WriteConflicts++
			db.stats.Aborted++
			return fmt.Errorf("%w: key %s", ErrWriteConflict, key)
		}
	}
	if tx.level == Serializable {
		for key := range tx.reads {
			if r, ok := db.records[key]; ok && r.latestTS() > tx.startTS {
				db.stats.ReadConflicts++
				db.stats.Aborted++
				return fmt.Errorf("%w: key %s", ErrReadConflict, key)
			}
		}
		for _, prefix := range tx.scans {
			for key, r := range db.records {
				if strings.HasPrefix(key, prefix) && r.latestTS() > tx.startTS {
					db.stats.ReadConflicts++
					db.stats.Aborted++
					return fmt.Errorf("%w: range %s*", ErrReadConflict, prefix)
				}
			}
		}
	}

	db.ts++
	commitTS := db.ts
	db.seq++
	tx.commitSeq = db.seq
	for key, w := range tx.writes {
		r, ok := db.records[key]
		if !ok {
			r = &record{}
			db.records[key] = r
		}
		r.versions = append(r.versions, version{commitTS: commitTS, value: w.value, deleted: w.deleted})
	}
	for _, f := range tx.deferred {
		for _, kv := range f(tx.commitSeq) {
			r, ok := db.records[kv.Key]
			if !ok {
				r = &record{}
				db.records[kv.Key] = r
			}
			r.versions = append(r.versions, version{commitTS: commitTS, value: kv.Value})
		}
	}
	db.stats.Committed++
	return nil
}

// Rollback abandons the transaction. Safe to call after Commit (no-op).
func (tx *Tx) Rollback() {
	if tx.done {
		return
	}
	tx.done = true
	tx.db.mu.Lock()
	tx.db.stats.Aborted++
	tx.db.mu.Unlock()
}

// CompactVersions drops versions that are no longer visible to any snapshot
// at or after minTS, keeping at least the newest version per key. Mirrors
// SQL Server's version-store cleanup.
func (db *DB) CompactVersions(minTS int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	for key, r := range db.records {
		// find newest version with commitTS <= minTS; older ones are dead
		cut := -1
		for i := len(r.versions) - 1; i >= 0; i-- {
			if r.versions[i].commitTS <= minTS {
				cut = i
				break
			}
		}
		if cut > 0 {
			dropped += cut
			r.versions = append([]version(nil), r.versions[cut:]...)
		}
		if len(r.versions) == 1 && r.versions[0].deleted && r.versions[0].commitTS <= minTS {
			delete(db.records, key)
		}
	}
	return dropped
}
