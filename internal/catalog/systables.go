package catalog

import (
	"errors"
	"fmt"
	"sort"

	"polaris/internal/colfile"
)

// This file implements the typed system tables from paper Figure 4 — the
// Manifests and WriteSets tables that Polaris adds to the SQL DB catalog —
// plus the Checkpoints table (Section 5.2) and the logical metadata for
// database objects (tables and their schemas).

// Key layout (all rows live in the MVCC store, so every access is SI):
//
//	meta/name/<name>                -> int64 table id
//	meta/id/<id>                    -> TableMeta
//	manifests/<id>/<seq>            -> ManifestRow
//	writesets/t/<id>                -> WriteSetRow   (table granularity)
//	writesets/f/<id>/<datafile>     -> WriteSetRow   (file granularity, 4.4.1)
//	checkpoints/<id>/<seq>          -> CheckpointRow
//	counters/tableid                -> int64 next table id

// ManifestRow is one row of the Manifests table: a committed transaction's
// manifest file for one table (Figure 4).
type ManifestRow struct {
	TableID      int64
	ManifestFile string
	Seq          int64 // logical commit sequence
	TxnID        int64 // durable transaction identifier (GC of aborted txns)
}

// WriteSetRow is one row of the WriteSets table, used to detect write-write
// conflicts (Figure 4). Updated is a counter bumped by every upsert.
type WriteSetRow struct {
	TableID  int64
	Updated  int64
	DataFile string // empty at table granularity
}

// CheckpointRow tracks a manifest checkpoint file for a table (Section 5.2).
type CheckpointRow struct {
	TableID int64
	Seq     int64
	Path    string
}

// TableMeta is the logical metadata for a table object.
type TableMeta struct {
	ID     int64
	Name   string
	Schema colfile.Schema
	// DistributionCol is the column hashed by d(r) to assign rows to cells.
	DistributionCol string
	// SortCol is the clustering column p(r), the Z-order stand-in.
	SortCol string
	// CreatedSeq is the commit sequence at which the table was created —
	// clones use it to bound time travel.
	CreatedSeq int64
	// ClonedFrom is the source table id for zero-copy clones, 0 otherwise.
	ClonedFrom int64
	// RetentionSeqs is how many sequences back versioned reads are kept
	// before GC may drop removed files.
	RetentionSeqs int64
}

// ErrTableExists is returned when creating a table whose name is taken.
var ErrTableExists = errors.New("catalog: table already exists")

// ErrTableNotFound is returned when a table name or id does not resolve.
var ErrTableNotFound = errors.New("catalog: table not found")

func keyName(name string) string        { return "meta/name/" + name }
func keyID(id int64) string             { return fmt.Sprintf("meta/id/%016d", id) }
func keyManifest(id, seq int64) string  { return fmt.Sprintf("manifests/%016d/%016d", id, seq) }
func keyManifestPrefix(id int64) string { return fmt.Sprintf("manifests/%016d/", id) }
func keyWriteSetTable(id int64) string  { return fmt.Sprintf("writesets/t/%016d", id) }
func keyWriteSetFile(id int64, f string) string {
	return fmt.Sprintf("writesets/f/%016d/%s", id, f)
}
func keyCheckpoint(id, seq int64) string  { return fmt.Sprintf("checkpoints/%016d/%016d", id, seq) }
func keyCheckpointPrefix(id int64) string { return fmt.Sprintf("checkpoints/%016d/", id) }

const keyTableIDCounter = "counters/tableid"

// CreateTable registers a new table object and returns its metadata.
func CreateTable(tx *Tx, name string, schema colfile.Schema, distCol, sortCol string) (TableMeta, error) {
	if tx.Exists(keyName(name)) {
		return TableMeta{}, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	var next int64 = 1
	if v, err := tx.Get(keyTableIDCounter); err == nil {
		next = v.(int64) + 1
	}
	if err := tx.Put(keyTableIDCounter, next); err != nil {
		return TableMeta{}, err
	}
	meta := TableMeta{
		ID: next, Name: name, Schema: schema,
		DistributionCol: distCol, SortCol: sortCol,
		RetentionSeqs: 1 << 30, // effectively infinite until configured
	}
	if err := tx.Put(keyName(name), next); err != nil {
		return TableMeta{}, err
	}
	if err := tx.Put(keyID(next), meta); err != nil {
		return TableMeta{}, err
	}
	return meta, nil
}

// LookupTable resolves a table by name.
func LookupTable(tx *Tx, name string) (TableMeta, error) {
	v, err := tx.Get(keyName(name))
	if err != nil {
		return TableMeta{}, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return GetTable(tx, v.(int64))
}

// GetTable resolves a table by id.
func GetTable(tx *Tx, id int64) (TableMeta, error) {
	v, err := tx.Get(keyID(id))
	if err != nil {
		return TableMeta{}, fmt.Errorf("%w: id %d", ErrTableNotFound, id)
	}
	return v.(TableMeta), nil
}

// PutTableMeta overwrites a table's metadata (used by ALTER-style changes).
func PutTableMeta(tx *Tx, meta TableMeta) error {
	return tx.Put(keyID(meta.ID), meta)
}

// DropTable removes a table's logical metadata. Physical files are left for
// garbage collection.
func DropTable(tx *Tx, name string) error {
	v, err := tx.Get(keyName(name))
	if err != nil {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	id := v.(int64)
	if err := tx.Delete(keyName(name)); err != nil {
		return err
	}
	return tx.Delete(keyID(id))
}

// ListTables returns all table metadata visible to the transaction, by name.
func ListTables(tx *Tx) ([]TableMeta, error) {
	kvs, err := tx.Scan("meta/id/")
	if err != nil {
		return nil, err
	}
	out := make([]TableMeta, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, kv.Value.(TableMeta))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// InsertManifestAtCommit defers insertion of a Manifests row until the commit
// sequence is assigned under the commit lock — paper 4.1.2 step 3. The row's
// Seq field and key both use the final sequence.
func InsertManifestAtCommit(tx *Tx, tableID int64, manifestFile string, txnID int64) {
	tx.DeferWithSeq(func(seq int64) []KV {
		return []KV{{
			Key: keyManifest(tableID, seq),
			Value: ManifestRow{
				TableID: tableID, ManifestFile: manifestFile, Seq: seq, TxnID: txnID,
			},
		}}
	})
}

// InsertManifestRow inserts a Manifests row at an explicit sequence. Cloning
// uses this to re-associate a source table's lineage with the clone
// (Section 6.2).
func InsertManifestRow(tx *Tx, row ManifestRow) error {
	return tx.Put(keyManifest(row.TableID, row.Seq), row)
}

// ScanManifests returns all Manifests rows for a table visible to the
// transaction, ordered by sequence. A non-negative asOfSeq filters to rows
// with Seq <= asOfSeq (Query As Of, Section 6.1).
func ScanManifests(tx *Tx, tableID int64, asOfSeq int64) ([]ManifestRow, error) {
	kvs, err := tx.Scan(keyManifestPrefix(tableID))
	if err != nil {
		return nil, err
	}
	out := make([]ManifestRow, 0, len(kvs))
	for _, kv := range kvs {
		row := kv.Value.(ManifestRow)
		if asOfSeq >= 0 && row.Seq > asOfSeq {
			continue
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// DeleteManifestRow removes a Manifests row (restore-driven truncation).
func DeleteManifestRow(tx *Tx, tableID, seq int64) error {
	return tx.Delete(keyManifest(tableID, seq))
}

// UpsertWriteSetTable records that the transaction updated or deleted rows of
// the table (4.1.2 step 1, table granularity). The write to this key is what
// triggers SI write-write conflict detection between concurrent updaters.
func UpsertWriteSetTable(tx *Tx, tableID int64) error {
	row := WriteSetRow{TableID: tableID}
	if v, err := tx.Get(keyWriteSetTable(tableID)); err == nil {
		row = v.(WriteSetRow)
	}
	row.Updated++
	return tx.Put(keyWriteSetTable(tableID), row)
}

// UpsertWriteSetFile records a modification of one data file's deletion state
// (4.4.1, file granularity): two transactions conflict only when they touch
// the same data file.
func UpsertWriteSetFile(tx *Tx, tableID int64, dataFile string) error {
	key := keyWriteSetFile(tableID, dataFile)
	row := WriteSetRow{TableID: tableID, DataFile: dataFile}
	if v, err := tx.Get(key); err == nil {
		row = v.(WriteSetRow)
	}
	row.Updated++
	return tx.Put(key, row)
}

// InsertCheckpointRow records a checkpoint file for a table.
func InsertCheckpointRow(tx *Tx, row CheckpointRow) error {
	return tx.Put(keyCheckpoint(row.TableID, row.Seq), row)
}

// LatestCheckpoint returns the newest checkpoint row with Seq <= asOfSeq
// (any when asOfSeq < 0), or ok=false when none qualifies.
func LatestCheckpoint(tx *Tx, tableID, asOfSeq int64) (CheckpointRow, bool, error) {
	kvs, err := tx.Scan(keyCheckpointPrefix(tableID))
	if err != nil {
		return CheckpointRow{}, false, err
	}
	var best CheckpointRow
	found := false
	for _, kv := range kvs {
		row := kv.Value.(CheckpointRow)
		if asOfSeq >= 0 && row.Seq > asOfSeq {
			continue
		}
		if !found || row.Seq > best.Seq {
			best, found = row, true
		}
	}
	return best, found, nil
}

// ListCheckpoints returns all checkpoint rows for a table ordered by Seq.
func ListCheckpoints(tx *Tx, tableID int64) ([]CheckpointRow, error) {
	kvs, err := tx.Scan(keyCheckpointPrefix(tableID))
	if err != nil {
		return nil, err
	}
	out := make([]CheckpointRow, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, kv.Value.(CheckpointRow))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}
