// Package sql implements the T-SQL subset Polaris's SQL FE compiles
// (paper 3.3): DDL, DML, queries with joins and aggregation, explicit
// transaction control, and the lineage extensions (AS OF time travel, CLONE,
// RESTORE). Compilation is consolidated in the FE — there is no BE-side
// compilation stage — matching the paper's single-phase query optimization.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

type token struct {
	kind tokKind
	text string // keywords uppercased; idents as written; symbols literal
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"OFFSET": true, "AS": true, "OF": true, "JOIN": true, "INNER": true,
	"LEFT": true, "OUTER": true, "ON": true, "AND": true, "OR": true,
	"NOT": true, "NULL": true, "IS": true, "IN": true, "LIKE": true,
	"BETWEEN": true, "INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true, "CREATE": true,
	"TABLE": true, "DROP": true, "BEGIN": true, "COMMIT": true,
	"ROLLBACK": true, "TRANSACTION": true, "INT": true, "BIGINT": true,
	"FLOAT": true, "VARCHAR": true, "TEXT": true, "BOOL": true,
	"BOOLEAN": true, "TRUE": true, "FALSE": true, "WITH": true,
	"DISTRIBUTION": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "CLONE": true, "TO": true, "RESTORE": true,
	"SHOW": true, "TABLES": true, "STATS": true, "EXISTS": true, "IF": true,
	"COMPACT": true, "CHECKPOINT": true, "VACUUM": true, "DOUBLE": true,
	"EXPLAIN": true,
}

// lex tokenizes the input; errors carry byte positions.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-': // comment to EOL
			for i < n && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < n && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenDot := false
			for j < n && (unicode.IsDigit(rune(src[j])) || (src[j] == '.' && !seenDot)) {
				if src[j] == '.' {
					seenDot = true
				}
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for {
				if j >= n {
					return nil, fmt.Errorf("sql: unterminated string at %d", i)
				}
				if src[j] == '\'' {
					if j+1 < n && src[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		default:
			// multi-char symbols first
			for _, sym := range []string{"<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", "%", ".", ";"} {
				if strings.HasPrefix(src[i:], sym) {
					toks = append(toks, token{tokSymbol, sym, i})
					i += len(sym)
					goto next
				}
			}
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, i)
		next:
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
