package sql

import (
	"fmt"
	"strconv"
	"strings"

	"polaris/internal/colfile"
)

// Parse parses one SQL statement. Trailing semicolons are allowed.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return st, nil
}

// ParseScript parses a semicolon-separated list of statements.
func ParseScript(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for !p.at(tokEOF, "") {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(tokSymbol, ";") {
			break
		}
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("sql: trailing input at %q", p.cur().text)
	}
	return out, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return t, fmt.Errorf("sql: expected %s, got %q at %d", want, t.text, t.pos)
	}
	p.i++
	return t, nil
}

func (p *parser) kw(word string) bool { return p.accept(tokKeyword, word) }

func (p *parser) statement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.selectStmt()
	case p.at(tokKeyword, "INSERT"):
		return p.insertStmt()
	case p.at(tokKeyword, "UPDATE"):
		return p.updateStmt()
	case p.at(tokKeyword, "DELETE"):
		return p.deleteStmt()
	case p.at(tokKeyword, "CREATE"):
		return p.createStmt()
	case p.at(tokKeyword, "DROP"):
		return p.dropStmt()
	case p.kw("BEGIN"):
		p.kw("TRANSACTION")
		return BeginStmt{}, nil
	case p.kw("COMMIT"):
		p.kw("TRANSACTION")
		return CommitStmt{}, nil
	case p.kw("ROLLBACK"):
		p.kw("TRANSACTION")
		return RollbackStmt{}, nil
	case p.at(tokKeyword, "CLONE"):
		return p.cloneStmt()
	case p.at(tokKeyword, "RESTORE"):
		return p.restoreStmt()
	case p.at(tokKeyword, "SHOW"):
		return p.showStmt()
	case p.kw("EXPLAIN"):
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel.(*SelectStmt)}, nil
	case p.kw("COMPACT"):
		p.kw("TABLE")
		name, err := p.ident()
		return MaintenanceStmt{What: "compact", Table: name}, err
	case p.kw("CHECKPOINT"):
		p.kw("TABLE")
		name, err := p.ident()
		return MaintenanceStmt{What: "checkpoint", Table: name}, err
	case p.kw("VACUUM"):
		return MaintenanceStmt{What: "vacuum"}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %q at %d", p.cur().text, p.cur().pos)
	}
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind == tokIdent {
		p.i++
		return t.text, nil
	}
	return "", fmt.Errorf("sql: expected identifier, got %q at %d", t.text, t.pos)
}

func (p *parser) selectStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1, From: TableRef{AsOfSeq: -1}}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		st.Items = append(st.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.tableRef()
	if err != nil {
		return nil, err
	}
	st.From = from
	for {
		left := false
		save := p.i
		if p.kw("LEFT") {
			p.kw("OUTER")
			left = true
		} else if p.kw("INNER") {
			// inner join
		}
		if !p.kw("JOIN") {
			p.i = save
			break
		}
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, JoinClause{Table: ref, Left: left, On: on})
	}
	if p.kw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.kw("GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.kw("HAVING") {
		if st.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.kw("ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.kw("DESC") {
				item.Desc = true
			} else {
				p.kw("ASC")
			}
			st.OrderBy = append(st.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.kw("LIMIT") {
		n, err := p.intLit()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.kw("OFFSET") {
			if st.Offset, err = p.intLit(); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.kw("AS") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.at(tokIdent, "") {
		item.Alias = p.cur().text
		p.i++
	}
	return item, nil
}

func (p *parser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name, AsOfSeq: -1}
	// AS OF <n> | AS alias | bare alias
	if p.at(tokKeyword, "AS") && p.peek().kind == tokKeyword && p.peek().text == "OF" {
		p.i += 2
		n, err := p.intLit()
		if err != nil {
			return TableRef{}, err
		}
		ref.AsOfSeq = n
	} else if p.kw("AS") {
		if ref.Alias, err = p.ident(); err != nil {
			return TableRef{}, err
		}
	} else if p.at(tokIdent, "") {
		ref.Alias = p.cur().text
		p.i++
	}
	return ref, nil
}

func (p *parser) intLit() (int64, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("sql: expected number, got %q at %d", t.text, t.pos)
	}
	p.i++
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad integer %q: %w", t.text, err)
	}
	return n, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "INSERT"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.accept(tokSymbol, "(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if p.kw("VALUES") {
		for {
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			st.Rows = append(st.Rows, row)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		return st, nil
	}
	if p.at(tokKeyword, "SELECT") {
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		st.Query = q.(*SelectStmt)
		return st, nil
	}
	return nil, fmt.Errorf("sql: INSERT needs VALUES or SELECT at %d", p.cur().pos)
}

func (p *parser) updateStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name, Set: map[string]Expr{}}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set[col] = e
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.kw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "DELETE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.kw("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) createStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "CREATE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.at(tokKeyword, "IF") {
		p.i++
		if !p.kw("NOT") || !p.kw("EXISTS") {
			return nil, fmt.Errorf("sql: expected IF NOT EXISTS at %d", p.cur().pos)
		}
		st.IfNotExists = true
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		var dt colfile.DataType
		switch t.text {
		case "INT", "BIGINT":
			dt = colfile.Int64
		case "FLOAT", "DOUBLE":
			dt = colfile.Float64
		case "VARCHAR", "TEXT":
			dt = colfile.String
		case "BOOL", "BOOLEAN":
			dt = colfile.Bool
		default:
			return nil, fmt.Errorf("sql: unknown type %q at %d", t.text, t.pos)
		}
		p.i++
		// optional (n) length
		if p.accept(tokSymbol, "(") {
			if _, err := p.intLit(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
		}
		st.Schema = append(st.Schema, colfile.Field{Name: col, Type: dt})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if p.kw("WITH") {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		for {
			key := strings.ToUpper(p.cur().text)
			p.i++
			if _, err := p.expect(tokSymbol, "="); err != nil {
				return nil, err
			}
			val, err := p.ident()
			if err != nil {
				return nil, err
			}
			switch key {
			case "DISTRIBUTION":
				st.DistCol = val
			case "ORDER", "SORT", "SORTCOL":
				st.SortCol = val
			default:
				return nil, fmt.Errorf("sql: unknown table option %q", key)
			}
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) dropStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "DROP"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	return DropTableStmt{Name: name}, nil
}

func (p *parser) cloneStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "CLONE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	src, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TO"); err != nil {
		return nil, err
	}
	dst, err := p.ident()
	if err != nil {
		return nil, err
	}
	st := CloneStmt{Source: src, Dest: dst, AsOfSeq: -1}
	if p.kw("AS") {
		if _, err := p.expect(tokKeyword, "OF"); err != nil {
			return nil, err
		}
		if st.AsOfSeq, err = p.intLit(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) restoreStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "RESTORE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "OF"); err != nil {
		return nil, err
	}
	seq, err := p.intLit()
	if err != nil {
		return nil, err
	}
	return RestoreStmt{Table: name, AsOfSeq: seq}, nil
}

func (p *parser) showStmt() (Statement, error) {
	if _, err := p.expect(tokKeyword, "SHOW"); err != nil {
		return nil, err
	}
	if p.kw("TABLES") {
		return ShowStmt{What: "tables"}, nil
	}
	if p.kw("STATS") {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return ShowStmt{What: "stats", Table: name}, nil
	}
	return nil, fmt.Errorf("sql: SHOW TABLES or SHOW STATS <table> at %d", p.cur().pos)
}

// Expression parsing: precedence climbing.
// OR < AND < NOT < comparison/IS/IN/LIKE/BETWEEN < add < mul < unary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.kw("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.kw("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.kw("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return NotExpr{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokSymbol, "=") || p.at(tokSymbol, "<") || p.at(tokSymbol, ">") ||
			p.at(tokSymbol, "<=") || p.at(tokSymbol, ">=") || p.at(tokSymbol, "<>") || p.at(tokSymbol, "!="):
			op := p.cur().text
			p.i++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = BinExpr{Op: op, L: l, R: r}
		case p.at(tokKeyword, "IS"):
			p.i++
			neg := p.kw("NOT")
			if !p.kw("NULL") {
				return nil, fmt.Errorf("sql: expected NULL after IS at %d", p.cur().pos)
			}
			l = IsNullExpr{E: l, Negate: neg}
		case p.at(tokKeyword, "LIKE"):
			p.i++
			t, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			l = LikeExpr{E: l, Pattern: t.text}
		case p.at(tokKeyword, "NOT") && p.peek().text == "LIKE":
			p.i += 2
			t, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			l = LikeExpr{E: l, Pattern: t.text, Negate: true}
		case p.at(tokKeyword, "NOT") && p.peek().text == "IN":
			p.i += 2
			vals, err := p.literalList()
			if err != nil {
				return nil, err
			}
			l = InExpr{E: l, Vals: vals, Negate: true}
		case p.at(tokKeyword, "IN"):
			p.i++
			vals, err := p.literalList()
			if err != nil {
				return nil, err
			}
			l = InExpr{E: l, Vals: vals}
		case p.at(tokKeyword, "BETWEEN"):
			p.i++
			lo, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			if !p.kw("AND") {
				return nil, fmt.Errorf("sql: expected AND in BETWEEN at %d", p.cur().pos)
			}
			hi, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = BetweenExpr{E: l, Lo: lo, Hi: hi}
		default:
			return l, nil
		}
	}
}

func (p *parser) literalList() ([]any, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var vals []any
	for {
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		lit, ok := e.(Lit)
		if !ok {
			return nil, fmt.Errorf("sql: IN list supports literals only")
		}
		vals = append(vals, lit.Val)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return vals, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "+") || p.at(tokSymbol, "-") {
		op := p.cur().text
		p.i++
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokSymbol, "*") || p.at(tokSymbol, "/") || p.at(tokSymbol, "%") {
		op := p.cur().text
		p.i++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept(tokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(Lit); ok {
			switch v := lit.Val.(type) {
			case int64:
				return Lit{Val: -v}, nil
			case float64:
				return Lit{Val: -v}, nil
			}
		}
		return BinExpr{Op: "-", L: Lit{Val: int64(0)}, R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.i++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return Lit{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Lit{Val: n}, nil
	case t.kind == tokString:
		p.i++
		return Lit{Val: t.text}, nil
	case p.kw("TRUE"):
		return Lit{Val: true}, nil
	case p.kw("FALSE"):
		return Lit{Val: false}, nil
	case p.kw("NULL"):
		return Lit{Val: nil}, nil
	case t.kind == tokKeyword && isAggName(t.text):
		p.i++
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		fe := FuncExpr{Name: t.text}
		if p.accept(tokSymbol, "*") {
			fe.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fe.Arg = arg
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fe, nil
	case t.kind == tokIdent:
		p.i++
		if p.at(tokSymbol, ".") && p.peek().kind == tokIdent {
			p.i++
			col := p.cur().text
			p.i++
			return ColName{Table: t.text, Name: col}, nil
		}
		return ColName{Name: t.text}, nil
	case p.accept(tokSymbol, "("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %q at %d", t.text, t.pos)
	}
}

func isAggName(s string) bool {
	switch s {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
