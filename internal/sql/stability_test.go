package sql

import (
	"strings"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
)

// seedStability builds a fresh engine with the shared items seed plus an
// orders table, so every session in the stability tests plans over identical
// catalog and statistics state.
func seedStability(t *testing.T) *Session {
	t.Helper()
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE orders (oid INT, item_id INT, qty INT) WITH (DISTRIBUTION = oid)`)
	mustExec(t, s, `INSERT INTO orders VALUES (100, 1, 3), (101, 2, 1), (102, 1, 2), (103, 99, 5)`)
	return s
}

// TestExplainStableAcrossRuns pins EXPLAIN as a regression surface: the
// rendered plan must be byte-identical on every re-plan of the same
// statement — within one session (same catalog maps, new planning pass) and
// across freshly built engines (different map allocation, different
// iteration seed). Any map-order leak in planning shows up here as a
// flickering plan line. This is a determinism regression test, not a fuzz
// target: the queries are fixed and the assertion is byte equality.
func TestExplainStableAcrossRuns(t *testing.T) {
	queries := []string{
		// Join + pushdown + bloom + sort + limit: exercises most plan
		// renderers at once.
		`SELECT o.oid, i.name FROM orders o JOIN items i ON o.item_id = i.id WHERE o.qty > 1 AND i.price < 5.0 ORDER BY o.oid LIMIT 2`,
		// Bounds on several INT columns of one table: the rendered pushed
		// conjuncts must not reorder run to run; the zone-map prune hint the
		// same WHERE produces is pinned by TestPrunableRangeDeterministic.
		`SELECT oid FROM orders WHERE oid >= 100 AND item_id >= 1 AND qty >= 2`,
		`SELECT name, SUM(price) FROM items WHERE active = TRUE GROUP BY name ORDER BY name`,
	}
	base := seedStability(t)
	for _, q := range queries {
		want := strings.Join(explainLines(t, base, q), "\n")
		for run := 0; run < 10; run++ {
			if got := strings.Join(explainLines(t, base, q), "\n"); got != want {
				t.Fatalf("EXPLAIN drifted within one session on run %d\nquery: %s\nfirst:\n%s\nnow:\n%s", run, q, want, got)
			}
		}
		for run := 0; run < 3; run++ {
			s := seedStability(t)
			if got := strings.Join(explainLines(t, s, q), "\n"); got != want {
				t.Fatalf("EXPLAIN drifted across engines on rebuild %d\nquery: %s\nfirst:\n%s\nnow:\n%s", run, q, want, got)
			}
		}
	}
}

// TestPrunableRangeDeterministic pins the unit-level fix behind the second
// query above: with bounds recorded on several columns, prunableRange must
// return the lexicographically first bounded column — the same hint on
// every call, never a map-order-dependent one.
func TestPrunableRangeDeterministic(t *testing.T) {
	meta := catalog.TableMeta{Schema: colfile.Schema{
		{Name: "a", Type: colfile.Int64},
		{Name: "b", Type: colfile.Int64},
		{Name: "c", Type: colfile.Int64},
	}}
	where := func(pred string) Expr {
		t.Helper()
		st, err := Parse("SELECT * FROM t WHERE " + pred)
		if err != nil {
			t.Fatalf("parse %q: %v", pred, err)
		}
		return st.(*SelectStmt).Where
	}

	lower := where(`c >= 3 AND b >= 2 AND a >= 1 AND b <= 9`)
	first := prunableRange(lower, meta, "t")
	if first == nil || first.Col != "a" || first.Lo != 1 {
		t.Fatalf("hint = %+v, want column a with lo=1", first)
	}
	for i := 0; i < 100; i++ {
		if h := prunableRange(lower, meta, "t"); h == nil || *h != *first {
			t.Fatalf("call %d: hint = %+v, want %+v every time", i, h, first)
		}
	}

	// Upper bounds only: same rule on the hi map.
	upper := where(`c < 5 AND b < 7`)
	firstHi := prunableRange(upper, meta, "t")
	if firstHi == nil || firstHi.Col != "b" || firstHi.Hi != 7 {
		t.Fatalf("hi-only hint = %+v, want column b with hi=7", firstHi)
	}
	for i := 0; i < 100; i++ {
		if h := prunableRange(upper, meta, "t"); h == nil || *h != *firstHi {
			t.Fatalf("call %d: hi-only hint = %+v, want %+v every time", i, h, firstHi)
		}
	}
}
