package sql

import (
	"errors"
	"fmt"

	"polaris/internal/core"
)

// Session executes SQL statements against an engine, managing autocommit vs
// explicit transactions (BEGIN/COMMIT/ROLLBACK) the way the SQL FE does.
type Session struct {
	eng *core.Engine
	// tx is the open explicit transaction, nil in autocommit mode.
	tx *core.Txn
	// Vacuum hooks engine GC for the VACUUM utility statement.
	Vacuum func() (core.GCResult, error)
}

// NewSession creates a session over the engine.
func NewSession(eng *core.Engine) *Session {
	s := &Session{eng: eng}
	s.Vacuum = eng.GarbageCollect
	return s
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// Txn exposes the open explicit transaction (nil in autocommit mode); used by
// callers that mix SQL with programmatic API calls.
func (s *Session) Txn() *core.Txn { return s.tx }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
}

// Exec parses and executes one statement.
func (s *Session) Exec(query string) (*Result, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return s.ExecParsed(st)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error. It returns the last statement's result.
func (s *Session) ExecScript(script string) (*Result, error) {
	stmts, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecParsed(st)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecParsed executes an already-parsed statement.
func (s *Session) ExecParsed(st Statement) (*Result, error) {
	switch st.(type) {
	case BeginStmt:
		if s.tx != nil {
			return nil, errors.New("sql: transaction already open")
		}
		s.tx = s.eng.Begin()
		return &Result{Message: "transaction started"}, nil
	case CommitStmt:
		if s.tx == nil {
			return nil, errors.New("sql: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "committed"}, nil
	case RollbackStmt:
		if s.tx == nil {
			return nil, errors.New("sql: no open transaction")
		}
		s.tx.Rollback()
		s.tx = nil
		return &Result{Message: "rolled back"}, nil
	}

	if m, ok := st.(MaintenanceStmt); ok && m.What == "vacuum" {
		if s.tx != nil {
			return nil, errors.New("sql: VACUUM cannot run inside a transaction")
		}
		res, err := s.Vacuum()
		if err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf(
			"vacuum: scanned %d, deleted %d data + %d dv + %d orphans, retained %d",
			res.Scanned, res.DeletedData, res.DeletedDV, res.DeletedOrphans, res.Retained)}, nil
	}

	if s.tx != nil {
		before := s.tx.SimTime()
		res, err := Execute(s.tx, st)
		if err != nil {
			return nil, err
		}
		res.SimTime = s.tx.SimTime() - before
		return res, nil
	}
	// Autocommit: each statement runs in its own transaction.
	tx := s.eng.Begin()
	res, err := Execute(tx, st)
	if err != nil {
		tx.Rollback()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	res.SimTime = tx.SimTime()
	return res, nil
}
