package sql

import (
	"context"
	"errors"
	"fmt"

	"polaris/internal/core"
)

// Session executes SQL statements against an engine, managing autocommit vs
// explicit transactions (BEGIN/COMMIT/ROLLBACK) the way the SQL FE does.
//
// Concurrency contract: a Session is a single statement stream — it is NOT
// safe for concurrent use by multiple goroutines (the open-transaction
// pointer and per-session budget are unsynchronized by design, matching the
// one-connection-one-session model of the paper's SQL front end). Distinct
// Sessions over one Engine are fully concurrent: the engine, catalog MVCC,
// fabric and object store are all thread-safe, and cross-session isolation
// is exactly the configured transactional isolation level. A serving front
// end must serialize statements per session (cmd/polaris-server holds a
// per-session mutex) and open one Session per concurrent stream.
type Session struct {
	eng *core.Engine
	// tx is the open explicit transaction, nil in autocommit mode.
	tx *core.Txn
	// Vacuum hooks engine GC for the VACUUM utility statement.
	Vacuum func() (core.GCResult, error)
	// joinBudget, when non-nil, overrides the engine-wide JoinMemoryBudget
	// on every transaction this session begins (explicit and autocommit) —
	// the per-session memory budget of a serving front end.
	joinBudget *int64
}

// NewSession creates a session over the engine.
func NewSession(eng *core.Engine) *Session {
	s := &Session{eng: eng}
	s.Vacuum = eng.GarbageCollect
	return s
}

// SetJoinMemoryBudget gives this session its own hash-join build-side
// memory budget in bytes, overriding the engine-wide configuration for
// every transaction the session begins from now on (0 or negative =
// unlimited). An already-open explicit transaction is updated too.
func (s *Session) SetJoinMemoryBudget(b int64) {
	s.joinBudget = &b
	if s.tx != nil {
		s.tx.SetJoinMemoryBudget(b)
	}
}

// begin starts an engine transaction carrying the session's overrides.
func (s *Session) begin() *core.Txn {
	tx := s.eng.Begin()
	if s.joinBudget != nil {
		tx.SetJoinMemoryBudget(*s.joinBudget)
	}
	return tx
}

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil }

// Txn exposes the open explicit transaction (nil in autocommit mode); used by
// callers that mix SQL with programmatic API calls.
func (s *Session) Txn() *core.Txn { return s.tx }

// Close rolls back any open transaction.
func (s *Session) Close() {
	if s.tx != nil {
		s.tx.Rollback()
		s.tx = nil
	}
}

// Exec parses and executes one statement.
func (s *Session) Exec(query string) (*Result, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return s.ExecParsed(st)
}

// ExecScript executes a semicolon-separated script, stopping at the first
// error. It returns the last statement's result.
func (s *Session) ExecScript(script string) (*Result, error) {
	stmts, err := ParseScript(script)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, st := range stmts {
		last, err = s.ExecParsed(st)
		if err != nil {
			return nil, err
		}
	}
	return last, nil
}

// ExecOpts carries per-statement execution overrides from a front end that
// already holds admission-granted resources for the statement.
type ExecOpts struct {
	// DOP, when > 0, is the worker-slot count an admission controller
	// leased for this statement; the executor adopts it instead of leasing
	// from the fabric again. The caller owns the lease and releases it
	// after the statement returns.
	DOP int
	// Ctx, when non-nil, is a cancellation context for the statement.
	// Distributed (DAG-executed) queries observe it at task boundaries and
	// return its error; the statement's spill and exchange files are
	// cleaned up as on any other error path.
	Ctx context.Context
}

// ExecWith parses and executes one statement with execution overrides.
func (s *Session) ExecWith(query string, opts ExecOpts) (*Result, error) {
	st, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return s.ExecParsedWith(st, opts)
}

// ExecParsed executes an already-parsed statement.
func (s *Session) ExecParsed(st Statement) (*Result, error) {
	return s.ExecParsedWith(st, ExecOpts{})
}

// ExecParsedWith executes an already-parsed statement with execution
// overrides.
func (s *Session) ExecParsedWith(st Statement, opts ExecOpts) (*Result, error) {
	switch st.(type) {
	case BeginStmt:
		if s.tx != nil {
			return nil, errors.New("sql: transaction already open")
		}
		s.tx = s.begin()
		return &Result{Message: "transaction started"}, nil
	case CommitStmt:
		if s.tx == nil {
			return nil, errors.New("sql: no open transaction")
		}
		err := s.tx.Commit()
		s.tx = nil
		if err != nil {
			return nil, err
		}
		return &Result{Message: "committed"}, nil
	case RollbackStmt:
		if s.tx == nil {
			return nil, errors.New("sql: no open transaction")
		}
		s.tx.Rollback()
		s.tx = nil
		return &Result{Message: "rolled back"}, nil
	}

	if m, ok := st.(MaintenanceStmt); ok && m.What == "vacuum" {
		if s.tx != nil {
			return nil, errors.New("sql: VACUUM cannot run inside a transaction")
		}
		res, err := s.Vacuum()
		if err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf(
			"vacuum: scanned %d, deleted %d data + %d dv + %d orphans, retained %d",
			res.Scanned, res.DeletedData, res.DeletedDV, res.DeletedOrphans, res.Retained)}, nil
	}

	if s.tx != nil {
		if opts.DOP > 0 {
			s.tx.AdoptLease(opts.DOP)
			defer s.tx.ClearAdoptedLease()
		}
		if opts.Ctx != nil {
			s.tx.SetContext(opts.Ctx)
			defer s.tx.SetContext(nil)
		}
		before := s.tx.SimTime()
		res, err := Execute(s.tx, st)
		if err != nil {
			return nil, err
		}
		res.SimTime = s.tx.SimTime() - before
		return res, nil
	}
	// Autocommit: each statement runs in its own transaction.
	tx := s.begin()
	if opts.DOP > 0 {
		tx.AdoptLease(opts.DOP)
	}
	if opts.Ctx != nil {
		tx.SetContext(opts.Ctx)
	}
	res, err := Execute(tx, st)
	if err != nil {
		tx.Rollback()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	res.SimTime = tx.SimTime()
	return res, nil
}
