package sql

import (
	"strings"

	"polaris/internal/colfile"
	"polaris/internal/core"
)

// tableStats is the planner's view of one table snapshot: the live row count
// from the manifest plus per-column sketches folded across the live files.
// Statistics are a pure fold over FileEntry.Sketches — DML rewrites the
// entries it touches, so no separate ANALYZE pass exists or is needed.
type tableStats struct {
	// rows is the visible row count (manifest LiveRows sum).
	rows int64
	// cols maps lower-cased column names to the table-level merged sketch.
	// Empty when any live file predates sketches — the estimator then falls
	// back to default selectivities.
	cols map[string]colfile.ColSketch
}

// collectStats folds a table snapshot into planner statistics. Row counts
// come from the manifest; NDV and min/max come from merging the per-file
// column sketches. A snapshot containing any file sealed without sketches
// yields row counts only: partial min/max would silently misestimate ranges,
// so the fold is all-or-nothing per table.
func collectStats(tx *core.Txn, ref TableRef) (*tableStats, error) {
	state, meta, err := tx.Snapshot(ref.Name, ref.AsOfSeq)
	if err != nil {
		return nil, err
	}
	ts := &tableStats{rows: state.TotalRows(), cols: map[string]colfile.ColSketch{}}
	merged := make([]colfile.ColSketch, len(meta.Schema))
	for _, f := range state.LiveFiles() {
		if len(f.Sketches) != len(meta.Schema) {
			return ts, nil // pre-sketch file in the snapshot: rows only
		}
		for i := range merged {
			merged[i].Merge(f.Sketches[i])
		}
	}
	for i, fld := range meta.Schema {
		ts.cols[strings.ToLower(fld.Name)] = merged[i]
	}
	return ts, nil
}

// colSketch returns the merged sketch for a column (case-insensitive), if
// the table has complete statistics.
func (ts *tableStats) colSketch(name string) (colfile.ColSketch, bool) {
	if ts == nil {
		return colfile.ColSketch{}, false
	}
	s, ok := ts.cols[strings.ToLower(name)]
	return s, ok
}
