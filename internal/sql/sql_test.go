package sql

import (
	"strings"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
)

func testSession(t *testing.T) *Session {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Distributions = 4
	opts.RowsPerFile = 1000
	opts.RowsPerGroup = 100
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 2, SlotsPer: 2})
	eng := core.NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
	return NewSession(eng)
}

func mustExec(t *testing.T, s *Session, q string) *Result {
	t.Helper()
	res, err := s.Exec(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func seed(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE items (id INT, name VARCHAR, price FLOAT, active BOOL) WITH (DISTRIBUTION = id, SORTCOL = id)`)
	mustExec(t, s, `INSERT INTO items VALUES
		(1, 'apple', 1.5, TRUE),
		(2, 'banana', 0.5, TRUE),
		(3, 'cherry', 3.0, FALSE),
		(4, 'date', 7.25, TRUE),
		(5, 'elderberry', 12.0, FALSE)`)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "SELEC * FROM t", "SELECT FROM t", "SELECT * FROM", "INSERT INTO",
		"CREATE TABLE t (a FROB)", "SELECT * FROM t WHERE", "DELETE t",
		"SELECT 'unterminated FROM t", "SELECT * FROM t GROUP",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Fatalf("accepted %q", q)
		}
	}
}

func TestLexerComments(t *testing.T) {
	st, err := Parse("SELECT * FROM t -- trailing comment")
	if err != nil || st == nil {
		t.Fatalf("comment handling: %v", err)
	}
	if _, err := Parse("SELECT 'it''s' AS s FROM t"); err != nil {
		t.Fatalf("escaped quote: %v", err)
	}
}

func TestCreateInsertSelect(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT id, name, price FROM items WHERE price > 1.0 ORDER BY id`)
	if res.Batch.NumRows() != 4 { // apple, cherry, date, elderberry
		t.Fatalf("rows = %d", res.Batch.NumRows())
	}
	if res.Batch.Cols[1].Strs[0] != "apple" {
		t.Fatalf("first row = %v", res.Batch.Row(0))
	}
	if cols := res.Columns(); cols[2] != "price" {
		t.Fatalf("columns = %v", cols)
	}
}

func TestSelectStar(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT * FROM items ORDER BY id LIMIT 2`)
	if res.Batch.NumRows() != 2 || len(res.Batch.Schema) != 4 {
		t.Fatalf("rows=%d cols=%d", res.Batch.NumRows(), len(res.Batch.Schema))
	}
}

func TestWherePredicates(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	cases := []struct {
		q    string
		want int
	}{
		{`SELECT id FROM items WHERE active = TRUE`, 3},
		{`SELECT id FROM items WHERE NOT active = TRUE`, 2},
		{`SELECT id FROM items WHERE name LIKE '%rr%'`, 2}, // cherry, elderberry
		{`SELECT id FROM items WHERE name NOT LIKE '%a%'`, 2},
		{`SELECT id FROM items WHERE id IN (1, 3, 9)`, 2},
		{`SELECT id FROM items WHERE id NOT IN (1, 3)`, 3},
		{`SELECT id FROM items WHERE id BETWEEN 2 AND 4`, 3},
		{`SELECT id FROM items WHERE price >= 1.5 AND price <= 7.25`, 3},
		{`SELECT id FROM items WHERE id = 1 OR name = 'date'`, 2},
		{`SELECT id FROM items WHERE price <> 1.5`, 4},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.q)
		if res.Batch.NumRows() != c.want {
			t.Fatalf("%s: rows = %d, want %d", c.q, res.Batch.NumRows(), c.want)
		}
	}
}

func TestArithmeticProjection(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT id * 10 + 1 AS x, price / 2 AS half FROM items WHERE id = 2`)
	if res.Batch.Cols[0].Ints[0] != 21 {
		t.Fatalf("x = %v", res.Batch.Row(0))
	}
	if res.Batch.Cols[1].Floats[0] != 0.25 {
		t.Fatalf("half = %v", res.Batch.Row(0))
	}
}

func TestAggregates(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT COUNT(*) AS n, SUM(price) AS total, MIN(id) AS lo, MAX(id) AS hi, AVG(price) AS mean FROM items`)
	if res.Batch.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Batch.NumRows())
	}
	row := res.Batch.Row(0)
	if row[0] != int64(5) || row[2] != int64(1) || row[3] != int64(5) {
		t.Fatalf("row = %v", row)
	}
	if row[1].(float64) != 24.25 {
		t.Fatalf("sum = %v", row[1])
	}
	if row[4].(float64) != 4.85 {
		t.Fatalf("avg = %v", row[4])
	}
}

func TestGroupByHaving(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT active, COUNT(*) AS n, SUM(price) AS total
		FROM items GROUP BY active HAVING COUNT(*) > 2 ORDER BY n DESC`)
	if res.Batch.NumRows() != 1 {
		t.Fatalf("groups = %d", res.Batch.NumRows())
	}
	if res.Batch.Cols[0].Bools[0] != true || res.Batch.Cols[1].Ints[0] != 3 {
		t.Fatalf("row = %v", res.Batch.Row(0))
	}
}

func TestAggregateExpressionOverGroups(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT active, SUM(price) * 2 AS dbl FROM items GROUP BY active ORDER BY dbl`)
	if res.Batch.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Batch.NumRows())
	}
	// actives: (1.5+0.5+7.25)*2 = 18.5; inactives: (3+12)*2 = 30
	if res.Batch.Cols[1].Floats[0] != 18.5 || res.Batch.Cols[1].Floats[1] != 30 {
		t.Fatalf("rows = %v %v", res.Batch.Row(0), res.Batch.Row(1))
	}
}

func TestJoin(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE orders (oid INT, item_id INT, qty INT) WITH (DISTRIBUTION = oid)`)
	mustExec(t, s, `INSERT INTO orders VALUES (100, 1, 3), (101, 2, 1), (102, 1, 2), (103, 99, 5)`)
	res := mustExec(t, s, `SELECT o.oid, i.name, o.qty FROM orders o JOIN items i ON o.item_id = i.id ORDER BY o.oid`)
	if res.Batch.NumRows() != 3 {
		t.Fatalf("rows = %d", res.Batch.NumRows())
	}
	if res.Batch.Cols[1].Strs[0] != "apple" {
		t.Fatalf("row0 = %v", res.Batch.Row(0))
	}
	// left outer keeps the dangling order
	res = mustExec(t, s, `SELECT o.oid, i.name FROM orders o LEFT JOIN items i ON o.item_id = i.id ORDER BY o.oid`)
	if res.Batch.NumRows() != 4 {
		t.Fatalf("left join rows = %d", res.Batch.NumRows())
	}
	if !res.Batch.Cols[1].IsNull(3) {
		t.Fatalf("dangling row = %v", res.Batch.Row(3))
	}
}

func TestJoinWithAggregation(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE orders (oid INT, item_id INT, qty INT) WITH (DISTRIBUTION = oid)`)
	mustExec(t, s, `INSERT INTO orders VALUES (100, 1, 3), (101, 2, 1), (102, 1, 2)`)
	res := mustExec(t, s, `SELECT i.name, SUM(o.qty) AS total FROM orders o JOIN items i ON o.item_id = i.id GROUP BY i.name ORDER BY total DESC`)
	if res.Batch.NumRows() != 2 {
		t.Fatalf("rows = %d", res.Batch.NumRows())
	}
	if res.Batch.Cols[0].Strs[0] != "apple" || res.Batch.Cols[1].Ints[0] != 5 {
		t.Fatalf("row = %v", res.Batch.Row(0))
	}
}

func TestUpdateDelete(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `UPDATE items SET price = price * 2 WHERE id <= 2`)
	if res.RowsAffected != 2 {
		t.Fatalf("updated = %d", res.RowsAffected)
	}
	q := mustExec(t, s, `SELECT SUM(price) AS s FROM items`)
	if got := q.Batch.Cols[0].Floats[0]; got != 26.25 {
		t.Fatalf("sum = %v", got)
	}
	res = mustExec(t, s, `DELETE FROM items WHERE active = FALSE`)
	if res.RowsAffected != 2 {
		t.Fatalf("deleted = %d", res.RowsAffected)
	}
	q = mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 3 {
		t.Fatalf("count = %v", q.Batch.Row(0))
	}
}

func TestExplicitTransactionCommit(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO items VALUES (6, 'fig', 2.0, TRUE)`)
	mustExec(t, s, `DELETE FROM items WHERE id = 1`)
	// multi-statement visibility inside the txn
	q := mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("in-txn count = %v", q.Batch.Row(0))
	}
	mustExec(t, s, `COMMIT`)
	q = mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("post-commit count = %v", q.Batch.Row(0))
	}
}

func TestExplicitTransactionRollback(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `DELETE FROM items WHERE id >= 1`)
	mustExec(t, s, `ROLLBACK`)
	q := mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("rollback lost data: %v", q.Batch.Row(0))
	}
	if _, err := s.Exec(`COMMIT`); err == nil {
		t.Fatal("commit without txn accepted")
	}
	if _, err := s.Exec(`ROLLBACK`); err == nil {
		t.Fatal("rollback without txn accepted")
	}
}

func TestTimeTravelAndClone(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	// find the sequence after the seed insert
	st := mustExec(t, s, `SHOW STATS items`)
	seq := st.Batch.Cols[6].Ints[0]
	mustExec(t, s, `DELETE FROM items WHERE id > 2`)
	q := mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 2 {
		t.Fatalf("current = %v", q.Batch.Row(0))
	}
	q = mustExec(t, s, `SELECT COUNT(*) AS n FROM items AS OF `+itoa(seq))
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("as-of = %v", q.Batch.Row(0))
	}
	mustExec(t, s, `CLONE TABLE items TO items_bak AS OF `+itoa(seq))
	q = mustExec(t, s, `SELECT COUNT(*) AS n FROM items_bak`)
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("clone = %v", q.Batch.Row(0))
	}
	mustExec(t, s, `RESTORE TABLE items AS OF `+itoa(seq))
	q = mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("restored = %v", q.Batch.Row(0))
	}
}

func itoa(n int64) string {
	return strings.TrimSpace(strings.Replace(strings.Repeat(" ", 0)+fmtInt(n), " ", "", -1))
}

func fmtInt(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		b = append([]byte{'-'}, b...)
	}
	return string(b)
}

func TestShowTables(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE zz (a INT)`)
	res := mustExec(t, s, `SHOW TABLES`)
	if res.Batch.NumRows() != 2 {
		t.Fatalf("tables = %d", res.Batch.NumRows())
	}
	if res.Batch.Cols[0].Strs[0] != "items" {
		t.Fatalf("row0 = %v", res.Batch.Row(0))
	}
}

func TestInsertSelect(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE expensive (id INT, name VARCHAR, price FLOAT, active BOOL) WITH (DISTRIBUTION = id)`)
	res := mustExec(t, s, `INSERT INTO expensive SELECT * FROM items WHERE price > 2.0`)
	if res.RowsAffected != 3 {
		t.Fatalf("inserted = %d", res.RowsAffected)
	}
	q := mustExec(t, s, `SELECT COUNT(*) AS n FROM expensive`)
	if q.Batch.Cols[0].Ints[0] != 3 {
		t.Fatalf("count = %v", q.Batch.Row(0))
	}
}

func TestInsertColumnSubset(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `INSERT INTO items (id, name) VALUES (9, 'ghost')`)
	q := mustExec(t, s, `SELECT price FROM items WHERE id = 9`)
	if !q.Batch.Cols[0].IsNull(0) {
		t.Fatalf("missing column not NULL: %v", q.Batch.Row(0))
	}
}

func TestOrderByPositionAndDesc(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT id, price FROM items ORDER BY 2 DESC LIMIT 1`)
	if res.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("row = %v", res.Batch.Row(0))
	}
}

func TestLimitOffset(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	res := mustExec(t, s, `SELECT id FROM items ORDER BY id LIMIT 2 OFFSET 2`)
	if res.Batch.NumRows() != 2 || res.Batch.Cols[0].Ints[0] != 3 {
		t.Fatalf("rows = %v", res.Batch.Cols[0].Ints)
	}
}

func TestMaintenanceStatements(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `DELETE FROM items WHERE id <= 4`)
	res := mustExec(t, s, `COMPACT TABLE items`)
	if !strings.Contains(res.Message, "compacted") {
		t.Fatalf("message = %q", res.Message)
	}
	res = mustExec(t, s, `CHECKPOINT TABLE items`)
	if !strings.Contains(res.Message, "checkpoint") {
		t.Fatalf("message = %q", res.Message)
	}
	res = mustExec(t, s, `VACUUM`)
	if !strings.Contains(res.Message, "vacuum") {
		t.Fatalf("message = %q", res.Message)
	}
	q := mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 1 {
		t.Fatalf("count after maintenance = %v", q.Batch.Row(0))
	}
}

func TestConflictSurfacesThroughSQL(t *testing.T) {
	s1 := testSession(t)
	seed(t, s1)
	s2 := NewSession(engineOf(s1))
	mustExec(t, s1, `BEGIN`)
	mustExec(t, s2, `BEGIN`)
	mustExec(t, s1, `DELETE FROM items WHERE id = 1`)
	mustExec(t, s2, `DELETE FROM items WHERE id = 2`)
	mustExec(t, s1, `COMMIT`)
	if _, err := s2.Exec(`COMMIT`); !catalog.IsWriteConflict(err) {
		t.Fatalf("commit err = %v", err)
	}
}

func engineOf(s *Session) *core.Engine { return s.eng }

func TestIfNotExists(t *testing.T) {
	s := testSession(t)
	mustExec(t, s, `CREATE TABLE t (a INT)`)
	if _, err := s.Exec(`CREATE TABLE t (a INT)`); err == nil {
		t.Fatal("duplicate create accepted")
	}
	res := mustExec(t, s, `CREATE TABLE IF NOT EXISTS t (a INT)`)
	if res.Message != "table exists" {
		t.Fatalf("message = %q", res.Message)
	}
}

func TestExecScript(t *testing.T) {
	s := testSession(t)
	res, err := s.ExecScript(`
		CREATE TABLE t (a INT) WITH (DISTRIBUTION = a);
		INSERT INTO t VALUES (1), (2), (3);
		SELECT COUNT(*) AS n FROM t;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Batch.Cols[0].Ints[0] != 3 {
		t.Fatalf("script result = %v", res.Batch.Row(0))
	}
}

func TestSessionCloseRollsBack(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `DELETE FROM items WHERE id >= 1`)
	s.Close()
	q := mustExec(t, s, `SELECT COUNT(*) AS n FROM items`)
	if q.Batch.Cols[0].Ints[0] != 5 {
		t.Fatalf("close did not roll back: %v", q.Batch.Row(0))
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE other (id INT, v INT) WITH (DISTRIBUTION = id)`)
	mustExec(t, s, `INSERT INTO other VALUES (1, 10)`)
	if _, err := s.Exec(`SELECT id FROM items i JOIN other o ON i.id = o.id`); err == nil {
		t.Fatal("ambiguous column accepted")
	}
	res := mustExec(t, s, `SELECT i.id FROM items i JOIN other o ON i.id = o.id`)
	if res.Batch.NumRows() != 1 {
		t.Fatalf("rows = %d", res.Batch.NumRows())
	}
}
