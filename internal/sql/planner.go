package sql

import (
	"strings"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/core"
	"polaris/internal/exec"
)

// planTable is one base relation of a SELECT as the cost-based planner sees
// it: syntactic position, catalog metadata and folded statistics.
type planTable struct {
	ref   TableRef
	alias string // lower-cased alias (or table name)
	pos   int    // syntactic position: 0 = FROM, i+1 = Joins[i]
	meta  catalog.TableMeta
	stats *tableStats
	est   float64 // estimated scan output rows after local conjuncts; -1 unknown
}

// physPlan is the cost-based planning product of one SELECT statement. The
// serial executor, the parallel executor and EXPLAIN all consume the same
// plan, so the three can never disagree about join order, build sides,
// pushed predicates or scan projections. Planning is best-effort: any shape
// the planner doesn't understand (unknown tables, duplicate aliases,
// non-equi ONs, missing statistics) degrades to the syntactic statement
// untouched, and execution surfaces errors exactly as before.
type physPlan struct {
	st    *SelectStmt // possibly rewritten: joins reordered, star pre-expanded
	where Expr        // original WHERE (zone-map hint extraction sees pushed conjuncts too)

	reordered   bool
	swaps       int64 // join slots whose build table differs from syntactic
	pushedCount int64 // WHERE conjuncts moved into scans

	// pushed maps a table alias to the WHERE conjuncts its scan evaluates.
	pushed map[string][]Expr
	// scanCols maps a table alias to the projected scan columns (nil = all).
	scanCols map[string][]string

	order  []*planTable // syntactic order
	tables map[string]*planTable

	// dag marks a plan that will execute as a DCP task DAG
	// (Options.DistributedQueries with a parallelism target); EXPLAIN
	// renders it as a [dag] annotation on the probe-base scan.
	dag bool
}

// planSelect runs cost-based physical planning over one SELECT.
func planSelect(tx *core.Txn, st *SelectStmt) *physPlan {
	p := &physPlan{
		st: st, where: st.Where,
		pushed: map[string][]Expr{}, scanCols: map[string][]string{},
		tables: map[string]*planTable{},
	}
	p.dag = tx.DistributedQueries() && tx.Parallelism() > 1 && !bareLimitSelect(st)
	if !p.loadTables(tx, st) {
		return p
	}
	p.estimate()
	p.reorderJoins(st)
	p.choosePushdown()
	p.chooseProjection()
	return p
}

// recordWork publishes the plan-shape counters once per executed statement.
// EXPLAIN does not call this — it plans without executing.
func (p *physPlan) recordWork(tx *core.Txn) {
	if p.swaps > 0 {
		tx.Work().BuildSideSwaps.Add(p.swaps)
	}
	if p.pushedCount > 0 {
		tx.Work().PushedFilters.Add(p.pushedCount)
	}
}

// loadTables resolves every base relation and its statistics. Reports false
// (planning disabled) when a table is unknown or two relations share an
// alias — execution reproduces the original error in the former case, and
// ambiguity handling stays bind's job in the latter.
func (p *physPlan) loadTables(tx *core.Txn, st *SelectStmt) bool {
	add := func(ref TableRef, pos int) bool {
		alias := strings.ToLower(aliasOf(ref))
		if _, dup := p.tables[alias]; dup {
			return false
		}
		meta, err := tx.Table(ref.Name)
		if err != nil {
			return false
		}
		t := &planTable{ref: ref, alias: alias, pos: pos, meta: meta, est: -1}
		if ts, err := collectStats(tx, ref); err == nil {
			t.stats = ts
		}
		p.order = append(p.order, t)
		p.tables[alias] = t
		return true
	}
	if !add(st.From, 0) {
		return false
	}
	for i, j := range st.Joins {
		if !add(j.Table, i+1) {
			return false
		}
	}
	return true
}

// estimate computes each relation's post-filter cardinality estimate from
// its statistics and the single-table WHERE conjuncts that apply to it.
func (p *physPlan) estimate() {
	local := map[string][]Expr{}
	for _, c := range splitAnd(p.st.Where) {
		if owner := p.conjunctOwner(c); owner != "" {
			local[owner] = append(local[owner], c)
		}
	}
	for _, t := range p.order {
		t.est = estimateRows(t.stats, local[t.alias])
	}
}

// splitAnd flattens an AND conjunction into its conjuncts (nil → none).
func splitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(BinExpr); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []Expr{e}
}

// andFold rebuilds a conjunction, preserving conjunct order (nil for none).
func andFold(conjuncts []Expr) Expr {
	var out Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = BinExpr{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// walkCols visits every column reference in an expression.
func walkCols(e Expr, f func(ColName)) {
	switch x := e.(type) {
	case ColName:
		f(x)
	case BinExpr:
		walkCols(x.L, f)
		walkCols(x.R, f)
	case NotExpr:
		walkCols(x.E, f)
	case IsNullExpr:
		walkCols(x.E, f)
	case LikeExpr:
		walkCols(x.E, f)
	case InExpr:
		walkCols(x.E, f)
	case BetweenExpr:
		walkCols(x.E, f)
		walkCols(x.Lo, f)
		walkCols(x.Hi, f)
	case FuncExpr:
		if x.Arg != nil {
			walkCols(x.Arg, f)
		}
	}
}

// schemaHas reports whether a schema contains a column (case-insensitive).
func schemaHas(s colfile.Schema, name string) bool {
	for _, f := range s {
		if strings.EqualFold(f.Name, name) {
			return true
		}
	}
	return false
}

// ownerOf resolves a column reference to the single relation that owns it,
// or "" when the reference is unknown or ambiguous.
func (p *physPlan) ownerOf(c ColName) string {
	if c.Table != "" {
		a := strings.ToLower(c.Table)
		if t, ok := p.tables[a]; ok && schemaHas(t.meta.Schema, c.Name) {
			return a
		}
		return ""
	}
	owner := ""
	//polaris:nondet unique-or-empty fold: one match yields that alias, two yield "" whichever is seen first
	for a, t := range p.tables {
		if schemaHas(t.meta.Schema, c.Name) {
			if owner != "" {
				return "" // ambiguous
			}
			owner = a
		}
	}
	return owner
}

// conjunctOwner returns the alias of the single relation a conjunct reads,
// or "" when it spans relations, contains aggregates, or references unknown
// or ambiguous columns. A conjunct with no column references has no owner.
func (p *physPlan) conjunctOwner(e Expr) string {
	if containsAgg(e) {
		return ""
	}
	owner, bad := "", false
	walkCols(e, func(c ColName) {
		o := p.ownerOf(c)
		if o == "" || (owner != "" && o != owner) {
			bad = true
			return
		}
		owner = o
	})
	if bad {
		return ""
	}
	return owner
}

// reorderJoins rewrites the FROM/JOIN sequence by estimated cardinality:
// the largest-estimate relation becomes the probe base and the remaining
// relations join greedily smallest-first among those connected to the tables
// already in scope, so every build side is as small as the statistics allow.
// Only all-inner joins with pure two-relation equi ONs are reordered —
// inner-join conjuncts commute, so redistributing the ON edges over a new
// order preserves results. Ties keep syntactic order, which also makes the
// rewrite deterministic for a fixed snapshot (the byte-identity suites rely
// on that).
func (p *physPlan) reorderJoins(orig *SelectStmt) {
	st := p.st
	if len(st.Joins) == 0 {
		return
	}
	for _, j := range st.Joins {
		if j.Left {
			return
		}
	}
	for _, t := range p.order {
		if t.est < 0 {
			return // a relation without statistics: don't compare garbage
		}
	}
	// SELECT * with GROUP BY errors later; keep the syntactic statement so
	// the error text is unchanged.
	if selectHasAgg(st) {
		for _, it := range st.Items {
			if it.Star {
				return
			}
		}
	}
	type edge struct {
		a, b string
		expr Expr
		used bool
	}
	var edges []*edge
	for _, j := range st.Joins {
		for _, c := range splitAnd(j.On) {
			b, ok := c.(BinExpr)
			if !ok || b.Op != "=" {
				return
			}
			lc, ok1 := b.L.(ColName)
			rc, ok2 := b.R.(ColName)
			if !ok1 || !ok2 {
				return
			}
			la, ra := p.ownerOf(lc), p.ownerOf(rc)
			if la == "" || ra == "" || la == ra {
				return
			}
			edges = append(edges, &edge{a: la, b: ra, expr: c})
		}
	}

	// Pick the probe base: the largest estimate (strictly larger wins, so
	// equal-size relations keep syntactic order).
	base := p.order[0]
	for _, t := range p.order[1:] {
		if t.est > base.est {
			base = t
		}
	}
	inScope := map[string]bool{base.alias: true}
	order := []*planTable{base}
	var remaining []*planTable
	for _, t := range p.order {
		if t != base {
			remaining = append(remaining, t)
		}
	}
	for len(remaining) > 0 {
		pick := -1
		for i, t := range remaining {
			connected := false
			for _, e := range edges {
				if (inScope[e.a] && e.b == t.alias) || (inScope[e.b] && e.a == t.alias) {
					connected = true
					break
				}
			}
			if !connected {
				continue
			}
			if pick < 0 || t.est < remaining[pick].est {
				pick = i
			}
		}
		if pick < 0 {
			return // disconnected join graph under this base: keep syntactic
		}
		t := remaining[pick]
		inScope[t.alias] = true
		order = append(order, t)
		remaining = append(remaining[:pick:pick], remaining[pick+1:]...)
	}
	same := true
	for i, t := range order {
		if t != p.order[i] {
			same = false
			break
		}
	}
	if same {
		return
	}

	// Rebuild the join clauses: each relation takes every still-unused ON
	// edge that connects it to the scope built so far.
	inScope = map[string]bool{order[0].alias: true}
	newJoins := make([]JoinClause, 0, len(order)-1)
	for _, t := range order[1:] {
		var on []Expr
		for _, e := range edges {
			if e.used {
				continue
			}
			if (inScope[e.a] && e.b == t.alias) || (inScope[e.b] && e.a == t.alias) {
				e.used = true
				on = append(on, e.expr)
			}
		}
		if len(on) == 0 {
			return
		}
		inScope[t.alias] = true
		newJoins = append(newJoins, JoinClause{Table: t.ref, On: andFold(on)})
	}
	for _, e := range edges {
		if !e.used {
			return // an edge never found a home (e.g. redundant predicate)
		}
	}

	cp := *st
	cp.From = order[0].ref
	cp.Joins = newJoins
	cp.Items = p.expandStar(st.Items)
	for i := range newJoins {
		if !strings.EqualFold(aliasOf(newJoins[i].Table), aliasOf(orig.Joins[i].Table)) {
			p.swaps++
		}
	}
	p.st = &cp
	p.reordered = true
}

// expandStar rewrites * items into qualified column references in the
// original syntactic scope order, so a reordered join changes row order at
// most — never the output columns.
func (p *physPlan) expandStar(items []SelectItem) []SelectItem {
	out := make([]SelectItem, 0, len(items))
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, t := range p.order {
			for _, f := range t.meta.Schema {
				out = append(out, SelectItem{Expr: ColName{Table: aliasOf(t.ref), Name: f.Name}})
			}
		}
	}
	return out
}

// choosePushdown splits the WHERE conjunction into conjuncts each scan can
// evaluate itself and the residual the post-join Filter keeps. SQL's
// three-valued AND is order-independent, so evaluating a conjunct early
// never changes which rows survive the full conjunction. A conjunct is
// pushable when it reads exactly one relation, cannot raise a runtime error,
// and compiles to a kernel program; conjuncts on non-base relations
// additionally require every join to be inner (a filtered build side would
// change LEFT JOIN padding).
func (p *physPlan) choosePushdown() {
	st := p.st
	if st.Where == nil {
		return
	}
	allInner := true
	for _, j := range st.Joins {
		if j.Left {
			allInner = false
			break
		}
	}
	baseAlias := strings.ToLower(aliasOf(st.From))
	var residual []Expr
	for _, c := range splitAnd(st.Where) {
		owner := p.conjunctOwner(c)
		ok := owner != "" && !exprCanError(c) &&
			(owner == baseAlias || allInner) && p.compilable(c, owner)
		if !ok {
			residual = append(residual, c)
			continue
		}
		p.pushed[owner] = append(p.pushed[owner], c)
		p.pushedCount++
	}
	if p.pushedCount == 0 {
		return
	}
	cp := *st
	cp.Where = andFold(residual)
	p.st = &cp
}

// compilable verifies a conjunct binds and compiles to a Bool kernel program
// over its relation's schema. Compilation success depends on column types
// only, so the same program compiles against any projection of the schema
// that contains the referenced columns.
func (p *physPlan) compilable(e Expr, alias string) bool {
	t := p.tables[alias]
	sc := singleTableScope(t.meta.Schema, aliasOf(t.ref))
	pred, err := bind(e, sc)
	if err != nil {
		return false
	}
	prog, err := exec.Compile(pred, t.meta.Schema)
	if err != nil {
		return false
	}
	return len(prog.Cols()) > 0 && prog.OutType() == colfile.Bool
}

func singleTableScope(schema colfile.Schema, alias string) *scope {
	quals := make([]string, len(schema))
	for i := range quals {
		quals[i] = alias
	}
	return &scope{schema: schema, quals: quals}
}

// chooseProjection computes, per relation, the set of columns the query
// actually references (select items, residual and pushed predicates, join
// keys, grouping, HAVING, ORDER BY). A scan whose referenced set is a strict
// subset of the schema is projected, so unreferenced columns are never
// decoded. Unqualified names owned by several relations count for each —
// over-inclusion is always safe.
func (p *physPlan) chooseProjection() {
	st := p.st
	need := map[string]map[string]bool{}
	full := map[string]bool{}
	addCol := func(c ColName) {
		mark := func(alias string) {
			if need[alias] == nil {
				need[alias] = map[string]bool{}
			}
			need[alias][strings.ToLower(c.Name)] = true
		}
		if c.Table != "" {
			a := strings.ToLower(c.Table)
			if t, ok := p.tables[a]; ok && schemaHas(t.meta.Schema, c.Name) {
				mark(a)
			}
			return
		}
		//polaris:nondet mark only inserts into the per-alias need set keyed by the range key; set inserts commute
		for a, t := range p.tables {
			if schemaHas(t.meta.Schema, c.Name) {
				mark(a)
			}
		}
	}
	for _, it := range st.Items {
		if it.Star {
			for a := range p.tables {
				full[a] = true
			}
			continue
		}
		walkCols(it.Expr, addCol)
	}
	if st.Where != nil {
		walkCols(st.Where, addCol)
	}
	//polaris:nondet addCol only accumulates per-alias need/full sets; which conjunct marks a column first is immaterial
	for _, cs := range p.pushed {
		for _, c := range cs {
			walkCols(c, addCol)
		}
	}
	for _, j := range st.Joins {
		walkCols(j.On, addCol)
	}
	for _, g := range st.GroupBy {
		walkCols(g, addCol)
	}
	if st.Having != nil {
		walkCols(st.Having, addCol)
	}
	for _, o := range st.OrderBy {
		walkCols(o.Expr, addCol)
	}
	//polaris:nondet each iteration writes only scanCols[a] for its own range key; list is rebuilt per alias in schema order
	for a, t := range p.tables {
		if full[a] {
			continue
		}
		var list []string
		for _, f := range t.meta.Schema {
			if need[a][strings.ToLower(f.Name)] {
				list = append(list, f.Name)
			}
		}
		// A query referencing no columns of a relation (SELECT COUNT(*))
		// still needs one column for row counts.
		if len(list) == 0 {
			list = []string{t.meta.Schema[0].Name}
		}
		if len(list) < len(t.meta.Schema) {
			p.scanCols[a] = list
		}
	}
}

// colsFor returns the projected scan column list for a relation (nil = all).
func (p *physPlan) colsFor(ref TableRef) []string {
	if p == nil {
		return nil
	}
	return p.scanCols[strings.ToLower(aliasOf(ref))]
}

// pushedFor returns the conjuncts a relation's scan evaluates.
func (p *physPlan) pushedFor(ref TableRef) []Expr {
	if p == nil {
		return nil
	}
	return p.pushed[strings.ToLower(aliasOf(ref))]
}

// applyPushdown attaches a relation's pushed conjuncts to a freshly opened
// scan operator: compiled into the scan legs themselves when possible (a
// bare Scan, or the per-cell UnionAll the serial read path returns), else as
// a Filter directly above — either way the rows never reach the rest of the
// plan, so the split is invisible downstream.
func applyPushdown(op exec.Operator, sc *scope, conjuncts []Expr) (exec.Operator, error) {
	if len(conjuncts) == 0 {
		return op, nil
	}
	pred, err := bind(andFold(conjuncts), sc)
	if err != nil {
		return nil, err
	}
	var prog *exec.Prog
	if pr, cerr := exec.Compile(pred, sc.schema); cerr == nil {
		prog = pr
	}
	if prog != nil && pushIntoScan(op, prog) {
		return op, nil
	}
	return &exec.Filter{In: op, Pred: pred, Prog: prog}, nil
}

// pushIntoScan pushes a compiled predicate into every scan leg of op.
func pushIntoScan(op exec.Operator, prog *exec.Prog) bool {
	switch s := op.(type) {
	case *exec.Scan:
		return s.PushPredicate(prog)
	case *exec.UnionAll:
		for _, in := range s.Ins {
			leg, ok := in.(*exec.Scan)
			if !ok || !leg.PushPredicate(prog) {
				return false
			}
		}
		return true
	}
	return false
}
