package sql

// Selectivity estimation: the planner's cost model reduces every predicate
// to a fraction of a table's rows. Estimates only steer plan choice (join
// order, build side, pushdown) — never results — so classic System R style
// magic numbers are an acceptable fallback when the sketches can't resolve a
// predicate.

const (
	// selEqDefault applies to equality predicates on columns with unknown NDV.
	selEqDefault = 0.10
	// selRangeDefault applies to inequalities without usable min/max bounds.
	selRangeDefault = 0.30
	// selLikeDefault applies to LIKE patterns (never estimated from sketches).
	selLikeDefault = 0.25
	// selDefault applies to predicates the model doesn't understand.
	selDefault = 0.33
)

// estimateRows returns the estimated visible-row output of scanning a table
// with the given predicate conjuncts applied (independence assumed). A table
// without statistics estimates to -1 ("unknown"), which disables cost-based
// reordering rather than comparing garbage numbers.
func estimateRows(ts *tableStats, conjuncts []Expr) float64 {
	if ts == nil {
		return -1
	}
	rows := float64(ts.rows)
	if rows <= 0 {
		return 0
	}
	sel := 1.0
	for _, c := range conjuncts {
		sel *= selectivity(c, ts)
	}
	est := rows * sel
	if est < 1 {
		est = 1
	}
	return est
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// selectivity estimates the fraction of rows a predicate keeps, using the
// table's merged column sketches where they apply.
func selectivity(e Expr, ts *tableStats) float64 {
	switch x := e.(type) {
	case BinExpr:
		switch x.Op {
		case "AND":
			return clampSel(selectivity(x.L, ts) * selectivity(x.R, ts))
		case "OR":
			a, b := selectivity(x.L, ts), selectivity(x.R, ts)
			return clampSel(a + b - a*b)
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			return cmpSelectivity(x, ts)
		}
		return selDefault
	case NotExpr:
		return clampSel(1 - selectivity(x.E, ts))
	case IsNullExpr:
		if c, ok := x.E.(ColName); ok {
			if sk, ok := ts.colSketch(c.Name); ok && sk.Rows > 0 {
				frac := float64(sk.Stats.NullCount) / float64(sk.Rows)
				if x.Negate {
					frac = 1 - frac
				}
				return clampSel(frac)
			}
		}
		if x.Negate {
			return 0.9
		}
		return 0.1
	case LikeExpr:
		if x.Negate {
			return 1 - selLikeDefault
		}
		return selLikeDefault
	case InExpr:
		s := float64(len(x.Vals)) * eqSelectivity(x.E, ts)
		if x.Negate {
			s = 1 - s
		}
		return clampSel(s)
	case BetweenExpr:
		// Lowered at bind time to (>= lo AND <= hi); estimate the same shape.
		a := cmpSelectivity(BinExpr{Op: ">=", L: x.E, R: x.Lo}, ts)
		b := cmpSelectivity(BinExpr{Op: "<=", L: x.E, R: x.Hi}, ts)
		s := a + b - 1 // conjunction of overlapping ranges, not independence
		if s <= 0 {
			s = a * b
		}
		return clampSel(s)
	case Lit:
		if b, ok := x.Val.(bool); ok && !b {
			return 0
		}
		if _, ok := x.Val.(bool); ok {
			return 1
		}
		return selDefault
	case ColName:
		return 0.5 // bare boolean column
	}
	return selDefault
}

// eqSelectivity is the per-value hit fraction of a column: 1/NDV when the
// sketch knows the column, selEqDefault otherwise.
func eqSelectivity(e Expr, ts *tableStats) float64 {
	c, ok := e.(ColName)
	if !ok {
		return selEqDefault
	}
	sk, ok := ts.colSketch(c.Name)
	if !ok || sk.Bitmap == nil || sk.Rows == 0 {
		return selEqDefault
	}
	ndv := sk.NDV()
	if ndv <= 0 {
		return selEqDefault
	}
	return clampSel(1 / float64(ndv))
}

// cmpSelectivity estimates a comparison. Only the col-vs-literal shape (in
// either operand order) is resolved from statistics.
func cmpSelectivity(x BinExpr, ts *tableStats) float64 {
	col, lit, op, ok := normalizeCmp(x)
	if !ok {
		if x.Op == "=" {
			return selEqDefault
		}
		return selRangeDefault
	}
	switch op {
	case "=":
		return eqSelectivity(col, ts)
	case "<>", "!=":
		return clampSel(1 - eqSelectivity(col, ts))
	}
	sk, okSk := ts.colSketch(col.Name)
	if !okSk {
		return selRangeDefault
	}
	if v, isInt := lit.Val.(int64); isInt && sk.Stats.MinInt != nil && sk.Stats.MaxInt != nil {
		return intRangeSel(op, v, *sk.Stats.MinInt, *sk.Stats.MaxInt)
	}
	if v, isF := toF(lit.Val); isF && sk.Stats.MinFloat != nil && sk.Stats.MaxFloat != nil {
		return floatRangeSel(op, v, *sk.Stats.MinFloat, *sk.Stats.MaxFloat)
	}
	return selRangeDefault
}

// normalizeCmp rewrites a comparison so the column is on the left, flipping
// the operator when the literal was.
func normalizeCmp(x BinExpr) (ColName, Lit, string, bool) {
	if c, ok := x.L.(ColName); ok {
		if l, ok := x.R.(Lit); ok {
			return c, l, x.Op, true
		}
	}
	if l, ok := x.L.(Lit); ok {
		if c, ok := x.R.(ColName); ok {
			flip := map[string]string{"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>", "!=": "!="}
			return c, l, flip[x.Op], true
		}
	}
	return ColName{}, Lit{}, "", false
}

// intRangeSel interpolates an inequality over the column's [lo, hi] integer
// value range, assuming a uniform distribution.
func intRangeSel(op string, v, lo, hi int64) float64 {
	width := float64(hi-lo) + 1
	if width <= 0 {
		return selRangeDefault
	}
	switch op {
	case "<":
		return clampSel(float64(v-lo) / width)
	case "<=":
		return clampSel(float64(v-lo+1) / width)
	case ">":
		return clampSel(float64(hi-v) / width)
	case ">=":
		return clampSel(float64(hi-v+1) / width)
	}
	return selRangeDefault
}

func floatRangeSel(op string, v, lo, hi float64) float64 {
	width := hi - lo
	if width <= 0 {
		return selRangeDefault
	}
	switch op {
	case "<", "<=":
		return clampSel((v - lo) / width)
	case ">", ">=":
		return clampSel((hi - v) / width)
	}
	return selRangeDefault
}

// exprCanError reports whether evaluating the expression can raise a runtime
// error (division or modulo by zero). Only error-free predicates may be
// pushed into a scan: a pushed predicate runs over rows a residual Filter
// would never have seen, so an error there would surface spuriously.
func exprCanError(e Expr) bool {
	switch x := e.(type) {
	case BinExpr:
		if x.Op == "/" || x.Op == "%" {
			return true
		}
		return exprCanError(x.L) || exprCanError(x.R)
	case NotExpr:
		return exprCanError(x.E)
	case IsNullExpr:
		return exprCanError(x.E)
	case LikeExpr:
		return exprCanError(x.E)
	case InExpr:
		return exprCanError(x.E)
	case BetweenExpr:
		return exprCanError(x.E) || exprCanError(x.Lo) || exprCanError(x.Hi)
	case FuncExpr:
		return x.Arg != nil && exprCanError(x.Arg)
	}
	return false
}
