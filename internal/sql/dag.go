package sql

// Distributed query execution (paper Sections 1, 3.3): a parallel SELECT is
// lowered onto a DCP task DAG instead of the in-process morsel pool when
// Options.DistributedQueries is set. The DAG is query-shaped — per-morsel
// scan tasks, one build task per join, a gather barrier per join stage, and
// per-morsel probe tasks — placed on the read pool with per-node slot
// placement. Stage outputs cross task boundaries through a query-scoped
// object-store exchange namespace (the grace-join spill format), so every
// stage is durable and re-runnable: a task lost to a node failure is retried
// on another node and deterministically rewrites the same exchange files,
// which is exactly the object-store block semantics the paper's retry story
// relies on. Output is byte-identical to the morsel executor at every DOP,
// join-memory budget and failure schedule — both paths share the morsel
// decomposition, the fragment operators and the merge tail
// (finishParallelSelect). See docs/DCP-QUERIES.md.

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/dcp"
	"polaris/internal/exec"
	"polaris/internal/objectstore"
)

// Task-ID layout: IDs are a pure function of the plan shape, so a failure
// schedule keyed by task ID is reproducible run over run. Stage strides keep
// the spaces disjoint for any realistic morsel or join count.
const dagStageStride = 1 << 20

func dagBuildID(j int) int    { return 1 + j }
func dagGatherID(j int) int   { return 1024 + j }
func dagScanID(i int) int     { return dagStageStride + i }
func dagProbeID(j, i int) int { return (j+2)*dagStageStride + i }

// Exchange chunk sizing mirrors the grace-join spill writer: chunks are
// bounded by budget/exchangeFanout, floored so pathological budgets still
// make progress. A tiny per-txn SetJoinMemoryBudget override therefore puts
// the same many-small-files pressure on the exchange that it puts on the
// spill path; budget 0 (unlimited) writes one file per stage output.
const (
	exchangeFanout   = 8
	minExchangeFlush = 4 << 10
)

// dagOut is the value a stage task hands its dependents: the exchange file
// names holding the task's output batch (empty = the morsel produced no
// rows, mirroring the morsel executor's nil entries) and the probe rows its
// bloom filter pruned. Pruned counts ride in the output rather than going
// straight to WorkStats so only the winning attempt of a retried task is
// counted — a failed attempt's side effects stand but its output (and with
// it the count) is discarded.
type dagOut struct {
	names  []string
	pruned int64
}

func dagOutOf(v any) *dagOut {
	if o, ok := v.(*dagOut); ok && o != nil {
		return o
	}
	return &dagOut{}
}

// dagExchange is the query's task-boundary exchange: a spill-format
// namespace in the object store plus the cost model for charging simulated
// remote IO to the task doing the transfer.
type dagExchange struct {
	dir   *objectstore.SpillDir
	model *compute.CostModel
	flush int64 // max bytes per chunk; <= 0 writes one chunk per batch
}

// write persists one stage output batch under prefix and returns the chunk
// names in order. Names are deterministic per (prefix, chunking), so a
// retried task overwrites its failed attempt's files with identical bytes.
func (ex *dagExchange) write(qc *dcp.Ctx, prefix string, b *colfile.Batch) ([]string, error) {
	if b == nil || b.NumRows() == 0 {
		return nil, nil
	}
	b = b.Materialize()
	var names []string
	put := func(chunk *colfile.Batch) error {
		data, err := colfile.MarshalBatch(chunk)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("%s/f%06d", prefix, len(names))
		if err := ex.dir.Put(name, data); err != nil {
			return err
		}
		qc.Charge(ex.model.RemoteWrite(int64(len(data))))
		names = append(names, name)
		return nil
	}
	if ex.flush <= 0 {
		if err := put(b); err != nil {
			return nil, err
		}
		return names, nil
	}
	buf := colfile.NewBatch(b.Schema)
	var mem int64
	for r := 0; r < b.NumRows(); r++ {
		for c := range buf.Cols {
			buf.Cols[c].Append(b.Cols[c], r)
		}
		mem += b.RowMemSize(r)
		if mem >= ex.flush {
			if err := put(buf); err != nil {
				return nil, err
			}
			buf = colfile.NewBatch(b.Schema)
			mem = 0
		}
	}
	if buf.NumRows() > 0 {
		if err := put(buf); err != nil {
			return nil, err
		}
	}
	return names, nil
}

// read concatenates a stage output's chunks back into one dense batch (nil
// when the producing morsel had no rows). qc is nil when the FE gathers the
// final stage — the transfer is then part of the statement, not a task.
func (ex *dagExchange) read(ctx context.Context, qc *dcp.Ctx, names []string) (*colfile.Batch, error) {
	var out *colfile.Batch
	for _, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		data, err := ex.dir.Get(name)
		if err != nil {
			return nil, err
		}
		if qc != nil {
			qc.Charge(ex.model.RemoteRead(int64(len(data))))
		}
		chunk, err := colfile.UnmarshalBatch(data)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = colfile.NewBatch(chunk.Schema)
		}
		out.AppendBatch(chunk)
	}
	return out, nil
}

// exchangeTee mirrors a build-side stream into the exchange as it drains, so
// the build stage's input is durable alongside its spill partitions.
type exchangeTee struct {
	in     exec.Operator
	ex     *dagExchange
	qc     *dcp.Ctx
	prefix string
	seq    int
}

func (t *exchangeTee) Schema() colfile.Schema { return t.in.Schema() }

func (t *exchangeTee) Next() (*colfile.Batch, error) {
	b, err := t.in.Next()
	if err != nil || b == nil {
		return b, err
	}
	if _, err := t.ex.write(t.qc, fmt.Sprintf("%s/b%06d", t.prefix, t.seq), b); err != nil {
		return nil, err
	}
	t.seq++
	return b, nil
}

// dagJoin is one join clause lowered for DAG execution. Everything here is
// resolved on the FE at graph-build time; only the operators themselves are
// opened inside the build task, freshly per attempt, so a retry re-drains a
// new stream instead of resuming a half-consumed one.
type dagJoin struct {
	rbase               *baseScanPlan
	rms                 *core.MorselScan
	leftKeys, rightKeys []int
	typ                 exec.JoinType
	cfg                 exec.SpillConfig
}

// openRight opens the build side as a fresh operator: the right table's
// per-file fragments concatenated in file order (the same global row order
// the serial scan streams), teed into the exchange for durability.
func (d *dagJoin) openRight(qc *dcp.Ctx, ex *dagExchange, j int) (exec.Operator, error) {
	ops := make([]exec.Operator, 0, len(d.rms.Morsels))
	for _, m := range d.rms.Morsels {
		op, err := d.rbase.fragment(m, d.rms, nil)
		if err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	if len(ops) == 0 {
		return exec.NewBatchList(d.rbase.schema, nil), nil
	}
	var in exec.Operator = &exec.UnionAll{Ins: ops}
	return &exchangeTee{in: in, ex: ex, qc: qc, prefix: fmt.Sprintf("build%d", j)}, nil
}

// dagState carries the build results across tasks. Builds publish under a
// mutex and every gather (and through it every probe) depends on all build
// tasks, so readers always observe the complete set. A retried build
// republishes an equivalent value — the inputs and the build algorithm are
// deterministic — so last-write-wins is safe.
type dagState struct {
	mu   sync.Mutex
	srcs []*exec.JoinSource
}

func (s *dagState) set(j int, src *exec.JoinSource) {
	s.mu.Lock()
	s.srcs[j] = src
	s.mu.Unlock()
}

func (s *dagState) get(j int) *exec.JoinSource {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.srcs[j]
}

func (s *dagState) anySpilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, src := range s.srcs {
		if src != nil && src.Spilled != nil {
			return true
		}
	}
	return false
}

// runSelectDAG executes a parallel SELECT as a DCP task DAG. It mirrors
// runSelectParallel stage for stage: the same morsel decomposition (sized by
// the configured parallelism), the same fragment operators, and the same
// merge tail — only the execution substrate differs, so output is
// byte-identical by construction. Returns handled=false only for an empty
// table, which falls back to the serial path for the schema.
//
// Shape mirroring is exact in both executor modes: while no build spills,
// every morsel runs probe→filter→suffix even when its scan came up empty
// (the streaming shape — a global aggregate still emits its zero partial);
// once any build spills, empty per-morsel batches skip downstream stages
// (the staged shape of runSpilledJoinStages). Which mode applies is decided
// at probe time from the completed builds, exactly like the morsel path
// decides it after draining the builds.
func runSelectDAG(tx *core.Txn, plan *physPlan, meta catalog.TableMeta, hint *exec.PruneHint, spill *joinSpill) (*colfile.Batch, bool, error) {
	st := plan.st
	dop, release := tx.LeaseDOP(tx.Parallelism())
	defer release()
	alias := aliasOf(st.From)
	mergeFree := len(st.Joins) == 0 && len(st.GroupBy) > 0 && selectHasAgg(st) &&
		groupByCoversDistCol(st, meta.DistributionCol, alias)

	var ms *core.MorselScan
	var err error
	if mergeFree {
		ms, err = tx.ScanCellMorsels(st.From.Name, st.From.AsOfSeq)
	} else {
		ms, err = tx.ScanMorsels(st.From.Name, st.From.AsOfSeq, tx.Parallelism()*morselsPerWorker)
	}
	if err != nil {
		return nil, true, err
	}
	if len(ms.Morsels) == 0 {
		return nil, false, nil // empty table: serial path supplies the schema
	}

	base, err := newBaseScanPlan(plan, st.From, ms)
	if err != nil {
		return nil, true, err
	}
	sc := singleTableScope(base.schema, alias)

	// Lower the joins: resolve keys, types and spill configs on the FE now;
	// the builds themselves run inside DAG tasks. Spill namespaces go on the
	// cleanup list immediately (hold) because the build outcome is only
	// known after the graph runs — possibly after retries.
	joins := make([]*dagJoin, 0, len(st.Joins))
	stageSchemas := []colfile.Schema{base.schema}
	for _, j := range st.Joins {
		rmeta, err := tx.Table(j.Table.Name)
		if err != nil {
			return nil, true, err
		}
		rms, err := tx.ScanMorsels(j.Table.Name, j.Table.AsOfSeq, 1)
		if err != nil {
			return nil, true, err
		}
		rbase, err := newBaseScanPlan(plan, j.Table, rms)
		if err != nil {
			return nil, true, err
		}
		rsc := singleTableScope(rbase.schema, aliasOf(j.Table))
		lk, rk, err := equiKeys(j.On, sc, rsc)
		if err != nil {
			return nil, true, err
		}
		typ := exec.InnerJoin
		if j.Left {
			typ = exec.LeftOuterJoin
		}
		distAligned := len(rk) == 1 && rmeta.DistributionCol != "" &&
			strings.EqualFold(rsc.schema[rk[0]].Name, rmeta.DistributionCol)
		cfg := spill.config(&boundJoin{distAligned: distAligned})
		spill.hold()
		joins = append(joins, &dagJoin{rbase: rbase, rms: rms, leftKeys: lk, rightKeys: rk, typ: typ, cfg: cfg})
		sc = &scope{
			schema: append(append(colfile.Schema{}, sc.schema...), rsc.schema...),
			quals:  append(append([]string{}, sc.quals...), rsc.quals...),
		}
		prev := stageSchemas[len(stageSchemas)-1]
		next := prev
		if typ != exec.SemiJoin {
			next = append(append(colfile.Schema{}, prev...), rbase.schema...)
		}
		stageSchemas = append(stageSchemas, next)
	}

	var pred exec.Expr
	var predProg *exec.Prog
	if st.Where != nil {
		pred, err = bind(st.Where, sc)
		if err != nil {
			return nil, true, err
		}
		if p, cerr := exec.Compile(pred, sc.schema); cerr == nil {
			predProg = p
		}
	}

	// The exchange namespace lives exactly as long as the statement:
	// joinSpill.finish deletes it on success and error alike, so neither a
	// completed query nor one killed mid-DAG leaks exchange files.
	ex := &dagExchange{dir: tx.NewSpillDir(), model: tx.CostModel()}
	if budget := tx.JoinMemoryBudget(); budget > 0 {
		ex.flush = budget / exchangeFanout
		if ex.flush < minExchangeFlush {
			ex.flush = minExchangeFlush
		}
	}
	spill.dirs = append(spill.dirs, ex.dir)

	M := len(ms.Morsels)
	J := len(joins)
	state := &dagState{srcs: make([]*exec.JoinSource, J)}

	runFragments := func(suffix func(exec.Operator) (exec.Operator, error)) ([]*colfile.Batch, error) {
		g := dcp.NewGraph()

		// Stage 0: one scan task per morsel. With no joins the whole
		// fragment (scan→filter→suffix) is fused into it.
		for i, m := range ms.Morsels {
			i, m := i, m
			if err := g.Add(&dcp.Task{
				ID: dagScanID(i), Name: fmt.Sprintf("scan-m%d", i), Pool: dcp.ReadPool,
				Exec: func(qc *dcp.Ctx) (any, error) {
					op, err := base.fragment(m, ms, hint)
					if err != nil {
						return nil, err
					}
					if J == 0 {
						if pred != nil {
							op = &exec.Filter{In: op, Pred: pred, Prog: predProg, Tel: ms.Tel}
						}
						if op, err = suffix(op); err != nil {
							return nil, err
						}
					}
					b, err := exec.CollectCtx(qc.Context(), op)
					if err != nil {
						return nil, err
					}
					names, err := ex.write(qc, fmt.Sprintf("s0/m%05d", i), b)
					if err != nil {
						return nil, err
					}
					return &dagOut{names: names}, nil
				},
			}); err != nil {
				return nil, err
			}
		}

		buildIDs := make([]int, J)
		for j := range joins {
			buildIDs[j] = dagBuildID(j)
		}
		prevID := dagScanID
		for j, dj := range joins {
			j, dj := j, dj
			prev := prevID
			leftSchema := stageSchemas[j]
			last := j == J-1

			if err := g.Add(&dcp.Task{
				ID: dagBuildID(j), Name: fmt.Sprintf("build-j%d", j), Pool: dcp.ReadPool,
				Exec: func(qc *dcp.Ctx) (any, error) {
					right, err := dj.openRight(qc, ex, j)
					if err != nil {
						return nil, err
					}
					src, err := exec.BuildGraceJoin(right, dj.rightKeys, dj.typ, tx.Parallelism(), dj.cfg, ms.Tel)
					if err != nil {
						return nil, err
					}
					state.set(j, src)
					return nil, nil
				},
			}); err != nil {
				return nil, err
			}

			// The gather barrier: for a spilled build it assembles the full
			// per-morsel batch list (nil entries preserved — the partition-
			// wise join's global ordinal merge depends on them) and runs the
			// partition-wise grace join; for an in-memory build it is a pure
			// synchronization point. It depends on every build so probes can
			// tell which executor shape (streaming vs staged) applies.
			gdeps := append([]int{}, buildIDs...)
			for i := 0; i < M; i++ {
				gdeps = append(gdeps, prev(i))
			}
			if err := g.Add(&dcp.Task{
				ID: dagGatherID(j), Name: fmt.Sprintf("gather-j%d", j), Pool: dcp.ReadPool, Deps: gdeps,
				Exec: func(qc *dcp.Ctx) (any, error) {
					src := state.get(j)
					if src == nil || src.Spilled == nil {
						return nil, nil // in-memory build: probes share the JoinTable
					}
					batches := make([]*colfile.Batch, M)
					for i := 0; i < M; i++ {
						b, err := ex.read(qc.Context(), qc, dagOutOf(qc.Inputs[prev(i)]).names)
						if err != nil {
							return nil, err
						}
						batches[i] = b
					}
					joined, err := src.Spilled.JoinBatches(batches, dj.leftKeys, leftSchema, dop)
					if err != nil {
						return nil, err
					}
					outs := make([]*dagOut, M)
					for i, b := range joined {
						names, err := ex.write(qc, fmt.Sprintf("g%d/m%05d", j, i), b)
						if err != nil {
							return nil, err
						}
						outs[i] = &dagOut{names: names}
					}
					return outs, nil
				},
			}); err != nil {
				return nil, err
			}

			for i := 0; i < M; i++ {
				i := i
				if err := g.Add(&dcp.Task{
					ID: dagProbeID(j, i), Name: fmt.Sprintf("probe-j%d-m%d", j, i), Pool: dcp.ReadPool,
					Deps: []int{dagGatherID(j), prev(i)},
					Exec: func(qc *dcp.Ctx) (any, error) {
						ctx := qc.Context()
						src := state.get(j)
						var localPruned atomic.Int64
						var op exec.Operator
						if src.Spilled != nil {
							outs, _ := qc.Inputs[dagGatherID(j)].([]*dagOut)
							var names []string
							if outs != nil {
								names = outs[i].names
							}
							if !last {
								// Forward: the joined batch is already durable
								// in the gather's exchange files.
								return &dagOut{names: names}, nil
							}
							b, err := ex.read(ctx, qc, names)
							if err != nil {
								return nil, err
							}
							if b == nil {
								return &dagOut{}, nil // staged shape: empty skips the suffix
							}
							op = exec.NewBatchSource(b)
						} else {
							b, err := ex.read(ctx, qc, dagOutOf(qc.Inputs[prev(i)]).names)
							if err != nil {
								return nil, err
							}
							if b == nil {
								if state.anySpilled() {
									return &dagOut{}, nil // staged shape: empty skips this stage
								}
								// Streaming shape: probe/filter/suffix run on the
								// empty stream too, like the fused morsel fragment.
								b = colfile.NewBatch(stageSchemas[j])
							}
							pr := &exec.Probe{In: exec.NewBatchSource(b), Table: src.Table, LeftKeys: dj.leftKeys, Tel: ms.Tel}
							if dj.typ != exec.LeftOuterJoin {
								pr.Bloom = src.Table.BloomFilter()
								pr.Pruned = &localPruned
							}
							op = pr
						}
						if last {
							if pred != nil {
								op = &exec.Filter{In: op, Pred: pred, Prog: predProg, Tel: ms.Tel}
							}
							var err error
							if op, err = suffix(op); err != nil {
								return nil, err
							}
						}
						b, err := exec.CollectCtx(ctx, op)
						if err != nil {
							return nil, err
						}
						names, err := ex.write(qc, fmt.Sprintf("p%d/m%05d", j, i), b)
						if err != nil {
							return nil, err
						}
						return &dagOut{names: names, pruned: localPruned.Load()}, nil
					},
				}); err != nil {
					return nil, err
				}
			}
			prevID = func(i int) int { return dagProbeID(j, i) }
		}

		stages := 1
		if J > 0 {
			stages = 1 + J
		}
		res, err := tx.RunQueryDAG(g, stages)
		for jx := range joins {
			spill.trackDAG(state.get(jx)) // completed builds count even if the run failed
		}
		if err != nil {
			return nil, err
		}

		// Fold the winning attempts' pruned-row counts into WorkStats (the
		// totals are row-based and so identical to the morsel path's).
		var pruned int64
		for j := 0; j < J; j++ {
			for i := 0; i < M; i++ {
				pruned += dagOutOf(res.Outputs[dagProbeID(j, i)]).pruned
			}
		}
		if pruned > 0 {
			tx.Work().RuntimeFilterRows.Add(pruned)
		}

		finalID := dagScanID
		if J > 0 {
			finalID = func(i int) int { return dagProbeID(J-1, i) }
		}
		fctx := tx.Context()
		batches := make([]*colfile.Batch, M)
		for i := 0; i < M; i++ {
			b, err := ex.read(fctx, nil, dagOutOf(res.Outputs[finalID(i)]).names)
			if err != nil {
				return nil, err
			}
			batches[i] = b
		}
		return batches, nil
	}

	return finishParallelSelect(tx, st, sc, ms.Tel, mergeFree, runFragments)
}
