package sql

import (
	"strings"
	"testing"
)

// statsFor folds the live-file sketches of a table inside a throwaway
// read transaction.
func statsFor(t *testing.T, s *Session, table string) *tableStats {
	t.Helper()
	tx := engineOf(s).Begin()
	defer tx.Rollback()
	ts, err := collectStats(tx, TableRef{Name: table, AsOfSeq: -1})
	if err != nil {
		t.Fatalf("collectStats(%s): %v", table, err)
	}
	return ts
}

func TestTableStatsFollowDML(t *testing.T) {
	s := testSession(t)
	mustExec(t, s, `CREATE TABLE st (k INT, v VARCHAR) WITH (DISTRIBUTION = k)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO st VALUES `)
	for i := 0; i < 100; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(" + itoa(int64(i%10)) + ", 'tag')")
	}
	mustExec(t, s, sb.String())

	ts := statsFor(t, s, "st")
	if ts.rows != 100 {
		t.Fatalf("rows = %d, want 100", ts.rows)
	}
	sk, ok := ts.colSketch("k")
	if !ok {
		t.Fatal("no sketch for column k")
	}
	if ndv := sk.NDV(); ndv < 9 || ndv > 11 {
		t.Fatalf("k NDV = %d, want ≈10", ndv)
	}
	if sk.Stats.MinInt == nil || *sk.Stats.MinInt != 0 || *sk.Stats.MaxInt != 9 {
		t.Fatalf("k min/max = %v/%v, want 0/9", sk.Stats.MinInt, sk.Stats.MaxInt)
	}

	// Deletes shrink the row count with no ANALYZE pass: the count is a fold
	// over LiveRows, even while sketches still describe the sealed files.
	mustExec(t, s, `DELETE FROM st WHERE k < 3`)
	if ts = statsFor(t, s, "st"); ts.rows != 70 {
		t.Fatalf("rows after delete = %d, want 70", ts.rows)
	}

	// Inserts through a second session/commit keep folding in.
	mustExec(t, s, `INSERT INTO st VALUES (100, 'late'), (101, 'late')`)
	if ts = statsFor(t, s, "st"); ts.rows != 72 {
		t.Fatalf("rows after insert = %d, want 72", ts.rows)
	}
	sk, _ = ts.colSketch("k")
	if sk.Stats.MaxInt == nil || *sk.Stats.MaxInt != 101 {
		t.Fatalf("k max after insert = %v, want 101", sk.Stats.MaxInt)
	}
}

func TestEstimatorSanityBounds(t *testing.T) {
	s := testSession(t)
	mustExec(t, s, `CREATE TABLE est (k INT, f FLOAT) WITH (DISTRIBUTION = k)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO est VALUES `)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(" + itoa(int64(i%20)) + ", 1.5)")
	}
	mustExec(t, s, sb.String())
	ts := statsFor(t, s, "est")

	where := func(q string) Expr {
		t.Helper()
		st, err := Parse("SELECT * FROM est WHERE " + q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		return st.(*SelectStmt).Where
	}
	cases := []struct {
		pred   string
		lo, hi float64
	}{
		{"k = 7", 5, 25},           // 1/NDV ≈ 1/20 of 200 rows
		{"k < 5", 20, 90},          // range interpolation over [0, 19]
		{"k = 7 AND k < 5", 1, 25}, // conjunction shrinks, floor at 1
		{"k = 999 OR k = 7", 5, 60},
	}
	for _, c := range cases {
		got := estimateRows(ts, splitAnd(where(c.pred)))
		if got < c.lo || got > c.hi {
			t.Errorf("estimateRows(%q) = %.1f, want within [%.0f, %.0f]", c.pred, got, c.lo, c.hi)
		}
	}
	// No predicate: the full row count. No stats: the unknown sentinel.
	if got := estimateRows(ts, nil); got != 200 {
		t.Errorf("estimateRows(no pred) = %.1f, want 200", got)
	}
	if got := estimateRows(nil, nil); got >= 0 {
		t.Errorf("estimateRows(nil stats) = %.1f, want negative (unknown)", got)
	}
	// Estimates never exceed the table and never go below one row.
	if got := estimateRows(ts, splitAnd(where("k = 1 AND k = 2 AND k = 3 AND f < 0.0"))); got < 1 {
		t.Errorf("conjunction estimate = %.1f, want ≥ 1", got)
	}
}

// explainLines runs EXPLAIN and returns one string per plan row.
func explainLines(t *testing.T, s *Session, q string) []string {
	t.Helper()
	res := mustExec(t, s, "EXPLAIN "+q)
	lines := make([]string, res.Batch.NumRows())
	for i := range lines {
		lines[i] = res.Batch.Cols[0].Strs[i]
	}
	return lines
}

func TestExplainGoldenPlans(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE orders (oid INT, item_id INT, qty INT) WITH (DISTRIBUTION = oid)`)
	mustExec(t, s, `INSERT INTO orders VALUES (100, 1, 3), (101, 2, 1), (102, 1, 2), (103, 99, 5)`)

	got := explainLines(t, s, `SELECT o.oid, i.name FROM orders o JOIN items i ON o.item_id = i.id WHERE o.qty > 1 AND i.price < 5.0 ORDER BY o.oid LIMIT 2`)
	want := []string{
		// orders references every column, so no [cols=] pruning clause there;
		// items prunes to the referenced subset (join key + output + pushed).
		"scan orders AS o [pushed=(o.qty > 1)] [est=3 rows]",
		"join build items AS i [cols=id, name, price] [pushed=(i.price < 5)] [on=(o.item_id = i.id)] [inner, bloom] [est=2 rows]",
		"sort [o.oid]",
		"limit 2",
		"project [oid, name]",
	}
	if len(got) != len(want) {
		t.Fatalf("explain lines = %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}

	// Aggregation + HAVING renders its own operator row; a bare single-table
	// query pushes the whole WHERE and keeps no residual filter line.
	got = explainLines(t, s, `SELECT name, COUNT(*) AS n FROM items WHERE active = TRUE GROUP BY name HAVING COUNT(*) > 0`)
	want = []string{
		"scan items [cols=name, active] [pushed=(active = TRUE)] [est=3 rows]",
		"aggregate [groups=name] [having=(COUNT(*) > 0)]",
		"project [name, n]",
	}
	if len(got) != len(want) {
		t.Fatalf("agg explain lines = %d, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("agg line %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

func TestExplainReorderMarksSwappedBuild(t *testing.T) {
	s := testSession(t)
	// big (200 rows) joined from small (5 rows): the planner must flip the
	// base to big and build from small, marking the moved build.
	mustExec(t, s, `CREATE TABLE small (k INT, tag VARCHAR) WITH (DISTRIBUTION = k)`)
	mustExec(t, s, `INSERT INTO small VALUES (1, 'a'), (2, 'b'), (3, 'c'), (4, 'd'), (5, 'e')`)
	mustExec(t, s, `CREATE TABLE big (k INT, v INT) WITH (DISTRIBUTION = k)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO big VALUES `)
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(" + itoa(int64(i%5+1)) + ", " + itoa(int64(i)) + ")")
	}
	mustExec(t, s, sb.String())

	const q = `SELECT s.tag, b.v FROM small s JOIN big b ON s.k = b.k ORDER BY b.v, s.tag`
	lines := explainLines(t, s, q)
	if !strings.HasPrefix(lines[0], "scan big AS b") {
		t.Fatalf("base scan = %q, want big (the larger side)", lines[0])
	}
	if !strings.Contains(lines[1], "join build small AS s") || !strings.Contains(lines[1], "[reordered]") {
		t.Fatalf("build line = %q, want reordered small build", lines[1])
	}

	// Executing the same shape bumps the swap counter and returns the same
	// rows the syntactic order would have.
	before := engineOf(s).Work.BuildSideSwaps.Load()
	res := mustExec(t, s, q)
	if res.Batch.NumRows() != 200 {
		t.Fatalf("reordered join rows = %d, want 200", res.Batch.NumRows())
	}
	if got := engineOf(s).Work.BuildSideSwaps.Load(); got <= before {
		t.Fatalf("BuildSideSwaps = %d after reordered join, want > %d", got, before)
	}
}

func TestPlannerWorkCounters(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	mustExec(t, s, `CREATE TABLE orders (oid INT, item_id INT, qty INT) WITH (DISTRIBUTION = oid)`)
	var sb strings.Builder
	sb.WriteString(`INSERT INTO orders VALUES `)
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		// Only item_id 1 and 2 exist in items; ids ≥ 100 never match, so the
		// build-side bloom filter prunes those probe rows.
		sb.WriteString("(" + itoa(int64(i)) + ", " + itoa(int64(100+i%100)) + ", 1)")
	}
	sb.WriteString(", (900, 1, 3), (901, 2, 1)")
	mustExec(t, s, sb.String())

	w := &engineOf(s).Work
	pushedBefore := w.PushedFilters.Load()
	mustExec(t, s, `SELECT id FROM items WHERE price > 1.0 AND active = TRUE`)
	if got := w.PushedFilters.Load(); got < pushedBefore+2 {
		t.Fatalf("PushedFilters = %d, want ≥ %d (both conjuncts pushed)", got, pushedBefore+2)
	}

	bloomBefore := w.RuntimeFilterRows.Load()
	res := mustExec(t, s, `SELECT o.oid, i.name FROM orders o JOIN items i ON o.item_id = i.id ORDER BY o.oid`)
	if res.Batch.NumRows() != 2 {
		t.Fatalf("join rows = %d, want 2", res.Batch.NumRows())
	}
	if got := w.RuntimeFilterRows.Load(); got <= bloomBefore {
		t.Fatalf("RuntimeFilterRows = %d, want > %d (bloom must prune unmatched probe rows)", got, bloomBefore)
	}
}

func TestExplainDoesNotExecuteOrCount(t *testing.T) {
	s := testSession(t)
	seed(t, s)
	w := &engineOf(s).Work
	swaps, pushed := w.BuildSideSwaps.Load(), w.PushedFilters.Load()
	res := mustExec(t, s, `EXPLAIN SELECT * FROM items WHERE id = 1`)
	if res.Batch.NumRows() == 0 {
		t.Fatal("EXPLAIN returned no plan rows")
	}
	if cols := res.Batch.Schema; len(cols) != 1 || cols[0].Name != "plan" {
		t.Fatalf("EXPLAIN schema = %v, want single plan column", cols)
	}
	if w.BuildSideSwaps.Load() != swaps || w.PushedFilters.Load() != pushed {
		t.Fatal("EXPLAIN must not move the planner work counters")
	}
}
