package sql

// Tests for distributed query execution (runSelectDAG): the failure-sweep
// harness proving byte-identity of DAG output against the serial reference
// under every single-task kill schedule, plus budget propagation,
// cancellation, counter determinism and the EXPLAIN annotation. See
// docs/DCP-QUERIES.md for the execution model under test.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
)

// dagEnv bundles an engine with its object store so tests can assert on
// spill-namespace hygiene after statements complete or fail.
type dagEnv struct {
	store *objectstore.Store
	eng   *core.Engine
	sess  *Session
}

// newDagEnv builds a 4-node fabric engine with the distributed-query path
// enabled at DOP 4 by default; mut adjusts options before the engine is
// constructed (set Parallelism, budgets, or a failure injector there).
func newDagEnv(t *testing.T, mut func(*core.Options)) *dagEnv {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Distributions = 4
	opts.RowsPerFile = 100
	opts.RowsPerGroup = 25
	opts.Parallelism = 4
	opts.DistributedQueries = true
	if mut != nil {
		mut(&opts)
	}
	store := objectstore.New()
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 2})
	eng := core.NewEngine(catalog.NewDB(), store, fabric, opts)
	return &dagEnv{store: store, eng: eng, sess: NewSession(eng)}
}

// seedDag loads a two-table dataset large enough to split into many morsels:
// 600 orders across 4 distributions (several files and row groups each) and
// 17 customers covering every orders.cust value. All values are derived from
// the row index, so every environment seeds identical bytes.
func seedDag(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE orders (id INT, cust INT, qty INT, amount FLOAT) WITH (DISTRIBUTION = cust, SORTCOL = id)`)
	for chunk := 0; chunk < 3; chunk++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO orders VALUES ")
		for i := 0; i < 200; i++ {
			id := chunk*200 + i
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d, %d.%02d)", id, id%17, id%7, id%23, id%100)
		}
		mustExec(t, s, sb.String())
	}
	var sb strings.Builder
	mustExec(t, s, `CREATE TABLE customers (cid INT, region VARCHAR) WITH (DISTRIBUTION = cid, SORTCOL = cid)`)
	sb.WriteString("INSERT INTO customers VALUES ")
	for c := 0; c < 17; c++ {
		if c > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'region-%02d')", c, c%5)
	}
	mustExec(t, s, sb.String())
}

// renderResult executes q and returns both a human-readable rendering of the
// result rows and the batch's exact serialized bytes. Byte-identity claims in
// this file compare the serialized form; the text rendering exists for
// failure messages.
func renderResult(t *testing.T, s *Session, q string) (string, []byte) {
	t.Helper()
	res, err := s.Exec(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	if res.Batch == nil {
		t.Fatalf("exec %q: nil result batch", q)
	}
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns(), ","))
	for i := 0; i < res.Batch.NumRows(); i++ {
		fmt.Fprintf(&sb, "\n%v", res.Batch.Row(i))
	}
	data, err := colfile.MarshalBatch(res.Batch.Materialize())
	if err != nil {
		t.Fatalf("marshal result of %q: %v", q, err)
	}
	return sb.String(), data
}

// assertNoSpillLeaks fails if any blob remains under the spill/exchange
// namespace: DAG exchanges and grace-join spills must be cleaned on success
// and on every failure path alike.
func assertNoSpillLeaks(t *testing.T, store *objectstore.Store, when string) {
	t.Helper()
	if leaked := store.List(objectstore.SpillPrefix); len(leaked) > 0 {
		t.Fatalf("%s: %d spill/exchange blobs leaked, e.g. %s", when, len(leaked), leaked[0])
	}
}

// sweepQueries exercise the three stage shapes the DAG planner lowers:
// scan+aggregate (single stage), join+sort (scan/build/gather/probe), and
// join+aggregate. They use only integer and string outputs, so the results
// are byte-identical across every DOP including the serial reference.
var sweepQueries = []string{
	`SELECT cust, COUNT(*), SUM(qty), MIN(id), MAX(id) FROM orders WHERE qty > 1 GROUP BY cust ORDER BY cust`,
	`SELECT o.id, c.region, o.qty FROM orders o JOIN customers c ON o.cust = c.cid WHERE o.qty > 3 AND o.id < 120 ORDER BY o.id`,
	`SELECT c.region, COUNT(*), SUM(o.qty) FROM orders o JOIN customers c ON o.cust = c.cid GROUP BY c.region ORDER BY c.region`,
}

// TestDAGFailureSweepByteIdentity is the failure-sweep property test. For
// each DOP x join-budget cell it first runs every sweep query cleanly (the
// discovery run records the full task-ID set via the injector), then re-runs
// the query once per task ID with that task's first attempt killed. Every
// run — clean or fault-injected — must produce bytes identical to the serial
// in-process reference, leak no exchange files, and each kill schedule must
// register at least one DagRetries tick.
func TestDAGFailureSweepByteIdentity(t *testing.T) {
	ref := newDagEnv(t, func(o *core.Options) {
		o.Parallelism = 1
		o.DistributedQueries = false
	})
	seedDag(t, ref.sess)
	wantText := make([]string, len(sweepQueries))
	wantBytes := make([][]byte, len(sweepQueries))
	for i, q := range sweepQueries {
		wantText[i], wantBytes[i] = renderResult(t, ref.sess, q)
	}

	dops := []int{1, 4, 8}
	budgets := []int64{0, 2048}
	if testing.Short() {
		dops = []int{4}
	}
	for _, dop := range dops {
		for _, budget := range budgets {
			t.Run(fmt.Sprintf("dop=%d,budget=%d", dop, budget), func(t *testing.T) {
				var mu sync.Mutex
				seen := map[int]bool{}
				killTask := -1
				inject := func(taskID, attempt int, node *compute.Node) error {
					mu.Lock()
					defer mu.Unlock()
					seen[taskID] = true
					if taskID == killTask && attempt == 1 {
						return fmt.Errorf("injected node failure: task %d attempt %d", taskID, attempt)
					}
					return nil
				}
				env := newDagEnv(t, func(o *core.Options) {
					o.Parallelism = dop
					o.JoinMemoryBudget = budget
					o.QueryFailureInjector = inject
				})
				seedDag(t, env.sess)
				for qi, q := range sweepQueries {
					mu.Lock()
					killTask = -1
					for k := range seen {
						delete(seen, k)
					}
					mu.Unlock()

					gotText, gotBytes := renderResult(t, env.sess, q)
					if gotText != wantText[qi] {
						t.Fatalf("query %d: clean DAG run diverged from serial reference\n got: %s\nwant: %s", qi, gotText, wantText[qi])
					}
					if !bytes.Equal(gotBytes, wantBytes[qi]) {
						t.Fatalf("query %d: clean run rows match but serialized bytes differ", qi)
					}
					assertNoSpillLeaks(t, env.store, fmt.Sprintf("query %d clean run", qi))

					mu.Lock()
					ids := make([]int, 0, len(seen))
					for id := range seen {
						ids = append(ids, id)
					}
					mu.Unlock()
					sort.Ints(ids)
					if dop > 1 && len(ids) == 0 {
						t.Fatalf("query %d: distributed path produced no DAG tasks at dop %d", qi, dop)
					}
					if testing.Short() && len(ids) > 8 {
						ids = ids[:8]
					}

					retriesBefore := env.eng.Work.DagRetries.Load()
					for _, id := range ids {
						mu.Lock()
						killTask = id
						mu.Unlock()
						gotText, gotBytes := renderResult(t, env.sess, q)
						if gotText != wantText[qi] {
							t.Fatalf("query %d: output diverged when task %d failed on attempt 1\n got: %s\nwant: %s", qi, id, gotText, wantText[qi])
						}
						if !bytes.Equal(gotBytes, wantBytes[qi]) {
							t.Fatalf("query %d: serialized bytes diverged when task %d failed on attempt 1", qi, id)
						}
						assertNoSpillLeaks(t, env.store, fmt.Sprintf("query %d after killing task %d", qi, id))
					}
					mu.Lock()
					killTask = -1
					mu.Unlock()
					if n := int64(len(ids)); n > 0 {
						if got := env.eng.Work.DagRetries.Load() - retriesBefore; got < n {
							t.Fatalf("query %d: observed %d retries across %d single-kill schedules, want >= %d", qi, got, n, n)
						}
					}
				}
			})
		}
	}
}

// TestDAGMatchesMorselExecutorFloats compares the DAG path against the
// in-process morsel executor at the same DOP for float aggregation, where
// summation order matters: both paths must combine partials in morsel order
// and therefore agree bitwise.
func TestDAGMatchesMorselExecutorFloats(t *testing.T) {
	q := `SELECT cust, SUM(amount), AVG(amount) FROM orders GROUP BY cust ORDER BY cust`
	for _, dop := range []int{4, 8} {
		morsel := newDagEnv(t, func(o *core.Options) {
			o.Parallelism = dop
			o.DistributedQueries = false
		})
		seedDag(t, morsel.sess)
		wantText, wantBytes := renderResult(t, morsel.sess, q)

		dag := newDagEnv(t, func(o *core.Options) { o.Parallelism = dop })
		seedDag(t, dag.sess)
		gotText, gotBytes := renderResult(t, dag.sess, q)
		if gotText != wantText || !bytes.Equal(gotBytes, wantBytes) {
			t.Fatalf("dop %d: DAG float aggregation diverged from morsel executor\n got: %s\nwant: %s", dop, gotText, wantText)
		}
	}
}

// TestDAGJoinBudgetOverridePropagates: a per-session SetJoinMemoryBudget
// override must reach the DAG build stage — the engine-wide budget is
// unlimited here, so the spill can only come from the override.
func TestDAGJoinBudgetOverridePropagates(t *testing.T) {
	q := `SELECT o.id, c.region FROM orders o JOIN customers c ON o.cust = c.cid WHERE o.qty > 2 ORDER BY o.id`
	ref := newDagEnv(t, func(o *core.Options) {
		o.Parallelism = 1
		o.DistributedQueries = false
	})
	seedDag(t, ref.sess)
	wantText, wantBytes := renderResult(t, ref.sess, q)

	env := newDagEnv(t, nil) // engine-wide budget: unlimited
	seedDag(t, env.sess)
	env.sess.SetJoinMemoryBudget(256)
	spillsBefore := env.eng.Work.JoinSpills.Load()
	gotText, gotBytes := renderResult(t, env.sess, q)
	if gotText != wantText || !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("budget-constrained DAG join diverged from reference\n got: %s\nwant: %s", gotText, wantText)
	}
	if env.eng.Work.JoinSpills.Load() == spillsBefore {
		t.Fatal("session join-budget override did not reach the DAG build stage: no spill recorded")
	}
	assertNoSpillLeaks(t, env.store, "after budget-constrained DAG join")
}

// TestDAGSurvivesNodeDeath kills the first task's node for real (not just a
// simulated error): the retry must re-place onto a surviving node and the
// output must still match the serial reference.
func TestDAGSurvivesNodeDeath(t *testing.T) {
	q := sweepQueries[2]
	ref := newDagEnv(t, func(o *core.Options) {
		o.Parallelism = 1
		o.DistributedQueries = false
	})
	seedDag(t, ref.sess)
	wantText, wantBytes := renderResult(t, ref.sess, q)

	var mu sync.Mutex
	armed := false
	killed := false
	env := newDagEnv(t, func(o *core.Options) {
		o.QueryFailureInjector = func(taskID, attempt int, node *compute.Node) error {
			mu.Lock()
			defer mu.Unlock()
			if armed && !killed {
				killed = true
				node.Kill()
				return fmt.Errorf("node %v lost mid-task", node)
			}
			return nil
		}
	})
	seedDag(t, env.sess)
	mu.Lock()
	armed = true // seeding done; arm the kill for the query's first task
	mu.Unlock()
	gotText, gotBytes := renderResult(t, env.sess, q)
	if gotText != wantText || !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("DAG output diverged after node death\n got: %s\nwant: %s", gotText, wantText)
	}
	if env.eng.Work.DagRetries.Load() == 0 {
		t.Fatal("node death did not register a DAG retry")
	}
	assertNoSpillLeaks(t, env.store, "after node-death run")
}

// TestDAGHardFailureCleansUp: when every attempt of every task fails, the
// statement must error out, release its fabric lease, leave no exchange or
// spill files behind, and not advance the success-only DAG counters.
func TestDAGHardFailureCleansUp(t *testing.T) {
	env := newDagEnv(t, func(o *core.Options) {
		o.QueryFailureInjector = func(taskID, attempt int, node *compute.Node) error {
			return fmt.Errorf("persistent failure: task %d attempt %d", taskID, attempt)
		}
	})
	seedDag(t, env.sess)
	if _, err := env.sess.Exec(sweepQueries[1]); err == nil {
		t.Fatal("want error from persistently failing DAG")
	}
	assertNoSpillLeaks(t, env.store, "after failed statement")
	if got := env.eng.Fabric.LeasedSlots(); got != 0 {
		t.Fatalf("%d fabric slots still leased after failed statement", got)
	}
	if got := env.eng.Work.DagTasks.Load(); got != 0 {
		t.Fatalf("DagTasks = %d after failed run, want 0 (success-only counter)", got)
	}
}

// TestDAGStatementCancel drives cancellation end to end through the SQL
// surface: the injector cancels the statement context after the first task
// completes; the statement must return a context.Canceled error, clean up
// all spill state and release its lease.
func TestDAGStatementCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	env := newDagEnv(t, func(o *core.Options) {
		o.QueryFailureInjector = func(taskID, attempt int, node *compute.Node) error {
			cancel()
			return fmt.Errorf("node lost while canceling")
		}
	})
	seedDag(t, env.sess)
	_, err := env.sess.ExecWith(sweepQueries[1], ExecOpts{Ctx: ctx})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	assertNoSpillLeaks(t, env.store, "after canceled statement")
	if got := env.eng.Fabric.LeasedSlots(); got != 0 {
		t.Fatalf("%d fabric slots still leased after canceled statement", got)
	}
}

// TestDAGCountersDeterministic: identical runs advance DagTasks/DagStages by
// identical deltas (retry-invariant task accounting), with zero retries on a
// clean run. A one-join query is exactly two stages.
func TestDAGCountersDeterministic(t *testing.T) {
	env := newDagEnv(t, nil)
	seedDag(t, env.sess)
	q := sweepQueries[2]
	type snap struct{ tasks, stages, retries int64 }
	take := func() snap {
		return snap{env.eng.Work.DagTasks.Load(), env.eng.Work.DagStages.Load(), env.eng.Work.DagRetries.Load()}
	}
	s0 := take()
	mustExec(t, env.sess, q)
	s1 := take()
	mustExec(t, env.sess, q)
	s2 := take()
	d1 := snap{s1.tasks - s0.tasks, s1.stages - s0.stages, s1.retries - s0.retries}
	d2 := snap{s2.tasks - s1.tasks, s2.stages - s1.stages, s2.retries - s1.retries}
	if d1 != d2 {
		t.Fatalf("counter deltas differ across identical runs: %+v vs %+v", d1, d2)
	}
	if d1.tasks == 0 || d1.stages != 2 {
		t.Fatalf("join query delta tasks=%d stages=%d, want tasks>0 stages=2", d1.tasks, d1.stages)
	}
	if d1.retries != 0 {
		t.Fatalf("clean runs recorded %d retries, want 0", d1.retries)
	}
}

// TestExplainDagAnnotation pins the [dag] marker: present on the base scan
// when the distributed path will execute the statement, absent for bare
// LIMIT statements (which stay on the streaming path) and when the flag is
// off.
func TestExplainDagAnnotation(t *testing.T) {
	env := newDagEnv(t, nil)
	seedDag(t, env.sess)
	res := mustExec(t, env.sess, `EXPLAIN `+sweepQueries[1])
	if line := res.Batch.Row(0)[0].(string); !strings.Contains(line, " [dag]") {
		t.Fatalf("scan line %q missing [dag] annotation", line)
	}
	res = mustExec(t, env.sess, `EXPLAIN SELECT id FROM orders LIMIT 3`)
	if line := res.Batch.Row(0)[0].(string); strings.Contains(line, "[dag]") {
		t.Fatalf("bare LIMIT scan line %q should not carry [dag]", line)
	}

	off := newDagEnv(t, func(o *core.Options) { o.DistributedQueries = false })
	seedDag(t, off.sess)
	res = mustExec(t, off.sess, `EXPLAIN `+sweepQueries[0])
	if line := res.Batch.Row(0)[0].(string); strings.Contains(line, "[dag]") {
		t.Fatalf("flag-off scan line %q should not carry [dag]", line)
	}
}
