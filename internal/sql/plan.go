package sql

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/core"
	"polaris/internal/exec"
	"polaris/internal/objectstore"
)

// Result is the outcome of executing one statement.
type Result struct {
	// Batch holds query output (nil for DML/DDL).
	Batch *colfile.Batch
	// RowsAffected counts DML effect.
	RowsAffected int64
	// Message is a human-readable DDL/utility outcome.
	Message string
	// SimTime is the simulated time the statement consumed (set by Session).
	SimTime time.Duration
}

// Columns returns the output column names.
func (r *Result) Columns() []string {
	if r.Batch == nil {
		return nil
	}
	out := make([]string, len(r.Batch.Schema))
	for i, f := range r.Batch.Schema {
		out[i] = f.Name
	}
	return out
}

// Execute compiles and runs one parsed statement inside the transaction.
// Transaction-control statements are the session's job, not Execute's.
func Execute(tx *core.Txn, st Statement) (*Result, error) {
	switch s := st.(type) {
	case *SelectStmt:
		b, err := runSelect(tx, s)
		if err != nil {
			return nil, err
		}
		return &Result{Batch: b}, nil
	case *ExplainStmt:
		return runExplain(tx, s.Query)
	case *InsertStmt:
		return runInsert(tx, s)
	case *UpdateStmt:
		return runUpdate(tx, s)
	case *DeleteStmt:
		return runDelete(tx, s)
	case *CreateTableStmt:
		if s.IfNotExists {
			if _, err := tx.Table(s.Name); err == nil {
				return &Result{Message: "table exists"}, nil
			}
		}
		if _, err := tx.CreateTable(s.Name, s.Schema, s.DistCol, s.SortCol); err != nil {
			return nil, err
		}
		return &Result{Message: "table created"}, nil
	case DropTableStmt:
		if err := tx.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{Message: "table dropped"}, nil
	case CloneStmt:
		if _, err := tx.CloneTable(s.Source, s.Dest, s.AsOfSeq); err != nil {
			return nil, err
		}
		return &Result{Message: "table cloned"}, nil
	case RestoreStmt:
		if err := tx.RestoreTableAsOf(s.Table, s.AsOfSeq); err != nil {
			return nil, err
		}
		return &Result{Message: "table restored"}, nil
	case ShowStmt:
		return runShow(tx, s)
	case MaintenanceStmt:
		switch s.What {
		case "compact":
			res, err := tx.CompactTable(s.Table)
			if err != nil {
				return nil, err
			}
			return &Result{Message: fmt.Sprintf("compacted %d files into %d", res.InputFiles, res.OutputFiles)}, nil
		case "checkpoint":
			path, err := tx.CheckpointTable(s.Table)
			if err != nil {
				return nil, err
			}
			return &Result{Message: "checkpoint " + path}, nil
		}
		return nil, fmt.Errorf("sql: %s must run through a session", s.What)
	case BeginStmt, CommitStmt, RollbackStmt:
		return nil, errors.New("sql: transaction control must run through a session")
	default:
		return nil, fmt.Errorf("sql: unsupported statement %T", st)
	}
}

// scope maps qualified and bare column names to offsets in the current
// operator's output schema.
type scope struct {
	schema colfile.Schema
	// quals[i] is the table alias each column came from.
	quals []string
}

func (s *scope) resolve(c ColName) (int, error) {
	found := -1
	for i, f := range s.schema {
		if !strings.EqualFold(f.Name, c.Name) {
			continue
		}
		if c.Table != "" && !strings.EqualFold(s.quals[i], c.Table) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("sql: ambiguous column %q", c.Name)
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("sql: unknown column %q", displayName(c))
	}
	return found, nil
}

func displayName(c ColName) string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// bind lowers an AST expression to a vectorized exec expression over scope.
// Aggregate functions are rejected here; the aggregate path replaces them
// before binding.
func bind(e Expr, sc *scope) (exec.Expr, error) {
	switch x := e.(type) {
	case ColName:
		idx, err := sc.resolve(x)
		if err != nil {
			return nil, err
		}
		return exec.ColRef{Idx: idx, Name: displayName(x)}, nil
	case Lit:
		return exec.Const{Val: x.Val}, nil
	case BinExpr:
		l, err := bind(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := bind(x.R, sc)
		if err != nil {
			return nil, err
		}
		kind, ok := binOpKind(x.Op)
		if !ok {
			return nil, fmt.Errorf("sql: unsupported operator %q", x.Op)
		}
		return exec.Bin{Kind: kind, L: l, R: r}, nil
	case NotExpr:
		inner, err := bind(x.E, sc)
		if err != nil {
			return nil, err
		}
		return exec.Not{E: inner}, nil
	case IsNullExpr:
		inner, err := bind(x.E, sc)
		if err != nil {
			return nil, err
		}
		return exec.IsNull{E: inner, Negate: x.Negate}, nil
	case LikeExpr:
		inner, err := bind(x.E, sc)
		if err != nil {
			return nil, err
		}
		var out exec.Expr = exec.Like{E: inner, Pattern: x.Pattern}
		if x.Negate {
			out = exec.Not{E: out}
		}
		return out, nil
	case InExpr:
		inner, err := bind(x.E, sc)
		if err != nil {
			return nil, err
		}
		return exec.InList{E: inner, Vals: x.Vals, Negate: x.Negate}, nil
	case BetweenExpr:
		inner, err := bind(x.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := bind(x.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := bind(x.Hi, sc)
		if err != nil {
			return nil, err
		}
		return exec.Bin{Kind: exec.OpAnd,
			L: exec.Bin{Kind: exec.OpGe, L: inner, R: lo},
			R: exec.Bin{Kind: exec.OpLe, L: inner, R: hi},
		}, nil
	case FuncExpr:
		return nil, fmt.Errorf("sql: aggregate %s not allowed here", x.Name)
	default:
		return nil, fmt.Errorf("sql: unsupported expression %T", e)
	}
}

func binOpKind(op string) (exec.BinKind, bool) {
	switch op {
	case "+":
		return exec.OpAdd, true
	case "-":
		return exec.OpSub, true
	case "*":
		return exec.OpMul, true
	case "/":
		return exec.OpDiv, true
	case "%":
		return exec.OpMod, true
	case "=":
		return exec.OpEq, true
	case "<>", "!=":
		return exec.OpNe, true
	case "<":
		return exec.OpLt, true
	case "<=":
		return exec.OpLe, true
	case ">":
		return exec.OpGt, true
	case ">=":
		return exec.OpGe, true
	case "AND":
		return exec.OpAnd, true
	case "OR":
		return exec.OpOr, true
	}
	return 0, false
}

// scanTable opens a table scan and returns its operator plus scope. The
// physical plan (optional) projects the scan to the referenced columns and
// pushes the relation's WHERE conjuncts into it.
func scanTable(tx *core.Txn, ref TableRef, hint *exec.PruneHint, plan *physPlan) (exec.Operator, *scope, error) {
	op, _, err := tx.Scan(ref.Name, core.ScanOptions{Columns: plan.colsFor(ref), AsOfSeq: ref.AsOfSeq, Prune: hint})
	if err != nil {
		return nil, nil, err
	}
	alias := ref.Alias
	if alias == "" {
		alias = ref.Name
	}
	schema := op.Schema()
	quals := make([]string, len(schema))
	for i := range quals {
		quals[i] = alias
	}
	sc := &scope{schema: schema, quals: quals}
	op, err = applyPushdown(op, sc, plan.pushedFor(ref))
	if err != nil {
		return nil, nil, err
	}
	return op, sc, nil
}

// prunableRange extracts a zone-map hint from the WHERE clause: a conjunct of
// the form col >= lo / col <= hi / col = v / col BETWEEN over an int column of
// the base table.
func prunableRange(where Expr, meta catalog.TableMeta, alias string) *exec.PruneHint {
	lo := map[string]int64{}
	hi := map[string]int64{}
	var walk func(e Expr)
	record := func(c ColName, op string, v int64) {
		if c.Table != "" && !strings.EqualFold(c.Table, alias) {
			return
		}
		idx := meta.Schema.ColIndex(c.Name)
		if idx < 0 || meta.Schema[idx].Type != colfile.Int64 {
			return
		}
		switch op {
		case ">=", ">":
			if cur, ok := lo[c.Name]; !ok || v > cur {
				lo[c.Name] = v
			}
		case "<=", "<":
			if cur, ok := hi[c.Name]; !ok || v < cur {
				hi[c.Name] = v
			}
		case "=":
			lo[c.Name], hi[c.Name] = v, v
		}
	}
	walk = func(e Expr) {
		switch x := e.(type) {
		case BinExpr:
			if x.Op == "AND" {
				walk(x.L)
				walk(x.R)
				return
			}
			c, cok := x.L.(ColName)
			l, lok := x.R.(Lit)
			if cok && lok {
				if v, ok := l.Val.(int64); ok {
					record(c, x.Op, v)
				}
			}
		case BetweenExpr:
			c, cok := x.E.(ColName)
			llo, lok := x.Lo.(Lit)
			lhi, hok := x.Hi.(Lit)
			if cok && lok && hok {
				vlo, ok1 := llo.Val.(int64)
				vhi, ok2 := lhi.Val.(int64)
				if ok1 && ok2 {
					record(c, ">=", vlo)
					record(c, "<=", vhi)
				}
			}
		}
	}
	if where == nil {
		return nil
	}
	walk(where)
	// Pick the lexicographically first bounded column so the same WHERE
	// clause always yields the same hint (and the same EXPLAIN), whatever
	// order the bounds were recorded in.
	loCols := make([]string, 0, len(lo))
	for col := range lo {
		loCols = append(loCols, col)
	}
	sort.Strings(loCols)
	for _, col := range loCols {
		h := int64(1<<62 - 1)
		if v, ok := hi[col]; ok {
			h = v
		}
		return &exec.PruneHint{Col: col, Lo: lo[col], Hi: h}
	}
	hiCols := make([]string, 0, len(hi))
	for col := range hi {
		hiCols = append(hiCols, col)
	}
	sort.Strings(hiCols)
	for _, col := range hiCols {
		return &exec.PruneHint{Col: col, Lo: -(1 << 62), Hi: hi[col]}
	}
	return nil
}

func runSelect(tx *core.Txn, st *SelectStmt) (*colfile.Batch, error) {
	// Cost-based physical planning: stats-driven join reordering, predicate
	// and projection pushdown. The plan rewrites the statement; everything
	// below consumes the rewritten form, so the serial and parallel paths
	// execute the same plan shape.
	plan := planSelect(tx, st)
	plan.recordWork(tx)
	st = plan.st
	meta, err := tx.Table(st.From.Name)
	if err != nil {
		return nil, err
	}
	var hint *exec.PruneHint
	if len(st.Joins) == 0 {
		// The hint is extracted from the original WHERE so conjuncts the
		// planner pushed into the scan still contribute zone-map pruning.
		hint = prunableRange(plan.where, meta, aliasOf(st.From))
	}

	// Grace-join spill context: the engine's JoinMemoryBudget plus a lazily
	// allocated query-scoped spill namespace. finish() runs after the result
	// is materialized, so spill files are deleted on success and error alike.
	spill := newJoinSpill(tx)
	defer spill.finish()

	// Statements go through the morsel-driven parallel executor when the
	// engine has a parallelism target — joins and ORDER BY included: build
	// sides are materialized into shared JoinTables once, the probe side
	// fans out over the left table's morsels, and ORDER BY sorts per-morsel
	// runs that a k-way merge combines (with top-N pushdown under LIMIT).
	// The exception is bare LIMIT queries (no ORDER BY, no aggregation),
	// where the serial streaming path stops scanning after N rows while the
	// parallel path would materialize every morsel first.
	if tx.Parallelism() > 1 && !bareLimitSelect(st) {
		var (
			b       *colfile.Batch
			handled bool
		)
		if tx.DistributedQueries() {
			// Distributed execution: the same plan is lowered onto DCP task
			// DAGs with object-store exchange between stages (docs/
			// DCP-QUERIES.md). Byte-identical to the morsel path by
			// construction — both share the morsel decomposition and the
			// merge operators.
			b, handled, err = runSelectDAG(tx, plan, meta, hint, spill)
		} else {
			b, handled, err = runSelectParallel(tx, plan, meta, hint, spill)
		}
		if handled {
			return b, err
		}
	}

	op, sc, err := scanTable(tx, st.From, hint, plan)
	if err != nil {
		return nil, err
	}

	// Joins: hash equi-joins extracted from the ON conjunction. Each build
	// side is drained eagerly under the join memory budget: while it fits,
	// the probe streams against an in-memory JoinTable exactly as before; a
	// build that overflows grace-spills and the probe joins partition-wise
	// (byte-identical output either way).
	for _, j := range st.Joins {
		bj, jsc, err := bindJoin(tx, j, sc, plan)
		if err != nil {
			return nil, err
		}
		src, err := exec.BuildGraceJoin(bj.right, bj.rightKeys, bj.typ, tx.Parallelism(), spill.config(bj), nil)
		if err != nil {
			return nil, err
		}
		spill.track(src)
		if src.Spilled != nil {
			// The spilled path carries its own runtime filter, accumulated
			// while the build drained; joinSpill.finish folds its pruned-row
			// count into WorkStats.
			op = &exec.SpilledProbe{In: op, Join: src.Spilled, LeftKeys: bj.leftKeys}
		} else {
			pr := &exec.Probe{In: op, Table: src.Table, LeftKeys: bj.leftKeys}
			if bj.typ != exec.LeftOuterJoin {
				pr.Bloom = src.Table.BloomFilter()
				pr.Pruned = &tx.Work().RuntimeFilterRows
			}
			op = pr
		}
		sc = jsc
	}

	if st.Where != nil {
		pred, err := bind(st.Where, sc)
		if err != nil {
			return nil, err
		}
		op = &exec.Filter{In: op, Pred: pred}
	}

	var outOp exec.Operator
	if selectHasAgg(st) {
		outOp, err = planAggregate(st, op, sc)
	} else {
		outOp, err = planProjection(st, op, sc)
	}
	if err != nil {
		return nil, err
	}
	return finishSelect(st, outOp)
}

// bareLimitSelect reports a bare LIMIT query (no ORDER BY, no aggregation):
// the serial streaming path stops scanning after N rows, while a parallel
// executor would materialize every morsel first — so these stay serial.
func bareLimitSelect(st *SelectStmt) bool {
	return st.Limit >= 0 && len(st.OrderBy) == 0 && !selectHasAgg(st)
}

// selectHasAgg reports whether the statement needs an aggregation stage.
func selectHasAgg(st *SelectStmt) bool {
	if len(st.GroupBy) > 0 || st.Having != nil {
		return true
	}
	for _, it := range st.Items {
		if containsAgg(it.Expr) {
			return true
		}
	}
	return false
}

// finishSelect applies ORDER BY and LIMIT and materializes the result.
func finishSelect(st *SelectStmt, outOp exec.Operator) (*colfile.Batch, error) {
	if len(st.OrderBy) > 0 {
		keys, err := orderKeys(st, outOp.Schema())
		if err != nil {
			return nil, err
		}
		outOp = &exec.Sort{In: outOp, Keys: keys}
	}
	if st.Limit >= 0 {
		outOp = &exec.Limit{In: outOp, N: st.Limit, Offset: st.Offset}
	}
	return exec.Collect(outOp)
}

// morselsPerWorker over-decomposes the scan so the morsel queue
// load-balances across workers with uneven morsel costs.
const morselsPerWorker = 4

// boundJoin is one join clause's planning product: the build-side operator,
// the resolved key columns and the join type. Both the serial and parallel
// paths drain it through BuildGraceJoin, so their join semantics (and the
// spill decision) cannot drift apart. distAligned marks a join whose key
// covers the build table's distribution column, letting a spilling build
// reuse the table's cell boundaries as partition seams.
type boundJoin struct {
	right               exec.Operator
	leftKeys, rightKeys []int
	typ                 exec.JoinType
	distAligned         bool
}

// bindJoin opens the join's right table, resolves the equi-join keys against
// the current scope, and returns the binding plus the joined output scope.
func bindJoin(tx *core.Txn, j JoinClause, sc *scope, plan *physPlan) (*boundJoin, *scope, error) {
	rop, rsc, err := scanTable(tx, j.Table, nil, plan)
	if err != nil {
		return nil, nil, err
	}
	rmeta, err := tx.Table(j.Table.Name)
	if err != nil {
		return nil, nil, err
	}
	lk, rk, err := equiKeys(j.On, sc, rsc)
	if err != nil {
		return nil, nil, err
	}
	typ := exec.InnerJoin
	if j.Left {
		typ = exec.LeftOuterJoin
	}
	joined := &scope{
		schema: append(append(colfile.Schema{}, sc.schema...), rsc.schema...),
		quals:  append(append([]string{}, sc.quals...), rsc.quals...),
	}
	distAligned := len(rk) == 1 && rmeta.DistributionCol != "" &&
		strings.EqualFold(rsc.schema[rk[0]].Name, rmeta.DistributionCol)
	return &boundJoin{right: rop, leftKeys: lk, rightKeys: rk, typ: typ, distAligned: distAligned}, joined, nil
}

// joinSpill carries one statement's grace-join spill state: the engine's
// build-side memory budget, the per-build spill namespaces, and the spilled
// builds to account for. Each build gets its own namespace — two spilling
// joins in one statement write identical relative partition paths, so
// sharing a namespace would let the second build overwrite the first's
// files. It exists per statement so finish() can delete the namespaces
// exactly when the result is materialized.
type joinSpill struct {
	tx      *core.Txn
	budget  int64
	pending *objectstore.SpillDir // namespace handed to the build in flight
	dirs    []*objectstore.SpillDir
	spilled []*exec.SpilledJoin
}

func newJoinSpill(tx *core.Txn) *joinSpill {
	return &joinSpill{tx: tx, budget: tx.JoinMemoryBudget()}
}

// config assembles the spill configuration for one join build: the budget, a
// namespace of its own, and — when the join key covers the build table's
// distribution column — a d(r) partitioner, so spill partitions coincide
// with the table's storage cells. Namespace creation is pure bookkeeping (no
// store IO); only builds that actually spill retain theirs (note), so the
// no-spill path never pays a cleanup round trip.
func (s *joinSpill) config(bj *boundJoin) exec.SpillConfig {
	cfg := exec.SpillConfig{Budget: s.budget}
	if s.budget <= 0 {
		return cfg
	}
	s.pending = s.tx.NewSpillDir()
	cfg.Store = s.pending
	if bj.distAligned {
		fanout := s.tx.Distributions()
		cfg.Fanout = fanout
		cfg.Partition = func(b *colfile.Batch, keyCols []int, row int, _ []byte) int {
			v := b.Cols[keyCols[0]]
			if v.IsNull(row) {
				return 0
			}
			return core.DistHash(v.Value(row), fanout)
		}
	}
	return cfg
}

// track resolves the pending namespace after a build completes: a spilled
// build is recorded in the engine-wide work counters (plan choice is
// deterministic for a given snapshot and budget, so tests assert on it) and
// its namespace kept for cleanup; an in-memory build wrote nothing, so its
// namespace is simply dropped — no cleanup round trip on the no-spill path.
func (s *joinSpill) track(src *exec.JoinSource) {
	if src.Spilled != nil {
		s.spilled = append(s.spilled, src.Spilled)
		s.dirs = append(s.dirs, s.pending)
		s.tx.Work().JoinSpills.Add(1)
	}
	s.pending = nil
}

// hold retains the pending namespace for end-of-statement cleanup without
// waiting for a build outcome. The DAG path allocates every join's spill
// namespace at graph-build time — the builds themselves run later, inside
// DCP tasks, possibly more than once under retry — so the namespaces must
// be on the cleanup list before the graph runs. Cleanup of a namespace that
// never spilled is a cheap empty listing.
func (s *joinSpill) hold() {
	if s.pending != nil {
		s.dirs = append(s.dirs, s.pending)
		s.pending = nil
	}
}

// trackDAG records a DAG build task's outcome in the work counters. Unlike
// track, it does not manage namespaces (hold already did) and tolerates nil
// (a run that failed before the build completed).
func (s *joinSpill) trackDAG(src *exec.JoinSource) {
	if src != nil && src.Spilled != nil {
		s.spilled = append(s.spilled, src.Spilled)
		s.tx.Work().JoinSpills.Add(1)
	}
}

// finish adds the spill accounting — bytes durably written (sj.SpillBytes
// counts successful puts only, so a build that errored mid-spill contributes
// exactly what reached the store) and partition-wise join tasks — and deletes
// the query's spill namespaces, including a still-pending one, which means
// the build errored mid-spill and may have partition files on disk already.
// Cleanup is best effort (errors leave orphans confined to the spill/
// namespace, outside GC's and the publishers' prefixes).
func (s *joinSpill) finish() {
	for _, sj := range s.spilled {
		s.tx.Work().JoinSpillBytes.Add(sj.SpillBytes())
		s.tx.Work().JoinSpillPartitions.Add(sj.PartitionsJoined())
		s.tx.Work().RuntimeFilterRows.Add(sj.BloomPrunedRows())
	}
	if s.pending != nil {
		_ = s.pending.Cleanup()
	}
	for _, dir := range s.dirs {
		_ = dir.Cleanup()
	}
}

// probeStage is one planned join stage of a parallel SELECT: an in-memory
// JoinTable shared by per-morsel Probe operators, or a spilled build joined
// partition-wise.
type probeStage struct {
	src      *exec.JoinSource
	leftKeys []int
	typ      exec.JoinType
	// bloom is the stage's runtime filter, derived once from the completed
	// in-memory build and shared read-only by every probe worker (nil for
	// LEFT OUTER, where probe rows survive regardless).
	bloom *exec.Bloom
}

// runSpilledJoinStages executes a parallel SELECT's join pipeline when at
// least one build spilled: the probe-side scan is materialized per morsel,
// then each stage transforms the per-morsel batches in order — in-memory
// stages probe every batch in parallel against the shared JoinTable, spilled
// stages fan the partition-wise grace join over the same leased worker pool,
// one depth-0 partition per task with the nested build parallelism capped
// (whose per-morsel outputs are byte-identical to in-memory probes of the
// same batches). Morsel order, and with it the downstream determinism
// contract, is preserved throughout.
func runSpilledJoinStages(tx *core.Txn, ms *core.MorselScan, dop int, stages []probeStage, hint *exec.PruneHint, base *baseScanPlan) ([]*colfile.Batch, error) {
	cur, err := exec.RunMorsels(ms.Morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
		return base.fragment(m, ms, hint)
	})
	if err != nil {
		return nil, err
	}
	leftSchema := base.schema
	for _, ps := range stages {
		if ps.src.Table != nil {
			table, keys, bloom := ps.src.Table, ps.leftKeys, ps.bloom
			pruned := &tx.Work().RuntimeFilterRows
			cur, err = exec.RunBatches(cur, dop, func(_ int, b *colfile.Batch) (exec.Operator, error) {
				return &exec.Probe{In: exec.NewBatchSource(b), Table: table, LeftKeys: keys, Tel: ms.Tel,
					Bloom: bloom, Pruned: pruned}, nil
			})
		} else {
			cur, err = ps.src.Spilled.JoinBatches(cur, ps.leftKeys, leftSchema, dop)
		}
		if err != nil {
			return nil, err
		}
		if ps.typ != exec.SemiJoin {
			leftSchema = append(append(colfile.Schema{}, leftSchema...), ps.src.BuildSchema()...)
		}
	}
	return cur, nil
}

// baseScanPlan is the parallel path's per-morsel scan recipe for the probe
// base: the projected columns, the resulting scan schema, and the pushed
// predicate (bound and compiled once per statement, shared read-only by the
// morsel workers — each scan owns its EvalCtx).
type baseScanPlan struct {
	cols   []string
	schema colfile.Schema // projected scan output schema
	pred   exec.Expr      // pushed conjunction (nil = none)
	prog   *exec.Prog     // compiled form (nil = Filter fallback)
}

// newBaseScanPlan resolves the physical plan's projection and pushdown
// decisions for the probe base against a morsel scan's full table schema.
func newBaseScanPlan(plan *physPlan, ref TableRef, ms *core.MorselScan) (*baseScanPlan, error) {
	b := &baseScanPlan{cols: plan.colsFor(ref), schema: ms.Schema}
	if b.cols != nil {
		proj := make(colfile.Schema, len(b.cols))
		for i, name := range b.cols {
			idx := ms.Schema.ColIndex(name)
			if idx < 0 {
				return nil, fmt.Errorf("sql: unknown column %q", name)
			}
			proj[i] = ms.Schema[idx]
		}
		b.schema = proj
	}
	if conj := plan.pushedFor(ref); len(conj) > 0 {
		sc := singleTableScope(b.schema, aliasOf(ref))
		pred, err := bind(andFold(conj), sc)
		if err != nil {
			return nil, err
		}
		b.pred = pred
		if pr, cerr := exec.Compile(pred, b.schema); cerr == nil {
			b.prog = pr
		}
	}
	return b, nil
}

// fragment opens one morsel's scan with the plan's projection and pushed
// predicate applied. Rows a pushed predicate rejects are dropped inside the
// scan, before unreferenced columns are even decoded.
func (b *baseScanPlan) fragment(m exec.Morsel, ms *core.MorselScan, hint *exec.PruneHint) (exec.Operator, error) {
	s, err := exec.NewMorselScan(m, b.cols, hint, ms.Tel)
	if err != nil {
		return nil, err
	}
	if err := s.SetSchema(ms.Schema); err != nil {
		return nil, err
	}
	var op exec.Operator = s
	if b.pred != nil {
		if b.prog == nil || !s.PushPredicate(b.prog) {
			op = &exec.Filter{In: op, Pred: b.pred, Prog: b.prog, Tel: ms.Tel}
		}
	}
	return op, nil
}

// groupByCoversDistCol reports whether a GROUP BY item names the table's
// distribution column (unqualified or qualified with the table alias). When
// it does, every group lives entirely inside one distribution cell — rows
// sharing a distribution-column value (NULLs included) are assigned to one
// cell by d(r) — so cell-aligned per-morsel partials need no merge.
func groupByCoversDistCol(st *SelectStmt, distCol, alias string) bool {
	if distCol == "" {
		return false
	}
	for _, g := range st.GroupBy {
		c, ok := g.(ColName)
		if !ok {
			continue
		}
		if strings.EqualFold(c.Name, distCol) && (c.Table == "" || strings.EqualFold(c.Table, alias)) {
			return true
		}
	}
	return false
}

// runSelectParallel executes a SELECT on the morsel-driven parallel
// executor: the left (probe-side) scan is split into morsels, a worker pool
// sized by the fabric's slot lease runs scan→[probe…]→filter→project (or
// →partial aggregation, or →sorted run) per morsel, and a deterministic
// merge — ordered concatenation for projections and joins, key-ordered
// MergeAgg for aggregates, loser-tree MergeRuns for ORDER BY — combines the
// per-morsel outputs. Join build sides are materialized once into immutable
// JoinTables shared by every probe worker.
// When the GROUP BY key set covers the table's distribution column, morsels
// are cell-aligned and the merge degenerates to concatenation (merge-free
// distribution-aware aggregation, counted in WorkStats.MergeFreeAggs).
// When concurrent queries hold the fabric's slots the lease degrades the
// worker count (possibly to 1) but the plan shape — and therefore the
// output order — stays the same for a given Parallelism config. Returns
// handled=false only for an empty table, which falls back to the serial
// path.
// Join build sides are drained under the join memory budget: a build that
// overflows grace-spills both sides to the query's spill namespace and the
// join runs partition-wise, producing per-morsel outputs byte-identical to
// the in-memory probes', so everything downstream of the join stages is
// unchanged.
func runSelectParallel(tx *core.Txn, plan *physPlan, meta catalog.TableMeta, hint *exec.PruneHint, spill *joinSpill) (*colfile.Batch, bool, error) {
	st := plan.st
	dop, release := tx.LeaseDOP(tx.Parallelism())
	defer release()
	alias := aliasOf(st.From)
	// Distribution-aware aggregation: cell-aligned morsels make per-morsel
	// partials complete, so MergeAgg can skip the merge. The cell split is
	// DOP-independent, so results stay identical at every parallelism.
	mergeFree := len(st.Joins) == 0 && len(st.GroupBy) > 0 && selectHasAgg(st) &&
		groupByCoversDistCol(st, meta.DistributionCol, alias)

	// The morsel split is sized from the CONFIGURED parallelism, not the
	// granted one: the lease only caps live workers, so the decomposition —
	// and with it float-aggregation order — cannot shift under slot
	// contention.
	var ms *core.MorselScan
	var err error
	if mergeFree {
		ms, err = tx.ScanCellMorsels(st.From.Name, st.From.AsOfSeq)
	} else {
		ms, err = tx.ScanMorsels(st.From.Name, st.From.AsOfSeq, tx.Parallelism()*morselsPerWorker)
	}
	if err != nil {
		return nil, true, err
	}
	if len(ms.Morsels) == 0 {
		return nil, false, nil // empty table: serial path supplies the schema
	}

	base, err := newBaseScanPlan(plan, st.From, ms)
	if err != nil {
		return nil, true, err
	}
	sc := singleTableScope(base.schema, alias)

	// Joins: drain each right side once under the join memory budget —
	// into an immutable shared JoinTable while it fits (the build itself is
	// partition-parallel), or into spill partitions when it overflows —
	// extending the scope as the serial planner would.
	var stages []probeStage
	anySpilled := false
	for _, j := range st.Joins {
		bj, jsc, err := bindJoin(tx, j, sc, plan)
		if err != nil {
			return nil, true, err
		}
		src, err := exec.BuildGraceJoin(bj.right, bj.rightKeys, bj.typ, tx.Parallelism(), spill.config(bj), ms.Tel)
		if err != nil {
			return nil, true, err
		}
		spill.track(src)
		if src.Spilled != nil {
			anySpilled = true
		}
		ps := probeStage{src: src, leftKeys: bj.leftKeys, typ: bj.typ}
		if src.Table != nil && bj.typ != exec.LeftOuterJoin {
			ps.bloom = src.Table.BloomFilter()
		}
		stages = append(stages, ps)
		sc = jsc
	}

	var pred exec.Expr
	var predProg *exec.Prog
	if st.Where != nil {
		pred, err = bind(st.Where, sc)
		if err != nil {
			return nil, true, err
		}
		// Compile the predicate into a kernel program once per statement; the
		// immutable Prog is shared by every morsel worker's Filter instance
		// (each owns its EvalCtx). A nil Prog makes the operator compile — or
		// fall back to the scalar reference — itself.
		if p, cerr := exec.Compile(pred, sc.schema); cerr == nil {
			predProg = p
		}
	}
	// runFragments fans the embarrassingly parallel tail of the plan out
	// over the workers and returns per-morsel batches in morsel order. In
	// the streaming shape (no spilled build) each worker runs
	// scan→[probe…]→filter→suffix per morsel: bound expressions and
	// JoinTables are stateless/immutable values, safe to share across
	// workers; each Probe instance owns its scratch buffers; the telemetry
	// sink is atomic. When a build spilled, the join stages have already
	// materialized per-morsel batches (runSpilledJoinStages) and each worker
	// runs filter→suffix over its batch — the batches are byte-wise what the
	// streaming probes would have produced, so the downstream plan and its
	// determinism are unchanged.
	var runFragments func(suffix func(exec.Operator) (exec.Operator, error)) ([]*colfile.Batch, error)
	if !anySpilled {
		pruned := &tx.Work().RuntimeFilterRows
		fragment := func(m exec.Morsel) (exec.Operator, error) {
			op, err := base.fragment(m, ms, hint)
			if err != nil {
				return nil, err
			}
			for _, ps := range stages {
				op = &exec.Probe{In: op, Table: ps.src.Table, LeftKeys: ps.leftKeys, Tel: ms.Tel,
					Bloom: ps.bloom, Pruned: pruned}
			}
			if pred != nil {
				op = &exec.Filter{In: op, Pred: pred, Prog: predProg, Tel: ms.Tel}
			}
			return op, nil
		}
		runFragments = func(suffix func(exec.Operator) (exec.Operator, error)) ([]*colfile.Batch, error) {
			return exec.RunMorsels(ms.Morsels, dop, func(m exec.Morsel) (exec.Operator, error) {
				op, err := fragment(m)
				if err != nil {
					return nil, err
				}
				return suffix(op)
			})
		}
	} else {
		joined, err := runSpilledJoinStages(tx, ms, dop, stages, hint, base)
		if err != nil {
			return nil, true, err
		}
		runFragments = func(suffix func(exec.Operator) (exec.Operator, error)) ([]*colfile.Batch, error) {
			return exec.RunBatches(joined, dop, func(_ int, b *colfile.Batch) (exec.Operator, error) {
				var op exec.Operator = exec.NewBatchSource(b)
				if pred != nil {
					op = &exec.Filter{In: op, Pred: pred, Prog: predProg, Tel: ms.Tel}
				}
				return suffix(op)
			})
		}
	}
	return finishParallelSelect(tx, st, sc, ms.Tel, mergeFree, runFragments)
}

// finishParallelSelect runs the merge tail of a parallel SELECT: it drives
// runFragments with the plan's per-fragment suffix (partial aggregation,
// projection, or sorted runs) and combines the per-morsel batches with the
// deterministic merge operators. Shared by the morsel-pool and DCP-DAG
// executors — runFragments abstracts where the fragments ran, so the two
// paths cannot drift apart downstream of the fragment boundary.
func finishParallelSelect(tx *core.Txn, st *SelectStmt, sc *scope, tel *exec.Telemetry, mergeFree bool,
	runFragments func(func(exec.Operator) (exec.Operator, error)) ([]*colfile.Batch, error)) (*colfile.Batch, bool, error) {
	// schemaSource stands in for the plan prefix when instantiating
	// prototype operators whose Schema() needs an input schema (sc.schema
	// is the post-join schema).
	schemaSource := func() exec.Operator { return exec.NewBatchSource(colfile.NewBatch(sc.schema)) }

	var outOp exec.Operator
	if selectHasAgg(st) {
		// ORDER BY over an aggregate stays on the serial Sort: the merged
		// aggregate is already materialized on the FE, one group per row, so
		// there is nothing left to fan out.
		ap, err := buildAggPlan(st, sc)
		if err != nil {
			return nil, true, err
		}
		groupProgs, argProgs := compileAggProgs(ap.groupBy, ap.aggs, sc.schema)
		batches, err := runFragments(func(op exec.Operator) (exec.Operator, error) {
			return &exec.HashAgg{
				In: op, GroupBy: ap.groupBy, Aggs: ap.aggs, Partial: true,
				GroupProgs: groupProgs, ArgProgs: argProgs,
			}, nil
		})
		if err != nil {
			return nil, true, err
		}
		if mergeFree {
			tx.Work().MergeFreeAggs.Add(1)
		}
		partialProto := &exec.HashAgg{In: schemaSource(), GroupBy: ap.groupBy, Aggs: ap.aggs, Partial: true}
		outOp = &exec.MergeAgg{
			In:     exec.NewBatchList(partialProto.Schema(), batches),
			Groups: len(ap.groupBy), Aggs: ap.aggs, MergeFree: mergeFree, Tel: tel,
		}
		if ap.having != nil {
			outOp = &exec.Filter{In: outOp, Pred: ap.having, Prog: compileHaving(ap.having, outOp.Schema())}
		}
		outOp = &exec.Project{In: outOp, Exprs: ap.outExprs, Names: ap.outNames}
	} else {
		exprs, names, err := buildProjection(st, sc)
		if err != nil {
			return nil, true, err
		}
		projProgs := compileProgs(exprs, sc.schema)
		proto := &exec.Project{In: schemaSource(), Exprs: exprs, Names: names}
		if len(st.OrderBy) > 0 {
			b, err := runParallelOrderBy(tx, st, runFragments, tel, exprs, names, projProgs, proto.Schema())
			return b, true, err
		}
		batches, err := runFragments(func(op exec.Operator) (exec.Operator, error) {
			return &exec.Project{In: op, Exprs: exprs, Names: names, Progs: projProgs}, nil
		})
		if err != nil {
			return nil, true, err
		}
		outOp = exec.NewBatchList(proto.Schema(), batches)
	}

	b, err := finishSelect(st, outOp)
	return b, true, err
}

// runParallelOrderBy executes a projection's ORDER BY [LIMIT/OFFSET] on the
// morsel executor instead of a monolithic FE sort: every worker sorts its
// morsel's projected rows into a tie-stable run (SortRuns), and the FE k-way
// merges the runs over a loser tree with the lowest morsel index winning
// ties — byte-identical to the serial stable sort at every DOP, NULL
// ordering and DESC keys included. When a LIMIT bounds the output, each
// worker instead keeps only its LIMIT+OFFSET smallest rows (TopN pushdown,
// the paper's distributed top-N shape, counted in WorkStats.TopNPushdowns)
// and the merge cuts off after LIMIT+OFFSET rows, so neither the workers nor
// the FE ever materialize the full sorted result.
func runParallelOrderBy(tx *core.Txn, st *SelectStmt,
	runFragments func(func(exec.Operator) (exec.Operator, error)) ([]*colfile.Batch, error),
	tel *exec.Telemetry, exprs []exec.Expr, names []string, progs []*exec.Prog,
	outSchema colfile.Schema) (*colfile.Batch, error) {
	keys, err := orderKeys(st, outSchema)
	if err != nil {
		return nil, err
	}
	bound := int64(-1) // rows each worker must ship; -1 = all (full sort)
	if st.Limit >= 0 {
		bound = st.Limit + st.Offset
	}
	batches, err := runFragments(func(op exec.Operator) (exec.Operator, error) {
		op = &exec.Project{In: op, Exprs: exprs, Names: names, Progs: progs}
		if bound >= 0 {
			return &exec.TopN{In: op, Keys: keys, N: bound, Tel: tel}, nil
		}
		return &exec.SortRuns{In: op, Keys: keys, Tel: tel}, nil
	})
	if err != nil {
		return nil, err
	}
	if bound >= 0 {
		tx.Work().TopNPushdowns.Add(1)
	}
	var out exec.Operator = exec.NewMergeRuns(outSchema, batches, keys, bound)
	if st.Limit >= 0 {
		out = &exec.Limit{In: out, N: st.Limit, Offset: st.Offset}
	}
	return exec.Collect(out)
}

// compileProgs lowers bound expressions into kernel programs once per
// statement against the fragment input schema; the resulting Progs are
// immutable and shared read-only by every morsel worker (each operator
// instance owns its EvalCtx). Returns nil when any expression cannot be
// lowered — operators then compile or fall back themselves.
func compileProgs(exprs []exec.Expr, schema colfile.Schema) []*exec.Prog {
	progs := make([]*exec.Prog, len(exprs))
	for i, e := range exprs {
		p, err := exec.Compile(e, schema)
		if err != nil {
			return nil
		}
		progs[i] = p
	}
	return progs
}

// compileAggProgs compiles the group-by and aggregate-argument expressions of
// a parallel aggregation (nil entries for COUNT(*)); all-or-nothing per list
// so HashAgg's fallback logic stays simple.
func compileAggProgs(groupBy []exec.Expr, aggs []exec.AggSpec, schema colfile.Schema) (groupProgs, argProgs []*exec.Prog) {
	groupProgs = compileProgs(groupBy, schema)
	if groupProgs == nil {
		return nil, nil
	}
	argProgs = make([]*exec.Prog, len(aggs))
	for i, a := range aggs {
		if a.Arg == nil {
			continue
		}
		p, err := exec.Compile(a.Arg, schema)
		if err != nil {
			return nil, nil
		}
		argProgs[i] = p
	}
	return groupProgs, argProgs
}

func aliasOf(r TableRef) string {
	if r.Alias != "" {
		return r.Alias
	}
	return r.Name
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case FuncExpr:
		return true
	case BinExpr:
		return containsAgg(x.L) || containsAgg(x.R)
	case NotExpr:
		return containsAgg(x.E)
	case IsNullExpr:
		return containsAgg(x.E)
	case BetweenExpr:
		return containsAgg(x.E) || containsAgg(x.Lo) || containsAgg(x.Hi)
	}
	return false
}

// equiKeys extracts hash-join keys from an ON conjunction of equalities, each
// relating one left-scope column to one right-scope column.
func equiKeys(on Expr, left, right *scope) (lk, rk []int, err error) {
	var conjuncts []Expr
	var split func(e Expr)
	split = func(e Expr) {
		if b, ok := e.(BinExpr); ok && b.Op == "AND" {
			split(b.L)
			split(b.R)
			return
		}
		conjuncts = append(conjuncts, e)
	}
	split(on)
	for _, c := range conjuncts {
		b, ok := c.(BinExpr)
		if !ok || b.Op != "=" {
			return nil, nil, fmt.Errorf("sql: JOIN ON supports equality conjunctions only")
		}
		lc, ok1 := b.L.(ColName)
		rc, ok2 := b.R.(ColName)
		if !ok1 || !ok2 {
			return nil, nil, fmt.Errorf("sql: JOIN ON must compare columns")
		}
		if li, err := left.resolve(lc); err == nil {
			ri, err := right.resolve(rc)
			if err != nil {
				return nil, nil, err
			}
			lk = append(lk, li)
			rk = append(rk, ri)
			continue
		}
		// swapped sides
		li, err := left.resolve(rc)
		if err != nil {
			return nil, nil, err
		}
		ri, err := right.resolve(lc)
		if err != nil {
			return nil, nil, err
		}
		lk = append(lk, li)
		rk = append(rk, ri)
	}
	if len(lk) == 0 {
		return nil, nil, fmt.Errorf("sql: JOIN requires at least one equality key")
	}
	return lk, rk, nil
}

func planProjection(st *SelectStmt, op exec.Operator, sc *scope) (exec.Operator, error) {
	exprs, names, err := buildProjection(st, sc)
	if err != nil {
		return nil, err
	}
	return &exec.Project{In: op, Exprs: exprs, Names: names}, nil
}

// buildProjection binds the SELECT items to output expressions and names.
func buildProjection(st *SelectStmt, sc *scope) ([]exec.Expr, []string, error) {
	var exprs []exec.Expr
	var names []string
	for _, it := range st.Items {
		if it.Star {
			for i, f := range sc.schema {
				exprs = append(exprs, exec.ColRef{Idx: i, Name: f.Name})
				names = append(names, f.Name)
			}
			continue
		}
		e, err := bind(it.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(it))
	}
	return exprs, names, nil
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(ColName); ok {
		return c.Name
	}
	return ""
}

// aggPlan is the lowered form of an aggregate query: group-key and aggregate
// specs for the (serial or partial/merge) aggregation stage, plus the
// post-aggregation projection and HAVING predicate over its output.
type aggPlan struct {
	groupBy  []exec.Expr
	aggs     []exec.AggSpec
	outExprs []exec.Expr
	outNames []string
	having   exec.Expr
}

// planAggregate lowers GROUP BY queries for the serial path: the HashAgg
// computes group keys and every aggregate found in the items/HAVING; a
// post-projection then maps item expressions over the aggregate's output.
func planAggregate(st *SelectStmt, op exec.Operator, sc *scope) (exec.Operator, error) {
	ap, err := buildAggPlan(st, sc)
	if err != nil {
		return nil, err
	}
	var out exec.Operator = &exec.HashAgg{In: op, GroupBy: ap.groupBy, Aggs: ap.aggs}
	if ap.having != nil {
		out = &exec.Filter{In: out, Pred: ap.having, Prog: compileHaving(ap.having, out.Schema())}
	}
	return &exec.Project{In: out, Exprs: ap.outExprs, Names: ap.outNames}, nil
}

// compileHaving lowers a HAVING predicate into a kernel program against the
// aggregate's output schema, once per statement — the same treatment WHERE
// predicates get. Nil on failure: the Filter then compiles or falls back
// itself.
func compileHaving(having exec.Expr, schema colfile.Schema) *exec.Prog {
	p, err := exec.Compile(having, schema)
	if err != nil {
		return nil
	}
	return p
}

// buildAggPlan binds an aggregate query's pieces against the input scope.
func buildAggPlan(st *SelectStmt, sc *scope) (*aggPlan, error) {
	groupExprs := make([]exec.Expr, len(st.GroupBy))
	for i, g := range st.GroupBy {
		e, err := bind(g, sc)
		if err != nil {
			return nil, err
		}
		groupExprs[i] = e
	}

	// Collect aggregates in item order, then HAVING.
	var aggs []exec.AggSpec
	aggIndex := map[string]int{} // rendered key -> agg slot
	addAgg := func(f FuncExpr) (int, error) {
		kind, err := aggKind(f)
		if err != nil {
			return 0, err
		}
		var arg exec.Expr
		key := f.Name + "(*)"
		if !f.Star {
			bound, err := bind(f.Arg, sc)
			if err != nil {
				return 0, err
			}
			arg = bound
			key = f.Name + "(" + bound.String() + ")"
		}
		if i, ok := aggIndex[key]; ok {
			return i, nil
		}
		aggs = append(aggs, exec.AggSpec{Kind: kind, Arg: arg, Name: key})
		aggIndex[key] = len(aggs) - 1
		return len(aggs) - 1, nil
	}

	// replaceAgg rewrites an item expression into a post-aggregation
	// expression over [groups..., aggs...].
	var replaceAgg func(e Expr) (exec.Expr, error)
	replaceAgg = func(e Expr) (exec.Expr, error) {
		// An item expression structurally equal to a GROUP BY expression maps
		// to that group column (e.g. GROUP BY d/30 ... SELECT d/30).
		for i, g := range st.GroupBy {
			if reflect.DeepEqual(e, g) {
				return exec.ColRef{Idx: i, Name: fmt.Sprintf("group%d", i)}, nil
			}
		}
		switch x := e.(type) {
		case FuncExpr:
			slot, err := addAgg(x)
			if err != nil {
				return nil, err
			}
			return exec.ColRef{Idx: len(groupExprs) + slot, Name: aggs[slot].Name}, nil
		case ColName:
			// must match a GROUP BY expression
			for i, g := range st.GroupBy {
				if gc, ok := g.(ColName); ok && strings.EqualFold(gc.Name, x.Name) &&
					(x.Table == "" || strings.EqualFold(gc.Table, x.Table) || gc.Table == "") {
					return exec.ColRef{Idx: i, Name: x.Name}, nil
				}
			}
			return nil, fmt.Errorf("sql: column %q must appear in GROUP BY or an aggregate", displayName(x))
		case Lit:
			return exec.Const{Val: x.Val}, nil
		case BinExpr:
			l, err := replaceAgg(x.L)
			if err != nil {
				return nil, err
			}
			r, err := replaceAgg(x.R)
			if err != nil {
				return nil, err
			}
			kind, ok := binOpKind(x.Op)
			if !ok {
				return nil, fmt.Errorf("sql: unsupported operator %q", x.Op)
			}
			return exec.Bin{Kind: kind, L: l, R: r}, nil
		case NotExpr:
			inner, err := replaceAgg(x.E)
			if err != nil {
				return nil, err
			}
			return exec.Not{E: inner}, nil
		default:
			return nil, fmt.Errorf("sql: unsupported expression %T in aggregate query", e)
		}
	}

	var outExprs []exec.Expr
	var outNames []string
	for _, it := range st.Items {
		if it.Star {
			return nil, errors.New("sql: SELECT * with GROUP BY is not supported")
		}
		e, err := replaceAgg(it.Expr)
		if err != nil {
			return nil, err
		}
		outExprs = append(outExprs, e)
		outNames = append(outNames, itemName(it))
	}
	var havingExpr exec.Expr
	if st.Having != nil {
		var err error
		havingExpr, err = replaceAgg(st.Having)
		if err != nil {
			return nil, err
		}
	}

	return &aggPlan{
		groupBy: groupExprs, aggs: aggs,
		outExprs: outExprs, outNames: outNames, having: havingExpr,
	}, nil
}

func aggKind(f FuncExpr) (exec.AggKind, error) {
	switch f.Name {
	case "COUNT":
		if f.Star {
			return exec.AggCountStar, nil
		}
		return exec.AggCount, nil
	case "SUM":
		return exec.AggSum, nil
	case "AVG":
		return exec.AggAvg, nil
	case "MIN":
		return exec.AggMin, nil
	case "MAX":
		return exec.AggMax, nil
	}
	return 0, fmt.Errorf("sql: unknown aggregate %s", f.Name)
}

// orderKeys resolves ORDER BY items against the output schema by alias/name.
func orderKeys(st *SelectStmt, schema colfile.Schema) ([]exec.SortKey, error) {
	var keys []exec.SortKey
	for _, o := range st.OrderBy {
		c, ok := o.Expr.(ColName)
		if !ok {
			if l, isLit := o.Expr.(Lit); isLit {
				if pos, isInt := l.Val.(int64); isInt && pos >= 1 && int(pos) <= len(schema) {
					keys = append(keys, exec.SortKey{Col: int(pos - 1), Desc: o.Desc})
					continue
				}
			}
			return nil, errors.New("sql: ORDER BY supports output columns or positions")
		}
		idx := -1
		for i, f := range schema {
			if strings.EqualFold(f.Name, c.Name) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("sql: ORDER BY column %q not in output", c.Name)
		}
		keys = append(keys, exec.SortKey{Col: idx, Desc: o.Desc})
	}
	return keys, nil
}

func runInsert(tx *core.Txn, st *InsertStmt) (*Result, error) {
	meta, err := tx.Table(st.Table)
	if err != nil {
		return nil, err
	}
	var batch *colfile.Batch
	if st.Query != nil {
		qb, err := runSelect(tx, st.Query)
		if err != nil {
			return nil, err
		}
		if len(qb.Schema) != len(meta.Schema) {
			return nil, fmt.Errorf("sql: INSERT SELECT arity %d, table has %d columns", len(qb.Schema), len(meta.Schema))
		}
		batch = colfile.NewBatch(meta.Schema)
		for i := 0; i < qb.NumRows(); i++ {
			if err := batch.AppendRow(qb.Row(i)...); err != nil {
				return nil, err
			}
		}
	} else {
		cols := st.Columns
		if cols == nil {
			cols = make([]string, len(meta.Schema))
			for i, f := range meta.Schema {
				cols[i] = f.Name
			}
		}
		colIdx := make([]int, len(cols))
		for i, c := range cols {
			idx := meta.Schema.ColIndex(c)
			if idx < 0 {
				return nil, fmt.Errorf("sql: unknown column %q", c)
			}
			colIdx[i] = idx
		}
		batch = colfile.NewBatch(meta.Schema)
		for _, row := range st.Rows {
			if len(row) != len(cols) {
				return nil, fmt.Errorf("sql: row has %d values, expected %d", len(row), len(cols))
			}
			vals := make([]any, len(meta.Schema)) // unnamed columns are NULL
			for i, e := range row {
				lit, err := evalConst(e)
				if err != nil {
					return nil, err
				}
				vals[colIdx[i]] = lit
			}
			if err := batch.AppendRow(vals...); err != nil {
				return nil, err
			}
		}
	}
	n, err := tx.Insert(st.Table, batch)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n}, nil
}

// evalConst folds a literal-only expression (VALUES rows).
func evalConst(e Expr) (any, error) {
	switch x := e.(type) {
	case Lit:
		return x.Val, nil
	case BinExpr:
		l, err := evalConst(x.L)
		if err != nil {
			return nil, err
		}
		r, err := evalConst(x.R)
		if err != nil {
			return nil, err
		}
		li, lok := l.(int64)
		ri, rok := r.(int64)
		if lok && rok {
			switch x.Op {
			case "+":
				return li + ri, nil
			case "-":
				return li - ri, nil
			case "*":
				return li * ri, nil
			case "/":
				if ri == 0 {
					return nil, errors.New("sql: division by zero")
				}
				return li / ri, nil
			}
		}
		lf, lok := toF(l)
		rf, rok := toF(r)
		if lok && rok {
			switch x.Op {
			case "+":
				return lf + rf, nil
			case "-":
				return lf - rf, nil
			case "*":
				return lf * rf, nil
			case "/":
				if rf == 0 {
					return nil, errors.New("sql: division by zero")
				}
				return lf / rf, nil
			}
		}
		return nil, fmt.Errorf("sql: VALUES expressions must be constant")
	default:
		return nil, fmt.Errorf("sql: VALUES expressions must be literals")
	}
}

func toF(v any) (float64, bool) {
	switch x := v.(type) {
	case int64:
		return float64(x), true
	case float64:
		return x, true
	}
	return 0, false
}

func runUpdate(tx *core.Txn, st *UpdateStmt) (*Result, error) {
	meta, err := tx.Table(st.Table)
	if err != nil {
		return nil, err
	}
	sc := tableScope(meta)
	// Bind SET expressions in column order so a statement with two bad
	// assignments reports the same error every run.
	setCols := make([]string, 0, len(st.Set))
	for col := range st.Set {
		setCols = append(setCols, col)
	}
	sort.Strings(setCols)
	set := make(map[string]exec.Expr, len(st.Set))
	for _, col := range setCols {
		bound, err := bind(st.Set[col], sc)
		if err != nil {
			return nil, err
		}
		set[col] = bound
	}
	pred, err := wherePred(st.Where, sc)
	if err != nil {
		return nil, err
	}
	n, err := tx.Update(st.Table, pred, set)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n}, nil
}

func runDelete(tx *core.Txn, st *DeleteStmt) (*Result, error) {
	meta, err := tx.Table(st.Table)
	if err != nil {
		return nil, err
	}
	pred, err := wherePred(st.Where, tableScope(meta))
	if err != nil {
		return nil, err
	}
	n, err := tx.Delete(st.Table, pred)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n}, nil
}

func tableScope(meta catalog.TableMeta) *scope {
	quals := make([]string, len(meta.Schema))
	for i := range quals {
		quals[i] = meta.Name
	}
	return &scope{schema: meta.Schema, quals: quals}
}

func wherePred(where Expr, sc *scope) (exec.Expr, error) {
	if where == nil {
		return exec.Const{Val: true}, nil
	}
	return bind(where, sc)
}

func runShow(tx *core.Txn, st ShowStmt) (*Result, error) {
	switch st.What {
	case "tables":
		tables, err := tx.ListTables()
		if err != nil {
			return nil, err
		}
		schema := colfile.Schema{
			{Name: "name", Type: colfile.String},
			{Name: "id", Type: colfile.Int64},
			{Name: "columns", Type: colfile.Int64},
			{Name: "cloned_from", Type: colfile.Int64},
		}
		b := colfile.NewBatch(schema)
		for _, m := range tables {
			_ = b.AppendRow(m.Name, m.ID, int64(len(m.Schema)), m.ClonedFrom)
		}
		return &Result{Batch: b}, nil
	case "stats":
		s, err := tx.Stats(st.Table)
		if err != nil {
			return nil, err
		}
		schema := colfile.Schema{
			{Name: "table", Type: colfile.String},
			{Name: "files", Type: colfile.Int64},
			{Name: "rows", Type: colfile.Int64},
			{Name: "deleted", Type: colfile.Int64},
			{Name: "bytes", Type: colfile.Int64},
			{Name: "manifests", Type: colfile.Int64},
			{Name: "last_seq", Type: colfile.Int64},
			{Name: "healthy", Type: colfile.Bool},
		}
		b := colfile.NewBatch(schema)
		_ = b.AppendRow(s.Name, int64(s.Files), s.Rows, s.Deleted, s.SizeBytes,
			int64(s.Manifests), s.LastSeq, s.Health.Healthy())
		return &Result{Batch: b}, nil
	}
	return nil, fmt.Errorf("sql: unknown SHOW %q", st.What)
}
