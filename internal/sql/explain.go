package sql

import (
	"fmt"
	"strconv"
	"strings"

	"polaris/internal/colfile"
	"polaris/internal/core"
)

// runExplain plans a SELECT without executing it and renders the physical
// plan as a one-column batch, one operator per row in execution order: the
// base scan first, then each join build, then the residual filter and the
// statement tail. The text is deterministic for a fixed snapshot (estimates
// come from the merged sketches), so golden tests can pin it.
func runExplain(tx *core.Txn, st *SelectStmt) (*Result, error) {
	plan := planSelect(tx, st)
	schema := colfile.Schema{{Name: "plan", Type: colfile.String}}
	b := colfile.NewBatch(schema)
	for _, line := range plan.describe() {
		if err := b.AppendRow(line); err != nil {
			return nil, err
		}
	}
	return &Result{Batch: b}, nil
}

// describe renders the plan, one line per operator.
func (p *physPlan) describe() []string {
	st := p.st
	var lines []string

	lines = append(lines, p.scanLine(st.From))
	for i, j := range st.Joins {
		lines = append(lines, p.joinLine(i, j))
	}
	if st.Where != nil {
		lines = append(lines, "filter "+exprString(st.Where))
	}
	if selectHasAgg(st) {
		var groups []string
		for _, g := range st.GroupBy {
			groups = append(groups, exprString(g))
		}
		line := "aggregate"
		if len(groups) > 0 {
			line += " [groups=" + strings.Join(groups, ", ") + "]"
		}
		if st.Having != nil {
			line += " [having=" + exprString(st.Having) + "]"
		}
		lines = append(lines, line)
	}
	if len(st.OrderBy) > 0 {
		var keys []string
		for _, o := range st.OrderBy {
			k := exprString(o.Expr)
			if o.Desc {
				k += " DESC"
			}
			keys = append(keys, k)
		}
		lines = append(lines, "sort ["+strings.Join(keys, ", ")+"]")
	}
	if st.Limit >= 0 {
		line := "limit " + strconv.FormatInt(st.Limit, 10)
		if st.Offset > 0 {
			line += " offset " + strconv.FormatInt(st.Offset, 10)
		}
		lines = append(lines, line)
	}
	var names []string
	for _, it := range st.Items {
		if it.Star {
			names = append(names, "*")
			continue
		}
		if n := itemName(it); n != "" {
			names = append(names, n)
		} else {
			names = append(names, exprString(it.Expr))
		}
	}
	lines = append(lines, "project ["+strings.Join(names, ", ")+"]")
	return lines
}

// scanLine renders the probe-base scan: projected columns, pushed
// predicates and the estimated output cardinality.
func (p *physPlan) scanLine(ref TableRef) string {
	line := "scan " + refString(ref)
	if cols := p.colsFor(ref); cols != nil {
		line += " [cols=" + strings.Join(cols, ", ") + "]"
	}
	if pushed := p.pushedFor(ref); len(pushed) > 0 {
		line += " [pushed=" + exprString(andFold(pushed)) + "]"
	}
	line += " [est=" + p.estString(ref) + "]"
	if p.dag {
		line += " [dag]"
	}
	return line
}

// joinLine renders one join build: the build relation (with its own
// projection/pushdown), the key condition, the join type, whether a bloom
// runtime filter prunes the probe side, and whether cost-based reordering
// moved this build relative to the syntactic statement.
func (p *physPlan) joinLine(i int, j JoinClause) string {
	line := "join build " + refString(j.Table)
	if cols := p.colsFor(j.Table); cols != nil {
		line += " [cols=" + strings.Join(cols, ", ") + "]"
	}
	if pushed := p.pushedFor(j.Table); len(pushed) > 0 {
		line += " [pushed=" + exprString(andFold(pushed)) + "]"
	}
	line += " [on=" + exprString(j.On) + "]"
	if j.Left {
		line += " [left outer]"
	} else {
		line += " [inner, bloom]"
	}
	line += " [est=" + p.estString(j.Table) + "]"
	if t, ok := p.tables[strings.ToLower(aliasOf(j.Table))]; ok && p.reordered && t.pos != i+1 {
		line += " [reordered]"
	}
	return line
}

// estString formats a relation's estimated post-filter cardinality.
func (p *physPlan) estString(ref TableRef) string {
	t, ok := p.tables[strings.ToLower(aliasOf(ref))]
	if !ok || t.est < 0 {
		return "? rows"
	}
	return strconv.FormatInt(int64(t.est+0.5), 10) + " rows"
}

func refString(ref TableRef) string {
	if ref.Alias != "" && !strings.EqualFold(ref.Alias, ref.Name) {
		return ref.Name + " AS " + ref.Alias
	}
	return ref.Name
}

// exprString renders an AST expression for plan output. Binary operations
// are parenthesized, which keeps the rendering unambiguous and stable.
func exprString(e Expr) string {
	switch x := e.(type) {
	case ColName:
		return displayName(x)
	case Lit:
		return litString(x.Val)
	case BinExpr:
		return "(" + exprString(x.L) + " " + x.Op + " " + exprString(x.R) + ")"
	case NotExpr:
		return "NOT " + exprString(x.E)
	case IsNullExpr:
		if x.Negate {
			return exprString(x.E) + " IS NOT NULL"
		}
		return exprString(x.E) + " IS NULL"
	case LikeExpr:
		op := " LIKE "
		if x.Negate {
			op = " NOT LIKE "
		}
		return exprString(x.E) + op + litString(x.Pattern)
	case InExpr:
		var vals []string
		for _, v := range x.Vals {
			vals = append(vals, litString(v))
		}
		op := " IN ("
		if x.Negate {
			op = " NOT IN ("
		}
		return exprString(x.E) + op + strings.Join(vals, ", ") + ")"
	case BetweenExpr:
		return exprString(x.E) + " BETWEEN " + exprString(x.Lo) + " AND " + exprString(x.Hi)
	case FuncExpr:
		if x.Star {
			return x.Name + "(*)"
		}
		return x.Name + "(" + exprString(x.Arg) + ")"
	}
	return fmt.Sprintf("%v", e)
}

func litString(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return "'" + x + "'"
	case bool:
		if x {
			return "TRUE"
		}
		return "FALSE"
	case int64:
		return strconv.FormatInt(x, 10)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
	return fmt.Sprintf("%v", v)
}
