package sql

import (
	"reflect"
	"testing"

	"polaris/internal/colfile"
)

// Parser-level tests: statement shapes, precedence, and error positions,
// independent of execution.

func parseOK(t *testing.T, q string) Statement {
	t.Helper()
	st, err := Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return st
}

func TestParseSelectShape(t *testing.T) {
	st := parseOK(t, `SELECT a, b AS bb, COUNT(*) n FROM t x
		LEFT JOIN u ON x.k = u.k
		WHERE a > 1 AND b LIKE 'x%'
		GROUP BY a, b HAVING COUNT(*) > 2
		ORDER BY n DESC, a LIMIT 5 OFFSET 2`).(*SelectStmt)
	if len(st.Items) != 3 || st.Items[1].Alias != "bb" || st.Items[2].Alias != "n" {
		t.Fatalf("items = %+v", st.Items)
	}
	if st.From.Name != "t" || st.From.Alias != "x" {
		t.Fatalf("from = %+v", st.From)
	}
	if len(st.Joins) != 1 || !st.Joins[0].Left || st.Joins[0].Table.Name != "u" {
		t.Fatalf("joins = %+v", st.Joins)
	}
	if st.Where == nil || len(st.GroupBy) != 2 || st.Having == nil {
		t.Fatalf("clauses missing: %+v", st)
	}
	if len(st.OrderBy) != 2 || !st.OrderBy[0].Desc || st.OrderBy[1].Desc {
		t.Fatalf("order = %+v", st.OrderBy)
	}
	if st.Limit != 5 || st.Offset != 2 {
		t.Fatalf("limit = %d offset = %d", st.Limit, st.Offset)
	}
}

func TestParseAsOfVsAlias(t *testing.T) {
	st := parseOK(t, `SELECT * FROM t AS OF 42`).(*SelectStmt)
	if st.From.AsOfSeq != 42 || st.From.Alias != "" {
		t.Fatalf("as-of = %+v", st.From)
	}
	st = parseOK(t, `SELECT * FROM t AS x`).(*SelectStmt)
	if st.From.Alias != "x" || st.From.AsOfSeq != -1 {
		t.Fatalf("alias = %+v", st.From)
	}
}

func TestParsePrecedence(t *testing.T) {
	st := parseOK(t, `SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3`).(*SelectStmt)
	// must parse as a=1 OR (b=2 AND c=3)
	or, ok := st.Where.(BinExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("where = %+v", st.Where)
	}
	and, ok := or.R.(BinExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right = %+v", or.R)
	}
	// arithmetic: 1 + 2 * 3 = 1 + (2*3)
	st = parseOK(t, `SELECT 1 + 2 * 3 AS x FROM t`).(*SelectStmt)
	add := st.Items[0].Expr.(BinExpr)
	if add.Op != "+" {
		t.Fatalf("expr = %+v", add)
	}
	if mul, ok := add.R.(BinExpr); !ok || mul.Op != "*" {
		t.Fatalf("right = %+v", add.R)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	st := parseOK(t, `SELECT * FROM t WHERE a > -5 AND b < -1.5`).(*SelectStmt)
	and := st.Where.(BinExpr)
	gt := and.L.(BinExpr)
	if gt.R.(Lit).Val != int64(-5) {
		t.Fatalf("int lit = %+v", gt.R)
	}
	lt := and.R.(BinExpr)
	if lt.R.(Lit).Val != -1.5 {
		t.Fatalf("float lit = %+v", lt.R)
	}
}

func TestParseNotVariants(t *testing.T) {
	st := parseOK(t, `SELECT * FROM t WHERE a NOT LIKE 'x%' AND b NOT IN (1, 2) AND c IS NOT NULL AND NOT d = 1`).(*SelectStmt)
	var count int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case BinExpr:
			walk(x.L)
			walk(x.R)
		case LikeExpr:
			if x.Negate {
				count++
			}
		case InExpr:
			if x.Negate {
				count++
			}
		case IsNullExpr:
			if x.Negate {
				count++
			}
		case NotExpr:
			count++
		}
	}
	walk(st.Where)
	if count != 4 {
		t.Fatalf("negations found = %d", count)
	}
}

func TestParseCreateTableTypes(t *testing.T) {
	st := parseOK(t, `CREATE TABLE t (a INT, b BIGINT, c FLOAT, d DOUBLE, e VARCHAR(50), f TEXT, g BOOL, h BOOLEAN)`).(*CreateTableStmt)
	want := []colfile.DataType{
		colfile.Int64, colfile.Int64, colfile.Float64, colfile.Float64,
		colfile.String, colfile.String, colfile.Bool, colfile.Bool,
	}
	if len(st.Schema) != len(want) {
		t.Fatalf("schema = %+v", st.Schema)
	}
	for i, w := range want {
		if st.Schema[i].Type != w {
			t.Fatalf("col %d type = %v, want %v", i, st.Schema[i].Type, w)
		}
	}
}

func TestParseCreateTableOptions(t *testing.T) {
	st := parseOK(t, `CREATE TABLE t (a INT, b INT) WITH (DISTRIBUTION = a, SORTCOL = b)`).(*CreateTableStmt)
	if st.DistCol != "a" || st.SortCol != "b" {
		t.Fatalf("options = %+v", st)
	}
	if _, err := Parse(`CREATE TABLE t (a INT) WITH (FROBNICATE = a)`); err == nil {
		t.Fatal("unknown option accepted")
	}
}

func TestParseCloneRestore(t *testing.T) {
	c := parseOK(t, `CLONE TABLE a TO b`).(CloneStmt)
	if c.Source != "a" || c.Dest != "b" || c.AsOfSeq != -1 {
		t.Fatalf("clone = %+v", c)
	}
	c = parseOK(t, `CLONE TABLE a TO b AS OF 7`).(CloneStmt)
	if c.AsOfSeq != 7 {
		t.Fatalf("clone = %+v", c)
	}
	r := parseOK(t, `RESTORE TABLE a AS OF 9`).(RestoreStmt)
	if r.Table != "a" || r.AsOfSeq != 9 {
		t.Fatalf("restore = %+v", r)
	}
	if _, err := Parse(`RESTORE TABLE a`); err == nil {
		t.Fatal("restore without AS OF accepted")
	}
}

func TestParseInsertVariants(t *testing.T) {
	st := parseOK(t, `INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')`).(*InsertStmt)
	if len(st.Columns) != 2 || len(st.Rows) != 2 {
		t.Fatalf("insert = %+v", st)
	}
	st = parseOK(t, `INSERT INTO t SELECT * FROM u WHERE a > 0`).(*InsertStmt)
	if st.Query == nil || st.Rows != nil {
		t.Fatalf("insert-select = %+v", st)
	}
	// constant arithmetic in VALUES
	st = parseOK(t, `INSERT INTO t VALUES (1 + 2 * 3)`).(*InsertStmt)
	v, err := evalConst(st.Rows[0][0])
	if err != nil || v != int64(7) {
		t.Fatalf("const fold = %v, %v", v, err)
	}
}

func TestParseTransactionControl(t *testing.T) {
	if _, ok := parseOK(t, `BEGIN TRANSACTION`).(BeginStmt); !ok {
		t.Fatal("BEGIN TRANSACTION")
	}
	if _, ok := parseOK(t, `COMMIT`).(CommitStmt); !ok {
		t.Fatal("COMMIT")
	}
	if _, ok := parseOK(t, `ROLLBACK TRANSACTION`).(RollbackStmt); !ok {
		t.Fatal("ROLLBACK")
	}
}

func TestParseMaintenance(t *testing.T) {
	m := parseOK(t, `COMPACT TABLE t`).(MaintenanceStmt)
	if m.What != "compact" || m.Table != "t" {
		t.Fatalf("compact = %+v", m)
	}
	m = parseOK(t, `CHECKPOINT TABLE t`).(MaintenanceStmt)
	if m.What != "checkpoint" {
		t.Fatalf("checkpoint = %+v", m)
	}
	m = parseOK(t, `VACUUM`).(MaintenanceStmt)
	if m.What != "vacuum" {
		t.Fatalf("vacuum = %+v", m)
	}
}

func TestParseScriptSplitsStatements(t *testing.T) {
	stmts, err := ParseScript(`CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	types := []string{
		reflect.TypeOf(stmts[0]).String(),
		reflect.TypeOf(stmts[1]).String(),
		reflect.TypeOf(stmts[2]).String(),
	}
	if types[0] != "*sql.CreateTableStmt" || types[2] != "*sql.SelectStmt" {
		t.Fatalf("types = %v", types)
	}
	if _, err := ParseScript(`SELECT * FROM t garbage garbage`); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestParseBetweenDesugars(t *testing.T) {
	st := parseOK(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10`).(*SelectStmt)
	b, ok := st.Where.(BetweenExpr)
	if !ok {
		t.Fatalf("where = %+v", st.Where)
	}
	if b.Lo.(Lit).Val != int64(1) || b.Hi.(Lit).Val != int64(10) {
		t.Fatalf("between = %+v", b)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	st := parseOK(t, `SELECT t.a, u.b FROM t JOIN u ON t.k = u.k`).(*SelectStmt)
	c := st.Items[0].Expr.(ColName)
	if c.Table != "t" || c.Name != "a" {
		t.Fatalf("col = %+v", c)
	}
}

func TestParseErrorsCarryPosition(t *testing.T) {
	_, err := Parse(`SELECT * FROM`)
	if err == nil {
		t.Fatal("accepted")
	}
	_, err = Parse(`SELECT * FRM t`)
	if err == nil {
		t.Fatal("typo accepted")
	}
}
