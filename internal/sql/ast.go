package sql

import "polaris/internal/colfile"

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expression AST (unbound: column references are by name).

// Expr is any scalar expression node.
type Expr interface{ expr() }

// ColName references a column, optionally qualified ("t.c").
type ColName struct{ Table, Name string }

// Lit is a literal value: int64, float64, string, bool, or nil.
type Lit struct{ Val any }

// BinExpr is a binary operation; Op is the SQL token ("+", "=", "AND", ...).
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr negates a boolean.
type NotExpr struct{ E Expr }

// IsNullExpr tests NULL-ness.
type IsNullExpr struct {
	E      Expr
	Negate bool
}

// LikeExpr is E LIKE 'pattern'.
type LikeExpr struct {
	E       Expr
	Pattern string
	Negate  bool
}

// InExpr is E IN (literals...).
type InExpr struct {
	E      Expr
	Vals   []any
	Negate bool
}

// BetweenExpr is E BETWEEN lo AND hi.
type BetweenExpr struct {
	E      Expr
	Lo, Hi Expr
}

// FuncExpr is an aggregate call: COUNT/SUM/AVG/MIN/MAX. Star marks COUNT(*).
type FuncExpr struct {
	Name string
	Arg  Expr
	Star bool
}

func (ColName) expr()     {}
func (Lit) expr()         {}
func (BinExpr) expr()     {}
func (NotExpr) expr()     {}
func (IsNullExpr) expr()  {}
func (LikeExpr) expr()    {}
func (InExpr) expr()      {}
func (BetweenExpr) expr() {}
func (FuncExpr) expr()    {}

// SelectItem is one projection: expression plus optional alias; Star selects
// all columns.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
}

// TableRef is a FROM-clause table with optional alias and AS OF sequence.
type TableRef struct {
	Name    string
	Alias   string
	AsOfSeq int64 // -1 = current
}

// JoinClause is one JOIN ... ON ... .
type JoinClause struct {
	Table TableRef
	Left  bool // LEFT OUTER
	On    Expr
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a query.
type SelectStmt struct {
	Items   []SelectItem
	From    TableRef
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   int64 // -1 = none
	Offset  int64
}

// InsertStmt inserts literal rows or a query's result.
type InsertStmt struct {
	Table   string
	Columns []string // optional
	Rows    [][]Expr // VALUES form
	Query   *SelectStmt
}

// UpdateStmt updates matching rows.
type UpdateStmt struct {
	Table string
	Set   map[string]Expr
	Where Expr
}

// DeleteStmt deletes matching rows.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt creates a table.
type CreateTableStmt struct {
	Name        string
	Schema      colfile.Schema
	DistCol     string
	SortCol     string
	IfNotExists bool
}

// DropTableStmt drops a table.
type DropTableStmt struct{ Name string }

// BeginStmt / CommitStmt / RollbackStmt control explicit transactions.
type BeginStmt struct{}

// CommitStmt commits the explicit transaction.
type CommitStmt struct{}

// RollbackStmt aborts the explicit transaction.
type RollbackStmt struct{}

// CloneStmt is CLONE TABLE src TO dst [AS OF seq] (Section 6.2).
type CloneStmt struct {
	Source, Dest string
	AsOfSeq      int64
}

// RestoreStmt is RESTORE TABLE t AS OF seq (Section 6.3).
type RestoreStmt struct {
	Table   string
	AsOfSeq int64
}

// ExplainStmt is EXPLAIN SELECT ...: render the cost-based physical plan as
// text without executing the query.
type ExplainStmt struct {
	Query *SelectStmt
}

// ShowStmt is SHOW TABLES | SHOW STATS tbl.
type ShowStmt struct {
	What  string // "tables" or "stats"
	Table string
}

// MaintenanceStmt is COMPACT TABLE t | CHECKPOINT TABLE t | VACUUM.
type MaintenanceStmt struct {
	What  string // "compact", "checkpoint", "vacuum"
	Table string
}

func (SelectStmt) stmt()      {}
func (InsertStmt) stmt()      {}
func (UpdateStmt) stmt()      {}
func (DeleteStmt) stmt()      {}
func (CreateTableStmt) stmt() {}
func (DropTableStmt) stmt()   {}
func (BeginStmt) stmt()       {}
func (CommitStmt) stmt()      {}
func (RollbackStmt) stmt()    {}
func (CloneStmt) stmt()       {}
func (RestoreStmt) stmt()     {}
func (*ExplainStmt) stmt()    {}
func (ShowStmt) stmt()        {}
func (MaintenanceStmt) stmt() {}
