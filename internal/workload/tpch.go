// Package workload provides the deterministic, laptop-scaled workload
// generators and drivers behind the paper's evaluation (Section 7): TPC-H
// tables and a 22-query power-run set (Figs. 7–9), TPC-DS-shaped sales and
// returns tables, and the LST-Bench WP1/WP3 phase drivers (Figs. 10–12).
//
// Scale factors are laptop-scale: RowsPerSF rows of lineitem per unit SF
// instead of TPC-H's six million. Ratios between scale factors — which is
// what the figures' shapes depend on — are preserved.
package workload

import (
	"fmt"
	"math/rand"

	"polaris/internal/colfile"
	"polaris/internal/core"
)

// RowsPerSF is the number of lineitem rows per unit scale factor.
const RowsPerSF = 8000

// TableDef describes one workload table.
type TableDef struct {
	Name    string
	Schema  colfile.Schema
	DistCol string
	SortCol string
	DDL     string
}

func f(name string, t colfile.DataType) colfile.Field { return colfile.Field{Name: name, Type: t} }

// THTables returns the TPC-H table definitions used by the benchmark
// (lineitem plus the dimensions the query set joins against).
func THTables() []TableDef {
	return []TableDef{
		{
			Name: "lineitem",
			Schema: colfile.Schema{
				f("l_orderkey", colfile.Int64), f("l_partkey", colfile.Int64),
				f("l_suppkey", colfile.Int64), f("l_linenumber", colfile.Int64),
				f("l_quantity", colfile.Int64), f("l_extendedprice", colfile.Float64),
				f("l_discount", colfile.Float64), f("l_tax", colfile.Float64),
				f("l_returnflag", colfile.String), f("l_linestatus", colfile.String),
				f("l_shipdate", colfile.Int64), // days since epoch
			},
			DistCol: "l_orderkey", SortCol: "l_shipdate",
			DDL: `CREATE TABLE lineitem (l_orderkey INT, l_partkey INT, l_suppkey INT,
				l_linenumber INT, l_quantity INT, l_extendedprice FLOAT, l_discount FLOAT,
				l_tax FLOAT, l_returnflag VARCHAR, l_linestatus VARCHAR, l_shipdate INT)
				WITH (DISTRIBUTION = l_orderkey, SORTCOL = l_shipdate)`,
		},
		{
			Name: "orders",
			Schema: colfile.Schema{
				f("o_orderkey", colfile.Int64), f("o_custkey", colfile.Int64),
				f("o_orderstatus", colfile.String), f("o_totalprice", colfile.Float64),
				f("o_orderdate", colfile.Int64), f("o_orderpriority", colfile.String),
			},
			DistCol: "o_orderkey", SortCol: "o_orderdate",
			DDL: `CREATE TABLE orders (o_orderkey INT, o_custkey INT, o_orderstatus VARCHAR,
				o_totalprice FLOAT, o_orderdate INT, o_orderpriority VARCHAR)
				WITH (DISTRIBUTION = o_orderkey, SORTCOL = o_orderdate)`,
		},
		{
			Name: "customer",
			Schema: colfile.Schema{
				f("c_custkey", colfile.Int64), f("c_name", colfile.String),
				f("c_nationkey", colfile.Int64), f("c_acctbal", colfile.Float64),
				f("c_mktsegment", colfile.String),
			},
			DistCol: "c_custkey", SortCol: "c_custkey",
			DDL: `CREATE TABLE customer (c_custkey INT, c_name VARCHAR, c_nationkey INT,
				c_acctbal FLOAT, c_mktsegment VARCHAR)
				WITH (DISTRIBUTION = c_custkey, SORTCOL = c_custkey)`,
		},
		{
			Name: "supplier",
			Schema: colfile.Schema{
				f("s_suppkey", colfile.Int64), f("s_name", colfile.String),
				f("s_nationkey", colfile.Int64), f("s_acctbal", colfile.Float64),
			},
			DistCol: "s_suppkey", SortCol: "s_suppkey",
			DDL: `CREATE TABLE supplier (s_suppkey INT, s_name VARCHAR, s_nationkey INT,
				s_acctbal FLOAT) WITH (DISTRIBUTION = s_suppkey, SORTCOL = s_suppkey)`,
		},
		{
			Name: "part",
			Schema: colfile.Schema{
				f("p_partkey", colfile.Int64), f("p_name", colfile.String),
				f("p_brand", colfile.String), f("p_type", colfile.String),
				f("p_size", colfile.Int64), f("p_retailprice", colfile.Float64),
			},
			DistCol: "p_partkey", SortCol: "p_partkey",
			DDL: `CREATE TABLE part (p_partkey INT, p_name VARCHAR, p_brand VARCHAR,
				p_type VARCHAR, p_size INT, p_retailprice FLOAT)
				WITH (DISTRIBUTION = p_partkey, SORTCOL = p_partkey)`,
		},
		{
			Name: "nation",
			Schema: colfile.Schema{
				f("n_nationkey", colfile.Int64), f("n_name", colfile.String),
				f("n_regionkey", colfile.Int64),
			},
			DistCol: "n_nationkey", SortCol: "n_nationkey",
			DDL: `CREATE TABLE nation (n_nationkey INT, n_name VARCHAR, n_regionkey INT)
				WITH (DISTRIBUTION = n_nationkey, SORTCOL = n_nationkey)`,
		},
	}
}

var (
	returnFlags = []string{"A", "N", "R"}
	lineStatus  = []string{"O", "F"}
	segments    = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"}
	priorities  = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	brands      = []string{"Brand#11", "Brand#12", "Brand#23", "Brand#34", "Brand#55"}
	ptypes      = []string{"STANDARD BRASS", "SMALL PLATED", "MEDIUM ANODIZED", "LARGE BURNISHED", "ECONOMY POLISHED"}
	nations     = []string{"FRANCE", "GERMANY", "JAPAN", "BRAZIL", "KENYA", "PERU", "CHINA", "INDIA"}
)

// LineitemBatch generates rows [lo, hi) of lineitem at a fixed seed; the same
// range always yields the same rows.
func LineitemBatch(lo, hi int64) *colfile.Batch {
	schema := THTables()[0].Schema
	b := colfile.NewBatch(schema)
	for i := lo; i < hi; i++ {
		rng := rand.New(rand.NewSource(i*2654435761 + 17))
		orderkey := i/4 + 1
		_ = b.AppendRow(
			orderkey,
			rng.Int63n(2000)+1,
			rng.Int63n(100)+1,
			i%4+1,
			rng.Int63n(50)+1,
			float64(rng.Int63n(90000)+1000)/100.0,
			float64(rng.Int63n(11))/100.0,
			float64(rng.Int63n(9))/100.0,
			returnFlags[rng.Intn(len(returnFlags))],
			lineStatus[rng.Intn(len(lineStatus))],
			int64(8000+rng.Int63n(2500)), // ~1992..1998 in days
		)
	}
	return b
}

// LineitemSources splits a scale factor's rows into numFiles source files for
// BulkLoad — Fig. 7's parallelism unit. TPC-H ships 40 source files per
// 100GB, so callers typically use 4*sf files.
func LineitemSources(sf float64, numFiles int) []core.SourceFile {
	total := int64(sf * RowsPerSF)
	if numFiles < 1 {
		numFiles = 1
	}
	per := (total + int64(numFiles) - 1) / int64(numFiles)
	var out []core.SourceFile
	for i := 0; i < numFiles; i++ {
		lo := int64(i) * per
		hi := lo + per
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		out = append(out, core.SourceFile{
			Name:     fmt.Sprintf("lineitem.tbl.%d", i),
			SizeHint: (hi - lo) * 120, // ~120 bytes/row in the raw files
			Rows:     func() (*colfile.Batch, error) { return LineitemBatch(lo, hi), nil },
		})
	}
	return out
}

// OrdersBatch generates the orders table sized to match sf.
func OrdersBatch(sf float64) *colfile.Batch {
	schema := THTables()[1].Schema
	b := colfile.NewBatch(schema)
	n := int64(sf * RowsPerSF / 4)
	for i := int64(0); i < n; i++ {
		rng := rand.New(rand.NewSource(i*40503 + 7))
		_ = b.AppendRow(
			i+1,
			rng.Int63n(n/10+1)+1,
			[]string{"O", "F", "P"}[rng.Intn(3)],
			float64(rng.Int63n(400000)+1000)/100.0,
			int64(8000+rng.Int63n(2500)),
			priorities[rng.Intn(len(priorities))],
		)
	}
	return b
}

// CustomerBatch generates the customer table sized to match sf.
func CustomerBatch(sf float64) *colfile.Batch {
	schema := THTables()[2].Schema
	b := colfile.NewBatch(schema)
	n := int64(sf*RowsPerSF/40) + 1
	for i := int64(0); i < n; i++ {
		rng := rand.New(rand.NewSource(i*7919 + 3))
		_ = b.AppendRow(
			i+1,
			fmt.Sprintf("Customer#%09d", i+1),
			rng.Int63n(int64(len(nations))),
			float64(rng.Int63n(100000))/100.0,
			segments[rng.Intn(len(segments))],
		)
	}
	return b
}

// SupplierBatch generates the supplier table.
func SupplierBatch(sf float64) *colfile.Batch {
	schema := THTables()[3].Schema
	b := colfile.NewBatch(schema)
	n := int64(sf*RowsPerSF/80) + 1
	for i := int64(0); i < n; i++ {
		rng := rand.New(rand.NewSource(i*104729 + 11))
		_ = b.AppendRow(
			i+1,
			fmt.Sprintf("Supplier#%09d", i+1),
			rng.Int63n(int64(len(nations))),
			float64(rng.Int63n(100000))/100.0,
		)
	}
	return b
}

// PartBatch generates the part table.
func PartBatch(sf float64) *colfile.Batch {
	schema := THTables()[4].Schema
	b := colfile.NewBatch(schema)
	n := int64(sf*RowsPerSF/4) + 1
	if n > 2000 {
		n = 2000
	}
	for i := int64(0); i < n; i++ {
		rng := rand.New(rand.NewSource(i*31337 + 5))
		_ = b.AppendRow(
			i+1,
			fmt.Sprintf("part %d polished", i+1),
			brands[rng.Intn(len(brands))],
			ptypes[rng.Intn(len(ptypes))],
			rng.Int63n(50)+1,
			float64(rng.Int63n(200000)+90000)/100.0,
		)
	}
	return b
}

// NationBatch generates the nation table.
func NationBatch() *colfile.Batch {
	schema := THTables()[5].Schema
	b := colfile.NewBatch(schema)
	for i, n := range nations {
		_ = b.AppendRow(int64(i), n, int64(i%3))
	}
	return b
}

// LoadTPCH creates and loads all TPC-H tables at the scale factor, splitting
// lineitem into numLineitemFiles source files. It returns the lineitem row
// count.
func LoadTPCH(eng *core.Engine, sf float64, numLineitemFiles int) (int64, error) {
	var loaded int64
	err := eng.AutoCommit(func(tx *core.Txn) error {
		for _, td := range THTables() {
			if _, err := tx.CreateTable(td.Name, td.Schema, td.DistCol, td.SortCol); err != nil {
				return err
			}
		}
		n, err := tx.BulkLoad("lineitem", LineitemSources(sf, numLineitemFiles))
		if err != nil {
			return err
		}
		loaded = n
		if _, err := tx.Insert("orders", OrdersBatch(sf)); err != nil {
			return err
		}
		if _, err := tx.Insert("customer", CustomerBatch(sf)); err != nil {
			return err
		}
		if _, err := tx.Insert("supplier", SupplierBatch(sf)); err != nil {
			return err
		}
		if _, err := tx.Insert("part", PartBatch(sf)); err != nil {
			return err
		}
		if _, err := tx.Insert("nation", NationBatch()); err != nil {
			return err
		}
		return nil
	})
	return loaded, err
}

// THQueries returns the 22-query TPC-H power-run set, transcribed into the
// engine's SQL subset. Queries keep the original's shape (scanned tables,
// join pattern, aggregation) even where the full TPC-H text uses features —
// correlated subqueries, EXISTS — outside the subset.
func THQueries() []string {
	return []string{
		// Q1 pricing summary report
		`SELECT l_returnflag, l_linestatus, SUM(l_quantity) AS sum_qty,
			SUM(l_extendedprice) AS sum_base, AVG(l_discount) AS avg_disc, COUNT(*) AS n
			FROM lineitem WHERE l_shipdate <= 10400
			GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus`,
		// Q2 minimum cost supplier (flattened)
		`SELECT s.s_name, MIN(s.s_acctbal) AS bal FROM supplier s JOIN nation n ON s.s_nationkey = n.n_nationkey
			GROUP BY s.s_name ORDER BY bal DESC LIMIT 10`,
		// Q3 shipping priority
		`SELECT l.l_orderkey, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue, o.o_orderdate
			FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
			WHERE o.o_orderdate < 9500 GROUP BY l.l_orderkey, o.o_orderdate
			ORDER BY revenue DESC LIMIT 10`,
		// Q4 order priority checking (semi-join flattened to join+group)
		`SELECT o.o_orderpriority, COUNT(*) AS order_count FROM orders o
			JOIN lineitem l ON o.o_orderkey = l.l_orderkey
			WHERE o.o_orderdate BETWEEN 9000 AND 9200
			GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`,
		// Q5 local supplier volume
		`SELECT n.n_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM lineitem l JOIN supplier s ON l.l_suppkey = s.s_suppkey
			JOIN nation n ON s.s_nationkey = n.n_nationkey
			GROUP BY n.n_name ORDER BY revenue DESC`,
		// Q6 forecasting revenue change
		`SELECT SUM(l_extendedprice * l_discount) AS revenue FROM lineitem
			WHERE l_shipdate BETWEEN 8500 AND 8900 AND l_discount BETWEEN 0.02 AND 0.09
			AND l_quantity < 24`,
		// Q7 volume shipping
		`SELECT n.n_name, SUM(l.l_extendedprice) AS volume FROM lineitem l
			JOIN supplier s ON l.l_suppkey = s.s_suppkey
			JOIN nation n ON s.s_nationkey = n.n_regionkey
			WHERE l.l_shipdate BETWEEN 8800 AND 9200 GROUP BY n.n_name ORDER BY volume DESC`,
		// Q8 national market share (simplified numerator)
		`SELECT o.o_orderdate / 365 AS year, SUM(l.l_extendedprice * (1 - l.l_discount)) AS volume
			FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
			GROUP BY o.o_orderdate / 365 ORDER BY year`,
		// Q9 product type profit
		`SELECT p.p_brand, SUM(l.l_extendedprice * (1 - l.l_discount)) AS profit
			FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
			GROUP BY p.p_brand ORDER BY profit DESC`,
		// Q10 returned item reporting
		`SELECT c.c_name, SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM lineitem l JOIN orders o ON l.l_orderkey = o.o_orderkey
			JOIN customer c ON o.o_custkey = c.c_custkey
			WHERE l.l_returnflag = 'R' GROUP BY c.c_name ORDER BY revenue DESC LIMIT 20`,
		// Q11 important stock (shape: agg + having)
		`SELECT l_partkey, SUM(l_extendedprice) AS value FROM lineitem
			GROUP BY l_partkey HAVING SUM(l_extendedprice) > 1000 ORDER BY value DESC LIMIT 20`,
		// Q12 shipping modes (priority buckets)
		`SELECT o.o_orderpriority, COUNT(*) AS n FROM orders o
			JOIN lineitem l ON o.o_orderkey = l.l_orderkey
			WHERE l.l_shipdate > 9200 GROUP BY o.o_orderpriority ORDER BY o.o_orderpriority`,
		// Q13 customer distribution
		`SELECT o_custkey, COUNT(*) AS c_count FROM orders GROUP BY o_custkey
			ORDER BY c_count DESC LIMIT 20`,
		// Q14 promotion effect
		`SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue
			FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
			WHERE p.p_type LIKE 'SMALL%'`,
		// Q15 top supplier
		`SELECT l_suppkey, SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
			FROM lineitem WHERE l_shipdate >= 9000 GROUP BY l_suppkey
			ORDER BY total_revenue DESC LIMIT 5`,
		// Q16 parts/supplier relationship
		`SELECT p.p_brand, p.p_type, COUNT(l.l_suppkey) AS supplier_cnt
			FROM part p JOIN lineitem l ON p.p_partkey = l.l_partkey
			WHERE p.p_size >= 10 GROUP BY p.p_brand, p.p_type
			ORDER BY supplier_cnt DESC LIMIT 20`,
		// Q17 small-quantity-order revenue
		`SELECT AVG(l_extendedprice) AS avg_yearly FROM lineitem WHERE l_quantity < 5`,
		// Q18 large volume customer
		`SELECT o.o_orderkey, SUM(l.l_quantity) AS total_qty
			FROM orders o JOIN lineitem l ON o.o_orderkey = l.l_orderkey
			GROUP BY o.o_orderkey HAVING SUM(l.l_quantity) > 100
			ORDER BY total_qty DESC LIMIT 10`,
		// Q19 discounted revenue
		`SELECT SUM(l.l_extendedprice * (1 - l.l_discount)) AS revenue
			FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey
			WHERE l.l_quantity BETWEEN 1 AND 20 AND p.p_size BETWEEN 1 AND 15`,
		// Q20 potential part promotion
		`SELECT s.s_name, COUNT(*) AS n FROM supplier s
			JOIN lineitem l ON s.s_suppkey = l.l_suppkey
			WHERE l.l_shipdate >= 9100 GROUP BY s.s_name ORDER BY n DESC LIMIT 10`,
		// Q21 suppliers who kept orders waiting
		`SELECT s.s_name, COUNT(*) AS numwait FROM supplier s
			JOIN lineitem l ON s.s_suppkey = l.l_suppkey
			WHERE l.l_returnflag = 'R' GROUP BY s.s_name ORDER BY numwait DESC LIMIT 10`,
		// Q22 global sales opportunity
		`SELECT c_mktsegment, COUNT(*) AS numcust, SUM(c_acctbal) AS totacctbal
			FROM customer WHERE c_acctbal > 500
			GROUP BY c_mktsegment ORDER BY c_mktsegment`,
	}
}
