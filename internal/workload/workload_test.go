package workload

import (
	"reflect"
	"testing"

	"polaris/internal/catalog"
	"polaris/internal/compute"
	"polaris/internal/core"
	"polaris/internal/objectstore"
	"polaris/internal/sql"
	"polaris/internal/sto"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Distributions = 4
	opts.RowsPerFile = 2000
	opts.RowsPerGroup = 500
	opts.CompactSmallRows = 50
	fabric := compute.NewFabric(compute.Config{Elastic: true, InitNodes: 4, SlotsPer: 2})
	return core.NewEngine(catalog.NewDB(), objectstore.New(), fabric, opts)
}

func TestLineitemDeterministic(t *testing.T) {
	a := LineitemBatch(100, 200)
	b := LineitemBatch(100, 200)
	if a.NumRows() != 100 || b.NumRows() != 100 {
		t.Fatalf("rows = %d/%d", a.NumRows(), b.NumRows())
	}
	for i := 0; i < 100; i++ {
		if !reflect.DeepEqual(a.Row(i), b.Row(i)) {
			t.Fatalf("row %d differs across generations", i)
		}
	}
	// disjoint ranges differ
	c := LineitemBatch(200, 300)
	if reflect.DeepEqual(a.Row(0), c.Row(0)) {
		t.Fatal("distinct ranges identical")
	}
}

func TestLineitemSourcesPartition(t *testing.T) {
	srcs := LineitemSources(0.05, 4)
	if len(srcs) != 4 {
		t.Fatalf("sources = %d", len(srcs))
	}
	var total int64
	for _, s := range srcs {
		b, err := s.Rows()
		if err != nil {
			t.Fatal(err)
		}
		total += int64(b.NumRows())
	}
	if total != int64(0.05*RowsPerSF) {
		t.Fatalf("total rows = %d", total)
	}
	// degenerate cases
	if got := LineitemSources(0.001, 100); len(got) > 8 {
		t.Fatalf("tiny sf made %d files", len(got))
	}
}

func TestLoadTPCHAndRunAllQueries(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	eng := testEngine(t)
	n, err := LoadTPCH(eng, 0.1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(0.1*RowsPerSF) {
		t.Fatalf("loaded %d rows", n)
	}
	sess := sql.NewSession(eng)
	defer sess.Close()
	for i, q := range THQueries() {
		res, err := sess.Exec(q)
		if err != nil {
			t.Fatalf("Q%d failed: %v", i+1, err)
		}
		if res.Batch == nil {
			t.Fatalf("Q%d returned no batch", i+1)
		}
		if res.SimTime <= 0 {
			t.Fatalf("Q%d charged no simulated time", i+1)
		}
	}
}

func TestTHQ1Shape(t *testing.T) {
	eng := testEngine(t)
	if _, err := LoadTPCH(eng, 0.05, 2); err != nil {
		t.Fatal(err)
	}
	sess := sql.NewSession(eng)
	defer sess.Close()
	res, err := sess.Exec(THQueries()[0])
	if err != nil {
		t.Fatal(err)
	}
	// Q1 groups by (returnflag, linestatus): at most 3x2 groups, sorted.
	if res.Batch.NumRows() == 0 || res.Batch.NumRows() > 6 {
		t.Fatalf("Q1 groups = %d", res.Batch.NumRows())
	}
	for i := 1; i < res.Batch.NumRows(); i++ {
		a, b := res.Batch.Cols[0].Strs[i-1], res.Batch.Cols[0].Strs[i]
		if a > b {
			t.Fatalf("Q1 not sorted: %s > %s", a, b)
		}
	}
}

func TestDSLoadAndQueries(t *testing.T) {
	eng := testEngine(t)
	if err := LoadDS(eng, 500); err != nil {
		t.Fatal(err)
	}
	sess := sql.NewSession(eng)
	defer sess.Close()
	for i, q := range DSQueries(8) {
		if _, err := sess.Exec(q); err != nil {
			t.Fatalf("DS query %d: %v\n%s", i, err, q)
		}
	}
}

func TestRunSUPhase(t *testing.T) {
	eng := testEngine(t)
	if err := LoadDS(eng, 300); err != nil {
		t.Fatal(err)
	}
	res, err := RunSU(eng, DSQueries(6))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 6 || res.SimTime <= 0 {
		t.Fatalf("SU result = %+v", res)
	}
}

func TestRunDMPhase(t *testing.T) {
	eng := testEngine(t)
	if err := LoadDS(eng, 300); err != nil {
		t.Fatal(err)
	}
	orchestrator := sto.New(eng, sto.Config{CheckpointEvery: 10, AutoCompact: false, PublishDelta: false, MaxCompactRetries: 3})
	next := int64(10_000)
	compacted := 0
	cfg := DMConfig{
		Tables:      []string{"store_sales", "store_returns"},
		InsertRows:  100,
		DeleteEvery: 3,
		NextSK:      &next,
		Compact: func(table string) {
			orchestrator.Compact(table)
			compacted++
		},
	}
	res, err := RunDM(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsIn != 400 { // 2 tables x 2 inserts x 100 rows
		t.Fatalf("rows in = %d", res.RowsIn)
	}
	if res.RowsDel == 0 {
		t.Fatal("no rows deleted")
	}
	if compacted != 4 { // 2 tables x 2 compaction points
		t.Fatalf("compactions = %d", compacted)
	}
	// paper: each DM phase creates 10 new manifests per table
	// (2 inserts + 6 deletes + 2 compactions)
	tx := eng.Begin()
	defer tx.Rollback()
	st, err := tx.Stats("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	wantManifests := 1 + 10 // initial load + one DM phase
	if compactionsRan := len(orchestrator.Compactions()); compactionsRan < 2 {
		// compaction may no-op when thresholds aren't crossed; manifests vary
		t.Logf("compactions that did work: %d", compactionsRan)
	}
	if st.Manifests < 9 || st.Manifests > wantManifests {
		t.Fatalf("manifests = %d, want ~%d", st.Manifests, wantManifests)
	}
}

func TestRunConcurrentPhases(t *testing.T) {
	eng := testEngine(t)
	if err := LoadDS(eng, 300); err != nil {
		t.Fatal(err)
	}
	next := int64(10_000)
	su, dm, err := RunConcurrent(eng, DSQueries(6), DMConfig{
		Tables:     []string{"web_sales"},
		InsertRows: 50, DeleteEvery: 3, NextSK: &next,
	})
	if err != nil {
		t.Fatal(err)
	}
	if su.Queries != 6 || dm.RowsIn != 100 {
		t.Fatalf("su = %+v dm = %+v", su, dm)
	}
}

func TestDSBatchDisjointPerTable(t *testing.T) {
	a := DSBatch("store_sales", 0, 10)
	b := DSBatch("web_sales", 0, 10)
	same := true
	for i := 0; i < 10; i++ {
		if !reflect.DeepEqual(a.Row(i), b.Row(i)) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different tables generated identical data")
	}
}

func TestTHQueriesCount(t *testing.T) {
	if len(THQueries()) != 22 {
		t.Fatalf("queries = %d, want 22", len(THQueries()))
	}
	for i, q := range THQueries() {
		if _, err := sql.Parse(q); err != nil {
			t.Fatalf("Q%d does not parse: %v", i+1, err)
		}
	}
}
