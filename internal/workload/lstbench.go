package workload

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"polaris/internal/colfile"
	"polaris/internal/core"
	"polaris/internal/exec"
	"polaris/internal/sql"
)

// TPC-DS-shaped tables for LST-Bench (paper Section 7.3/7.4). The paper's DM
// phases insert into and delete from "the primary sales and returns tables";
// Fig. 11 names the seven tables below.

// DSTableNames lists the tables LST-Bench data maintenance touches, in the
// order Fig. 11 shows them being modified.
func DSTableNames() []string {
	return []string{
		"catalog_sales", "catalog_returns", "inventory",
		"store_sales", "store_returns", "web_sales", "web_returns",
	}
}

// DSTables returns the table definitions.
func DSTables() []TableDef {
	var out []TableDef
	for _, name := range DSTableNames() {
		out = append(out, TableDef{
			Name: name,
			Schema: colfile.Schema{
				f("sk", colfile.Int64),      // surrogate key
				f("item_sk", colfile.Int64), // item key
				f("qty", colfile.Int64),
				f("price", colfile.Float64),
				f("sold_date", colfile.Int64),
			},
			DistCol: "sk", SortCol: "sold_date",
		})
	}
	return out
}

// DSBatch generates rows [lo, hi) for a DS table; deterministic per table.
func DSBatch(table string, lo, hi int64) *colfile.Batch {
	schema := DSTables()[0].Schema
	b := colfile.NewBatch(schema)
	tseed := int64(len(table)) * 1_000_003
	for i := lo; i < hi; i++ {
		rng := rand.New(rand.NewSource(i*6364136223846793005 + tseed))
		_ = b.AppendRow(
			i,
			rng.Int63n(1000)+1,
			rng.Int63n(100)+1,
			float64(rng.Int63n(50000)+100)/100.0,
			int64(2450000+rng.Int63n(1800)),
		)
	}
	return b
}

// LoadDS creates and loads all DS tables with rowsPerTable rows.
func LoadDS(eng *core.Engine, rowsPerTable int64) error {
	return eng.AutoCommit(func(tx *core.Txn) error {
		for _, td := range DSTables() {
			if _, err := tx.CreateTable(td.Name, td.Schema, td.DistCol, td.SortCol); err != nil {
				return err
			}
			if _, err := tx.Insert(td.Name, DSBatch(td.Name, 0, rowsPerTable)); err != nil {
				return err
			}
		}
		return nil
	})
}

// DSQueries is the Single-User (SU) query set standing in for the 99 TPC-DS
// queries: numQueries aggregation/join queries over the sales and returns
// tables. The point of the SU phase in Figs. 10–12 is sustained scan pressure
// on the maintained tables, which these provide.
func DSQueries(numQueries int) []string {
	tables := DSTableNames()
	var qs []string
	for i := 0; i < numQueries; i++ {
		t := tables[i%len(tables)]
		switch i % 4 {
		case 0:
			qs = append(qs, fmt.Sprintf(
				`SELECT item_sk, SUM(price) AS rev, COUNT(*) AS n FROM %s GROUP BY item_sk ORDER BY rev DESC LIMIT 10`, t))
		case 1:
			qs = append(qs, fmt.Sprintf(
				`SELECT sold_date / 30 AS m, SUM(qty) AS q FROM %s WHERE sold_date > 2450600 GROUP BY sold_date / 30 ORDER BY m LIMIT 24`, t))
		case 2:
			t2 := tables[(i+1)%len(tables)]
			qs = append(qs, fmt.Sprintf(
				`SELECT a.item_sk, SUM(a.price) AS pa, SUM(b.price) AS pb FROM %s a JOIN %s b ON a.item_sk = b.item_sk GROUP BY a.item_sk ORDER BY pa DESC LIMIT 10`, t, t2))
		default:
			qs = append(qs, fmt.Sprintf(
				`SELECT COUNT(*) AS n, AVG(price) AS ap, MAX(qty) AS mq FROM %s WHERE qty BETWEEN 10 AND 60`, t))
		}
	}
	return qs
}

// PhaseResult summarizes one LST-Bench phase execution.
type PhaseResult struct {
	Name     string
	SimTime  time.Duration
	Queries  int
	RowsIn   int64
	RowsDel  int64
	Began    time.Time
	Finished time.Time
}

// RunSU runs one Single User phase: the query set, serially, in one session.
// Returns the total simulated time.
func RunSU(eng *core.Engine, queries []string) (PhaseResult, error) {
	res := PhaseResult{Name: "SU", Began: time.Now()}
	sess := sql.NewSession(eng)
	defer sess.Close()
	for _, q := range queries {
		r, err := sess.Exec(q)
		if err != nil {
			return res, fmt.Errorf("workload: SU query failed: %w\n%s", err, q)
		}
		res.SimTime += r.SimTime
		res.Queries++
	}
	res.Finished = time.Now()
	return res, nil
}

// DMConfig parameterizes a data-maintenance phase. The paper's WP1 DM phase
// runs 2 INSERT and 6 DELETE statements per table group, with data
// compaction run twice — once between each set of 3 DELETE statements
// (Section 7.3, Fig. 11).
type DMConfig struct {
	Tables       []string
	InsertRows   int64
	DeleteEvery  int64 // delete rows with sk % DeleteEvery == phase offset
	Compact      func(table string)
	NextSK       *int64 // monotonically growing surrogate key base
	CompactTimes int
}

// dmSteps flattens a DM phase into statement-level steps — per table, 2
// INSERTs then 6 DELETEs with compaction after each set of 3 — so callers
// can run them back to back (RunDM) or deterministically interleaved with
// query work (RunInterleaved). Each step accumulates its effect into res.
func dmSteps(eng *core.Engine, cfg DMConfig, res *PhaseResult) []func() error {
	var steps []func() error
	for _, table := range cfg.Tables {
		table := table
		for s := 0; s < 2; s++ {
			steps = append(steps, func() error {
				lo := *cfg.NextSK
				hi := lo + cfg.InsertRows
				*cfg.NextSK = hi
				return eng.RunWithRetries(3, func(tx *core.Txn) error {
					n, err := tx.Insert(table, DSBatch(table, lo, hi))
					res.RowsIn += n
					res.SimTime += tx.SimTime()
					return err
				})
			})
		}
		for s := 0; s < 6; s++ {
			s := s
			steps = append(steps, func() error {
				mod := cfg.DeleteEvery + int64(s)
				err := eng.RunWithRetries(3, func(tx *core.Txn) error {
					n, err := tx.Delete(table, exec.Bin{
						Kind: exec.OpEq,
						L:    exec.Bin{Kind: exec.OpMod, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: cfg.DeleteEvery * 7}},
						R:    exec.Const{Val: mod},
					})
					res.RowsDel += n
					res.SimTime += tx.SimTime()
					return err
				})
				if err != nil {
					return err
				}
				if (s+1)%3 == 0 && cfg.Compact != nil {
					cfg.Compact(table)
				}
				return nil
			})
		}
	}
	return steps
}

// RunDM runs one Data Maintenance phase: per table, 2 inserts and 6 deletes,
// with compaction interleaved per the paper's description when Compact is
// provided.
func RunDM(eng *core.Engine, cfg DMConfig) (PhaseResult, error) {
	res := PhaseResult{Name: "DM", Began: time.Now()}
	for _, step := range dmSteps(eng, cfg, &res) {
		if err := step(); err != nil {
			return res, err
		}
	}
	res.Finished = time.Now()
	return res, nil
}

// RunInterleavedSteps runs the query set with write/maintenance steps woven
// through it DETERMINISTICALLY: one step completes before each query until
// the steps drain, any remainder runs after the last query. Unlike a
// goroutine race, every run interleaves identically, so the modeled work
// each query's snapshot sees — and therefore the phase's work counters — is
// reproducible. Benchmark figures that must assert on read/write contention
// use this runner.
func RunInterleavedSteps(eng *core.Engine, queries []string, steps []func() error) (PhaseResult, error) {
	su := PhaseResult{Name: "SU", Began: time.Now()}
	sess := sql.NewSession(eng)
	defer sess.Close()
	si := 0
	for _, q := range queries {
		if si < len(steps) {
			if err := steps[si](); err != nil {
				return su, err
			}
			si++
		}
		r, err := sess.Exec(q)
		if err != nil {
			return su, fmt.Errorf("workload: interleaved query failed: %w\n%s", err, q)
		}
		su.SimTime += r.SimTime
		su.Queries++
	}
	for ; si < len(steps); si++ {
		if err := steps[si](); err != nil {
			return su, err
		}
	}
	su.Finished = time.Now()
	return su, nil
}

// RunInterleaved runs an SU phase with a DM phase woven through it
// deterministically, one DM statement per query (see RunInterleavedSteps).
func RunInterleaved(eng *core.Engine, queries []string, cfg DMConfig) (PhaseResult, PhaseResult, error) {
	dm := PhaseResult{Name: "DM", Began: time.Now()}
	su, err := RunInterleavedSteps(eng, queries, dmSteps(eng, cfg, &dm))
	dm.Finished = time.Now()
	return su, dm, err
}

// RunConcurrent runs an SU phase and a DM phase concurrently (WP3, Fig. 12)
// and returns both results.
func RunConcurrent(eng *core.Engine, queries []string, cfg DMConfig) (PhaseResult, PhaseResult, error) {
	var su, dm PhaseResult
	var suErr, dmErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		su, suErr = RunSU(eng, queries)
	}()
	go func() {
		defer wg.Done()
		dm, dmErr = RunDM(eng, cfg)
	}()
	wg.Wait()
	if suErr != nil {
		return su, dm, suErr
	}
	return su, dm, dmErr
}
