package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file bundles polarisvet's versions of four upstream go/analysis
// passes (lostcancel, copylocks, atomic, nilness). The repo deliberately
// has zero module dependencies, so these are conservative stdlib-only
// re-implementations of the high-signal core of each upstream check, not
// vendored copies: each flags only patterns that are unambiguously wrong,
// trading the SSA-level recall of the originals for zero false positives.

// LostCancel flags context.WithCancel/WithTimeout/WithDeadline calls whose
// cancel function is discarded or never used: the derived context's
// resources are held until the parent dies.
var LostCancel = &Analyzer{
	Name: "lostcancel",
	Doc:  "the cancel function from context.With{Cancel,Timeout,Deadline} must be used",
	Run:  runLostCancel,
}

var cancelReturning = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

func runLostCancel(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFunc(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
					return true
				}
				call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || funcPkgPath(fn) != "context" || !cancelReturning[fn.Name()] {
					return true
				}
				cancel, ok := ast.Unparen(as.Lhs[1]).(*ast.Ident)
				if !ok {
					return true
				}
				if cancel.Name == "_" {
					p.Reportf(cancel.Pos(), "the cancel function returned by context.%s is discarded; deferring it releases the context's resources", fn.Name())
					return true
				}
				obj := p.Pkg.Info.Defs[cancel]
				if obj == nil {
					return true // plain assignment to an existing var: assume used elsewhere
				}
				used := false
				ast.Inspect(body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id != cancel && p.Pkg.Info.Uses[id] == obj {
						used = true
					}
					return !used
				})
				if !used {
					p.Reportf(cancel.Pos(), "the cancel function %s is never used; defer %s() to release the context's resources", cancel.Name, cancel.Name)
				}
				return true
			})
		})
	}
}

// CopyLocks flags signatures and range statements that copy a value
// containing a sync or sync/atomic state-carrying type by value.
var CopyLocks = &Analyzer{
	Name: "copylocks",
	Doc:  "flags by-value copies of types containing sync/sync-atomic state",
	Run:  runCopyLocks,
}

func runCopyLocks(p *Pass) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, fld := range fl.List {
			t := p.TypeOf(fld.Type)
			if name := lockTypeIn(t, nil); name != "" {
				p.Reportf(fld.Type.Pos(), "%s copies %s by value (contains %s); use a pointer", what, types.TypeString(t, nil), name)
			}
		}
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "receiver")
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.RangeStmt:
				if n.Value != nil {
					if name := lockTypeIn(p.TypeOf(n.Value), nil); name != "" {
						p.Reportf(n.Value.Pos(), "range value copies %s by value (contains %s); iterate by index", types.TypeString(p.TypeOf(n.Value), nil), name)
					}
				}
			}
			return true
		})
	}
}

// lockTypeIn returns the name of a sync/sync-atomic struct type contained
// (transitively, by value) in t, or "".
func lockTypeIn(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil && (pkg.Path() == "sync" || pkg.Path() == "sync/atomic") {
			if _, isStruct := named.Underlying().(*types.Struct); isStruct {
				return pkg.Path() + "." + obj.Name()
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name := lockTypeIn(u.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return lockTypeIn(u.Elem(), seen)
	}
	return ""
}

// AtomicAssign flags `x = atomic.AddT(&x, ...)`: the plain store back into
// x races with the atomic read-modify-write it is meant to protect.
var AtomicAssign = &Analyzer{
	Name: "atomic",
	Doc:  "flags x = atomic.AddT(&x, ...) self-assignments that defeat the atomic op",
	Run:  runAtomicAssign,
}

func runAtomicAssign(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					continue
				}
				fn := calleeFunc(p, call)
				if fn == nil || funcPkgPath(fn) != "sync/atomic" || !strings.HasPrefix(fn.Name(), "Add") {
					continue
				}
				addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
				if !ok || addr.Op != token.AND {
					continue
				}
				if types.ExprString(ast.Unparen(addr.X)) == types.ExprString(ast.Unparen(as.Lhs[i])) {
					p.Reportf(as.Pos(), "direct assignment of atomic.%s result back to %s races with the atomic update; drop the assignment", fn.Name(), types.ExprString(ast.Unparen(as.Lhs[i])))
				}
			}
			return true
		})
	}
}

// NilnessLite flags uses of a pointer, interface, or func value inside the
// taken branch of `if x == nil` when x is never reassigned in that branch:
// the dereference is a guaranteed panic on that path. (The upstream SSA
// nilness pass proves more; this catches the pattern that survives code
// review most often.)
var NilnessLite = &Analyzer{
	Name: "nilness",
	Doc:  "flags guaranteed nil dereferences inside the taken branch of x == nil",
	Run:  runNilness,
}

func runNilness(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj := nilComparedVar(p, ifs.Cond)
			if obj == nil || assignsTo(p, ifs.Body, obj) {
				return true
			}
			inspectShallow(ifs.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SelectorExpr:
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && p.ObjectOf(id) == obj {
						p.Reportf(n.Pos(), "nil dereference: %s is nil in this branch", obj.Name())
					}
				case *ast.StarExpr:
					if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && p.ObjectOf(id) == obj {
						p.Reportf(n.Pos(), "nil dereference: %s is nil in this branch", obj.Name())
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && p.ObjectOf(id) == obj {
						p.Reportf(n.Pos(), "nil function call: %s is nil in this branch", obj.Name())
					}
				}
				return true
			})
			return true
		})
	}
}

// nilComparedVar returns the variable in a `x == nil` / `nil == x`
// condition when x's type can actually be dereferenced (pointer,
// interface, func), else nil.
func nilComparedVar(p *Pass, cond ast.Expr) types.Object {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return nil
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(p, x) {
		x, y = y, x
	}
	if !isNilIdent(p, y) {
		return nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := p.ObjectOf(id)
	if obj == nil {
		return nil
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature:
		return obj
	}
	return nil
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.ObjectOf(id).(*types.Nil)
	return isNil
}

// assignsTo reports whether any statement in n (closures excluded — they
// may run after the branch) assigns to obj, including := redeclarations
// and taking its address.
func assignsTo(p *Pass, n ast.Node, obj types.Object) bool {
	found := false
	inspectShallow(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if id, ok := ast.Unparen(l).(*ast.Ident); ok && p.ObjectOf(id) == obj {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && p.ObjectOf(id) == obj {
					found = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(n.X).(*ast.Ident); ok && p.ObjectOf(id) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}
