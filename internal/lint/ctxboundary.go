package lint

import (
	"go/ast"
	"go/types"
)

// CtxBoundary enforces the cancellation-observation contract for fan-out
// bodies (docs/ARCHITECTURE.md, docs/DCP-QUERIES.md): when a cancelled
// sibling task fails a query, in-flight work must stop at the next batch or
// spill-file boundary instead of draining a doomed scan. Concretely: inside
// a function that has a context available, any loop that writes spill files
// (objectstore Put) or drains an operator (exec.Collect) must mention a
// context-typed value in its body — ctx.Err(), CollectCtx(ctx, ...), a
// select on ctx.Done(), all qualify. Loops in functions with no context in
// scope are serial paths and exempt. //polaris:ctx <reason> escapes loops
// whose per-iteration work is provably bounded.
var CtxBoundary = &Analyzer{
	Name: "ctxboundary",
	Doc:  "fan-out loops calling Put/Collect must observe a context at batch/file boundaries",
	AppliesTo: inPkgs(
		"polaris/internal/exec",
		"polaris/internal/dcp",
		"polaris/internal/sql",
	),
	Run: runCtxBoundary,
}

func runCtxBoundary(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFunc(f, func(ftype *ast.FuncType, body *ast.BlockStmt) {
			if !funcHasContext(p, ftype, body) {
				return
			}
			inspectShallow(body, func(n ast.Node) bool {
				var loopBody *ast.BlockStmt
				var pos = n.Pos()
				switch n := n.(type) {
				case *ast.ForStmt:
					loopBody = n.Body
				case *ast.RangeStmt:
					loopBody = n.Body
				default:
					return true
				}
				callee := boundaryCallIn(p, loopBody)
				if callee == "" || mentionsContext(p, loopBody) {
					return true
				}
				if p.Suppressed("ctx", pos) {
					return true
				}
				p.Reportf(pos, "loop calls %s without observing the context between iterations: check ctx at batch/file boundaries (CollectCtx, ctx.Err()) or annotate //polaris:ctx <reason> (docs/DCP-QUERIES.md)", callee)
				return true
			})
		})
	}
}

// funcHasContext reports whether the function declares a context.Context
// parameter or mentions a context-typed value anywhere in its body
// (captured contexts count: the fan-out contract follows the value, not
// the signature).
func funcHasContext(p *Pass, ftype *ast.FuncType, body *ast.BlockStmt) bool {
	if ftype != nil && ftype.Params != nil {
		for _, fld := range ftype.Params.List {
			if t := p.TypeOf(fld.Type); t != nil && isContextType(t) {
				return true
			}
		}
	}
	return mentionsContext(p, body)
}

// mentionsContext reports whether any expression in n (nested closures
// included — they run inside the loop) has type context.Context.
func mentionsContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok || found {
			return !found
		}
		if t := p.TypeOf(e); t != nil && isContextType(t) {
			found = true
		}
		return !found
	})
	return found
}

// boundaryCallIn returns a description of the first boundary-relevant call
// in the loop body: an objectstore Put (spill-file write) or exec.Collect
// (unbounded operator drain). Nested closures count — they execute within
// the loop.
func boundaryCallIn(p *Pass, body *ast.BlockStmt) string {
	desc := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch {
		case fn.Name() == "Put" && sig != nil && sig.Recv() != nil &&
			hasPkgSuffix(funcPkgPath(fn), "internal/objectstore"):
			desc = "objectstore Put"
		case fn.Name() == "Collect" && (sig == nil || sig.Recv() == nil) &&
			hasPkgSuffix(funcPkgPath(fn), "internal/exec"):
			desc = "exec.Collect"
		}
		return true
	})
	return desc
}
