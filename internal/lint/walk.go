package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// forEachFunc calls fn once per function body in the file: every FuncDecl
// and every FuncLit, innermost bodies included. fnType is the syntactic
// signature (for parameter checks); it is the FuncDecl's Type or the
// FuncLit's Type.
func forEachFunc(f *ast.File, fn func(ftype *ast.FuncType, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Type, n.Body)
			}
		case *ast.FuncLit:
			fn(n.Type, n.Body)
		}
		return true
	})
}

// inspectShallow walks n but does not descend into nested function
// literals: their bodies run on their own schedule, so statement-level
// analyses treat them as separate functions (forEachFunc visits them).
func inspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// inspectStack walks n calling fn with the path of ancestors (outermost
// first, not including n itself).
func inspectStack(n ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// calleeFunc resolves the static callee of a call, or nil (builtin calls,
// conversions, and calls through function values resolve to nil).
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.ObjectOf(id).(*types.Func)
	return fn
}

// funcPkgPath returns the import path of the function's defining package
// ("" for builtins and method expressions on unnamed types).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// hasPkgSuffix matches an import path against a repo-relative package
// identity, so "polaris/internal/colfile" matches "internal/colfile" from
// both real packages and testdata packages that import the real one.
func hasPkgSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// derefNamed unwraps pointers and returns the named type, or nil.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// isBuiltinCall reports whether the call invokes the named builtin.
func isBuiltinCall(p *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = p.ObjectOf(id).(*types.Builtin)
	return ok
}

// isConversionOrBuiltin reports whether the call is a type conversion or
// any builtin (len, cap, string(...), min, ...): calls with no side
// effects relevant to iteration order.
func isConversionOrBuiltin(p *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch p.ObjectOf(fun).(type) {
		case *types.Builtin, *types.TypeName:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := p.ObjectOf(fun.Sel).(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.StarExpr, *ast.InterfaceType, *ast.FuncType, *ast.ChanType:
		return true
	}
	return false
}
