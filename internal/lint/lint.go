// Package lint is the analysis framework behind cmd/polarisvet: a small,
// dependency-free re-implementation of the golang.org/x/tools go/analysis
// vocabulary (Analyzer, Pass, diagnostics, golden tests) on top of the
// standard library's go/ast and go/types.
//
// Each Analyzer in Registry mechanizes one of the repo's normative prose
// contracts — the cross-DOP byte-identity determinism contract
// (docs/ARCHITECTURE.md), the kernel/selection-vector aliasing rules
// (docs/VECTORIZATION.md), and the spill-namespace cleanup invariant
// (docs/DCP-QUERIES.md) — so a violation is caught at the AST level on
// every `make lint`, before any runtime test runs. docs/LINT.md is the
// user-facing catalog; cmd/doccheck keeps it in sync with Registry.
//
// Sites where an analyzer's conservative rule is wrong carry a
// //polaris:<key> <reason> annotation (see docs/LINT.md for the grammar);
// the reason must cite the invariant that makes the site safe, and stale
// annotations (suppressing nothing) are themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the identifier used by -analyzers, diagnostics, and the
	// docs/LINT.md catalog.
	Name string
	// Doc is a one-line description (shown by polarisvet -list).
	Doc string
	// AppliesTo restricts the analyzer to packages whose contract it
	// encodes; nil means every package. The driver enforces it — tests
	// (linttest) run analyzers directly on testdata packages.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object an identifier uses or defines, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Pkg.Info.Uses[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Defs[id]
}

// Suppressed reports whether a //polaris:<key> annotation covers pos (same
// line or the line directly above). Call it only once a finding is certain:
// a matching annotation is marked used, and annotations that never suppress
// anything are reported as stale by StaleAnnotations.
func (p *Pass) Suppressed(key string, pos token.Pos) bool {
	return p.Pkg.anns.suppressed(key, p.Pkg.Fset.Position(pos))
}

// FileSuppressed reports whether the file containing pos carries a
// file-level //polaris:<key> annotation anywhere (used by selaware's
// kernel-file whitelist).
func (p *Pass) FileSuppressed(pos token.Pos, key string) bool {
	return p.Pkg.anns.fileSuppressed(key, p.Pkg.Fset.Position(pos).Filename)
}

// FuncSuppressed reports whether a //polaris:<key> annotation in decl's doc
// comment (or on the line directly above the func keyword) covers the whole
// function. Like Suppressed, a match is marked used.
func (p *Pass) FuncSuppressed(key string, decl *ast.FuncDecl) bool {
	funcLine := p.Pkg.Fset.Position(decl.Pos()).Line
	start := funcLine - 1
	if decl.Doc != nil {
		start = p.Pkg.Fset.Position(decl.Doc.Pos()).Line
	}
	filename := p.Pkg.Fset.Position(decl.Pos()).Filename
	return p.Pkg.anns.rangeSuppressed(key, filename, start, funcLine)
}

// RunAnalyzers runs each analyzer over pkg (ignoring AppliesTo — scoping is
// the caller's job) and returns the findings in position order.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Pkg: pkg, report: func(d Diagnostic) {
			diags = append(diags, d)
		}}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, line, column, analyzer, message.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
