package lint

import (
	"go/ast"
)

// vecDataFields are colfile.Vec's physical lane arrays. Indexing them with
// a raw integer reads a physical row, which is wrong whenever the owning
// Batch carries a selection vector (docs/VECTORIZATION.md): logical row i
// lives at physical position Sel[i].
var vecDataFields = map[string]bool{
	"Ints": true, "Floats": true, "Strs": true, "Bools": true, "Nulls": true,
}

// SelAware enforces the selection-vector contract outside the kernel layer:
// code must go through Batch.Row, the typed kernels, or Materialize()
// rather than indexing or ranging over Vec's data arrays directly. The
// kernel layer itself — files that legitimately operate on physical lanes
// behind a Sel-translation boundary — is whitelisted with a file-level
// //polaris:kernelfile <reason> annotation; a //polaris:kernel <reason> in a
// function's doc comment whitelists that function, and one on a statement
// line whitelists the single site.
var SelAware = &Analyzer{
	Name: "selaware",
	Doc:  "flags raw Vec lane indexing outside the kernel whitelist (selection-vector contract)",
	AppliesTo: inPkgs(
		"polaris/internal/exec",
		"polaris/internal/sql",
		"polaris/internal/dcp",
		"polaris/internal/server",
	),
	Run: runSelAware,
}

func runSelAware(p *Pass) {
	for _, f := range p.Pkg.Files {
		if p.FileSuppressed(f.Pos(), "kernelfile") {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && p.FuncSuppressed("kernel", fd) {
				continue
			}
			checkSelDecl(p, decl)
		}
	}
}

func checkSelDecl(p *Pass, decl ast.Decl) {
	ast.Inspect(decl, func(n ast.Node) bool {
		var target ast.Expr
		switch n := n.(type) {
		case *ast.IndexExpr:
			target = n.X
		case *ast.RangeStmt:
			target = n.X
		case *ast.SliceExpr:
			target = n.X
		default:
			return true
		}
		field := vecDataField(p, target)
		if field == "" {
			return true
		}
		if p.Suppressed("kernel", n.Pos()) {
			return true
		}
		p.Reportf(n.Pos(), "raw access to Vec.%s bypasses the selection vector: use Batch.Row/kernels/Materialize, or annotate //polaris:kernel <reason> (docs/VECTORIZATION.md)", field)
		return true
	})
}

// vecDataField returns the lane-array field name if e selects one of
// colfile.Vec's data arrays, else "".
func vecDataField(p *Pass, e ast.Expr) string {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	selection, ok := p.Pkg.Info.Selections[sel]
	if !ok {
		return ""
	}
	field := selection.Obj()
	if !vecDataFields[field.Name()] {
		return ""
	}
	named := derefNamed(selection.Recv())
	if named == nil || named.Obj().Name() != "Vec" {
		return ""
	}
	if pkg := named.Obj().Pkg(); pkg == nil || !hasPkgSuffix(pkg.Path(), "internal/colfile") {
		return ""
	}
	return field.Name()
}
