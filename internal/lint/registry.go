package lint

// Registry returns every analyzer in the polarisvet multichecker, in the
// order findings group best: custom contract passes first, bundled
// upstream-style passes after, annotation hygiene last. cmd/doccheck
// verifies docs/LINT.md lists exactly these names, and cmd/polarisvet
// -list prints them.
func Registry() []*Analyzer {
	return []*Analyzer{
		DetMapOrder,
		NondetSource,
		SelAware,
		SpillCleanup,
		CtxBoundary,
		LostCancel,
		CopyLocks,
		AtomicAssign,
		NilnessLite,
		Annotations,
	}
}
