package lint

import (
	"go/ast"
	"go/types"
)

// SpillCleanup enforces the zero-leaked-blobs invariant
// (docs/DCP-QUERIES.md): every objectstore.SpillDir acquisition
// (objectstore.NewSpillDir or core.Txn.NewSpillDir) must either be cleaned
// up in the acquiring function — a call or defer reaching .Cleanup(),
// possibly inside a closure — or transfer ownership somewhere trackable
// (returned, stored in a field or composite literal, passed to another
// function). A SpillDir bound to a local that is neither cleaned nor
// escapes is a leak on every path; a discarded result can never be cleaned
// at all. //polaris:spill <reason> escapes sites with out-of-band
// ownership.
var SpillCleanup = &Analyzer{
	Name: "spillcleanup",
	Doc:  "every SpillDir acquisition needs a reachable Cleanup or an ownership transfer",
	Run:  runSpillCleanup,
}

func runSpillCleanup(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFunc(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			inspectStack(body, func(n ast.Node, stack []ast.Node) {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isSpillDirAcquisition(p, call) {
					return
				}
				if ok, obj := acquisitionHandled(p, body, call, stack); !ok {
					if p.Suppressed("spill", call.Pos()) {
						return
					}
					what := "the acquired SpillDir is discarded"
					if obj != nil {
						what = obj.Name() + " is neither cleaned up nor handed off"
					}
					p.Reportf(call.Pos(), "SpillDir acquired without a reachable Cleanup: %s; defer .Cleanup(), transfer ownership, or annotate //polaris:spill <reason> (docs/DCP-QUERIES.md)", what)
				}
			})
		})
	}
}

// isSpillDirAcquisition matches calls to a function or method named
// NewSpillDir defined in internal/objectstore or internal/core.
func isSpillDirAcquisition(p *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Name() != "NewSpillDir" {
		return false
	}
	path := funcPkgPath(fn)
	return hasPkgSuffix(path, "internal/objectstore") || hasPkgSuffix(path, "internal/core")
}

// acquisitionHandled classifies the acquisition site by its parent: an
// escape (field store, composite literal, call argument, return) transfers
// ownership; a local binding demands a Cleanup reference or a later escape
// of that local. It returns the bound local (if any) for the message.
func acquisitionHandled(p *Pass, body *ast.BlockStmt, call *ast.CallExpr, stack []ast.Node) (bool, types.Object) {
	parent := parentNonParen(stack)
	switch parent := parent.(type) {
	case *ast.AssignStmt:
		// Find which LHS receives the call's value.
		for i, rhs := range parent.Rhs {
			if ast.Unparen(rhs) != call {
				continue
			}
			if i >= len(parent.Lhs) {
				break
			}
			switch lhs := ast.Unparen(parent.Lhs[i]).(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					return false, nil // deliberately discarded: always a leak
				}
				obj := p.ObjectOf(lhs)
				if obj == nil {
					return true, nil
				}
				return localCleanedOrEscapes(p, body, obj, parent), obj
			default:
				// Field or index store: ownership lives in the structure.
				return true, nil
			}
		}
		return true, nil
	case *ast.ExprStmt:
		return false, nil // result discarded
	default:
		// Composite literal element, call argument, return value, var init:
		// ownership transfers with the value.
		return true, nil
	}
}

func parentNonParen(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		return stack[i]
	}
	return nil
}

// localCleanedOrEscapes scans the function body after the binding for a
// .Cleanup reference on obj (call or defer, closures included) or an
// ownership transfer of obj (argument, return, store into a field, index,
// composite literal, channel, or another variable).
func localCleanedOrEscapes(p *Pass, body *ast.BlockStmt, obj types.Object, after ast.Node) bool {
	handled := false
	inspectStack(body, func(n ast.Node, stack []ast.Node) {
		if handled {
			return
		}
		id, ok := n.(*ast.Ident)
		if !ok || p.ObjectOf(id) != obj || id.Pos() < after.End() {
			return
		}
		parent := parentNonParen(stack)
		switch parent := parent.(type) {
		case *ast.SelectorExpr:
			if parent.X == id && parent.Sel.Name == "Cleanup" {
				handled = true
			}
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if ast.Unparen(arg) == id {
					handled = true // ownership passed along
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			handled = true
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if ast.Unparen(rhs) == id {
					handled = true // re-bound: the new binding owns it
				}
			}
		case *ast.UnaryExpr:
			handled = true // &dir: aliased, assume the alias owns it
		}
	})
	return handled
}
