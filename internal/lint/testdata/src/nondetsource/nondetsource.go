// Package nondetsource exercises the nondetsource analyzer: banned ambient
// sources, the seeded-generator exemption, and the annotation escape.
package nondetsource

import (
	"math/rand"
	"os"
	"time"
)

// Stamp reads the wall clock: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

// Pick uses the process-global unseeded generator: flagged.
func Pick(n int) int {
	return rand.Intn(n) // want `math/rand\.Intn in a deterministic package`
}

// Env reads the environment: flagged.
func Env() string {
	v, _ := os.LookupEnv("POLARIS_SEED") // want `os\.LookupEnv in a deterministic package`
	return v
}

// Seeded draws from a caller-owned generator: methods are exempt because
// the caller controls the seed.
func Seeded(r *rand.Rand) int {
	return r.Intn(10)
}

// Jitter is annotated: the value never reaches contract-covered output.
func Jitter() time.Duration {
	//polaris:nondet retry jitter is consumed by the scheduler and never reaches query output
	return time.Duration(rand.Int63n(1000))
}
