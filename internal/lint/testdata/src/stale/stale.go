// Package stale exercises the stale-annotation check: an annotation that
// suppresses a live finding is fine; one on a loop the analyzer already
// accepts has outlived its hazard and is itself a finding.
package stale

// First genuinely needs its escape: the annotation is used, not stale.
func First(m map[string]int) string {
	//polaris:nondet callers treat the result as a sampling hint, never as output
	for k := range m {
		return k
	}
	return ""
}

// Sum is accepted by detmaporder on its own (commutative integer
// accumulation), so the annotation suppresses nothing.
func Sum(m map[string]int) int {
	n := 0
	/* want "stale" */ //polaris:nondet integer accumulation commutes
	for _, v := range m {
		n += v
	}
	return n
}
