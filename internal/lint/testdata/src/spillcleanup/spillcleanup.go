// Package spillcleanup exercises the spillcleanup analyzer: leaked and
// discarded acquisitions, the cleanup and ownership-transfer shapes it must
// accept, and the //polaris:spill escape.
package spillcleanup

import "polaris/internal/objectstore"

// Leak binds a SpillDir that is neither cleaned nor handed off: flagged.
func Leak(s *objectstore.Store) string {
	d := objectstore.NewSpillDir(s, "q1") // want "d is neither cleaned up nor handed off"
	return d.Prefix()
}

// Discard throws the acquisition away: flagged (it can never be cleaned).
func Discard(s *objectstore.Store) {
	objectstore.NewSpillDir(s, "q2") // want "the acquired SpillDir is discarded"
}

// Cleaned defers the cleanup: the canonical shape.
func Cleaned(s *objectstore.Store) error {
	d := objectstore.NewSpillDir(s, "q3")
	defer d.Cleanup()
	return d.Put("part-0", nil)
}

// Handoff returns the acquisition: ownership transfers with the value.
func Handoff(s *objectstore.Store) *objectstore.SpillDir {
	return objectstore.NewSpillDir(s, "q4")
}

// Passed hands the acquisition to another function that owns it.
func Passed(s *objectstore.Store) {
	d := objectstore.NewSpillDir(s, "q5")
	adopt(d)
}

func adopt(d *objectstore.SpillDir) {
	defer d.Cleanup()
}

// Tracked is annotated: cleanup happens through out-of-band ownership.
func Tracked(s *objectstore.Store) {
	//polaris:spill the test registry sweeps every q6 prefix after the run
	objectstore.NewSpillDir(s, "q6")
}
