// Package annotations exercises the annotation-grammar analyzer: unknown
// keys and missing reasons are findings; a well-formed annotation is not
// (its staleness is a separate check, covered by testdata/src/stale).
package annotations

/* want "unknown annotation" */ //polaris:frobnicate not a real escape hatch

/* want "needs a reason" */ //polaris:nondet

//polaris:nondet well-formed: key known, reason present

// Placeholder keeps the package non-empty.
func Placeholder() {}
