// Package selaware exercises the selaware analyzer: raw lane access in its
// three syntactic forms, the logical accessors it must accept, and the
// site- and function-level //polaris:kernel escapes. kernelfile.go covers
// the file-level escape.
package selaware

import "polaris/internal/colfile"

// RawIndex indexes a lane array directly: flagged.
func RawIndex(v *colfile.Vec, i int) int64 {
	return v.Ints[i] // want `raw access to Vec\.Ints`
}

// RawRange ranges over a lane array directly: flagged.
func RawRange(v *colfile.Vec) int64 {
	var n int64
	for _, x := range v.Ints { // want `raw access to Vec\.Ints`
		n += x
	}
	return n
}

// RawSlice reslices a lane array directly: flagged.
func RawSlice(v *colfile.Vec) []float64 {
	return v.Floats[:2] // want `raw access to Vec\.Floats`
}

// Logical goes through Batch.RowIdx and Vec.Value: not flagged.
func Logical(b *colfile.Batch, c, i int) any {
	return b.Cols[c].Value(b.RowIdx(i))
}

// SiteEscape reads a lane at a position it just translated; the single
// site carries the annotation.
func SiteEscape(b *colfile.Batch, c, i int) int64 {
	phys := b.RowIdx(i)
	//polaris:kernel phys was translated through the selection by RowIdx above
	return b.Cols[c].Ints[phys]
}

// FuncEscape sums dense lanes; the whole function is whitelisted by the
// annotation in its doc comment.
//
//polaris:kernel callers pass only dense vectors (no selection), so lane position equals logical row
func FuncEscape(v *colfile.Vec) int64 {
	var n int64
	for _, x := range v.Ints {
		n += x
	}
	return n
}
