package selaware

//polaris:kernelfile this file stands in for the kernel layer: every access here is behind the sel-translation boundary

import "polaris/internal/colfile"

// KernelSum is raw lane access in a whitelisted file: not flagged.
func KernelSum(v *colfile.Vec, sel []int) int64 {
	var n int64
	for _, p := range sel {
		n += v.Ints[p]
	}
	return n
}
