// Package ctxboundary exercises the ctxboundary analyzer: fan-out loops
// that drain operators or write spill files without observing an available
// context, the boundary-check shapes it must accept, the no-context-in-scope
// exemption, and the //polaris:ctx escape.
package ctxboundary

import (
	"context"
	"fmt"

	"polaris/internal/exec"
	"polaris/internal/objectstore"
)

// DrainAll has a context available but never observes it in the loop:
// flagged.
func DrainAll(ctx context.Context, ops []exec.Operator) error {
	for _, op := range ops { // want `loop calls exec\.Collect`
		if _, err := exec.Collect(op); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// WriteAll writes spill files without observing the context: flagged.
func WriteAll(ctx context.Context, d *objectstore.SpillDir, parts [][]byte) error {
	for i, part := range parts { // want "loop calls objectstore Put"
		if err := d.Put(fmt.Sprintf("part-%d", i), part); err != nil {
			return err
		}
	}
	return ctx.Err()
}

// DrainChecked observes the context at every batch boundary: not flagged.
func DrainChecked(ctx context.Context, ops []exec.Operator) error {
	for _, op := range ops {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := exec.Collect(op); err != nil {
			return err
		}
	}
	return nil
}

// DrainCtx threads the context through CollectCtx: not flagged.
func DrainCtx(ctx context.Context, ops []exec.Operator) error {
	for _, op := range ops {
		if _, err := exec.CollectCtx(ctx, op); err != nil {
			return err
		}
	}
	return nil
}

// Serial has no context anywhere in scope: serial paths are exempt.
func Serial(ops []exec.Operator) error {
	for _, op := range ops {
		if _, err := exec.Collect(op); err != nil {
			return err
		}
	}
	return nil
}

// Bounded is annotated: each iteration's work is provably small.
func Bounded(ctx context.Context, ops []exec.Operator) error {
	//polaris:ctx each operator is a single pre-materialized batch, so one iteration is O(batch)
	for _, op := range ops {
		if _, err := exec.Collect(op); err != nil {
			return err
		}
	}
	return ctx.Err()
}
