// Package detmaporder exercises the detmaporder analyzer: positive
// findings, the //polaris:nondet escape, and every safe idiom the analyzer
// must accept without an annotation.
package detmaporder

import "sort"

// Emit leaks map iteration order into a slice: flagged.
func Emit(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration order is non-deterministic"
		out = append(out, v)
	}
	return out
}

// First returns an arbitrary element: flagged (the early return is not a
// constant, so this is not a pure existential scan).
func First(m map[string]int) (string, bool) {
	for k := range m { // want "map iteration order is non-deterministic"
		return k, true
	}
	return "", false
}

// CollectSorted is the blessed idiom: collect keys, sort, then use.
func CollectSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CollectFiltered collects under a filter before sorting: still safe.
func CollectFiltered(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// PerKey writes only map entries keyed by the range key: order-insensitive.
func PerKey(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Sum accumulates an integer commutatively: order-insensitive.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Has is a pure existential scan returning constants: order-insensitive.
func Has(m map[string]int, target int) bool {
	for _, v := range m {
		if v == target {
			return true
		}
	}
	return false
}

// Prune deletes entries in place: deletion is idempotent per entry.
func Prune(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// MinVal folds a minimum. The fold is order-independent but beyond the
// analyzer's conservative shapes, so it carries the annotation escape.
func MinVal(m map[string]int) int {
	best := int(^uint(0) >> 1)
	//polaris:nondet min fold: the minimum is the same whatever order values arrive in
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}
