// Package clean must produce zero findings under every analyzer in the
// registry: the golden suite's negative control.
package clean

import (
	"context"
	"sort"
	"sync"
)

// SortedValues is the blessed deterministic-iteration idiom.
func SortedValues(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// WithDeadline derives and releases a context correctly.
func WithDeadline(ctx context.Context, fn func(context.Context) error) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return fn(c)
}

// Counter keeps its mutex behind a pointer receiver.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add increments under the lock.
func (c *Counter) Add(d int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += d
}
