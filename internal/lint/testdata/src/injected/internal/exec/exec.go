// Package exec simulates an injected determinism regression in a package
// the driver scopes detmaporder to (its import path ends in internal/exec,
// and inPkgs matches by suffix): cmd/polarisvet must exit non-zero on it.
// This is the end-to-end pin for the unsorted-map-iteration acceptance
// case; the per-analyzer golden coverage lives in the sibling testdata
// packages.
package exec

// Broken leaks map iteration order into its output.
func Broken(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
