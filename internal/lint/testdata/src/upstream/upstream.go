// Package upstream exercises polarisvet's bundled upstream-style passes:
// lostcancel, copylocks, atomic, and nilness.
package upstream

import (
	"context"
	"sync"
	"sync/atomic"
)

// --- lostcancel ---

// Discarded throws the cancel function away: flagged.
func Discarded(ctx context.Context) context.Context {
	c, _ := context.WithCancel(ctx) // want `cancel function returned by context\.WithCancel is discarded`
	return c
}

// Deferred releases the context's resources: not flagged.
func Deferred(ctx context.Context) error {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	return c.Err()
}

// --- copylocks ---

type guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the mutex in its parameter: flagged.
func ByValue(g guarded) int { // want `parameter copies .*guarded by value`
	return g.n
}

// SumByValue copies the mutex in the range value: flagged.
func SumByValue(gs []guarded) int {
	n := 0
	for _, g := range gs { // want `range value copies .*guarded by value`
		n += g.n
	}
	return n
}

// ByPointer is the correct shape: not flagged.
func ByPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// --- atomic ---

var counter int64

// Bump stores the atomic result back into its own target: flagged.
func Bump() int64 {
	counter = atomic.AddInt64(&counter, 1) // want "races with the atomic update"
	return atomic.LoadInt64(&counter)
}

// BumpOK uses the returned value: not flagged.
func BumpOK() int64 {
	return atomic.AddInt64(&counter, 1)
}

// --- nilness ---

// Describe dereferences inside the nil branch: flagged.
func Describe(g *guarded) int {
	if g == nil {
		return g.n // want "nil dereference: g is nil in this branch"
	}
	return g.n
}

// Fallback reassigns before dereferencing: not flagged.
func Fallback(g *guarded) int {
	if g == nil {
		g = &guarded{}
	}
	return g.n
}
