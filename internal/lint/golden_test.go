package lint_test

import (
	"testing"

	"polaris/internal/lint"
	"polaris/internal/lint/linttest"
)

// TestGolden runs each analyzer over its testdata package and checks the
// findings against the // want comments: positive hits, annotation escapes,
// and the safe idioms each analyzer must accept.
func TestGolden(t *testing.T) {
	cases := []struct {
		dir       string
		analyzers []*lint.Analyzer
	}{
		{"detmaporder", []*lint.Analyzer{lint.DetMapOrder}},
		{"nondetsource", []*lint.Analyzer{lint.NondetSource}},
		{"selaware", []*lint.Analyzer{lint.SelAware}},
		{"spillcleanup", []*lint.Analyzer{lint.SpillCleanup}},
		{"ctxboundary", []*lint.Analyzer{lint.CtxBoundary}},
		{"upstream", []*lint.Analyzer{lint.LostCancel, lint.CopyLocks, lint.AtomicAssign, lint.NilnessLite}},
		{"annotations", []*lint.Analyzer{lint.Annotations}},
		{"stale", []*lint.Analyzer{lint.DetMapOrder}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			linttest.Run(t, "./testdata/src/"+tc.dir, tc.analyzers...)
		})
	}
}

// TestGoldenClean runs the full registry over the negative-control package:
// zero findings expected (the package has no want comments, so any finding
// fails the harness).
func TestGoldenClean(t *testing.T) {
	linttest.Run(t, "./testdata/src/clean", lint.Registry()...)
}

// TestGoldenInjected pins the acceptance case at the analyzer level: the
// injected unsorted-map-iteration package must produce a detmaporder
// finding, and its import-path suffix must put it in detmaporder's scope
// exactly like the real internal/exec.
func TestGoldenInjected(t *testing.T) {
	pkgs, err := lint.Load("./testdata/src/injected/internal/exec")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if !lint.DetMapOrder.AppliesTo(pkg.PkgPath) {
		t.Fatalf("detmaporder does not apply to %s; driver scoping would skip the injected regression", pkg.PkgPath)
	}
	diags := lint.RunAnalyzers(pkg, []*lint.Analyzer{lint.DetMapOrder})
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want exactly 1: %v", len(diags), diags)
	}
}
