package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// annRe matches a //polaris:<key> annotation comment. The reason — free
// prose citing the invariant that makes the site safe — is everything after
// the key.
var annRe = regexp.MustCompile(`^//polaris:([a-z]+)(.*)$`)

// annKeys maps each annotation key to the analyzers that consume it. A key
// outside this table is a typo (reported by the annotations analyzer); a
// key whose analyzers did not run on a package is exempt from the
// stale-annotation check there.
var annKeys = map[string][]string{
	"nondet":     {"detmaporder", "nondetsource"},
	"kernel":     {"selaware"},
	"kernelfile": {"selaware"},
	"spill":      {"spillcleanup"},
	"ctx":        {"ctxboundary"},
}

type annotation struct {
	key    string
	reason string
	pos    token.Position
	used   bool
}

type annotations struct {
	// byFileLine indexes site annotations by filename and line.
	byFileLine map[string]map[int][]*annotation
	all        []*annotation
}

func parseAnnotations(fset *token.FileSet, files []*ast.File) *annotations {
	anns := &annotations{byFileLine: map[string]map[int][]*annotation{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := annRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				a := &annotation{
					key:    m[1],
					reason: strings.TrimSpace(m[2]),
					pos:    fset.Position(c.Slash),
				}
				anns.all = append(anns.all, a)
				lines := anns.byFileLine[a.pos.Filename]
				if lines == nil {
					lines = map[int][]*annotation{}
					anns.byFileLine[a.pos.Filename] = lines
				}
				lines[a.pos.Line] = append(lines[a.pos.Line], a)
			}
		}
	}
	return anns
}

// suppressed reports (and marks used) an annotation with the given key on
// the finding's line or the line directly above it.
func (anns *annotations) suppressed(key string, pos token.Position) bool {
	lines := anns.byFileLine[pos.Filename]
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, a := range lines[line] {
			if a.key == key {
				a.used = true
				return true
			}
		}
	}
	return false
}

// rangeSuppressed reports (and marks used) an annotation with the given key
// on any line in [startLine, endLine] of the named file.
func (anns *annotations) rangeSuppressed(key, filename string, startLine, endLine int) bool {
	lines := anns.byFileLine[filename]
	for line := startLine; line <= endLine; line++ {
		for _, a := range lines[line] {
			if a.key == key {
				a.used = true
				return true
			}
		}
	}
	return false
}

// fileSuppressed reports (and marks used) a file-level annotation anywhere
// in the named file.
func (anns *annotations) fileSuppressed(key, filename string) bool {
	for _, byLine := range anns.byFileLine[filename] {
		for _, a := range byLine {
			if a.key == key {
				a.used = true
				return true
			}
		}
	}
	return false
}

// Annotations checks the //polaris: annotation grammar itself: the key must
// be a known escape hatch and the reason must be present (an annotation
// without a cited invariant is unreviewable).
var Annotations = &Analyzer{
	Name: "annotations",
	Doc:  "checks //polaris:<key> <reason> annotation grammar (known key, non-empty reason)",
	Run: func(p *Pass) {
		for _, a := range p.Pkg.anns.all {
			if _, ok := annKeys[a.key]; !ok {
				p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: a.pos,
					Message: "unknown annotation //polaris:" + a.key + " (known: ctx, kernel, kernelfile, nondet, spill)"})
				a.used = true // don't double-report as stale
				continue
			}
			if a.reason == "" {
				p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: a.pos,
					Message: "annotation //polaris:" + a.key + " needs a reason citing the invariant that makes this site safe"})
			}
		}
	},
}

// StaleAnnotations returns a finding for every annotation that suppressed
// nothing, provided at least one analyzer consuming its key actually ran
// (ran is the set of analyzer names executed on the package). Run it after
// RunAnalyzers; a stale annotation means the escape hatch outlived the
// hazard it justified.
func StaleAnnotations(pkg *Package, ran map[string]bool) []Diagnostic {
	var diags []Diagnostic
	for _, a := range pkg.anns.all {
		if a.used {
			continue
		}
		consumed := false
		for _, name := range annKeys[a.key] {
			if ran[name] {
				consumed = true
			}
		}
		if !consumed {
			continue
		}
		diags = append(diags, Diagnostic{Analyzer: "annotations", Pos: a.pos,
			Message: "stale //polaris:" + a.key + " annotation: it suppresses no finding; remove it"})
	}
	SortDiagnostics(diags)
	return diags
}
