// Package linttest is the golden-test harness for internal/lint analyzers,
// modeled on golang.org/x/tools' analysistest: a testdata package is loaded
// with lint.Load, the analyzers under test (plus the stale-annotation check)
// run over it, and every finding must be claimed by a `// want "regex"`
// comment on the same line — and every want comment must claim a finding.
//
// Want syntax: one comment containing `want` followed by one or more
// quoted regular expressions (double- or back-quoted), each matched against
// a finding's message on that line. When the finding sits on a line that is
// itself a comment (an annotation-grammar finding, say), use a block
// comment form:
//
//	/* want "stale" */ //polaris:nondet leftover reason
package linttest

import (
	"regexp"
	"strings"
	"testing"

	"polaris/internal/lint"
)

var quotedRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"|` + "`([^`]*)`")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the single package at dir (relative to the test's working
// directory), runs the analyzers and the stale-annotation check over it,
// and fails the test on any mismatch between findings and want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	wants := collectWants(t, pkg)
	diags := lint.RunAnalyzers(pkg, analyzers)
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	diags = append(diags, lint.StaleAnnotations(pkg, ran)...)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched want %q", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want on the finding's line whose regex
// matches the message.
func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSuffix(strings.TrimPrefix(c.Text, "/*"), "*/")
				text = strings.TrimSpace(strings.TrimPrefix(text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				ms := quotedRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted regex", pos.Filename, pos.Line)
				}
				for _, m := range ms {
					expr := m[1]
					if m[2] != "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", pos.Filename, pos.Line, expr, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
