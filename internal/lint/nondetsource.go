package lint

import (
	"go/ast"
	"go/types"
)

// NondetSource bans ambient non-determinism inside the deterministic
// packages: wall-clock reads (time.Now and its derivatives), the unseeded
// process-global math/rand generators, and environment lookups. Any of
// them silently varies output across runs and across DOP re-executions, so
// a retried DCP task could produce different bytes than its first attempt.
// Sites that provably cannot reach contract-covered output carry a
// //polaris:nondet <reason> annotation.
var NondetSource = &Analyzer{
	Name:      "nondetsource",
	Doc:       "bans time.Now, unseeded math/rand, and os.Getenv in deterministic packages",
	AppliesTo: inPkgs(DeterministicPackages...),
	Run:       runNondetSource,
}

// bannedFuncs maps package path -> function name -> reason fragment. An
// empty name set means every package-level function is banned.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock reads vary per run",
		"Since": "wall-clock reads vary per run",
		"Until": "wall-clock reads vary per run",
	},
	"os": {
		"Getenv":    "environment lookups vary per host",
		"LookupEnv": "environment lookups vary per host",
		"Environ":   "environment lookups vary per host",
	},
	"math/rand":    nil, // all package-level funcs: process-global unseeded source
	"math/rand/v2": nil,
}

func runNondetSource(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok {
				return true
			}
			names, banned := bannedFuncs[funcPkgPath(fn)]
			if !banned {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				// Methods (e.g. on a seeded *rand.Rand) are fine: the caller
				// owns the seed.
				return true
			}
			reason, listed := names[fn.Name()]
			if names != nil && !listed {
				return true
			}
			if reason == "" {
				reason = "the process-global generator is unseeded"
			}
			if p.Suppressed("nondet", sel.Pos()) {
				return true
			}
			p.Reportf(sel.Pos(), "%s.%s in a deterministic package: %s; thread the value in from the caller or annotate //polaris:nondet <reason> (docs/LINT.md)",
				funcPkgPath(fn), fn.Name(), reason)
			return true
		})
	}
}
