package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	osexec "os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	anns    *annotations
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load resolves the given package patterns with the go tool and returns the
// matched packages parsed and type-checked, in import-path order.
//
// The repo has no external dependencies, so instead of vendoring
// golang.org/x/tools/go/packages the loader drives `go list -export -deps
// -json`: the go tool compiles every dependency into the build cache and
// reports the export-data file per package, and the gc importer reads
// imports from those files while each target package itself is type-checked
// from source (we need its syntax trees and types.Info). Everything works
// offline and tolerates `testdata` package paths, which linttest leans on.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := osexec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var lp listPkg
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Instances:  map[*ast.Ident]types.Instance{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: t.ImportPath,
			Dir:     t.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
			anns:    parseAnnotations(fset, files),
		})
	}
	return pkgs, nil
}
