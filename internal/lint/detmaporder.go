package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterministicPackages are the packages bound by the cross-DOP
// byte-identity determinism contract (docs/ARCHITECTURE.md): their outputs
// — result batches, spill files, manifests, EXPLAIN text, the /metrics
// document — must be identical run to run, so map iteration order must
// never leak into them.
var DeterministicPackages = []string{
	"polaris/internal/exec",
	"polaris/internal/sql",
	"polaris/internal/dcp",
	"polaris/internal/colfile",
	"polaris/internal/manifest",
	"polaris/internal/server",
}

// inPkgs matches package paths against repo package identities by suffix
// (hasPkgSuffix), so a testdata package that mirrors a real package's tail
// path — e.g. testdata/src/injected/internal/exec — is scoped exactly like
// the package it impersonates, which is how cmd/polarisvet's own tests pin
// driver behavior end to end.
func inPkgs(paths ...string) func(string) bool {
	suffixes := make([]string, len(paths))
	for i, p := range paths {
		suffixes[i] = strings.TrimPrefix(p, "polaris/")
	}
	return func(p string) bool {
		for _, s := range suffixes {
			if hasPkgSuffix(p, s) {
				return true
			}
		}
		return false
	}
}

// DetMapOrder flags `for range` over a map in a deterministic package
// unless the loop matches one of two provably order-insensitive shapes:
//
//  1. collect-then-sort — the body only appends to a slice that is later
//     passed to a sort/slices sorting call in the same function;
//  2. per-key effects — every statement writes only loop-local variables,
//     map entries keyed by the range key, integer accumulators via
//     commutative ops (+=, |=, &=, ^=, ++), or deletes map entries, with
//     no function calls whose side effects could observe the order.
//
// Anything else needs a //polaris:nondet <reason> annotation citing why
// iteration order cannot reach bytes the determinism contract covers.
var DetMapOrder = &Analyzer{
	Name:      "detmaporder",
	Doc:       "flags non-deterministic map iteration in byte-determinism-contract packages",
	AppliesTo: inPkgs(DeterministicPackages...),
	Run:       runDetMapOrder,
}

func runDetMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		forEachFunc(f, func(_ *ast.FuncType, body *ast.BlockStmt) {
			inspectShallow(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if keyCollectSorted(p, body, rs) || orderInsensitiveBody(p, rs) {
					return true
				}
				if p.Suppressed("nondet", rs.For) {
					return true
				}
				p.Reportf(rs.For, "map iteration order is non-deterministic here: collect and sort the keys, keep the body to per-key effects, or annotate //polaris:nondet <reason> (docs/LINT.md)")
				return true
			})
		})
	}
}

// keyCollectSorted recognizes the collect-then-sort idiom: the loop body is
// `dest = append(dest, ...)` — optionally wrapped in if-filters, whose
// predicates are assumed effect-free — and a sort-package (or
// slices-package) call mentioning dest follows the loop in the same
// function.
func keyCollectSorted(p *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) bool {
	stmts := rs.Body.List
	for len(stmts) == 1 {
		ifs, ok := stmts[0].(*ast.IfStmt)
		if !ok || ifs.Else != nil {
			break
		}
		stmts = ifs.Body.List
	}
	if len(stmts) != 1 {
		return false
	}
	as, ok := stmts[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	dest, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinCall(p, call, "append") || len(call.Args) == 0 {
		return false
	}
	if arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || p.ObjectOf(arg) != p.ObjectOf(dest) {
		return false
	}
	destObj := p.ObjectOf(dest)
	if destObj == nil {
		return false
	}
	sorted := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		if isSortCall(p, call, destObj) {
			sorted = true
		}
		return true
	})
	return sorted
}

// isSortCall reports whether the call is a sort-package or slices-package
// sorting function with dest somewhere in its arguments.
func isSortCall(p *Pass, call *ast.CallExpr, dest types.Object) bool {
	fn := calleeFunc(p, call)
	switch funcPkgPath(fn) {
	case "sort", "slices":
	default:
		return false
	}
	switch fn.Name() {
	case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable",
		"SortFunc", "SortStableFunc":
	default:
		return false
	}
	for _, arg := range call.Args {
		mentions := false
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == dest {
				mentions = true
			}
			return true
		})
		if mentions {
			return true
		}
	}
	return false
}

// orderInsensitiveBody reports whether every statement in the loop body has
// effects that commute across iterations. Two modes:
//
//   - pure-scan: a body containing return/break may run any prefix of the
//     iterations, so it must be entirely effect-free outside loop-locals
//     and every return value must be a constant (an existential scan:
//     "does any entry satisfy the predicate" is order-independent);
//   - per-key effects: without early exits, writes are allowed when they
//     cannot collide across iterations (loop-locals, map entries keyed by
//     the range key, set-inserts of constants) or commute exactly
//     (integer +=, |=, &=, ^=, ++ and deletes).
func orderInsensitiveBody(p *Pass, rs *ast.RangeStmt) bool {
	keyObj := rangeVarObj(p, rs.Key)
	pure := hasEarlyExit(rs.Body)

	// localOK: the identifier is declared inside the loop body, so writing
	// it cannot carry state across iterations.
	localOK := func(id *ast.Ident) bool {
		obj := p.ObjectOf(id)
		return obj != nil && rs.Body.Pos() <= obj.Pos() && obj.Pos() <= rs.Body.End()
	}

	// mapWriteOK: the write cannot collide across iterations — the map is
	// itself a loop-local, the key expression mentions the range key (each
	// iteration touches its own entry), or the stored value is a constant
	// (a set-insert: collisions store the same value).
	mapWriteOK := func(ix *ast.IndexExpr, rhs ast.Expr) bool {
		t := p.TypeOf(ix.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
		if id, ok := ast.Unparen(ix.X).(*ast.Ident); ok && localOK(id) {
			return true
		}
		if rhs != nil && isConstExpr(p, rhs) {
			return true
		}
		if keyObj == nil {
			return false
		}
		mentions := false
		ast.Inspect(ix.Index, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.ObjectOf(id) == keyObj {
				mentions = true
			}
			return true
		})
		return mentions
	}

	// intAccum: an exactly-commutative accumulation into any integer
	// location (local, field, or outer variable).
	intAccum := func(l ast.Expr) bool {
		switch ast.Unparen(l).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			return isIntegerType(p.TypeOf(l))
		}
		return false
	}

	// callFree: the expression contains no calls other than conversions and
	// builtins, so evaluating it in any order has the same effects.
	callFree := func(e ast.Expr) bool {
		if e == nil {
			return true
		}
		free := true
		ast.Inspect(e, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && !isConversionOrBuiltin(p, call) {
				free = false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				free = false
			}
			return free
		})
		return free
	}

	var stmtOK func(s ast.Stmt) bool
	stmtsOK := func(list []ast.Stmt) bool {
		for _, s := range list {
			if !stmtOK(s) {
				return false
			}
		}
		return true
	}
	stmtOK = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case nil:
			return true
		case *ast.AssignStmt:
			for i, l := range s.Lhs {
				var rhs ast.Expr
				if len(s.Lhs) == len(s.Rhs) {
					rhs = s.Rhs[i]
				}
				switch l := ast.Unparen(l).(type) {
				case *ast.Ident:
					if l.Name == "_" || localOK(l) {
						continue
					}
					if !pure && isCommutativeTok(s.Tok) && isIntegerType(p.TypeOf(l)) {
						continue
					}
					return false
				case *ast.SelectorExpr:
					if !pure && isCommutativeTok(s.Tok) && intAccum(l) {
						continue
					}
					return false
				case *ast.IndexExpr:
					if !pure && mapWriteOK(l, rhs) {
						continue
					}
					return false
				default:
					return false
				}
			}
			for _, r := range s.Rhs {
				if !callFree(r) {
					return false
				}
			}
			return true
		case *ast.DeclStmt:
			gd, ok := s.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return false
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					return false
				}
				for _, v := range vs.Values {
					if !callFree(v) {
						return false
					}
				}
			}
			return true
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(s.X).(*ast.Ident); ok && localOK(id) {
				return true
			}
			return !pure && intAccum(s.X)
		case *ast.ExprStmt:
			// delete(m, ...) is idempotent per entry; any other call could
			// observe the order.
			call, ok := s.X.(*ast.CallExpr)
			return !pure && ok && isBuiltinCall(p, call, "delete")
		case *ast.IfStmt:
			return stmtOK(s.Init) && callFree(s.Cond) && stmtsOK(s.Body.List) && stmtOK(s.Else)
		case *ast.BlockStmt:
			return stmtsOK(s.List)
		case *ast.RangeStmt:
			return callFree(s.X) && stmtsOK(s.Body.List)
		case *ast.ForStmt:
			return stmtOK(s.Init) && callFree(s.Cond) && stmtOK(s.Post) && stmtsOK(s.Body.List)
		case *ast.SwitchStmt:
			if !stmtOK(s.Init) || !callFree(s.Tag) {
				return false
			}
			for _, c := range s.Body.List {
				cc := c.(*ast.CaseClause)
				for _, e := range cc.List {
					if !callFree(e) {
						return false
					}
				}
				if !stmtsOK(cc.Body) {
					return false
				}
			}
			return true
		case *ast.BranchStmt:
			// break is an early exit: fine in pure-scan mode (which forbids
			// all effects), order-sensitive otherwise.
			return s.Tok == token.CONTINUE || (pure && s.Tok == token.BREAK)
		case *ast.ReturnStmt:
			// Early return: only a pure existential scan returning
			// constants ("found / not found") is order-independent.
			if !pure {
				return false
			}
			for _, r := range s.Results {
				if !isConstExpr(p, r) {
					return false
				}
			}
			return true
		default:
			// goto, channel ops, go/defer: all can observe which iteration
			// ran first.
			return false
		}
	}
	return stmtsOK(rs.Body.List)
}

// hasEarlyExit reports whether the loop body (closures excluded) contains a
// return or a break that exits the range loop.
func hasEarlyExit(body *ast.BlockStmt) bool {
	found := false
	depth := 0
	var walk func(s ast.Stmt)
	walkList := func(list []ast.Stmt) {
		for _, s := range list {
			walk(s)
		}
	}
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && depth == 0 {
				found = true
			}
		case *ast.IfStmt:
			walkList(s.Body.List)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.BlockStmt:
			walkList(s.List)
		case *ast.ForStmt:
			depth++
			walkList(s.Body.List)
			depth--
		case *ast.RangeStmt:
			depth++
			walkList(s.Body.List)
			depth--
		case *ast.SwitchStmt:
			depth++ // break binds to the switch
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkList(cc.Body)
				}
			}
			depth--
		}
	}
	walkList(body.List)
	return found
}

// isConstExpr reports whether e is a compile-time constant (including
// nil, true, false).
func isConstExpr(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok {
		return false
	}
	if tv.Value != nil || tv.IsNil() {
		return true
	}
	return false
}

func rangeVarObj(p *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	return p.ObjectOf(id)
}

func isCommutativeTok(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

// isIntegerType: integer addition and bitwise ops commute exactly; float
// addition does not (rounding is order-dependent) and string concatenation
// is order itself.
func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
