package core

import (
	"fmt"

	"polaris/internal/catalog"
)

// This file implements the data-lineage features of paper Section 6:
// zero-copy table cloning as of a point in time (6.2) and metadata-only
// restore (6.3). Query As Of (6.1) is ScanOptions.AsOfSeq on the read path.

// CloneTable creates a zero-copy clone of source as of asOfSeq (negative =
// now): a new table whose Manifests rows are copies of the source's rows up
// to that sequence, re-keyed under the clone's table ID. No data or physical
// metadata is copied; both tables evolve independently afterwards (6.2).
func (t *Txn) CloneTable(source, cloneName string, asOfSeq int64) (catalog.TableMeta, error) {
	if err := t.check(); err != nil {
		return catalog.TableMeta{}, err
	}
	src, err := catalog.LookupTable(t.catTx, source)
	if err != nil {
		return catalog.TableMeta{}, err
	}
	clone, err := catalog.CreateTable(t.catTx, cloneName, src.Schema, src.DistributionCol, src.SortCol)
	if err != nil {
		return catalog.TableMeta{}, err
	}
	clone.ClonedFrom = src.ID
	clone.RetentionSeqs = src.RetentionSeqs
	if err := catalog.PutTableMeta(t.catTx, clone); err != nil {
		return catalog.TableMeta{}, err
	}
	rows, err := catalog.ScanManifests(t.catTx, src.ID, asOfSeq)
	if err != nil {
		return catalog.TableMeta{}, err
	}
	for _, row := range rows {
		row.TableID = clone.ID
		if err := catalog.InsertManifestRow(t.catTx, row); err != nil {
			return catalog.TableMeta{}, err
		}
	}
	// Checkpoints reference the same immutable files; they can be shared too.
	cps, err := catalog.ListCheckpoints(t.catTx, src.ID)
	if err != nil {
		return catalog.TableMeta{}, err
	}
	for _, cp := range cps {
		if asOfSeq >= 0 && cp.Seq > asOfSeq {
			continue
		}
		cp.TableID = clone.ID
		if err := catalog.InsertCheckpointRow(t.catTx, cp); err != nil {
			return catalog.TableMeta{}, err
		}
	}
	return clone, nil
}

// RestoreTableAsOf rewinds a table to its state at asOfSeq by deleting the
// Manifests (and Checkpoints) rows after that sequence — a logical-metadata-
// only operation (6.3). Files that become unreferenced are reclaimed later by
// garbage collection.
func (t *Txn) RestoreTableAsOf(table string, asOfSeq int64) error {
	if err := t.check(); err != nil {
		return err
	}
	if asOfSeq < 0 {
		return fmt.Errorf("core: restore requires an explicit sequence")
	}
	meta, err := catalog.LookupTable(t.catTx, table)
	if err != nil {
		return err
	}
	rows, err := catalog.ScanManifests(t.catTx, meta.ID, -1)
	if err != nil {
		return err
	}
	for _, row := range rows {
		if row.Seq > asOfSeq {
			if err := catalog.DeleteManifestRow(t.catTx, meta.ID, row.Seq); err != nil {
				return err
			}
		}
	}
	cps, err := catalog.ListCheckpoints(t.catTx, meta.ID)
	if err != nil {
		return err
	}
	for _, cp := range cps {
		if cp.Seq > asOfSeq {
			if err := t.catTx.Delete(checkpointKeyForRestore(meta.ID, cp.Seq)); err != nil {
				return err
			}
		}
	}
	// The snapshot cache may hold states newer than the restore point.
	t.eng.Cache.Invalidate(meta.ID)
	return nil
}

// checkpointKeyForRestore mirrors the catalog's checkpoint key layout; kept
// here to avoid widening the catalog API for one caller.
func checkpointKeyForRestore(tableID, seq int64) string {
	return fmt.Sprintf("checkpoints/%016d/%016d", tableID, seq)
}

// LineageTables returns the IDs of all tables sharing lineage with tableID:
// the table itself, its clone ancestors and descendants. Garbage collection
// must process a shared-lineage group atomically (5.3).
func (t *Txn) LineageTables(tableID int64) ([]int64, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	all, err := catalog.ListTables(t.catTx)
	if err != nil {
		return nil, err
	}
	// union-find over ClonedFrom edges
	parent := make(map[int64]int64)
	var find func(x int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int64) { parent[find(a)] = find(b) }
	for _, m := range all {
		if m.ClonedFrom != 0 {
			union(m.ID, m.ClonedFrom)
		}
	}
	root := find(tableID)
	var out []int64
	for _, m := range all {
		if find(m.ID) == root {
			out = append(out, m.ID)
		}
	}
	if len(out) == 0 {
		out = []int64{tableID}
	}
	return out, nil
}
