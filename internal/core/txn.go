package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/manifest"
)

// ErrTxnDone is returned when using a finished transaction.
var ErrTxnDone = errors.New("core: transaction already finished")

// writeKind classifies a transaction's writes to a table: inserts never
// conflict, updates/deletes do (4.1).
type writeKind int

const (
	wroteNothing writeKind = iota
	wroteInserts
	wroteUpdates
)

// txnTable is the per-table private state of a transaction: the pending
// manifest actions and the block IDs already committed to the transaction
// manifest blob (3.2.2, 3.2.3).
type txnTable struct {
	meta     catalog.TableMeta
	actions  []manifest.Action // reconciled pending actions
	blockIDs []string          // committed block list of the manifest blob
	kind     writeKind
	// touchedFiles are data files whose deletion state this txn changed —
	// the file-granularity conflict set (4.4.1).
	touchedFiles map[string]bool
	// blockSeq numbers staged blocks within this txn for unique IDs.
	blockSeq int
}

// Txn is a Polaris user transaction: multi-statement and multi-table, with
// Snapshot Isolation semantics.
type Txn struct {
	eng     *Engine
	id      int64
	catTx   *catalog.Tx
	level   catalog.IsolationLevel
	tables  map[int64]*txnTable
	started time.Time
	sim     time.Duration
	done    bool
	// joinBudget, when non-nil, overrides the engine-wide JoinMemoryBudget
	// for this transaction (per-session budgets in a serving front end).
	joinBudget *int64
	// adoptedDOP, when > 0, is an admission-granted worker-slot count the
	// front end already holds for the current statement: LeaseDOP returns
	// it instead of leasing from the fabric again (the lease's owner
	// releases it when the statement finishes).
	adoptedDOP int
	// qctx, when non-nil, is the cancellation context the front end
	// attached for the current statement (Session.ExecOpts.Ctx); query DAG
	// runs observe it. Never stored across statements.
	qctx context.Context
}

// SetContext attaches a cancellation context for the duration of the
// current statement. Pass nil to detach.
func (t *Txn) SetContext(ctx context.Context) { t.qctx = ctx }

// Context returns the statement's cancellation context, never nil.
func (t *Txn) Context() context.Context {
	if t.qctx == nil {
		return context.Background()
	}
	return t.qctx
}

// ID returns the durable transaction identifier.
func (t *Txn) ID() int64 { return t.id }

// SimTime returns the simulated time consumed by this transaction so far.
func (t *Txn) SimTime() time.Duration { return t.sim }

func (t *Txn) charge(d time.Duration) {
	t.sim += d
	t.eng.charge(d)
}

func (t *Txn) check() error {
	if t.done {
		return ErrTxnDone
	}
	return nil
}

// CreateTable registers a new table. DDL runs in the same catalog transaction
// as DML — full T-SQL transactional DDL compatibility (3.3).
func (t *Txn) CreateTable(name string, schema colfile.Schema, distCol, sortCol string) (catalog.TableMeta, error) {
	if err := t.check(); err != nil {
		return catalog.TableMeta{}, err
	}
	if len(schema) == 0 {
		return catalog.TableMeta{}, fmt.Errorf("core: table %s has no columns", name)
	}
	if distCol != "" && schema.ColIndex(distCol) < 0 {
		return catalog.TableMeta{}, fmt.Errorf("core: distribution column %q not in schema", distCol)
	}
	if sortCol != "" && schema.ColIndex(sortCol) < 0 {
		return catalog.TableMeta{}, fmt.Errorf("core: sort column %q not in schema", sortCol)
	}
	meta, err := catalog.CreateTable(t.catTx, name, schema, distCol, sortCol)
	if err != nil {
		return catalog.TableMeta{}, err
	}
	meta.CreatedSeq = t.eng.Catalog.CurrentSeq()
	meta.RetentionSeqs = t.eng.opts.RetentionSeqs
	if err := catalog.PutTableMeta(t.catTx, meta); err != nil {
		return catalog.TableMeta{}, err
	}
	return meta, nil
}

// DropTable removes a table's logical metadata; physical files are reclaimed
// by garbage collection.
func (t *Txn) DropTable(name string) error {
	if err := t.check(); err != nil {
		return err
	}
	return catalog.DropTable(t.catTx, name)
}

// SetRetention updates a table's retention window, in commit sequences:
// files logically removed more than this many sequences ago become eligible
// for garbage collection, and time travel beyond it is unsupported (5.3).
func (t *Txn) SetRetention(table string, seqs int64) error {
	if err := t.check(); err != nil {
		return err
	}
	meta, err := catalog.LookupTable(t.catTx, table)
	if err != nil {
		return err
	}
	meta.RetentionSeqs = seqs
	return catalog.PutTableMeta(t.catTx, meta)
}

// Table resolves a table by name within this transaction's snapshot.
func (t *Txn) Table(name string) (catalog.TableMeta, error) {
	if err := t.check(); err != nil {
		return catalog.TableMeta{}, err
	}
	return catalog.LookupTable(t.catTx, name)
}

// ListTables lists tables visible to this transaction.
func (t *Txn) ListTables() ([]catalog.TableMeta, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	return catalog.ListTables(t.catTx)
}

func (t *Txn) tableState(meta catalog.TableMeta) *txnTable {
	ts, ok := t.tables[meta.ID]
	if !ok {
		ts = &txnTable{meta: meta, touchedFiles: make(map[string]bool)}
		t.tables[meta.ID] = ts
	}
	return ts
}

// Commit runs the paper's validation phase (4.1.2):
//  1. upsert WriteSets for each table with updates/deletes;
//  2. the catalog commit lock serializes commit order;
//  3. Manifests rows are inserted with the sequence assigned under the lock;
//  4. the catalog transaction commits — an SI write-write conflict on the
//     WriteSets rows aborts the transaction here.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	defer t.eng.finishTxn(t)

	type pendingEvent struct {
		tableID  int64
		manifest string
		actions  []manifest.Action
	}
	var events []pendingEvent

	for id, ts := range t.tables {
		if ts.kind == wroteNothing || len(ts.actions) == 0 {
			continue
		}
		// Step 1: conflict registration for updates/deletes.
		if ts.kind == wroteUpdates {
			switch t.eng.opts.Granularity {
			case TableGranularity:
				if err := catalog.UpsertWriteSetTable(t.catTx, id); err != nil {
					t.catTx.Rollback()
					return err
				}
			case FileGranularity:
				for f := range ts.touchedFiles {
					if err := catalog.UpsertWriteSetFile(t.catTx, id, f); err != nil {
						t.catTx.Rollback()
						return err
					}
				}
			}
		}
		// Step 3 (deferred under the commit lock): Manifests row insert.
		mf := TablePaths{ID: id}.ManifestFile(t.id)
		catalog.InsertManifestAtCommit(t.catTx, id, mf, t.id)
		events = append(events, pendingEvent{tableID: id, manifest: mf, actions: ts.actions})
	}

	// Step 4: catalog commit — validation happens here.
	if err := t.catTx.Commit(); err != nil {
		// Rolled back: private files become dangling, GC reclaims them; the
		// staged manifest blocks are discarded.
		for id := range t.tables {
			t.eng.Store.DiscardStaged(TablePaths{ID: id}.ManifestFile(t.id))
		}
		return err
	}

	seq := t.catTx.CommitSeq()
	now := time.Now()
	for _, ev := range events {
		t.eng.Cache.Advance(ev.tableID, seq, ev.actions)
		t.eng.notify(CommitEvent{
			TableID: ev.tableID, TxnID: t.id, Seq: seq,
			Manifest: ev.manifest, Actions: ev.actions, When: now,
		})
	}
	return nil
}

// Rollback abandons the transaction. Written data files remain on storage as
// dangling files until garbage collection (5.3); staged manifest blocks are
// discarded immediately.
func (t *Txn) Rollback() {
	if t.done {
		return
	}
	t.done = true
	t.catTx.Rollback()
	for id := range t.tables {
		t.eng.Store.DiscardStaged(TablePaths{ID: id}.ManifestFile(t.id))
	}
	t.eng.finishTxn(t)
}
