package core

import (
	"polaris/internal/compute"
	"polaris/internal/dcp"
)

// DistributedQueries reports whether parallel SELECTs should be lowered to
// DCP task DAGs (Options.DistributedQueries) instead of the in-process
// morsel pool.
func (t *Txn) DistributedQueries() bool { return t.eng.opts.DistributedQueries }

// CostModel exposes the fabric's cost model so the SQL layer can charge
// simulated IO for exchange reads/writes from inside DAG tasks.
func (t *Txn) CostModel() *compute.CostModel { return t.eng.Fabric.Model() }

// RunQueryDAG executes a query-shaped task DAG on the compute fabric with
// the engine's retry policy and the statement's cancellation context, then
// charges the simulated makespan to the transaction and records the Dag*
// work counters. stages is the pipeline depth the graph encodes (1 for a
// scan-only plan, 1 + joins otherwise); it is recorded, not inferred, so
// the counter stays meaningful if graph shapes evolve. Counters are bumped
// only on success: a failed run's partial work is discarded wholesale, like
// a failed task attempt's output.
func (t *Txn) RunQueryDAG(g *dcp.Graph, stages int) (*dcp.Result, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	nodes, delay := t.eng.Fabric.AllocateForJob(g.Len())
	res, err := dcp.RunCtx(t.Context(), g, t.eng.pools(nodes), dcp.Options{
		MaxAttempts:     t.eng.opts.MaxTaskAttempts,
		Overhead:        t.eng.Fabric.Model().TaskOverhead,
		StartOffset:     delay,
		FailureInjector: t.eng.opts.QueryFailureInjector,
	})
	if err != nil {
		return nil, err
	}
	t.charge(res.Makespan)
	w := t.Work()
	w.DagTasks.Add(int64(g.Len()))
	w.DagRetries.Add(int64(res.Retries))
	w.DagStages.Add(int64(stages))
	return res, nil
}
