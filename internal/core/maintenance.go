package core

import (
	"fmt"
	"strings"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/deletevector"
	"polaris/internal/manifest"
)

// This file implements the storage-optimization mechanisms of paper
// Section 5. The System Task Orchestrator (internal/sto) provides the
// triggers and scheduling; the mechanisms run here because they are ordinary
// transactions over the same storage engine.

// CompactionResult reports what a compaction rewrote.
type CompactionResult struct {
	InputFiles  int
	OutputFiles int
	RowsKept    int64
	RowsDropped int64 // deleted rows physically filtered out
}

// CompactTable rewrites low-quality data files (5.1): files below the
// small-rows threshold or above the deleted-fraction threshold are read,
// deleted rows are filtered out, and replacement files are written at target
// size. The operation runs inside this (ordinarily dedicated) transaction
// with the same SI semantics as user transactions — so it can conflict with
// concurrent updates, which the paper calls out as a known cost.
func (t *Txn) CompactTable(table string) (CompactionResult, error) {
	var res CompactionResult
	if err := t.check(); err != nil {
		return res, err
	}
	state, meta, err := t.Snapshot(table, -1)
	if err != nil {
		return res, err
	}
	smallRows := t.eng.opts.CompactSmallRows
	maxFrac := t.eng.opts.CompactDeletedFrac

	var victims []*manifest.FileEntry
	for _, f := range state.LiveFiles() {
		fragmented := f.Rows > 0 && float64(f.DeletedRows)/float64(f.Rows) > maxFrac
		small := f.Rows < smallRows
		if fragmented || small {
			victims = append(victims, f)
		}
	}
	// Compacting a single small healthy file into itself is churn; require
	// either fragmentation or at least two mergeable files.
	if len(victims) == 0 || (len(victims) == 1 && victims[0].DeletedRows == 0) {
		return res, nil
	}
	res.InputFiles = len(victims)

	// Read the surviving rows of each victim, grouped by partition so the
	// replacement files keep the cell model intact.
	node := t.writeNode()
	byPartition := make(map[int]*colfile.Batch)
	for _, fe := range victims {
		data, d, err := node.ReadFile(t.eng.Store, fe.Path)
		if err != nil {
			return res, err
		}
		t.charge(d)
		var dv *deletevector.Vector
		if fe.DV != "" {
			dvData, dd, err := node.ReadFile(t.eng.Store, fe.DV)
			if err != nil {
				return res, err
			}
			t.charge(dd)
			dv, err = deletevector.Unmarshal(dvData)
			if err != nil {
				return res, err
			}
		}
		r, err := colfile.OpenReader(data)
		if err != nil {
			return res, err
		}
		all, err := r.ReadAll()
		if err != nil {
			return res, err
		}
		if dv != nil {
			keep := dv.FilterMask(all.NumRows())
			res.RowsDropped += int64(all.NumRows()) - int64(countTrue(keep))
			all = all.Filter(keep)
		}
		dst, ok := byPartition[fe.Partition]
		if !ok {
			dst = colfile.NewBatch(meta.Schema)
			byPartition[fe.Partition] = dst
		}
		dst.AppendBatch(all)
		res.RowsKept += int64(all.NumRows())
	}

	ts := t.tableState(meta)
	paths := TablePaths{ID: meta.ID}
	var actions []manifest.Action
	// Logical removal of the rewritten files (GC deletes them after
	// retention, 5.1) ...
	for _, fe := range victims {
		actions = append(actions, manifest.Action{Op: manifest.OpRemove, Kind: manifest.KindData, Path: fe.Path})
		if fe.DV != "" {
			actions = append(actions, manifest.Action{
				Op: manifest.OpRemove, Kind: manifest.KindDV, Path: fe.DV, Target: fe.Path,
			})
		}
		ts.touchedFiles[fe.Path] = true
	}
	// ... replaced by the compacted files.
	n := ts.blockSeq * 100
	for p, batch := range byPartition {
		if batch.NumRows() == 0 {
			continue
		}
		sorted := sortBatchBy(batch, meta.SortCol)
		for lo := 0; lo < sorted.NumRows(); lo += t.eng.opts.RowsPerFile {
			hi := lo + t.eng.opts.RowsPerFile
			if hi > sorted.NumRows() {
				hi = sorted.NumRows()
			}
			w := colfile.NewWriter(meta.Schema)
			if meta.SortCol != "" {
				w.SetSortedBy(meta.SortCol)
			}
			for g0 := lo; g0 < hi; g0 += t.eng.opts.RowsPerGroup {
				g1 := g0 + t.eng.opts.RowsPerGroup
				if g1 > hi {
					g1 = hi
				}
				if err := w.WriteBatch(sliceCols(sorted, g0, g1)); err != nil {
					return res, err
				}
			}
			data, err := w.Finish()
			if err != nil {
				return res, err
			}
			path := fmt.Sprintf("%scompact-%d-p%d-%d.pcf", paths.DataPrefix(), t.id, p, n)
			n++
			d, err := node.WriteFile(t.eng.Store, path, data, t.id)
			if err != nil {
				return res, err
			}
			t.charge(d)
			actions = append(actions, manifest.Action{
				Op: manifest.OpAdd, Kind: manifest.KindData, Path: path,
				Rows: int64(hi - lo), Size: int64(len(data)), Partition: p,
				Sketches: w.Sketches(),
			})
			res.OutputFiles++
		}
	}
	t.charge(t.eng.Fabric.Model().CPU(res.RowsKept))

	if err := t.rewriteManifest(ts, paths, actions); err != nil {
		return res, err
	}
	ts.kind = wroteUpdates
	return res, nil
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// CheckpointTable compacts the manifest list into a checkpoint file (5.2).
// Unlike data compaction it modifies no data files and cannot conflict with
// concurrent user transactions: the Checkpoints row it inserts is keyed by a
// fresh sequence.
func (t *Txn) CheckpointTable(table string) (string, error) {
	if err := t.check(); err != nil {
		return "", err
	}
	state, meta, err := t.Snapshot(table, -1)
	if err != nil {
		return "", err
	}
	if state.LastSeq == 0 {
		return "", nil // nothing to checkpoint
	}
	cp := manifest.BuildCheckpoint(meta.ID, state)
	data, err := cp.Marshal()
	if err != nil {
		return "", err
	}
	path := TablePaths{ID: meta.ID}.CheckpointFile(cp.Seq)
	node := t.writeNode()
	d, err := node.WriteFile(t.eng.Store, path, data, t.id)
	if err != nil {
		return "", err
	}
	t.charge(d)
	if err := catalog.InsertCheckpointRow(t.catTx, catalog.CheckpointRow{
		TableID: meta.ID, Seq: cp.Seq, Path: path,
	}); err != nil {
		return "", err
	}
	return path, nil
}

// GCResult reports a garbage-collection pass (5.3).
type GCResult struct {
	Scanned        int
	DeletedData    int
	DeletedDV      int
	DeletedOrphans int // files of aborted transactions
	Retained       int
}

// GarbageCollect reclaims unreferenced storage for the lineage group of every
// table (5.3): files logically removed and past retention are deleted; files
// on storage referenced by no manifest are deleted only when their creator
// stamp is below the minimum active transaction ID (they then provably belong
// to aborted transactions); everything else is retained.
func (e *Engine) GarbageCollect() (GCResult, error) {
	var res GCResult
	tx := e.Begin()
	defer tx.Rollback()

	tables, err := catalog.ListTables(tx.catTx)
	if err != nil {
		return res, err
	}
	// Group tables by shared lineage (clones share data files).
	seen := make(map[int64]bool)
	var groups [][]int64
	for _, m := range tables {
		if seen[m.ID] {
			continue
		}
		group, err := tx.LineageTables(m.ID)
		if err != nil {
			return res, err
		}
		for _, id := range group {
			seen[id] = true
		}
		groups = append(groups, group)
	}

	minTxn := e.MinActiveTxnID()
	for _, group := range groups {
		active := make(map[string]bool)
		inactive := make(map[string]bool)
		currentSeq := e.Catalog.CurrentSeq()

		for _, id := range group {
			meta, err := catalog.GetTable(tx.catTx, id)
			if err != nil {
				return res, err
			}
			state, _, err := tx.Snapshot(meta.Name, -1)
			if err != nil {
				return res, err
			}
			for _, f := range state.Files {
				active[f.Path] = true
				if f.DV != "" {
					active[f.DV] = true
				}
			}
			for _, tomb := range state.Tombstones {
				if currentSeq-tomb.RemovedSeq > meta.RetentionSeqs {
					inactive[tomb.Path] = true
				} else {
					active[tomb.Path] = true // still within retention
				}
			}
			// Manifest and checkpoint files referenced by the catalog stay.
			rows, err := catalog.ScanManifests(tx.catTx, id, -1)
			if err != nil {
				return res, err
			}
			for _, row := range rows {
				active[row.ManifestFile] = true
			}
			cps, err := catalog.ListCheckpoints(tx.catTx, id)
			if err != nil {
				return res, err
			}
			for _, cp := range cps {
				active[cp.Path] = true
			}
		}
		// Shared-lineage rule: active wins over inactive.
		for p := range active {
			delete(inactive, p)
		}

		for _, id := range group {
			prefix := fmt.Sprintf("tables/%d/", id)
			for _, info := range e.Store.ListInfo(prefix) {
				res.Scanned++
				switch {
				case active[info.Name]:
					res.Retained++
				case inactive[info.Name]:
					if err := e.deleteEverywhere(info.Name); err != nil {
						return res, err
					}
					if strings.Contains(info.Name, "/dv/") {
						res.DeletedDV++
					} else {
						res.DeletedData++
					}
				case info.CreatorStamp > 0 && info.CreatorStamp < minTxn:
					// Unreferenced and provably from a finished (aborted)
					// transaction.
					if err := e.deleteEverywhere(info.Name); err != nil {
						return res, err
					}
					res.DeletedOrphans++
				default:
					// Could belong to an in-flight transaction: retain.
					res.Retained++
				}
			}
		}
	}
	return res, nil
}

// deleteEverywhere removes a blob and purges node caches.
func (e *Engine) deleteEverywhere(path string) error {
	if err := e.Store.Delete(path); err != nil {
		return err
	}
	for _, n := range e.Fabric.Nodes() {
		n.InvalidateCached(path)
	}
	return nil
}

// PublishDelta renders a committed manifest as a Delta log file in the
// user-visible location (5.4) and returns its path. version is the table's
// Delta log version (commit ordinal).
func (e *Engine) PublishDelta(ev CommitEvent, version int64, state *manifest.TableState) (string, error) {
	body := manifest.ToDeltaLog(manifest.CommittedManifest{
		Seq: ev.Seq, Path: ev.Manifest, Actions: ev.Actions,
	}, ev.TxnID, ev.When.UnixMilli(), state)
	path := fmt.Sprintf("published/%d/%s", ev.TableID, manifest.DeltaLogName(version))
	if err := e.Store.Put(path, body, 0); err != nil {
		return "", err
	}
	return path, nil
}

// PublishIceberg renders a committed snapshot in the Iceberg metadata shape
// (the multi-format converter path the paper plans via Delta UniForm /
// OneTable) and returns the metadata document's path plus the updated
// snapshot chain. The state must be the post-commit state of the table.
func (e *Engine) PublishIceberg(ev CommitEvent, version int64, state *manifest.TableState, prior []manifest.IcebergSnapshot) (string, []manifest.IcebergSnapshot, error) {
	if state == nil {
		return "", prior, fmt.Errorf("core: iceberg publish needs the post-commit state")
	}
	listPath := fmt.Sprintf("published/%d/%s", ev.TableID, manifest.IcebergManifestListName(ev.Seq))
	if err := e.Store.Put(listPath, manifest.ToIcebergManifestList(state), 0); err != nil {
		return "", prior, err
	}
	snaps := append(append([]manifest.IcebergSnapshot{}, prior...), manifest.IcebergSnapshot{
		SnapshotID:       ev.TxnID,
		SequenceNumber:   ev.Seq,
		TimestampMs:      ev.When.UnixMilli(),
		Summary:          map[string]string{"operation": "append"},
		ManifestListPath: listPath,
	})
	location := fmt.Sprintf("published/%d", ev.TableID)
	mdPath := fmt.Sprintf("%s/%s", location, manifest.IcebergMetadataName(version))
	if err := e.Store.Put(mdPath, manifest.ToIcebergMetadata(ev.TableID, location, snaps), 0); err != nil {
		return "", prior, err
	}
	return mdPath, snaps, nil
}

// BackupMark captures a database-wide restore point: the current commit
// sequence, valid for every table (6.3). Backups are metadata-only — the
// immutable files already on storage are the backup.
func (e *Engine) BackupMark() int64 { return e.Catalog.CurrentSeq() }

// RestoreDatabase rewinds every table to its state as of seq in one
// transaction (6.3: periodic metadata snapshots enable "Restore operations
// of any point in time"). Tables created after the mark are dropped; their
// files are reclaimed by the next garbage collection.
func (e *Engine) RestoreDatabase(seq int64) error {
	return e.AutoCommit(func(tx *Txn) error {
		tables, err := catalog.ListTables(tx.catTx)
		if err != nil {
			return err
		}
		for _, m := range tables {
			if m.CreatedSeq > seq {
				rows, err := catalog.ScanManifests(tx.catTx, m.ID, -1)
				if err != nil {
					return err
				}
				if err := catalog.DropTable(tx.catTx, m.Name); err != nil {
					return err
				}
				for _, row := range rows {
					if err := catalog.DeleteManifestRow(tx.catTx, m.ID, row.Seq); err != nil {
						return err
					}
				}
				e.Cache.Invalidate(m.ID)
				continue
			}
			if err := tx.RestoreTableAsOf(m.Name, seq); err != nil {
				return err
			}
		}
		return nil
	})
}
