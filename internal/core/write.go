package core

import (
	"fmt"
	"hash/fnv"
	"sort"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/dcp"
	"polaris/internal/deletevector"
	"polaris/internal/exec"
	"polaris/internal/manifest"
)

// DistHash is d(r): the system-defined distribution function mapping a row
// to a bucket (paper 2.3). Exported because the SQL planner reuses it to
// cell-align grace-join spill partitions with the table's storage cells —
// one implementation, so the alignment cannot drift from the write path.
func DistHash(v any, buckets int) int {
	h := fnv.New32a()
	fmt.Fprintf(h, "%v", v)
	return int(h.Sum32() % uint32(buckets))
}

// partitionBatch splits rows by d(r) over the distribution column.
func partitionBatch(b *colfile.Batch, distCol string, buckets int) []*colfile.Batch {
	out := make([]*colfile.Batch, buckets)
	for i := range out {
		out[i] = colfile.NewBatch(b.Schema)
	}
	dc := b.Schema.ColIndex(distCol)
	for r := 0; r < b.NumRows(); r++ {
		p := 0
		if dc >= 0 && !b.Cols[dc].IsNull(r) {
			p = DistHash(b.Cols[dc].Value(r), buckets)
		} else if dc < 0 {
			p = r % buckets // round-robin when no distribution column
		}
		for c := range b.Cols {
			out[p].Cols[c].Append(b.Cols[c], r)
		}
	}
	return out
}

// sortBatchBy orders rows by the clustering column p(r) so zone maps are
// selective (the Z-order stand-in).
func sortBatchBy(b *colfile.Batch, col string) *colfile.Batch {
	c := b.Schema.ColIndex(col)
	if c < 0 || b.NumRows() == 0 {
		return b
	}
	srt := &exec.Sort{In: exec.NewBatchSource(b), Keys: []exec.SortKey{{Col: c}}}
	out, err := exec.Collect(srt)
	if err != nil {
		return b
	}
	return out
}

// writeTaskResult is one write task's contribution: staged manifest block IDs
// plus the pending actions they encode (3.2.2 step 6).
type writeTaskResult struct {
	blockIDs []string
	actions  []manifest.Action
	rows     int64
}

// Insert appends rows to a table. The DML is compiled into one DCP write task
// per non-empty distribution bucket; each task writes private Parquet files
// and stages its manifest block; the FE aggregates block IDs and commits the
// block list, appending to any blocks from prior statements (3.2.2, 3.2.3).
func (t *Txn) Insert(table string, rows *colfile.Batch) (int64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	meta, err := catalog.LookupTable(t.catTx, table)
	if err != nil {
		return 0, err
	}
	if !rows.Schema.Equal(meta.Schema) {
		return 0, fmt.Errorf("core: insert schema mismatch for %s", table)
	}
	if rows.NumRows() == 0 {
		return 0, nil
	}
	ts := t.tableState(meta)
	parts := partitionBatch(rows, meta.DistributionCol, t.eng.opts.Distributions)

	g := dcp.NewGraph()
	paths := TablePaths{ID: meta.ID}
	manifestBlob := paths.ManifestFile(t.id)
	store := t.eng.Store
	model := t.eng.Fabric.Model()
	rowsPerFile := t.eng.opts.RowsPerFile
	rowsPerGroup := t.eng.opts.RowsPerGroup
	sortCol := meta.SortCol
	txnID := t.id

	var taskIDs []int
	fileSeq := ts.blockSeq * 1000 // unique file numbering across statements
	for p, part := range parts {
		if part.NumRows() == 0 {
			continue
		}
		p, part := p, part
		base := fileSeq
		fileSeq += (part.NumRows()+rowsPerFile-1)/rowsPerFile + 1
		id := p + 1
		taskIDs = append(taskIDs, id)
		err := g.Add(&dcp.Task{
			ID: id, Name: fmt.Sprintf("insert-%s-p%d", meta.Name, p), Pool: dcp.WritePool,
			Exec: func(ctx *dcp.Ctx) (any, error) {
				sorted := sortBatchBy(part, sortCol)
				var res writeTaskResult
				n := 0
				for lo := 0; lo < sorted.NumRows(); lo += rowsPerFile {
					hi := lo + rowsPerFile
					if hi > sorted.NumRows() {
						hi = sorted.NumRows()
					}
					w := colfile.NewWriter(sorted.Schema)
					if sortCol != "" {
						w.SetSortedBy(sortCol)
					}
					for g0 := lo; g0 < hi; g0 += rowsPerGroup {
						g1 := g0 + rowsPerGroup
						if g1 > hi {
							g1 = hi
						}
						if err := w.WriteBatch(sliceCols(sorted, g0, g1)); err != nil {
							return nil, err
						}
					}
					data, err := w.Finish()
					if err != nil {
						return nil, err
					}
					// Attempt-unique path: a retried task writes fresh files;
					// the originals become dangling and are GC'd (4.3).
					path := paths.DataFile(txnID, p, base+n*10+ctx.Attempt)
					d, err := ctx.Node.WriteFile(store, path, data, txnID)
					if err != nil {
						return nil, err
					}
					ctx.Charge(d)
					res.actions = append(res.actions, manifest.Action{
						Op: manifest.OpAdd, Kind: manifest.KindData, Path: path,
						Rows: int64(hi - lo), Size: int64(len(data)), Partition: p,
						Sketches: w.Sketches(),
					})
					res.rows += int64(hi - lo)
					n++
				}
				ctx.Charge(model.CPU(res.rows))
				// Stage this task's manifest block (3.2.2: block ID unique
				// per writing BE attempt).
				blockID := fmt.Sprintf("t%d-p%d-a%d", txnID, p, ctx.Attempt)
				payload := manifest.Encode(res.actions)
				if err := store.StageBlock(manifestBlob, blockID, payload); err != nil {
					return nil, err
				}
				ctx.Charge(model.RemoteWrite(int64(len(payload))))
				res.blockIDs = []string{blockID}
				return res, nil
			},
		})
		if err != nil {
			return 0, err
		}
	}

	nodes, delay := t.eng.Fabric.AllocateForJob(len(taskIDs))
	res, err := dcp.Run(g, t.eng.pools(nodes), dcp.Options{
		MaxAttempts:     t.eng.opts.MaxTaskAttempts,
		Overhead:        model.TaskOverhead,
		StartOffset:     delay,
		FailureInjector: t.eng.opts.TaskFailureInjector,
	})
	if err != nil {
		return 0, err
	}
	t.charge(res.Makespan)

	// FE: aggregate block IDs from all tasks and commit the manifest blob,
	// appending to blocks committed by prior statements of this txn.
	var newBlocks []string
	var newActions []manifest.Action
	var inserted int64
	for _, out := range dcp.Gather(res, taskIDs) {
		wr := out.(writeTaskResult)
		newBlocks = append(newBlocks, wr.blockIDs...)
		newActions = append(newActions, wr.actions...)
		inserted += wr.rows
	}
	sort.Strings(newBlocks)
	all := append(append([]string{}, ts.blockIDs...), newBlocks...)
	if err := store.CommitBlockList(manifestBlob, all, t.id); err != nil {
		return 0, err
	}
	t.charge(model.RemoteWrite(0))
	ts.blockIDs = all
	ts.actions = append(ts.actions, newActions...)
	ts.blockSeq++
	if ts.kind == wroteNothing {
		ts.kind = wroteInserts
	}
	return inserted, nil
}

func sliceCols(b *colfile.Batch, lo, hi int) *colfile.Batch {
	out := &colfile.Batch{Schema: b.Schema, Cols: make([]*colfile.Vec, len(b.Cols))}
	for i, v := range b.Cols {
		out.Cols[i] = v.Slice(lo, hi)
	}
	return out
}

// Delete removes rows matching pred. In merge-on-read mode (the default,
// 4.1.1) deletes generate deletion-vector files for affected data files; if a
// file already carries a DV (committed or from an earlier statement of this
// txn), the new DV is the merge, recorded as Remove(old)+Add(merged) (4.2).
// In copy-on-write mode (2.1) affected files are rewritten without the
// deleted rows.
func (t *Txn) Delete(table string, pred exec.Expr) (int64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	state, meta, err := t.Snapshot(table, -1)
	if err != nil {
		return 0, err
	}
	ts := t.tableState(meta)
	matched, err := t.matchRows(state, meta, pred)
	if err != nil {
		return 0, err
	}
	if len(matched) == 0 {
		return 0, nil
	}
	if t.eng.opts.Deletes == CopyOnWrite {
		return t.deleteCopyOnWrite(state, meta, ts, matched)
	}

	paths := TablePaths{ID: meta.ID}
	model := t.eng.Fabric.Model()
	node := t.writeNode()
	var deleted int64
	var newActions []manifest.Action
	n := ts.blockSeq * 100
	files := make([]string, 0, len(matched))
	for f := range matched {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, path := range files {
		rows := matched[path]
		fe := state.Files[path]
		merged := deletevector.FromRows(rows)
		if fe.DV != "" {
			oldData, d, err := node.ReadFile(t.eng.Store, fe.DV)
			if err != nil {
				return 0, fmt.Errorf("core: read dv %s: %w", fe.DV, err)
			}
			t.charge(d)
			old, err := deletevector.Unmarshal(oldData)
			if err != nil {
				return 0, fmt.Errorf("core: corrupt dv %s: %w", fe.DV, err)
			}
			before := old.Cardinality()
			merged.Union(old)
			deleted += int64(merged.Cardinality() - before)
			newActions = append(newActions, manifest.Action{
				Op: manifest.OpRemove, Kind: manifest.KindDV, Path: fe.DV, Target: path,
			})
		} else {
			deleted += int64(merged.Cardinality())
		}
		dvPath := paths.DVFile(t.id, n)
		n++
		data := merged.Marshal()
		d, err := node.WriteFile(t.eng.Store, dvPath, data, t.id)
		if err != nil {
			return 0, err
		}
		t.charge(d)
		newActions = append(newActions, manifest.Action{
			Op: manifest.OpAdd, Kind: manifest.KindDV, Path: dvPath, Target: path,
			DeletedRows: int64(merged.Cardinality()), Partition: fe.Partition,
		})
		ts.touchedFiles[path] = true
	}
	t.charge(model.CPU(deleted))

	if err := t.rewriteManifest(ts, paths, newActions); err != nil {
		return 0, err
	}
	ts.kind = wroteUpdates
	return deleted, nil
}

// deleteCopyOnWrite rewrites every affected data file without the matched
// rows (paper 2.1: "deletes the entire data file where rows are being updated
// and replaces it with a new file").
func (t *Txn) deleteCopyOnWrite(state *manifest.TableState, meta catalog.TableMeta, ts *txnTable, matched map[string][]uint32) (int64, error) {
	paths := TablePaths{ID: meta.ID}
	node := t.writeNode()
	model := t.eng.Fabric.Model()
	var deleted int64
	var newActions []manifest.Action
	n := ts.blockSeq * 100
	files := make([]string, 0, len(matched))
	for f := range matched {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, path := range files {
		fe := state.Files[path]
		data, d, err := node.ReadFile(t.eng.Store, path)
		if err != nil {
			return 0, err
		}
		t.charge(d)
		r, err := colfile.OpenReader(data)
		if err != nil {
			return 0, err
		}
		all, err := r.ReadAll()
		if err != nil {
			return 0, err
		}
		drop := deletevector.FromRows(matched[path])
		deleted += int64(drop.Cardinality())
		if fe.DV != "" {
			dvData, dd, err := node.ReadFile(t.eng.Store, fe.DV)
			if err != nil {
				return 0, err
			}
			t.charge(dd)
			old, err := deletevector.Unmarshal(dvData)
			if err != nil {
				return 0, err
			}
			drop.Union(old)
		}
		survivors := all.Filter(drop.FilterMask(all.NumRows()))
		newActions = append(newActions, manifest.Action{
			Op: manifest.OpRemove, Kind: manifest.KindData, Path: path,
		})
		if fe.DV != "" {
			newActions = append(newActions, manifest.Action{
				Op: manifest.OpRemove, Kind: manifest.KindDV, Path: fe.DV, Target: path,
			})
		}
		ts.touchedFiles[path] = true
		if survivors.NumRows() > 0 {
			w := colfile.NewWriter(meta.Schema)
			if meta.SortCol != "" {
				w.SetSortedBy(meta.SortCol)
			}
			for g0 := 0; g0 < survivors.NumRows(); g0 += t.eng.opts.RowsPerGroup {
				g1 := g0 + t.eng.opts.RowsPerGroup
				if g1 > survivors.NumRows() {
					g1 = survivors.NumRows()
				}
				if err := w.WriteBatch(sliceCols(survivors, g0, g1)); err != nil {
					return 0, err
				}
			}
			out, err := w.Finish()
			if err != nil {
				return 0, err
			}
			newPath := fmt.Sprintf("%scow-%d-%d.pcf", paths.DataPrefix(), t.id, n)
			n++
			d, err := node.WriteFile(t.eng.Store, newPath, out, t.id)
			if err != nil {
				return 0, err
			}
			t.charge(d)
			newActions = append(newActions, manifest.Action{
				Op: manifest.OpAdd, Kind: manifest.KindData, Path: newPath,
				Rows: int64(survivors.NumRows()), Size: int64(len(out)), Partition: fe.Partition,
				Sketches: w.Sketches(),
			})
		}
	}
	t.charge(model.CPU(deleted))
	if err := t.rewriteManifest(ts, paths, newActions); err != nil {
		return 0, err
	}
	ts.kind = wroteUpdates
	return deleted, nil
}

// matchRows evaluates pred over each live file and returns, per file, the
// matching row ordinals (file-global, DV-adjusted rows excluded).
func (t *Txn) matchRows(state *manifest.TableState, meta catalog.TableMeta, pred exec.Expr) (map[string][]uint32, error) {
	out := make(map[string][]uint32)
	node := t.writeNode()
	for _, fe := range state.LiveFiles() {
		data, d, err := node.ReadFile(t.eng.Store, fe.Path)
		if err != nil {
			return nil, err
		}
		t.charge(d)
		r, err := colfile.OpenReader(data)
		if err != nil {
			return nil, err
		}
		var dv *deletevector.Vector
		if fe.DV != "" {
			dvData, dd, err := node.ReadFile(t.eng.Store, fe.DV)
			if err != nil {
				return nil, err
			}
			t.charge(dd)
			dv, err = deletevector.Unmarshal(dvData)
			if err != nil {
				return nil, err
			}
		}
		base := uint32(0)
		for g := 0; g < r.NumRowGroups(); g++ {
			batch, err := r.ReadRowGroup(g, nil)
			if err != nil {
				return nil, err
			}
			pv, err := pred.Eval(batch)
			if err != nil {
				return nil, err
			}
			if pv.Type != colfile.Bool {
				return nil, fmt.Errorf("core: DELETE predicate is %s, not bool", pv.Type)
			}
			for i := 0; i < batch.NumRows(); i++ {
				ord := base + uint32(i)
				if dv != nil && dv.Contains(ord) {
					continue // already deleted
				}
				if !pv.IsNull(i) && pv.Bools[i] {
					out[fe.Path] = append(out[fe.Path], ord)
				}
			}
			base += uint32(batch.NumRows())
		}
		t.charge(t.eng.Fabric.Model().CPU(int64(r.NumRows())))
	}
	return out, nil
}

// rewriteManifest reconciles the transaction's pending actions with a new
// statement's actions and rewrites the manifest blob — the paper's FE-side
// compaction of the aggregated blocks (3.2.3, footnote 3). Reconciliation
// removes Add/Remove pairs that cancel within the transaction (e.g. a DV
// superseded by a later statement's merged DV).
func (t *Txn) rewriteManifest(ts *txnTable, paths TablePaths, newActions []manifest.Action) error {
	combined := reconcileActions(append(append([]manifest.Action{}, ts.actions...), newActions...))
	blob := paths.ManifestFile(t.id)
	blockID := fmt.Sprintf("t%d-rewrite-%d", t.id, ts.blockSeq)
	payload := manifest.Encode(combined)
	if err := t.eng.Store.StageBlock(blob, blockID, payload); err != nil {
		return err
	}
	if err := t.eng.Store.CommitBlockList(blob, []string{blockID}, t.id); err != nil {
		return err
	}
	t.charge(t.eng.Fabric.Model().RemoteWrite(int64(len(payload))))
	ts.actions = combined
	ts.blockIDs = []string{blockID}
	ts.blockSeq++
	return nil
}

// reconcileActions folds a transaction's action log so the final manifest
// carries no information made obsolete by later statements (3.2.3): an Add
// followed by a Remove of the same path cancels both; later DV adds for a
// target supersede earlier ones.
func reconcileActions(actions []manifest.Action) []manifest.Action {
	type slot struct {
		act  manifest.Action
		dead bool
	}
	slots := make([]*slot, 0, len(actions))
	addIdx := make(map[string]*slot) // live Add by path
	dvByTarget := make(map[string]*slot)
	var out []manifest.Action
	for _, a := range actions {
		s := &slot{act: a}
		switch {
		case a.Op == manifest.OpAdd && a.Kind == manifest.KindData:
			addIdx[a.Path] = s
		case a.Op == manifest.OpRemove && a.Kind == manifest.KindData:
			if prev, ok := addIdx[a.Path]; ok && !prev.dead {
				// added and removed within this txn: both vanish
				prev.dead = true
				s.dead = true
				delete(addIdx, a.Path)
				if dv, ok := dvByTarget[a.Path]; ok {
					dv.dead = true
					delete(dvByTarget, a.Path)
				}
			}
		case a.Op == manifest.OpAdd && a.Kind == manifest.KindDV:
			if prev, ok := dvByTarget[a.Target]; ok {
				prev.dead = true
			}
			dvByTarget[a.Target] = s
		case a.Op == manifest.OpRemove && a.Kind == manifest.KindDV:
			if prev, ok := dvByTarget[a.Target]; ok && prev.act.Path == a.Path {
				// this txn's own DV being replaced: drop both halves
				prev.dead = true
				s.dead = true
				delete(dvByTarget, a.Target)
			}
		}
		slots = append(slots, s)
	}
	for _, s := range slots {
		if !s.dead {
			out = append(out, s.act)
		}
	}
	return out
}

// Update rewrites matching rows: per the paper, an update is a deletion of
// the old row versions plus an insertion of the new versions (4.1.1 step 2).
// set maps column names to expressions evaluated over the old rows.
func (t *Txn) Update(table string, pred exec.Expr, set map[string]exec.Expr) (int64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	state, meta, err := t.Snapshot(table, -1)
	if err != nil {
		return 0, err
	}
	for col := range set {
		if meta.Schema.ColIndex(col) < 0 {
			return 0, fmt.Errorf("core: unknown column %q in UPDATE", col)
		}
	}
	// Materialize the new versions of matching rows before deleting them.
	op, _, err := t.scanState(state, meta, ScanOptions{})
	if err != nil {
		return 0, err
	}
	matching, err := exec.Collect(&exec.Filter{In: op, Pred: pred})
	if err != nil {
		return 0, err
	}
	if matching.NumRows() == 0 {
		return 0, nil
	}
	updated := colfile.NewBatch(meta.Schema)
	exprs := make([]exec.Expr, len(meta.Schema))
	for i, f := range meta.Schema {
		if e, ok := set[f.Name]; ok {
			exprs[i] = e
		} else {
			exprs[i] = exec.ColRef{Idx: i, Name: f.Name}
		}
	}
	proj := &exec.Project{In: exec.NewBatchSource(matching), Exprs: exprs, Names: fieldNames(meta.Schema)}
	newRows, err := exec.Collect(proj)
	if err != nil {
		return 0, err
	}
	// Project loses exact schema names/types match; rebuild as table schema.
	for r := 0; r < newRows.NumRows(); r++ {
		if err := updated.AppendRow(newRows.Row(r)...); err != nil {
			return 0, err
		}
	}
	n, err := t.Delete(table, pred)
	if err != nil {
		return 0, err
	}
	if _, err := t.Insert(table, updated); err != nil {
		return 0, err
	}
	t.tableState(meta).kind = wroteUpdates // insert reset would mark inserts
	return n, nil
}

func fieldNames(s colfile.Schema) []string {
	out := make([]string, len(s))
	for i, f := range s {
		out[i] = f.Name
	}
	return out
}

// SourceFile is one bulk-load input: a generator producing that source file's
// rows. Parallelism of a load is bounded by the number of source files — the
// paper's Fig. 7 bottleneck ("we do not scale out the reading within a
// source file, only across source files").
type SourceFile struct {
	Name string
	// Rows generates the file's batch when the load task runs.
	Rows func() (*colfile.Batch, error)
	// SizeHint drives cost-based resource allocation.
	SizeHint int64
}

// BulkLoad ingests a set of source files into a table: one DCP write task per
// source file, sized by cost-based allocation over the fabric (Section 7.1).
func (t *Txn) BulkLoad(table string, sources []SourceFile) (int64, error) {
	if err := t.check(); err != nil {
		return 0, err
	}
	meta, err := catalog.LookupTable(t.catTx, table)
	if err != nil {
		return 0, err
	}
	ts := t.tableState(meta)
	paths := TablePaths{ID: meta.ID}
	manifestBlob := paths.ManifestFile(t.id)
	store := t.eng.Store
	model := t.eng.Fabric.Model()
	rowsPerGroup := t.eng.opts.RowsPerGroup
	txnID := t.id
	distributions := t.eng.opts.Distributions
	sortCol := meta.SortCol
	distCol := meta.DistributionCol

	g := dcp.NewGraph()
	var taskIDs []int
	base := ts.blockSeq * 1000
	for i, src := range sources {
		i, src := i, src
		id := i + 1
		taskIDs = append(taskIDs, id)
		err := g.Add(&dcp.Task{
			ID: id, Name: "load-" + src.Name, Pool: dcp.WritePool,
			Exec: func(ctx *dcp.Ctx) (any, error) {
				batch, err := src.Rows()
				if err != nil {
					return nil, err
				}
				// Simulated read of the source file.
				ctx.Charge(model.RemoteRead(src.SizeHint))
				var res writeTaskResult
				parts := partitionBatch(batch, distCol, distributions)
				for p, part := range parts {
					if part.NumRows() == 0 {
						continue
					}
					sorted := sortBatchBy(part, sortCol)
					w := colfile.NewWriter(sorted.Schema)
					if sortCol != "" {
						w.SetSortedBy(sortCol)
					}
					for g0 := 0; g0 < sorted.NumRows(); g0 += rowsPerGroup {
						g1 := g0 + rowsPerGroup
						if g1 > sorted.NumRows() {
							g1 = sorted.NumRows()
						}
						if err := w.WriteBatch(sliceCols(sorted, g0, g1)); err != nil {
							return nil, err
						}
					}
					data, err := w.Finish()
					if err != nil {
						return nil, err
					}
					path := paths.DataFile(txnID, p, base+i*100+p*10+ctx.Attempt)
					d, err := ctx.Node.WriteFile(store, path, data, txnID)
					if err != nil {
						return nil, err
					}
					ctx.Charge(d)
					res.actions = append(res.actions, manifest.Action{
						Op: manifest.OpAdd, Kind: manifest.KindData, Path: path,
						Rows: int64(sorted.NumRows()), Size: int64(len(data)), Partition: p,
						Sketches: w.Sketches(),
					})
					res.rows += int64(sorted.NumRows())
				}
				ctx.Charge(model.CPU(res.rows))
				blockID := fmt.Sprintf("t%d-s%d-a%d", txnID, i, ctx.Attempt)
				payload := manifest.Encode(res.actions)
				if err := store.StageBlock(manifestBlob, blockID, payload); err != nil {
					return nil, err
				}
				ctx.Charge(model.RemoteWrite(int64(len(payload))))
				res.blockIDs = []string{blockID}
				return res, nil
			},
		})
		if err != nil {
			return 0, err
		}
	}

	nodes, delay := t.eng.Fabric.AllocateForJob(len(sources))
	res, err := dcp.Run(g, t.eng.pools(nodes), dcp.Options{
		MaxAttempts:     t.eng.opts.MaxTaskAttempts,
		Overhead:        model.TaskOverhead,
		StartOffset:     delay,
		FailureInjector: t.eng.opts.TaskFailureInjector,
	})
	if err != nil {
		return 0, err
	}
	t.charge(res.Makespan)

	var newBlocks []string
	var loaded int64
	for _, out := range dcp.Gather(res, taskIDs) {
		wr := out.(writeTaskResult)
		newBlocks = append(newBlocks, wr.blockIDs...)
		ts.actions = append(ts.actions, wr.actions...)
		loaded += wr.rows
	}
	sort.Strings(newBlocks)
	all := append(append([]string{}, ts.blockIDs...), newBlocks...)
	if err := store.CommitBlockList(manifestBlob, all, t.id); err != nil {
		return 0, err
	}
	ts.blockIDs = all
	ts.blockSeq++
	if ts.kind == wroteNothing {
		ts.kind = wroteInserts
	}
	return loaded, nil
}
