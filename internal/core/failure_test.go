package core

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"polaris/internal/compute"
	"polaris/internal/exec"
	"polaris/internal/manifest"
)

// Failure-injection tests: the paper's resilience story (3.2.2, 4.3) is that
// task failures during writes never corrupt state — failed attempts' blocks
// are excluded from the committed block list, their data files dangle until
// GC, and the transaction completes on retried tasks.

func TestInsertSurvivesTaskFailures(t *testing.T) {
	e := testEngine(t)
	var injected atomic.Int32
	e.opts.TaskFailureInjector = func(taskID, attempt int, node *compute.Node) error {
		if attempt == 1 && injected.Add(1) <= 2 {
			return errors.New("injected task failure")
		}
		return nil
	}
	mustCreate(t, e, "t1")
	err := e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(),
			[]any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)}, []any{"D", int64(4)}))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if injected.Load() == 0 {
		t.Skip("no failures injected (all rows hashed to one task)")
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "t1", -1); got != 10 {
		t.Fatalf("sum = %d, data corrupted by retries", got)
	}
	rs, _ := tx.ReadAll("t1")
	if rs.NumRows() != 4 {
		t.Fatalf("rows = %d (duplicates from retried attempts?)", rs.NumRows())
	}
}

func TestFailedAttemptsLeaveOnlyDanglingFiles(t *testing.T) {
	e := testEngine(t)
	fail := true
	e.opts.TaskFailureInjector = func(taskID, attempt int, node *compute.Node) error {
		if attempt == 1 && fail {
			return errors.New("boom")
		}
		return nil
	}
	mustCreate(t, e, "t1")
	err := e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"B", int64(2)}))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	fail = false

	// The manifest must reference only attempt>=2 files; attempt-1 files are
	// dangling on storage.
	tx := e.Begin()
	defer tx.Rollback()
	state, _, err := tx.Snapshot("t1", -1)
	if err != nil {
		t.Fatal(err)
	}
	referenced := map[string]bool{}
	for p := range state.Files {
		referenced[p] = true
		if !e.Store.Exists(p) {
			t.Fatalf("referenced file %s missing from storage", p)
		}
	}
	dangling := 0
	for _, name := range e.Store.List("tables/1/data/") {
		if !referenced[name] {
			dangling++
		}
	}
	if dangling == 0 {
		t.Fatal("expected dangling attempt-1 files")
	}
	// GC reclaims them once no active txn could still reference them.
	tx.Rollback()
	res, err := e.GarbageCollect()
	if err != nil {
		t.Fatal(err)
	}
	if res.DeletedOrphans < dangling {
		t.Fatalf("gc deleted %d orphans, want >= %d", res.DeletedOrphans, dangling)
	}
	tx2 := e.Begin()
	defer tx2.Rollback()
	if got := sumC2(t, tx2, "t1", -1); got != 3 {
		t.Fatalf("sum after GC = %d", got)
	}
}

func TestPermanentTaskFailureAbortsStatement(t *testing.T) {
	e := testEngine(t)
	e.opts.TaskFailureInjector = func(taskID, attempt int, node *compute.Node) error {
		return errors.New("node fabric meltdown")
	}
	mustCreate(t, e, "t1")
	tx := e.Begin()
	_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}))
	if err == nil || !strings.Contains(err.Error(), "meltdown") {
		t.Fatalf("err = %v", err)
	}
	tx.Rollback()
	// nothing committed
	e.opts.TaskFailureInjector = nil
	r := e.Begin()
	defer r.Rollback()
	if got := sumC2(t, r, "t1", -1); got != 0 {
		t.Fatalf("partial write visible: %d", got)
	}
}

func TestNodeLossDuringTopologyChange(t *testing.T) {
	// Paper 3.3: nodes can leave the topology without affecting in-flight
	// transactions; caches replenish from OneLake.
	e := testEngine(t)
	mustCreate(t, e, "t1")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(),
			[]any{"A", int64(1)}, []any{"B", int64(2)}, []any{"C", int64(3)}))
		return err
	})
	// warm caches
	tx := e.Begin()
	if got := sumC2(t, tx, "t1", -1); got != 6 {
		t.Fatalf("sum = %d", got)
	}
	tx.Rollback()
	// kill every current node; the fabric re-provisions with cold caches
	for _, n := range e.Fabric.Nodes() {
		e.Fabric.KillNode(n.ID)
	}
	tx2 := e.Begin()
	defer tx2.Rollback()
	if got := sumC2(t, tx2, "t1", -1); got != 6 {
		t.Fatalf("sum after total node loss = %d", got)
	}
}

func TestBackupRestoreDatabase(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "a")
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("a", rowsBatch(t, t1Schema(), []any{"x", int64(1)}))
		return err
	})
	mark := e.BackupMark()

	// post-mark damage: more data in a, a whole new table b
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("a", rowsBatch(t, t1Schema(), []any{"y", int64(100)}))
		return err
	})
	_ = e.AutoCommit(func(tx *Txn) error {
		if _, err := tx.CreateTable("b", t1Schema(), "c1", ""); err != nil {
			return err
		}
		_, err := tx.Insert("b", rowsBatch(t, t1Schema(), []any{"z", int64(5)}))
		return err
	})

	if err := e.RestoreDatabase(mark); err != nil {
		t.Fatal(err)
	}
	tx := e.Begin()
	defer tx.Rollback()
	if got := sumC2(t, tx, "a", -1); got != 1 {
		t.Fatalf("a restored sum = %d", got)
	}
	if _, err := tx.Table("b"); err == nil {
		t.Fatal("post-mark table b survived restore")
	}
}

func TestIcebergPublish(t *testing.T) {
	e := testEngine(t)
	mustCreate(t, e, "t1")
	var events []CommitEvent
	e.Subscribe(func(ev CommitEvent) { events = append(events, ev) })
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Insert("t1", rowsBatch(t, t1Schema(), []any{"A", int64(1)}, []any{"B", int64(2)}))
		return err
	})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	tx := e.Begin()
	state, _, err := tx.Snapshot("t1", -1)
	tx.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	mdPath, chain, err := e.PublishIceberg(events[0], 0, state, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 {
		t.Fatalf("chain = %d", len(chain))
	}
	data, err := e.Store.Get(mdPath)
	if err != nil {
		t.Fatal(err)
	}
	md, err := manifest.ParseIcebergMetadata(data)
	if err != nil {
		t.Fatal(err)
	}
	if md.FormatVersion != 2 || md.CurrentSnapshotID != events[0].TxnID {
		t.Fatalf("metadata = %+v", md)
	}
	listData, err := e.Store.Get(chain[0].ManifestListPath)
	if err != nil {
		t.Fatal(err)
	}
	files, err := manifest.ParseIcebergManifestList(listData)
	if err != nil {
		t.Fatal(err)
	}
	var rows int64
	for _, f := range files {
		if f.Content == 0 {
			rows += f.RecordCount
		}
	}
	if rows != 2 {
		t.Fatalf("published rows = %d", rows)
	}
	// a delete adds a position-delete entry on the next publish
	_ = e.AutoCommit(func(tx *Txn) error {
		_, err := tx.Delete("t1", exec.Bin{Kind: exec.OpEq, L: exec.ColRef{Idx: 0}, R: exec.Const{Val: "A"}})
		return err
	})
	tx2 := e.Begin()
	state2, _, _ := tx2.Snapshot("t1", -1)
	tx2.Rollback()
	_, chain2, err := e.PublishIceberg(events[1], 1, state2, chain)
	if err != nil {
		t.Fatal(err)
	}
	listData2, _ := e.Store.Get(chain2[1].ManifestListPath)
	files2, _ := manifest.ParseIcebergManifestList(listData2)
	hasDeletes := false
	for _, f := range files2 {
		if f.Content == 1 && f.ReferencedFile != "" {
			hasDeletes = true
		}
	}
	if !hasDeletes {
		t.Fatal("no position-delete entries published")
	}
}
