package core

import (
	"fmt"
	"time"

	"polaris/internal/catalog"
	"polaris/internal/colfile"
	"polaris/internal/compute"
	"polaris/internal/dcp"
	"polaris/internal/deletevector"
	"polaris/internal/exec"
	"polaris/internal/manifest"
	"polaris/internal/objectstore"
)

// Snapshot reconstructs the table state visible to this transaction
// (paper 3.2.1, 4.1.1): the Manifests rows visible under catalog SI, replayed
// over the newest usable checkpoint, overlaid with the transaction's own
// pending changes. asOfSeq >= 0 time-travels to that commit sequence
// (Query As Of, 6.1).
func (t *Txn) Snapshot(table string, asOfSeq int64) (*manifest.TableState, catalog.TableMeta, error) {
	if err := t.check(); err != nil {
		return nil, catalog.TableMeta{}, err
	}
	meta, err := catalog.LookupTable(t.catTx, table)
	if err != nil {
		return nil, catalog.TableMeta{}, err
	}
	state, err := t.reconstruct(meta, asOfSeq)
	if err != nil {
		return nil, catalog.TableMeta{}, err
	}
	// Multi-statement overlay: changes of prior statements in this txn are
	// visible to subsequent statements (3.2.3).
	if ts, ok := t.tables[meta.ID]; ok && len(ts.actions) > 0 && asOfSeq < 0 {
		state, err = state.Overlay(ts.actions)
		if err != nil {
			return nil, catalog.TableMeta{}, err
		}
	}
	return state, meta, nil
}

// reconstruct builds the committed snapshot of a table as of asOfSeq
// (negative = transaction snapshot).
func (t *Txn) reconstruct(meta catalog.TableMeta, asOfSeq int64) (*manifest.TableState, error) {
	rows, err := catalog.ScanManifests(t.catTx, meta.ID, asOfSeq)
	if err != nil {
		return nil, err
	}
	wantSeq := int64(0)
	if len(rows) > 0 {
		wantSeq = rows[len(rows)-1].Seq
	}
	// Snapshot cache: exact state for this sequence may already be cached.
	if cached := t.eng.Cache.Get(meta.ID, wantSeq); cached != nil {
		return cached, nil
	}

	// Checkpoint: load the newest checkpoint at or below the snapshot (5.2).
	var cp *manifest.Checkpoint
	cpRow, ok, err := catalog.LatestCheckpoint(t.catTx, meta.ID, wantSeq)
	if err != nil {
		return nil, err
	}
	node := t.anyNode()
	if ok {
		data, d, err := node.ReadFile(t.eng.Store, cpRow.Path)
		if err == nil {
			t.charge(d)
			cp, err = manifest.UnmarshalCheckpoint(data)
			if err != nil {
				return nil, fmt.Errorf("core: corrupt checkpoint %s: %w", cpRow.Path, err)
			}
		}
		// A missing checkpoint file is not fatal: fall back to full replay.
	}

	// Replay manifests after the checkpoint.
	var committed []manifest.CommittedManifest
	for _, row := range rows {
		if cp != nil && row.Seq <= cp.Seq {
			continue
		}
		data, d, err := node.ReadFile(t.eng.Store, row.ManifestFile)
		if err != nil {
			return nil, fmt.Errorf("core: read manifest %s: %w", row.ManifestFile, err)
		}
		t.charge(d)
		actions, err := manifest.Decode(data)
		if err != nil {
			return nil, fmt.Errorf("core: decode manifest %s: %w", row.ManifestFile, err)
		}
		committed = append(committed, manifest.CommittedManifest{
			Seq: row.Seq, Path: row.ManifestFile, Actions: actions,
		})
	}
	state, err := manifest.Reconstruct(cp, committed, wantSeq)
	if err != nil {
		return nil, err
	}
	if state.LastSeq < wantSeq {
		state.LastSeq = wantSeq // empty-manifest commits still advance
	}
	t.eng.Cache.Put(meta.ID, state)
	return state, nil
}

// anyNode picks a live node for FE-side metadata IO (read pool side).
func (t *Txn) anyNode() *compute.Node {
	nodes := t.eng.Fabric.Nodes()
	if len(nodes) == 0 {
		nodes, _ = t.eng.Fabric.AllocateForJob(1)
	}
	return nodes[0]
}

// writeNode picks a node from the WLM write pool for FE-coordinated writes
// (deletion vectors, compaction output, checkpoints), so maintenance IO lands
// on write nodes and read-pool caches stay representative (paper 4.3).
func (t *Txn) writeNode() *compute.Node {
	nodes := t.eng.Fabric.Nodes()
	if len(nodes) == 0 {
		nodes, _ = t.eng.Fabric.AllocateForJob(1)
	}
	if t.eng.opts.WLMSeparate && len(nodes) >= 2 {
		return nodes[len(nodes)/2]
	}
	return nodes[0]
}

// cellFiles holds one scan task's inputs: the files of a disjoint set of
// cells (a distribution bucket).
type cellFiles struct {
	files []*manifest.FileEntry
}

// partitionCells groups a snapshot's live files into per-distribution cell
// sets, the disjoint task inputs of the paper's data model (2.3).
func partitionCells(state *manifest.TableState, distributions int) []cellFiles {
	cells := make([]cellFiles, distributions)
	for _, f := range state.LiveFiles() {
		p := f.Partition % distributions
		if p < 0 {
			p += distributions
		}
		cells[p].files = append(cells[p].files, f)
	}
	return cells
}

// ScanOptions tune a table scan.
type ScanOptions struct {
	// Columns projects the scan; nil reads all columns.
	Columns []string
	// AsOfSeq time-travels the read; negative = current snapshot.
	AsOfSeq int64
	// Prune optionally skips row groups via zone maps.
	Prune *exec.PruneHint
}

// Scan executes a distributed read of a table: one DCP task per non-empty
// cell set fetches that cell's data and deletion-vector files through the
// node cache hierarchy, charging simulated IO and CPU; the FE unions the
// results. The returned operator streams the visible rows.
func (t *Txn) Scan(table string, opts ScanOptions) (exec.Operator, *exec.Telemetry, error) {
	if opts.AsOfSeq == 0 {
		opts.AsOfSeq = -1
	}
	state, meta, err := t.Snapshot(table, opts.AsOfSeq)
	if err != nil {
		return nil, nil, err
	}
	return t.scanState(state, meta, opts)
}

// fetchScanFiles runs the distributed fetch phase of a read: one DCP task
// per non-empty cell set pulls that cell's data and deletion-vector files
// through the node cache hierarchy, charging simulated IO and CPU plus the
// engine-wide modeled work counters. Cell file lists are returned in cell
// order, which fixes the global row order every downstream path (serial
// union or morsel-parallel merge) preserves.
func (t *Txn) fetchScanFiles(state *manifest.TableState, meta catalog.TableMeta) ([][]exec.ScanFile, error) {
	cells := partitionCells(state, t.eng.opts.Distributions)

	g := dcp.NewGraph()
	store := t.eng.Store
	model := t.eng.Fabric.Model()
	work := &t.eng.Work
	var taskIDs []int
	for i, cell := range cells {
		if len(cell.files) == 0 {
			continue
		}
		cell := cell
		id := i + 1
		taskIDs = append(taskIDs, id)
		err := g.Add(&dcp.Task{
			ID: id, Name: fmt.Sprintf("scan-%s-cell%d", meta.Name, i), Pool: dcp.ReadPool,
			Exec: func(ctx *dcp.Ctx) (any, error) {
				var files []exec.ScanFile
				var rows, bytes int64
				for _, fe := range cell.files {
					data, d, err := ctx.Node.ReadFile(store, fe.Path)
					if err != nil {
						return nil, err
					}
					ctx.Charge(d)
					sf := exec.ScanFile{Data: data}
					if fe.DV != "" {
						dvData, dd, err := ctx.Node.ReadFile(store, fe.DV)
						if err != nil {
							return nil, err
						}
						ctx.Charge(dd)
						dv, err := deletevector.Unmarshal(dvData)
						if err != nil {
							return nil, fmt.Errorf("core: corrupt dv %s: %w", fe.DV, err)
						}
						sf.DV = dv
						bytes += int64(len(dvData))
					}
					files = append(files, sf)
					// Merge-on-read scans pay for physical rows: deleted
					// rows are read and filtered out at scan time (2.1).
					rows += fe.Rows
					bytes += int64(len(data))
				}
				ctx.Charge(model.CPU(rows)) // per-cell scan CPU
				work.RowsScanned.Add(rows)
				work.FilesRead.Add(int64(len(files)))
				work.BytesRead.Add(bytes)
				return files, nil
			},
		})
		if err != nil {
			return nil, err
		}
	}

	if len(taskIDs) == 0 {
		return nil, nil
	}

	nodes, delay := t.eng.Fabric.AllocateForJob(len(taskIDs))
	res, err := dcp.Run(g, t.eng.pools(nodes), dcp.Options{
		MaxAttempts:     t.eng.opts.MaxTaskAttempts,
		Overhead:        model.TaskOverhead,
		StartOffset:     delay,
		FailureInjector: t.eng.opts.TaskFailureInjector,
	})
	if err != nil {
		return nil, err
	}
	t.charge(res.Makespan)

	out := make([][]exec.ScanFile, 0, len(taskIDs))
	for _, o := range dcp.Gather(res, taskIDs) {
		out = append(out, o.([]exec.ScanFile))
	}
	return out, nil
}

func (t *Txn) scanState(state *manifest.TableState, meta catalog.TableMeta, opts ScanOptions) (exec.Operator, *exec.Telemetry, error) {
	tel := &exec.Telemetry{}
	cellFiles, err := t.fetchScanFiles(state, meta)
	if err != nil {
		return nil, nil, err
	}

	if len(cellFiles) == 0 {
		// Empty table: an empty scan with the table schema.
		s, err := exec.NewScan(nil, opts.Columns, opts.Prune, tel)
		if err != nil {
			return nil, nil, err
		}
		if err := s.SetSchema(meta.Schema); err != nil {
			return nil, nil, err
		}
		return s, tel, nil
	}

	var ops []exec.Operator
	for _, files := range cellFiles {
		s, err := exec.NewScan(files, opts.Columns, opts.Prune, tel)
		if err != nil {
			return nil, nil, err
		}
		if err := s.SetSchema(meta.Schema); err != nil {
			return nil, nil, err
		}
		ops = append(ops, s)
	}
	return &exec.UnionAll{Ins: ops}, tel, nil
}

// MorselScan is the input of a morsel-parallel table read: the snapshot's
// live files fetched through the fabric, split into morsels whose in-order
// concatenation equals the serial scan's row order, plus the table schema
// and a shared thread-safe telemetry sink.
type MorselScan struct {
	Morsels []exec.Morsel
	Schema  colfile.Schema
	Tel     *exec.Telemetry
}

// ScanMorsels fetches a table snapshot like Scan but hands back the morsel
// list instead of a flat operator, so the SQL layer can fan the morsels out
// over a worker pool; column projection and zone-map pruning are applied by
// the caller when it builds the per-morsel scans. asOfSeq time-travels the
// read (0 or negative = current snapshot). `want` is the desired morsel
// count (typically a small multiple of the worker count, so the queue
// load-balances).
func (t *Txn) ScanMorsels(table string, asOfSeq int64, want int) (*MorselScan, error) {
	if asOfSeq == 0 {
		asOfSeq = -1
	}
	state, meta, err := t.Snapshot(table, asOfSeq)
	if err != nil {
		return nil, err
	}
	cellFiles, err := t.fetchScanFiles(state, meta)
	if err != nil {
		return nil, err
	}
	var flat []exec.ScanFile
	for _, files := range cellFiles {
		flat = append(flat, files...)
	}
	morsels, err := exec.SplitMorsels(flat, want)
	if err != nil {
		return nil, err
	}
	return &MorselScan{Morsels: morsels, Schema: meta.Schema, Tel: &exec.Telemetry{}}, nil
}

// ScanCellMorsels fetches a table snapshot like ScanMorsels but aligns the
// morsels with the table's distribution cells: one morsel per non-empty cell,
// holding all of that cell's files. Because d(r) assigns every row with a
// given distribution-column value (NULLs included) to exactly one cell, a
// per-morsel aggregation grouped on the distribution column is already
// complete for its groups — the plan can skip the merge phase entirely
// (MergeAgg{MergeFree: true}). The decomposition is independent of the
// degree of parallelism, so results are identical at every DOP.
func (t *Txn) ScanCellMorsels(table string, asOfSeq int64) (*MorselScan, error) {
	if asOfSeq == 0 {
		asOfSeq = -1
	}
	state, meta, err := t.Snapshot(table, asOfSeq)
	if err != nil {
		return nil, err
	}
	cellFiles, err := t.fetchScanFiles(state, meta)
	if err != nil {
		return nil, err
	}
	var morsels []exec.Morsel
	for _, files := range cellFiles {
		if len(files) > 0 {
			morsels = append(morsels, exec.Morsel{Files: files})
		}
	}
	return &MorselScan{Morsels: morsels, Schema: meta.Schema, Tel: &exec.Telemetry{}}, nil
}

// Parallelism returns the engine's configured intra-query parallelism target.
func (t *Txn) Parallelism() int { return t.eng.opts.Parallelism }

// JoinMemoryBudget returns the hash-join build-side memory budget in bytes
// for this transaction: the per-transaction override when one was set (see
// SetJoinMemoryBudget), the engine-wide configuration otherwise (0 or
// negative = unlimited, never spill).
func (t *Txn) JoinMemoryBudget() int64 {
	if t.joinBudget != nil {
		return *t.joinBudget
	}
	return t.eng.opts.JoinMemoryBudget
}

// SetJoinMemoryBudget overrides the engine-wide JoinMemoryBudget for this
// transaction only — the hook a serving front end uses to give each session
// its own memory budget (0 or negative = unlimited). Call before the
// statement's joins start draining their build sides.
func (t *Txn) SetJoinMemoryBudget(b int64) { t.joinBudget = &b }

// Distributions returns the engine's distribution bucket count — the cell
// count of d(r), which a cell-aligned grace-join spill partitions by.
func (t *Txn) Distributions() int { return t.eng.opts.Distributions }

// NewSpillDir allocates a fresh query-scoped spill namespace in the object
// store for a grace-spilling join. The caller owns cleanup: spill files are
// transient query state, deleted when the statement finishes (on success and
// on error alike).
func (t *Txn) NewSpillDir() *objectstore.SpillDir {
	t.eng.mu.Lock()
	t.eng.nextSpillID++
	n := t.eng.nextSpillID
	t.eng.mu.Unlock()
	return objectstore.NewSpillDir(t.eng.Store, fmt.Sprintf("t%d-q%d", t.id, n))
}

// Work exposes the engine-wide modeled-work counters to the query layer.
func (t *Txn) Work() *WorkStats { return &t.eng.Work }

// LeaseDOP reserves up to want worker slots on the fabric for this query's
// morsel workers, returning the granted degree of parallelism and a release
// function (safe to call more than once). When the front end has adopted an
// admission-granted lease onto the transaction (AdoptLease), that grant is
// returned instead — capped at want — and the release is a no-op because
// the admission layer owns the lease's lifetime.
func (t *Txn) LeaseDOP(want int) (int, func()) {
	if t.adoptedDOP > 0 {
		n := t.adoptedDOP
		if want > 0 && n > want {
			n = want
		}
		return n, func() {}
	}
	lease := t.eng.Fabric.LeaseSlots(want)
	return lease.Granted(), lease.Release
}

// AdoptLease hands the transaction a worker-slot count that an admission
// controller already leased from the fabric for the current statement;
// LeaseDOP will return it instead of leasing again (avoiding the double
// accounting of an admission slot plus an executor slot for one statement).
// The caller keeps ownership of the underlying lease and must clear the
// adoption (ClearAdoptedLease) before releasing it.
func (t *Txn) AdoptLease(granted int) {
	if granted > 0 {
		t.adoptedDOP = granted
	}
}

// ClearAdoptedLease detaches the admission-granted slot count set by
// AdoptLease, returning the transaction to direct fabric leasing.
func (t *Txn) ClearAdoptedLease() { t.adoptedDOP = 0 }

// ReadAll is a convenience that scans a table and materializes all rows.
func (t *Txn) ReadAll(table string) (*ResultSet, error) {
	op, tel, err := t.Scan(table, ScanOptions{})
	if err != nil {
		return nil, err
	}
	b, err := exec.Collect(op)
	if err != nil {
		return nil, err
	}
	// FE-side operator CPU.
	t.charge(t.eng.Fabric.Model().CPU(tel.RowsProcessed.Load()))
	return &ResultSet{Batch: b}, nil
}

// ResultSet is a materialized query result.
type ResultSet struct {
	Batch *colfile.Batch
}

// NumRows returns the number of rows in the result.
func (r *ResultSet) NumRows() int { return r.Batch.NumRows() }

// Row materializes row i as Go values.
func (r *ResultSet) Row(i int) []any { return r.Batch.Row(i) }

// Columns returns the result column names.
func (r *ResultSet) Columns() []string {
	out := make([]string, len(r.Batch.Schema))
	for i, f := range r.Batch.Schema {
		out[i] = f.Name
	}
	return out
}

// TableStats summarizes a table snapshot for the STO and for SHOW commands.
type TableStats struct {
	Name       string
	TableID    int64
	Files      int
	Rows       int64
	Deleted    int64
	SizeBytes  int64
	Manifests  int
	LastSeq    int64
	Health     manifest.Health
	SnapshotAt time.Time
}

// Stats reports storage statistics for a table (the coarse statistics the BE
// pushes to the STO in Section 5.1).
func (t *Txn) Stats(table string) (TableStats, error) {
	state, meta, err := t.Snapshot(table, -1)
	if err != nil {
		return TableStats{}, err
	}
	rows, err := catalog.ScanManifests(t.catTx, meta.ID, -1)
	if err != nil {
		return TableStats{}, err
	}
	h := state.AssessHealth(t.eng.opts.CompactSmallRows, t.eng.opts.CompactDeletedFrac)
	var deleted int64
	for _, f := range state.Files {
		deleted += f.DeletedRows
	}
	return TableStats{
		Name: meta.Name, TableID: meta.ID,
		Files: len(state.Files), Rows: state.TotalRows(), Deleted: deleted,
		SizeBytes: state.TotalSize(), Manifests: len(rows), LastSeq: state.LastSeq,
		Health: h, SnapshotAt: time.Now(),
	}, nil
}
